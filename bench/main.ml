(* The full evaluation harness: regenerates every table and figure from the
   paper's evaluation (Figures 5-9 and the §5.2 security results), runs the
   §6 ablations, and finishes with Bechamel micro-benchmarks of the hot
   primitives.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- quick           # skip the slow netperf sweep
     dune exec bench/main.exe -- --json          # also write BENCH_3.json
     dune exec bench/main.exe -- quick --json    # both (the CI smoke target)
     dune exec bench/main.exe -- soak            # supervision soak only (make soak)

   --json writes a machine-readable baseline (micro-bench ns/op, the
   Figure 8 rows when the sweep ran, per-fault-class supervision recovery
   latencies, the end-of-run Sud_obs metrics snapshot, and the
   disabled-tracer overhead guard vs BENCH_2.json) so future PRs can diff
   hot-path performance and recovery behaviour against this one; see
   DESIGN.md "The fast path", "Driver supervision" and "Observability".

   The soak run enables tracing (64k-span ring), exports
   traces/soak_trace.jsonl, and fails unless the trace contains a complete
   uchan rpc -> iommu fault -> supervisor detect -> kill -> restart
   causal chain. *)

(* Every baseline is emitted and re-read through the versioned
   Bench_schema document type — no ad-hoc printf JSON, no substring
   scrapers. *)
module J = Bench_schema

let ( >>= ) = Option.bind

(* One root seed for every seeded bench harness: each entry point derives
   its sub-seed by tag (satellite of sud-check), so a red run is
   reproducible from the single root printed in the failure line. *)
let bench_root = Fault_inject.default_root
let bseed tag = Rng.derive ~root:bench_root tag

(* Per-fault-class recovery samples render the same way in BENCH_3 and
   BENCH_7. *)
let recovery_rows recovery =
  J.List
    (List.map
       (fun s ->
          J.Obj
            [ ("fault", J.Str s.Fault_inject.rs_fault);
              ("detect_ns", J.Int s.Fault_inject.rs_detect_ns);
              ("outage_ns", J.Int s.Fault_inject.rs_outage_ns) ])
       recovery)

let banner title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* ---- Figure 5: lines of code per component ---- *)

let count_loc path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  with Sys_error _ -> None

let figure5 () =
  banner "Figure 5: lines of code to implement SUD (paper's numbers in parens)";
  let components =
    [ ("Safe PCI device access module", [ "lib/core/safe_pci.ml"; "lib/core/safe_pci.mli" ], 2800);
      ("Ethernet proxy driver", [ "lib/core/proxy_net.ml"; "lib/core/proxy_net.mli" ], 300);
      ("Wireless proxy driver", [ "lib/core/proxy_wifi.ml"; "lib/core/proxy_wifi.mli" ], 600);
      ("Audio card proxy driver", [ "lib/core/proxy_audio.ml"; "lib/core/proxy_audio.mli" ], 550);
      ("USB host proxy driver", [ "lib/core/proxy_usb.ml"; "lib/core/proxy_usb.mli" ], 0);
      ( "SUD-UML runtime",
        [ "lib/core/sud_uml.ml"; "lib/core/sud_uml.mli"; "lib/core/driver_api.ml";
          "lib/core/driver_api.mli"; "lib/core/driver_host.ml"; "lib/core/driver_host.mli";
          "lib/uchan/uchan.ml"; "lib/uchan/msg.ml"; "lib/uchan/ring.ml"; "lib/uchan/bufpool.ml" ],
        5000 ) ]
  in
  Printf.printf "%-34s %10s %14s\n" "Feature" "This repo" "Paper";
  List.iter
    (fun (name, files, paper) ->
       let mine =
         List.fold_left
           (fun acc f -> match count_loc f with Some n -> acc + n | None -> acc)
           0 files
       in
       Printf.printf "%-34s %10s %14d\n" name
         (if mine = 0 then "(n/a)" else string_of_int mine)
         paper)
    components;
  print_endline
    "(USB host proxy: 0 in the paper because the USB stack lives wholly inside\n\
     the driver process; ours surfaces block/input devices, hence nonzero.)"

(* ---- Figure 6: device files ---- *)

let figure6 () =
  banner "Figure 6: device files SUD exports per PCI device";
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let sp = Safe_pci.init k in
  Safe_pci.register_device sp bdf;
  List.iter print_endline (Safe_pci.device_files sp bdf)

(* ---- Figure 7: upcall/downcall sample ---- *)

let figure7 () =
  banner "Figure 7: a sample of SUD upcalls and downcalls";
  Printf.printf "%-22s %-10s %s\n" "Call" "Direction" "Description";
  List.iter
    (fun (name, dir, desc) -> Printf.printf "%-22s %-10s %s\n" name dir desc)
    Proxy_proto.figure7_sample;
  Printf.printf "\nFull protocol implemented by this repo (opcode: name):\n";
  List.iter
    (fun op -> Printf.printf "  %3d: %s\n" op (Proxy_proto.name_of op))
    [ 1; 2; 3; 4; 5; 16; 17; 18; 19; 32; 33; 34; 35; 36; 48; 49; 50;
      100; 101; 102; 103; 104; 105; 110; 111; 112; 113; 114; 115; 116; 120 ]

(* ---- Figure 8: netperf ---- *)

let paper_figure8 =
  [ ("TCP_STREAM", "Kernel driver", "941 Mbits/sec", "12%");
    ("TCP_STREAM", "Untrusted driver", "941 Mbits/sec", "13%");
    ("UDP_STREAM TX", "Kernel driver", "317 Kpackets/sec", "35%");
    ("UDP_STREAM TX", "Untrusted driver", "308 Kpackets/sec", "39%");
    ("UDP_STREAM RX", "Kernel driver", "238 Kpackets/sec", "20%");
    ("UDP_STREAM RX", "Untrusted driver", "235 Kpackets/sec", "26%");
    ("UDP_RR", "Kernel driver", "9590 Tx/sec", "5%");
    ("UDP_RR", "Untrusted driver", "9489 Tx/sec", "10%") ]

let figure8 () =
  banner "Figure 8: netperf on the simulated gigabit link (paper values alongside)";
  let rows = Netperf.figure8 () in
  Printf.printf "%-16s %-18s | %-20s %-6s | %-18s %-5s\n" "Test" "Driver" "Measured" "CPU"
    "Paper" "CPU";
  print_endline (String.make 95 '-');
  List.iter2
    (fun r (ptest, pdrv, pval, pcpu) ->
       assert (r.Netperf.test = ptest && r.Netperf.driver = pdrv);
       Printf.printf "%-16s %-18s | %-20s %-6s | %-18s %-5s\n" r.Netperf.test r.Netperf.driver
         r.Netperf.value r.Netperf.cpu pval pcpu)
    rows paper_figure8;
  print_endline
    "\nShape checks: equal TCP throughput at line rate; SUD never beats the kernel\n\
     driver on UDP streams; UDP_RR rates equal with SUD paying ~2-4x CPU.";
  rows

(* ---- Figure 9: IO virtual memory mappings ---- *)

let figure9 () =
  banner "Figure 9: IO virtual memory mappings for the e1000 driver under SUD";
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let done_ = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"fig9" (fun () ->
         let sp = Safe_pci.init k in
         match Driver_host.launch k sp ~bdf (Driver_host.net ()) E1000.driver with
         | Error e -> failwith e
         | Ok s ->
           ignore (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
           let grant = Driver_host.grant s in
           let allocs = Safe_pci.dma_allocations grant in
           let labels =
             [ "Shared packet buffers (uchan pool)"; "TX ring descriptor"; "RX ring descriptor";
               "RX buffers" ]
           in
           Printf.printf "%-36s %-12s %s\n" "Memory use" "Start" "End";
           List.iteri
             (fun i (iova, len) ->
                let label = try List.nth labels i with _ -> "DMA region" in
                Printf.printf "%-36s 0x%08X   0x%08X\n" label iova (iova + len))
             allocs;
           (match Iommu.mode k.Kernel.iommu with
            | Iommu.Intel_vtd _ ->
              Printf.printf "%-36s 0x%08X   0x%08X\n" "Implicit MSI mapping (VT-d)"
                Bus.msi_window_base Bus.msi_window_limit
            | Iommu.Amd_vi -> ());
           Printf.printf "\n(page-table walk: %d mapped runs, all writable, nothing else)\n"
             (List.length (Safe_pci.iommu_mappings grant));
           done_ := true)
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng;
  if not !done_ then print_endline "figure 9 generation failed"

(* ---- §5.2: the security table ---- *)

let security () =
  banner "Security evaluation (5.2): attack containment matrix";
  Printf.printf "%-44s %-36s %s\n" "Attack" "Configuration" "Contained";
  print_endline (String.make 92 '-');
  List.iter
    (fun o ->
       Printf.printf "%-44s %-36s %s\n" o.Scenarios.attack
         (if String.length o.Scenarios.config > 36 then String.sub o.Scenarios.config 0 36
          else o.Scenarios.config)
         (if o.Scenarios.contained then "yes" else "NO"))
    (Scenarios.all ())

(* ---- §6 ablations ---- *)

let ablation_interrupt_defence () =
  banner "Ablation (6): cost of the three interrupt-storm defences";
  let m = Cost_model.default in
  Printf.printf "MSI mask toggle (PCI config write):   %5d ns\n" m.Cost_model.msi_mask_ns;
  Printf.printf "Interrupt-remap table update (VT-d):  %5d ns\n" m.Cost_model.irte_update_ns;
  Printf.printf "MSI-window unmap + IOTLB flush (AMD): %5d ns\n"
    (m.Cost_model.dma_map_ns + m.Cost_model.iotlb_flush_ns);
  print_endline
    "SUD masks first (cheap, reversible) and escalates only when masking fails\n\
     (DMA-forged messages), exactly the policy in 3.2.2.";
  (* Measured escalation behaviour under the forged-interrupt storm: *)
  List.iter
    (fun (mode, name) ->
       let o = Scenarios.msi_dma_storm ~iommu:mode in
       Printf.printf "  %-44s -> %s\n" name o.Scenarios.evidence)
    [ (Iommu.Intel_vtd { interrupt_remapping = false }, "VT-d, no IR (testbed)");
      (Iommu.Intel_vtd { interrupt_remapping = true }, "VT-d + interrupt remapping");
      (Iommu.Amd_vi, "AMD IOMMU") ]

let ablation_defensive_copy () =
  banner "Ablation (3.1.2): defensive copy vs read-only remap of shared buffers";
  let m = Cost_model.default in
  let pkt = 1448 in
  Printf.printf "Fused copy+checksum of a %d-byte packet: %d ns\n" pkt
    (Cost_model.checksum_cost m ~bytes:pkt);
  Printf.printf "IOTLB invalidation (per remap toggle):    %d ns\n" m.Cost_model.iotlb_flush_ns;
  Printf.printf
    "At 81k packets/s (TCP_STREAM), remapping would cost %.1f ms/s of IOTLB flushes\n"
    (float_of_int (81_000 * m.Cost_model.iotlb_flush_ns) /. 1e6);
  print_endline
    "-> \"invalidating TLB entries from the IOMMU's page table is prohibitively\n\
     expensive on current hardware\" (3.1.2); the fused copy wins."

let ablation_batching () =
  banner "Ablation (3.1.2): uchan asynchronous-downcall batching";
  (* Count notifications with and without batching under a packet burst. *)
  let run ~batch =
    let eng = Engine.create () in
    let k = Kernel.boot eng in
    let chan = Uchan.create k ~driver_label:"bench" () in
    Uchan.set_downcall_handler chan (fun ~queue:_ _ -> None);
    let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
    ignore
      (Process.spawn_fiber proc ~name:"sender" (fun () ->
           for _ = 1 to 1000 do
             Uchan.transfer chan ~from:`Driver Uchan.Batched
               (Msg.make ~kind:Proxy_proto.down_tx_done ());
             if not batch then begin
               (* No batching: enter the kernel for every message and let
                  the worker drain and go back to sleep. *)
               Uchan.flush chan;
               ignore (Fiber.sleep eng 2_000 : Fiber.wake)
             end
           done;
           Uchan.flush chan)
       : Fiber.t);
    Engine.run ~max_time:1_000_000_000 eng;
    Sud_obs.Metrics.get (Uchan.metrics chan).Uchan.um_notify
  in
  Printf.printf "1000 async downcalls, flushed per message: %4d notifications\n"
    (run ~batch:false);
  Printf.printf "1000 async downcalls, batched (SUD default): %4d notifications\n"
    (run ~batch:true)

let ablation_itr () =
  banner "Ablation: interrupt moderation (e1000 ITR) on UDP_RR";
  print_endline "(the paper's 9.6k Tx/s is set by the NIC's default ~50us moderation)";
  let r = Netperf.udp_rr Netperf.Kernel_driver in
  Printf.printf "ITR 50us (driver default): %7.0f Tx/sec at %2.0f%% CPU\n" r.Netperf.throughput
    r.Netperf.cpu_pct

(* ---- Bechamel micro-benchmarks ---- *)

(* (json key, display name, closure) for each hot primitive.  The ring and
   translate benches measure what the datapath actually does since the
   zero-copy/IOTLB work: borrowed-slot marshalling and cached translation.
   The copying variants stay measured so the delta is visible. *)
let microbench_cases () =
  let ring = Ring.create ~slots:256 in
  let ring_copy = Ring.create ~slots:256 in
  let msg = Msg.make ~kind:3 ~args:[ 42; 1448 ] () in
  let slot = Msg.marshal msg in
  (* IOTLB hit: same page every time (first access warms the cache). *)
  let iommu = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
  let dom = Iommu.attach iommu ~source:7 in
  Iommu.map iommu dom ~iova:0x42430000 ~phys:0x100000 ~len:0x100000 ~writable:true;
  (* IOTLB miss: sweep 1024 pages through a 64-entry direct-mapped cache so
     every access pays the two-level walk. *)
  let iommu_m = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
  let dom_m = Iommu.attach iommu_m ~source:7 in
  Iommu.map iommu_m dom_m ~iova:0x50000000 ~phys:0x400000 ~len:(1024 * 4096) ~writable:true;
  let sweep = ref 0 in
  let payload = Bytes.make 1448 'x' in
  let mem = Phys_mem.create ~size:(16 * 1024 * 1024) in
  let sink = ref 0 in
  [ ( "ring_push_pop",
      "uchan ring push+pop",
      (* The borrowed-slot ring: transport is index arithmetic, the copies
         the old API forced are gone (marshalling is measured separately
         and by the msg_through_ring pair). *)
      fun () ->
        ignore (Ring.push_inplace ring ignore : bool);
        ignore (Ring.pop_inplace ring (fun slot -> sink := !sink + Bytes.length slot)
                : unit option) );
    ( "ring_push_pop_copying",
      "uchan ring push+pop (legacy copying API)",
      fun () ->
        ignore (Ring.try_push ring_copy slot : bool);
        ignore (Ring.try_pop ring_copy : bytes option) );
    ( "msg_through_ring",
      "msg through ring, zero-copy (datapath)",
      fun () ->
        ignore (Ring.push_inplace ring (Msg.marshal_into msg) : bool);
        ignore (Ring.pop_inplace ring Msg.unmarshal_view : (Msg.t, string) result option) );
    ( "msg_through_ring_copying",
      "msg through ring, copying (old datapath)",
      fun () ->
        ignore (Ring.try_push ring_copy (Msg.marshal msg) : bool);
        (match Ring.try_pop ring_copy with
         | Some b -> ignore (Msg.unmarshal b : (Msg.t, string) result)
         | None -> ()) );
    ( "msg_marshal_unmarshal",
      "msg marshal+unmarshal",
      fun () ->
        let b = Msg.marshal msg in
        ignore (Msg.unmarshal b : (Msg.t, string) result) );
    ( "iommu_translate_hit",
      "IOMMU translate (IOTLB hit)",
      fun () ->
        ignore
          (Iommu.translate iommu ~source:7 ~addr:0x42480123 ~dir:Bus.Dma_read
           : [ `Phys of int | `Msi | `Fault of Bus.fault ]) );
    ( "iommu_translate_miss",
      "IOMMU translate (miss: table walk)",
      fun () ->
        let addr = 0x50000000 + ((!sweep land 1023) * 4096) in
        incr sweep;
        ignore
          (Iommu.translate iommu_m ~source:7 ~addr ~dir:Bus.Dma_read
           : [ `Phys of int | `Msi | `Fault of Bus.fault ]) );
    ( "checksum_1448B",
      "checksum 1448B (defensive-copy pass)",
      fun () -> ignore (Skbuff.checksum payload : int) );
    ( "phys_mem_1448B_write_read",
      "phys_mem 1448B write+read",
      fun () ->
        Phys_mem.write mem ~addr:0x2000 payload;
        ignore (Phys_mem.read mem ~addr:0x2000 ~len:1448 : bytes) ) ]

(* Run the Bechamel pipeline; returns (key, name, ns/op) with ns/op = nan
   when no estimate was produced. *)
let microbenches () =
  banner "Micro-benchmarks (Bechamel): SUD's hot primitives";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.map
    (fun (key, name, fn) ->
       let test = Test.make ~name (Staged.stage fn) in
       let results = Benchmark.all cfg instances test in
       let analysis =
         Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
           Toolkit.Instance.monotonic_clock results
       in
       let est = ref nan in
       Hashtbl.iter
         (fun _ ols ->
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> est := e
            | Some _ | None -> ())
         analysis;
       if Float.is_nan !est then Printf.printf "%-42s (no estimate)\n" name
       else Printf.printf "%-42s %10.1f ns/op\n" name !est;
       (key, name, !est))
    (microbench_cases ())

(* ---- supervision: per-fault-class recovery latency ---- *)

let recovery_latencies () =
  banner "Driver supervision: detection and recovery latency per fault class";
  Printf.printf "%-18s %14s %14s\n" "Fault" "detect (us)" "outage (us)";
  print_endline (String.make 48 '-');
  List.map
    (fun fault ->
       let s = Fault_inject.measure_recovery fault in
       Printf.printf "%-18s %14d %14d\n" s.Fault_inject.rs_fault
         (s.Fault_inject.rs_detect_ns / 1_000)
         (s.Fault_inject.rs_outage_ns / 1_000);
       s)
    (* Corrupt_batch is contained without a restart — there is no
       recovery latency to measure for it. *)
    (List.filter Fault_inject.lethal Fault_inject.all_faults)

(* ---- supervision soak: the crash-loop harness (make soak) ---- *)

let soak_seed = bseed "bench:soak"

let soak_chain =
  [ ("uchan", "rpc"); ("iommu", "fault"); ("sup", "detect"); ("sup", "kill");
    ("sup", "restart") ]

let run_soak () =
  banner
    (Printf.sprintf "Supervision soak: seeded fault storm (seed 0x%LX)" soak_seed);
  (* Trace the whole storm: the export must show at least one injected
     DMA violation causally linked back to a uchan RPC and forward to the
     restart that recovered from it. *)
  (* The storm is over in the first ~4 s but the sim drains traffic for
     ~30 s more; the ring must span the whole run or the chain of an
     injected fault is evicted by tail-end heartbeat spans. *)
  Sud_obs.Trace.set_capacity (1 lsl 19);
  Sud_obs.Trace.set_enabled true;
  let r = Fault_inject.soak ~seed:soak_seed ~n_faults:200 ~duration_ms:4_000 () in
  Printf.printf "faults planned/applied/skipped: %d / %d / %d\n" r.Fault_inject.sr_planned
    r.Fault_inject.sr_applied r.Fault_inject.sr_skipped;
  List.iter
    (fun (cls, n) -> Printf.printf "  %-16s %d\n" cls n)
    r.Fault_inject.sr_by_class;
  Printf.printf "detections: %d   restarts: %d   deaths checked: %d\n"
    r.Fault_inject.sr_detections r.Fault_inject.sr_restarts r.Fault_inject.sr_deaths;
  Printf.printf "traffic: %d offered, %d sent, %d dropped; %d frames on the wire\n"
    r.Fault_inject.sr_offered r.Fault_inject.sr_sent r.Fault_inject.sr_dropped
    r.Fault_inject.sr_wire_frames;
  let bl = r.Fault_inject.sr_backlog in
  Printf.printf "backlog: offered %d = queued %d + dropped %d + replayed %d\n"
    bl.Netdev.bl_offered bl.Netdev.bl_queued bl.Netdev.bl_dropped bl.Netdev.bl_replayed;
  Printf.printf "worst outage: %d us\n" (r.Fault_inject.sr_max_outage_ns / 1_000);
  Printf.printf "malformed slots dropped across all generations: %d\n"
    r.Fault_inject.sr_malformed;
  (match r.Fault_inject.sr_violations with
   | [] -> print_endline "invariants: all held"
   | vs ->
     Printf.printf "INVARIANT VIOLATIONS (%d):\n" (List.length vs);
     List.iter (fun v -> print_endline ("  " ^ v)) vs);
  Sud_obs.Trace.set_enabled false;
  if not (Sys.file_exists "traces") then Sys.mkdir "traces" 0o755;
  let trace_path = "traces/soak_trace.jsonl" in
  let n_spans = Sud_obs.Trace.write_jsonl ~path:trace_path in
  let spans = Sud_obs.Trace.spans () in
  let parsed =
    let ic = open_in trace_path in
    let n = ref 0 in
    (try
       while true do
         match Sud_obs.Trace.span_of_line (input_line ic) with
         | Some _ -> incr n
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  let chain_ok = Sud_obs.Trace.chain_exists spans soak_chain in
  Printf.printf
    "trace: %d spans emitted, %d retained, %d exported to %s (%d parse back)\n"
    (Sud_obs.Trace.emitted ()) (Sud_obs.Trace.retained ()) n_spans trace_path parsed;
  Printf.printf "causal chain rpc -> fault -> detect -> kill -> restart: %s\n"
    (if chain_ok then "found" else "MISSING");
  let qr = Fault_inject.crash_loop ~max_restarts:3 () in
  Printf.printf
    "crash loop: %d restarts then quarantined=%b, netdev removed=%b, sud_state=%S\n"
    qr.Fault_inject.qr_restarts qr.Fault_inject.qr_quarantined
    qr.Fault_inject.qr_netdev_removed qr.Fault_inject.qr_sysfs_state;
  let ok =
    r.Fault_inject.sr_violations = []
    && r.Fault_inject.sr_state = Supervisor.Running
    && r.Fault_inject.sr_detections > 0
    && qr.Fault_inject.qr_quarantined && qr.Fault_inject.qr_netdev_removed
    && chain_ok
    && parsed = n_spans
  in
  print_endline
    (if ok then "\nSOAK PASSED"
     else Printf.sprintf "\nSOAK FAILED (root seed 0x%LX)" bench_root);
  (r, ok)

(* ---- sud-blk crash-consistency soak (make blk-smoke / make soak) ---- *)

let blk_soak_seed = bseed "bench:blk-soak"

let run_blk_soak ?(n_faults = 200) () =
  banner
    (Printf.sprintf "sud-blk soak: %d storage faults under synchronous I/O (seed 0x%LX)"
       n_faults blk_soak_seed);
  let r = Fault_inject.blk_soak ~seed:blk_soak_seed ~n_faults ~duration_ms:6_000 () in
  Printf.printf "faults planned/applied/skipped: %d / %d / %d\n" r.Fault_inject.bsr_planned
    r.Fault_inject.bsr_applied r.Fault_inject.bsr_skipped;
  List.iter
    (fun (cls, n) -> Printf.printf "  %-20s %d\n" cls n)
    r.Fault_inject.bsr_by_class;
  Printf.printf "detections: %d   restarts: %d   deaths checked: %d\n"
    r.Fault_inject.bsr_detections r.Fault_inject.bsr_restarts r.Fault_inject.bsr_deaths;
  Printf.printf
    "workload: %d writes acked, %d reads, %d fsyncs, %d media sweeps, %d I/O errors\n"
    r.Fault_inject.bsr_writes r.Fault_inject.bsr_reads r.Fault_inject.bsr_fsyncs
    r.Fault_inject.bsr_verifies r.Fault_inject.bsr_io_errors;
  Printf.printf "worst outage: %d us\n" (r.Fault_inject.bsr_max_outage_ns / 1_000);
  List.iter
    (fun (reason, n) -> Printf.printf "  detected %-40s %d\n" reason n)
    r.Fault_inject.bsr_by_reason;
  Printf.printf "after final fsync: retained %d, in flight %d\n"
    r.Fault_inject.bsr_retained_end r.Fault_inject.bsr_inflight_end;
  (match r.Fault_inject.bsr_violations with
   | [] -> print_endline "crash-consistency invariant: held at every check"
   | vs ->
     Printf.printf "INVARIANT VIOLATIONS (%d):\n" (List.length vs);
     List.iter (fun v -> print_endline ("  " ^ v)) vs);
  let ok =
    r.Fault_inject.bsr_violations = []
    && r.Fault_inject.bsr_state = Supervisor.Running
    && r.Fault_inject.bsr_applied >= n_faults
    && r.Fault_inject.bsr_detections > 0
    && r.Fault_inject.bsr_retained_end = 0
    && r.Fault_inject.bsr_inflight_end = 0
    && r.Fault_inject.bsr_io_errors = 0
  in
  print_endline
    (if ok then "\nBLK SOAK PASSED"
     else Printf.sprintf "\nBLK SOAK FAILED (root seed 0x%LX)" bench_root);
  (r, ok)

(* ---- blkperf: the sud-blk datapath sweep (make bench-blk) ---- *)

(* Durable IOPS through the whole stack — page cache, request queue,
   proxy, uchan, untrusted NVMe driver, emulated device — across queue
   depth (concurrent synchronous workers) and read mix.  Writes are
   FUA (write-through) so every op pays the full submit->DMA->IRQ->
   completion round trip; reads land outside the written set so the
   cache cannot answer them.  Gates: depth must actually buy
   parallelism (qd16 over qd1 at the mixed point), and every storage
   fault class must recover inside the soak's outage bound.  Writes
   BENCH_7.json. *)

let blkperf_depths = [ 1; 4; 16 ]
let blkperf_mixes = [ 0; 50; 100 ]                (* % of ops that are reads *)
let blkperf_write_pages = 512                     (* write working set, 4 KiB pages *)
let blkperf_read_region = 8192                    (* private cold-read pages per worker *)
let blkperf_window_ms = 40                        (* measured window (simulated) *)
let blkperf_warmup_ms = 5
let blkperf_scaling_floor = 2.0
let blkperf_outage_bound_ms = 500
let blkperf_io_timeout_ns = 5_000_000_000

type blkperf_point = {
  bpp_depth : int;
  bpp_read_pct : int;
  bpp_kiops : float;
  bpp_reads : int;
  bpp_writes : int;
  bpp_io_errors : int;
  bpp_lat_us : float;       (* mean per-op latency seen by one worker *)
}

let blkperf_point ~depth ~read_pct =
  (* The media is sparse, so a big device is free — big enough that no
     worker ever re-reads a page within the window, keeping every read
     a cold miss that crosses the proxy to the device (the unbounded
     page cache would otherwise answer re-reads in zero simulated
     time and the mix would measure memcpy). *)
  let capacity =
    (blkperf_write_pages + ((depth + 1) * blkperf_read_region)) * Blkdev.page_sectors
  in
  let w = Fault_inject.make_blk_world ~capacity () in
  (* The measurement is over well inside 2 s of simulated time; without
     the bound the engine would keep servicing watchdog ticks for the
     default two sim-minutes per point. *)
  Fault_inject.in_blk_world ~max_ms:2_000 w (fun () ->
      let k = w.Fault_inject.bw_k in
      let eng = w.Fault_inject.bw_eng in
      let sv =
        match
          Supervisor.start_blk k w.Fault_inject.bw_sp ~bdf:w.Fault_inject.bw_bdf
            Fault_inject.honest_blk_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("blkperf: supervised start failed: " ^ e)
      in
      let bd =
        match Supervisor.blkdev sv with
        | Some bd -> bd
        | None -> failwith "blkperf: no blkdev after start"
      in
      let reads = ref 0 and writes = ref 0 and errors = ref 0 in
      let measuring = ref false and stop = ref false in
      let running = ref depth in
      for i = 0 to depth - 1 do
        ignore
          (Process.spawn_fiber (Process.kernel_process k.Kernel.procs)
             ~name:(Printf.sprintf "blkperf-%d" i)
             (fun () ->
                (* Writes scatter over a shared hot set (LCG); reads walk
                   a private region sequentially so no page is ever read
                   twice — every read misses the cache and pays the full
                   datapath. *)
                let st = ref ((0x5DEECE66D * (i + 1)) + read_pct) in
                let rand bound =
                  st := ((!st * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
                  (!st lsr 16) mod bound
                in
                let rbase = blkperf_write_pages + ((i + 1) * blkperf_read_region) in
                let rnext = ref 0 in
                let data = Bytes.make Blkdev.page_size (Char.chr (0x40 + i)) in
                while not !stop do
                  let r =
                    if rand 100 < read_pct then begin
                      incr reads;
                      let page = rbase + (!rnext mod blkperf_read_region) in
                      incr rnext;
                      match
                        Blkdev.read bd ~timeout_ns:blkperf_io_timeout_ns
                          ~lba:(page * Blkdev.page_sectors)
                          ~sectors:Blkdev.page_sectors ()
                      with
                      | Ok _ -> Ok ()
                      | Error e -> Error e
                    end
                    else begin
                      incr writes;
                      Blkdev.write_fua bd ~timeout_ns:blkperf_io_timeout_ns
                        ~lba:(rand blkperf_write_pages * Blkdev.page_sectors) data ()
                    end
                  in
                  (match r with
                   | Ok () -> ()
                   | Error _ -> incr errors);
                  if not !measuring then begin
                    (* Ops issued during warmup don't count. *)
                    reads := 0;
                    writes := 0
                  end;
                  (* Think time: guarantees the loop advances simulated
                     time even if an op is ever satisfied for free. *)
                  ignore (Fiber.sleep eng 200 : Fiber.wake)
                done;
                decr running)
           : Fiber.t)
      done;
      ignore (Fiber.sleep eng (blkperf_warmup_ms * 1_000_000) : Fiber.wake);
      reads := 0;
      writes := 0;
      errors := 0;
      measuring := true;
      let t0 = Engine.now eng in
      ignore (Fiber.sleep eng (blkperf_window_ms * 1_000_000) : Fiber.wake);
      let ops = !reads + !writes in
      let window_ns = Engine.now eng - t0 in
      stop := true;
      let rec join budget =
        if budget > 0 && !running > 0 then begin
          ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
          join (budget - 1)
        end
      in
      join 1_000;
      { bpp_depth = depth;
        bpp_read_pct = read_pct;
        bpp_kiops = float_of_int ops /. (float_of_int window_ns /. 1e9) /. 1e3;
        bpp_reads = !reads;
        bpp_writes = !writes;
        bpp_io_errors = !errors;
        bpp_lat_us =
          (if ops = 0 then nan
           else float_of_int depth *. float_of_int window_ns /. float_of_int ops /. 1e3) })

let run_blkperf () =
  banner "blkperf: durable IOPS vs queue depth and read mix (supervised NVMe)";
  let points =
    List.concat_map
      (fun depth ->
         List.map (fun read_pct -> blkperf_point ~depth ~read_pct) blkperf_mixes)
      blkperf_depths
  in
  Printf.printf "%-8s %-10s %12s %10s %10s %10s %12s\n" "depth" "read%" "kIOPS" "reads"
    "writes" "io_errs" "lat (us/op)";
  print_endline (String.make 78 '-');
  List.iter
    (fun p ->
       Printf.printf "%-8d %-10d %12.1f %10d %10d %10d %12.1f\n" p.bpp_depth
         p.bpp_read_pct p.bpp_kiops p.bpp_reads p.bpp_writes p.bpp_io_errors p.bpp_lat_us)
    points;
  let kiops depth read_pct =
    match
      List.find_opt (fun p -> p.bpp_depth = depth && p.bpp_read_pct = read_pct) points
    with
    | Some p -> p.bpp_kiops
    | None -> nan
  in
  let scaling = kiops 16 50 /. kiops 1 50 in
  let errors = List.fold_left (fun acc p -> acc + p.bpp_io_errors) 0 points in
  banner "blkperf: single-fault recovery latency per storage fault class";
  Printf.printf "%-24s %14s %14s\n" "Fault" "detect (us)" "outage (us)";
  print_endline (String.make 54 '-');
  let recovery =
    List.map
      (fun fault ->
         let s = Fault_inject.measure_blk_recovery fault in
         Printf.printf "%-24s %14d %14d\n" s.Fault_inject.rs_fault
           (s.Fault_inject.rs_detect_ns / 1_000)
           (s.Fault_inject.rs_outage_ns / 1_000);
         s)
      Fault_inject.all_blk_faults
  in
  let worst_outage =
    List.fold_left (fun acc s -> max acc s.Fault_inject.rs_outage_ns) 0 recovery
  in
  let scaling_ok = scaling >= blkperf_scaling_floor in
  let outage_ok = worst_outage <= blkperf_outage_bound_ms * 1_000_000 in
  let pass = scaling_ok && outage_ok && errors = 0 in
  Printf.printf "\nqd16 over qd1 at 50%% reads: %.2fx (floor %.1fx)  %s\n" scaling
    blkperf_scaling_floor (if scaling_ok then "ok" else "FAIL");
  Printf.printf "worst recovery outage: %d us (bound %d ms)  %s\n" (worst_outage / 1_000)
    blkperf_outage_bound_ms (if outage_ok then "ok" else "FAIL");
  Printf.printf "I/O errors across the sweep: %d  %s\n" errors
    (if errors = 0 then "ok" else "FAIL");
  print_endline (if pass then "BLKPERF PASSED" else "BLKPERF FAILED");
  let doc =
    J.Obj
      [ J.schema 7;
        ("bench", J.Str "blkperf");
        ("units", J.Str "kiops");
        ("write_pages", J.Int blkperf_write_pages);
        ("read_region_pages", J.Int blkperf_read_region);
        ("window_ms", J.Int blkperf_window_ms);
        ( "points",
          J.List
            (List.map
               (fun p ->
                  J.Obj
                    [ ("depth", J.Int p.bpp_depth);
                      ("read_pct", J.Int p.bpp_read_pct);
                      ("kiops", J.fnum ~dp:1 p.bpp_kiops);
                      ("reads", J.Int p.bpp_reads);
                      ("writes", J.Int p.bpp_writes);
                      ("io_errors", J.Int p.bpp_io_errors);
                      ("lat_us", J.fnum ~dp:1 p.bpp_lat_us) ])
               points) );
        ("scaling_qd16_over_qd1_mixed", J.fnum scaling);
        ("scaling_floor", J.fnum ~dp:1 blkperf_scaling_floor);
        ("recovery", recovery_rows recovery);
        ("outage_bound_ms", J.Int blkperf_outage_bound_ms);
        ("pass", J.Bool pass) ]
  in
  J.write ~path:"BENCH_7.json" doc;
  print_endline "wrote BENCH_7.json";
  pass

(* ---- warm standby: the upgrade soak (make upgrade-smoke) ---- *)

let upgrade_soak_seed = bseed "bench:upgrade-soak"
let upgrade_interleavings = 20

let run_upgrade_soak () =
  banner
    (Printf.sprintf
       "upgrade soak: %d upgrade+fault interleavings under synchronous I/O (seed 0x%LX)"
       upgrade_interleavings upgrade_soak_seed);
  let r =
    Fault_inject.upgrade_soak ~seed:upgrade_soak_seed
      ~interleavings:upgrade_interleavings ()
  in
  Printf.printf
    "upgrades: %d   warm swaps: %d   cold restarts: %d   standbys poisoned: %d\n"
    r.Fault_inject.usr_upgrades r.Fault_inject.usr_warm_swaps
    r.Fault_inject.usr_cold_restarts r.Fault_inject.usr_poisoned;
  Printf.printf "workload: %d writes acked, %d fsyncs, %d media sweeps, %d I/O errors\n"
    r.Fault_inject.usr_writes r.Fault_inject.usr_fsyncs r.Fault_inject.usr_verifies
    r.Fault_inject.usr_io_errors;
  (match r.Fault_inject.usr_violations with
   | [] -> print_endline "crash-consistency invariant: held across every interleaving"
   | vs ->
     Printf.printf "INVARIANT VIOLATIONS (%d):\n" (List.length vs);
     List.iter (fun v -> print_endline ("  " ^ v)) vs);
  let ok =
    r.Fault_inject.usr_violations = []
    && r.Fault_inject.usr_state = Supervisor.Running
    && r.Fault_inject.usr_io_errors = 0
    && r.Fault_inject.usr_upgrades > 0
    && r.Fault_inject.usr_warm_swaps > 0
  in
  print_endline
    (if ok then "\nUPGRADE SOAK PASSED"
     else Printf.sprintf "\nUPGRADE SOAK FAILED (root seed 0x%LX)" bench_root);
  (r, ok)

(* ---- warm standby: per-class failover outage vs the cold baseline ---- *)

(* Replays the BENCH_7 recovery sweep with the warm standby enabled and
   gates on the headline claim: a crash-class failover served by a
   pre-forked generation must complete in at most half the cold outage
   recorded in BENCH_7.json.  Writes BENCH_8.json. *)

let upgrade_speedup_floor = 2.0

let cold_blk_outage name =
  J.of_file "BENCH_7.json" |> Result.to_option
  >>= fun doc ->
  J.member doc "recovery"
  >>= J.as_list
  >>= fun rows ->
  J.find_point rows [ ("fault", J.Str name) ]
  >>= fun row -> J.member row "outage_ns" >>= J.as_int

let run_upgrade_bench () =
  banner "warm failover: per-class outage with a pre-forked standby (vs BENCH_7 cold)";
  Printf.printf "%-24s %14s %14s %9s\n" "Fault" "warm (us)" "cold (us)" "speedup";
  print_endline (String.make 64 '-');
  let rows =
    List.map
      (fun fault ->
         let s = Fault_inject.measure_warm_blk_recovery fault in
         let cold = cold_blk_outage s.Fault_inject.rs_fault in
         let speedup =
           match cold with
           | Some c -> float_of_int c /. float_of_int s.Fault_inject.rs_outage_ns
           | None -> nan
         in
         Printf.printf "%-24s %14d %14s %8.1fx\n" s.Fault_inject.rs_fault
           (s.Fault_inject.rs_outage_ns / 1_000)
           (match cold with Some c -> string_of_int (c / 1_000) | None -> "?")
           speedup;
         (s, cold, speedup))
      Fault_inject.all_blk_faults
  in
  let crash_speedup =
    List.fold_left
      (fun acc (s, _, sp) -> if s.Fault_inject.rs_fault = "blk_crash" then sp else acc)
      nan rows
  in
  let pass = crash_speedup >= upgrade_speedup_floor in
  Printf.printf "\ncrash-class warm failover: %.1fx faster than cold (floor %.1fx)  %s\n"
    crash_speedup upgrade_speedup_floor (if pass then "ok" else "FAIL");
  let doc =
    J.Obj
      [ J.schema 8;
        ("bench", J.Str "warm_failover");
        ("units", J.Str "ns");
        ("cold_baseline", J.Str "BENCH_7.json");
        ( "recovery",
          J.List
            (List.map
               (fun (s, cold, speedup) ->
                  J.Obj
                    [ ("fault", J.Str s.Fault_inject.rs_fault);
                      ("detect_ns", J.Int s.Fault_inject.rs_detect_ns);
                      ("warm_outage_ns", J.Int s.Fault_inject.rs_outage_ns);
                      ( "cold_outage_ns",
                        match cold with Some c -> J.Int c | None -> J.Null );
                      ("speedup", J.fnum ~dp:1 speedup) ])
               rows) );
        ("crash_speedup", J.fnum ~dp:1 crash_speedup);
        ("speedup_floor", J.fnum ~dp:1 upgrade_speedup_floor);
        ("pass", J.Bool pass) ]
  in
  J.write ~path:"BENCH_8.json" doc;
  print_endline "wrote BENCH_8.json";
  pass

(* ---- netperf_mq: the multiqueue sweep (make bench-mq) ---- *)

(* Sweeps the SUD e1000 over 1/2/4/8 MSI-X vectors under a fixed 8-flow
   UDP load and writes BENCH_4.json.  The pass condition is the PR's
   acceptance bar: aggregate throughput at 4 queues must be at least 2x
   the 1-queue figure — the per-queue rings, vectors and service fibers
   must actually parallelize the datapath, not just shard its naming. *)

let mq_speedup_floor = 2.0

let run_netperf_mq ~json =
  banner "netperf_mq: aggregate UDP RX vs queue count (SUD driver, 8 flows, 8 cores)";
  let points = Netperf.mq_sweep () in
  Printf.printf "%-8s %14s %8s %10s   %s\n" "queues" "Kpackets/s" "CPU" "samples"
    "per-RX-queue frames";
  print_endline (String.make 78 '-');
  List.iter
    (fun p ->
       Printf.printf "%-8d %14.1f %7.0f%% %10d   [%s]\n" p.Netperf.mq_queues
         p.Netperf.mq_kpps p.Netperf.mq_cpu_pct p.Netperf.mq_samples
         (String.concat "; " (List.map string_of_int p.Netperf.mq_rxq_frames)))
    points;
  let kpps_at n =
    match List.find_opt (fun p -> p.Netperf.mq_queues = n) points with
    | Some p -> p.Netperf.mq_kpps
    | None -> nan
  in
  let speedup = kpps_at 4 /. kpps_at 1 in
  let spread_ok =
    (* With 4+ queues, RSS must actually spread the flows: no single RX
       queue may have swallowed the whole load. *)
    List.for_all
      (fun p ->
         p.Netperf.mq_queues < 4
         || List.length (List.filter (fun n -> n > 0) p.Netperf.mq_rxq_frames) >= 2)
      points
  in
  let pass = speedup >= mq_speedup_floor && spread_ok in
  Printf.printf "\n4-queue speedup over 1 queue: %.2fx (floor %.1fx)   RSS spread: %s\n"
    speedup mq_speedup_floor
    (if spread_ok then "ok" else "DEGENERATE (one queue took everything)");
  print_endline (if pass then "NETPERF_MQ PASSED" else "NETPERF_MQ FAILED");
  if json then begin
    let doc =
      J.Obj
        [ J.schema 4;
          ("bench", J.Str "netperf_mq");
          ("flows", J.Int Netperf.mq_flows);
          ("units", J.Str "kpackets_per_sec");
          ( "points",
            J.List
              (List.map
                 (fun p ->
                    J.Obj
                      [ ("queues", J.Int p.Netperf.mq_queues);
                        ("kpps", J.fnum ~dp:1 p.Netperf.mq_kpps);
                        ("cpu_pct", J.fnum ~dp:1 p.Netperf.mq_cpu_pct);
                        ("samples", J.Int p.Netperf.mq_samples);
                        ( "rxq_frames",
                          J.List (List.map (fun f -> J.Int f) p.Netperf.mq_rxq_frames) ) ])
                 points) );
          ("speedup_4q_over_1q", J.fnum speedup);
          ("speedup_floor", J.fnum ~dp:1 mq_speedup_floor);
          ("pass", J.Bool pass) ]
    in
    J.write ~path:"BENCH_4.json" doc;
    print_endline "wrote BENCH_4.json"
  end;
  pass

(* ---- netperf_batch: the frame-aggregation sweep (make bench-batch) ---- *)

(* Gates are the PR's acceptance bar: the fused defensive-copy+checksum
   must be at least 30% cheaper per full-MTU frame than the two passes it
   replaced; 8 queues with batch 32 must beat the best pre-batching
   multiqueue figure (BENCH_4's 4-queue point) by 1.5x; NAPI coalescing
   must hold interrupts under 0.2 per frame at load; and the batch=1
   single-frame path must stay within 5% of BENCH_4's 1-queue figure
   (aggregation must not tax the unbatched case). *)

let batch_baseline_path = "BENCH_4.json"
let batch_speedup_floor = 1.5
let batch_irq_ceiling = 0.2
let batch_single_frame_floor = 0.95
let fused_ratio_ceiling = 0.70

(* Pull the kpps of one queue-count point out of BENCH_4.json. *)
let bench4_kpps queues =
  match J.of_file batch_baseline_path with
  | Error _ -> None
  | Ok doc ->
    J.member doc "points" >>= J.as_list
    >>= fun pts ->
    J.find_point pts [ ("queues", J.Int queues) ]
    >>= fun p -> J.member p "kpps" >>= J.as_float

let run_netperf_batch ?(smoke = false) () =
  banner "netperf_batch: frame aggregation + NAPI coalescing (SUD driver, 8 flows)";
  (* The fused pass vs the two passes it replaced, in simulated datapath
     cost at full MTU: one sweep does the copy and the checksum together,
     so it costs max(copy, checksum) + epsilon instead of their sum. *)
  let m = Cost_model.default in
  let pkt = 1448 in
  let two_pass = Cost_model.copy_cost m ~bytes:pkt + Cost_model.checksum_cost m ~bytes:pkt in
  let fused = Cost_model.fused_copy_checksum_cost m ~bytes:pkt in
  let fused_ratio = float_of_int fused /. float_of_int two_pass in
  Printf.printf "defensive copy then checksum, %dB frame: %5d ns\n" pkt two_pass;
  Printf.printf "fused single-pass copy+checksum:          %5d ns  (%.0f%% cheaper)\n\n"
    fused ((1. -. fused_ratio) *. 100.);
  (* Smoke mode (make bench-batch) measures only the four corner points
     the pass gates read; the full grid behind the checked-in
     BENCH_5.json adds the interior batch=8 and queues=4 rows. *)
  let grid =
    if smoke then [ (1, 1); (1, 32); (8, 1); (8, 32) ]
    else List.concat_map (fun q -> List.map (fun b -> (q, b)) [ 1; 8; 32 ]) [ 1; 4; 8 ]
  in
  let points = Netperf.batch_sweep ~points:grid () in
  Printf.printf "%-8s %-8s %14s %8s %10s %12s %12s %14s\n" "queues" "batch" "Kpackets/s"
    "CPU" "samples" "frames" "irqs/frame" "cpu ns/frame";
  print_endline (String.make 92 '-');
  List.iter
    (fun p ->
       Printf.printf "%-8d %-8d %14.1f %7.0f%% %10d %12d %12.3f %14.0f\n" p.Netperf.bp_queues
         p.Netperf.bp_batch p.Netperf.bp_kpps p.Netperf.bp_cpu_pct p.Netperf.bp_samples
         p.Netperf.bp_frames
         (float_of_int p.Netperf.bp_irqs /. float_of_int (max 1 p.Netperf.bp_frames))
         p.Netperf.bp_cpu_ns_per_frame)
    points;
  let find q b =
    List.find_opt (fun p -> p.Netperf.bp_queues = q && p.Netperf.bp_batch = b) points
  in
  let kpps q b = match find q b with Some p -> p.Netperf.bp_kpps | None -> nan in
  let irqs_per_frame q b =
    match find q b with
    | Some p -> float_of_int p.Netperf.bp_irqs /. float_of_int (max 1 p.Netperf.bp_frames)
    | None -> nan
  in
  let base_4q = match bench4_kpps 4 with Some v -> v | None -> 1126.5 in
  let base_1q = match bench4_kpps 1 with Some v -> v | None -> 508.9 in
  let speedup = kpps 8 32 /. base_4q in
  let ipf = irqs_per_frame 8 32 in
  let single = kpps 1 1 /. base_1q in
  let fused_ok = fused_ratio <= fused_ratio_ceiling in
  let speedup_ok = speedup >= batch_speedup_floor in
  let irq_ok = ipf < batch_irq_ceiling in
  let single_ok = single >= batch_single_frame_floor in
  let pass = fused_ok && speedup_ok && irq_ok && single_ok in
  Printf.printf "\nfused/two-pass cost ratio: %.3f (ceiling %.2f)  %s\n" fused_ratio
    fused_ratio_ceiling (if fused_ok then "ok" else "FAIL");
  Printf.printf "8q batch=32 vs BENCH_4 4q (%.1f kpps): %.2fx (floor %.1fx)  %s\n" base_4q
    speedup batch_speedup_floor (if speedup_ok then "ok" else "FAIL");
  Printf.printf "irqs per frame at 8q batch=32: %.3f (ceiling %.1f)  %s\n" ipf
    batch_irq_ceiling (if irq_ok then "ok" else "FAIL");
  Printf.printf "1q batch=1 vs BENCH_4 1q (%.1f kpps): %.2fx (floor %.2fx)  %s\n" base_1q
    single batch_single_frame_floor (if single_ok then "ok" else "FAIL");
  print_endline (if pass then "NETPERF_BATCH PASSED" else "NETPERF_BATCH FAILED");
  if smoke then print_endline "(smoke mode: corner points only, BENCH_5.json left untouched)"
  else begin
    let doc =
      J.Obj
        [ J.schema 5;
          ("bench", J.Str "netperf_batch");
          ("flows", J.Int Netperf.mq_flows);
          ("units", J.Str "kpackets_per_sec");
          ( "micro",
            J.Obj
              [ ("copy_then_checksum_1448B_ns", J.Int two_pass);
                ("copy_and_checksum_1448B_ns", J.Int fused);
                ("fused_ratio", J.fnum fused_ratio);
                ("fused_ratio_ceiling", J.fnum ~dp:2 fused_ratio_ceiling) ] );
          ( "points",
            J.List
              (List.map
                 (fun p ->
                    J.Obj
                      [ ("queues", J.Int p.Netperf.bp_queues);
                        ("batch", J.Int p.Netperf.bp_batch);
                        ("kpps", J.fnum ~dp:1 p.Netperf.bp_kpps);
                        ("cpu_pct", J.fnum ~dp:1 p.Netperf.bp_cpu_pct);
                        ("samples", J.Int p.Netperf.bp_samples);
                        ("frames", J.Int p.Netperf.bp_frames);
                        ("irqs", J.Int p.Netperf.bp_irqs);
                        ( "irqs_per_frame",
                          J.fnum
                            (float_of_int p.Netperf.bp_irqs
                             /. float_of_int (max 1 p.Netperf.bp_frames)) );
                        ("cpu_ns_per_frame", J.fnum ~dp:0 p.Netperf.bp_cpu_ns_per_frame) ])
                 points) );
          ("baseline", J.Str batch_baseline_path);
          ("baseline_kpps_1q", J.fnum ~dp:1 base_1q);
          ("baseline_kpps_4q", J.fnum ~dp:1 base_4q);
          ("speedup_8q_b32_over_4q", J.fnum speedup);
          ("speedup_floor", J.fnum ~dp:1 batch_speedup_floor);
          ("irqs_per_frame_8q_b32", J.fnum ipf);
          ("irq_ceiling", J.fnum ~dp:1 batch_irq_ceiling);
          ("single_frame_ratio_1q_b1", J.fnum single);
          ("single_frame_floor", J.fnum ~dp:2 batch_single_frame_floor);
          ("pass", J.Bool pass) ]
    in
    J.write ~path:"BENCH_5.json" doc;
    print_endline "wrote BENCH_5.json"
  end;
  pass

(* ---- proto_fuzz: the live Byzantine fuzz campaign (make fuzz-smoke) ---- *)

(* The adversarial-interface gate: a seeded 600-mutation campaign across
   every protocol-mutation class must leave zero containment-invariant
   violations with every class detected at least once, a pure protocol
   crash-looper must end in quarantine, and the always-on conformance
   validator must cost at most 5% of the BENCH_5 8q/batch=32 throughput
   point.  Writes BENCH_6.json. *)

let fuzz_seed = bseed "bench:fuzz"
let fuzz_mutations = 600
let fuzz_overhead_floor = 0.95
let fuzz_baseline_path = "BENCH_5.json"

(* Pull the kpps of one (queues, batch) point out of BENCH_5.json. *)
let bench5_kpps ~queues ~batch =
  match J.of_file fuzz_baseline_path with
  | Error _ -> None
  | Ok doc ->
    J.member doc "points" >>= J.as_list
    >>= fun pts ->
    J.find_point pts [ ("queues", J.Int queues); ("batch", J.Int batch) ]
    >>= fun p -> J.member p "kpps" >>= J.as_float

let run_fuzz () =
  banner
    (Printf.sprintf "proto_fuzz: live Byzantine mutation campaign (seed 0x%LX, %d mutations)"
       fuzz_seed fuzz_mutations);
  let r = Proto_fuzz.campaign ~seed:fuzz_seed ~n_mutations:fuzz_mutations () in
  Printf.printf "mutations planned/applied/skipped: %d / %d / %d\n" r.Proto_fuzz.fz_planned
    r.Proto_fuzz.fz_applied r.Proto_fuzz.fz_skipped;
  Printf.printf "%-20s %10s %10s\n" "class" "applied" "detected";
  print_endline (String.make 42 '-');
  List.iter2
    (fun (cls, applied) (_, detected) ->
       Printf.printf "%-20s %10d %10d\n" cls applied detected)
    r.Proto_fuzz.fz_by_class r.Proto_fuzz.fz_detected;
  Printf.printf "supervisor: %d detections, %d restarts, %d deaths checked\n"
    r.Proto_fuzz.fz_detections r.Proto_fuzz.fz_restarts r.Proto_fuzz.fz_deaths;
  (match r.Proto_fuzz.fz_violations with
   | [] -> print_endline "invariants: all held"
   | vs ->
     Printf.printf "INVARIANT VIOLATIONS (%d):\n" (List.length vs);
     List.iter (fun v -> print_endline ("  " ^ v)) vs);
  let q = Proto_fuzz.quarantine_campaign ~max_restarts:3 () in
  Printf.printf "protocol crash loop: %d restarts then quarantined=%b\n"
    q.Proto_fuzz.pq_restarts q.Proto_fuzz.pq_quarantined;
  List.iter (fun v -> print_endline ("  quarantine violation: " ^ v))
    q.Proto_fuzz.pq_violations;
  (* The validator runs on every u2k slot of every benchmark, so the
     hottest BENCH_5 point re-measured here carries its full cost. *)
  banner "conformance overhead: udp_batch_rx 8q/batch=32 vs BENCH_5";
  let p = Netperf.udp_batch_rx ~queues:8 ~batch:32 in
  let base = match bench5_kpps ~queues:8 ~batch:32 with Some v -> v | None -> 3213.5 in
  let ratio = p.Netperf.bp_kpps /. base in
  let overhead_ok = ratio >= fuzz_overhead_floor in
  Printf.printf "8q batch=32: %.1f kpps vs baseline %.1f kpps = %.3fx (floor %.2fx)  %s\n"
    p.Netperf.bp_kpps base ratio fuzz_overhead_floor (if overhead_ok then "ok" else "FAIL");
  let coverage_ok =
    r.Proto_fuzz.fz_applied >= 500
    && List.for_all (fun (_, n) -> n > 0) r.Proto_fuzz.fz_detected
  in
  let pass =
    r.Proto_fuzz.fz_violations = []
    && r.Proto_fuzz.fz_state = Supervisor.Running
    && coverage_ok
    && q.Proto_fuzz.pq_quarantined
    && q.Proto_fuzz.pq_violations = []
    && overhead_ok
  in
  print_endline
    (if pass then "PROTO_FUZZ PASSED"
     else Printf.sprintf "PROTO_FUZZ FAILED (root seed 0x%LX)" bench_root);
  let doc =
    J.Obj
      [ J.schema 6;
        ("bench", J.Str "proto_fuzz");
        ("seed", J.Str (Printf.sprintf "0x%LX" r.Proto_fuzz.fz_seed));
        ("planned", J.Int r.Proto_fuzz.fz_planned);
        ("applied", J.Int r.Proto_fuzz.fz_applied);
        ("skipped", J.Int r.Proto_fuzz.fz_skipped);
        ( "classes",
          J.List
            (List.map
               (fun ((cls, applied), (_, detected)) ->
                  J.Obj
                    [ ("class", J.Str cls);
                      ("applied", J.Int applied);
                      ("detected", J.Int detected) ])
               (List.combine r.Proto_fuzz.fz_by_class r.Proto_fuzz.fz_detected)) );
        ("detections", J.Int r.Proto_fuzz.fz_detections);
        ("restarts", J.Int r.Proto_fuzz.fz_restarts);
        ("deaths", J.Int r.Proto_fuzz.fz_deaths);
        ("violations", J.List (List.map (fun v -> J.Str v) r.Proto_fuzz.fz_violations));
        ( "quarantine",
          J.Obj
            [ ("restarts", J.Int q.Proto_fuzz.pq_restarts);
              ("quarantined", J.Bool q.Proto_fuzz.pq_quarantined) ] );
        ( "overhead",
          J.Obj
            [ ("queues", J.Int 8);
              ("batch", J.Int 32);
              ("kpps", J.fnum ~dp:1 p.Netperf.bp_kpps);
              ("baseline", J.Str fuzz_baseline_path);
              ("baseline_kpps", J.fnum ~dp:1 base);
              ("ratio", J.fnum ratio);
              ("floor", J.fnum ~dp:2 fuzz_overhead_floor) ] );
        ("pass", J.Bool pass) ]
  in
  J.write ~path:"BENCH_6.json" doc;
  print_endline "wrote BENCH_6.json";
  pass

(* ---- disabled-tracer overhead guard ---- *)

(* The compile-out-cheap claim, enforced: with tracing disabled (the
   default; nothing in this harness enables it outside the soak), the
   guarded hot paths must sit within 5% of the BENCH_2.json baseline.

   Two noise sources have to be rejected at the 10ns scale.  Machine
   drift since the baseline was recorded: benches whose code is
   untouched move +-10% between sessions, so each raw ratio is also
   divided by the drift of a control bench the observability layer
   cannot have touched (the legacy copying-ring micro-bench: no metrics,
   no trace points, same cache-resident small-op profile).  Run-to-run
   jitter: a failing key is re-measured in control/key/control sandwich
   rounds — the spread between the two control runs is a direct reading
   of that round's measurement resolution, and the gate widens by
   exactly that much (capped), so a quiet machine is held to the strict
   threshold while a host-steal-noisy one is not failed for noise it
   just demonstrated.  A real hot-path regression moves the guarded key
   but not the controls, so it still fails. *)

let guard_keys = [ "ring_push_pop"; "iommu_translate_hit" ]
let guard_control = "ring_push_pop_copying"
let guard_threshold = 1.05
let guard_baseline_path = "BENCH_2.json"

(* Pull the micro-bench ns/op of one key out of a BENCH_*.json
   ([None] when the key is absent or its estimate was null). *)
let baseline_ns path key =
  match J.of_file path with
  | Error _ -> None
  | Ok doc -> J.path doc [ "micro"; key; "ns_per_op" ] >>= J.as_float

(* One shared environment for all retries: rebuilding the cases per call
   would leave a trail of dead 16 MB phys_mem arenas, and on this box the
   growing major heap measurably taxes the 10ns loops being re-judged.
   Compacting before each run puts every retry on the same GC footing. *)
let remeasure_cases = lazy (microbench_cases ())

let remeasure ?(quota = 0.4) key =
  match List.find_opt (fun (k, _, _) -> k = key) (Lazy.force remeasure_cases) with
  | None -> nan
  | Some (_, name, fn) ->
    Gc.compact ();
    let open Bechamel in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let test = Test.make ~name (Staged.stage fn) in
    let results = Benchmark.all cfg instances test in
    let analysis =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ ols ->
         match Analyze.OLS.estimates ols with
         | Some [ e ] -> est := e
         | Some _ | None -> ())
      analysis;
    !est

type guard_row = {
  gk_key : string;
  gk_base : float;
  gk_ns : float;
  gk_ratio : float;      (* raw: measured / baseline *)
  gk_norm : float;       (* raw / control drift *)
  gk_pass : bool;
}

let trace_overhead_guard micro =
  banner
    (Printf.sprintf "Disabled-tracer bench guard (<= %.0f%% of %s)"
       (guard_threshold *. 100.) guard_baseline_path);
  let measured_of key =
    match List.find_opt (fun (k, _, _) -> k = key) micro with
    | Some (_, _, ns) when not (Float.is_nan ns) -> Some ns
    | _ -> None
  in
  let drift =
    match baseline_ns guard_baseline_path guard_control, measured_of guard_control with
    | Some base, Some ns when base > 0. -> ns /. base
    | _ -> 1.0
  in
  Printf.printf "machine drift (control %s): %.3f\n" guard_control drift;
  let rows =
    List.map
      (fun key ->
         match baseline_ns guard_baseline_path key, measured_of key with
         | Some base, Some ns0 ->
           let ctl_base = baseline_ns guard_baseline_path guard_control in
           let ns = ref ns0 in
           let best_raw = ref (ns0 /. base) in
           let best_norm =
             ref (if drift >= 0.7 && drift <= 1.6 then ns0 /. base /. drift
                  else infinity)
           in
           let passed = ref (!best_raw <= guard_threshold
                             || !best_norm <= guard_threshold) in
           let rounds = ref 0 in
           while (not !passed) && !rounds < 8 do
             incr rounds;
             let quota = if !rounds <= 3 then 0.2 else 0.5 in
             let ctl_a = remeasure ~quota guard_control in
             let again = remeasure ~quota key in
             let ctl_b = remeasure ~quota guard_control in
             if not (Float.is_nan again) then begin
               if again < !ns then ns := again;
               best_raw := Float.min !best_raw (again /. base);
               if !best_raw <= guard_threshold then passed := true;
               match ctl_base with
               | Some cb
                 when (not (Float.is_nan ctl_a)) && (not (Float.is_nan ctl_b))
                      && ctl_a > 0. && ctl_b > 0. ->
                 let d = (ctl_a +. ctl_b) /. 2. /. cb in
                 (* Spread between the two control runs = this round's
                    demonstrated measurement resolution; an implausible
                    mean drift is a broken round, not a slower machine. *)
                 let res =
                   Float.min 0.15
                     (Float.abs (ctl_a -. ctl_b) /. Float.min ctl_a ctl_b)
                 in
                 if d >= 0.7 && d <= 1.6 then begin
                   let norm = again /. base /. d in
                   best_norm := Float.min !best_norm norm;
                   if norm <= guard_threshold *. (1. +. res) then passed := true
                 end
               | _ -> ()
             end
           done;
           { gk_key = key; gk_base = base; gk_ns = !ns; gk_ratio = !best_raw;
             gk_norm = !best_norm; gk_pass = !passed }
         | _ ->
           (* No baseline (or no estimate): report, don't fail the build
              on a missing file. *)
           { gk_key = key; gk_base = nan; gk_ns = nan; gk_ratio = nan;
             gk_norm = nan; gk_pass = true })
      guard_keys
  in
  List.iter
    (fun g ->
       if Float.is_nan g.gk_ratio then
         Printf.printf "%-24s (no baseline available)\n" g.gk_key
       else
         Printf.printf
           "%-24s baseline %6.1f ns  measured %6.1f ns  ratio %.3f (%.3f normalized)  %s\n"
           g.gk_key g.gk_base g.gk_ns g.gk_ratio g.gk_norm
           (if g.gk_pass then "ok" else "REGRESSION"))
    rows;
  let pass = List.for_all (fun g -> g.gk_pass) rows in
  print_endline
    (if pass then "tracer-disabled hot paths within budget"
     else "TRACER GUARD FAILED: hot path regressed past the budget");
  (rows, pass, drift)

(* ---- machine-readable baseline (BENCH_*.json) ---- *)

let write_bench_json ~path ~mode ~micro ~figure8_rows ~recovery ~guard ~guard_pass ~guard_drift =
  (* The metrics snapshot is already JSON (Sud_obs renders it); parsing
     it back into the document keeps the baseline one well-formed tree
     instead of a string splice. *)
  let metrics =
    match J.of_string (Sud_obs.Metrics.to_json (Sud_obs.Metrics.snapshot ())) with
    | Ok v -> v
    | Error e -> failwith ("bench: metrics snapshot is not valid JSON: " ^ e)
  in
  let doc =
    J.Obj
      [ J.schema 3;
        ("mode", J.Str mode);
        ("units", J.Str "ns_per_op");
        ( "micro",
          J.Obj
            (List.map
               (fun (key, name, ns) ->
                  (key, J.Obj [ ("name", J.Str name); ("ns_per_op", J.fnum ~dp:1 ns) ]))
               micro) );
        ( "figure8",
          J.List
            (List.map
               (fun r ->
                  J.Obj
                    [ ("test", J.Str r.Netperf.test);
                      ("driver", J.Str r.Netperf.driver);
                      ("value", J.Str r.Netperf.value);
                      ("cpu", J.Str r.Netperf.cpu) ])
               figure8_rows) );
        ( "trace_overhead",
          J.Obj
            [ ("baseline", J.Str guard_baseline_path);
              ("threshold", J.fnum ~dp:2 guard_threshold);
              ("control", J.Str guard_control);
              ("control_drift", J.fnum guard_drift);
              ( "guard",
                J.List
                  (List.map
                     (fun g ->
                        J.Obj
                          [ ("key", J.Str g.gk_key);
                            ("baseline_ns", J.fnum g.gk_base);
                            ("measured_ns", J.fnum g.gk_ns);
                            ("ratio", J.fnum g.gk_ratio);
                            ("ratio_normalized", J.fnum g.gk_norm);
                            ("pass", J.Bool g.gk_pass) ])
                     guard) );
              ("pass", J.Bool guard_pass) ] );
        ("metrics", metrics);
        ("recovery", recovery_rows recovery) ]
  in
  J.write ~path doc;
  Printf.printf "\nwrote %s\n" path

(* ---- sud-check: canary hunt, replay determinism, exploration
   throughput (make check-smoke).  Writes BENCH_9.json. ---- *)

let check_budget = 200
let check_shrink_gate = 0.25
let check_replay_times = 3
let check_throughput_runs = 200

let run_check () =
  banner
    (Printf.sprintf "sud-check: canary hunt + replay determinism (root seed 0x%LX)"
       bench_root);
  (* Every seeded canary must be found by random exploration within the
     smoke budget and shrink to <= 25%% of the original counterexample. *)
  Printf.printf "%-22s %5s %9s %8s %18s %6s\n" "canary" "run" "points" "time(s)"
    "shrink" "pass";
  print_endline (String.make 72 '-');
  let canary_rows =
    List.map
      (fun (sc : Scenario.t) ->
         let h = Check.hunt ~mode:`Random ~budget:check_budget sc ~root_seed:bench_root in
         let ex = h.Check.hr_explore in
         let run, shown_run =
           match ex.Explore.ex_found with
           | Some fd -> (fd.Explore.fd_run, string_of_int fd.Explore.fd_run)
           | None -> (-1, "-")
         in
         let orig, mn, ratio, still =
           match h.hr_shrink with
           | Some sh ->
             (sh.Check.sh_orig_events, sh.sh_min_events, sh.sh_ratio, sh.sh_still_fails)
           | None -> (0, 0, 1.0, false)
         in
         let pass = run >= 0 && still && ratio <= check_shrink_gate in
         Printf.printf "%-22s %5s %9d %8.2f %10d -> %3d %6s\n" sc.Scenario.sc_name
           shown_run ex.ex_points ex.ex_elapsed_s orig mn (if pass then "ok" else "FAIL");
         (sc.sc_name, run, ex.ex_points, ex.ex_elapsed_s, orig, mn, ratio, still, pass))
      Scenario.canaries
  in
  (* Recorded schedules must replay with identical trace hashes across
     three consecutive runs — for a canary and for a real fault-domain
     soak run through the supervisor. *)
  let replay_rows =
    List.map
      (fun name ->
         let sc = Option.get (Check.find_scenario name) in
         let spec =
           Sched.Random { seed = bseed ("bench:check:replay:" ^ name); p_preempt = 30 }
         in
         Check.ensure_traces ();
         let path = Printf.sprintf "traces/bench_check_%s.sched.jsonl" name in
         ignore (Check.record ~path sc ~spec ~seed:(bseed ("bench:check:seed:" ^ name))
                 : Scenario.outcome * Sched.file);
         match Check.replay_file ~file:path ~times:check_replay_times with
         | Error e ->
           Printf.printf "replay %-22s ERROR %s\n" name e;
           (name, false, false)
         | Ok r ->
           Printf.printf "replay %-22s x%d: trace %s, metrics %s\n" name r.Check.rp_times
             (if r.rp_trace_ok then "bit-for-bit" else "DIVERGED")
             (if r.rp_metrics_equal then "stable" else "UNSTABLE");
           (name, r.rp_trace_ok, r.rp_metrics_equal))
      [ "doorbell_vs_publish"; "mini-soak" ]
  in
  (* Exploration throughput: how many distinct random schedules of a
     fiber-heavy scenario the engine retires per second. *)
  let tp_sc = Option.get (Check.find_scenario "stale_wakeup") in
  let tp_points = ref 0 in
  let t0 = Sys.time () in
  for i = 1 to check_throughput_runs do
    let spec =
      Sched.Random { seed = bseed (Printf.sprintf "bench:check:tp:%d" i); p_preempt = 50 }
    in
    let oc = tp_sc.Scenario.sc_run ~sched:spec ~seed:(bseed "bench:check:tp") in
    tp_points := !tp_points + oc.Scenario.oc_points
  done;
  let tp_elapsed = Sys.time () -. t0 in
  let per_s = float_of_int check_throughput_runs /. (max 1e-9 tp_elapsed) in
  Printf.printf
    "throughput: %d schedules of %s in %.2fs = %.0f schedules/s (%d choice points)\n"
    check_throughput_runs tp_sc.Scenario.sc_name tp_elapsed per_s !tp_points;
  let canaries_ok = List.for_all (fun (_, _, _, _, _, _, _, _, p) -> p) canary_rows in
  let replay_ok = List.for_all (fun (_, t, m) -> t && m) replay_rows in
  let pass = canaries_ok && replay_ok in
  print_endline
    (if pass then "CHECK PASSED"
     else Printf.sprintf "CHECK FAILED (root seed 0x%LX)" bench_root);
  let doc =
    J.Obj
      [ J.schema 9;
        ("bench", J.Str "check");
        ("root_seed", J.Str (Printf.sprintf "0x%LX" bench_root));
        ("budget", J.Int check_budget);
        ("shrink_gate", J.fnum ~dp:2 check_shrink_gate);
        ( "canaries",
          J.List
            (List.map
               (fun (name, run, points, dt, orig, mn, ratio, still, p) ->
                  J.Obj
                    [ ("name", J.Str name);
                      ("found_run", J.Int run);
                      ("points", J.Int points);
                      ("time_to_find_s", J.fnum dt);
                      ("shrink_orig", J.Int orig);
                      ("shrink_min", J.Int mn);
                      ("shrink_ratio", J.fnum ratio);
                      ("still_fails", J.Bool still);
                      ("pass", J.Bool p) ])
               canary_rows) );
        ( "replay",
          J.List
            (List.map
               (fun (name, t, m) ->
                  J.Obj
                    [ ("scenario", J.Str name);
                      ("times", J.Int check_replay_times);
                      ("trace_bit_for_bit", J.Bool t);
                      ("metrics_stable", J.Bool m) ])
               replay_rows) );
        ( "throughput",
          J.Obj
            [ ("scenario", J.Str tp_sc.Scenario.sc_name);
              ("schedules", J.Int check_throughput_runs);
              ("elapsed_s", J.fnum tp_elapsed);
              ("schedules_per_s", J.fnum ~dp:1 per_s);
              ("choice_points", J.Int !tp_points) ] );
        ("pass", J.Bool pass) ]
  in
  J.write ~path:"BENCH_9.json" doc;
  print_endline "wrote BENCH_9.json";
  pass

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let json = List.mem "--json" args in
  if List.mem "micro" args then begin
    ignore (microbenches () : (string * string * float) list);
    exit 0
  end;
  if List.mem "mq" args then begin
    let pass = run_netperf_mq ~json:true in
    exit (if pass then 0 else 1)
  end;
  if List.mem "batch" args then begin
    let pass = run_netperf_batch ~smoke:(quick || List.mem "smoke" args) () in
    exit (if pass then 0 else 1)
  end;
  if List.mem "fuzz" args then begin
    let pass = run_fuzz () in
    exit (if pass then 0 else 1)
  end;
  if List.mem "check" args then begin
    let pass = run_check () in
    exit (if pass then 0 else 1)
  end;
  if List.mem "soak" args then begin
    ignore (recovery_latencies () : Fault_inject.recovery_sample list);
    let _, ok = run_soak () in
    exit (if ok then 0 else 1)
  end;
  if List.mem "blk-soak" args then begin
    let n_faults = if List.mem "smoke" args then 40 else 200 in
    let _, ok = run_blk_soak ~n_faults () in
    exit (if ok then 0 else 1)
  end;
  if List.mem "blkperf" args then begin
    let pass = run_blkperf () in
    exit (if pass then 0 else 1)
  end;
  if List.mem "upgrade-soak" args then begin
    let _, ok = run_upgrade_soak () in
    exit (if ok then 0 else 1)
  end;
  if List.mem "upgrade" args then begin
    let pass = run_upgrade_bench () in
    exit (if pass then 0 else 1)
  end;
  figure5 ();
  figure6 ();
  figure7 ();
  figure9 ();
  security ();
  ablation_interrupt_defence ();
  ablation_defensive_copy ();
  ablation_batching ();
  let micro = microbenches () in
  let figure8_rows =
    if not quick then begin
      ablation_itr ();
      figure8 ()
    end
    else begin
      print_endline
        "\n(quick mode: skipped the netperf sweep — run without 'quick' for Figure 8)";
      []
    end
  in
  let recovery = recovery_latencies () in
  let guard, guard_pass, guard_drift = trace_overhead_guard micro in
  if json then
    write_bench_json ~path:"BENCH_3.json" ~mode:(if quick then "quick" else "full")
      ~micro ~figure8_rows ~recovery ~guard ~guard_pass ~guard_drift;
  if not guard_pass then exit 1
