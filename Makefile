.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: microbenches + Figure-8 netperf sweep, JSON baseline.
bench:
	dune exec bench/main.exe -- --json

# CI smoke: whole test suite plus a quick JSON bench (no Figure-8 sweep).
bench-smoke:
	dune runtest && dune exec bench/main.exe -- quick --json

clean:
	dune clean
