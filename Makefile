.PHONY: all build test bench bench-smoke soak trace-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: microbenches + Figure-8 netperf sweep, JSON baseline.
bench:
	dune exec bench/main.exe -- --json

# CI smoke: whole test suite plus a quick JSON bench (no Figure-8 sweep).
bench-smoke:
	dune runtest && dune exec bench/main.exe -- quick --json

# Supervision soak: per-fault-class recovery latencies, then a fixed-seed
# storm of ~200 faults under live traffic plus a forced crash loop.
# Exits nonzero if any containment invariant breaks.
soak:
	dune exec bench/main.exe -- soak

# Observability smoke: run a traced DMA-violation recovery and require the
# exported JSONL to contain the full uchan rpc -> iommu fault -> supervisor
# detect -> kill -> restart causal chain.
trace-smoke:
	dune exec bin/sudctl.exe -- trace-smoke

clean:
	dune clean
