.PHONY: all build lint-deprecated test bench bench-smoke bench-mq bench-batch bench-blk soak blk-smoke upgrade-smoke bench-upgrade fuzz-smoke check-smoke trace-smoke clean

all: build

build: lint-deprecated
	dune build

# The deprecated scalar datapath shims (single-vector IRQ setup, scalar
# uchan sends, single-queue netdev flow control) exist only so external
# trees migrate gradually; in-tree code must use the queue-aware API.
# The compiler already enforces this for alert-clean code — this grep
# backstops sources that locally silence alerts.
lint-deprecated:
	@! grep -rnE \
	  'Uchan\.(send|asend|try_asend|usend|uasend)[^a-zA-Z_]|Irq\.(alloc_vector|request_irq|free_irq)[^a-zA-Z_]|Safe_pci\.(setup_irq|teardown_irq|mask_msi|unmask_msi)[^a-zA-Z_]|Netdev\.(netif_stop_queue|netif_wake_queue|backlog_xmit|backlog_take|queue_stopped)[^a-zA-Z_]' \
	  lib bin bench test examples \
	  || { echo 'lint-deprecated: deprecated scalar datapath shim used in-tree (use the ~queue API)'; exit 1; }
	@# The deprecated scalar Uchan counter accessors are gone; stragglers
	@# must read the queue-aware metrics record (Uchan.metrics) instead.
	@! grep -rnE \
	  'Uchan\.(upcalls_sent|downcalls_sent|notifications|dropped|malformed)[^a-zA-Z_]' \
	  lib bin bench test examples \
	  || { echo 'lint-deprecated: removed scalar Uchan accessor referenced (use Uchan.metrics)'; exit 1; }
	@# Protocol-conformance backstop: every driver->kernel slot must be
	@# adjudicated by the Conformance validator before anything acts on
	@# it, so raw Msg.unmarshal_view belongs only to the uchan library
	@# (dispatch + validator).  The Ring micro-bench in bench/ measures
	@# the bare unmarshal cost and is deliberately out of scope, as are
	@# the wire-format round-trip tests.
	@! { grep -rnE 'Msg\.(Batch\.)?unmarshal_view' lib bin examples \
	  | grep -vE '^lib/uchan/(msg|uchan|conformance)\.(ml|mli)'; } | grep -q . \
	  || { echo 'lint-deprecated: Msg.unmarshal_view outside lib/uchan (ingress must go through Conformance)'; exit 1; }
	@# Batched-datapath backstop: the proxy net datapath must never fall
	@# back to per-frame sends — data messages ride the queue-aware
	@# Async/Batched paths so bursts coalesce into scatter-gather batch
	@# slots, one notification per batch.  A Sync transfer of a datapath
	@# kind would reintroduce a blocking round-trip per frame.
	@! grep -nE \
	  'Uchan\.(usend|uasend)[^a-zA-Z_]|Uchan\.Sync \(Msg\.make ~kind:Proxy_proto\.(up_net_xmit|up_interrupt|down_netif_rx|down_tx_free)' \
	  lib/core/proxy_net.ml lib/core/sud_uml.ml \
	  || { echo 'lint-deprecated: per-frame send on the proxy net datapath (use ~queue Async/Batched)'; exit 1; }
	@# Unified-lifecycle backstop: quiesce/resume is the recovery surface;
	@# degrade/revive is the terminal quarantine pair and belongs to the
	@# supervision machinery in lib/core alone.  Anything else reaching
	@# for it is bypassing the recovery state machine.
	@! { grep -rnE 'Proxy_class\.(degrade|revive)[^a-zA-Z_]' lib bin bench test examples \
	  | grep -vE '^lib/core/'; } | grep -q . \
	  || { echo 'lint-deprecated: Proxy_class.degrade/revive outside lib/core (quarantine is supervisor-only; recovery uses quiesce/resume)'; exit 1; }
	@# Class-indexed-lifecycle backstop: drivers launch through
	@# Driver_host.launch with a class witness; the flat start/start_blk
	@# spellings (and their per-class cousins) are deprecated aliases for
	@# external trees only.  lib/core keeps them to implement the alias.
	@! { grep -rnE 'Driver_host\.(start|start_net|start_blk|start_wifi|start_audio|start_usb)[^a-zA-Z_]' \
	  lib bin bench test examples \
	  | grep -vE '^lib/core/'; } | grep -q . \
	  || { echo 'lint-deprecated: flat Driver_host.start* spelling in-tree (use Driver_host.launch with a class)'; exit 1; }
	@# CLI regroup backstop: sudctl is noun-verb now; nothing in-tree may
	@# still invoke the deprecated flat `trace-smoke` spelling (the alias
	@# in bin/sudctl.ml exists only so external scripts migrate).
	@! grep -rnE -e '-- trace[-]smoke' lib bin bench test examples Makefile \
	  || { echo 'lint-deprecated: deprecated `sudctl trace-smoke` invocation (use `sudctl trace smoke`)'; exit 1; }
	@# Determinism backstop: stdlib Random is global mutable state the
	@# sud-check recorder cannot capture, so schedules seeded through it
	@# would not replay.  All randomness flows from the splitmix64 Rng in
	@# lib/sim (sub-seeds via Rng.derive from one root seed).
	@! { grep -rnE '(^|[^.A-Za-z_"])Random\.' lib bin bench test examples \
	  | grep -vE '^lib/sim/rng\.(ml|mli)'; } | grep -q . \
	  || { echo 'lint-deprecated: stdlib Random used outside lib/sim/rng.ml (use Rng / Rng.derive so runs record and replay)'; exit 1; }

test: lint-deprecated
	dune runtest

# Full evaluation: microbenches + Figure-8 netperf sweep, JSON baseline.
bench:
	dune exec bench/main.exe -- --json

# CI smoke: whole test suite plus a quick JSON bench (no Figure-8 sweep).
bench-smoke:
	dune runtest && dune exec bench/main.exe -- quick --json

# Multiqueue sweep: aggregate UDP RX at 1/2/4/8 queues, writes
# BENCH_4.json; exits nonzero unless 4 queues beat 1 queue by >= 2x
# with traffic actually spread across RX queues.
bench-mq:
	dune exec bench/main.exe -- mq

# Batched-datapath sweep in smoke mode: fused copy+checksum micro plus
# the four corner (queues, batch) points, checked against the scaling
# gates (fused ratio, 8q speedup over BENCH_4, irqs/frame, single-frame
# latency); exits nonzero on any gate.  The checked-in BENCH_5.json is
# the full 1/4/8-queue x 1/8/32-batch grid from `batch` without smoke.
bench-batch:
	dune exec bench/main.exe -- batch smoke

# Supervision soak: per-fault-class recovery latencies, then a fixed-seed
# storm of ~200 faults under live traffic plus a forced crash loop, the
# storage soak (200 injected storage faults under synchronous I/O with
# the crash-consistency invariant checked at every recovery), and the
# Byzantine protocol fuzz.  Exits nonzero if any containment invariant
# breaks.
soak:
	dune exec bench/main.exe -- soak
	dune exec bench/main.exe -- blk-soak
	dune exec bench/main.exe -- fuzz
	dune exec bench/main.exe -- upgrade-soak
	dune exec bench/main.exe -- check

# Warm-standby gate: 20 fixed-seed upgrade+fault interleavings (live
# upgrades, forced failovers, poisoned standbys, crashes racing the
# upgrade drain) under synchronous I/O; exits nonzero if any acked
# write is lost or the supervisor fails to return to Running.
upgrade-smoke:
	dune exec bench/main.exe -- upgrade-soak

# Warm-failover latency per storage fault class vs the BENCH_7 cold
# baseline; writes BENCH_8.json and exits nonzero unless the crash
# class fails over >= 2x faster than the cold restart it replaces.
bench-upgrade:
	dune exec bench/main.exe -- upgrade

# Quick storage-soak gate for CI: 40 storage faults, same invariants.
blk-smoke:
	dune exec bench/main.exe -- blk-soak smoke

# Block datapath sweep: durable IOPS over queue depth x read mix on the
# supervised NVMe, plus per-fault-class recovery latency; writes
# BENCH_7.json and exits nonzero unless qd16 scales >= 2x over qd1 and
# every storage fault class recovers inside the soak's outage bound.
bench-blk:
	dune exec bench/main.exe -- blkperf

# Adversarial-interface smoke: the fixed-seed 600-mutation Byzantine
# protocol campaign (every class applied and detected, containment
# invariants held, protocol crash loop quarantined) plus the
# conformance-overhead gate vs BENCH_5; writes BENCH_6.json and exits
# nonzero on any failure.
fuzz-smoke:
	dune exec bench/main.exe -- fuzz

# sud-check smoke: random exploration must find and shrink every seeded
# canary ordering bug (<= 25% of the original counterexample), recorded
# schedules must replay with identical trace hashes across 3 consecutive
# runs (including a supervised fault-domain soak), and the exploration
# throughput is reported; writes BENCH_9.json, exits nonzero on any gate.
check-smoke:
	dune exec bench/main.exe -- check

# Observability smoke: run a traced DMA-violation recovery and require the
# exported JSONL to contain the full uchan rpc -> iommu fault -> supervisor
# detect -> kill -> restart causal chain.
trace-smoke:
	dune exec bin/sudctl.exe -- trace smoke

clean:
	dune clean
