(* Driver crash recovery: kill -9 a running (malicious) driver and restart
   a good one on the same device — the administrator workflow of §4.1.

     dune exec examples/driver_restart.exe *)

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0a") ~medium () in
  let peer = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0b") ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let bdf_peer = Kernel.attach_pci k (E1000_dev.device peer) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"admin" (fun () ->
         let sp = Safe_pci.init k in
         (* A driver that goes rogue: it starts normally, then begins
            issuing DMA to kernel addresses. *)
         let rogue =
           Mal_nic.driver ~name:"suspicious-e1000"
             ~on_open:(fun t ->
                 Mal_nic.dma_read_via_tx t ~target:0x1000 ~len:64;
                 Ok ())
             ()
         in
         let s1 =
           match Driver_host.launch k sp (Driver_host.net ()) ~bdf rogue with
           | Ok s -> s
           | Error e -> failwith e
         in
         Printf.printf "[admin] started driver as pid %d\n" (Process.pid (Driver_host.proc s1));
         ignore (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s1) : (unit, string) result);
         ignore (Fiber.sleep eng 5_000_000 : Fiber.wake);
         List.iter
           (fun f -> Printf.printf "[iommu] %s\n" (Bus.string_of_fault f))
           (Iommu.faults k.Kernel.iommu);
         Printf.printf "[admin] driver is misbehaving — kill -9 %d\n"
           (Process.pid (Driver_host.proc s1));
         Driver_host.kill s1;
         Printf.printf "[admin] process alive: %b; restarting with the stock e1000 driver\n"
           (Process.is_alive (Driver_host.proc s1));
         ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
         (match Driver_host.launch k sp (Driver_host.net ()) ~bdf ~name:"eth0" E1000.driver with
          | Error e -> failwith ("restart: " ^ e)
          | Ok s2 ->
            (match Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s2) with
             | Ok () -> print_endline "[admin] eth0 back up with a fresh driver process"
             | Error e -> failwith e);
            (* Prove traffic flows again. *)
            let peer_dev =
              match Native_net.attach ~name:"eth1" k E1000.driver bdf_peer with
              | Ok d -> d
              | Error e -> failwith e
            in
            ignore (Netstack.ifconfig_up k.Kernel.net peer_dev : (unit, string) result);
            let sock = Netstack.udp_bind k.Kernel.net (Driver_host.netdev s2) ~port:1234 in
            let sink = Netstack.udp_bind k.Kernel.net peer_dev ~port:4321 in
            ignore
              (Netstack.udp_sendto k.Kernel.net sock ~dst:(Netdev.mac peer_dev) ~dst_port:4321
                 (Bytes.of_string "alive again")
               : [ `Sent | `Dropped ]);
            (match Netstack.udp_recv k.Kernel.net sink with
             | Some (d, _) -> Printf.printf "[peer] received %S — recovery complete\n"
                                (Bytes.to_string d)
             | None -> print_endline "[peer] nothing came through")))
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng
