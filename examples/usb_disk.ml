(* USB mass storage (the paper's §4 "block device proxy driver" extension)
   plus a USB keyboard, both behind one EHCI controller whose driver runs
   as an untrusted process.

     dune exec examples/usb_disk.exe *)

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let hci = Usb_hci_dev.create eng ~ports:2 () in
  let disk = Usb_device.storage ~name:"usb-stick" ~blocks:128 in
  let kbd = Usb_device.keyboard ~name:"usb-kbd" in
  Usb_hci_dev.plug hci ~port:0 disk;
  Usb_hci_dev.plug hci ~port:1 kbd;
  let bdf = Kernel.attach_pci k (Usb_hci_dev.device hci) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"main" (fun () ->
         let sp = Safe_pci.init k in
         let s =
           match
             Driver_host.launch k sp ~bdf
               (Driver_host.usb ~bind_storage:Ehci.bind_storage
                  ~bind_keyboard:Ehci.poll_keyboard)
               Ehci.driver
           with
           | Ok s -> s
           | Error e -> failwith e
         in
         let proxy = Driver_host.usb_proxy s in
         Proxy_usb.set_key_handler proxy (fun key ->
             Printf.printf "[input] key event 0x%02x\n" key);
         (match Proxy_usb.wait_block proxy ~timeout_ns:2_000_000_000 with
          | Some cap -> Printf.printf "usb-storage: %d blocks (%d KiB)\n" cap (cap / 2)
          | None -> failwith "no disk found");
         (* A tiny filesystem-ish workload: write a tagged block chain. *)
         print_endline "writing a 16-block chain...";
         for lba = 0 to 15 do
           let block = Bytes.make 512 '\000' in
           Bytes.blit_string (Printf.sprintf "block-%02d" lba) 0 block 0 8;
           Bytes.set_int32_le block 508 (Int32.of_int (lba + 1));
           match Proxy_usb.write_blocks proxy ~lba block with
           | Ok () -> ()
           | Error e -> failwith e
         done;
         print_endline "reading it back following the chain...";
         let rec follow lba n =
           if n < 16 then begin
             match Proxy_usb.read_blocks proxy ~lba ~count:1 with
             | Error e -> failwith e
             | Ok b ->
               Printf.printf "  lba %2d: %s\n" lba (Bytes.sub_string b 0 8);
               let next = Int32.to_int (Bytes.get_int32_le b 508) in
               if next < 16 then follow next (n + 1)
           end
         in
         follow 0 0;
         (* Keystrokes while the disk churns. *)
         Usb_device.keyboard_press kbd ~key:0x0b;   (* 'h' *)
         Usb_device.keyboard_press kbd ~key:0x0c;   (* 'i' *)
         ignore (Fiber.sleep eng 200_000_000 : Fiber.wake);
         Printf.printf "done (%d key events delivered)\n" (Proxy_usb.keys_received proxy))
     : Fiber.t);
  Engine.run ~max_time:5_000_000_000 eng
