(* 802.11 management through the wireless proxy: scan, associate, change
   bitrate from a non-preemptable context (the mirrored-state trick of
   §3.1.1), and survive a firmware-initiated roam.

     dune exec examples/wifi_roaming.exe *)

let bsses =
  [ { Wifi_dev.bssid = 0x1A; ssid = "csail"; signal_dbm = -42 };
    { Wifi_dev.bssid = 0x2B; ssid = "stata-guest"; signal_dbm = -61 };
    { Wifi_dev.bssid = 0x3C; ssid = "MIT"; signal_dbm = -55 } ]

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let air = Net_medium.create eng ~rate_bps:54_000_000 ~latency_ns:100_000 () in
  let wifi =
    Wifi_dev.create eng ~mac:(Skbuff.Mac.of_string "02:24:d7:aa:bb:cc") ~medium:air
      ~bss_list:bsses ()
  in
  let bdf = Kernel.attach_pci k (Wifi_dev.device wifi) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"main" (fun () ->
         let sp = Safe_pci.init k in
         let s =
           match Driver_host.launch k sp Driver_host.wifi ~bdf Iwl.driver with
           | Ok s -> s
           | Error e -> failwith e
         in
         let proxy = Driver_host.wifi_proxy s in
         (match Netstack.ifconfig_up k.Kernel.net (Driver_host.wifi_netdev s) with
          | Ok () -> print_endline "wlan0 up (iwlagn running as an untrusted process)"
          | Error e -> failwith e);
         Printf.printf "supported bitrates (mirrored, no upcall): %s Mb/s\n"
           (String.concat ", " (List.map string_of_int (Proxy_wifi.bitrates proxy)));
         (match Proxy_wifi.scan proxy with
          | Ok bssids ->
            Printf.printf "scan found %d BSSes:" (List.length bssids);
            List.iter (fun b -> Printf.printf " %02x" b) bssids;
            print_newline ()
          | Error e -> failwith ("scan: " ^ e));
         (match Proxy_wifi.associate proxy ~bssid:0x1A with
          | Ok () -> print_endline "associated with 1a (\"csail\")"
          | Error e -> failwith ("associate: " ^ e));
         ignore (Fiber.sleep eng 5_000_000 : Fiber.wake);
         Printf.printf "carrier: %b\n" (Netdev.carrier (Driver_host.wifi_netdev s));
         (* The kernel enables a faster rate while holding a spinlock: the
            proxy must not block here (paper §3.1.1). *)
         Preempt.with_atomic k.Kernel.preempt (fun () ->
             print_endline "enabling 54 Mb/s from atomic context (async upcall)...";
             Proxy_wifi.set_rate proxy 5);
         ignore (Fiber.sleep eng 5_000_000 : Fiber.wake);
         Printf.printf "device now at %d Mb/s\n" (Wifi_dev.current_rate wifi);
         (* Firmware roams on its own; the BSS change flows back as a
            downcall and updates the kernel's mirror. *)
         print_endline "firmware roams to 3c (\"MIT\")...";
         Wifi_dev.roam wifi ~bssid:0x3C;
         ignore (Fiber.sleep eng 5_000_000 : Fiber.wake);
         (match Proxy_wifi.current_bss proxy with
          | Some _ -> Printf.printf "kernel mirror saw the BSS change (associated: %02x)\n"
                        (match Wifi_dev.associated wifi with Some b -> b | None -> 0)
          | None -> print_endline "mirror did not update"))
     : Fiber.t);
  Engine.run ~max_time:3_000_000_000 eng
