(* Stream a sine wave through the untrusted snd-hda-intel driver and watch
   the period interrupts pace the application — the realtime workload the
   paper says an administrator would give sched_setscheduler (§4.1).

     dune exec examples/sound_stream.exe *)

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let hda = Hda_dev.create eng () in
  let bdf = Kernel.attach_pci k (Hda_dev.device hda) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"player" (fun () ->
         let sp = Safe_pci.init k in
         let s =
           match Driver_host.launch k sp Driver_host.audio ~bdf Hda.driver with
           | Ok s -> s
           | Error e -> failwith e
         in
         (* Realtime scheduling for the audio driver process. *)
         Process.set_scheduler (Driver_host.audio_proc s) Process.Realtime;
         let proxy = Driver_host.audio_proxy s in
         (match Proxy_audio.set_volume proxy 70 with
          | Ok () -> print_endline "mixer: volume 70"
          | Error e -> failwith e);
         (match Proxy_audio.start proxy with
          | Ok () -> print_endline "stream started (48 kHz stereo s16)"
          | Error e -> failwith e);
         (* 440 Hz sine, s16le stereo. *)
         let sine =
           Bytes.init 19200 (fun i ->
               let frame = i / 4 in
               let v =
                 int_of_float (12000.0 *. sin (2.0 *. Float.pi *. 440.0 *. float frame /. 48000.0))
               in
               if i land 1 = 0 then Char.chr (v land 0xff)
               else Char.chr ((v asr 8) land 0xff))
         in
         let fed = ref 0 in
         for period = 1 to 10 do
           (* Feed ~one period of PCM, paced by the period interrupts. *)
           let off = ref 0 in
           while !off < 1920 do
             let chunk = Bytes.sub sine ((!fed + !off) mod 17000) 1920 in
             let n = Proxy_audio.write proxy chunk in
             if n = 0 then ignore (Proxy_audio.wait_period proxy ~timeout_ns:200_000_000 : bool)
             else off := !off + n
           done;
           fed := !fed + 1920;
           if Proxy_audio.wait_period proxy ~timeout_ns:200_000_000 then
             Printf.printf "period %2d elapsed — device has played %6d bytes\n" period
               (Hda_dev.bytes_played hda)
         done;
         (match Proxy_audio.stop proxy with
          | Ok () -> () | Error _ -> ());
         Printf.printf "done: %d bytes played, %d buffers completed, PCM checksum 0x%x\n"
           (Hda_dev.bytes_played hda) (Hda_dev.buffers_completed hda)
           (Hda_dev.audio_checksum hda))
     : Fiber.t);
  Engine.run ~max_time:5_000_000_000 eng
