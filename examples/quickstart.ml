(* Quickstart: boot a simulated machine, run the unmodified e1000 driver as
   an untrusted SUD process, and ping a peer across the gigabit link.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A machine: engine, kernel, a gigabit segment with two NICs. *)
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic_a = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0a") ~medium () in
  let nic_b = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0b") ~medium () in
  let bdf_a = Kernel.attach_pci k (E1000_dev.device nic_a) in
  let bdf_b = Kernel.attach_pci k (E1000_dev.device nic_b) in

  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"main" (fun () ->
         (* 2. NIC A: the e1000 driver as an untrusted user process under
            SUD.  NIC B: the same driver code, trusted in-kernel. *)
         let sp = Safe_pci.init k in
         let started =
           match Driver_host.launch k sp (Driver_host.net ()) ~bdf:bdf_a ~name:"eth0" E1000.driver with
           | Ok s -> s
           | Error e -> failwith e
         in
         let eth0 = Driver_host.netdev started in
         Printf.printf "started untrusted driver: process %d (uid %d) driving %s\n"
           (Process.pid (Driver_host.proc started))
           (Process.uid (Driver_host.proc started))
           (Netdev.name eth0);
         (match Netstack.ifconfig_up k.Kernel.net eth0 with
          | Ok () -> print_endline "eth0 up"
          | Error e -> failwith e);
         let eth1 =
           match Native_net.attach ~name:"eth1" k E1000.driver bdf_b with
           | Ok d -> d
           | Error e -> failwith e
         in
         ignore (Netstack.ifconfig_up k.Kernel.net eth1 : (unit, string) result);

         (* 3. Traffic through the whole stack: UDP echo over the wire. *)
         let server = Netstack.udp_bind k.Kernel.net eth1 ~port:7 in
         ignore
           (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"echo" (fun () ->
                let rec loop () =
                  match Netstack.udp_recv k.Kernel.net server with
                  | Some (data, (src, sport)) ->
                    ignore
                      (Netstack.udp_sendto k.Kernel.net server ~dst:src ~dst_port:sport data
                       : [ `Sent | `Dropped ]);
                    loop ()
                  | None -> ()
                in
                loop ())
            : Fiber.t);
         let client = Netstack.udp_bind k.Kernel.net eth0 ~port:9999 in
         for i = 1 to 5 do
           let msg = Printf.sprintf "ping %d" i in
           ignore
             (Netstack.udp_sendto k.Kernel.net client ~dst:(Netdev.mac eth1) ~dst_port:7
                (Bytes.of_string msg)
              : [ `Sent | `Dropped ]);
           match Netstack.udp_recv k.Kernel.net client with
           | Some (reply, _) ->
             Printf.printf "%-8s -> echoed %S (rtt through 2 full driver stacks)\n" msg
               (Bytes.to_string reply)
           | None -> print_endline "no reply"
         done;

         (* 4. What SUD set up underneath (Figure 9's view). *)
         print_endline "\nIO virtual memory mappings for eth0's device:";
         List.iter
           (fun (iova, _phys, len, _w) ->
              Printf.printf "  0x%08x - 0x%08x (%d KiB)\n" iova (iova + len) (len / 1024))
           (Safe_pci.iommu_mappings (Driver_host.grant started));
         let um = Uchan.metrics (Driver_host.chan started) in
         Printf.printf "\nuchan: %d upcalls, %d downcalls, %d notifications\n"
           (Sud_obs.Metrics.get um.Uchan.um_up)
           (Sud_obs.Metrics.get um.Uchan.um_down)
           (Sud_obs.Metrics.get um.Uchan.um_notify))
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng
