(* Device-class coverage: every proxy class from Figure 5 moving real data
   through an untrusted driver process. *)

open Helpers

let test_ne2k_sud () =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let ne2k = Ne2k_dev.create k.Kernel.eng ~mac:mac_a ~medium () in
       let e1000 = E1000_dev.create k.Kernel.eng ~mac:mac_b ~medium () in
       let bdf_a = Kernel.attach_pci k (Ne2k_dev.device ne2k) in
       let bdf_b = Kernel.attach_pci k (E1000_dev.device e1000) in
       (bdf_a, bdf_b))
    (fun k (bdf_a, bdf_b) ->
       let sp = Safe_pci.init k in
       let started =
         ok_or_fail "start ne2k" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:bdf_a ~name:"eth0" Ne2k.driver)
       in
       let dev_a = Driver_host.netdev started in
       Alcotest.(check bytes) "PROM MAC" mac_a (Netdev.mac dev_a);
       ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net dev_a);
       let dev_b = up_native ~name:"eth1" k bdf_b in
       let sock_a = Netstack.udp_bind k.Kernel.net dev_a ~port:68 in
       let sock_b = Netstack.udp_bind k.Kernel.net dev_b ~port:67 in
       (match
          Netstack.udp_sendto k.Kernel.net sock_a ~dst:(Netdev.mac dev_b) ~dst_port:67
            (Bytes.of_string "pio out")
        with
        | `Sent -> ()
        | `Dropped -> Alcotest.fail "ne2k tx dropped");
       (match Netstack.udp_recv k.Kernel.net sock_b with
        | Some (d, _) -> Alcotest.(check string) "ne2k tx" "pio out" (Bytes.to_string d)
        | None -> Alcotest.fail "nothing from ne2k");
       (match
          Netstack.udp_sendto k.Kernel.net sock_b ~dst:(Netdev.mac dev_a) ~dst_port:68
            (Bytes.of_string "pio in")
        with
        | `Sent -> ()
        | `Dropped -> Alcotest.fail "peer tx dropped");
       match Netstack.udp_recv k.Kernel.net sock_a with
       | Some (d, _) -> Alcotest.(check string) "ne2k rx" "pio in" (Bytes.to_string d)
       | None -> Alcotest.fail "nothing to ne2k")

let wifi_bsses =
  [ { Wifi_dev.bssid = 0x1A; ssid = "csail"; signal_dbm = -40 };
    { Wifi_dev.bssid = 0x2B; ssid = "stata-guest"; signal_dbm = -60 } ]

let test_wifi_sud () =
  run_in_kernel
    (fun k ->
       let air = Net_medium.create k.Kernel.eng () in
       let wifi =
         Wifi_dev.create k.Kernel.eng ~mac:mac_a ~medium:air ~bss_list:wifi_bsses ()
       in
       let bdf = Kernel.attach_pci k (Wifi_dev.device wifi) in
       (wifi, bdf))
    (fun k (wifi, bdf) ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start iwl" (Driver_host.launch k sp Driver_host.wifi ~bdf Iwl.driver) in
       let proxy = Driver_host.wifi_proxy s in
       ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.wifi_netdev s));
       (* Mirrored state answers without an upcall, even in atomic context
          (paper §3.1.1). *)
       let rates = Preempt.with_atomic k.Kernel.preempt (fun () -> Proxy_wifi.bitrates proxy) in
       Alcotest.(check (list int)) "mirrored rates"
         (Array.to_list Wifi_dev.supported_rates) rates;
       let bssids = ok_or_fail "scan" (Proxy_wifi.scan proxy) in
       Alcotest.(check (list int)) "scan results" [ 0x1A; 0x2B ] bssids;
       ok_or_fail "associate" (Proxy_wifi.associate proxy ~bssid:0x1A);
       ignore (Fiber.sleep k.Kernel.eng 2_000_000 : Fiber.wake);
       Alcotest.(check (option int)) "associated" (Some 0x1A) (Wifi_dev.associated wifi);
       Alcotest.(check bool) "carrier on" true (Netdev.carrier (Driver_host.wifi_netdev s));
       (* Rate change queued from non-preemptable context. *)
       Preempt.with_atomic k.Kernel.preempt (fun () -> Proxy_wifi.set_rate proxy 5);
       ignore (Fiber.sleep k.Kernel.eng 2_000_000 : Fiber.wake);
       Alcotest.(check int) "rate applied" 54 (Wifi_dev.current_rate wifi);
       (* Roam: firmware-initiated BSS change propagates to the mirror. *)
       Wifi_dev.roam wifi ~bssid:0x2B;
       ignore (Fiber.sleep k.Kernel.eng 2_000_000 : Fiber.wake);
       Alcotest.(check bool) "bss change mirrored" true (Proxy_wifi.current_bss proxy <> None))

let test_audio_sud () =
  run_in_kernel
    (fun k ->
       let hda = Hda_dev.create k.Kernel.eng () in
       let bdf = Kernel.attach_pci k (Hda_dev.device hda) in
       (hda, bdf))
    (fun k (hda, bdf) ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start hda" (Driver_host.launch k sp Driver_host.audio ~bdf Hda.driver) in
       let proxy = Driver_host.audio_proxy s in
       ok_or_fail "set volume" (Proxy_audio.set_volume proxy 42);
       Alcotest.(check int) "volume round trip" 42
         (ok_or_fail "get volume" (Proxy_audio.get_volume proxy));
       ok_or_fail "start stream" (Proxy_audio.start proxy);
       (* Feed some PCM and let the DAC chew through a few periods. *)
       let pcm = Bytes.init 2048 (fun i -> Char.chr (i land 0xff)) in
       for _ = 1 to 8 do
         ignore (Proxy_audio.write proxy pcm : int)
       done;
       Alcotest.(check bool) "period interrupt arrives" true
         (Proxy_audio.wait_period proxy ~timeout_ns:100_000_000);
       ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
       Alcotest.(check bool) "samples played" true (Hda_dev.bytes_played hda > 0);
       Alcotest.(check bool) "periods counted" true (Proxy_audio.periods_elapsed proxy >= 1);
       Alcotest.(check int) "device volume" 42 (Hda_dev.volume hda);
       (* PCM integrity: the stream is 4 periods of silence (primed before
          our writes arrived), then our 16 KiB pattern contiguously, then
          silence again.  Model that and compare additive checksums. *)
       let played = Hda_dev.bytes_played hda in
       let silence = 4 * Hda.period_bytes in
       let pattern_played = max 0 (min (played - silence) (8 * 2048)) in
       let expected = ref 0 in
       for j = 0 to pattern_played - 1 do
         expected := (!expected + (j land 0xff)) land 0x3FFFFFFF
       done;
       Alcotest.(check int) "PCM checksum matches what we queued" !expected
         (Hda_dev.audio_checksum hda))

let test_usb_storage_sud () =
  run_in_kernel
    (fun k ->
       let hci = Usb_hci_dev.create k.Kernel.eng ~ports:2 () in
       let disk = Usb_device.storage ~name:"stick" ~blocks:64 in
       let kbd = Usb_device.keyboard ~name:"kbd" in
       Usb_hci_dev.plug hci ~port:0 disk;
       Usb_hci_dev.plug hci ~port:1 kbd;
       let bdf = Kernel.attach_pci k (Usb_hci_dev.device hci) in
       (hci, disk, kbd, bdf))
    (fun k (_hci, disk, kbd, bdf) ->
       let sp = Safe_pci.init k in
       let s =
         ok_or_fail "start ehci"
           (Driver_host.launch k sp ~bdf
              (Driver_host.usb ~bind_storage:Ehci.bind_storage
                 ~bind_keyboard:Ehci.poll_keyboard)
              Ehci.driver)
       in
       let proxy = Driver_host.usb_proxy s in
       let keys = ref [] in
       Proxy_usb.set_key_handler proxy (fun key -> keys := key :: !keys);
       (match Proxy_usb.wait_block proxy ~timeout_ns:2_000_000_000 with
        | Some cap -> Alcotest.(check int) "capacity" 64 cap
        | None -> Alcotest.fail "no storage registered");
       (* Write a pattern through the whole SUD+USB+SCSI stack and read it
          back, then verify against the backing store directly. *)
       let block = Bytes.init 512 (fun i -> Char.chr ((i * 7) land 0xff)) in
       ok_or_fail "write blocks" (Proxy_usb.write_blocks proxy ~lba:5 block);
       let back = ok_or_fail "read blocks" (Proxy_usb.read_blocks proxy ~lba:5 ~count:1) in
       Alcotest.(check bytes) "round trip" block back;
       Alcotest.(check bytes) "backing store" block (Usb_device.storage_peek disk ~lba:5);
       (* Keyboard events flow as input downcalls. *)
       Usb_device.keyboard_press kbd ~key:0x04;
       Usb_device.keyboard_press kbd ~key:0x05;
       let deadline = Engine.now k.Kernel.eng + 1_000_000_000 in
       while List.length !keys < 2 && Engine.now k.Kernel.eng < deadline do
         ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake)
       done;
       Alcotest.(check int) "keyboard queue drained" 0 (Usb_device.keyboard_pending kbd);
       Alcotest.(check (list int)) "keys" [ 0x04; 0x05 ] (List.rev !keys))

let test_uhci_storage_sud () =
  run_in_kernel
    (fun k ->
       let hci = Uhci_dev.create k.Kernel.eng ~ports:2 () in
       let disk = Usb_device.storage ~name:"stick" ~blocks:32 in
       let kbd = Usb_device.keyboard ~name:"kbd" in
       Uhci_dev.plug hci ~port:0 disk;
       Uhci_dev.plug hci ~port:1 kbd;
       let bdf = Kernel.attach_pci k (Uhci_dev.device hci) in
       (disk, kbd, bdf))
    (fun k (disk, kbd, bdf) ->
       let sp = Safe_pci.init k in
       let s =
         ok_or_fail "start uhci"
           (Driver_host.launch k sp ~bdf
              (Driver_host.usb ~bind_storage:Ehci.bind_storage
                 ~bind_keyboard:Ehci.poll_keyboard)
              Uhci.driver)
       in
       let proxy = Driver_host.usb_proxy s in
       let keys = ref 0 in
       Proxy_usb.set_key_handler proxy (fun _ -> incr keys);
       (match Proxy_usb.wait_block proxy ~timeout_ns:5_000_000_000 with
        | Some cap -> Alcotest.(check int) "capacity over UHCI" 32 cap
        | None -> Alcotest.fail "no storage registered via UHCI");
       let block = Bytes.init 512 (fun i -> Char.chr ((i * 3) land 0xff)) in
       ok_or_fail "write" (Proxy_usb.write_blocks proxy ~lba:7 block);
       let back = ok_or_fail "read" (Proxy_usb.read_blocks proxy ~lba:7 ~count:1) in
       Alcotest.(check bytes) "round trip over the frame list" block back;
       Alcotest.(check bytes) "backing store" block (Usb_device.storage_peek disk ~lba:7);
       Usb_device.keyboard_press kbd ~key:0x10;
       let deadline = Engine.now k.Kernel.eng + 2_000_000_000 in
       while !keys < 1 && Engine.now k.Kernel.eng < deadline do
         ignore (Fiber.sleep k.Kernel.eng 20_000_000 : Fiber.wake)
       done;
       Alcotest.(check int) "key delivered over UHCI" 1 !keys)

let suite =
  [ Alcotest.test_case "ne2k (PIO) under SUD" `Quick test_ne2k_sud;
    Alcotest.test_case "wifi under SUD" `Quick test_wifi_sud;
    Alcotest.test_case "audio under SUD" `Quick test_audio_sud;
    Alcotest.test_case "usb storage + keyboard under SUD" `Quick test_usb_storage_sud;
    Alcotest.test_case "uhci: storage + keyboard under SUD" `Quick test_uhci_storage_sud ]
