(* sud-check: canaries, exploration, record/replay determinism, shrinking. *)

let root = 0xC4EC_0001L

(* Every canary must be clean under the default FIFO policy — the bugs
   are ordering bugs, not logic bugs. *)
let test_fifo_clean () =
  List.iter
    (fun (sc : Scenario.t) ->
       let oc = sc.Scenario.sc_run ~sched:Sched.Fifo ~seed:(Explore.scenario_seed ~root sc) in
       Alcotest.(check (list string)) (sc.sc_name ^ " clean under FIFO") []
         oc.Scenario.oc_failures;
       Alcotest.(check bool) (sc.sc_name ^ " offered choice points") true
         (oc.oc_points > 0))
    Scenario.canaries

(* Random exploration finds every canary within the smoke budget. *)
let test_random_explore_finds () =
  List.iter
    (fun (sc : Scenario.t) ->
       let r = Explore.random sc ~root_seed:root ~budget:200 in
       Alcotest.(check bool) (sc.sc_name ^ " FIFO baseline clean") true r.Explore.ex_fifo_clean;
       Alcotest.(check bool) (sc.sc_name ^ " found by random explore") true
         (r.ex_found <> None))
    Scenario.canaries

(* Bounded systematic exploration with a preemption budget of 2 finds
   the depth-1 and depth-2 canaries. *)
let test_bounded_explore_finds () =
  List.iter
    (fun name ->
       let sc = Option.get (Scenario.find name) in
       let r = Explore.bounded ~max_preemptions:2 sc ~root_seed:root ~budget:400 in
       Alcotest.(check bool) (name ^ " found by bounded explore") true (r.Explore.ex_found <> None))
    [ "doorbell_vs_publish"; "quiesce_vs_handoff" ]

(* Strict replay on a raw engine: re-executes bit-for-bit, and a
   tampered decision list is reported as divergence. *)
let test_strict_replay () =
  let build () =
    let eng = Engine.create () in
    for i = 1 to 6 do
      ignore
        (Engine.schedule_after eng (i * 100) (fun () ->
             for _ = 1 to 3 do
               ignore (Engine.schedule_now eng ignore : Engine.handle)
             done)
         : Engine.handle)
    done;
    eng
  in
  let eng1 = build () in
  let r1 = Sched.install eng1 (Sched.Random { seed = 7L; p_preempt = 80 }) in
  Engine.run eng1;
  let ds = Sched.decisions r1 in
  Alcotest.(check bool) "recorded decisions" true (ds <> []);
  let eng2 = build () in
  let r2 = Sched.install ~strict:true eng2 (Sched.Replay ds) in
  Engine.run eng2;
  Alcotest.(check (option string)) "strict replay aligned" None r2.Sched.rec_divergence;
  Alcotest.(check int64) "strict replay same trace hash" (Engine.trace_hash eng1)
    (Engine.trace_hash eng2);
  let tampered =
    match ds with d :: tl -> { d with Sched.d_ready = d.Sched.d_ready + 7 } :: tl | [] -> []
  in
  let eng3 = build () in
  let r3 = Sched.install ~strict:true eng3 (Sched.Replay tampered) in
  Engine.run eng3;
  Alcotest.(check bool) "tampered replay diverges" true (r3.Sched.rec_divergence <> None)

(* Schedule files survive a save/load round-trip. *)
let test_sched_file_roundtrip () =
  let sc = Option.get (Scenario.find "doorbell_vs_publish") in
  let spec = Sched.Random { seed = 99L; p_preempt = 50 } in
  let path = "traces/check_roundtrip.sched.jsonl" in
  let oc, f = Check.record ~path sc ~spec ~seed:42L in
  match Sched.load path with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check string) "scenario" f.Sched.f_scenario g.Sched.f_scenario;
    Alcotest.(check int64) "seed" f.f_seed g.f_seed;
    Alcotest.(check string) "policy" "random" g.f_policy;
    Alcotest.(check int64) "policy seed" 99L g.f_policy_seed;
    Alcotest.(check int) "decisions" (List.length f.f_decisions) (List.length g.f_decisions);
    Alcotest.(check int64) "trace hash" oc.Scenario.oc_trace_hash g.f_trace_hash;
    Alcotest.(check int) "steps" oc.oc_steps g.f_steps

(* Record, then replay three times from the file: identical trace hash
   every time, and identical metrics snapshots across the reruns. *)
let test_record_replay_file () =
  let sc = Option.get (Scenario.find "stale_wakeup") in
  let spec = Sched.Random { seed = 5L; p_preempt = 60 } in
  let path = "traces/check_replay.sched.jsonl" in
  ignore (Check.record ~path sc ~spec ~seed:7L : Scenario.outcome * Sched.file);
  match Check.replay_file ~file:path ~times:3 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "trace hashes reproduce" true r.Check.rp_trace_ok;
    Alcotest.(check bool) "metrics snapshots agree" true r.rp_metrics_equal;
    Alcotest.(check int) "three reruns" 3 (List.length r.rp_hashes)

(* QCheck: record-then-replay yields identical trace hash and metrics
   snapshot across random scenario x policy x seed triples. *)
let prop_record_replay =
  QCheck.Test.make ~count:12 ~name:"record/replay deterministic (canaries)"
    QCheck.(triple (int_bound 2) int64 (int_bound 100))
    (fun (si, seed, p) ->
       let sc = List.nth Scenario.canaries si in
       let spec =
         if p = 0 then Sched.Fifo else Sched.Random { seed = Int64.of_int p; p_preempt = p }
       in
       let seed = Int64.logor 1L seed in
       let a = sc.Scenario.sc_run ~sched:spec ~seed in
       let b = sc.Scenario.sc_run ~sched:(Sched.Replay a.Scenario.oc_decisions) ~seed in
       let c = sc.Scenario.sc_run ~sched:(Sched.Replay a.Scenario.oc_decisions) ~seed in
       a.Scenario.oc_trace_hash = b.Scenario.oc_trace_hash
       && b.Scenario.oc_trace_hash = c.Scenario.oc_trace_hash
       && a.oc_metrics_hash = b.oc_metrics_hash
       && b.oc_metrics_hash = c.oc_metrics_hash
       && a.oc_steps = b.oc_steps)

(* The same property through a real adversarial harness: the mini net
   soak (fault plan included in the triple via the seed). *)
let test_record_replay_mini_soak () =
  let sc = Option.get (Scenario.find "mini-soak") in
  let seed = Rng.derive ~root "mini-soak-replay" in
  let spec = Sched.Random { seed = Rng.derive ~root "mini-soak-policy"; p_preempt = 20 } in
  let a = sc.Scenario.sc_run ~sched:spec ~seed in
  Alcotest.(check (list string)) "mini soak clean" [] a.Scenario.oc_failures;
  let b = sc.Scenario.sc_run ~sched:(Sched.Replay a.Scenario.oc_decisions) ~seed in
  Alcotest.(check int64) "trace hash reproduces" a.Scenario.oc_trace_hash
    b.Scenario.oc_trace_hash;
  Alcotest.(check int64) "metrics snapshot reproduces" a.oc_metrics_hash b.oc_metrics_hash;
  Alcotest.(check int) "steps reproduce" a.oc_steps b.oc_steps

(* Shrinker: output still fails and is no larger than the input; for the
   depth-1 canary it must reach the <= 25% gate. *)
let test_shrink () =
  let sc = Option.get (Scenario.find "doorbell_vs_publish") in
  let h = Check.hunt ~budget:200 sc ~root_seed:root in
  match h.Check.hr_shrink with
  | None -> Alcotest.fail "no counterexample found to shrink"
  | Some sh ->
    Alcotest.(check bool) "minimized schedule still fails" true sh.Check.sh_still_fails;
    Alcotest.(check bool) "minimized <= original" true
      (sh.sh_min_events <= sh.sh_orig_events);
    Alcotest.(check bool)
      (Printf.sprintf "ratio %.2f <= 0.25 (orig %d, min %d)" sh.sh_ratio sh.sh_orig_events
         sh.sh_min_events)
      true (sh.sh_ratio <= 0.25);
    (match h.hr_min_file with
     | None -> Alcotest.fail "minimized schedule not saved"
     | Some p ->
       (match Check.replay_file ~file:p ~times:1 with
        | Error e -> Alcotest.fail e
        | Ok r -> Alcotest.(check bool) "min repro replays bit-for-bit" true r.Check.rp_ok))

(* ddmin on a synthetic oracle: minimal subset, monotone test count. *)
let test_ddmin_synthetic () =
  let need = [ 3; 11 ] in
  let test xs = List.for_all (fun n -> List.mem n xs) need in
  let min1, tests = Shrink.ddmin ~test (List.init 16 (fun i -> i)) in
  Alcotest.(check (list int)) "exact minimal subset" need (List.sort compare min1);
  Alcotest.(check bool) "spent some tests" true (tests > 0);
  let keep, t2 = Shrink.ddmin ~test:(fun _ -> false) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "non-reproducing input returned unchanged" [ 1; 2; 3 ] keep;
  Alcotest.(check int) "one probe only" 1 t2

let suite =
  [ Alcotest.test_case "canaries clean under FIFO" `Quick test_fifo_clean;
    Alcotest.test_case "random explore finds every canary" `Quick test_random_explore_finds;
    Alcotest.test_case "bounded explore finds depth-1 and depth-2" `Quick
      test_bounded_explore_finds;
    Alcotest.test_case "strict replay + divergence detection" `Quick test_strict_replay;
    Alcotest.test_case "schedule file round-trip" `Quick test_sched_file_roundtrip;
    Alcotest.test_case "record/replay x3 from file" `Quick test_record_replay_file;
    QCheck_alcotest.to_alcotest prop_record_replay;
    Alcotest.test_case "record/replay through the mini soak" `Slow
      test_record_replay_mini_soak;
    Alcotest.test_case "hunt + shrink the depth-1 canary" `Quick test_shrink;
    Alcotest.test_case "ddmin on a synthetic oracle" `Quick test_ddmin_synthetic ]
