(* End-to-end smoke tests: the full stack — simulated machine, e1000
   device, driver (in-kernel and under SUD), net stack — moving real
   packets. *)

open Helpers

let test_native_udp () =
  let received =
    run_in_kernel setup_duo (fun k duo ->
        let dev_a = up_native ~name:"eth0" k duo.bdf_a in
        let dev_b = up_native ~name:"eth1" k duo.bdf_b in
        let sock_b = Netstack.udp_bind k.Kernel.net dev_b ~port:7 in
        let sock_a = Netstack.udp_bind k.Kernel.net dev_a ~port:9000 in
        let payload = Bytes.of_string "hello through the rings" in
        (match Netstack.udp_sendto k.Kernel.net sock_a ~dst:(Netdev.mac dev_b) ~dst_port:7 payload with
         | `Sent -> ()
         | `Dropped -> Alcotest.fail "send dropped");
        match Netstack.udp_recv k.Kernel.net sock_b with
        | Some (data, (_src, sport)) ->
          Alcotest.(check int) "source port" 9000 sport;
          Bytes.to_string data
        | None -> Alcotest.fail "no datagram")
  in
  Alcotest.(check string) "payload" "hello through the rings" received

let test_sud_udp () =
  let received =
    run_in_kernel setup_duo (fun k duo ->
        let sp = Safe_pci.init k in
        let started =
          ok_or_fail "start sud driver"
            (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
        in
        let dev_a = Driver_host.netdev started in
        ok_or_fail "ifconfig up (sud)" (Netstack.ifconfig_up k.Kernel.net dev_a);
        let dev_b = up_native ~name:"eth1" k duo.bdf_b in
        let sock_b = Netstack.udp_bind k.Kernel.net dev_b ~port:7 in
        let sock_a = Netstack.udp_bind k.Kernel.net dev_a ~port:9000 in
        (* B -> A exercises the untrusted driver's RX path through the
           proxy's defensive copy. *)
        (match
           Netstack.udp_sendto k.Kernel.net sock_b ~dst:(Netdev.mac dev_a) ~dst_port:9000
             (Bytes.of_string "to the untrusted driver")
         with
         | `Sent -> ()
         | `Dropped -> Alcotest.fail "send dropped");
        (match Netstack.udp_recv k.Kernel.net sock_a with
         | Some (data, _) ->
           Alcotest.(check string) "rx via sud" "to the untrusted driver" (Bytes.to_string data)
         | None -> Alcotest.fail "nothing received via sud driver");
        (* A -> B exercises the TX upcall path. *)
        (match
           Netstack.udp_sendto k.Kernel.net sock_a ~dst:(Netdev.mac dev_b) ~dst_port:7
             (Bytes.of_string "from the untrusted driver")
         with
         | `Sent -> ()
         | `Dropped -> Alcotest.fail "send dropped");
        match Netstack.udp_recv k.Kernel.net sock_b with
        | Some (data, _) -> Bytes.to_string data
        | None -> Alcotest.fail "nothing received from sud driver")
  in
  Alcotest.(check string) "tx via sud" "from the untrusted driver" received

let test_sud_figure9_mappings () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let started =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a E1000.driver)
      in
      let grant = Driver_host.grant started in
      let maps = Safe_pci.iommu_mappings grant in
      let allocs = Safe_pci.dma_allocations grant in
      (* shared pool + tx ring + rx ring + rx buffers *)
      Alcotest.(check int) "allocation count" 4 (List.length allocs);
      (match maps with
       | (iova0, _, _, _) :: _ -> Alcotest.(check int) "base iova" 0x42430000 iova0
       | [] -> Alcotest.fail "no mappings");
      List.iter (fun (_, _, _, w) -> Alcotest.(check bool) "writable" true w) maps;
      (* Every allocation must be covered by the page table. *)
      let covered iova len =
        List.exists (fun (mi, _, ml, _) -> iova >= mi && iova + len <= mi + ml) maps
      in
      List.iter
        (fun (iova, len) -> Alcotest.(check bool) "alloc mapped" true (covered iova len))
        allocs;
      ignore (ok_or_fail "ifconfig" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev started))))

let test_stream () =
  let bytes_moved =
    run_in_kernel setup_duo (fun k duo ->
        let dev_a = up_native ~name:"eth0" k duo.bdf_a in
        let dev_b = up_native ~name:"eth1" k duo.bdf_b in
        let total = 1_000_000 in
        let got = ref 0 in
        ignore
          (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"server" (fun () ->
               let st = Netstack.stream_listen k.Kernel.net dev_b ~port:5001 in
               let rec drain () =
                 match Netstack.stream_recv k.Kernel.net st with
                 | Some b ->
                   got := !got + Bytes.length b;
                   drain ()
                 | None -> ()
               in
               drain ())
           : Fiber.t);
        let st =
          ok_or_fail "connect"
            (Netstack.stream_connect k.Kernel.net dev_a ~dst:(Netdev.mac dev_b) ~dst_port:5001
               ~src_port:40000)
        in
        let chunk = Bytes.make 65536 'x' in
        let sent = ref 0 in
        while !sent < total do
          ok_or_fail "send" (Netstack.stream_send k.Kernel.net st chunk);
          sent := !sent + Bytes.length chunk
        done;
        Netstack.stream_close k.Kernel.net st;
        (* Let the tail drain. *)
        ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
        !got)
  in
  Alcotest.(check bool) "stream moved >= 1MB" true (bytes_moved >= 1_000_000)

let suite =
  [ Alcotest.test_case "native driver moves UDP" `Quick test_native_udp;
    Alcotest.test_case "SUD driver moves UDP both ways" `Quick test_sud_udp;
    Alcotest.test_case "figure 9 IOMMU mappings" `Quick test_sud_figure9_mappings;
    Alcotest.test_case "stream protocol bulk transfer" `Quick test_stream ]
