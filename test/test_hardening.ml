(* Adversarial interface hardening: the uchan protocol adjudicator, the
   per-driver resource ledger, and the live Byzantine fuzzer tying them
   to the supervisor. *)

open Helpers

(* A tiny kind vocabulary for driving the DFA directly. *)
let test_profile =
  { Conformance.p_name = "test";
    p_classify =
      (function
       | 1 -> Conformance.Register
       | 2 -> Conformance.Data
       | 3 -> Conformance.Control
       | _ -> Conformance.Unknown) }

let check_v name expect verdict =
  match verdict with
  | Conformance.Violation v ->
    Alcotest.(check string) name (Conformance.class_name expect) (Conformance.class_name v)
  | Conformance.Pass -> Alcotest.fail (name ^ ": expected a violation, got Pass")

let no_pending _ = false

let test_conformance_classes () =
  let c = Conformance.create ~profile:test_profile ~label:"t" ~epoch:7 () in
  let ing ?(epoch = 7) ?(is_reply = false) ?(seq = 0) ?(pending = no_pending)
      ?(issued_hi = 0) kind =
    Conformance.check_ingress c ~epoch ~is_reply ~seq ~kind ~pending ~issued_hi
  in
  (* Epoch outranks everything. *)
  check_v "dead epoch" Conformance.Bad_epoch (ing ~epoch:6 3);
  (* Data before the registration handshake. *)
  check_v "early data" Conformance.Early_data (ing 2);
  (* Control is legal in Start. *)
  Alcotest.(check bool) "control in Start" true (ing 3 = Conformance.Pass);
  (* Out-of-vocabulary kind. *)
  check_v "unknown kind" Conformance.Unknown_kind (ing 99);
  (* Register gates the data plane open. *)
  Alcotest.(check bool) "register" true (ing 1 = Conformance.Pass);
  Alcotest.(check bool) "data once Ready" true (ing 2 = Conformance.Pass);
  (* Completion matching: above the issue high-water mark = forged;
     issued but no longer pending = stale (counted, never escalated). *)
  check_v "forged completion" Conformance.Forged_completion
    (ing ~is_reply:true ~seq:9 ~issued_hi:3 3);
  check_v "stale completion" Conformance.Stale_completion
    (ing ~is_reply:true ~seq:2 ~issued_hi:3 3);
  Alcotest.(check bool) "live reply passes" true
    (ing ~is_reply:true ~seq:2 ~issued_hi:3 ~pending:(fun s -> s = 2) 3 = Conformance.Pass);
  (* Sequence discipline for non-replies. *)
  check_v "seq from future" Conformance.Seq_from_future (ing ~seq:9 ~issued_hi:3 3);
  Alcotest.(check bool) "fresh seq passes" true
    (ing ~seq:2 ~issued_hi:3 3 = Conformance.Pass);
  check_v "nonmonotone seq" Conformance.Nonmonotone_seq (ing ~seq:2 ~issued_hi:5 3);
  (* Stale completions never escalate; everything else did. *)
  Alcotest.(check int) "escalation total" 6 (Conformance.violations c);
  Alcotest.(check int) "stale counted separately" 1
    (Conformance.class_count c Conformance.Stale_completion);
  (* A new generation re-arms the handshake and adopts the new epoch. *)
  Conformance.new_generation c ~epoch:8;
  check_v "old epoch now dead" Conformance.Bad_epoch (ing 3);
  check_v "handshake re-armed" Conformance.Early_data (ing ~epoch:8 2)

let test_quota_ledger () =
  run_in_kernel setup_duo (fun k _duo ->
      let limits =
        { Quota.default_limits with
          Quota.max_grants = 2;
          max_dma_bytes = 8 * 4096;
          max_iopt_pages = 8;
          max_uchan_bytes = Quota.ring_bytes ~slots:256 ~queues:2 }
      in
      let q = Quota.create k.Kernel.eng ~limits ~name:"t" () in
      (* Grants. *)
      ok_or_fail "grant 1" (Quota.charge_grant q);
      ok_or_fail "grant 2" (Quota.charge_grant q);
      (match Quota.charge_grant q with
       | Ok () -> Alcotest.fail "third grant should be denied"
       | Error _ -> ());
      Alcotest.(check int) "denial counted" 1 (Quota.denials q);
      Quota.release_grant q;
      ok_or_fail "grant after release" (Quota.charge_grant q);
      (* DMA bytes + IO-page-table pages. *)
      ok_or_fail "dma" (Quota.charge_dma q ~bytes:(4 * 4096) ~pages:4);
      Alcotest.(check int) "iopt pages" (Quota.iopt_pages_for ~pages:4) (Quota.iopt_pages q);
      (match Quota.charge_dma q ~bytes:(8 * 4096) ~pages:8 with
       | Ok () -> Alcotest.fail "over-limit DMA should be denied"
       | Error _ -> ());
      Quota.release_dma q ~bytes:(4 * 4096) ~pages:4;
      Alcotest.(check int) "dma released" 0 (Quota.dma_bytes q);
      Alcotest.(check int) "iopt released" 0 (Quota.iopt_pages q);
      (* Queue negotiation clamps to the remaining uchan budget. *)
      Alcotest.(check int) "8 queues clamp to 2" 2 (Quota.negotiate_queues q ~slots:256 ~queues:8);
      ok_or_fail "charge rings"
        (Quota.charge_uchan q ~bytes:(Quota.ring_bytes ~slots:256 ~queues:2));
      Alcotest.(check int) "budget now fits 1" 1 (Quota.negotiate_queues q ~slots:256 ~queues:8))

let test_quota_token_bucket () =
  run_in_kernel setup_duo (fun k _duo ->
      let limits =
        { Quota.default_limits with Quota.notify_burst = 4; notify_rate = 1_000_000 }
      in
      let q = Quota.create k.Kernel.eng ~limits ~name:"tb" () in
      for _ = 1 to 4 do
        Quota.note_notify q ~queue:0
      done;
      Alcotest.(check int) "burst absorbed" 0 (Quota.notify_overflows q);
      Quota.note_notify q ~queue:0;
      Alcotest.(check int) "overflow counted" 1 (Quota.notify_overflows q);
      (* Kernel-side IRQ kicks are genuinely dropped when dry. *)
      Alcotest.(check bool) "irq token denied" false (Quota.take_irq_token q ~queue:0);
      Alcotest.(check int) "irq drop counted" 1 (Quota.irq_kicks_dropped q);
      (* Queues have independent buckets. *)
      Alcotest.(check bool) "sibling queue unaffected" true (Quota.take_irq_token q ~queue:1);
      (* 1M tokens/s: 3 us refills 3 tokens. *)
      ignore (Fiber.sleep k.Kernel.eng 3_000 : Fiber.wake);
      Alcotest.(check bool) "refilled 1" true (Quota.take_irq_token q ~queue:0);
      Alcotest.(check bool) "refilled 2" true (Quota.take_irq_token q ~queue:0);
      Alcotest.(check bool) "refilled 3" true (Quota.take_irq_token q ~queue:0);
      Alcotest.(check bool) "not past refill" false (Quota.take_irq_token q ~queue:0))

let test_quota_charges_driver_footprint () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let q = Quota.create k.Kernel.eng ~name:"eth0" () in
      let s =
        ok_or_fail "start"
          (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" ~quota:q E1000.driver)
      in
      Alcotest.(check int) "grant charged" 1 (Quota.grants q);
      Alcotest.(check bool) "dma charged" true (Quota.dma_bytes q > 0);
      Alcotest.(check int) "rings charged"
        (Quota.ring_bytes ~slots:256 ~queues:(Driver_host.queues s))
        (Quota.uchan_bytes q);
      Alcotest.(check bool) "iopt pages charged" true (Quota.iopt_pages q > 0);
      (* Death releases the whole footprint — nothing to launder. *)
      Driver_host.kill s;
      ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
      Alcotest.(check int) "grant released" 0 (Quota.grants q);
      Alcotest.(check int) "dma released" 0 (Quota.dma_bytes q);
      Alcotest.(check int) "rings released" 0 (Quota.uchan_bytes q);
      Alcotest.(check int) "iopt released" 0 (Quota.iopt_pages q))

let test_quota_negotiates_queues_at_start () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let limits =
        { Quota.default_limits with
          Quota.max_uchan_bytes = Quota.ring_bytes ~slots:256 ~queues:1 }
      in
      let q = Quota.create k.Kernel.eng ~limits ~name:"eth0" () in
      let s =
        ok_or_fail "start"
          (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" ~quota:q ~queues:4
             E1000.driver)
      in
      Alcotest.(check int) "queues negotiated down to budget" 1 (Driver_host.queues s);
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
      Driver_host.kill s)

let test_quota_denies_grant () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let q =
        Quota.create k.Kernel.eng
          ~limits:{ Quota.default_limits with Quota.max_grants = 0 }
          ~name:"eth0" ()
      in
      match Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" ~quota:q E1000.driver with
      | Ok _ -> Alcotest.fail "start should be denied by the grant quota"
      | Error _ -> Alcotest.(check bool) "denial counted" true (Quota.denials q > 0))

(* Conformance wired into the channel: a driver restart bumps the epoch,
   so a frame replayed from the dead generation is adjudicated
   Bad_epoch and dropped before the proxy ever sees it. *)
let test_epoch_across_restart () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start"
          (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      Alcotest.(check int) "epoch 0" 0 (Driver_host.epoch s);
      Alcotest.(check int) "chan stamps epoch 0" 0 (Uchan.epoch (Driver_host.chan s));
      let s2 = ok_or_fail "restart" (Driver_host.restart k sp s E1000.driver) in
      Alcotest.(check int) "epoch 1" 1 (Driver_host.epoch s2);
      let chan = Driver_host.chan s2 in
      Alcotest.(check int) "chan stamps epoch 1" 1 (Uchan.epoch chan);
      (* Replay a frame wearing the dead generation's epoch. *)
      let before = Conformance.class_count (Uchan.conformance chan) Conformance.Bad_epoch in
      Alcotest.(check bool) "raw slot injected" true
        (Uchan.inject_raw chan (fun slot ->
             Msg.marshal_into (Msg.make ~epoch:0 ~kind:104 ()) slot));
      ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
      Alcotest.(check int) "replay adjudicated Bad_epoch" (before + 1)
        (Conformance.class_count (Uchan.conformance chan) Conformance.Bad_epoch);
      Driver_host.kill s2)

(* ---- the live Byzantine fuzzer (smoke; the 500+-mutation campaign
   runs under `make fuzz-smoke` / the bench harness) ---- *)

let test_fuzz_smoke () =
  let r = Proto_fuzz.campaign ~seed:7L ~n_mutations:18 () in
  Alcotest.(check (list string)) "no invariant violations" [] r.Proto_fuzz.fz_violations;
  Alcotest.(check bool) "mutations applied" true (r.Proto_fuzz.fz_applied >= 12);
  List.iter
    (fun (cls, n) ->
       if n = 0 then Alcotest.fail (Printf.sprintf "class %s never detected" cls))
    r.Proto_fuzz.fz_detected;
  Alcotest.(check bool) "supervisor recovered every time" true
    (r.Proto_fuzz.fz_state = Supervisor.Running)

let test_proto_quarantine () =
  let r = Proto_fuzz.quarantine_campaign ~max_restarts:3 () in
  Alcotest.(check (list string)) "no invariant violations" [] r.Proto_fuzz.pq_violations;
  Alcotest.(check bool) "quarantined" true r.Proto_fuzz.pq_quarantined;
  Alcotest.(check bool) "burned the restart budget" true (r.Proto_fuzz.pq_restarts >= 3)

(* ---- shadow recovery replays interface state (satellite) ---- *)

let test_shadow_updown_replay () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      let shadow = Shadow.watch k sp ~poll_ms:5 s E1000.driver in
      (* Generation 1 dies with the interface DOWN: the shadow must
         restart the driver but leave the interface down. *)
      ignore (Fiber.sleep k.Kernel.eng 20_000_000 : Fiber.wake);
      Driver_host.kill s;
      ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
      Alcotest.(check int) "first restart" 1 (Shadow.restarts shadow);
      let s2 = Shadow.current shadow in
      Alcotest.(check bool) "fresh process alive" true
        (Process.is_alive (Driver_host.proc s2));
      Alcotest.(check bool) "interface stayed down" false
        (Netdev.is_up (Driver_host.netdev s2));
      (* The administrator brings it up; generation 2 dies: the shadow
         must replay the captured up state. *)
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s2));
      ignore (Fiber.sleep k.Kernel.eng 20_000_000 : Fiber.wake);
      Driver_host.kill s2;
      ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
      Alcotest.(check int) "second restart" 2 (Shadow.restarts shadow);
      Alcotest.(check bool) "interface replayed up" true
        (Netdev.is_up (Driver_host.netdev (Shadow.current shadow)));
      Shadow.stop shadow)

(* ---- setrlimit_memory edge cases (satellite) ---- *)

let test_setrlimit_edges () =
  run_in_kernel setup_duo (fun k _duo ->
      let p = Process.spawn k.Kernel.procs ~name:"edge" ~uid:1000 in
      Process.charge_memory p ~bytes:100;
      (* Lowering the limit below current usage keeps the usage (as
         setrlimit does) but forbids any further charge. *)
      Process.setrlimit_memory p ~bytes:(Some 50);
      Alcotest.(check int) "usage survives the lowering" 100 (Process.memory_used p);
      (match Process.charge_memory p ~bytes:1 with
       | () -> Alcotest.fail "charge above a lowered limit must fail"
       | exception Process.Rlimit_exceeded _ -> ());
      (* Uncharging below the new limit re-opens headroom. *)
      Process.uncharge_memory p ~bytes:60;
      Process.charge_memory p ~bytes:10;
      Alcotest.(check int) "charge after uncharge" 50 (Process.memory_used p);
      (* A limit exactly at usage: the boundary itself is legal, one more
         byte is not. *)
      Process.setrlimit_memory p ~bytes:(Some (Process.memory_used p));
      (match Process.charge_memory p ~bytes:1 with
       | () -> Alcotest.fail "charge at an exact limit must fail"
       | exception Process.Rlimit_exceeded _ -> ());
      Process.uncharge_memory p ~bytes:1;
      Process.charge_memory p ~bytes:1;
      Alcotest.(check int) "exactly at the limit" 50 (Process.memory_used p);
      Process.kill p;
      Alcotest.(check int) "death drops the charges" 0 (Process.memory_used p))

let test_rlimit_across_restart_generation () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      let p1 = Driver_host.proc s in
      let used_gen1 = Process.memory_used p1 in
      Alcotest.(check bool) "generation 1 charged" true (used_gen1 > 0);
      Driver_host.set_memory_limit s ~bytes:(used_gen1 + 4096);
      let s2 = ok_or_fail "restart" (Driver_host.restart k sp s E1000.driver) in
      let p2 = Driver_host.proc s2 in
      (* Charge/uncharge symmetry across the generation: the dead process
         dropped everything, the fresh one re-charged the same footprint
         from zero (rlimits are per process and do not carry over). *)
      Alcotest.(check int) "old generation fully uncharged" 0 (Process.memory_used p1);
      Alcotest.(check int) "fresh generation re-charged the same footprint" used_gen1
        (Process.memory_used p2);
      Process.charge_memory p2 ~bytes:(used_gen1 + 100_000);
      Process.uncharge_memory p2 ~bytes:(used_gen1 + 100_000);
      Alcotest.(check int) "charge/uncharge symmetric" used_gen1 (Process.memory_used p2);
      Driver_host.kill s2)

(* ---- shadow recovery composes with per-queue backlog replay: no frame
   is reordered within its flow (satellite property) ---- *)

let shadow_backlog_order_test =
  let n_flows = 3 in
  let mk_payload ~flow ~seq =
    let b = Bytes.make (Rss.flow_span + 2) '\x00' in
    Bytes.set_uint16_be b 15 (1000 + flow);
    Bytes.set_uint16_be b 17 (7 * (flow + 1));
    Bytes.set_uint16_be b Rss.flow_span seq;
    b
  in
  let gen = QCheck.Gen.(list_size (int_range 1 24) (int_bound (n_flows - 1))) in
  QCheck.Test.make ~name:"shadow recovery + backlog replay keeps per-flow order" ~count:6
    (QCheck.make gen)
    (fun flows ->
       run_in_kernel setup_duo (fun k duo ->
           let sp = Safe_pci.init k in
           let s =
             ok_or_fail "start"
               (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
           in
           ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
           let shadow = Shadow.watch k sp ~poll_ms:5 s E1000.driver in
           (* Let the watcher observe (and latch) the up state. *)
           ignore (Fiber.sleep k.Kernel.eng 20_000_000 : Fiber.wake);
           let old_dev = Driver_host.netdev s in
           let queues = Netdev.tx_queues old_dev in
           (* The driver dies; frames arriving during the outage park in
              the per-queue backlog, steered by the same RSS hash
              dev_xmit uses. *)
           Driver_host.kill s;
           let offered = Array.make n_flows [] in
           List.iteri
             (fun i flow ->
                let payload = mk_payload ~flow ~seq:i in
                offered.(flow) <- i :: offered.(flow);
                let queue = Rss.queue_for ~queues payload in
                match
                  Netdev.backlog_push old_dev ~queue ~limit:256 (Skbuff.of_bytes payload)
                with
                | Netdev.Xmit_ok -> ()
                | Netdev.Xmit_busy -> failwith "unexpected backlog overflow")
             flows;
           ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
           if Shadow.restarts shadow < 1 then Alcotest.fail "shadow did not recover";
           let fresh = Shadow.current shadow in
           if not (Netdev.is_up (Driver_host.netdev fresh)) then
             Alcotest.fail "interface not replayed up";
           (* Replay queue-major (the supervisor's discipline) through
              the fresh generation and observe the wire: frames travel
              proxy -> driver -> device -> medium byte-identical. *)
           let seen = ref [] in
           ignore
             (Net_medium.attach duo.medium ~name:"order-snoop" ~rx:(fun f ->
                  if Bytes.length f >= Rss.flow_span + 2 then begin
                    let flow = Bytes.get_uint16_be f 15 - 1000 in
                    let seq = Bytes.get_uint16_be f Rss.flow_span in
                    if flow >= 0 && flow < n_flows then seen := (flow, seq) :: !seen
                  end)
              : Net_medium.port);
           for q = 0 to queues - 1 do
             let rec go () =
               match Netdev.backlog_pop old_dev ~queue:q with
               | None -> ()
               | Some skb ->
                 (match
                    Netstack.dev_xmit k.Kernel.net (Driver_host.netdev fresh) skb
                  with
                  | `Sent -> ()
                  | `Dropped -> Alcotest.fail "replayed frame dropped");
                 go ()
             in
             go ()
           done;
           ignore (Fiber.sleep k.Kernel.eng 100_000_000 : Fiber.wake);
           Shadow.stop shadow;
           let replayed = Array.make n_flows [] in
           List.iter (fun (flow, seq) -> replayed.(flow) <- seq :: replayed.(flow))
             (List.rev !seen);
           (* Every flow's frames hit the wire in offered order (the wire
              may interleave flows, never reorder within one). *)
           Array.for_all2 (fun o r -> List.rev o = List.rev r) offered replayed))

let suite =
  [ Alcotest.test_case "conformance: every violation class" `Quick test_conformance_classes;
    Alcotest.test_case "quota: ledger charges and denials" `Quick test_quota_ledger;
    Alcotest.test_case "quota: notification token bucket" `Quick test_quota_token_bucket;
    Alcotest.test_case "quota: charges the driver footprint" `Quick
      test_quota_charges_driver_footprint;
    Alcotest.test_case "quota: negotiates queues at start" `Quick
      test_quota_negotiates_queues_at_start;
    Alcotest.test_case "quota: denies the grant" `Quick test_quota_denies_grant;
    Alcotest.test_case "epoch: restart invalidates replayed frames" `Quick
      test_epoch_across_restart;
    Alcotest.test_case "fuzz: campaign smoke" `Slow test_fuzz_smoke;
    Alcotest.test_case "fuzz: protocol crash-loop quarantines" `Slow test_proto_quarantine;
    Alcotest.test_case "shadow: up/down replay across kills" `Quick test_shadow_updown_replay;
    Alcotest.test_case "rlimit: setrlimit_memory edge cases" `Quick test_setrlimit_edges;
    Alcotest.test_case "rlimit: symmetry across restart generation" `Quick
      test_rlimit_across_restart_generation ]
  @ List.map QCheck_alcotest.to_alcotest [ shadow_backlog_order_test ]
