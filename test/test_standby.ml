(* The warm-standby generation machinery: fast failover served by a
   pre-forked parked generation, zero-loss live upgrade, the poisoned
   standby discarded and rebuilt rather than installed, and the double
   failover (primary dies mid-upgrade-drain).  A QCheck property then
   mixes upgrades and poisons into the random crash schedules and holds
   the stack to the same durability oracle as the cold path. *)

let warm = Fault_inject.warm_policy ~max_restarts:10

let start_warm w =
  match
    Supervisor.start_blk w.Fault_inject.bw_k w.Fault_inject.bw_sp ~policy:warm
      ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory
  with
  | Ok sv -> sv
  | Error e -> Alcotest.fail ("supervised start: " ^ e)

let blkdev sv = Option.get (Supervisor.blkdev sv)
let page c = Bytes.make Blkdev.page_size c

let write_page bd p c =
  match Blkdev.write bd ~lba:(p * Blkdev.page_sectors) (page c) () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write page %d: %s" p e

let fsync bd =
  match Blkdev.fsync bd () with Ok () -> () | Error e -> Alcotest.fail ("fsync: " ^ e)

let check_page bd p c =
  match Blkdev.read bd ~lba:(p * Blkdev.page_sectors) ~sectors:Blkdev.page_sectors () with
  | Ok data ->
    Alcotest.(check string)
      (Printf.sprintf "page %d intact across the swap" p)
      (Bytes.to_string (page c)) (Bytes.to_string data)
  | Error e -> Alcotest.failf "read page %d: %s" p e

(* A crash is only detected at the watchdog's next tick, so "state is
   Running" right after an injection means "not yet detected" — wait
   for the restart counter instead. *)
let wait_restarts ~eng sv n ~budget_ms =
  let rec loop budget =
    if
      (Supervisor.stats sv).Supervisor.st_restarts >= n
      && Supervisor.state sv = Supervisor.Running
    then true
    else if budget = 0 then false
    else begin
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      loop (budget - 1)
    end
  in
  loop budget_ms

let wait_poisoned ~eng sv n ~budget_ms =
  let rec loop budget =
    if snd (Supervisor.standby_stats sv) >= n then true
    else if budget = 0 then false
    else begin
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      loop (budget - 1)
    end
  in
  loop budget_ms

let sud_state w =
  match Sysfs.find_bdf w.Fault_inject.bw_k.Kernel.sysfs w.Fault_inject.bw_bdf with
  | Some e -> Option.value ~default:"" (Sysfs.attr e "sud_state")
  | None -> ""

(* A lethal fault with a warm slot parked: the recovery must be served
   by the standby (one restart, one warm swap), the fsynced data must
   survive, and the next standby must park again afterwards. *)
let test_warm_failover () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world w (fun () ->
      let eng = w.Fault_inject.bw_eng in
      let sv = start_warm w in
      let bd = blkdev sv in
      write_page bd 0 'A';
      write_page bd 1 'B';
      fsync bd;
      Alcotest.(check bool) "standby parks Ready" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      Alcotest.(check string) "sysfs shows the parked standby" "standby_ready"
        (sud_state w);
      Alcotest.(check bool) "crash applied" true
        (Fault_inject.blk_inject ~eng ~sv ~nvme:w.Fault_inject.bw_nvme
           Fault_inject.Bcrash);
      Alcotest.(check bool) "recovered" true (wait_restarts ~eng sv 1 ~budget_ms:5_000);
      Alcotest.(check int) "one restart" 1 (Supervisor.stats sv).Supervisor.st_restarts;
      Alcotest.(check int) "served by the warm standby" 1 (Supervisor.warm_swaps sv);
      check_page bd 0 'A';
      check_page bd 1 'B';
      write_page bd 2 'C';
      fsync bd;
      check_page bd 2 'C';
      Alcotest.(check bool) "next standby parks after the swap" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      Supervisor.stop sv)

(* A standby that dies while parked is poisoned: it must be discarded
   and rebuilt by the watchdog — and the corpse must never become the
   live generation. *)
let test_poisoned_standby_rebuilt () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world w (fun () ->
      let eng = w.Fault_inject.bw_eng in
      let sv = start_warm w in
      let bd = blkdev sv in
      write_page bd 0 'P';
      fsync bd;
      Alcotest.(check bool) "standby parks Ready" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      let corpse = Option.get (Supervisor.standby_proc sv) in
      Alcotest.(check bool) "poison applied" true (Fault_inject.inject_standby_poison ~sv);
      (* The watchdog's next probe discards the corpse and warms a
         replacement. *)
      Alcotest.(check bool) "poison was counted" true
        (wait_poisoned ~eng sv 1 ~budget_ms:2_000);
      Alcotest.(check bool) "replacement parks Ready" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      Alcotest.(check bool) "replacement is a fresh process" true
        (Option.get (Supervisor.standby_proc sv) != corpse);
      Alcotest.(check bool) "crash applied" true
        (Fault_inject.blk_inject ~eng ~sv ~nvme:w.Fault_inject.bw_nvme
           Fault_inject.Bcrash);
      Alcotest.(check bool) "recovered" true (wait_restarts ~eng sv 1 ~budget_ms:5_000);
      Alcotest.(check bool) "the corpse never became the live generation" true
        (match Supervisor.proc sv with
         | Some p -> p != corpse && Process.is_alive p
         | None -> false);
      check_page bd 0 'P';
      Supervisor.stop sv)

(* Double failover: the primary dies while the upgrade is draining its
   in-flight work.  The swap must proceed anyway and the undrained
   write must replay — acked data survives the worst-timed death. *)
let test_double_failover () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world w (fun () ->
      let eng = w.Fault_inject.bw_eng in
      let k = w.Fault_inject.bw_k in
      let sv = start_warm w in
      let bd = blkdev sv in
      write_page bd 0 'D';
      fsync bd;
      Alcotest.(check bool) "standby parks Ready" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      (* Arm the device to drop the next write completion, then issue
         that write from a fiber: it sticks in flight, so the upgrade's
         drain loop is guaranteed to still be waiting when the killer
         fires. *)
      Nvme_dev.inject_drop_completion w.Fault_inject.bw_nvme;
      let stuck_done = ref None in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"stuck-writer"
           (fun () ->
              stuck_done :=
                Some (Blkdev.write bd ~lba:(1 * Blkdev.page_sectors) (page 'E') ()))
         : Fiber.t);
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"killer"
           (fun () ->
              ignore (Fiber.sleep eng 2_000_000 : Fiber.wake);
              match Supervisor.proc sv with
              | Some p when Process.is_alive p -> Process.kill p
              | Some _ | None -> ())
         : Fiber.t);
      (match Supervisor.upgrade sv with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("upgrade through the double failover: " ^ e));
      Alcotest.(check bool) "running after the double failover" true
        (Fault_inject.wait_running ~eng sv ~budget_ms:5_000);
      (* The undrained write replays on resume and completes. *)
      let deadline = Engine.now eng + 5_000_000_000 in
      while !stuck_done = None && Engine.now eng < deadline do
        ignore (Fiber.sleep eng 500_000 : Fiber.wake)
      done;
      (match !stuck_done with
       | Some (Ok ()) -> ()
       | Some (Error e) -> Alcotest.fail ("replayed write failed: " ^ e)
       | None -> Alcotest.fail "in-flight write never completed after the swap");
      fsync bd;
      check_page bd 0 'D';
      check_page bd 1 'E';
      Supervisor.stop sv)

(* Live upgrade under load: zero loss, not a detection, and the sysfs
   state walks running -> upgrading -> standby_ready. *)
let test_upgrade_zero_loss () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world w (fun () ->
      let eng = w.Fault_inject.bw_eng in
      let k = w.Fault_inject.bw_k in
      let sv = start_warm w in
      let bd = blkdev sv in
      for p = 0 to 7 do
        write_page bd p (Char.chr (0x61 + p))
      done;
      fsync bd;
      Alcotest.(check bool) "standby parks Ready" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      (* Keep writes in flight so the drain window is observable, and
         sample sud_state from a monitor fiber while it is. *)
      let states = ref [] and stop = ref false in
      let note s = if s <> "" && not (List.mem s !states) then states := s :: !states in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"monitor"
           (fun () ->
              while not !stop do
                note (sud_state w);
                ignore (Fiber.sleep eng 20_000 : Fiber.wake)
              done)
         : Fiber.t);
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"load"
           (fun () ->
              let n = ref 0 in
              while not !stop do
                incr n;
                ignore
                  (Blkdev.write bd ~lba:((8 + (!n mod 8)) * Blkdev.page_sectors)
                     (page 'z') ()
                   : (unit, string) result);
                ignore (Fiber.sleep eng 50_000 : Fiber.wake)
              done)
         : Fiber.t);
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      (match Supervisor.upgrade sv with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("upgrade: " ^ e));
      Alcotest.(check bool) "running after upgrade" true
        (Fault_inject.wait_running ~eng sv ~budget_ms:5_000);
      Alcotest.(check bool) "rewarmed standby parks" true
        (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000);
      stop := true;
      let st = Supervisor.stats sv in
      Alcotest.(check int) "one upgrade" 1 st.Supervisor.st_upgrades;
      Alcotest.(check int) "an upgrade is not a detection" 0 st.Supervisor.st_detections;
      Alcotest.(check int) "an upgrade is not a restart" 0 st.Supervisor.st_restarts;
      Alcotest.(check bool) "sysfs walked through upgrading" true
        (List.mem "upgrading" !states);
      Alcotest.(check string) "sysfs ends on the rewarmed standby" "standby_ready"
        (sud_state w);
      fsync bd;
      for p = 0 to 7 do
        check_page bd p (Char.chr (0x61 + p))
      done;
      Supervisor.stop sv)

(* Upgrades compose with faults: mix live upgrades and standby poisons
   into the random write/fsync/crash schedules and hold media to the
   same oracle — a write acked before a successful fsync survives
   whatever the schedule did. *)

type uop = Uwrite of int * char | Ufsync | Ucrash | Uupgrade | Upoison

let uop_gen =
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun p c -> Uwrite (p, Char.chr (0x41 + c))) (int_bound 7) (int_bound 25));
        (2, return Ufsync);
        (1, return Ucrash);
        (1, return Uupgrade);
        (1, return Upoison) ])

let uops_gen = QCheck.Gen.(list_size (int_range 1 12) uop_gen)

let pp_uop = function
  | Uwrite (p, c) -> Printf.sprintf "write %d '%c'" p c
  | Ufsync -> "fsync"
  | Ucrash -> "crash"
  | Uupgrade -> "upgrade"
  | Upoison -> "poison"

let run_schedule ops =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:60_000 w (fun () ->
      let eng = w.Fault_inject.bw_eng in
      let sv = start_warm w in
      let bd = blkdev sv in
      let synced = Array.make 8 None in
      let acked = Array.make 8 None in
      let failures = ref [] in
      let wait_running () =
        let deadline = Engine.now eng + 5_000_000_000 in
        while Supervisor.state sv <> Supervisor.Running && Engine.now eng < deadline do
          ignore (Fiber.sleep eng 500_000 : Fiber.wake)
        done
      in
      List.iter
        (fun op ->
           match op with
           | Uwrite (p, c) ->
             (match
                Blkdev.write bd ~lba:(p * Blkdev.page_sectors)
                  (Bytes.make Blkdev.page_size c) ()
              with
              | Ok () -> acked.(p) <- Some c
              | Error e -> failures := Printf.sprintf "write %d: %s" p e :: !failures)
           | Ufsync ->
             (match Blkdev.fsync bd () with
              | Ok () ->
                Array.iteri
                  (fun p v -> match v with Some c -> synced.(p) <- Some c | None -> ())
                  acked
              | Error e -> failures := Printf.sprintf "fsync: %s" e :: !failures)
           | Ucrash ->
             let r0 = (Supervisor.stats sv).Supervisor.st_restarts in
             if
               Fault_inject.blk_inject ~eng ~sv ~nvme:w.Fault_inject.bw_nvme
                 Fault_inject.Bcrash
             then ignore (wait_restarts ~eng sv (r0 + 1) ~budget_ms:5_000 : bool)
             else wait_running ()
           | Uupgrade ->
             ignore (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
             (match Supervisor.upgrade sv with
              | Ok () -> ()
              | Error e -> failures := ("upgrade: " ^ e) :: !failures);
             wait_running ()
           | Upoison ->
             ignore (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
             ignore (Fault_inject.inject_standby_poison ~sv : bool))
        ops;
      wait_running ();
      (match Blkdev.fsync bd () with
       | Ok () ->
         Array.iteri
           (fun p v -> match v with Some c -> synced.(p) <- Some c | None -> ())
           acked
       | Error e -> failures := Printf.sprintf "final fsync: %s" e :: !failures);
      Array.iteri
        (fun p expect ->
           match expect with
           | None -> ()
           | Some c ->
             for s = 0 to Blkdev.page_sectors - 1 do
               let lba = (p * Blkdev.page_sectors) + s in
               match Nvme_dev.media_sector w.Fault_inject.bw_nvme ~lba with
               | Some b when Bytes.to_string b = String.make Blkdev.sector_size c -> ()
               | Some _ ->
                 failures :=
                   Printf.sprintf "page %d sector %d: stale media" p lba :: !failures
               | None ->
                 failures :=
                   Printf.sprintf "page %d sector %d: synced write lost" p lba :: !failures
             done)
        synced;
      Supervisor.stop sv;
      !failures)

let prop_upgrades_compose =
  QCheck.Test.make ~name:"upgrades compose with faults: no fsynced write is lost"
    ~count:8
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_uop ops)) uops_gen)
    (fun ops ->
       match run_schedule ops with
       | [] -> true
       | fs -> QCheck.Test.fail_reportf "oracle violated:@.%s" (String.concat "\n" fs))

let suite =
  [ Alcotest.test_case "warm failover: crash swaps to the parked standby" `Quick
      test_warm_failover;
    Alcotest.test_case "poisoned standby is discarded and rebuilt, never installed"
      `Quick test_poisoned_standby_rebuilt;
    Alcotest.test_case "double failover: primary dies mid-upgrade-drain" `Quick
      test_double_failover;
    Alcotest.test_case "live upgrade: zero loss, not a detection, sysfs transitions"
      `Quick test_upgrade_zero_loss;
    QCheck_alcotest.to_alcotest prop_upgrades_compose ]
