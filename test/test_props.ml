(* Cross-cutting property tests and determinism checks. *)

open Helpers

(* Model-based IOMMU check: random map/unmap sequences against a page-level
   reference model. *)
let iommu_model_test =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (let* op = int_bound 2 in
         let* page = int_bound 63 in
         let* count = int_range 1 4 in
         return (op, page, count)))
  in
  QCheck.Test.make ~name:"iommu matches a reference model" ~count:200 (QCheck.make gen)
    (fun ops ->
       let io = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
       let d = Iommu.attach io ~source:3 in
       let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
       let base = 0x40000000 and pbase = 0x200000 in
       let ok = ref true in
       List.iter
         (fun (op, page, count) ->
            if op = 0 then begin
              (* map [page, page+count) if none of it is already mapped *)
              let free =
                List.for_all (fun i -> not (Hashtbl.mem model (page + i)))
                  (List.init count Fun.id)
              in
              if free && page + count <= 64 then begin
                Iommu.map io d ~iova:(base + (page * 4096)) ~phys:(pbase + (page * 4096))
                  ~len:(count * 4096) ~writable:true;
                List.iter
                  (fun i -> Hashtbl.replace model (page + i) (pbase + ((page + i) * 4096)))
                  (List.init count Fun.id)
              end
            end
            else if op = 1 && page + count <= 64 then begin
              Iommu.unmap io d ~iova:(base + (page * 4096)) ~len:(count * 4096);
              List.iter (fun i -> Hashtbl.remove model (page + i)) (List.init count Fun.id)
            end
            else begin
              (* verify a translation *)
              let addr = base + (page * 4096) + 123 in
              match (Iommu.translate io ~source:3 ~addr ~dir:Bus.Dma_write,
                     Hashtbl.find_opt model page) with
              | `Phys p, Some expect -> if p <> expect + 123 then ok := false
              | `Fault _, None -> ()
              | `Phys _, None | `Fault _, Some _ | `Msi, _ -> ok := false
            end)
         ops;
       !ok)

(* IOTLB invalidation: random map/unmap/flush/detach sequences with a
   translation probe after every step.  A probe that returns a physical
   address the reference model doesn't sanction means a stale cached
   translation survived an invalidation — exactly the containment hole the
   mandatory scrubbing in unmap/detach/iotlb_flush exists to prevent. *)
let iotlb_invalidation_test =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 80)
        (let* op = int_bound 4 in
         let* page = int_bound 63 in
         let* count = int_range 1 4 in
         let* writable = bool in
         return (op, page, count, writable)))
  in
  QCheck.Test.make ~name:"no stale IOTLB translation survives invalidation" ~count:300
    (QCheck.make gen)
    (fun ops ->
       let io = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
       let source = 3 in
       let d = ref (Iommu.attach io ~source) in
       (* page -> (phys, writable) *)
       let model : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
       let base = 0x40000000 and pbase = 0x200000 in
       let ok = ref true in
       let probe page =
         let addr = base + (page * 4096) + 123 in
         let expect = Hashtbl.find_opt model page in
         (match (Iommu.translate io ~source ~addr ~dir:Bus.Dma_read, expect) with
          | `Phys p, Some (phys, _) -> if p <> phys + 123 then ok := false
          | `Fault _, None -> ()
          | `Phys _, None | `Fault _, Some _ | `Msi, _ -> ok := false);
         match (Iommu.translate io ~source ~addr ~dir:Bus.Dma_write, expect) with
         | `Phys p, Some (phys, true) -> if p <> phys + 123 then ok := false
         | `Fault _, (None | Some (_, false)) -> ()
         | `Phys _, (None | Some (_, false)) | `Fault _, Some (_, true) | `Msi, _ ->
           ok := false
       in
       List.iter
         (fun (op, page, count, writable) ->
            (match op with
             | 0 ->
               let free =
                 List.for_all (fun i -> not (Hashtbl.mem model (page + i)))
                   (List.init count Fun.id)
               in
               if free && page + count <= 64 then begin
                 Iommu.map io !d ~iova:(base + (page * 4096)) ~phys:(pbase + (page * 4096))
                   ~len:(count * 4096) ~writable;
                 List.iter
                   (fun i ->
                      Hashtbl.replace model (page + i)
                        (pbase + ((page + i) * 4096), writable))
                   (List.init count Fun.id)
               end
             | 1 ->
               if page + count <= 64 then begin
                 Iommu.unmap io !d ~iova:(base + (page * 4096)) ~len:(count * 4096);
                 List.iter (fun i -> Hashtbl.remove model (page + i)) (List.init count Fun.id)
               end
             | 2 -> ()  (* probe only *)
             | 3 -> Iommu.iotlb_flush io !d
             | _ ->
               (* Detach and re-attach: every mapping (and every cached
                  translation) of the old domain must die with it. *)
               Iommu.detach io ~source;
               Hashtbl.reset model;
               d := Iommu.attach io ~source);
            probe page)
         ops;
       (* Counter sanity: every translation either hit or missed. *)
       let m = Iommu.metrics io in
       !ok
       && Sud_obs.Metrics.gauge_value m.Iommu.im_hits >= 0
       && Sud_obs.Metrics.gauge_value m.Iommu.im_misses > 0)

(* Random config-space writes through the SUD filter never re-enable INTx
   and never move a BAR. *)
let cfg_filter_invariant =
  let gen =
    QCheck.Gen.(list_size (int_range 1 40) (pair (int_bound 255) (int_bound 0xFFFF)))
  in
  QCheck.Test.make ~name:"config filter preserves INTx-disable and BARs" ~count:60
    (QCheck.make gen)
    (fun writes ->
       run_in_kernel setup_duo (fun k duo ->
           let sp = Safe_pci.init k in
           Safe_pci.register_device sp duo.bdf_a;
           Safe_pci.set_owner sp duo.bdf_a ~uid:1000;
           let proc = Process.spawn k.Kernel.procs ~name:"fuzz" ~uid:1000 in
           let g = ok_or_fail "open" (Safe_pci.open_device sp duo.bdf_a ~proc) in
           let bar_before = Pci_topology.bar_region k.Kernel.topo duo.bdf_a ~bar:0 in
           List.iter
             (fun (off, v) ->
                let size = if off land 1 = 0 then 2 else 1 in
                ignore (Safe_pci.cfg_write g ~off ~size v : (unit, string) result))
             writes;
           let cmd =
             Pci_topology.cfg_read k.Kernel.topo duo.bdf_a ~off:Pci_cfg.command ~size:2
           in
           cmd land Pci_cfg.cmd_intx_disable <> 0
           && Pci_topology.bar_region k.Kernel.topo duo.bdf_a ~bar:0 = bar_before))

(* Stream data integrity with arbitrary chunking. *)
let stream_integrity =
  let gen = QCheck.Gen.(list_size (int_range 1 8) (string_size (int_range 1 5000))) in
  QCheck.Test.make ~name:"stream delivers exact bytes under random chunking" ~count:8
    (QCheck.make gen)
    (fun chunks ->
       let sent = String.concat "" chunks in
       let received =
         run_in_kernel setup_duo (fun k duo ->
             let dev_a = up_native ~name:"eth0" k duo.bdf_a in
             let dev_b = up_native ~name:"eth1" k duo.bdf_b in
             let buf = Buffer.create 1024 in
             ignore
               (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"srv"
                  (fun () ->
                     let st = Netstack.stream_listen k.Kernel.net dev_b ~port:80 in
                     let rec drain () =
                       match Netstack.stream_recv k.Kernel.net st with
                       | Some b ->
                         Buffer.add_bytes buf b;
                         drain ()
                       | None -> ()
                     in
                     drain ())
                : Fiber.t);
             let st =
               ok_or_fail "connect"
                 (Netstack.stream_connect k.Kernel.net dev_a ~dst:(Netdev.mac dev_b)
                    ~dst_port:80 ~src_port:999)
             in
             List.iter
               (fun c -> ok_or_fail "send" (Netstack.stream_send k.Kernel.net st
                                              (Bytes.of_string c)))
               chunks;
             Netstack.stream_close k.Kernel.net st;
             ignore (Fiber.sleep k.Kernel.eng 100_000_000 : Fiber.wake);
             Buffer.contents buf)
       in
       received = sent)

(* Determinism: the same scenario produces bit-identical klogs. *)
let test_determinism () =
  let run () =
    run_in_kernel setup_duo (fun k duo ->
        let sp = Safe_pci.init k in
        let s =
          ok_or_fail "start" (Driver_host.start_net k sp ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
        in
        ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
        let dev_b = up_native ~name:"eth1" k duo.bdf_b in
        let sa = Netstack.udp_bind k.Kernel.net (Driver_host.netdev s) ~port:1 in
        for i = 1 to 20 do
          ignore
            (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:2
               (Bytes.make 64 (Char.chr i))
             : [ `Sent | `Dropped ]);
          ignore (Fiber.sleep k.Kernel.eng 100_000 : Fiber.wake)
        done;
        ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
        (Engine.now k.Kernel.eng, List.map (fun (t, _, m) -> (t, m)) (Klog.entries k.Kernel.klog)))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical final time and klog" true (a = b)

let test_spinlock_contention_detected () =
  run_in_kernel setup_duo (fun k _duo ->
      let l = Preempt.Spinlock.create k.Kernel.preempt in
      Preempt.Spinlock.lock l;
      (* A second fiber contending on a single simulated runqueue would spin
         forever: the simulator calls it out as a deadlock. *)
      let deadlocked = ref false in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"contender"
           (fun () ->
              match Preempt.Spinlock.lock l with
              | () -> ()
              | exception Failure _ -> deadlocked := true)
         : Fiber.t);
      ignore (Fiber.sleep k.Kernel.eng 1_000_000 : Fiber.wake);
      Preempt.Spinlock.unlock l;
      Alcotest.(check bool) "contention reported" true !deadlocked)

let test_e1000_subword_mmio () =
  run_in_kernel setup_duo (fun k duo ->
      ignore k;
      let ops = Device.ops (E1000_dev.device duo.nic_a) in
      (* Byte-wise read of STATUS assembles the same value as a dword read. *)
      let dword = ops.Device.mmio_read ~bar:0 ~off:E1000_dev.Regs.status ~size:4 in
      let by_bytes =
        List.fold_left
          (fun acc i ->
             acc lor (ops.Device.mmio_read ~bar:0 ~off:(E1000_dev.Regs.status + i) ~size:1 lsl (8 * i)))
          0 [ 0; 1; 2; 3 ]
      in
      Alcotest.(check int) "sub-word access consistent" dword by_bytes)

let suite =
  [ Alcotest.test_case "determinism: identical runs" `Quick test_determinism;
    Alcotest.test_case "spinlock: contention = deadlock report" `Quick
      test_spinlock_contention_detected;
    Alcotest.test_case "e1000: sub-word MMIO" `Quick test_e1000_subword_mmio ]
  @ List.map QCheck_alcotest.to_alcotest
      [ iommu_model_test; iotlb_invalidation_test; cfg_filter_invariant; stream_integrity ]
