(* Cross-cutting property tests and determinism checks. *)

open Helpers

(* Model-based IOMMU check: random map/unmap sequences against a page-level
   reference model. *)
let iommu_model_test =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (let* op = int_bound 2 in
         let* page = int_bound 63 in
         let* count = int_range 1 4 in
         return (op, page, count)))
  in
  QCheck.Test.make ~name:"iommu matches a reference model" ~count:200 (QCheck.make gen)
    (fun ops ->
       let io = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
       let d = Iommu.attach io ~source:3 in
       let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
       let base = 0x40000000 and pbase = 0x200000 in
       let ok = ref true in
       List.iter
         (fun (op, page, count) ->
            if op = 0 then begin
              (* map [page, page+count) if none of it is already mapped *)
              let free =
                List.for_all (fun i -> not (Hashtbl.mem model (page + i)))
                  (List.init count Fun.id)
              in
              if free && page + count <= 64 then begin
                Iommu.map io d ~iova:(base + (page * 4096)) ~phys:(pbase + (page * 4096))
                  ~len:(count * 4096) ~writable:true;
                List.iter
                  (fun i -> Hashtbl.replace model (page + i) (pbase + ((page + i) * 4096)))
                  (List.init count Fun.id)
              end
            end
            else if op = 1 && page + count <= 64 then begin
              Iommu.unmap io d ~iova:(base + (page * 4096)) ~len:(count * 4096);
              List.iter (fun i -> Hashtbl.remove model (page + i)) (List.init count Fun.id)
            end
            else begin
              (* verify a translation *)
              let addr = base + (page * 4096) + 123 in
              match (Iommu.translate io ~source:3 ~addr ~dir:Bus.Dma_write,
                     Hashtbl.find_opt model page) with
              | `Phys p, Some expect -> if p <> expect + 123 then ok := false
              | `Fault _, None -> ()
              | `Phys _, None | `Fault _, Some _ | `Msi, _ -> ok := false
            end)
         ops;
       !ok)

(* IOTLB invalidation: random map/unmap/flush/detach sequences with a
   translation probe after every step.  A probe that returns a physical
   address the reference model doesn't sanction means a stale cached
   translation survived an invalidation — exactly the containment hole the
   mandatory scrubbing in unmap/detach/iotlb_flush exists to prevent. *)
let iotlb_invalidation_test =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 80)
        (let* op = int_bound 4 in
         let* page = int_bound 63 in
         let* count = int_range 1 4 in
         let* writable = bool in
         return (op, page, count, writable)))
  in
  QCheck.Test.make ~name:"no stale IOTLB translation survives invalidation" ~count:300
    (QCheck.make gen)
    (fun ops ->
       let io = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
       let source = 3 in
       let d = ref (Iommu.attach io ~source) in
       (* page -> (phys, writable) *)
       let model : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
       let base = 0x40000000 and pbase = 0x200000 in
       let ok = ref true in
       let probe page =
         let addr = base + (page * 4096) + 123 in
         let expect = Hashtbl.find_opt model page in
         (match (Iommu.translate io ~source ~addr ~dir:Bus.Dma_read, expect) with
          | `Phys p, Some (phys, _) -> if p <> phys + 123 then ok := false
          | `Fault _, None -> ()
          | `Phys _, None | `Fault _, Some _ | `Msi, _ -> ok := false);
         match (Iommu.translate io ~source ~addr ~dir:Bus.Dma_write, expect) with
         | `Phys p, Some (phys, true) -> if p <> phys + 123 then ok := false
         | `Fault _, (None | Some (_, false)) -> ()
         | `Phys _, (None | Some (_, false)) | `Fault _, Some (_, true) | `Msi, _ ->
           ok := false
       in
       List.iter
         (fun (op, page, count, writable) ->
            (match op with
             | 0 ->
               let free =
                 List.for_all (fun i -> not (Hashtbl.mem model (page + i)))
                   (List.init count Fun.id)
               in
               if free && page + count <= 64 then begin
                 Iommu.map io !d ~iova:(base + (page * 4096)) ~phys:(pbase + (page * 4096))
                   ~len:(count * 4096) ~writable;
                 List.iter
                   (fun i ->
                      Hashtbl.replace model (page + i)
                        (pbase + ((page + i) * 4096), writable))
                   (List.init count Fun.id)
               end
             | 1 ->
               if page + count <= 64 then begin
                 Iommu.unmap io !d ~iova:(base + (page * 4096)) ~len:(count * 4096);
                 List.iter (fun i -> Hashtbl.remove model (page + i)) (List.init count Fun.id)
               end
             | 2 -> ()  (* probe only *)
             | 3 -> Iommu.iotlb_flush io !d
             | _ ->
               (* Detach and re-attach: every mapping (and every cached
                  translation) of the old domain must die with it. *)
               Iommu.detach io ~source;
               Hashtbl.reset model;
               d := Iommu.attach io ~source);
            probe page)
         ops;
       (* Counter sanity: every translation either hit or missed. *)
       let m = Iommu.metrics io in
       !ok
       && Sud_obs.Metrics.gauge_value m.Iommu.im_hits >= 0
       && Sud_obs.Metrics.gauge_value m.Iommu.im_misses > 0)

(* Random config-space writes through the SUD filter never re-enable INTx
   and never move a BAR. *)
let cfg_filter_invariant =
  let gen =
    QCheck.Gen.(list_size (int_range 1 40) (pair (int_bound 255) (int_bound 0xFFFF)))
  in
  QCheck.Test.make ~name:"config filter preserves INTx-disable and BARs" ~count:60
    (QCheck.make gen)
    (fun writes ->
       run_in_kernel setup_duo (fun k duo ->
           let sp = Safe_pci.init k in
           Safe_pci.register_device sp duo.bdf_a;
           Safe_pci.set_owner sp duo.bdf_a ~uid:1000;
           let proc = Process.spawn k.Kernel.procs ~name:"fuzz" ~uid:1000 in
           let g = ok_or_fail "open" (Safe_pci.open_device sp duo.bdf_a ~proc) in
           let bar_before = Pci_topology.bar_region k.Kernel.topo duo.bdf_a ~bar:0 in
           List.iter
             (fun (off, v) ->
                let size = if off land 1 = 0 then 2 else 1 in
                ignore (Safe_pci.cfg_write g ~off ~size v : (unit, string) result))
             writes;
           let cmd =
             Pci_topology.cfg_read k.Kernel.topo duo.bdf_a ~off:Pci_cfg.command ~size:2
           in
           cmd land Pci_cfg.cmd_intx_disable <> 0
           && Pci_topology.bar_region k.Kernel.topo duo.bdf_a ~bar:0 = bar_before))

(* Stream data integrity with arbitrary chunking. *)
let stream_integrity =
  let gen = QCheck.Gen.(list_size (int_range 1 8) (string_size (int_range 1 5000))) in
  QCheck.Test.make ~name:"stream delivers exact bytes under random chunking" ~count:8
    (QCheck.make gen)
    (fun chunks ->
       let sent = String.concat "" chunks in
       let received =
         run_in_kernel setup_duo (fun k duo ->
             let dev_a = up_native ~name:"eth0" k duo.bdf_a in
             let dev_b = up_native ~name:"eth1" k duo.bdf_b in
             let buf = Buffer.create 1024 in
             ignore
               (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"srv"
                  (fun () ->
                     let st = Netstack.stream_listen k.Kernel.net dev_b ~port:80 in
                     let rec drain () =
                       match Netstack.stream_recv k.Kernel.net st with
                       | Some b ->
                         Buffer.add_bytes buf b;
                         drain ()
                       | None -> ()
                     in
                     drain ())
                : Fiber.t);
             let st =
               ok_or_fail "connect"
                 (Netstack.stream_connect k.Kernel.net dev_a ~dst:(Netdev.mac dev_b)
                    ~dst_port:80 ~src_port:999)
             in
             List.iter
               (fun c -> ok_or_fail "send" (Netstack.stream_send k.Kernel.net st
                                              (Bytes.of_string c)))
               chunks;
             Netstack.stream_close k.Kernel.net st;
             ignore (Fiber.sleep k.Kernel.eng 100_000_000 : Fiber.wake);
             Buffer.contents buf)
       in
       received = sent)

(* Determinism: the same scenario produces bit-identical klogs. *)
let test_determinism () =
  let run () =
    run_in_kernel setup_duo (fun k duo ->
        let sp = Safe_pci.init k in
        let s =
          ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
        in
        ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
        let dev_b = up_native ~name:"eth1" k duo.bdf_b in
        let sa = Netstack.udp_bind k.Kernel.net (Driver_host.netdev s) ~port:1 in
        for i = 1 to 20 do
          ignore
            (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:2
               (Bytes.make 64 (Char.chr i))
             : [ `Sent | `Dropped ]);
          ignore (Fiber.sleep k.Kernel.eng 100_000 : Fiber.wake)
        done;
        ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
        (Engine.now k.Kernel.eng, List.map (fun (t, _, m) -> (t, m)) (Klog.entries k.Kernel.klog)))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical final time and klog" true (a = b)

let test_spinlock_contention_detected () =
  run_in_kernel setup_duo (fun k _duo ->
      let l = Preempt.Spinlock.create k.Kernel.preempt in
      Preempt.Spinlock.lock l;
      (* A second fiber contending on a single simulated runqueue would spin
         forever: the simulator calls it out as a deadlock. *)
      let deadlocked = ref false in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"contender"
           (fun () ->
              match Preempt.Spinlock.lock l with
              | () -> ()
              | exception Failure _ -> deadlocked := true)
         : Fiber.t);
      ignore (Fiber.sleep k.Kernel.eng 1_000_000 : Fiber.wake);
      Preempt.Spinlock.unlock l;
      Alcotest.(check bool) "contention reported" true !deadlocked)

let test_e1000_subword_mmio () =
  run_in_kernel setup_duo (fun k duo ->
      ignore k;
      let ops = Device.ops (E1000_dev.device duo.nic_a) in
      (* Byte-wise read of STATUS assembles the same value as a dword read. *)
      let dword = ops.Device.mmio_read ~bar:0 ~off:E1000_dev.Regs.status ~size:4 in
      let by_bytes =
        List.fold_left
          (fun acc i ->
             acc lor (ops.Device.mmio_read ~bar:0 ~off:(E1000_dev.Regs.status + i) ~size:1 lsl (8 * i)))
          0 [ 0; 1; 2; 3 ]
      in
      Alcotest.(check int) "sub-word access consistent" dword by_bytes)

(* RSS sharding is only sound if the queue is a pure, stable function of
   the flow-identifying bytes: the device picks the RX queue from the wire
   frame while the kernel picks the TX queue from the skb, and per-flow
   order across a driver restart relies on both picking the same queue
   every time. *)
let rss_stability_test =
  let gen =
    QCheck.Gen.(
      let* flow = string_size (return Rss.flow_span) in
      let* tail_a = string_size (int_range 0 64) in
      let* tail_b = string_size (int_range 0 64) in
      let* queues = int_range 1 8 in
      return (flow, tail_a, tail_b, queues))
  in
  QCheck.Test.make ~name:"RSS: queue is a stable function of the flow bytes" ~count:500
    (QCheck.make gen)
    (fun (flow, ta, tb, queues) ->
       let fa = Bytes.of_string (flow ^ ta) and fb = Bytes.of_string (flow ^ tb) in
       let qa = Rss.queue_for ~queues fa in
       qa = Rss.queue_for ~queues fa
       && qa = Rss.queue_for ~queues fb   (* bytes past the span don't steer *)
       && qa >= 0 && qa < queues)

(* Per-queue backlog replay preserves per-flow packet order: frames parked
   while a driver is being restarted come back out in the order each flow
   sent them, because a flow always hashes to one queue and each queue's
   backlog is FIFO.  This is the invariant that lets the supervisor replay
   queues one at a time without reordering anybody's stream. *)
let backlog_replay_order_test =
  let n_flows = 4 in
  let mk_frame ~flow ~seq =
    let b = Bytes.make (Rss.flow_span + 2) '\x00' in
    Bytes.set_uint16_be b 15 (1000 + flow);      (* sport *)
    Bytes.set_uint16_be b 17 (7 * (flow + 1));   (* dport *)
    Bytes.set_uint16_be b Rss.flow_span seq;
    b
  in
  let gen =
    QCheck.Gen.(
      let* frames = list_size (int_range 1 100) (int_bound (n_flows - 1)) in
      let* queues = int_range 1 8 in
      return (frames, queues))
  in
  QCheck.Test.make ~name:"backlog replay preserves per-flow order" ~count:200
    (QCheck.make gen)
    (fun (flows, queues) ->
       let ops =
         { Netdev.ndo_open = (fun () -> Ok ());
           ndo_stop = ignore;
           ndo_start_xmit = (fun ~queue:_ _ -> Netdev.Xmit_ok);
           ndo_do_ioctl = (fun ~cmd:_ ~arg:_ -> Ok 0) }
       in
       let dev =
         Netdev.create ~name:"ethp" ~mac:(Bytes.make 6 '\x02') ~ops ~tx_queues:queues ()
       in
       (* Offer: per-flow ascending sequence numbers, queue chosen by RSS
          exactly as Netstack.dev_xmit would. *)
       let next_seq = Array.make n_flows 0 in
       let offered = Array.make n_flows [] in
       List.iter
         (fun flow ->
            let seq = next_seq.(flow) in
            next_seq.(flow) <- seq + 1;
            offered.(flow) <- seq :: offered.(flow);
            let data = mk_frame ~flow ~seq in
            let queue = Rss.queue_for ~queues data in
            match Netdev.backlog_push dev ~queue ~limit:1000 (Skbuff.of_bytes data) with
            | Netdev.Xmit_ok -> ()
            | Netdev.Xmit_busy -> failwith "unexpected backlog overflow")
         flows;
       (* Replay the way Supervisor.replay_backlog does: drain queue 0
          fully, then queue 1, ... *)
       let replayed = Array.make n_flows [] in
       for q = 0 to queues - 1 do
         let rec go () =
           match Netdev.backlog_pop dev ~queue:q with
           | None -> ()
           | Some skb ->
             let flow = Bytes.get_uint16_be skb.Skbuff.data 15 - 1000 in
             let seq = Bytes.get_uint16_be skb.Skbuff.data Rss.flow_span in
             replayed.(flow) <- seq :: replayed.(flow);
             go ()
         in
         go ()
       done;
       Array.for_all2 (fun a b -> a = b) offered replayed)

let suite =
  [ Alcotest.test_case "determinism: identical runs" `Quick test_determinism;
    Alcotest.test_case "spinlock: contention = deadlock report" `Quick
      test_spinlock_contention_detected;
    Alcotest.test_case "e1000: sub-word MMIO" `Quick test_e1000_subword_mmio ]
  @ List.map QCheck_alcotest.to_alcotest
      [ iommu_model_test; iotlb_invalidation_test; cfg_filter_invariant; stream_integrity;
        rss_stability_test; backlog_replay_order_test ]
