(* The observability layer: metrics registry semantics, trace-ring
   accounting under random span storms, JSONL round-trips, causal chain
   queries, the sysfs nodes, and the deprecated-shim equivalences. *)

module M = Sud_obs.Metrics
module T = Sud_obs.Trace

(* ---- metrics registry ---- *)

let test_counter_gauge_histogram () =
  let reg = M.create_registry () in
  let c = M.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter" 5 (M.get c);
  let cell = ref 17 in
  let g = M.gauge ~registry:reg ~subsystem:"t" ~name:"g" (fun () -> !cell) in
  Alcotest.(check int) "gauge" 17 (M.gauge_value g);
  cell := 3;
  Alcotest.(check int) "gauge follows" 3 (M.gauge_value g);
  let h = M.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  List.iter (M.observe h) [ 1; 2; 3; 1000; 1_000_000 ];
  Alcotest.(check int) "hist count" 5 (M.hist_count h);
  Alcotest.(check int) "hist sum" 1_001_006 (M.hist_sum h);
  let snap = M.snapshot ~registry:reg () in
  Alcotest.(check int) "one subsystem" 1 (List.length snap);
  Alcotest.(check int) "three samples" 3
    (List.length (List.hd snap).M.g_samples);
  (* keep the handles alive past the snapshot: the registry holds them
     weakly on purpose *)
  ignore (M.get c + M.gauge_value g + M.hist_count h : int)

let test_replace_on_same_key () =
  let reg = M.create_registry () in
  let c1 = M.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  M.add c1 7;
  let c2 = M.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  let snap = M.snapshot ~registry:reg () in
  Alcotest.(check int) "still one sample" 1
    (List.length (List.hd snap).M.g_samples);
  (match (List.hd (List.hd snap).M.g_samples).M.s_value with
   | M.Counter v -> Alcotest.(check int) "newest instance wins" 0 v
   | _ -> Alcotest.fail "expected counter");
  ignore (M.get c1 + M.get c2 : int)

let test_registry_does_not_root_metrics () =
  let reg = M.create_registry () in
  let make () =
    let c = M.counter ~registry:reg ~subsystem:"ephemeral" ~name:"c" () in
    M.incr c
  in
  make ();
  Gc.full_major ();
  Gc.full_major ();
  let snap = M.snapshot ~registry:reg () in
  Alcotest.(check bool) "dead subsystem pruned" true
    (not (List.exists (fun g -> g.M.g_subsystem = "ephemeral") snap))

let hist_bucket_sum_test =
  QCheck.Test.make ~name:"histogram: bucket sums = observation count" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (int_bound 1_000_000))
    (fun vs ->
       let reg = M.create_registry () in
       let h = M.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
       List.iter (M.observe h) vs;
       let bucket_total = Array.fold_left ( + ) 0 (M.hist_buckets h) in
       bucket_total = List.length vs
       && M.hist_count h = List.length vs
       && M.hist_sum h = List.fold_left ( + ) 0 vs)

(* ---- trace ring ---- *)

let with_trace f =
  T.set_capacity 256;
  T.set_enabled true;
  Fun.protect ~finally:(fun () ->
      T.set_enabled false;
      T.set_capacity 16384)
    f

let test_trace_disabled_is_free () =
  T.set_enabled false;
  T.reset ();
  let id = T.emit ~cat:"t" ~name:"x" () in
  Alcotest.(check int) "disabled emit returns 0" 0 id;
  Alcotest.(check int) "nothing recorded" 0 (T.emitted ())

let trace_accounting_test =
  QCheck.Test.make ~name:"trace: emitted = retained + dropped under storms"
    ~count:100
    QCheck.(pair (int_range 1 500) (int_range 0 2000))
    (fun (cap, n) ->
       T.set_capacity cap;
       T.set_enabled true;
       Fun.protect ~finally:(fun () ->
           T.set_enabled false;
           T.set_capacity 16384)
         (fun () ->
            for i = 1 to n do
              ignore (T.emit ~parent:(i / 2) ~cat:"storm" ~name:"s" () : int)
            done;
            T.emitted () = n
            && T.emitted () = T.retained () + T.dropped ()
            && T.retained () = min n cap
            && List.length (T.spans ()) = T.retained ()
            (* the retained window is the newest spans, ids ascending *)
            && (match T.spans () with
                | [] -> n = 0
                | first :: _ as l ->
                  first.T.sp_id = n - T.retained () + 1
                  && (List.nth l (T.retained () - 1)).T.sp_id = n)))

let test_jsonl_roundtrip () =
  with_trace (fun () ->
      let a = T.emit ~cat:"uchan" ~name:"rpc" ~attrs:[ ("seq", "1"); ("odd", "a\"b\\c\n") ] () in
      let b = T.emit ~parent:a ~dur_ns:42 ~cat:"iommu" ~name:"fault" () in
      ignore (T.emit ~parent:b ~cat:"sup" ~name:"detect" () : int);
      let lines = String.split_on_char '\n' (String.trim (T.to_jsonl ())) in
      Alcotest.(check int) "three lines" 3 (List.length lines);
      let parsed = List.filter_map T.span_of_line lines in
      Alcotest.(check int) "all parse" 3 (List.length parsed);
      let orig = T.spans () in
      List.iter2
        (fun o p ->
           Alcotest.(check int) "id" o.T.sp_id p.T.sp_id;
           Alcotest.(check int) "parent" o.T.sp_parent p.T.sp_parent;
           Alcotest.(check int) "dur" o.T.sp_dur p.T.sp_dur;
           Alcotest.(check string) "cat" o.T.sp_cat p.T.sp_cat;
           Alcotest.(check string) "name" o.T.sp_name p.T.sp_name;
           Alcotest.(check bool) "attrs" true (o.T.sp_attrs = p.T.sp_attrs))
        orig parsed)

let test_chain_exists () =
  with_trace (fun () ->
      let rpc = T.emit ~cat:"uchan" ~name:"rpc" () in
      let flt = T.emit ~parent:rpc ~cat:"iommu" ~name:"fault" () in
      let det = T.emit ~parent:flt ~cat:"sup" ~name:"detect" () in
      let kil = T.emit ~parent:det ~cat:"sup" ~name:"kill" () in
      ignore (T.emit ~parent:kil ~cat:"sup" ~name:"restart" () : int);
      (* an unrelated fault with no rpc parent must not satisfy the chain *)
      ignore (T.emit ~cat:"iommu" ~name:"fault" () : int);
      let spans = T.spans () in
      Alcotest.(check bool) "full chain found" true
        (T.chain_exists spans
           [ ("uchan", "rpc"); ("iommu", "fault"); ("sup", "detect");
             ("sup", "kill"); ("sup", "restart") ]);
      Alcotest.(check bool) "absent link rejected" false
        (T.chain_exists spans
           [ ("uchan", "rpc"); ("iommu", "fault"); ("sup", "quarantine") ]))

let test_remember_recall_current () =
  with_trace (fun () ->
      T.remember "k" 7;
      Alcotest.(check int) "recall" 7 (T.recall "k");
      Alcotest.(check int) "unknown key" 0 (T.recall "nope");
      Alcotest.(check int) "no ambient current" 0 (T.current ());
      let seen = T.with_current 9 (fun () -> T.current ()) in
      Alcotest.(check int) "ambient inside" 9 seen;
      Alcotest.(check int) "restored outside" 0 (T.current ()))

(* ---- boundary instrumentation: spans from a real world ---- *)

let test_sysfs_metrics_node () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  (match Sysfs.read_file k.Kernel.sysfs ~path:"/sys/kernel/sud_metrics" with
   | Some _ -> ()
   | None -> Alcotest.fail "sud_metrics node missing");
  (match Sysfs.read_file k.Kernel.sysfs ~path:"/sys/kernel/sud_metrics.json" with
   | Some body ->
     Alcotest.(check bool) "json-shaped" true
       (String.length body > 0 && body.[0] = '{')
   | None -> Alcotest.fail "sud_metrics.json node missing");
  Alcotest.(check (option string)) "unknown path" None
    (Sysfs.read_file k.Kernel.sysfs ~path:"/sys/kernel/nope")

(* The admin-facing contract behind `sudctl metrics`: with a multiqueue
   SUD driver running, the sysfs registry dump carries per-queue labels
   for every queue — uchan ring counters and netdev backlog counters
   alike — so operators can see which queue a storm or a backlog burst
   hit. *)
let test_metrics_per_queue_labels () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic =
    E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0a") ~medium ~queues:4 ()
  in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let body = ref "" in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"main" (fun () ->
         let sp = Safe_pci.init k in
         (match Driver_host.launch k sp (Driver_host.net ()) ~bdf ~name:"eth0" E1000.driver with
          | Ok _ -> ()
          | Error e -> failwith e);
         match Sysfs.read_file k.Kernel.sysfs ~path:"/sys/kernel/sud_metrics" with
         | Some b -> body := b
         | None -> failwith "sud_metrics node missing")
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng;
  let contains needle =
    let n = String.length needle and hs = !body in
    let rec go i =
      i + n <= String.length hs && (String.sub hs i n = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "queue_upcalls{chan=eth0,queue=0}";
      "queue_upcalls{chan=eth0,queue=3}";
      "queue_downcalls{chan=eth0,queue=3}";
      "queue_dropped{chan=eth0,queue=3}";
      "queue_backlog_offered{dev=eth0,queue=3}";
      "queue_backlog_replayed{dev=eth0,queue=3}" ]

(* ---- deprecated shims still agree with the registry ---- *)

[@@@alert "-deprecated"]

let test_shims_agree () =
  let io = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
  let d = Iommu.attach io ~source:3 in
  Iommu.map io d ~iova:0x1000 ~phys:0x2000 ~len:4096 ~writable:true;
  ignore (Iommu.translate io ~source:3 ~addr:0x1000 ~dir:Bus.Dma_read : [ `Fault of Bus.fault | `Msi | `Phys of int ]);
  ignore (Iommu.translate io ~source:3 ~addr:0x1000 ~dir:Bus.Dma_read
          : [ `Fault of Bus.fault | `Msi | `Phys of int ]);
  let st = Iommu.iotlb_stats io in
  let m = Iommu.metrics io in
  Alcotest.(check int) "hits shim" (M.gauge_value m.Iommu.im_hits) st.Iommu.hits;
  Alcotest.(check int) "misses shim" (M.gauge_value m.Iommu.im_misses) st.Iommu.misses;
  Alcotest.(check int) "flush shim" (M.get m.Iommu.im_flushes) (Iommu.iotlb_flushes io);
  Alcotest.(check int) "hits saw traffic" 1 st.Iommu.hits;
  Alcotest.(check int) "misses saw traffic" 1 st.Iommu.misses

let suite =
  [ Alcotest.test_case "metrics: counter/gauge/histogram" `Quick
      test_counter_gauge_histogram;
    Alcotest.test_case "metrics: replace on same key" `Quick test_replace_on_same_key;
    Alcotest.test_case "metrics: registry holds weakly" `Quick
      test_registry_does_not_root_metrics;
    Alcotest.test_case "trace: disabled emit is free" `Quick test_trace_disabled_is_free;
    Alcotest.test_case "trace: jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "trace: chain_exists" `Quick test_chain_exists;
    Alcotest.test_case "trace: remember/recall/current" `Quick
      test_remember_recall_current;
    Alcotest.test_case "sysfs: /sys/kernel/sud_metrics" `Quick test_sysfs_metrics_node;
    Alcotest.test_case "sudctl metrics: per-queue labels" `Quick
      test_metrics_per_queue_labels;
    Alcotest.test_case "deprecated shims agree with registry" `Quick test_shims_agree ]
  @ List.map QCheck_alcotest.to_alcotest [ hist_bucket_sum_test; trace_accounting_test ]
