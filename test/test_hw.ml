(* Unit and property tests for the hardware substrate: physical memory,
   PCI config space, IOMMU, IO ports, topology routing, devices. *)

let mode_vtd = Iommu.Intel_vtd { interrupt_remapping = false }

(* New-API reads of the IOMMU registry handles (the deprecated
   Iommu.iotlb_stats/iotlb_flushes shims are exercised in test_obs.ml). *)
let iotlb_stats io =
  let m = Iommu.metrics io in
  { Iommu.hits = Sud_obs.Metrics.gauge_value m.Iommu.im_hits;
    misses = Sud_obs.Metrics.gauge_value m.Iommu.im_misses;
    evictions = Sud_obs.Metrics.get m.Iommu.im_evictions }

let iotlb_flushes io = Sud_obs.Metrics.get (Iommu.metrics io).Iommu.im_flushes
let mode_vtd_ir = Iommu.Intel_vtd { interrupt_remapping = true }

(* ---- phys_mem ---- *)

let test_phys_rw () =
  let m = Phys_mem.create ~size:(1 lsl 20) in
  Phys_mem.write m ~addr:0x1234 (Bytes.of_string "hello");
  Alcotest.(check string) "roundtrip" "hello"
    (Bytes.to_string (Phys_mem.read m ~addr:0x1234 ~len:5));
  Phys_mem.write32 m 0x2000 0xDEADBEEF;
  Alcotest.(check int) "word" 0xDEADBEEF (Phys_mem.read32 m 0x2000)

let test_phys_cross_page () =
  let m = Phys_mem.create ~size:(1 lsl 20) in
  let data = Bytes.init 10000 (fun i -> Char.chr (i land 0xff)) in
  Phys_mem.write m ~addr:4000 data;
  Alcotest.(check bytes) "spans pages" data (Phys_mem.read m ~addr:4000 ~len:10000)

let test_phys_bounds () =
  let m = Phys_mem.create ~size:4096 in
  Alcotest.check_raises "out of range" (Phys_mem.Bus_error 4096) (fun () ->
      ignore (Phys_mem.read8 m 4096 : int))

let test_phys_alloc () =
  let m = Phys_mem.create ~size:(1 lsl 20) in
  let a = Phys_mem.alloc_pages m ~pages:2 in
  let b = Phys_mem.alloc_pages m ~pages:1 in
  Alcotest.(check bool) "disjoint" true (b >= a + 8192 || b + 4096 <= a);
  Alcotest.(check bool) "page aligned" true (Bus.is_page_aligned a && Bus.is_page_aligned b);
  Alcotest.(check bool) "low memory reserved" true (a >= 65536);
  Phys_mem.write8 m a 0xAB;
  Phys_mem.free_pages m ~addr:a ~pages:2;
  Alcotest.(check int) "freed pages are zeroed" 0 (Phys_mem.read8 m a);
  let c = Phys_mem.alloc_pages m ~pages:2 in
  Alcotest.(check int) "free list reuses the run" a c

let test_phys_exhaustion () =
  let m = Phys_mem.create ~size:(128 * 4096) in
  Alcotest.check_raises "oom" (Failure "Phys_mem: out of physical memory") (fun () ->
      for _ = 1 to 1000 do ignore (Phys_mem.alloc_pages m ~pages:8 : int) done)

(* ---- pci_cfg ---- *)

let mk_cfg () =
  Pci_cfg.create ~vendor:0x8086 ~device:0x10D3
    ~bars:[| Some (Pci_cfg.Mem { size = 0x20000 }); Some (Pci_cfg.Io { size = 0x20 }) |]
    ()

let test_cfg_ids () =
  let c = mk_cfg () in
  Alcotest.(check int) "vendor" 0x8086 (Pci_cfg.read c ~off:Pci_cfg.vendor_id ~size:2);
  Alcotest.(check int) "device" 0x10D3 (Pci_cfg.read c ~off:Pci_cfg.device_id ~size:2);
  Alcotest.(check int) "byte access" 0x86 (Pci_cfg.read c ~off:0 ~size:1)

let test_cfg_bar_sizing () =
  let c = mk_cfg () in
  Pci_cfg.set_bar_base c 0 0xE0000000;
  Pci_cfg.write c ~off:Pci_cfg.bar0 ~size:4 0xFFFFFFFF;
  let sized = Pci_cfg.read c ~off:Pci_cfg.bar0 ~size:4 in
  Alcotest.(check int) "size mask" (lnot 0x1FFFF land 0xFFFFFFFF) sized;
  Pci_cfg.write c ~off:Pci_cfg.bar0 ~size:4 0xE0000000;
  Alcotest.(check int) "base restored" 0xE0000000 (Pci_cfg.bar_base c 0)

let test_cfg_msi () =
  let c = mk_cfg () in
  Alcotest.(check (option int)) "no cap yet" None (Pci_cfg.find_capability c Pci_cfg.msi_cap_id);
  Pci_cfg.add_msi_capability c;
  Alcotest.(check bool) "cap found" true
    (Pci_cfg.find_capability c Pci_cfg.msi_cap_id <> None);
  Alcotest.(check bool) "disabled initially" false (Pci_cfg.msi_enabled c);
  Pci_cfg.msi_configure c ~address:0xFEE00000 ~data:42;
  Alcotest.(check bool) "enabled" true (Pci_cfg.msi_enabled c);
  Alcotest.(check int) "address" 0xFEE00000 (Pci_cfg.msi_address c);
  Alcotest.(check int) "data" 42 (Pci_cfg.msi_data c);
  Pci_cfg.msi_set_mask c true;
  Alcotest.(check bool) "masked" true (Pci_cfg.msi_masked c);
  Pci_cfg.msi_set_mask c false;
  Alcotest.(check bool) "unmasked" false (Pci_cfg.msi_masked c)

let test_cfg_command_bits () =
  let c = mk_cfg () in
  Pci_cfg.write c ~off:Pci_cfg.command ~size:2 Pci_cfg.cmd_bus_master;
  Alcotest.(check bool) "bus master" true (Pci_cfg.command_has c Pci_cfg.cmd_bus_master);
  Alcotest.(check bool) "mem not enabled" false (Pci_cfg.command_has c Pci_cfg.cmd_mem_enable)

let test_cfg_rejects_tiny_bar () =
  Alcotest.check_raises "sub-page memory BAR rejected"
    (Invalid_argument "Pci_cfg.create: memory BAR size must be a power of two >= one page")
    (fun () ->
       ignore (Pci_cfg.create ~vendor:1 ~device:1 ~bars:[| Some (Pci_cfg.Mem { size = 512 }) |] ()
               : Pci_cfg.t))

(* ---- iommu ---- *)

let test_iommu_translate () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x42430000 ~phys:0x10000 ~len:8192 ~writable:true;
  (match Iommu.translate io ~source:5 ~addr:0x42430123 ~dir:Bus.Dma_read with
   | `Phys p -> Alcotest.(check int) "offset preserved" 0x10123 p
   | `Msi | `Fault _ -> Alcotest.fail "expected translation");
  (match Iommu.translate io ~source:5 ~addr:0x42432000 ~dir:Bus.Dma_read with
   | `Fault _ -> ()
   | `Phys _ | `Msi -> Alcotest.fail "expected fault beyond mapping");
  Alcotest.(check int) "fault recorded" 1 (List.length (Iommu.faults io))

let test_iommu_passthrough () =
  let io = Iommu.create ~mode:mode_vtd () in
  match Iommu.translate io ~source:9 ~addr:0x1234 ~dir:Bus.Dma_read with
  | `Phys p -> Alcotest.(check int) "identity for unattached devices" 0x1234 p
  | `Msi | `Fault _ -> Alcotest.fail "expected passthrough"

let test_iommu_write_protection () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x1000 ~phys:0x2000 ~len:4096 ~writable:false;
  (match Iommu.translate io ~source:5 ~addr:0x1000 ~dir:Bus.Dma_read with
   | `Phys _ -> ()
   | `Msi | `Fault _ -> Alcotest.fail "read allowed");
  match Iommu.translate io ~source:5 ~addr:0x1000 ~dir:Bus.Dma_write with
  | `Fault _ -> ()
  | `Phys _ | `Msi -> Alcotest.fail "write must fault on read-only mapping"

let test_iommu_msi_quirk () =
  (* Intel: implicit identity MSI mapping even for confined devices. *)
  let io = Iommu.create ~mode:mode_vtd () in
  ignore (Iommu.attach io ~source:5 : Iommu.domain);
  (match Iommu.translate io ~source:5 ~addr:0xFEE00000 ~dir:Bus.Dma_write with
   | `Msi -> ()
   | `Phys _ | `Fault _ -> Alcotest.fail "VT-d implicit MSI mapping missing");
  (* AMD: MSI writes fault unless explicitly mapped. *)
  let amd = Iommu.create ~mode:Iommu.Amd_vi () in
  let d = Iommu.attach amd ~source:5 in
  (match Iommu.translate amd ~source:5 ~addr:0xFEE00000 ~dir:Bus.Dma_write with
   | `Fault _ -> ()
   | `Phys _ | `Msi -> Alcotest.fail "AMD must not have an implicit MSI mapping");
  Iommu.map amd d ~iova:Bus.msi_window_base ~phys:Bus.msi_window_base
    ~len:(Bus.msi_window_limit - Bus.msi_window_base) ~writable:true;
  match Iommu.translate amd ~source:5 ~addr:0xFEE00000 ~dir:Bus.Dma_write with
  | `Msi -> ()
  | `Phys _ | `Fault _ -> Alcotest.fail "mapped MSI window should deliver"

let test_iommu_unmap_flush () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x1000 ~phys:0x2000 ~len:4096 ~writable:true;
  let flushes = iotlb_flushes io in
  Iommu.unmap io d ~iova:0x1000 ~len:4096;
  Alcotest.(check int) "unmap flushes the IOTLB" (flushes + 1) (iotlb_flushes io);
  match Iommu.translate io ~source:5 ~addr:0x1000 ~dir:Bus.Dma_read with
  | `Fault _ -> ()
  | `Phys _ | `Msi -> Alcotest.fail "unmapped address must fault"

let test_iotlb_counters () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x10000 ~phys:0x20000 ~len:8192 ~writable:true;
  let s0 = iotlb_stats io in
  Alcotest.(check (list int)) "cold cache" [ 0; 0 ] [ s0.Iommu.hits; s0.Iommu.misses ];
  (* Scripted pattern: miss, hit, miss (new page), hit, hit. *)
  List.iter
    (fun addr ->
       match Iommu.translate io ~source:5 ~addr ~dir:Bus.Dma_read with
       | `Phys _ -> ()
       | `Msi | `Fault _ -> Alcotest.fail "expected translation")
    [ 0x10123; 0x10456; 0x11000; 0x11abc; 0x10789 ];
  let s1 = iotlb_stats io in
  Alcotest.(check (list int)) "2 walks, 3 hits" [ 3; 2 ] [ s1.Iommu.hits; s1.Iommu.misses ];
  (* A fault on an unmapped page pays a walk, not a hit. *)
  (match Iommu.translate io ~source:5 ~addr:0x40000 ~dir:Bus.Dma_read with
   | `Fault _ -> ()
   | `Phys _ | `Msi -> Alcotest.fail "expected fault");
  let s2 = iotlb_stats io in
  Alcotest.(check (list int)) "fault counted as miss" [ 3; 3 ] [ s2.Iommu.hits; s2.Iommu.misses ]

let test_iotlb_conflict_eviction () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  (* Pages v and v + iotlb_slots index into the same direct-mapped slot. *)
  let stride = Iommu.iotlb_slots * 4096 in
  Iommu.map io d ~iova:0x100000 ~phys:0x200000 ~len:4096 ~writable:true;
  Iommu.map io d ~iova:(0x100000 + stride) ~phys:0x300000 ~len:4096 ~writable:true;
  ignore (Iommu.translate io ~source:5 ~addr:0x100000 ~dir:Bus.Dma_read);
  ignore (Iommu.translate io ~source:5 ~addr:(0x100000 + stride) ~dir:Bus.Dma_read);
  let s = iotlb_stats io in
  Alcotest.(check int) "conflict evicts" 1 s.Iommu.evictions;
  (* The evicted page still translates correctly (via a fresh walk). *)
  match Iommu.translate io ~source:5 ~addr:0x100123 ~dir:Bus.Dma_read with
  | `Phys p -> Alcotest.(check int) "re-walk correct" 0x200123 p
  | `Msi | `Fault _ -> Alcotest.fail "expected translation"

let test_iotlb_no_stale_after_unmap () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x10000 ~phys:0x20000 ~len:4096 ~writable:true;
  (* Warm the IOTLB, then unmap: a subsequent hit would be a containment
     hole (the device could still reach the old physical page). *)
  ignore (Iommu.translate io ~source:5 ~addr:0x10000 ~dir:Bus.Dma_write);
  ignore (Iommu.translate io ~source:5 ~addr:0x10004 ~dir:Bus.Dma_write);
  Iommu.unmap io d ~iova:0x10000 ~len:4096;
  (match Iommu.translate io ~source:5 ~addr:0x10008 ~dir:Bus.Dma_write with
   | `Fault _ -> ()
   | `Phys _ | `Msi -> Alcotest.fail "stale IOTLB entry survived unmap");
  (* Same for the writable bit: remap read-only, the cached writable pte
     must not resurrect write access. *)
  Iommu.map io d ~iova:0x10000 ~phys:0x20000 ~len:4096 ~writable:false;
  ignore (Iommu.translate io ~source:5 ~addr:0x10000 ~dir:Bus.Dma_read);
  (match Iommu.translate io ~source:5 ~addr:0x10000 ~dir:Bus.Dma_write with
   | `Fault _ -> ()
   | `Phys _ | `Msi -> Alcotest.fail "stale writable bit survived remap");
  (* And detach: the passthrough identity path must not leak cached pages
     of the dead domain. *)
  Iommu.map io d ~iova:0x30000 ~phys:0x50000 ~len:4096 ~writable:true;
  ignore (Iommu.translate io ~source:5 ~addr:0x30000 ~dir:Bus.Dma_read);
  Iommu.detach io ~source:5;
  (match Iommu.translate io ~source:5 ~addr:0x30000 ~dir:Bus.Dma_read with
   | `Phys p -> Alcotest.(check int) "identity after detach, not cached phys" 0x30000 p
   | `Msi | `Fault _ -> Alcotest.fail "expected passthrough after detach");
  (* Re-attach: an empty domain faults everywhere, cache included. *)
  let d2 = Iommu.attach io ~source:5 in
  ignore (d2 : Iommu.domain);
  match Iommu.translate io ~source:5 ~addr:0x30000 ~dir:Bus.Dma_read with
  | `Fault _ -> ()
  | `Phys _ | `Msi -> Alcotest.fail "stale entry survived detach/attach"

let test_iotlb_flush_scrubs () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x10000 ~phys:0x20000 ~len:4096 ~writable:true;
  ignore (Iommu.translate io ~source:5 ~addr:0x10000 ~dir:Bus.Dma_read);
  let s0 = iotlb_stats io in
  Iommu.iotlb_flush io d;
  ignore (Iommu.translate io ~source:5 ~addr:0x10000 ~dir:Bus.Dma_read);
  let s1 = iotlb_stats io in
  Alcotest.(check int) "flush forces a re-walk" (s0.Iommu.misses + 1) s1.Iommu.misses;
  Alcotest.(check int) "no phantom hit" s0.Iommu.hits s1.Iommu.hits

let test_iommu_mappings_merge () =
  let io = Iommu.create ~mode:mode_vtd () in
  let d = Iommu.attach io ~source:5 in
  Iommu.map io d ~iova:0x10000 ~phys:0x20000 ~len:4096 ~writable:true;
  Iommu.map io d ~iova:0x11000 ~phys:0x21000 ~len:4096 ~writable:true;
  Iommu.map io d ~iova:0x20000 ~phys:0x30000 ~len:4096 ~writable:true;
  Alcotest.(check (list (pair int int)))
    "contiguous runs merged"
    [ (0x10000, 8192); (0x20000, 4096) ]
    (List.map (fun (iova, _, len, _) -> (iova, len)) (Iommu.mappings d))

let test_iommu_ir () =
  let io = Iommu.create ~mode:mode_vtd_ir () in
  Alcotest.(check bool) "available" true (Iommu.ir_available io);
  Alcotest.(check bool) "unknown blocked" false (Iommu.ir_check io ~source:5 ~vector:33);
  Iommu.ir_allow io ~source:5 ~vector:33;
  Alcotest.(check bool) "allowed" true (Iommu.ir_check io ~source:5 ~vector:33);
  Alcotest.(check bool) "other vector blocked" false (Iommu.ir_check io ~source:5 ~vector:34);
  Iommu.ir_block_source io ~source:5;
  Alcotest.(check bool) "blocked after escalation" false (Iommu.ir_check io ~source:5 ~vector:33);
  (* Without IR hardware, everything passes (the testbed weakness). *)
  let noir = Iommu.create ~mode:mode_vtd () in
  Alcotest.(check bool) "no IR = no filtering" true (Iommu.ir_check noir ~source:5 ~vector:99)

(* ---- ioport / IOPB ---- *)

let test_iopb () =
  let b = Ioport.Iopb.none () in
  Alcotest.(check bool) "denied initially" false (Ioport.Iopb.allows b ~port:0xC000 ~size:1);
  Ioport.Iopb.grant b ~base:0xC000 ~len:0x20;
  Alcotest.(check bool) "granted" true (Ioport.Iopb.allows b ~port:0xC01F ~size:1);
  Alcotest.(check bool) "straddling the end denied" false
    (Ioport.Iopb.allows b ~port:0xC01F ~size:2);
  Alcotest.(check (list (pair int int))) "ranges" [ (0xC000, 0x20) ]
    (Ioport.Iopb.granted_ranges b);
  Ioport.Iopb.revoke b ~base:0xC000 ~len:0x20;
  Alcotest.(check bool) "revoked" false (Ioport.Iopb.allows b ~port:0xC000 ~size:1)

let test_ioport_gp () =
  let io = Ioport.create () in
  let last = ref (-1) in
  Ioport.register io ~base:0x70 ~len:2
    ~read:(fun ~off ~size:_ -> off + 100)
    ~write:(fun ~off:_ ~size:_ v -> last := v);
  let all = Ioport.Iopb.all () and none = Ioport.Iopb.none () in
  Alcotest.(check int) "kernel read" 101 (Ioport.read io ~iopb:all ~port:0x71 ~size:1);
  Ioport.write io ~iopb:all ~port:0x70 ~size:1 42;
  Alcotest.(check int) "kernel write" 42 !last;
  Alcotest.check_raises "user denied" (Ioport.General_protection 0x70) (fun () ->
      ignore (Ioport.read io ~iopb:none ~port:0x70 ~size:1 : int));
  Alcotest.(check int) "floating bus" 0xFF (Ioport.read io ~iopb:all ~port:0x500 ~size:1)

let test_ioport_overlap () =
  let io = Ioport.create () in
  Ioport.register io ~base:0x100 ~len:0x10 ~read:(fun ~off:_ ~size:_ -> 0)
    ~write:(fun ~off:_ ~size:_ _ -> ());
  Alcotest.check_raises "overlap rejected" (Invalid_argument "Ioport.register: overlap")
    (fun () ->
       Ioport.register io ~base:0x108 ~len:0x10 ~read:(fun ~off:_ ~size:_ -> 0)
         ~write:(fun ~off:_ ~size:_ _ -> ()))

(* ---- topology ---- *)

let mk_world () =
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(16 * 1024 * 1024) in
  let iommu = Iommu.create ~mode:mode_vtd () in
  let ioports = Ioport.create () in
  let topo = Pci_topology.create ~mem ~iommu ~ioports () in
  (eng, mem, iommu, topo)

let mk_nic eng topo medium mac_byte =
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 mac_byte) ~medium () in
  let bdf = Pci_topology.attach topo ~switch:(Pci_topology.root_switch topo) (E1000_dev.device nic) in
  (nic, bdf)

let test_topology_cfg_and_mmio () =
  let eng, _, _, topo = mk_world () in
  let medium = Net_medium.create eng () in
  let _nic, bdf = mk_nic eng topo medium '\x02' in
  Alcotest.(check int) "cfg vendor" 0x8086 (Pci_topology.cfg_read topo bdf ~off:0 ~size:2);
  let base, size = Option.get (Pci_topology.bar_region topo bdf ~bar:0) in
  Alcotest.(check int) "bar size" 0x20000 size;
  (* Memory decoding off: access faults. *)
  Alcotest.check_raises "mem decode off" (Phys_mem.Bus_error (base + 8)) (fun () ->
      ignore (Pci_topology.mmio_read topo ~addr:(base + 8) ~size:4 : int));
  Pci_topology.cfg_write topo bdf ~off:Pci_cfg.command ~size:2 Pci_cfg.cmd_mem_enable;
  ignore (Pci_topology.mmio_read topo ~addr:(base + 8) ~size:4 : int)

let test_topology_unknown_addr () =
  let _, _, _, topo = mk_world () in
  Alcotest.check_raises "no device claims" (Phys_mem.Bus_error 0xD0000000) (fun () ->
      ignore (Pci_topology.mmio_read topo ~addr:0xD0000000 ~size:4 : int))

let test_topology_bdf_assignment () =
  let eng, _, _, topo = mk_world () in
  let medium = Net_medium.create eng () in
  let _, bdf_a = mk_nic eng topo medium '\x02' in
  let _, bdf_b = mk_nic eng topo medium '\x03' in
  Alcotest.(check bool) "distinct BDFs" true (bdf_a <> bdf_b);
  let sw = Pci_topology.add_switch topo ~parent:(Pci_topology.root_switch topo) ~name:"sw" in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x04') ~medium () in
  let bdf_c = Pci_topology.attach topo ~switch:sw (E1000_dev.device nic) in
  Alcotest.(check bool) "switch gets its own bus" true (Bus.bdf_bus bdf_c <> Bus.bdf_bus bdf_a)

let test_bus_bdf () =
  let bdf = Bus.make_bdf ~bus:3 ~dev:31 ~fn:7 in
  Alcotest.(check int) "bus" 3 (Bus.bdf_bus bdf);
  Alcotest.(check int) "dev" 31 (Bus.bdf_dev bdf);
  Alcotest.(check int) "fn" 7 (Bus.bdf_fn bdf);
  Alcotest.(check string) "pp" "03:1f.7" (Bus.string_of_bdf bdf)

(* ---- net medium ---- *)

let test_medium_delivery () =
  let eng = Engine.create () in
  let m = Net_medium.create eng ~rate_bps:1_000_000_000 ~latency_ns:1000 () in
  let got = ref [] in
  let _a = Net_medium.attach m ~name:"a" ~rx:(fun f -> got := ("a", Bytes.length f) :: !got) in
  let b = Net_medium.attach m ~name:"b" ~rx:(fun f -> got := ("b", Bytes.length f) :: !got) in
  Net_medium.send m b (Bytes.make 100 'x');
  Engine.run eng;
  (* Only the other station hears it. *)
  Alcotest.(check (list (pair string int))) "unicast to peers" [ ("a", 100) ] !got;
  Alcotest.(check bool) "delivery delayed by wire time" true (Engine.now eng >= 1000)

let test_medium_serialization () =
  let eng = Engine.create () in
  let m = Net_medium.create eng ~rate_bps:1_000_000_000 ~latency_ns:0 () in
  let times = ref [] in
  let _a = Net_medium.attach m ~name:"a" ~rx:(fun _ -> times := Engine.now eng :: !times) in
  let b = Net_medium.attach m ~name:"b" ~rx:ignore in
  (* Two back-to-back frames serialize on the sender's line. *)
  Net_medium.send m b (Bytes.make 1500 'x');
  Net_medium.send m b (Bytes.make 1500 'x');
  Engine.run eng;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check bool) "second frame waits for the first" true (t2 >= 2 * t1)
  | _ -> Alcotest.fail "expected two deliveries"

(* ---- e1000 device model, driven raw ---- *)

let test_e1000_eeprom_mac () =
  let eng = Engine.create () in
  let medium = Net_medium.create eng () in
  let mac = Bytes.of_string "\x52\x54\x00\xAB\xCD\xEF" in
  let nic = E1000_dev.create eng ~mac ~medium () in
  let ops = Device.ops (E1000_dev.device nic) in
  ops.Device.mmio_write ~bar:0 ~off:E1000_dev.Regs.eerd ~size:4
    ((1 lsl 8) lor E1000_dev.Regs.eerd_start);
  let v = ops.Device.mmio_read ~bar:0 ~off:E1000_dev.Regs.eerd ~size:4 in
  Alcotest.(check bool) "done bit" true (v land E1000_dev.Regs.eerd_done <> 0);
  Alcotest.(check int) "word 1 = mac bytes 2,3" 0xAB00 ((v lsr 16) land 0xFFFF);
  Alcotest.(check bytes) "mac helper" mac (E1000_dev.mac nic)

let test_e1000_icr_read_clears () =
  let eng = Engine.create () in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let ops = Device.ops (E1000_dev.device nic) in
  ops.Device.mmio_write ~bar:0 ~off:E1000_dev.Regs.ics ~size:4 E1000_dev.Regs.int_txdw;
  Alcotest.(check int) "cause latched" E1000_dev.Regs.int_txdw
    (ops.Device.mmio_read ~bar:0 ~off:E1000_dev.Regs.icr ~size:4);
  Alcotest.(check int) "read cleared it" 0
    (ops.Device.mmio_read ~bar:0 ~off:E1000_dev.Regs.icr ~size:4)

(* ---- ne2k device model, driven raw ---- *)

let test_ne2k_remote_dma () =
  let eng = Engine.create () in
  let medium = Net_medium.create eng () in
  let nic = Ne2k_dev.create eng ~mac:(Bytes.of_string "\x52\x54\x00\x01\x02\x03") ~medium () in
  let ops = Device.ops (Ne2k_dev.device nic) in
  let outb off v = ops.Device.io_write ~bar:0 ~off ~size:1 v in
  let inb off = ops.Device.io_read ~bar:0 ~off ~size:1 in
  (* Write a pattern into card memory page 2 via remote DMA, read it back. *)
  outb Ne2k_dev.Regs.cr (Ne2k_dev.Regs.cr_sta lor Ne2k_dev.Regs.cr_rd_write);
  outb Ne2k_dev.Regs.rsar0 0x00;
  outb Ne2k_dev.Regs.rsar1 0x02;
  outb Ne2k_dev.Regs.rbcr0 4;
  outb Ne2k_dev.Regs.rbcr1 0;
  List.iter (fun v -> outb Ne2k_dev.Regs.dataport v) [ 0xDE; 0xAD; 0xBE; 0xEF ];
  Alcotest.(check bool) "RDC set after count exhausted" true
    (inb Ne2k_dev.Regs.isr land Ne2k_dev.Regs.isr_rdc <> 0);
  outb Ne2k_dev.Regs.cr (Ne2k_dev.Regs.cr_sta lor Ne2k_dev.Regs.cr_rd_read);
  outb Ne2k_dev.Regs.rsar0 0x00;
  outb Ne2k_dev.Regs.rsar1 0x02;
  outb Ne2k_dev.Regs.rbcr0 4;
  outb Ne2k_dev.Regs.rbcr1 0;
  let got = List.init 4 (fun _ -> inb Ne2k_dev.Regs.dataport) in
  Alcotest.(check (list int)) "roundtrip through card memory" [ 0xDE; 0xAD; 0xBE; 0xEF ] got

let test_ne2k_prom () =
  let eng = Engine.create () in
  let medium = Net_medium.create eng () in
  let mac = Bytes.of_string "\x52\x54\x00\xAA\xBB\xCC" in
  let nic = Ne2k_dev.create eng ~mac ~medium () in
  let ops = Device.ops (Ne2k_dev.device nic) in
  let outb off v = ops.Device.io_write ~bar:0 ~off ~size:1 v in
  let inb off = ops.Device.io_read ~bar:0 ~off ~size:1 in
  outb Ne2k_dev.Regs.cr (Ne2k_dev.Regs.cr_sta lor Ne2k_dev.Regs.cr_rd_read);
  outb Ne2k_dev.Regs.rsar0 0;
  outb Ne2k_dev.Regs.rsar1 0;
  outb Ne2k_dev.Regs.rbcr0 12;
  outb Ne2k_dev.Regs.rbcr1 0;
  let prom = List.init 12 (fun _ -> inb Ne2k_dev.Regs.dataport) in
  (* Doubled MAC bytes, as on real cards. *)
  List.iteri
    (fun i b ->
       Alcotest.(check int) (Printf.sprintf "prom[%d]" (2 * i)) (Char.code b)
         (List.nth prom (2 * i)))
    (List.init 6 (Bytes.get mac))

(* ---- wifi device model, driven raw ---- *)

let test_wifi_mailbox () =
  let eng = Engine.create () in
  let medium = Net_medium.create eng () in
  let wifi =
    Wifi_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium
      ~bss_list:[ { Wifi_dev.bssid = 9; ssid = "x"; signal_dbm = -30 } ] ()
  in
  let mem = Phys_mem.create ~size:(1 lsl 20) in
  ignore mem;
  let ops = Device.ops (Wifi_dev.device wifi) in
  let w32 off v = ops.Device.mmio_write ~bar:0 ~off ~size:4 v in
  let r32 off = ops.Device.mmio_read ~bar:0 ~off ~size:4 in
  (* Firmware gate. *)
  Alcotest.(check int) "fw not ready" 0 (r32 Wifi_dev.Regs.fw);
  w32 Wifi_dev.Regs.fw Wifi_dev.Regs.fw_magic;
  Alcotest.(check int) "fw ready" Wifi_dev.Regs.fw_ready (r32 Wifi_dev.Regs.fw);
  Alcotest.(check int) "bss table size" 1 (r32 Wifi_dev.Regs.bss_count);
  Alcotest.(check int) "bssid readable" 9 (r32 Wifi_dev.Regs.bss_table);
  Alcotest.(check bool) "not associated" true (Wifi_dev.associated wifi = None)

(* ---- hda device model: position wraps the cyclic buffer ---- *)

let test_hda_position_wraps () =
  let eng = Engine.create () in
  let hda = Hda_dev.create eng ~byte_rate:1_000_000 () in
  let mem = Phys_mem.create ~size:(1 lsl 20) in
  let iommu = Iommu.create ~mode:(Iommu.Intel_vtd { interrupt_remapping = false }) () in
  let ioports = Ioport.create () in
  let topo = Pci_topology.create ~mem ~iommu ~ioports () in
  let bdf = Pci_topology.attach topo ~switch:(Pci_topology.root_switch topo) (Hda_dev.device hda) in
  Pci_topology.cfg_write topo bdf ~off:Pci_cfg.command ~size:2
    (Pci_cfg.cmd_mem_enable lor Pci_cfg.cmd_bus_master);
  let ops = Device.ops (Hda_dev.device hda) in
  let w32 off v = ops.Device.mmio_write ~bar:0 ~off ~size:4 v in
  let r32 off = ops.Device.mmio_read ~bar:0 ~off ~size:4 in
  (* Two BDL entries of one page each in phys memory. *)
  let bdl = Phys_mem.alloc_pages mem ~pages:1 in
  let pcm = Phys_mem.alloc_pages mem ~pages:2 in
  Phys_mem.write64 mem bdl (Int64.of_int pcm);
  Phys_mem.write32 mem (bdl + 8) 4096;
  Phys_mem.write32 mem (bdl + 12) 0;
  Phys_mem.write64 mem (bdl + 16) (Int64.of_int (pcm + 4096));
  Phys_mem.write32 mem (bdl + 24) 4096;
  Phys_mem.write32 mem (bdl + 28) 0;
  w32 Hda_dev.Regs.sd0_bdpl bdl;
  w32 Hda_dev.Regs.sd0_bdpu 0;
  w32 Hda_dev.Regs.sd0_cbl 8192;
  w32 Hda_dev.Regs.sd0_lvi 1;
  w32 Hda_dev.Regs.sd0_ctl Hda_dev.Regs.sdctl_run;
  (* 1 MB/s for 20 ms = ~20 KB consumed: position must have wrapped. *)
  Engine.run ~max_time:20_000_000 eng;
  Alcotest.(check bool) "bytes consumed" true (Hda_dev.bytes_played hda > 8192);
  Alcotest.(check bool) "LPIB wrapped inside CBL" true (r32 Hda_dev.Regs.sd0_lpib < 8192);
  Alcotest.(check bool) "buffers completed repeatedly" true (Hda_dev.buffers_completed hda >= 2)

(* ---- topology: absent devices ---- *)

let test_cfg_of_missing_device () =
  let _, _, _, topo = mk_world () in
  Alcotest.(check int) "all-ones like real hardware" 0xFFFF
    (Pci_topology.cfg_read topo 0x55 ~off:0 ~size:2)

let test_medium_broadcast_domain () =
  let eng = Engine.create () in
  let m = Net_medium.create eng () in
  let hits = ref 0 in
  let _a = Net_medium.attach m ~name:"a" ~rx:(fun _ -> incr hits) in
  let _b = Net_medium.attach m ~name:"b" ~rx:(fun _ -> incr hits) in
  let c = Net_medium.attach m ~name:"c" ~rx:(fun _ -> incr hits) in
  Net_medium.send m c (Bytes.make 64 'x');
  Engine.run eng;
  Alcotest.(check int) "both other stations hear it" 2 !hits;
  Alcotest.(check int) "frame counted once" 1 (Net_medium.frames_sent m)

(* ---- usb device models ---- *)

let test_usb_storage_scsi () =
  let disk = Usb_device.storage ~name:"d" ~blocks:8 in
  Usb_device.set_address disk 1;
  (* CBW for READ CAPACITY *)
  let cb = Bytes.make 16 '\000' in
  Bytes.set cb 0 '\x25';
  let cbw = Bytes.make 31 '\000' in
  Bytes.set_int32_le cbw 0 0x43425355l;
  Bytes.set_int32_le cbw 4 7l;
  Bytes.set cbw 12 '\x80';
  Bytes.set cbw 14 '\x0A';
  Bytes.blit cb 0 cbw 15 10;
  (match Usb_device.endpoint_out disk ~ep:1 ~data:cbw with
   | Usb_device.Done _ -> ()
   | Usb_device.Nak | Usb_device.Stall -> Alcotest.fail "CBW rejected");
  (match Usb_device.endpoint_in disk ~ep:2 ~len:8 with
   | Usb_device.Done d ->
     Alcotest.(check int32) "last LBA" 7l (Bytes.get_int32_be d 0);
     Alcotest.(check int32) "block size" 512l (Bytes.get_int32_be d 4)
   | Usb_device.Nak | Usb_device.Stall -> Alcotest.fail "no capacity data");
  match Usb_device.endpoint_in disk ~ep:2 ~len:13 with
  | Usb_device.Done csw ->
    Alcotest.(check int32) "CSW signature" 0x53425355l (Bytes.get_int32_le csw 0);
    Alcotest.(check char) "status ok" '\000' (Bytes.get csw 12)
  | Usb_device.Nak | Usb_device.Stall -> Alcotest.fail "no CSW"

let test_usb_kbd_reports () =
  let kbd = Usb_device.keyboard ~name:"k" in
  (match Usb_device.endpoint_in kbd ~ep:1 ~len:8 with
   | Usb_device.Nak -> ()
   | Usb_device.Done _ | Usb_device.Stall -> Alcotest.fail "idle keyboard must NAK");
  Usb_device.keyboard_press kbd ~key:0x1D;
  match Usb_device.endpoint_in kbd ~ep:1 ~len:8 with
  | Usb_device.Done r -> Alcotest.(check char) "keycode in byte 2" '\x1d' (Bytes.get r 2)
  | Usb_device.Nak | Usb_device.Stall -> Alcotest.fail "report expected"

(* ---- property tests ---- *)

let qcheck_cases =
  [ QCheck.Test.make ~name:"phys_mem write/read roundtrip" ~count:200
      QCheck.(pair (int_bound 60000) (string_of_size Gen.(int_range 1 5000)))
      (fun (addr, s) ->
         let m = Phys_mem.create ~size:(1 lsl 17) in
         Phys_mem.write m ~addr (Bytes.of_string s);
         Bytes.to_string (Phys_mem.read m ~addr ~len:(String.length s)) = s);
    QCheck.Test.make ~name:"iommu map then translate every page" ~count:100
      QCheck.(pair (int_bound 200) (int_bound 30))
      (fun (page, npages) ->
         let npages = npages + 1 in
         let io = Iommu.create ~mode:mode_vtd () in
         let d = Iommu.attach io ~source:1 in
         let iova = 0x40000000 + (page * 4096) in
         Iommu.map io d ~iova ~phys:0x100000 ~len:(npages * 4096) ~writable:true;
         List.for_all
           (fun i ->
              match
                Iommu.translate io ~source:1 ~addr:(iova + (i * 4096) + 7) ~dir:Bus.Dma_write
              with
              | `Phys p -> p = 0x100000 + (i * 4096) + 7
              | `Msi | `Fault _ -> false)
           (List.init npages Fun.id));
    QCheck.Test.make ~name:"iopb grant ranges reported exactly" ~count:200
      QCheck.(pair (int_bound 60000) (int_range 1 100))
      (fun (base, len) ->
         let b = Ioport.Iopb.none () in
         Ioport.Iopb.grant b ~base ~len;
         Ioport.Iopb.granted_ranges b = [ (base, len) ]) ]

let suite =
  [ Alcotest.test_case "phys_mem: rw" `Quick test_phys_rw;
    Alcotest.test_case "phys_mem: cross page" `Quick test_phys_cross_page;
    Alcotest.test_case "phys_mem: bounds" `Quick test_phys_bounds;
    Alcotest.test_case "phys_mem: allocator" `Quick test_phys_alloc;
    Alcotest.test_case "phys_mem: exhaustion" `Quick test_phys_exhaustion;
    Alcotest.test_case "pci_cfg: ids" `Quick test_cfg_ids;
    Alcotest.test_case "pci_cfg: BAR sizing" `Quick test_cfg_bar_sizing;
    Alcotest.test_case "pci_cfg: MSI capability" `Quick test_cfg_msi;
    Alcotest.test_case "pci_cfg: command bits" `Quick test_cfg_command_bits;
    Alcotest.test_case "pci_cfg: rejects sub-page BAR" `Quick test_cfg_rejects_tiny_bar;
    Alcotest.test_case "iommu: translate" `Quick test_iommu_translate;
    Alcotest.test_case "iommu: passthrough" `Quick test_iommu_passthrough;
    Alcotest.test_case "iommu: write protection" `Quick test_iommu_write_protection;
    Alcotest.test_case "iommu: MSI quirks (Intel vs AMD)" `Quick test_iommu_msi_quirk;
    Alcotest.test_case "iommu: unmap + IOTLB flush" `Quick test_iommu_unmap_flush;
    Alcotest.test_case "iommu: IOTLB hit/miss counters" `Quick test_iotlb_counters;
    Alcotest.test_case "iommu: IOTLB conflict eviction" `Quick test_iotlb_conflict_eviction;
    Alcotest.test_case "iommu: no stale IOTLB after unmap/detach" `Quick
      test_iotlb_no_stale_after_unmap;
    Alcotest.test_case "iommu: iotlb_flush scrubs cache" `Quick test_iotlb_flush_scrubs;
    Alcotest.test_case "iommu: mappings merge" `Quick test_iommu_mappings_merge;
    Alcotest.test_case "iommu: interrupt remapping" `Quick test_iommu_ir;
    Alcotest.test_case "ioport: IOPB" `Quick test_iopb;
    Alcotest.test_case "ioport: GP fault" `Quick test_ioport_gp;
    Alcotest.test_case "ioport: overlap" `Quick test_ioport_overlap;
    Alcotest.test_case "topology: cfg + mmio decode" `Quick test_topology_cfg_and_mmio;
    Alcotest.test_case "topology: unknown address" `Quick test_topology_unknown_addr;
    Alcotest.test_case "topology: BDF assignment" `Quick test_topology_bdf_assignment;
    Alcotest.test_case "bus: BDF packing" `Quick test_bus_bdf;
    Alcotest.test_case "medium: delivery" `Quick test_medium_delivery;
    Alcotest.test_case "medium: serialization" `Quick test_medium_serialization;
    Alcotest.test_case "e1000: EEPROM MAC" `Quick test_e1000_eeprom_mac;
    Alcotest.test_case "e1000: ICR read-clear" `Quick test_e1000_icr_read_clears;
    Alcotest.test_case "ne2k: remote DMA" `Quick test_ne2k_remote_dma;
    Alcotest.test_case "ne2k: PROM" `Quick test_ne2k_prom;
    Alcotest.test_case "wifi: firmware gate + bss table" `Quick test_wifi_mailbox;
    Alcotest.test_case "hda: position wraps" `Quick test_hda_position_wraps;
    Alcotest.test_case "topology: missing device reads -1" `Quick test_cfg_of_missing_device;
    Alcotest.test_case "medium: broadcast domain" `Quick test_medium_broadcast_domain;
    Alcotest.test_case "usb: storage SCSI" `Quick test_usb_storage_scsi;
    Alcotest.test_case "usb: keyboard reports" `Quick test_usb_kbd_reports ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
