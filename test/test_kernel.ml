(* Unit and property tests for the kernel layer: processes, preemption,
   IRQs, sk_buffs, netdev, the network stack. *)

open Helpers

let with_kernel fn =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  fn eng k

let in_fiber eng k fn =
  let ok = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"t" (fun () ->
         fn ();
         ok := true)
     : Fiber.t);
  Engine.run ~max_time:(Engine.now eng + 10_000_000_000) eng;
  Alcotest.(check bool) "fiber completed" true !ok

(* ---- klog ---- *)

let test_klog () =
  with_kernel (fun _ k ->
      Klog.printk k.Kernel.klog Klog.Warn "disk %d on fire" 3;
      Alcotest.(check int) "match" 1 (List.length (Klog.matching k.Kernel.klog "on fire"));
      Alcotest.(check int) "no match" 0 (List.length (Klog.matching k.Kernel.klog "water")))

(* ---- processes ---- *)

let test_process_identity () =
  with_kernel (fun _ k ->
      let p1 = Process.spawn k.Kernel.procs ~name:"drv1" ~uid:1000 in
      let p2 = Process.spawn k.Kernel.procs ~name:"drv2" ~uid:1001 in
      Alcotest.(check bool) "distinct pids" true (Process.pid p1 <> Process.pid p2);
      Alcotest.(check int) "kernel is pid 0" 0
        (Process.pid (Process.kernel_process k.Kernel.procs));
      Alcotest.(check bool) "find" true (Process.find k.Kernel.procs ~pid:(Process.pid p1) <> None))

let test_process_kill () =
  with_kernel (fun eng k ->
      let p = Process.spawn k.Kernel.procs ~name:"victim" ~uid:1 in
      let progressed = ref 0 in
      let exited = ref false in
      Process.on_exit p (fun () -> exited := true);
      ignore
        (Process.spawn_fiber p (fun () ->
             for _ = 1 to 100 do
               ignore (Fiber.sleep eng 1000 : Fiber.wake);
               incr progressed
             done)
         : Fiber.t);
      ignore (Engine.schedule_after eng 5_500 (fun () -> Process.kill p) : Engine.handle);
      Engine.run eng;
      Alcotest.(check bool) "stopped early" true (!progressed < 100);
      Alcotest.(check bool) "exit hook ran" true !exited;
      Alcotest.(check bool) "dead" false (Process.is_alive p);
      Process.kill p (* idempotent *))

let test_process_current () =
  with_kernel (fun eng k ->
      let p = Process.spawn k.Kernel.procs ~name:"me" ~uid:7 in
      let seen = ref "" in
      ignore
        (Process.spawn_fiber p (fun () -> seen := Process.name (Process.current k.Kernel.procs))
         : Fiber.t);
      Engine.run eng;
      Alcotest.(check string) "current process resolves" "me" !seen)

let test_rlimit () =
  with_kernel (fun _ k ->
      let p = Process.spawn k.Kernel.procs ~name:"pig" ~uid:1 in
      Process.setrlimit_memory p ~bytes:(Some 10_000);
      Process.charge_memory p ~bytes:8_000;
      Alcotest.check_raises "limit enforced"
        (Process.Rlimit_exceeded "pig: RLIMIT 8000 + 8000 > 10000") (fun () ->
            Process.charge_memory p ~bytes:8_000);
      Process.uncharge_memory p ~bytes:8_000;
      Process.charge_memory p ~bytes:8_000;
      Alcotest.(check int) "usage tracked" 8_000 (Process.memory_used p))

(* ---- preempt ---- *)

let test_preempt_tracking () =
  with_kernel (fun eng k ->
      in_fiber eng k (fun () ->
          let pr = k.Kernel.preempt in
          Alcotest.(check bool) "not atomic initially" false (Preempt.in_atomic pr);
          Preempt.with_atomic pr (fun () ->
              Alcotest.(check bool) "atomic inside" true (Preempt.in_atomic pr);
              Alcotest.check_raises "sleep forbidden"
                (Preempt.Sleeping_in_atomic "nap") (fun () ->
                    Preempt.assert_may_sleep pr "nap"));
          Alcotest.(check bool) "restored" false (Preempt.in_atomic pr);
          Preempt.assert_may_sleep pr "ok now"))

let test_spinlock () =
  with_kernel (fun eng k ->
      in_fiber eng k (fun () ->
          let pr = k.Kernel.preempt in
          let l = Preempt.Spinlock.create pr in
          Preempt.Spinlock.with_lock l (fun () ->
              Alcotest.(check bool) "held" true (Preempt.Spinlock.held l);
              Alcotest.(check bool) "atomic while held" true (Preempt.in_atomic pr));
          Alcotest.(check bool) "released" false (Preempt.Spinlock.held l)))

(* ---- irq ---- *)

let test_irq_dispatch () =
  with_kernel (fun _ k ->
      let irq = k.Kernel.irq in
      let v = (Irq.alloc_vectors irq ~n:1).(0) in
      let hits = ref 0 in
      (match
         Irq.request_irqs irq ~vectors:[| v |] ~name:"t" (fun ~queue:_ ~source:_ -> incr hits)
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      Irq.deliver irq ~source:0 ~vector:v;
      Irq.deliver irq ~source:0 ~vector:v;
      Alcotest.(check int) "handler ran" 2 !hits;
      Alcotest.(check int) "per-vector count" 2 (Irq.count irq ~vector:v);
      Irq.deliver irq ~source:0 ~vector:(v + 1);
      Alcotest.(check int) "spurious counted" 1 (Sud_obs.Metrics.get (Irq.metrics irq).Irq.qm_spurious);
      Alcotest.(check bool) "double request rejected" true
        (Result.is_error
           (Irq.request_irqs irq ~vectors:[| v |] ~name:"t2" (fun ~queue:_ ~source:_ -> ()))))

let test_irq_vector_recycling () =
  (* MSI carries the vector in data[7:0], so the allocator must recycle
     freed vectors instead of growing past 255 — a driver supervised
     through hundreds of restart generations would otherwise end up with
     vectors that alias old freed ones after bus truncation (lost IRQs,
     spurious-after-free storms). *)
  with_kernel (fun _ k ->
      let irq = k.Kernel.irq in
      let first = Irq.alloc_vectors irq ~n:4 in
      (match
         Irq.request_irqs irq ~vectors:first ~name:"gen0" (fun ~queue:_ ~source:_ -> ())
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      Irq.free_irqs irq ~vectors:first;
      for _gen = 1 to 500 do
        let vs = Irq.alloc_vectors irq ~n:4 in
        Array.iter
          (fun v ->
             if v >= 256 then
               Alcotest.failf "vector %d escapes the 8-bit MSI data field" v)
          vs;
        (match
           Irq.request_irqs irq ~vectors:vs ~name:"gen" (fun ~queue:_ ~source:_ -> ())
         with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        Irq.free_irqs irq ~vectors:vs
      done;
      (* Freed-then-recycled lowest-first: the original block comes back. *)
      let again = Irq.alloc_vectors irq ~n:4 in
      Alcotest.(check (array int)) "lowest vectors reused" first again)

let test_irq_handler_atomic () =
  with_kernel (fun _ k ->
      let v = (Irq.alloc_vectors k.Kernel.irq ~n:1).(0) in
      let was_atomic = ref false in
      (match
         Irq.request_irqs k.Kernel.irq ~vectors:[| v |] ~name:"t" (fun ~queue:_ ~source:_ ->
             was_atomic := Preempt.in_atomic k.Kernel.preempt)
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      Irq.deliver k.Kernel.irq ~source:0 ~vector:v;
      Alcotest.(check bool) "top half runs atomically" true !was_atomic)

(* ---- skbuff ---- *)

let test_checksum_known () =
  (* RFC 1071 example bytes. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071" (lnot 0xddf2 land 0xffff) (Skbuff.checksum b)

let test_mac_parse () =
  let m = Skbuff.Mac.of_string "52:54:00:ab:cd:ef" in
  Alcotest.(check string) "roundtrip" "52:54:00:ab:cd:ef"
    (Format.asprintf "%a" Skbuff.Mac.pp m);
  Alcotest.(check bool) "broadcast differs" false (Skbuff.Mac.equal m Skbuff.Mac.broadcast)

let test_skb_copy_clears_sharing () =
  let skb = Skbuff.of_bytes (Bytes.of_string "data") in
  skb.Skbuff.shared_with_driver <- true;
  skb.Skbuff.refresh <- Some (fun () -> Bytes.of_string "evil");
  let c = Skbuff.copy skb in
  Alcotest.(check bool) "private" false c.Skbuff.shared_with_driver;
  Alcotest.(check bool) "no refresh hook" true (c.Skbuff.refresh = None)

(* ---- netdev ---- *)

let null_ops =
  { Netdev.ndo_open = (fun () -> Ok ());
    ndo_stop = ignore;
    ndo_start_xmit = (fun ~queue:_ _ -> Netdev.Xmit_ok);
    ndo_do_ioctl = (fun ~cmd:_ ~arg:_ -> Ok 0) }

let test_netdev_state () =
  let d = Netdev.create ~name:"eth9" ~mac:(Bytes.make 6 '\x02') ~ops:null_ops () in
  Alcotest.(check bool) "down initially" false (Netdev.is_up d);
  Alcotest.(check bool) "no carrier" false (Netdev.carrier d);
  Netdev.netif_carrier_on d;
  Alcotest.(check bool) "carrier on" true (Netdev.carrier d);
  Netdev.netif_stop_subqueue d ~queue:0;
  Alcotest.(check bool) "stopped" true (Netdev.subqueue_stopped d ~queue:0);
  Netdev.netif_wake_subqueue d ~queue:0;
  Alcotest.(check bool) "woken" false (Netdev.subqueue_stopped d ~queue:0)

let test_netdev_rx_before_registration () =
  let d = Netdev.create ~name:"eth9" ~mac:(Bytes.make 6 '\x02') ~ops:null_ops () in
  Netdev.netif_rx d (Skbuff.of_bytes (Bytes.make 64 'x'));
  Alcotest.(check int) "dropped, not crashed" 1 (Netdev.stats d).Netdev.rx_dropped

(* ---- netstack behaviours through real drivers ---- *)

let test_bad_checksum_dropped () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      let sock = Netstack.udp_bind k.Kernel.net dev_b ~port:9 in
      ignore sock;
      (* Hand-craft a frame with a corrupted checksum and inject it at the
         driver level on B's side. *)
      let payload = Bytes.make 10 'p' in
      let p = Bytes.create (9 + 10) in
      Bytes.set p 0 '\001';
      Bytes.set_uint16_be p 1 1234;
      Bytes.set_uint16_be p 3 9;
      Bytes.set_uint16_be p 5 10;
      Bytes.set_uint16_be p 7 (Skbuff.checksum payload lxor 0xFFFF);  (* wrong *)
      Bytes.blit payload 0 p 9 10;
      let frame = Bytes.create (14 + Bytes.length p) in
      Bytes.blit (Netdev.mac dev_b) 0 frame 0 6;
      Bytes.blit (Netdev.mac dev_a) 0 frame 6 6;
      Bytes.set_uint16_be frame 12 0x0800;
      Bytes.blit p 0 frame 14 (Bytes.length p);
      let drops_before = Netstack.csum_drops k.Kernel.net in
      Netdev.netif_rx dev_b (Skbuff.of_bytes frame);
      ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
      Alcotest.(check int) "checksum drop counted" (drops_before + 1)
        (Netstack.csum_drops k.Kernel.net);
      Alcotest.(check bool) "klog complained" true
        (Klog.matching k.Kernel.klog "bad checksum" <> []))

let test_firewall_drops () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      Netstack.set_firewall k.Kernel.net
        (Some
           (fun skb ->
              if Skbuff.length skb > 0 && Bytes.index_opt skb.Skbuff.data 'X' <> None then
                Netstack.Drop
              else Netstack.Accept));
      let sa = Netstack.udp_bind k.Kernel.net dev_a ~port:1000 in
      let sb = Netstack.udp_bind k.Kernel.net dev_b ~port:9 in
      ignore
        (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:9
           (Bytes.of_string "okay")
         : [ `Sent | `Dropped ]);
      ignore
        (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:9
           (Bytes.of_string "maXicious")
         : [ `Sent | `Dropped ]);
      ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake);
      Alcotest.(check int) "only the clean packet delivered" 1 (Netstack.udp_pending sb);
      Alcotest.(check int) "firewall counted the drop" 1 (Netstack.firewall_drops k.Kernel.net))

let test_udp_unknown_port_dropped () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      let sa = Netstack.udp_bind k.Kernel.net dev_a ~port:1000 in
      ignore
        (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:4242
           (Bytes.of_string "hello?")
         : [ `Sent | `Dropped ]);
      ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
      Alcotest.(check bool) "counted as rx_dropped" true
        ((Netdev.stats dev_b).Netdev.rx_dropped >= 1))

let test_udp_bind_conflict () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      ignore (Netstack.udp_bind k.Kernel.net dev_a ~port:53 : Netstack.udp_socket);
      Alcotest.check_raises "port in use" (Invalid_argument "udp_bind: port in use")
        (fun () -> ignore (Netstack.udp_bind k.Kernel.net dev_a ~port:53 : Netstack.udp_socket)))

let test_stream_fin () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      let got = ref [] in
      let closed = ref false in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"srv" (fun () ->
             let st = Netstack.stream_listen k.Kernel.net dev_b ~port:80 in
             let rec drain () =
               match Netstack.stream_recv k.Kernel.net st with
               | Some b ->
                 got := Bytes.to_string b :: !got;
                 drain ()
               | None -> closed := true
             in
             drain ())
         : Fiber.t);
      let st =
        ok_or_fail "connect"
          (Netstack.stream_connect k.Kernel.net dev_a ~dst:(Netdev.mac dev_b) ~dst_port:80
             ~src_port:5000)
      in
      ok_or_fail "send" (Netstack.stream_send k.Kernel.net st (Bytes.of_string "request"));
      Netstack.stream_close k.Kernel.net st;
      ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake);
      Alcotest.(check (list string)) "data then FIN" [ "request" ] (List.rev !got);
      Alcotest.(check bool) "recv returned None after FIN" true !closed)

let test_stream_connect_timeout () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      (* Nobody listens on the peer. *)
      match
        Netstack.stream_connect k.Kernel.net dev_a ~dst:mac_b ~dst_port:81 ~src_port:5001
      with
      | Ok _ -> Alcotest.fail "connect should time out"
      | Error e -> Alcotest.(check string) "timeout error" "connect: timed out" e)

let test_ifconfig_down_stops_traffic () =
  run_in_kernel setup_duo (fun k duo ->
      let dev_a = up_native ~name:"eth0" k duo.bdf_a in
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      let sb = Netstack.udp_bind k.Kernel.net dev_b ~port:9 in
      Netstack.ifconfig_down k.Kernel.net dev_b;
      let sa = Netstack.udp_bind k.Kernel.net dev_a ~port:1000 in
      ignore
        (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:9
           (Bytes.of_string "anyone home?")
         : [ `Sent | `Dropped ]);
      ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake);
      Alcotest.(check int) "nothing delivered after down" 0 (Netstack.udp_pending sb))

(* ---- property tests ---- *)

let qcheck_cases =
  [ QCheck.Test.make ~name:"checksum detects single-bit flips" ~count:200
      QCheck.(pair (string_of_size Gen.(int_range 2 200)) (int_bound 1000))
      (fun (s, pos) ->
         QCheck.assume (String.length s > 0);
         let b = Bytes.of_string s in
         let orig = Skbuff.checksum b in
         let i = pos mod Bytes.length b in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
         Skbuff.checksum b <> orig);
    QCheck.Test.make ~name:"udp payload roundtrip through full stack" ~count:12
      QCheck.(string_of_size Gen.(int_range 1 1200))
      (fun payload ->
         let delivered =
           run_in_kernel setup_duo (fun k duo ->
               let dev_a = up_native ~name:"eth0" k duo.bdf_a in
               let dev_b = up_native ~name:"eth1" k duo.bdf_b in
               let sa = Netstack.udp_bind k.Kernel.net dev_a ~port:1 in
               let sb = Netstack.udp_bind k.Kernel.net dev_b ~port:2 in
               ignore
                 (Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:2
                    (Bytes.of_string payload)
                  : [ `Sent | `Dropped ]);
               match Netstack.udp_recv k.Kernel.net sb with
               | Some (d, _) -> Bytes.to_string d
               | None -> "")
         in
         delivered = payload);
    (* The word-at-a-time checksum is a pure speedup: differentially test
       it against the byte-pair oracle over random buffers and ranges. *)
    QCheck.Test.make ~name:"checksum_sub_words = checksum_sub (oracle)" ~count:500
      QCheck.(triple (string_of_size Gen.(int_range 0 300)) small_nat small_nat)
      (fun (s, a, b) ->
         let buf = Bytes.of_string s in
         let n = Bytes.length buf in
         let off = if n = 0 then 0 else a mod (n + 1) in
         let len = min b (n - off) in
         Skbuff.checksum_sub_words buf ~off ~len = Skbuff.checksum_sub buf ~off ~len);
    (* The fused pass must be observationally identical to the two-pass
       copy-then-checksum it replaces, and the fusion must not reopen the
       TOCTOU window: mutating src after the call changes neither the
       copied bytes nor the returned verdict. *)
    QCheck.Test.make ~name:"copy_and_checksum = blit;checksum and is TOCTOU-safe"
      ~count:300
      QCheck.(triple (string_of_size Gen.(int_range 1 300)) small_nat small_nat)
      (fun (s, a, flip) ->
         let n = String.length s in
         let src = Bytes.of_string s in
         let src_off = a mod n in
         let len = n - src_off in
         let dst_off = 3 in
         let dst = Bytes.make (dst_off + len) '\xAA' in
         let verdict = Skbuff.copy_and_checksum ~src ~src_off ~dst ~dst_off ~len in
         let two_pass_dst = Bytes.make (dst_off + len) '\xAA' in
         Bytes.blit src src_off two_pass_dst dst_off len;
         let two_pass = Skbuff.checksum_sub two_pass_dst ~off:dst_off ~len in
         let copied_before = Bytes.copy dst in
         (* TOCTOU: the driver scribbles on src after the fused call. *)
         let i = flip mod n in
         Bytes.set src i (Char.chr (Char.code (Bytes.get src i) lxor 0xFF));
         verdict = two_pass
         && Bytes.equal dst copied_before
         && Skbuff.checksum_sub dst ~off:dst_off ~len = verdict) ]

let suite =
  [ Alcotest.test_case "klog: printk + matching" `Quick test_klog;
    Alcotest.test_case "process: identity" `Quick test_process_identity;
    Alcotest.test_case "process: kill" `Quick test_process_kill;
    Alcotest.test_case "process: current" `Quick test_process_current;
    Alcotest.test_case "process: rlimit" `Quick test_rlimit;
    Alcotest.test_case "preempt: context tracking" `Quick test_preempt_tracking;
    Alcotest.test_case "preempt: spinlock" `Quick test_spinlock;
    Alcotest.test_case "irq: dispatch + counters" `Quick test_irq_dispatch;
    Alcotest.test_case "irq: vector space is bounded and recycled" `Quick
      test_irq_vector_recycling;
    Alcotest.test_case "irq: handlers are atomic" `Quick test_irq_handler_atomic;
    Alcotest.test_case "skbuff: checksum vector" `Quick test_checksum_known;
    Alcotest.test_case "skbuff: mac parse" `Quick test_mac_parse;
    Alcotest.test_case "skbuff: copy clears sharing" `Quick test_skb_copy_clears_sharing;
    Alcotest.test_case "netdev: state machine" `Quick test_netdev_state;
    Alcotest.test_case "netdev: early rx dropped" `Quick test_netdev_rx_before_registration;
    Alcotest.test_case "netstack: bad checksum dropped" `Quick test_bad_checksum_dropped;
    Alcotest.test_case "netstack: firewall" `Quick test_firewall_drops;
    Alcotest.test_case "netstack: unknown port" `Quick test_udp_unknown_port_dropped;
    Alcotest.test_case "netstack: bind conflict" `Quick test_udp_bind_conflict;
    Alcotest.test_case "netstack: stream FIN" `Quick test_stream_fin;
    Alcotest.test_case "netstack: connect timeout" `Quick test_stream_connect_timeout;
    Alcotest.test_case "netstack: ifconfig down" `Quick test_ifconfig_down_stops_traffic ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
