(* §5.2: every attack scenario must come out the way the paper says —
   including the honest negative results (trusted-driver baseline owns the
   machine; VT-d without interrupt remapping cannot stop the MSI-DMA
   storm). *)

let check ?(expect = true) outcome () =
  let open Scenarios in
  Alcotest.(check bool)
    (Printf.sprintf "%s [%s] — %s" outcome.attack outcome.config outcome.evidence)
    expect outcome.contained

let suite =
  let open Scenarios in
  [ Alcotest.test_case "trusted driver leaks (baseline)" `Quick
      (fun () -> check ~expect:false (dma_read_exfiltration ~sud:false) ());
    Alcotest.test_case "SUD blocks DMA read" `Quick
      (fun () -> check (dma_read_exfiltration ~sud:true) ());
    Alcotest.test_case "SUD blocks DMA write" `Quick
      (fun () -> check (dma_write_corruption ()) ());
    Alcotest.test_case "P2P DMA succeeds without ACS" `Quick
      (fun () -> check ~expect:false (peer_to_peer ~acs:false) ());
    Alcotest.test_case "P2P DMA blocked with ACS" `Quick
      (fun () -> check (peer_to_peer ~acs:true) ());
    Alcotest.test_case "spoofed requester leaks without validation" `Quick
      (fun () -> check ~expect:false (source_spoofing ~validation:false) ());
    Alcotest.test_case "source validation blocks spoofing" `Quick
      (fun () -> check (source_spoofing ~validation:true) ());
    Alcotest.test_case "interrupt storm masked" `Quick
      (fun () -> check (interrupt_storm ()) ());
    Alcotest.test_case "MSI-DMA storm: testbed is vulnerable" `Quick
      (fun () ->
         check ~expect:false
           (msi_dma_storm ~iommu:(Iommu.Intel_vtd { interrupt_remapping = false }))
           ());
    Alcotest.test_case "MSI-DMA storm: interrupt remapping contains" `Quick
      (fun () ->
         check (msi_dma_storm ~iommu:(Iommu.Intel_vtd { interrupt_remapping = true })) ());
    Alcotest.test_case "MSI-DMA storm: AMD unmap contains" `Quick
      (fun () -> check (msi_dma_storm ~iommu:Iommu.Amd_vi) ());
    Alcotest.test_case "TOCTOU defeated by defensive copy" `Quick
      (fun () -> check (toctou ~defensive_copy:true) ());
    Alcotest.test_case "TOCTOU succeeds without copy" `Quick
      (fun () -> check ~expect:false (toctou ~defensive_copy:false) ());
    Alcotest.test_case "hung driver stays abortable" `Quick
      (fun () -> check (driver_hang ()) ());
    Alcotest.test_case "config space writes filtered" `Quick
      (fun () -> check (config_space ()) ());
    Alcotest.test_case "allocation bomb hits rlimit" `Quick
      (fun () -> check (allocation_bomb ()) ());
    Alcotest.test_case "IO-port scan blocked by IOPB" `Quick
      (fun () -> check (io_port_scan ()) ());
    Alcotest.test_case "downcall flood stays schedulable" `Quick
      (fun () -> check (downcall_flood ()) ());
    Alcotest.test_case "kill -9 and restart recovers" `Quick
      (fun () -> check (kill_and_restart ()) ());
    Alcotest.test_case "hung driver detected by heartbeat and restarted" `Quick
      (fun () -> check (driver_hang_recovery ()) ());
    Alcotest.test_case "crash loop ends in quarantine" `Quick
      (fun () -> check (crash_loop_quarantine ()) ()) ]
