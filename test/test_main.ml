let () =
  Alcotest.run "sud"
    [ ("sim", Test_sim.suite);
      ("hw", Test_hw.suite);
      ("kernel", Test_kernel.suite);
      ("uchan", Test_uchan.suite);
      ("core", Test_core.suite);
      ("smoke", Test_smoke.suite); ("security", Test_security.suite); ("devices", Test_devices.suite); ("drivers", Test_drivers.suite); ("supervisor", Test_supervisor.suite); ("props", Test_props.suite); ("obs", Test_obs.suite);
      ("hardening", Test_hardening.suite);
      ("blk", Test_blk.suite);
      ("bench_schema", Test_bench_schema.suite);
      ("conformance", Test_conformance.suite);
      ("ctl", Test_ctl.suite);
      ("standby", Test_standby.suite);
      ("check", Test_check.suite) ]
