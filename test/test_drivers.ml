(* Driver-level edge cases: ring exhaustion, ioctls, stop semantics, and
   the proxy's defences against misbehaving drivers. *)

open Helpers

let null_net_callbacks =
  { Driver_api.nc_rx = (fun ~queue:_ ~addr:_ ~len:_ -> ());
    nc_tx_free = (fun ~queue:_ ~token:_ -> ());
    nc_tx_done = (fun ~queue:_ -> ());
    nc_carrier = ignore }

(* Probe the e1000 driver natively with our own callbacks. *)
let probe_native k bdf callbacks =
  let pdev = ok_or_fail "pcidev" (Kenv_native.pcidev k bdf ~label:"t") in
  let env = Kenv_native.env k ~label:"t" in
  ok_or_fail "probe" (E1000.driver.Driver_api.nd_probe env pdev callbacks)

let mk_txbuf k addr len =
  { Driver_api.txb_addr = addr;
    txb_len = len;
    txb_token = 0;
    txb_read = (fun () -> Phys_mem.read k.Kernel.mem ~addr ~len) }

let test_e1000_ring_full () =
  run_in_kernel setup_duo (fun k duo ->
      let inst = probe_native k duo.bdf_a null_net_callbacks in
      ok_or_fail "open" (inst.Driver_api.ni_open ());
      let buf = Phys_mem.alloc_pages k.Kernel.mem ~pages:1 in
      (* Fill the TX ring atomically (event context, like a burst arriving
         faster than the device drains): the 256-slot ring must report
         Busy after capacity-1 frames. *)
      let sent = ref 0 and busy = ref false in
      ignore
        (Engine.schedule_now k.Kernel.eng (fun () ->
             while not !busy do
               match inst.Driver_api.ni_xmit ~queue:0 (mk_txbuf k buf 64) with
               | `Ok -> incr sent
               | `Busy -> busy := true
             done)
         : Engine.handle);
      ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
      Alcotest.(check bool) "hit Busy" true !busy;
      Alcotest.(check int) "ring capacity minus one" (E1000.tx_ring_size - 1) !sent;
      (* The device drains; all queued frames hit the wire. *)
      Alcotest.(check int) "all frames transmitted" !sent (E1000_dev.tx_frames duo.nic_a))

let test_e1000_ioctl () =
  run_in_kernel setup_duo (fun k duo ->
      let inst = probe_native k duo.bdf_a null_net_callbacks in
      Alcotest.(check (result int string)) "MII link up" (Ok 1)
        (inst.Driver_api.ni_ioctl ~cmd:Netdev.ioctl_mii_status ~arg:0);
      Alcotest.(check (result int string)) "speed" (Ok 1000)
        (inst.Driver_api.ni_ioctl ~cmd:Netdev.ioctl_link_speed ~arg:0);
      Alcotest.(check bool) "unknown ioctl rejected" true
        (Result.is_error (inst.Driver_api.ni_ioctl ~cmd:0x9999 ~arg:0)))

let test_e1000_stop_disables_rx () =
  run_in_kernel setup_duo (fun k duo ->
      let inst = probe_native k duo.bdf_a null_net_callbacks in
      ok_or_fail "open" (inst.Driver_api.ni_open ());
      inst.Driver_api.ni_stop ();
      (* A frame arriving after stop is dropped by the device (RCTL off). *)
      let port = Net_medium.attach duo.medium ~name:"inj" ~rx:ignore in
      Net_medium.send duo.medium port (Bytes.make 64 'z');
      ignore (Fiber.sleep k.Kernel.eng 5_000_000 : Fiber.wake);
      Alcotest.(check int) "no frames received" 0 (E1000_dev.rx_frames duo.nic_a);
      Alcotest.(check bool) "counted as drop" true (E1000_dev.rx_dropped duo.nic_a >= 1))

let test_e1000_reopen () =
  run_in_kernel setup_duo (fun k duo ->
      ignore duo;
      let inst = probe_native k duo.bdf_a null_net_callbacks in
      ok_or_fail "open" (inst.Driver_api.ni_open ());
      inst.Driver_api.ni_stop ();
      ok_or_fail "reopen" (inst.Driver_api.ni_open ());
      inst.Driver_api.ni_stop ())

let test_ne2k_many_packets () =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let ne2k = Ne2k_dev.create k.Kernel.eng ~mac:mac_a ~medium () in
       let peer = E1000_dev.create k.Kernel.eng ~mac:mac_b ~medium () in
       let bdf_a = Kernel.attach_pci k (Ne2k_dev.device ne2k) in
       let bdf_b = Kernel.attach_pci k (E1000_dev.device peer) in
       (bdf_a, bdf_b))
    (fun k (bdf_a, bdf_b) ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:bdf_a ~name:"eth0" Ne2k.driver) in
       let dev_a = Driver_host.netdev s in
       ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net dev_a);
       let dev_b = up_native ~name:"eth1" k bdf_b in
       let sa = Netstack.udp_bind k.Kernel.net dev_a ~port:68 in
       let sb = Netstack.udp_bind k.Kernel.net dev_b ~port:67 in
       (* Enough traffic to wrap the ne2k's receive ring several times. *)
       for i = 1 to 50 do
         ignore
           (Netstack.udp_sendto k.Kernel.net sb ~dst:(Netdev.mac dev_a) ~dst_port:68
              (Bytes.make 400 (Char.chr (i land 0xff)))
            : [ `Sent | `Dropped ]);
         (* Paced: the PIO driver is slow by design. *)
         ignore (Fiber.sleep k.Kernel.eng 500_000 : Fiber.wake)
       done;
       let received = ref 0 in
       let continue_ = ref true in
       while !continue_ do
         match Netstack.udp_pending sa with
         | 0 -> continue_ := false
         | _ ->
           ignore (Netstack.udp_recv k.Kernel.net sa : (bytes * (bytes * int)) option);
           incr received
       done;
       Alcotest.(check bool)
         (Printf.sprintf "most packets survived ring wraps (%d/50)" !received) true
         (!received >= 45))

let test_iwl_requires_open () =
  run_in_kernel
    (fun k ->
       let air = Net_medium.create k.Kernel.eng () in
       let wifi = Wifi_dev.create k.Kernel.eng ~mac:mac_a ~medium:air ~bss_list:[] () in
       Kernel.attach_pci k (Wifi_dev.device wifi))
    (fun k bdf ->
       let pdev = ok_or_fail "pcidev" (Kenv_native.pcidev k bdf ~label:"t") in
       let env = Kenv_native.env k ~label:"t" in
       let cb =
         { Driver_api.wc_net = null_net_callbacks;
           wc_scan_done = ignore;
           wc_bss_changed = ignore }
       in
       let wi = ok_or_fail "probe" (Iwl.driver.Driver_api.wd_probe env pdev cb) in
       Alcotest.(check bool) "scan before open rejected" true
         (Result.is_error (wi.Driver_api.wi_scan ()));
       Alcotest.(check bool) "assoc before open rejected" true
         (Result.is_error (wi.Driver_api.wi_associate ~bssid:1));
       Alcotest.(check bool) "bad rate index rejected" true
         (Result.is_error (wi.Driver_api.wi_set_rate 99)))

let test_hda_write_backpressure () =
  run_in_kernel
    (fun k ->
       let hda = Hda_dev.create k.Kernel.eng () in
       Kernel.attach_pci k (Hda_dev.device hda))
    (fun k bdf ->
       let pdev = ok_or_fail "pcidev" (Kenv_native.pcidev k bdf ~label:"t") in
       let env = Kenv_native.env k ~label:"t" in
       let au =
         ok_or_fail "probe"
           (Hda.driver.Driver_api.ad_probe env pdev { Driver_api.ac_period_elapsed = ignore })
       in
       (* The pending queue is bounded: unlimited writes return partial
          acceptance rather than growing without bound. *)
       let total = ref 0 in
       for _ = 1 to 100 do
         total := !total + au.Driver_api.au_write (Bytes.make 4096 'p')
       done;
       Alcotest.(check bool) "accepted bounded amount" true (!total <= 8 * Hda.period_bytes))

(* ---- proxy defences ---- *)

let test_proxy_rejects_bogus_rx_addr () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              (* netif_rx with an address outside every DMA region. *)
              t.Mal_nic.cb.Driver_api.nc_rx ~queue:0 ~addr:0xDEAD0000 ~len:64;
              (* and one with an insane length *)
              t.Mal_nic.cb.Driver_api.nc_rx ~queue:0 ~addr:t.Mal_nic.buf.Driver_api.dma_addr
                ~len:1_000_000;
              Ok ())
          ()
      in
      let s = ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a drv) in
      ignore (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake);
      Alcotest.(check int) "both rejected" 2
        (Proxy_net.rx_validation_failures (Driver_host.proxy s));
      Alcotest.(check int) "nothing reached the stack" 0
        (Netdev.stats (Driver_host.netdev s)).Netdev.rx_packets)

let test_proxy_marks_hung_on_ioctl () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      (* Opens fine, but ioctl never returns. *)
      let drv =
        { Driver_api.nd_name = "sloth";
          nd_ids = [ (0x8086, 0x10D3) ];
          nd_probe =
            (fun env _pdev _cb ->
               Ok
                 { Driver_api.ni_mac = Bytes.make 6 '\x02';
                   ni_tx_queues = 1;
                   ni_open = (fun () -> Ok ());
                   ni_stop = ignore;
                   ni_xmit = (fun ~queue:_ _ -> `Ok);
                   ni_ioctl =
                     (fun ~cmd:_ ~arg:_ ->
                        let rec forever () =
                          env.Driver_api.env_msleep 1_000;
                          forever ()
                        in
                        forever ()) }) }
      in
      let s = ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a drv) in
      let dev = Driver_host.netdev s in
      ok_or_fail "open" (Netstack.ifconfig_up k.Kernel.net dev);
      (match Netstack.dev_ioctl k.Kernel.net dev ~cmd:1 ~arg:0 with
       | Error e -> Alcotest.(check string) "hung error" "driver hung" e
       | Ok _ -> Alcotest.fail "ioctl should hang");
      Alcotest.(check bool) "proxy flagged the driver" true (Proxy_net.hung (Driver_host.proxy s));
      Alcotest.(check bool) "klog advice" true
        (Klog.matching k.Kernel.klog "kill and restart" <> []))

let test_uml_worker_pool_used () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s = ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a E1000.driver) in
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
      (* open is a may-block callback: it must have gone to a worker. *)
      Alcotest.(check bool) "worker dispatches > 0" true
        (Sud_uml.worker_dispatches (Driver_host.uml s) > 0);
      Alcotest.(check bool) "upcalls handled" true
        (Sud_uml.upcalls_handled (Driver_host.uml s) > 0))

let test_wifi_data_path_sud () =
  run_in_kernel
    (fun k ->
       let air = Net_medium.create k.Kernel.eng () in
       let wifi =
         Wifi_dev.create k.Kernel.eng ~mac:mac_a ~medium:air
           ~bss_list:[ { Wifi_dev.bssid = 0x1A; ssid = "ap"; signal_dbm = -40 } ]
           ()
       in
       let peer = E1000_dev.create k.Kernel.eng ~mac:mac_b ~medium:air () in
       let bdf_w = Kernel.attach_pci k (Wifi_dev.device wifi) in
       let bdf_p = Kernel.attach_pci k (E1000_dev.device peer) in
       (bdf_w, bdf_p))
    (fun k (bdf_w, bdf_p) ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start" (Driver_host.launch k sp Driver_host.wifi ~bdf:bdf_w Iwl.driver) in
       let wdev = Driver_host.wifi_netdev s in
       ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net wdev);
       ok_or_fail "assoc" (Proxy_wifi.associate (Driver_host.wifi_proxy s) ~bssid:0x1A);
       ignore (Fiber.sleep k.Kernel.eng 2_000_000 : Fiber.wake);
       let pdev = up_native ~name:"eth1" k bdf_p in
       let sw = Netstack.udp_bind k.Kernel.net wdev ~port:5000 in
       let sp2 = Netstack.udp_bind k.Kernel.net pdev ~port:5001 in
       (* Data over the air through the untrusted wireless driver. *)
       (match
          Netstack.udp_sendto k.Kernel.net sw ~dst:(Netdev.mac pdev) ~dst_port:5001
            (Bytes.of_string "over the air")
        with
        | `Sent -> ()
        | `Dropped -> Alcotest.fail "wifi tx dropped");
       (match Netstack.udp_recv k.Kernel.net sp2 with
        | Some (d, _) -> Alcotest.(check string) "wifi tx data" "over the air" (Bytes.to_string d)
        | None -> Alcotest.fail "nothing over the air");
       (match
          Netstack.udp_sendto k.Kernel.net sp2 ~dst:(Netdev.mac wdev) ~dst_port:5000
            (Bytes.of_string "back at you")
        with
        | `Sent -> ()
        | `Dropped -> Alcotest.fail "peer tx dropped");
       match Netstack.udp_recv k.Kernel.net sw with
       | Some (d, _) -> Alcotest.(check string) "wifi rx data" "back at you" (Bytes.to_string d)
       | None -> Alcotest.fail "nothing received by wifi")

let suite =
  [ Alcotest.test_case "e1000: TX ring full" `Quick test_e1000_ring_full;
    Alcotest.test_case "e1000: ioctls" `Quick test_e1000_ioctl;
    Alcotest.test_case "e1000: stop disables RX" `Quick test_e1000_stop_disables_rx;
    Alcotest.test_case "e1000: stop/reopen" `Quick test_e1000_reopen;
    Alcotest.test_case "ne2k: ring wraps under load" `Quick test_ne2k_many_packets;
    Alcotest.test_case "iwl: ops require open" `Quick test_iwl_requires_open;
    Alcotest.test_case "hda: write backpressure" `Quick test_hda_write_backpressure;
    Alcotest.test_case "proxy: bogus netif_rx rejected" `Quick test_proxy_rejects_bogus_rx_addr;
    Alcotest.test_case "proxy: hung ioctl detected" `Quick test_proxy_marks_hung_on_ioctl;
    Alcotest.test_case "uml: worker pool used" `Quick test_uml_worker_pool_used;
    Alcotest.test_case "wifi: data path under SUD" `Quick test_wifi_data_path_sud ]
