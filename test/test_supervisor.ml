(* Supervisor unit tests plus the seeded fault-cycle property: after N
   random faults under live traffic, the dead generations' grants are
   revoked, the IOTLB answers for none of their mappings, and backlog
   accounting stays exact.  Complements test_security.ml, which shows each
   attack contained once — here the loop is detect → contain → recover,
   hundreds of times. *)

let mac = Skbuff.Mac.of_string "52:54:00:77:88:99"

type world = {
  eng : Engine.t;
  k : Kernel.t;
  sp : Safe_pci.t;
  bdf : Bus.bdf;
  medium : Net_medium.t;
}

let make_world () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let sp = Safe_pci.init k in
  { eng; k; sp; bdf; medium }

let in_world w main =
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"test-sup"
       (fun () -> result := Some (main ()))
     : Fiber.t);
  Engine.run ~max_time:(30_000 * 1_000_000) w.eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "supervisor test fiber did not complete"

let settle w ms = ignore (Fiber.sleep w.eng (ms * 1_000_000) : Fiber.wake)

let fast_policy =
  { Supervisor.default_policy with
    Supervisor.tick_ns = 1_000_000;
    hang_timeout_ns = 10_000_000;
    backoff_initial_ns = 500_000;
    backoff_max_ns = 10_000_000 }

let start_supervised ?(policy = fast_policy) w =
  match
    Supervisor.start w.k w.sp ~policy ~name:"eth0" ~bdf:w.bdf (fun ~attempt:_ -> E1000.driver)
  with
  | Ok sv -> sv
  | Error e -> Alcotest.fail ("supervisor start: " ^ e)

let test_starts_running () =
  let w = make_world () in
  in_world w (fun () ->
      let sv = start_supervised w in
      Alcotest.(check bool) "running" true (Supervisor.state sv = Supervisor.Running);
      Alcotest.(check bool) "driver proc live" true
        (match Supervisor.proc sv with Some p -> Process.is_alive p | None -> false);
      Alcotest.(check int) "no restarts yet" 0 (Supervisor.stats sv).Supervisor.st_restarts;
      Supervisor.stop sv;
      Alcotest.(check bool) "stopped" true (Supervisor.state sv = Supervisor.Stopped))

let test_kill_auto_restart () =
  let w = make_world () in
  in_world w (fun () ->
      let sv = start_supervised w in
      let old = match Supervisor.proc sv with Some p -> p | None -> Alcotest.fail "no proc" in
      Process.kill old;
      settle w 50;
      let st = Supervisor.stats sv in
      Alcotest.(check bool) "back to running" true
        (Supervisor.state sv = Supervisor.Running);
      Alcotest.(check int) "one restart" 1 st.Supervisor.st_restarts;
      Alcotest.(check bool) "old generation dead" true (not (Process.is_alive old));
      Alcotest.(check bool) "fresh process serving" true
        (match Supervisor.proc sv with
         | Some p -> Process.is_alive p && Process.pid p <> Process.pid old
         | None -> false);
      Supervisor.stop sv)

(* While the driver is down the netdev degrades into a backlog; frames
   offered during the outage are replayed, and the counters always satisfy
   offered = queued + dropped + replayed. *)
let test_backlog_replayed () =
  let w = make_world () in
  (* Wide recovery window so the sends below land mid-outage. *)
  let policy =
    { fast_policy with
      Supervisor.backoff_initial_ns = 20_000_000;
      backoff_max_ns = 40_000_000;
      (* These tests probe the cold outage window (backlog parks during
         backoff), so the warm standby must stay out of the way. *)
      standby = false }
  in
  in_world w (fun () ->
      let sv = start_supervised ~policy w in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("ifconfig up: " ^ e));
      let sock = Netstack.udp_bind w.k.Kernel.net dev ~port:9000 in
      (match Supervisor.proc sv with Some p -> Process.kill p | None -> Alcotest.fail "no proc");
      settle w 2;
      Alcotest.(check bool) "recovering during backoff" true
        (Supervisor.state sv = Supervisor.Recovering);
      let payload = Bytes.make 64 'b' in
      for _ = 1 to 5 do
        ignore
          (Netstack.udp_sendto w.k.Kernel.net sock ~dst:Skbuff.Mac.broadcast ~dst_port:9000
             payload
           : [ `Sent | `Dropped ])
      done;
      settle w 100;
      let bl =
        let nm = Netdev.metrics dev in
        { Netdev.bl_offered = Sud_obs.Metrics.get nm.Netdev.nm_bl_offered;
          bl_queued = Sud_obs.Metrics.gauge_value nm.Netdev.nm_bl_queued;
          bl_dropped = Sud_obs.Metrics.get nm.Netdev.nm_bl_dropped;
          bl_replayed = Sud_obs.Metrics.get nm.Netdev.nm_bl_replayed }
      in
      Alcotest.(check bool) "running again" true (Supervisor.state sv = Supervisor.Running);
      Alcotest.(check bool) "frames were parked" true (bl.Netdev.bl_offered >= 5);
      Alcotest.(check int) "backlog accounting exact" bl.Netdev.bl_offered
        (bl.Netdev.bl_queued + bl.Netdev.bl_dropped + bl.Netdev.bl_replayed);
      Alcotest.(check bool) "parked frames replayed" true (bl.Netdev.bl_replayed >= 5);
      Supervisor.stop sv)

(* A Corrupt_batch injection garbles one frame inside the driver's next
   multi-frame downcall batch.  Containment is in place: that frame is
   dropped and counted malformed, its siblings deliver, and — unlike every
   other fault class — nothing escalates to a restart. *)
let test_batch_corrupt_no_restart () =
  let w = make_world () in
  in_world w (fun () ->
      let sv = start_supervised w in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("ifconfig up: " ^ e));
      let sock = Netstack.udp_bind w.k.Kernel.net dev ~port:9000 in
      let payload = Bytes.make 64 'c' in
      let malformed () =
        match Supervisor.chan sv with
        | Some c -> Sud_obs.Metrics.get (Uchan.metrics c).Uchan.um_malformed_frames
        | None -> 0
      in
      Alcotest.(check bool) "injection armed" true
        (Fault_inject.inject ~sv Fault_inject.Corrupt_batch);
      Alcotest.(check bool) "corrupt_batch is the non-lethal class" false
        (Fault_inject.lethal Fault_inject.Corrupt_batch);
      (* A wire burst parks several frames in the NIC RX ring before the
         driver's poll runs, so its nc_rx downcalls coalesce into one
         multi-frame batch slot; pump until the armed corruption lands on
         one.  (TX completions in this quiet world free one token at a
         time — too sparse to ever form a batch.) *)
      let peer = Net_medium.attach w.medium ~name:"peer" ~rx:ignore in
      let wire_frame =
        let b = Bytes.make 64 '\x00' in
        Bytes.blit mac 0 b 0 6;
        Bytes.blit (Skbuff.Mac.of_string "52:54:00:00:00:01") 0 b 6 6;
        b
      in
      let rec pump rounds =
        if malformed () = 0 && rounds > 0 then begin
          for _ = 1 to 8 do Net_medium.send w.medium peer wire_frame done;
          settle w 5;
          pump (rounds - 1)
        end
      in
      pump 50;
      Alcotest.(check int) "one frame dropped as malformed" 1 (malformed ());
      settle w 50;
      Alcotest.(check bool) "still running" true (Supervisor.state sv = Supervisor.Running);
      Alcotest.(check int) "no restart" 0 (Supervisor.stats sv).Supervisor.st_restarts;
      Alcotest.(check int) "no detection" 0 (Supervisor.stats sv).Supervisor.st_detections;
      (* The dropped tx_free cost one pooled buffer, not the datapath:
         frames offered after the corruption still reach the device. *)
      let tx_before = (Netdev.stats dev).Netdev.tx_packets in
      for _ = 1 to 4 do
        ignore
          (Netstack.udp_sendto w.k.Kernel.net sock ~dst:Skbuff.Mac.broadcast ~dst_port:9000
             payload
           : [ `Sent | `Dropped ])
      done;
      settle w 20;
      Alcotest.(check bool) "tx still flows" true
        ((Netdev.stats dev).Netdev.tx_packets >= tx_before + 4);
      Supervisor.stop sv)

(* A crash with a partially-acked batch in flight: whatever the dead
   generation had accepted but not acked dies with it (the paper's
   stance — the network retransmits), and every frame offered from the
   crash until recovery parks in the per-queue backlog and is replayed,
   with the accounting identity intact. *)
let test_mid_batch_crash_tail_replayed () =
  let w = make_world () in
  let policy =
    { fast_policy with
      Supervisor.backoff_initial_ns = 20_000_000;
      backoff_max_ns = 40_000_000;
      (* These tests probe the cold outage window (backlog parks during
         backoff), so the warm standby must stay out of the way. *)
      standby = false }
  in
  in_world w (fun () ->
      let sv = start_supervised ~policy w in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("ifconfig up: " ^ e));
      let sock = Netstack.udp_bind w.k.Kernel.net dev ~port:9000 in
      let payload = Bytes.make 64 'm' in
      let send n =
        for _ = 1 to n do
          ignore
            (Netstack.udp_sendto w.k.Kernel.net sock ~dst:Skbuff.Mac.broadcast ~dst_port:9000
               payload
             : [ `Sent | `Dropped ])
        done
      in
      (* Head of the burst goes to the live driver's batch path... *)
      send 4;
      (* ...and the crash lands before any of it is acked. *)
      (match Supervisor.proc sv with Some p -> Process.kill p | None -> Alcotest.fail "no proc");
      settle w 2;
      Alcotest.(check bool) "recovering" true (Supervisor.state sv = Supervisor.Recovering);
      (* The tail of the burst arrives mid-outage: per-queue backlog. *)
      send 4;
      settle w 100;
      let bl =
        let nm = Netdev.metrics dev in
        { Netdev.bl_offered = Sud_obs.Metrics.get nm.Netdev.nm_bl_offered;
          bl_queued = Sud_obs.Metrics.gauge_value nm.Netdev.nm_bl_queued;
          bl_dropped = Sud_obs.Metrics.get nm.Netdev.nm_bl_dropped;
          bl_replayed = Sud_obs.Metrics.get nm.Netdev.nm_bl_replayed }
      in
      Alcotest.(check bool) "running again" true (Supervisor.state sv = Supervisor.Running);
      Alcotest.(check bool) "tail was parked" true (bl.Netdev.bl_offered >= 4);
      Alcotest.(check int) "backlog accounting exact" bl.Netdev.bl_offered
        (bl.Netdev.bl_queued + bl.Netdev.bl_dropped + bl.Netdev.bl_replayed);
      Alcotest.(check bool) "tail replayed" true (bl.Netdev.bl_replayed >= 4);
      Supervisor.stop sv)

let test_hang_heartbeat () =
  let s = Fault_inject.measure_recovery Fault_inject.Hang in
  Alcotest.(check bool) "hang detected" true (s.Fault_inject.rs_detect_ns > 0);
  Alcotest.(check bool) "detected within heartbeat deadline + slack" true
    (s.Fault_inject.rs_detect_ns <= 50_000_000);
  Alcotest.(check bool) "outage bounded" true
    (s.Fault_inject.rs_outage_ns <= Fault_inject.outage_bound_ns)

let test_crash_loop_quarantine () =
  let q = Fault_inject.crash_loop ~max_restarts:2 () in
  Alcotest.(check int) "budget spent" 2 q.Fault_inject.qr_restarts;
  Alcotest.(check bool) "quarantined" true q.Fault_inject.qr_quarantined;
  Alcotest.(check bool) "netdev unregistered" true q.Fault_inject.qr_netdev_removed;
  Alcotest.(check string) "sysfs state" "quarantined" q.Fault_inject.qr_sysfs_state

(* The plan DSL is a pure function of its seed: identical seeds replay
   identical storms; times stay in-range and sorted. *)
let plan_determinism_test =
  let gen = QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)) in
  QCheck.Test.make ~name:"fault plans are seeded and deterministic" ~count:100
    (QCheck.make gen) (fun seed ->
      let mk () = Fault_inject.random_plan ~seed ~duration_ns:1_000_000_000 ~n:50 () in
      let p1 = mk () and p2 = mk () in
      p1 = p2
      && List.length p1 = 50
      && List.for_all
           (fun i -> i.Fault_inject.at_ns >= 0 && i.Fault_inject.at_ns < 1_000_000_000)
           p1
      && List.for_all2 (fun a b -> a.Fault_inject.at_ns <= b.Fault_inject.at_ns)
           (List.filteri (fun i _ -> i < 49) p1)
           (List.tl p1))

(* Restart replay leg of the ordering property: the per-queue backlog the
   supervisor replays through is strictly FIFO per queue, for arbitrary
   interleavings of parked frames — so a flow (which always hashes to the
   same queue) comes back on the wire in its original order. *)
let backlog_replay_order_property =
  QCheck.Test.make ~name:"restart replay preserves per-queue FIFO order" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 80) (int_range 0 3)))
    (fun queues ->
       let ops =
         { Netdev.ndo_open = (fun () -> Ok ());
           ndo_stop = ignore;
           ndo_start_xmit = (fun ~queue:_ _ -> Netdev.Xmit_ok);
           ndo_do_ioctl = (fun ~cmd:_ ~arg:_ -> Error "n/a") }
       in
       let dev = Netdev.create ~name:"bl0" ~mac:(Bytes.make 6 '\x02') ~ops ~tx_queues:4 () in
       let parked = Array.make 4 [] in
       List.iteri
         (fun i q ->
            let skb = Skbuff.of_bytes (Bytes.make 8 (Char.chr (i land 0xFF))) in
            (match Netdev.backlog_push dev ~queue:q ~limit:128 skb with
             | Netdev.Xmit_ok -> ()
             | Netdev.Xmit_busy -> ());
            parked.(q) <- i land 0xFF :: parked.(q))
         queues;
       let ok = ref true in
       for q = 0 to 3 do
         let rec drain acc =
           match Netdev.backlog_pop dev ~queue:q with
           | None -> List.rev acc
           | Some skb -> drain (Char.code (Bytes.get skb.Skbuff.data 0) :: acc)
         in
         if drain [] <> List.rev parked.(q) then ok := false
       done;
       !ok)

(* Satellite property: N seeded fault cycles under traffic leave no
   containment residue.  [Fault_inject.soak] asserts at every driver death
   that the kernel secret page is untouched, the dead grant is revoked, the
   IOMMU domain is detached and no stale IOTLB entry answers; here we also
   re-check the terminal state and the backlog identity. *)
let fault_cycle_property =
  let gen = QCheck.Gen.(map Int64.of_int (int_range 1 10_000)) in
  QCheck.Test.make ~name:"seeded fault cycles leave no containment residue" ~count:3
    (QCheck.make gen) (fun seed ->
      let r = Fault_inject.soak ~seed ~n_faults:30 ~duration_ms:600 () in
      r.Fault_inject.sr_violations = []
      && r.Fault_inject.sr_state = Supervisor.Running
      && r.Fault_inject.sr_applied = r.Fault_inject.sr_planned
      && r.Fault_inject.sr_deaths = r.Fault_inject.sr_detections
      && r.Fault_inject.sr_backlog.Netdev.bl_offered
         = r.Fault_inject.sr_backlog.Netdev.bl_queued
           + r.Fault_inject.sr_backlog.Netdev.bl_dropped
           + r.Fault_inject.sr_backlog.Netdev.bl_replayed
      && r.Fault_inject.sr_max_outage_ns <= Fault_inject.outage_bound_ns)

let suite =
  [ Alcotest.test_case "supervised driver starts running" `Quick test_starts_running;
    Alcotest.test_case "kill -9 → autonomous restart" `Quick test_kill_auto_restart;
    Alcotest.test_case "outage backlog parked and replayed" `Quick test_backlog_replayed;
    Alcotest.test_case "corrupt batch frame: contained, no restart" `Quick
      test_batch_corrupt_no_restart;
    Alcotest.test_case "mid-batch crash: un-acked tail replayed" `Quick
      test_mid_batch_crash_tail_replayed;
    Alcotest.test_case "wedged main loop caught by heartbeat" `Quick test_hang_heartbeat;
    Alcotest.test_case "crash loop exhausts budget → quarantine" `Quick
      test_crash_loop_quarantine ]
  @ List.map QCheck_alcotest.to_alcotest
      [ plan_determinism_test; backlog_replay_order_property; fault_cycle_property ]
