(* Unit tests for SUD's core: the safe PCI access module's mediation
   (config filter, MMIO bounds, DMA regions, IRQ masking, revocation),
   the native kenv, and driver-host lifecycle details. *)

open Helpers

type world = {
  k : Kernel.t;
  sp : Safe_pci.t;
  nic : E1000_dev.t;
  bdf : Bus.bdf;
}

let with_grant fn =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let nic = E1000_dev.create k.Kernel.eng ~mac:mac_a ~medium () in
       let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
       let sp = Safe_pci.init k in
       { k; sp; nic; bdf })
    (fun k w ->
       Safe_pci.register_device w.sp w.bdf;
       Safe_pci.set_owner w.sp w.bdf ~uid:1000;
       let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
       let grant = ok_or_fail "open" (Safe_pci.open_device w.sp w.bdf ~proc) in
       fn w proc grant)

let test_ownership () =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let nic = E1000_dev.create k.Kernel.eng ~mac:mac_a ~medium () in
       let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
       let sp = Safe_pci.init k in
       (sp, bdf))
    (fun k (sp, bdf) ->
       Safe_pci.register_device sp bdf;
       Safe_pci.set_owner sp bdf ~uid:1000;
       let wrong = Process.spawn k.Kernel.procs ~name:"intruder" ~uid:1001 in
       (match Safe_pci.open_device sp bdf ~proc:wrong with
        | Error e -> Alcotest.(check string) "denied" "permission denied" e
        | Ok _ -> Alcotest.fail "wrong uid must not open");
       let right = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
       let g = ok_or_fail "owner opens" (Safe_pci.open_device sp bdf ~proc:right) in
       (* Exclusive: a second open fails until released. *)
       let second = Process.spawn k.Kernel.procs ~name:"drv2" ~uid:1000 in
       (match Safe_pci.open_device sp bdf ~proc:second with
        | Error e -> Alcotest.(check string) "busy" "device busy (already opened)" e
        | Ok _ -> Alcotest.fail "double open");
       Safe_pci.release g;
       ignore (ok_or_fail "open after release" (Safe_pci.open_device sp bdf ~proc:second)))

let test_unregistered_device () =
  run_in_kernel
    (fun k -> Safe_pci.init k)
    (fun k sp ->
       let p = Process.spawn k.Kernel.procs ~name:"x" ~uid:0 in
       match Safe_pci.open_device sp 99 ~proc:p with
       | Error e -> Alcotest.(check string) "not registered" "device not registered with SUD" e
       | Ok _ -> Alcotest.fail "opened a ghost device")

let test_cfg_filter () =
  with_grant (fun _w _proc g ->
      (* Reads pass. *)
      Alcotest.(check int) "vendor readable" 0x8086
        (Safe_pci.cfg_read g ~off:Pci_cfg.vendor_id ~size:2);
      (* Command register: only safe bits, INTx stays disabled. *)
      ok_or_fail "command write"
        (Safe_pci.cfg_write g ~off:Pci_cfg.command ~size:2
           (Pci_cfg.cmd_mem_enable lor Pci_cfg.cmd_bus_master));
      let cmd = Safe_pci.cfg_read g ~off:Pci_cfg.command ~size:2 in
      Alcotest.(check bool) "mem enable applied" true (cmd land Pci_cfg.cmd_mem_enable <> 0);
      Alcotest.(check bool) "INTx still disabled" true (cmd land Pci_cfg.cmd_intx_disable <> 0);
      (* Cache line / latency allowed. *)
      ok_or_fail "cache line" (Safe_pci.cfg_write g ~off:Pci_cfg.cache_line ~size:1 0x10);
      (* BARs and MSI denied. *)
      Alcotest.(check bool) "BAR denied" true
        (Result.is_error (Safe_pci.cfg_write g ~off:Pci_cfg.bar0 ~size:4 0x12340000));
      let cap = Option.get (Safe_pci.find_capability g Pci_cfg.msi_cap_id) in
      Alcotest.(check bool) "MSI denied" true
        (Result.is_error (Safe_pci.cfg_write g ~off:(cap + 4) ~size:4 0xFEE00000));
      Alcotest.(check bool) "random offset denied" true
        (Result.is_error (Safe_pci.cfg_write g ~off:0x40 ~size:4 1)))

let test_mmio_bounds () =
  with_grant (fun _w _proc g ->
      ok_or_fail "enable" (Safe_pci.enable_device g);
      let mmio = ok_or_fail "map" (Safe_pci.map_mmio g ~bar:0) in
      ignore (mmio.Driver_api.mmio_read ~off:E1000_dev.Regs.status ~size:4 : int);
      Alcotest.check_raises "beyond the BAR" (Invalid_argument "mmio read out of range")
        (fun () -> ignore (mmio.Driver_api.mmio_read ~off:0x20000 ~size:4 : int));
      Alcotest.(check bool) "no such BAR" true
        (Result.is_error (Safe_pci.map_mmio g ~bar:3)))

let test_dma_region_lifecycle () =
  with_grant (fun w proc g ->
      let r = ok_or_fail "alloc" (Safe_pci.alloc_dma g ~bytes:8192 ()) in
      Alcotest.(check int) "figure 9 base" 0x42430000 r.Driver_api.dma_addr;
      Alcotest.(check int) "charged to the process" 8192 (Process.memory_used proc);
      r.Driver_api.dma_write ~off:100 (Bytes.of_string "dma!");
      Alcotest.(check string) "rw" "dma!"
        (Bytes.to_string (r.Driver_api.dma_read ~off:100 ~len:4));
      (* The proxy-side validated reader agrees. *)
      (match Safe_pci.read_driver_mem g ~iova:(r.Driver_api.dma_addr + 100) ~len:4 with
       | Ok b -> Alcotest.(check string) "read_driver_mem" "dma!" (Bytes.to_string b)
       | Error e -> Alcotest.fail e);
      (* Outside any region: rejected. *)
      Alcotest.(check bool) "oob iova rejected" true
        (Result.is_error (Safe_pci.read_driver_mem g ~iova:0x50000000 ~len:4));
      Alcotest.(check bool) "straddling the end rejected" true
        (Result.is_error
           (Safe_pci.read_driver_mem g ~iova:(r.Driver_api.dma_addr + 8190) ~len:4));
      Safe_pci.free_dma g r;
      Alcotest.(check int) "uncharged" 0 (Process.memory_used proc);
      Alcotest.(check bool) "freed region unmapped" true
        (Result.is_error (Safe_pci.read_driver_mem g ~iova:r.Driver_api.dma_addr ~len:4));
      ignore w)

let test_irq_mask_and_ack () =
  with_grant (fun w _proc g ->
      let upcalls = ref 0 in
      ok_or_fail "setup_irq" (Safe_pci.setup_irqs g ~n:1 ~sink:(fun ~queue:_ -> incr upcalls));
      let cfg = Device.cfg (E1000_dev.device w.nic) in
      Alcotest.(check bool) "MSI programmed by the kernel" true (Pci_cfg.msi_enabled cfg);
      let vector = Pci_cfg.msi_data cfg land 0xff in
      (* First interrupt: forwarded and the vector masked for the poll
         window (NAPI-style: the device cannot deliver again until the
         driver acks). *)
      Irq.deliver w.k.Kernel.irq ~source:w.bdf ~vector;
      Alcotest.(check int) "forwarded" 1 !upcalls;
      Alcotest.(check bool) "masked for the poll" true (Pci_cfg.msi_masked cfg);
      Alcotest.(check bool) "mask counted" true (Safe_pci.msi_masks w.sp >= 1);
      (* A device-side raise in the window is suppressed by the MSI mask
         bit — no upcall and no escalation. *)
      (match Device.raise_msi (E1000_dev.device w.nic) with
       | Ok () -> ()
       | Error _ -> Alcotest.fail "masked raise must not fault");
      Alcotest.(check int) "suppressed while masked" 1 !upcalls;
      Alcotest.(check int) "no storm from the device" 0 (Safe_pci.grant_storms g);
      (* Ack ends the poll: unmasked, and the next interrupt is
         forwarded (and masks again). *)
      Safe_pci.irq_ack g;
      Alcotest.(check bool) "unmasked after ack" false (Pci_cfg.msi_masked cfg);
      Irq.deliver w.k.Kernel.irq ~source:w.bdf ~vector;
      Alcotest.(check int) "forwarded again" 2 !upcalls;
      Alcotest.(check bool) "masked again" true (Pci_cfg.msi_masked cfg);
      Safe_pci.irq_ack g;
      Alcotest.(check bool) "double irq setup rejected" true
        (Result.is_error (Safe_pci.setup_irqs g ~n:1 ~sink:(fun ~queue:_ -> ()))))

(* NAPI pending replay: an MSI-X raise during the poll window latches in
   the pending-bit array and must be re-delivered at ack time — frames
   that arrive mid-poll cannot strand until unrelated traffic. *)
let test_msix_pending_replay () =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let nic = E1000_dev.create k.Kernel.eng ~mac:mac_a ~medium ~queues:4 () in
       let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
       let sp = Safe_pci.init k in
       { k; sp; nic; bdf })
    (fun k w ->
       Safe_pci.register_device w.sp w.bdf;
       Safe_pci.set_owner w.sp w.bdf ~uid:1000;
       let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
       let g = ok_or_fail "open" (Safe_pci.open_device w.sp w.bdf ~proc) in
       ok_or_fail "enable" (Safe_pci.enable_device g);
       let hits = Array.make 4 0 in
       ok_or_fail "setup_irqs"
         (Safe_pci.setup_irqs g ~n:4 ~sink:(fun ~queue -> hits.(queue) <- hits.(queue) + 1));
       let cfg = Device.cfg (E1000_dev.device w.nic) in
       let dev = E1000_dev.device w.nic in
       (* Queue 1 interrupts; the vector masks for the poll. *)
       (match Device.raise_msix dev ~vector:1 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "raise faulted");
       Alcotest.(check int) "first delivery forwarded" 1 hits.(1);
       Alcotest.(check bool) "masked for the poll" true (Safe_pci.vector_masked g ~queue:1);
       (* Device raises again mid-poll: latched, not delivered. *)
       (match Device.raise_msix dev ~vector:1 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "masked raise faulted");
       Alcotest.(check int) "latched, not forwarded" 1 hits.(1);
       Alcotest.(check bool) "pending bit set" true (Pci_cfg.msix_pending cfg ~vector:1);
       Alcotest.(check int) "no storm from a latched raise" 0 (Safe_pci.grant_storms g);
       (* Ack replays the latched interrupt: a fresh upcall, masked again. *)
       Safe_pci.irq_ack ~queue:1 g;
       Alcotest.(check int) "pending replayed at ack" 2 hits.(1);
       Alcotest.(check bool) "replay re-masks" true (Safe_pci.vector_masked g ~queue:1);
       Alcotest.(check bool) "pending cleared" false (Pci_cfg.msix_pending cfg ~vector:1);
       (* Idle ack: nothing pending, vector simply unmasks. *)
       Safe_pci.irq_ack ~queue:1 g;
       Alcotest.(check int) "no spurious replay" 2 hits.(1);
       Alcotest.(check bool) "unmasked when idle" false (Safe_pci.vector_masked g ~queue:1);
       ignore k)

let test_release_revokes_everything () =
  with_grant (fun w proc g ->
      ok_or_fail "enable" (Safe_pci.enable_device g);
      let r = ok_or_fail "alloc" (Safe_pci.alloc_dma g ~bytes:4096 ()) in
      let mmio = ok_or_fail "map" (Safe_pci.map_mmio g ~bar:0) in
      ok_or_fail "irq" (Safe_pci.setup_irqs g ~n:1 ~sink:(fun ~queue:_ -> ()));
      let pages_before = Phys_mem.allocated_pages w.k.Kernel.mem in
      (* Killing the process revokes via the exit hook. *)
      Process.kill proc;
      Alcotest.(check bool) "grant dead" false (Safe_pci.grant_alive g);
      Alcotest.(check bool) "pages freed" true
        (Phys_mem.allocated_pages w.k.Kernel.mem < pages_before);
      (* The device can no longer DMA: domain detached = passthrough again,
         but its command register was cleared, so bus mastering is off. *)
      Alcotest.(check bool) "bus mastering off" false
        (Pci_cfg.command_has (Device.cfg (E1000_dev.device w.nic)) Pci_cfg.cmd_bus_master);
      (* Using the dead grant is an error, not a breach. *)
      (match Safe_pci.read_driver_mem g ~iova:r.Driver_api.dma_addr ~len:4 with
       | exception Failure _ -> ()
       | Ok _ -> Alcotest.fail "dead grant still reads"
       | Error _ -> ());
      match mmio.Driver_api.mmio_read ~off:0 ~size:4 with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "dead grant still does MMIO")

let test_iova_space_distinct_from_phys () =
  with_grant (fun w _proc g ->
      let r = ok_or_fail "alloc" (Safe_pci.alloc_dma g ~bytes:4096 ()) in
      r.Driver_api.dma_write ~off:0 (Bytes.of_string "thruput");
      (* The IOVA is not the physical address: reading physical memory at
         the IOVA value finds nothing (it is beyond RAM or unrelated). *)
      let maps = Safe_pci.iommu_mappings g in
      List.iter
        (fun (iova, phys, _, _) ->
           Alcotest.(check bool) "iova != phys" true (iova <> phys))
        maps;
      ignore w)

let test_kenv_native_direct () =
  run_in_kernel setup_duo (fun k duo ->
      let pdev = ok_or_fail "pcidev" (Kenv_native.pcidev k duo.bdf_a ~label:"t") in
      Alcotest.(check int) "vendor" 0x8086 pdev.Driver_api.pd_vendor;
      ok_or_fail "enable" (pdev.Driver_api.pd_enable ());
      let mmio = ok_or_fail "bar" (pdev.Driver_api.pd_map_bar 0) in
      Alcotest.(check bool) "link up" true
        (mmio.Driver_api.mmio_read ~off:E1000_dev.Regs.status ~size:4
         land E1000_dev.Regs.status_lu <> 0);
      let r = ok_or_fail "dma" (pdev.Driver_api.pd_alloc_dma ~bytes:4096 ()) in
      (* Trusted drivers get physical addresses. *)
      r.Driver_api.dma_write ~off:0 (Bytes.of_string "phys");
      Alcotest.(check string) "backed by phys mem" "phys"
        (Bytes.to_string (Phys_mem.read k.Kernel.mem ~addr:r.Driver_api.dma_addr ~len:4));
      pdev.Driver_api.pd_free_dma r)

let test_driver_restart_host () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s1 =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s1));
      let pid1 = Process.pid (Driver_host.proc s1) in
      let s2 = ok_or_fail "restart" (Driver_host.restart k sp s1 E1000.driver) in
      Alcotest.(check bool) "new process" true (Process.pid (Driver_host.proc s2) <> pid1);
      Alcotest.(check bool) "old one dead" false (Process.is_alive (Driver_host.proc s1));
      ok_or_fail "up again" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s2));
      Alcotest.(check bool) "netdev registered" true
        (Netstack.find_netdev k.Kernel.net "eth0" <> None))

let test_sysfs_matching () =
  run_in_kernel setup_duo (fun k _duo ->
      let hits = Sysfs.match_ids k.Kernel.sysfs ~ids:[ (0x8086, 0x10D3) ] in
      Alcotest.(check int) "both NICs matched" 2 (List.length hits);
      Alcotest.(check int) "no match for strangers" 0
        (List.length (Sysfs.match_ids k.Kernel.sysfs ~ids:[ (0x1234, 0x5678) ]));
      let e = List.hd hits in
      Sysfs.set_attr e "driver" "e1000";
      Alcotest.(check (option string)) "attrs" (Some "e1000") (Sysfs.attr e "driver"))

let test_device_files_listed () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      Safe_pci.register_device sp duo.bdf_a;
      let files = Safe_pci.device_files sp duo.bdf_a in
      Alcotest.(check int) "four files (Figure 6)" 4 (List.length files);
      List.iter2
        (fun f suffix ->
           Alcotest.(check bool) ("ends with " ^ suffix) true
             (String.length f > String.length suffix
              && String.sub f (String.length f - String.length suffix) (String.length suffix)
                 = suffix))
        files
        [ "/ctl"; "/mmio"; "/dma_coherent"; "/dma_caching" ];
      Alcotest.(check (list string)) "unregistered: none" []
        (Safe_pci.device_files sp duo.bdf_b))

let test_delegation () =
  run_in_kernel setup_duo (fun k _duo ->
      let sp = Safe_pci.init k in
      let rows =
        Delegation.scan_and_start k sp ~registry:[ Delegation.Net E1000.driver ] ()
      in
      Alcotest.(check int) "one driver per NIC" 2 (List.length rows);
      let uids =
        List.filter_map
          (fun (_, _, r) ->
             match r with
             | Ok (Delegation.Started_net s) -> Some (Process.uid (Driver_host.proc s))
             | Ok _ | Error _ -> None)
          rows
      in
      Alcotest.(check int) "all started" 2 (List.length uids);
      Alcotest.(check bool) "distinct uids" true (List.nth uids 0 <> List.nth uids 1);
      Alcotest.(check int) "both netdevs registered" 2
        (List.length (Netstack.netdevs k.Kernel.net)))

let test_shadow_recovery () =
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net (Driver_host.netdev s));
      let shadow = Shadow.watch k sp ~poll_ms:5 s E1000.driver in
      (* The driver process crashes. *)
      ignore (Fiber.sleep k.Kernel.eng 20_000_000 : Fiber.wake);
      Driver_host.kill s;
      ignore (Fiber.sleep k.Kernel.eng 50_000_000 : Fiber.wake);
      Alcotest.(check int) "one restart" 1 (Shadow.restarts shadow);
      let fresh = Shadow.current shadow in
      Alcotest.(check bool) "fresh process alive" true
        (Process.is_alive (Driver_host.proc fresh));
      Alcotest.(check bool) "interface came back up" true
        (Netdev.is_up (Driver_host.netdev fresh));
      (* Traffic flows through the recovered driver. *)
      let dev_b = up_native ~name:"eth1" k duo.bdf_b in
      let sa = Netstack.udp_bind k.Kernel.net (Shadow.netdev shadow) ~port:1 in
      let sb = Netstack.udp_bind k.Kernel.net dev_b ~port:2 in
      (match
         Netstack.udp_sendto k.Kernel.net sa ~dst:(Netdev.mac dev_b) ~dst_port:2
           (Bytes.of_string "recovered")
       with
       | `Sent -> ()
       | `Dropped -> Alcotest.fail "tx dropped");
      (match Netstack.udp_recv k.Kernel.net sb with
       | Some (d, _) -> Alcotest.(check string) "payload" "recovered" (Bytes.to_string d)
       | None -> Alcotest.fail "no traffic after recovery");
      Shadow.stop shadow)

let test_xmit_from_atomic_context () =
  (* §3.1.1: packet transmission is an asynchronous upcall precisely so the
     kernel can send while non-preemptable. *)
  run_in_kernel setup_duo (fun k duo ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start" (Driver_host.launch k sp (Driver_host.net ()) ~bdf:duo.bdf_a ~name:"eth0" E1000.driver)
      in
      let dev = Driver_host.netdev s in
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net dev);
      let skb =
        Skbuff.of_bytes
          (let f = Bytes.make 80 '\000' in
           Bytes.fill f 0 6 '\xff';
           f)
      in
      let r =
        Preempt.with_atomic k.Kernel.preempt (fun () ->
            (Netdev.ops dev).Netdev.ndo_start_xmit ~queue:0 skb)
      in
      Alcotest.(check bool) "xmit accepted while atomic" true (r = Netdev.Xmit_ok);
      ignore (Fiber.sleep k.Kernel.eng 10_000_000 : Fiber.wake);
      Alcotest.(check bool) "frame hit the wire" true (E1000_dev.tx_frames duo.nic_a >= 1))

(* The multiqueue storm bar: a storm on one MSI-X vector must quarantine
   only that vector.  Siblings keep delivering before, during and after
   the escalation, and an ack cannot resurrect the quarantined queue. *)
let test_msix_storm_sibling_queues () =
  run_in_kernel
    (fun k ->
       let medium = Net_medium.create k.Kernel.eng () in
       let nic = E1000_dev.create k.Kernel.eng ~mac:mac_a ~medium ~queues:4 () in
       let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
       let sp = Safe_pci.init k in
       { k; sp; nic; bdf })
    (fun k w ->
       Safe_pci.register_device w.sp w.bdf;
       Safe_pci.set_owner w.sp w.bdf ~uid:1000;
       let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
       let g = ok_or_fail "open" (Safe_pci.open_device w.sp w.bdf ~proc) in
       let hits = Array.make 4 0 in
       ok_or_fail "setup_irqs"
         (Safe_pci.setup_irqs g ~n:4 ~sink:(fun ~queue -> hits.(queue) <- hits.(queue) + 1));
       let cfg = Device.cfg (E1000_dev.device w.nic) in
       Alcotest.(check bool) "MSI-X enabled" true (Pci_cfg.msix_enabled cfg);
       let vec q = Pci_cfg.msix_data cfg ~vector:q land 0xff in
       let deliver q = Irq.deliver w.k.Kernel.irq ~source:w.bdf ~vector:(vec q) in
       (* Normal traffic on every queue. *)
       for q = 0 to 3 do
         deliver q;
         Safe_pci.irq_ack ~queue:q g
       done;
       Alcotest.(check (list int)) "one upcall per queue" [ 1; 1; 1; 1 ]
         (Array.to_list hits);
       (* Storm queue 2: second interrupt before the ack masks the vector,
          a third while masked is only possible via raw MSI-window DMA and
          escalates to quarantine. *)
       deliver 2;
       deliver 2;
       Alcotest.(check bool) "vector 2 masked" true (Safe_pci.vector_masked g ~queue:2);
       deliver 2;
       Alcotest.(check bool) "vector 2 quarantined" true
         (Safe_pci.vector_quarantined g ~queue:2);
       Alcotest.(check bool) "storm attributed to queue 2" true
         (Safe_pci.grant_vector_storms g ~queue:2 >= 1);
       let before = (hits.(0), hits.(1), hits.(3)) in
       (* Siblings are untouched: unmasked, and still delivering. *)
       for q = 0 to 3 do
         if q <> 2 then begin
           Alcotest.(check bool)
             (Printf.sprintf "sibling %d not masked" q)
             false (Safe_pci.vector_masked g ~queue:q);
           deliver q;
           Safe_pci.irq_ack ~queue:q g
         end
       done;
       Alcotest.(check (triple int int int)) "siblings kept delivering"
         (let a, b, c = before in (a + 1, b + 1, c + 1))
         (hits.(0), hits.(1), hits.(3));
       (* The quarantined vector stays dead: acks don't unmask it and
          further interrupts never reach the driver. *)
       let q2 = hits.(2) in
       Safe_pci.irq_ack ~queue:2 g;
       Alcotest.(check bool) "ack cannot unquarantine" true
         (Safe_pci.vector_masked g ~queue:2);
       deliver 2;
       Alcotest.(check int) "no upcall from quarantined queue" q2 hits.(2))

let suite =
  [ Alcotest.test_case "safe_pci: ownership + exclusivity" `Quick test_ownership;
    Alcotest.test_case "safe_pci: unregistered device" `Quick test_unregistered_device;
    Alcotest.test_case "safe_pci: config filter" `Quick test_cfg_filter;
    Alcotest.test_case "safe_pci: MMIO bounds" `Quick test_mmio_bounds;
    Alcotest.test_case "safe_pci: DMA region lifecycle" `Quick test_dma_region_lifecycle;
    Alcotest.test_case "safe_pci: IRQ mask/ack" `Quick test_irq_mask_and_ack;
    Alcotest.test_case "safe_pci: MSI-X pending replay at ack" `Quick
      test_msix_pending_replay;
    Alcotest.test_case "safe_pci: MSI-X storm quarantines one vector" `Quick
      test_msix_storm_sibling_queues;
    Alcotest.test_case "safe_pci: release revokes all" `Quick test_release_revokes_everything;
    Alcotest.test_case "safe_pci: iova != phys" `Quick test_iova_space_distinct_from_phys;
    Alcotest.test_case "kenv_native: direct access" `Quick test_kenv_native_direct;
    Alcotest.test_case "driver_host: restart" `Quick test_driver_restart_host;
    Alcotest.test_case "sysfs: id matching" `Quick test_sysfs_matching;
    Alcotest.test_case "safe_pci: device files (Figure 6)" `Quick test_device_files_listed;
    Alcotest.test_case "delegation: one process per device" `Quick test_delegation;
    Alcotest.test_case "shadow: automatic crash recovery" `Quick test_shadow_recovery;
    Alcotest.test_case "proxy: xmit from atomic context" `Quick test_xmit_from_atomic_context ]
