(* Unit and property tests for the uchan layer: message marshalling, ring
   buffers, the shared buffer pool, and RPC semantics. *)

let with_kernel fn =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  fn eng k

let in_fiber eng k fn =
  let ok = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"t" (fun () ->
         fn ();
         ok := true)
     : Fiber.t);
  Engine.run ~max_time:(Engine.now eng + 30_000_000_000) eng;
  Alcotest.(check bool) "fiber completed" true !ok

(* ---- msg ---- *)

let test_msg_roundtrip () =
  let m = Msg.make ~seq:7 ~args:[ 1; 2; 3 ] ~payload:(Bytes.of_string "hi") ~buf:5 ~kind:42 () in
  match Msg.unmarshal (Msg.marshal m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check int) "kind" 42 m'.Msg.kind;
    Alcotest.(check int) "seq" 7 m'.Msg.seq;
    Alcotest.(check int) "buf" 5 m'.Msg.buf;
    Alcotest.(check int) "arg" 2 (Msg.arg m' 1);
    Alcotest.(check int) "missing arg defaults" 0 (Msg.arg m' 5);
    Alcotest.(check string) "payload" "hi" (Bytes.to_string m'.Msg.payload)

let test_msg_validation () =
  Alcotest.(check bool) "oversized payload rejected" true
    (match Msg.make ~payload:(Bytes.make 200 'x') ~kind:1 () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  (* A malicious driver writes garbage into the ring: unmarshal must not
     trust the length fields. *)
  let evil = Bytes.make Msg.slot_size '\xFF' in
  Alcotest.(check bool) "garbage slot rejected" true
    (Result.is_error (Msg.unmarshal evil));
  Alcotest.(check bool) "wrong size rejected" true
    (Result.is_error (Msg.unmarshal (Bytes.make 10 '\x00')))

(* ---- ring ---- *)

let test_ring_fifo () =
  let r = Ring.create ~slots:4 in
  Alcotest.(check bool) "empty" true (Ring.is_empty r);
  for i = 1 to 4 do
    Alcotest.(check bool) "push" true
      (Ring.try_push r (Msg.marshal (Msg.make ~kind:i ())))
  done;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check bool) "push on full fails" false
    (Ring.try_push r (Msg.marshal (Msg.make ~kind:9 ())));
  for i = 1 to 4 do
    match Ring.try_pop r with
    | Some slot ->
      (match Msg.unmarshal slot with
       | Ok m -> Alcotest.(check int) "FIFO order" i m.Msg.kind
       | Error e -> Alcotest.fail e)
    | None -> Alcotest.fail "pop"
  done;
  Alcotest.(check bool) "drained" true (Ring.is_empty r)

let test_ring_power_of_two () =
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Ring.create: slots must be a positive power of two") (fun () ->
        ignore (Ring.create ~slots:3 : Ring.t))

(* ---- bufpool ---- *)

let mk_pool () =
  let backing = Bytes.make (Bufpool.region_size ~count:4 ~buf_size:256) '\000' in
  Bufpool.create
    ~read:(fun ~off ~len -> Bytes.sub backing off len)
    ~write:(fun ~off ~data -> Bytes.blit data 0 backing off (Bytes.length data))
    ~base_addr:0x42430000 ~count:4 ~buf_size:256

let test_bufpool_alloc_free () =
  let p = mk_pool () in
  let b1 = Option.get (Bufpool.alloc p) in
  let b2 = Option.get (Bufpool.alloc p) in
  Alcotest.(check bool) "distinct addrs" true (b1.Bufpool.addr <> b2.Bufpool.addr);
  Alcotest.(check int) "addr derives from base" 0x42430000 b1.Bufpool.addr;
  Alcotest.(check int) "in use" 2 (Bufpool.in_use p);
  Bufpool.free p b1.Bufpool.id;
  Alcotest.(check int) "freed" 1 (Bufpool.in_use p);
  Bufpool.free p b1.Bufpool.id;   (* double free ignored *)
  Alcotest.(check int) "double free ignored" 1 (Bufpool.in_use p);
  Bufpool.free p 99;              (* wild id ignored *)
  Alcotest.(check int) "wild free ignored" 1 (Bufpool.in_use p)

let test_bufpool_exhaustion () =
  let p = mk_pool () in
  for _ = 1 to 4 do ignore (Bufpool.alloc p : Bufpool.buf option) done;
  Alcotest.(check bool) "exhausted" true (Bufpool.alloc p = None)

let test_bufpool_validation () =
  let p = mk_pool () in
  let b = Option.get (Bufpool.alloc p) in
  Alcotest.(check bool) "valid id" true (Bufpool.get p b.Bufpool.id <> None);
  Alcotest.(check bool) "unallocated id rejected" true (Bufpool.get p 3 = None);
  Alcotest.(check bool) "wild id rejected" true (Bufpool.get p 1234 = None);
  Bufpool.write p b ~off:10 (Bytes.of_string "abc");
  Alcotest.(check string) "rw" "abc" (Bytes.to_string (Bufpool.read p b ~off:10 ~len:3));
  Alcotest.check_raises "oob" (Invalid_argument "Bufpool: out of bounds") (fun () ->
      ignore (Bufpool.read p b ~off:250 ~len:10 : bytes))

(* ---- uchan RPC semantics ---- *)

let test_uchan_sync_upcall () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
      ignore
        (Process.spawn_fiber proc (fun () ->
             let rec serve () =
               match Uchan.wait chan with
               | Ok m ->
                 Uchan.reply chan
                   (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args:[ Msg.arg m 0 * 2 ] ());
                 serve ()
               | Error _ -> ()
             in
             serve ())
         : Fiber.t);
      in_fiber eng k (fun () ->
          match Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:4 ~args:[ 21 ] ()) with
          | Ok r -> Alcotest.(check int) "doubled" 42 (Msg.arg r 0)
          | Error _ -> Alcotest.fail "sync send failed"))

let test_uchan_hang_detection () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      (* No driver fiber at all: the upcall must come back Hung within the
         timeout, not block forever. *)
      in_fiber eng k (fun () ->
          let t0 = Engine.now eng in
          (match Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()) with
           | Error Uchan.Hung -> ()
           | Ok _ | Error _ -> Alcotest.fail "expected Hung");
          Alcotest.(check bool) "took about the hang timeout" true
            (Engine.now eng - t0 >= Uchan.hang_timeout_ns)))

let test_uchan_interruptible () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let result = ref None in
      let finished_at = ref max_int in
      let caller =
        Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"ifconfig"
          (fun () ->
             result := Some (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()));
             finished_at := Engine.now eng)
      in
      (* Ctrl-C after 1ms, well before the hang timeout. *)
      ignore
        (Engine.schedule_after eng 1_000_000 (fun () ->
             ignore (Fiber.interrupt caller : bool))
         : Engine.handle);
      Engine.run ~max_time:20_000_000 eng;
      Alcotest.(check bool) "aborted by the user" true
        (!result = Some (Error Uchan.Interrupted));
      Alcotest.(check bool) "returned well before the timeout" true
        (!finished_at < Uchan.hang_timeout_ns))

let test_uchan_close_unblocks () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let result = ref None in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"caller"
           (fun () -> result := Some (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ())))
         : Fiber.t);
      ignore (Engine.schedule_after eng 1_000 (fun () -> Uchan.close chan) : Engine.handle);
      Engine.run ~max_time:20_000_000 eng;
      Alcotest.(check bool) "failed with Closed" true (!result = Some (Error Uchan.Closed));
      Alcotest.(check bool) "is_closed" true (Uchan.is_closed chan);
      Alcotest.(check bool) "send after close" true
        (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()) = Error Uchan.Closed))

let test_uchan_downcall () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let asyncs = ref [] in
      Uchan.set_downcall_handler chan (fun ~queue:_ m ->
          if m.Msg.seq = 0 then begin
            asyncs := m.Msg.kind :: !asyncs;
            None
          end
          else Some (Msg.make ~kind:m.Msg.kind ~args:[ 99 ] ()));
      let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
      let sync_result = ref None in
      ignore
        (Process.spawn_fiber proc (fun () ->
             Uchan.transfer chan ~from:`Driver Uchan.Batched (Msg.make ~kind:101 ());
             Uchan.transfer chan ~from:`Driver Uchan.Batched (Msg.make ~kind:102 ());
             sync_result := Some (Uchan.transfer chan ~from:`Driver Uchan.Sync (Msg.make ~kind:103 ())))
         : Fiber.t);
      Engine.run ~max_time:100_000_000 eng;
      (match !sync_result with
       | Some (Ok r) -> Alcotest.(check int) "reply delivered directly" 99 (Msg.arg r 0)
       | _ -> Alcotest.fail "sync downcall failed");
      (* usend flushes the batch first: async downcalls arrive in order
         before the sync one completes. *)
      Alcotest.(check (list int)) "batched asyncs arrived in order" [ 101; 102 ]
        (List.rev !asyncs))

let test_uchan_try_asend_full () =
  with_kernel (fun _ k ->
      let chan = Uchan.create k ~slots:4 ~driver_label:"d" () in
      (* Nobody drains: the ring fills and try_asend turns false instead of
         blocking (interrupt context requirement). *)
      let sent = ref 0 in
      while Uchan.transfer chan ~from:`Kernel Uchan.Nonblock (Msg.make ~kind:5 ()) do incr sent done;
      Alcotest.(check int) "bounded by ring size" 4 !sent)

(* ---- property tests ---- *)

let msg_gen =
  QCheck.Gen.(
    let* kind = int_range 0 0x7FFF in
    let* seq = int_range 0 1000000 in
    let* nargs = int_range 0 Msg.max_args in
    let* args = list_repeat nargs (int_range (-1000000) 1000000) in
    let* payload = string_size (int_range 0 Msg.max_payload) in
    let* buf = int_range (-1) 1000 in
    return (Msg.make ~seq ~args ~payload:(Bytes.of_string payload) ~buf ~kind ()))

let qcheck_cases =
  [ QCheck.Test.make ~name:"msg marshal/unmarshal roundtrip" ~count:500
      (QCheck.make msg_gen)
      (fun m ->
         match Msg.unmarshal (Msg.marshal m) with
         | Error _ -> false
         | Ok m' ->
           m'.Msg.kind = m.Msg.kind && m'.Msg.seq = m.Msg.seq && m'.Msg.buf = m.Msg.buf
           && Array.to_list m'.Msg.args = Array.to_list m.Msg.args
           && Bytes.equal m'.Msg.payload m.Msg.payload);
    QCheck.Test.make ~name:"ring preserves order under mixed ops" ~count:200
      QCheck.(list (int_bound 1))
      (fun ops ->
         let r = Ring.create ~slots:16 in
         let model = Queue.create () in
         let next = ref 0 in
         let ok = ref true in
         List.iter
           (fun op ->
              if op = 0 then begin
                incr next;
                let pushed = Ring.try_push r (Msg.marshal (Msg.make ~kind:(!next land 0x7FFF) ())) in
                if pushed then Queue.push (!next land 0x7FFF) model
              end
              else
                match (Ring.try_pop r, Queue.take_opt model) with
                | None, None -> ()
                | Some slot, Some expect ->
                  (match Msg.unmarshal slot with
                   | Ok m -> if m.Msg.kind <> expect then ok := false
                   | Error _ -> ok := false)
                | Some _, None | None, Some _ -> ok := false)
           ops;
         !ok && Ring.length r = Queue.length model) ]

let suite =
  [ Alcotest.test_case "msg: roundtrip" `Quick test_msg_roundtrip;
    Alcotest.test_case "msg: validation" `Quick test_msg_validation;
    Alcotest.test_case "ring: FIFO + full" `Quick test_ring_fifo;
    Alcotest.test_case "ring: power of two" `Quick test_ring_power_of_two;
    Alcotest.test_case "bufpool: alloc/free" `Quick test_bufpool_alloc_free;
    Alcotest.test_case "bufpool: exhaustion" `Quick test_bufpool_exhaustion;
    Alcotest.test_case "bufpool: validation + rw" `Quick test_bufpool_validation;
    Alcotest.test_case "uchan: sync upcall" `Quick test_uchan_sync_upcall;
    Alcotest.test_case "uchan: hang detection" `Quick test_uchan_hang_detection;
    Alcotest.test_case "uchan: interruptible (Ctrl-C)" `Quick test_uchan_interruptible;
    Alcotest.test_case "uchan: close unblocks" `Quick test_uchan_close_unblocks;
    Alcotest.test_case "uchan: downcalls + batching order" `Quick test_uchan_downcall;
    Alcotest.test_case "uchan: try_asend bounded" `Quick test_uchan_try_asend_full ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
