(* Unit and property tests for the uchan layer: message marshalling, ring
   buffers, the shared buffer pool, and RPC semantics. *)

let with_kernel fn =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  fn eng k

let in_fiber eng k fn =
  let ok = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"t" (fun () ->
         fn ();
         ok := true)
     : Fiber.t);
  Engine.run ~max_time:(Engine.now eng + 30_000_000_000) eng;
  Alcotest.(check bool) "fiber completed" true !ok

(* ---- msg ---- *)

let test_msg_roundtrip () =
  let m = Msg.make ~seq:7 ~args:[ 1; 2; 3 ] ~payload:(Bytes.of_string "hi") ~buf:5 ~kind:42 () in
  match Msg.unmarshal (Msg.marshal m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check int) "kind" 42 m'.Msg.kind;
    Alcotest.(check int) "seq" 7 m'.Msg.seq;
    Alcotest.(check int) "buf" 5 m'.Msg.buf;
    Alcotest.(check int) "arg" 2 (Msg.arg m' 1);
    Alcotest.(check int) "missing arg defaults" 0 (Msg.arg m' 5);
    Alcotest.(check string) "payload" "hi" (Bytes.to_string m'.Msg.payload)

let test_msg_validation () =
  Alcotest.(check bool) "oversized payload rejected" true
    (match Msg.make ~payload:(Bytes.make 200 'x') ~kind:1 () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  (* A malicious driver writes garbage into the ring: unmarshal must not
     trust the length fields. *)
  let evil = Bytes.make Msg.slot_size '\xFF' in
  Alcotest.(check bool) "garbage slot rejected" true
    (Result.is_error (Msg.unmarshal evil));
  Alcotest.(check bool) "wrong size rejected" true
    (Result.is_error (Msg.unmarshal (Bytes.make 10 '\x00')))

(* ---- ring ---- *)

let test_ring_fifo () =
  let r = Ring.create ~slots:4 in
  Alcotest.(check bool) "empty" true (Ring.is_empty r);
  for i = 1 to 4 do
    Alcotest.(check bool) "push" true
      (Ring.try_push r (Msg.marshal (Msg.make ~kind:i ())))
  done;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check bool) "push on full fails" false
    (Ring.try_push r (Msg.marshal (Msg.make ~kind:9 ())));
  for i = 1 to 4 do
    match Ring.try_pop r with
    | Some slot ->
      (match Msg.unmarshal slot with
       | Ok m -> Alcotest.(check int) "FIFO order" i m.Msg.kind
       | Error e -> Alcotest.fail e)
    | None -> Alcotest.fail "pop"
  done;
  Alcotest.(check bool) "drained" true (Ring.is_empty r)

let test_ring_power_of_two () =
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Ring.create: slots must be a positive power of two") (fun () ->
        ignore (Ring.create ~slots:3 : Ring.t))

(* ---- bufpool ---- *)

let mk_pool () =
  let backing = Bytes.make (Bufpool.region_size ~count:4 ~buf_size:256) '\000' in
  Bufpool.create
    ~read:(fun ~off ~len -> Bytes.sub backing off len)
    ~write:(fun ~off ~data -> Bytes.blit data 0 backing off (Bytes.length data))
    ~base_addr:0x42430000 ~count:4 ~buf_size:256

let test_bufpool_alloc_free () =
  let p = mk_pool () in
  let b1 = Option.get (Bufpool.alloc p) in
  let b2 = Option.get (Bufpool.alloc p) in
  Alcotest.(check bool) "distinct addrs" true (b1.Bufpool.addr <> b2.Bufpool.addr);
  Alcotest.(check int) "addr derives from base" 0x42430000 b1.Bufpool.addr;
  Alcotest.(check int) "in use" 2 (Bufpool.in_use p);
  Bufpool.free p b1.Bufpool.id;
  Alcotest.(check int) "freed" 1 (Bufpool.in_use p);
  Bufpool.free p b1.Bufpool.id;   (* double free ignored *)
  Alcotest.(check int) "double free ignored" 1 (Bufpool.in_use p);
  Bufpool.free p 99;              (* wild id ignored *)
  Alcotest.(check int) "wild free ignored" 1 (Bufpool.in_use p)

let test_bufpool_exhaustion () =
  let p = mk_pool () in
  for _ = 1 to 4 do ignore (Bufpool.alloc p : Bufpool.buf option) done;
  Alcotest.(check bool) "exhausted" true (Bufpool.alloc p = None)

let test_bufpool_validation () =
  let p = mk_pool () in
  let b = Option.get (Bufpool.alloc p) in
  Alcotest.(check bool) "valid id" true (Bufpool.get p b.Bufpool.id <> None);
  Alcotest.(check bool) "unallocated id rejected" true (Bufpool.get p 3 = None);
  Alcotest.(check bool) "wild id rejected" true (Bufpool.get p 1234 = None);
  Bufpool.write p b ~off:10 (Bytes.of_string "abc");
  Alcotest.(check string) "rw" "abc" (Bytes.to_string (Bufpool.read p b ~off:10 ~len:3));
  Alcotest.check_raises "oob" (Invalid_argument "Bufpool: out of bounds") (fun () ->
      ignore (Bufpool.read p b ~off:250 ~len:10 : bytes))

(* ---- uchan RPC semantics ---- *)

let test_uchan_sync_upcall () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
      ignore
        (Process.spawn_fiber proc (fun () ->
             let rec serve () =
               match Uchan.wait chan with
               | Ok m ->
                 Uchan.reply chan
                   (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args:[ Msg.arg m 0 * 2 ] ());
                 serve ()
               | Error _ -> ()
             in
             serve ())
         : Fiber.t);
      in_fiber eng k (fun () ->
          match Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:4 ~args:[ 21 ] ()) with
          | Ok r -> Alcotest.(check int) "doubled" 42 (Msg.arg r 0)
          | Error _ -> Alcotest.fail "sync send failed"))

let test_uchan_hang_detection () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      (* No driver fiber at all: the upcall must come back Hung within the
         timeout, not block forever. *)
      in_fiber eng k (fun () ->
          let t0 = Engine.now eng in
          (match Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()) with
           | Error Uchan.Hung -> ()
           | Ok _ | Error _ -> Alcotest.fail "expected Hung");
          Alcotest.(check bool) "took about the hang timeout" true
            (Engine.now eng - t0 >= Uchan.hang_timeout_ns)))

let test_uchan_interruptible () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let result = ref None in
      let finished_at = ref max_int in
      let caller =
        Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"ifconfig"
          (fun () ->
             result := Some (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()));
             finished_at := Engine.now eng)
      in
      (* Ctrl-C after 1ms, well before the hang timeout. *)
      ignore
        (Engine.schedule_after eng 1_000_000 (fun () ->
             ignore (Fiber.interrupt caller : bool))
         : Engine.handle);
      Engine.run ~max_time:20_000_000 eng;
      Alcotest.(check bool) "aborted by the user" true
        (!result = Some (Error Uchan.Interrupted));
      Alcotest.(check bool) "returned well before the timeout" true
        (!finished_at < Uchan.hang_timeout_ns))

let test_uchan_close_unblocks () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let result = ref None in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"caller"
           (fun () -> result := Some (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ())))
         : Fiber.t);
      ignore (Engine.schedule_after eng 1_000 (fun () -> Uchan.close chan) : Engine.handle);
      Engine.run ~max_time:20_000_000 eng;
      Alcotest.(check bool) "failed with Closed" true (!result = Some (Error Uchan.Closed));
      Alcotest.(check bool) "is_closed" true (Uchan.is_closed chan);
      Alcotest.(check bool) "send after close" true
        (Uchan.transfer chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:1 ()) = Error Uchan.Closed))

let test_uchan_downcall () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      let asyncs = ref [] in
      Uchan.set_downcall_handler chan (fun ~queue:_ m ->
          if m.Msg.seq = 0 then begin
            asyncs := m.Msg.kind :: !asyncs;
            None
          end
          else Some (Msg.make ~kind:m.Msg.kind ~args:[ 99 ] ()));
      let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
      let sync_result = ref None in
      ignore
        (Process.spawn_fiber proc (fun () ->
             Uchan.transfer chan ~from:`Driver Uchan.Batched (Msg.make ~kind:101 ());
             Uchan.transfer chan ~from:`Driver Uchan.Batched (Msg.make ~kind:102 ());
             sync_result := Some (Uchan.transfer chan ~from:`Driver Uchan.Sync (Msg.make ~kind:103 ())))
         : Fiber.t);
      Engine.run ~max_time:100_000_000 eng;
      (match !sync_result with
       | Some (Ok r) -> Alcotest.(check int) "reply delivered directly" 99 (Msg.arg r 0)
       | _ -> Alcotest.fail "sync downcall failed");
      (* usend flushes the batch first: async downcalls arrive in order
         before the sync one completes. *)
      Alcotest.(check (list int)) "batched asyncs arrived in order" [ 101; 102 ]
        (List.rev !asyncs))

(* Fault containment inside a batch slot: garbling one frame must drop
   exactly that frame (um_malformed ticks once), deliver its siblings in
   order, and leave the channel fully usable. *)
let test_uchan_batch_corrupt_frame () =
  with_kernel (fun eng k ->
      let chan = Uchan.create k ~driver_label:"d" () in
      Uchan.set_batch_limit chan 8;
      let got = ref [] in
      Uchan.set_downcall_handler chan (fun ~queue:_ m ->
          if m.Msg.seq = 0 then begin
            got := Msg.arg m 0 :: !got;
            None
          end
          else Some (Msg.make ~kind:m.Msg.kind ~args:[ 7 ] ()));
      let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
      let after = ref None in
      ignore
        (Process.spawn_fiber proc (fun () ->
             for i = 1 to 5 do
               Uchan.transfer chan ~from:`Driver Uchan.Batched
                 (Msg.make ~kind:31 ~args:[ i; 0 ] ())
             done;
             (* Arm before the flush: the run of 5 goes out as one batch
                slot with its last frame garbled on the ring. *)
             Uchan.inject_corrupt_batch_frames chan 1;
             Uchan.flush chan;
             after := Some (Uchan.transfer chan ~from:`Driver Uchan.Sync (Msg.make ~kind:32 ())))
         : Fiber.t);
      Engine.run ~max_time:100_000_000 eng;
      Alcotest.(check (list int)) "siblings delivered in order" [ 1; 2; 3; 4 ]
        (List.rev !got);
      Alcotest.(check int) "exactly one frame counted malformed" 1
        (Sud_obs.Metrics.get (Uchan.metrics chan).Uchan.um_malformed_frames);
      Alcotest.(check int) "not a slot-level protocol violation" 0
        (Sud_obs.Metrics.get (Uchan.metrics chan).Uchan.um_malformed);
      (match !after with
       | Some (Ok r) -> Alcotest.(check int) "channel still serves syncs" 7 (Msg.arg r 0)
       | _ -> Alcotest.fail "sync downcall after corruption failed"))

let test_uchan_try_asend_full () =
  with_kernel (fun _ k ->
      let chan = Uchan.create k ~slots:4 ~driver_label:"d" () in
      (* Nobody drains: the ring fills and try_asend turns false instead of
         blocking (interrupt context requirement). *)
      let sent = ref 0 in
      while Uchan.transfer chan ~from:`Kernel Uchan.Nonblock (Msg.make ~kind:5 ()) do incr sent done;
      Alcotest.(check int) "bounded by ring size" 4 !sent)

(* ---- property tests ---- *)

let msg_gen =
  QCheck.Gen.(
    let* kind = int_range 0 0x7FFF in
    let* seq = int_range 0 1000000 in
    let* nargs = int_range 0 Msg.max_args in
    let* args = list_repeat nargs (int_range (-1000000) 1000000) in
    let* payload = string_size (int_range 0 Msg.max_payload) in
    let* buf = int_range (-1) 1000 in
    return (Msg.make ~seq ~args ~payload:(Bytes.of_string payload) ~buf ~kind ()))

let qcheck_cases =
  [ QCheck.Test.make ~name:"msg marshal/unmarshal roundtrip" ~count:500
      (QCheck.make msg_gen)
      (fun m ->
         match Msg.unmarshal (Msg.marshal m) with
         | Error _ -> false
         | Ok m' ->
           m'.Msg.kind = m.Msg.kind && m'.Msg.seq = m.Msg.seq && m'.Msg.buf = m.Msg.buf
           && Array.to_list m'.Msg.args = Array.to_list m.Msg.args
           && Bytes.equal m'.Msg.payload m.Msg.payload);
    QCheck.Test.make ~name:"ring preserves order under mixed ops" ~count:200
      QCheck.(list (int_bound 1))
      (fun ops ->
         let r = Ring.create ~slots:16 in
         let model = Queue.create () in
         let next = ref 0 in
         let ok = ref true in
         List.iter
           (fun op ->
              if op = 0 then begin
                incr next;
                let pushed = Ring.try_push r (Msg.marshal (Msg.make ~kind:(!next land 0x7FFF) ())) in
                if pushed then Queue.push (!next land 0x7FFF) model
              end
              else
                match (Ring.try_pop r, Queue.take_opt model) with
                | None, None -> ()
                | Some slot, Some expect ->
                  (match Msg.unmarshal slot with
                   | Ok m -> if m.Msg.kind <> expect then ok := false
                   | Error _ -> ok := false)
                | Some _, None | None, Some _ -> ok := false)
           ops;
         !ok && Ring.length r = Queue.length model);
    (* Batch container: a marshalled slot round-trips every entry, and a
       garbled entry fails exactly its own per-entry checksum — the
       containment unit the kernel-side decode relies on. *)
    QCheck.Test.make ~name:"batch slot roundtrip; corruption stays per-entry" ~count:300
      QCheck.(
        make
          Gen.(
            let* kind = int_range 0 0x7FFF in
            let* n = int_range 1 Msg.Batch.max_frames in
            let* entries =
              list_repeat n (pair (int_range 0 0xFFFF_FFFF) (int_range 0 0xFFFF))
            in
            let* corrupt = int_range (-1) (n - 1) in
            return (kind, Array.of_list entries, corrupt)))
      (fun (kind, entries, corrupt) ->
         let slot = Bytes.create Msg.slot_size in
         Msg.Batch.marshal_into ~kind entries slot;
         if corrupt >= 0 then Msg.Batch.corrupt_entry slot corrupt;
         Msg.Batch.is_batch slot
         && (match Msg.Batch.unmarshal_view slot with
             | Error _ -> false
             | Ok (kind', epoch', decoded) ->
               kind' = kind && epoch' = 0
               && List.length decoded = Array.length entries
               && List.for_all2
                    (fun i d ->
                       if i = corrupt then Result.is_error d
                       else d = Ok entries.(i))
                    (List.init (Array.length entries) Fun.id)
                    decoded));
    (* Per-flow ordering survives every batching boundary: arbitrary flow
       interleavings, arbitrary accumulation thresholds, kind changes
       splitting coalescing runs, and the final sync-forced flush. *)
    QCheck.Test.make ~name:"batched downcalls preserve per-flow order" ~count:40
      QCheck.(make Gen.(pair (int_range 1 8) (list_size (int_range 1 60) (int_range 0 3))))
      (fun (limit, flows) ->
         with_kernel (fun eng k ->
             let chan = Uchan.create k ~driver_label:"d" () in
             Uchan.set_batch_limit chan limit;
             let got = Hashtbl.create 4 in
             let push tbl flow v =
               Hashtbl.replace tbl flow
                 (v :: (try Hashtbl.find tbl flow with Not_found -> []))
             in
             Uchan.set_downcall_handler chan (fun ~queue:_ m ->
                 if m.Msg.seq = 0 then begin
                   push got (m.Msg.kind - 10) (Msg.arg m 0);
                   None
                 end
                 else Some (Msg.make ~kind:m.Msg.kind ()));
             let sent = Hashtbl.create 4 in
             let finished = ref false in
             let proc = Process.spawn k.Kernel.procs ~name:"drv" ~uid:1000 in
             ignore
               (Process.spawn_fiber proc (fun () ->
                    List.iteri
                      (fun i flow ->
                         push sent flow i;
                         Uchan.transfer chan ~from:`Driver Uchan.Batched
                           (Msg.make ~kind:(10 + flow) ~args:[ i; 0 ] ()))
                      flows;
                    (match
                       Uchan.transfer chan ~from:`Driver Uchan.Sync (Msg.make ~kind:9 ())
                     with
                     | Ok _ -> finished := true
                     | Error _ -> ()))
                : Fiber.t);
             Engine.run ~max_time:1_000_000_000 eng;
             !finished
             && List.for_all
                  (fun f ->
                     (try Hashtbl.find got f with Not_found -> [])
                     = (try Hashtbl.find sent f with Not_found -> []))
                  [ 0; 1; 2; 3 ])) ]

let suite =
  [ Alcotest.test_case "msg: roundtrip" `Quick test_msg_roundtrip;
    Alcotest.test_case "msg: validation" `Quick test_msg_validation;
    Alcotest.test_case "ring: FIFO + full" `Quick test_ring_fifo;
    Alcotest.test_case "ring: power of two" `Quick test_ring_power_of_two;
    Alcotest.test_case "bufpool: alloc/free" `Quick test_bufpool_alloc_free;
    Alcotest.test_case "bufpool: exhaustion" `Quick test_bufpool_exhaustion;
    Alcotest.test_case "bufpool: validation + rw" `Quick test_bufpool_validation;
    Alcotest.test_case "uchan: sync upcall" `Quick test_uchan_sync_upcall;
    Alcotest.test_case "uchan: hang detection" `Quick test_uchan_hang_detection;
    Alcotest.test_case "uchan: interruptible (Ctrl-C)" `Quick test_uchan_interruptible;
    Alcotest.test_case "uchan: close unblocks" `Quick test_uchan_close_unblocks;
    Alcotest.test_case "uchan: downcalls + batching order" `Quick test_uchan_downcall;
    Alcotest.test_case "uchan: corrupt batch frame contained" `Quick
      test_uchan_batch_corrupt_frame;
    Alcotest.test_case "uchan: try_asend bounded" `Quick test_uchan_try_asend_full ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
