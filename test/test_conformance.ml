(* The unified proxy lifecycle contract, checked against every device
   class through Proxy_class.instance — the same capability the
   supervisor holds.  One generic exerciser asserts what the interface
   promises (healthy instances are not hung and answer the heartbeat;
   quiesce and resume are idempotent and leave the instance healthy);
   per-class tests obtain a live instance the way the driver host hands
   one out and prove the datapath still serves after a full
   quiesce/resume cycle.  A QCheck property then drives the blk class
   through random write/fsync/crash schedules and holds it to the
   durability oracle: no acknowledged-and-synced write is ever lost. *)

open Helpers

let heartbeat_ok what inst =
  match Proxy_class.heartbeat inst with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: heartbeat on healthy instance failed: %s" what e

(* The class-independent contract.  Quiesce/resume must be callable
   repeatedly in any healthy state (the supervisor retries recovery
   steps), and a full cycle must leave the control path answering. *)
let exercise what (inst : Proxy_class.instance) =
  Alcotest.(check bool) (what ^ ": class name nonempty") true
    (String.length (Proxy_class.class_name inst) > 0);
  Alcotest.(check bool) (what ^ ": healthy instance not hung") false
    (Proxy_class.hung inst);
  heartbeat_ok what inst;
  Proxy_class.quiesce inst;
  Proxy_class.quiesce inst;
  Proxy_class.resume inst;
  Proxy_class.resume inst;
  Alcotest.(check bool) (what ^ ": not hung after quiesce/resume") false
    (Proxy_class.hung inst);
  heartbeat_ok (what ^ " (after cycle)") inst;
  (* Generation handoff is part of the same contract: capturing the
     class state is read-only (calling it twice must not perturb the
     instance), every class has state to hand off, and adopting a
     captured state back after a quiesce must leave the instance
     healthy — the per-class datapath probes that follow [exercise]
     then prove it still serves. *)
  let h1 = Proxy_class.handoff inst in
  let h2 = Proxy_class.handoff inst in
  Alcotest.(check bool) (what ^ ": handoff produces class state") false
    (h1 == Proxy_class.No_state || h2 == Proxy_class.No_state);
  Alcotest.(check bool) (what ^ ": not hung after double handoff") false
    (Proxy_class.hung inst);
  heartbeat_ok (what ^ " (after handoff)") inst;
  Proxy_class.quiesce inst;
  Proxy_class.adopt inst h2;
  Proxy_class.resume inst;
  Alcotest.(check bool) (what ^ ": not hung after adopt") false
    (Proxy_class.hung inst);
  heartbeat_ok (what ^ " (after adopt)") inst

let test_net () =
  run_in_kernel setup_duo (fun k d ->
      let sp = Safe_pci.init k in
      let s =
        ok_or_fail "start e1000"
          (Driver_host.launch k sp (Driver_host.net ()) ~bdf:d.bdf_a ~name:"eth0" E1000.driver)
      in
      let inst = Driver_host.class_of s in
      Alcotest.(check string) "class" "net" (Proxy_class.class_name inst);
      exercise "net" inst;
      (* The cycle must not have torn down the datapath: a frame still
         crosses the wire. *)
      let dev = Driver_host.netdev s in
      ok_or_fail "up" (Netstack.ifconfig_up k.Kernel.net dev);
      let dev_b = up_native ~name:"eth1" k d.bdf_b in
      let sock_a = Netstack.udp_bind k.Kernel.net dev ~port:68 in
      let sock_b = Netstack.udp_bind k.Kernel.net dev_b ~port:67 in
      (match
         Netstack.udp_sendto k.Kernel.net sock_a ~dst:(Netdev.mac dev_b) ~dst_port:67
           (Bytes.of_string "alive")
       with
       | `Sent -> ()
       | `Dropped -> Alcotest.fail "tx dropped after quiesce/resume");
      match Netstack.udp_recv k.Kernel.net sock_b with
      | Some (d, _) ->
        Alcotest.(check string) "frame after cycle" "alive" (Bytes.to_string d)
      | None -> Alcotest.fail "nothing received after quiesce/resume")

let test_wifi () =
  run_in_kernel
    (fun k ->
       let air = Net_medium.create k.Kernel.eng () in
       let wifi =
         Wifi_dev.create k.Kernel.eng ~mac:mac_a ~medium:air
           ~bss_list:[ { Wifi_dev.bssid = 0x1A; ssid = "csail"; signal_dbm = -40 } ] ()
       in
       Kernel.attach_pci k (Wifi_dev.device wifi))
    (fun k bdf ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start iwl" (Driver_host.launch k sp Driver_host.wifi ~bdf Iwl.driver) in
       let inst = Proxy_wifi.instance (Driver_host.wifi_proxy s) in
       Alcotest.(check string) "class" "wifi" (Proxy_class.class_name inst);
       exercise "wifi" inst;
       (* Control path still serves: the mirrored rate table answers. *)
       Alcotest.(check (list int)) "mirror alive after cycle"
         (Array.to_list Wifi_dev.supported_rates)
         (Proxy_wifi.bitrates (Driver_host.wifi_proxy s)))

let test_audio () =
  run_in_kernel
    (fun k ->
       let hda = Hda_dev.create k.Kernel.eng () in
       Kernel.attach_pci k (Hda_dev.device hda))
    (fun k bdf ->
       let sp = Safe_pci.init k in
       let s = ok_or_fail "start hda" (Driver_host.launch k sp Driver_host.audio ~bdf Hda.driver) in
       let inst = Proxy_audio.instance (Driver_host.audio_proxy s) in
       Alcotest.(check string) "class" "audio" (Proxy_class.class_name inst);
       exercise "audio" inst;
       let proxy = Driver_host.audio_proxy s in
       ok_or_fail "set volume after cycle" (Proxy_audio.set_volume proxy 17);
       Alcotest.(check int) "volume round trip after cycle" 17
         (ok_or_fail "get volume" (Proxy_audio.get_volume proxy)))

let test_usb () =
  run_in_kernel
    (fun k ->
       let hci = Usb_hci_dev.create k.Kernel.eng ~ports:1 () in
       Usb_hci_dev.plug hci ~port:0 (Usb_device.storage ~name:"stick" ~blocks:16);
       Kernel.attach_pci k (Usb_hci_dev.device hci))
    (fun k bdf ->
       let sp = Safe_pci.init k in
       let s =
         ok_or_fail "start ehci"
           (Driver_host.launch k sp ~bdf
              (Driver_host.usb ~bind_storage:Ehci.bind_storage
                 ~bind_keyboard:Ehci.poll_keyboard)
              Ehci.driver)
       in
       let proxy = Driver_host.usb_proxy s in
       (match Proxy_usb.wait_block proxy ~timeout_ns:2_000_000_000 with
        | Some _ -> ()
        | None -> Alcotest.fail "no storage registered");
       let inst = Proxy_usb.instance proxy in
       Alcotest.(check string) "class" "usb" (Proxy_class.class_name inst);
       exercise "usb" inst;
       let block = Bytes.init 512 (fun i -> Char.chr ((i * 11) land 0xff)) in
       ok_or_fail "write after cycle" (Proxy_usb.write_blocks proxy ~lba:3 block);
       let back = ok_or_fail "read after cycle" (Proxy_usb.read_blocks proxy ~lba:3 ~count:1) in
       Alcotest.(check bytes) "usb datapath after cycle" block back)

let setup_nvme (k : Kernel.t) =
  let nvme = Nvme_dev.create k.Kernel.eng () in
  let bdf = Kernel.attach_pci k (Nvme_dev.device nvme) in
  let sp = Safe_pci.init k in
  (nvme, bdf, sp)

let test_blk () =
  run_in_kernel setup_nvme (fun k (nvme, bdf, sp) ->
      let s = ok_or_fail "start_blk" (Driver_host.launch k sp (Driver_host.blk ()) ~bdf Nvme.driver) in
      let inst = Driver_host.blk_class s in
      Alcotest.(check string) "class" "blk" (Proxy_class.class_name inst);
      exercise "blk" inst;
      (* Quiesce retains; resume replays: a FUA write issued while
         quiesced must become durable once resumed. *)
      let bd = Driver_host.blk_blkdev s in
      let data = Bytes.make Blkdev.page_size 'Q' in
      Proxy_class.quiesce inst;
      let done_ = ref None in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"writer"
           (fun () -> done_ := Some (Blkdev.write_fua bd ~lba:0 data ()))
         : Fiber.t);
      ignore (Fiber.sleep k.Kernel.eng 2_000_000 : Fiber.wake);
      Alcotest.(check bool) "write held while quiesced" true (!done_ = None);
      Proxy_class.resume inst;
      let deadline = Engine.now k.Kernel.eng + 2_000_000_000 in
      while !done_ = None && Engine.now k.Kernel.eng < deadline do
        ignore (Fiber.sleep k.Kernel.eng 100_000 : Fiber.wake)
      done;
      (match !done_ with
       | Some (Ok ()) -> ()
       | Some (Error e) -> Alcotest.failf "replayed write failed: %s" e
       | None -> Alcotest.fail "write never completed after resume");
      for sec = 0 to Blkdev.page_sectors - 1 do
        match Nvme_dev.media_sector nvme ~lba:sec with
        | Some b ->
          Alcotest.(check string)
            (Printf.sprintf "sector %d durable" sec)
            (String.make Blkdev.sector_size 'Q') (Bytes.to_string b)
        | None -> Alcotest.failf "sector %d of the replayed write never persisted" sec
      done;
      Driver_host.kill_blk s)

(* Randomized crash-consistency: drive the supervised blk stack through
   an arbitrary schedule of page writes, fsyncs and driver crashes; at
   every point the oracle from the soak harness must hold — a write
   that was acknowledged before a successful fsync is on media
   afterwards, whatever faults fired in between. *)

type bop = Bwrite of int * char | Bfsync | Bcrash

let bop_gen =
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun p c -> Bwrite (p, Char.chr (0x41 + c))) (int_bound 7) (int_bound 25));
        (2, return Bfsync);
        (1, return Bcrash) ])

let ops_gen = QCheck.Gen.(list_size (int_range 1 12) bop_gen)

let pp_bop = function
  | Bwrite (p, c) -> Printf.sprintf "write %d '%c'" p c
  | Bfsync -> "fsync"
  | Bcrash -> "crash"

let blk_policy =
  { Supervisor.default_policy with
    Supervisor.tick_ns = 1_000_000;
    hang_timeout_ns = 10_000_000;
    backoff_initial_ns = 500_000;
    backoff_max_ns = 10_000_000;
    max_restarts = 100 }

let run_schedule ops =
  run_in_kernel ~max_ms:60_000 setup_nvme (fun k (nvme, bdf, sp) ->
      let sv =
        ok_or_fail "supervise nvme"
          (Supervisor.start_blk k sp ~policy:blk_policy ~bdf (fun ~attempt:_ ->
               Nvme.driver))
      in
      let eng = k.Kernel.eng in
      let rec blkdev () =
        match Supervisor.blkdev sv with
        | Some bd when Blkdev.capacity bd > 0 -> bd
        | _ ->
          ignore (Fiber.sleep eng 100_000 : Fiber.wake);
          blkdev ()
      in
      let bd = blkdev () in
      let synced = Array.make 8 None in  (* oracle: page -> last fsynced char *)
      let acked = Array.make 8 None in  (* acked but not yet fsynced *)
      let failures = ref [] in
      List.iter
        (fun op ->
           match op with
           | Bwrite (p, c) ->
             (match
                Blkdev.write bd ~lba:(p * Blkdev.page_sectors)
                  (Bytes.make Blkdev.page_size c) ()
              with
              | Ok () -> acked.(p) <- Some c
              | Error e -> failures := Printf.sprintf "write %d: %s" p e :: !failures)
           | Bfsync ->
             (match Blkdev.fsync bd () with
              | Ok () ->
                Array.iteri
                  (fun p v -> match v with Some c -> synced.(p) <- Some c | None -> ())
                  acked
              | Error e -> failures := Printf.sprintf "fsync: %s" e :: !failures)
           | Bcrash ->
             ignore (Fault_inject.blk_inject ~eng ~sv ~nvme Fault_inject.Bcrash : bool);
             let deadline = Engine.now eng + 5_000_000_000 in
             while Supervisor.state sv <> Supervisor.Running
                   && Engine.now eng < deadline do
               ignore (Fiber.sleep eng 500_000 : Fiber.wake)
             done)
        ops;
      (* Settle with one final fsync, then hold media to the oracle. *)
      (match Blkdev.fsync bd () with
       | Ok () ->
         Array.iteri
           (fun p v -> match v with Some c -> synced.(p) <- Some c | None -> ())
           acked
       | Error e -> failures := Printf.sprintf "final fsync: %s" e :: !failures);
      Array.iteri
        (fun p expect ->
           match expect with
           | None -> ()
           | Some c ->
             for s = 0 to Blkdev.page_sectors - 1 do
               let lba = (p * Blkdev.page_sectors) + s in
               match Nvme_dev.media_sector nvme ~lba with
               | Some b when Bytes.to_string b = String.make Blkdev.sector_size c -> ()
               | Some _ ->
                 failures := Printf.sprintf "page %d sector %d: stale media" p lba :: !failures
               | None ->
                 failures := Printf.sprintf "page %d sector %d: synced write lost" p lba :: !failures
             done)
        synced;
      Supervisor.stop sv;
      !failures)

let prop_no_lost_synced_write =
  QCheck.Test.make ~name:"no fsynced write is lost under random crash schedules"
    ~count:10
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_bop ops)) ops_gen)
    (fun ops ->
       match run_schedule ops with
       | [] -> true
       | fs -> QCheck.Test.fail_reportf "oracle violated:@.%s" (String.concat "\n" fs))

let suite =
  [ Alcotest.test_case "net proxy honours the lifecycle contract" `Quick test_net;
    Alcotest.test_case "wifi proxy honours the lifecycle contract" `Quick test_wifi;
    Alcotest.test_case "audio proxy honours the lifecycle contract" `Quick test_audio;
    Alcotest.test_case "usb proxy honours the lifecycle contract" `Quick test_usb;
    Alcotest.test_case "blk proxy honours the lifecycle contract" `Quick test_blk;
    QCheck_alcotest.to_alcotest prop_no_lost_synced_write ]
