(* The versioned baseline format: the printer/parser round-trip, the
   compatibility promise that every historical BENCH_* emitter style
   still parses, and the reader combinators the bench gates rely on. *)

module J = Bench_schema

let rec pp_value fmt = function
  | J.Null -> Format.fprintf fmt "null"
  | J.Bool b -> Format.fprintf fmt "%b" b
  | J.Int i -> Format.fprintf fmt "%d" i
  | J.Float f -> Format.fprintf fmt "%h" f
  | J.Str s -> Format.fprintf fmt "%S" s
  | J.List vs ->
    Format.fprintf fmt "[%a]" (Format.pp_print_list pp_value) vs
  | J.Obj fs ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list (fun fmt (k, v) -> Format.fprintf fmt "%s: %a" k pp_value v))
      fs

let value = Alcotest.testable pp_value ( = )

(* A document exercising every constructor, nesting, and the string
   escapes the emitters produce (quotes, backslashes, newlines, raw
   control bytes). *)
let sample =
  J.Obj
    [ J.schema 7;
      ("bench", J.Str "blkperf");
      ("empty_list", J.List []);
      ("empty_obj", J.Obj []);
      ("nothing", J.Null);
      ("flags", J.List [ J.Bool true; J.Bool false ]);
      ("negative", J.Int (-42));
      ("big", J.Int 1_000_000_007);
      ("ratio", J.fnum 0.123456);
      ("whole", J.Float 100.);
      ("tiny", J.Float 1.5e-9);
      ("nasty", J.Str "a \"quoted\" \\ back\nslash \001 ctrl");
      ( "points",
        J.List
          [ J.Obj [ ("depth", J.Int 1); ("kiops", J.Float 75.6) ];
            J.Obj [ ("depth", J.Int 16); ("kiops", J.Float 334.2) ] ] ) ]

let test_roundtrip () =
  match J.of_string (J.to_string sample) with
  | Ok v -> Alcotest.check value "print |> parse is the identity" sample v
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_fnum () =
  Alcotest.check value "rounded to 3 decimals" (J.Float 0.123) (J.fnum 0.1234999);
  Alcotest.check value "dp override" (J.Float 7.1) (J.fnum ~dp:1 7.06);
  Alcotest.check value "nan is null" J.Null (J.fnum Float.nan);
  Alcotest.check value "infinity is null" J.Null (J.fnum Float.infinity)

(* Whole-float fields must reparse as floats, not collapse into ints —
   a gate comparing kpps values would otherwise see 100 <> 100.0. *)
let test_float_identity () =
  match J.of_string (J.to_string (J.Float 100.)) with
  | Ok (J.Float f) -> Alcotest.(check (float 0.)) "value survives" 100. f
  | Ok v -> Alcotest.failf "parsed as %s, not a float" (J.to_string v)
  | Error e -> Alcotest.fail e

(* Excerpt in the exact style of the historical hand-printf emitters
   (sud-bench/2 .. /6): the parser must keep reading the checked-in
   baselines older sessions wrote. *)
let legacy =
  {|{
  "schema": "sud-bench/4",
  "micro": {
    "ring_push_pop": { "name": "uchan ring push+pop", "ns_per_op": 10.0 },
    "gone": { "name": "removed", "ns_per_op": null }
  },
  "points": [
    { "queues": 1, "kpps": 508.9, "rxq_frames": [150335] },
    { "queues": 4, "kpps": 1126.5, "rxq_frames": [86397, 86398] }
  ],
  "seed": "0xB12A7",
  "pass": true
}
|}

let test_legacy_lookups () =
  let doc =
    match J.of_string legacy with
    | Ok v -> v
    | Error e -> Alcotest.failf "legacy style did not parse: %s" e
  in
  Alcotest.(check (option (float 0.)))
    "micro path" (Some 10.0)
    Option.(bind (J.path doc [ "micro"; "ring_push_pop"; "ns_per_op" ]) J.as_float);
  Alcotest.(check (option (float 0.)))
    "null estimate reads as absent" None
    Option.(bind (J.path doc [ "micro"; "gone"; "ns_per_op" ]) J.as_float);
  Alcotest.(check (option string)) "schema" (Some "sud-bench/4")
    Option.(bind (J.member doc "schema") J.as_str);
  Alcotest.(check (option bool)) "pass" (Some true)
    Option.(bind (J.member doc "pass") J.as_bool);
  let pts = Option.get Option.(bind (J.member doc "points") J.as_list) in
  (match J.find_point pts [ ("queues", J.Int 4) ] with
   | Some p ->
     Alcotest.(check (option (float 0.)))
       "sweep-row lookup" (Some 1126.5)
       Option.(bind (J.member p "kpps") J.as_float)
   | None -> Alcotest.fail "find_point missed queues=4");
  Alcotest.(check (option value))
    "find_point misses cleanly" None
    (J.find_point pts [ ("queues", J.Int 2) ])

let test_checked_in_baselines () =
  (* Tests run sandboxed away from the repo root, so round-trip a
     representative whole document instead: every construct the real
     baselines use is in [sample] and [legacy]. *)
  match J.of_string legacy with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match J.of_string (J.to_string doc) with
     | Ok doc2 -> Alcotest.check value "reprint of legacy reparses equal" doc doc2
     | Error e -> Alcotest.failf "reprint did not parse: %s" e)

let test_errors () =
  let fails s =
    match J.of_string s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  fails "";
  fails "{";
  fails "[1, 2";
  fails "{\"a\" 1}";
  fails "\"unterminated";
  fails "{\"a\": 1} trailing";
  fails "nul";
  fails "{\"a\": 00x}"

let suite =
  [ Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "fnum rounding and null" `Quick test_fnum;
    Alcotest.test_case "whole floats stay floats" `Quick test_float_identity;
    Alcotest.test_case "legacy emitter style parses, readers work" `Quick
      test_legacy_lookups;
    Alcotest.test_case "reprinted documents reparse equal" `Quick
      test_checked_in_baselines;
    Alcotest.test_case "malformed inputs are rejected" `Quick test_errors ]
