(* sud-blk: the block datapath end to end — hosted NVMe driver, kernel
   block layer, proxy, and the crash-consistent recovery machinery. *)

open Helpers

type bw = {
  nvme : Nvme_dev.t;
  bdf : Bus.bdf;
  sp : Safe_pci.t;
}

let setup_nvme (k : Kernel.t) =
  let nvme = Nvme_dev.create k.Kernel.eng () in
  let bdf = Kernel.attach_pci k (Nvme_dev.device nvme) in
  let sp = Safe_pci.init k in
  { nvme; bdf; sp }

let page ~seed =
  Bytes.init Blkdev.page_size (fun i -> Char.chr ((seed * 31 + i) land 0xff))

let sector_of_page data s = Bytes.sub data (s * Blkdev.sector_size) Blkdev.sector_size

let check_media_page nvme ~lba data what =
  for s = 0 to Blkdev.page_sectors - 1 do
    match Nvme_dev.media_sector nvme ~lba:(lba + s) with
    | None -> Alcotest.failf "%s: sector %d never persisted" what (lba + s)
    | Some sec ->
      Alcotest.(check string)
        (Printf.sprintf "%s: sector %d" what (lba + s))
        (Bytes.to_string (sector_of_page data s))
        (Bytes.to_string sec)
  done

(* Hosted driver registers; write -> cache, fsync -> media, read back. *)
let test_smoke () =
  run_in_kernel setup_nvme (fun k w ->
      let s = ok_or_fail "start_blk" (Driver_host.launch k w.sp (Driver_host.blk ()) ~bdf:w.bdf Nvme.driver) in
      let bd = Driver_host.blk_blkdev s in
      Alcotest.(check int) "capacity" (Nvme_dev.capacity w.nvme) (Blkdev.capacity bd);
      Alcotest.(check bool) "registered in the kernel table" true
        (Blkdev.find k.Kernel.blk "nvme" <> None);
      let data = page ~seed:1 in
      ok_or_fail "write" (Blkdev.write bd ~lba:0 data ());
      Alcotest.(check bool) "not durable before fsync" true
        (Nvme_dev.media_sector w.nvme ~lba:0 = None);
      ok_or_fail "fsync" (Blkdev.fsync bd ());
      check_media_page w.nvme ~lba:0 data "after fsync";
      let rd = ok_or_fail "read" (Blkdev.read bd ~lba:0 ~sectors:Blkdev.page_sectors ()) in
      Alcotest.(check string) "read back" (Bytes.to_string data) (Bytes.to_string rd);
      (* A cold read (uncached page) round-trips through the driver. *)
      let data2 = page ~seed:2 in
      ok_or_fail "write 2" (Blkdev.write bd ~lba:8 data2 ());
      ok_or_fail "fsync 2" (Blkdev.fsync bd ());
      let rd2 = ok_or_fail "read 2" (Blkdev.read bd ~lba:8 ~sectors:Blkdev.page_sectors ()) in
      Alcotest.(check string) "read back 2" (Bytes.to_string data2) (Bytes.to_string rd2);
      Driver_host.kill_blk s)

(* FUA write-through: durable without any flush. *)
let test_fua () =
  run_in_kernel setup_nvme (fun k w ->
      let s = ok_or_fail "start_blk" (Driver_host.launch k w.sp (Driver_host.blk ()) ~bdf:w.bdf Nvme.driver) in
      let bd = Driver_host.blk_blkdev s in
      let data = page ~seed:7 in
      ok_or_fail "write_fua" (Blkdev.write_fua bd ~lba:16 data ());
      check_media_page w.nvme ~lba:16 data "after FUA";
      Alcotest.(check int) "fua reached the device" 1 (Nvme_dev.fua_writes w.nvme);
      Driver_host.kill_blk s)

let blk_policy =
  { Supervisor.default_policy with
    Supervisor.tick_ns = 1_000_000;
    hang_timeout_ns = 10_000_000;
    backoff_initial_ns = 500_000;
    backoff_max_ns = 10_000_000;
    max_restarts = 100 }

let nvme_factory ~attempt:_ = Nvme.driver

(* Supervised kill: acked-but-unflushed writes survive the crash via
   replay — the device write cache is volatile and reset drops it, so
   only the proxy's retention can bring the data back. *)
let test_crash_replay () =
  run_in_kernel setup_nvme (fun k w ->
      let sv =
        ok_or_fail "start_blk supervised"
          (Supervisor.start_blk k w.sp ~policy:blk_policy ~bdf:w.bdf nvme_factory)
      in
      let bd = Option.get (Supervisor.blkdev sv) in
      let data = page ~seed:3 in
      ok_or_fail "write" (Blkdev.write bd ~lba:0 data ());
      ok_or_fail "fsync" (Blkdev.fsync bd ());
      (* A second write, acked but NOT flushed: lives only in the device's
         volatile cache and the proxy's retention. *)
      let data2 = page ~seed:4 in
      ok_or_fail "write unflushed" (Blkdev.write bd ~lba:0 data2 ());
      Alcotest.(check bool) "write is cached, not durable" true
        (Nvme_dev.media_sector w.nvme ~lba:0 <> None);
      (* Crash the driver: FLR drops the device cache. *)
      (match Supervisor.proc sv with
       | Some p -> Process.kill p
       | None -> Alcotest.fail "no driver process");
      let rec wait budget =
        if budget = 0 then Alcotest.fail "no recovery"
        else if
          (Supervisor.stats sv).Supervisor.st_restarts >= 1
          && Supervisor.state sv = Supervisor.Running
        then ()
        else begin
          ignore (Fiber.sleep k.Kernel.eng 1_000_000 : Fiber.wake);
          wait (budget - 1)
        end
      in
      wait 1_000;
      (* The acked write must survive: fsync through the fresh generation,
         then the media is the ground truth. *)
      ok_or_fail "fsync after recovery" (Blkdev.fsync bd ());
      check_media_page w.nvme ~lba:0 data2 "acked write after crash";
      let rd = ok_or_fail "read" (Blkdev.read bd ~lba:0 ~sectors:Blkdev.page_sectors ()) in
      Alcotest.(check string) "cache agrees" (Bytes.to_string data2) (Bytes.to_string rd);
      Supervisor.stop sv)

(* A dropped flush must never fake durability: the fsync blocks, the
   request timeout escalates, and the post-recovery replay makes the
   data durable before fsync returns. *)
let test_dropped_flush () =
  run_in_kernel setup_nvme (fun k w ->
      let sv =
        ok_or_fail "start_blk supervised"
          (Supervisor.start_blk k w.sp ~policy:blk_policy ~bdf:w.bdf nvme_factory)
      in
      let bd = Option.get (Supervisor.blkdev sv) in
      let data = page ~seed:5 in
      ok_or_fail "write" (Blkdev.write bd ~lba:24 data ());
      Nvme_dev.inject_drop_flush w.nvme;
      ok_or_fail "fsync rides out the recovery" (Blkdev.fsync bd ());
      check_media_page w.nvme ~lba:24 data "after dropped flush";
      Alcotest.(check bool) "a recovery happened" true
        ((Supervisor.stats sv).Supervisor.st_restarts >= 1);
      Supervisor.stop sv)

(* A corrupted completion id cannot fake durability either: the true
   victim stays in flight, blocks retention drops (flush-covering rule)
   and escalates by timeout; replay restores everything. *)
let test_corrupt_completion () =
  run_in_kernel setup_nvme (fun k w ->
      let sv =
        ok_or_fail "start_blk supervised"
          (Supervisor.start_blk k w.sp ~policy:blk_policy ~bdf:w.bdf nvme_factory)
      in
      let bd = Option.get (Supervisor.blkdev sv) in
      Nvme_dev.inject_corrupt_completion w.nvme ~mask:0x15;
      let data = page ~seed:6 in
      ok_or_fail "write" (Blkdev.write bd ~lba:32 data ());
      ok_or_fail "fsync" (Blkdev.fsync bd ());
      check_media_page w.nvme ~lba:32 data "after corrupt completion";
      Supervisor.stop sv)

let suite =
  [ Alcotest.test_case "sud-blk: hosted nvme serves write/fsync/read" `Quick test_smoke;
    Alcotest.test_case "sud-blk: FUA is write-through" `Quick test_fua;
    Alcotest.test_case "sud-blk: crash replay keeps acked writes" `Quick test_crash_replay;
    Alcotest.test_case "sud-blk: dropped flush cannot fake durability" `Quick
      test_dropped_flush;
    Alcotest.test_case "sud-blk: corrupt completion cannot fake durability" `Quick
      test_corrupt_completion ]
