(* sudctl's library layer: the `blk status` snapshot and the `trace
   smoke` gate run through the exact code paths the CLI does, so tier-1
   coverage extends to the administrator's tools. *)

let test_blk_status () =
  let s = Ctl.blk_status () in
  Alcotest.(check string) "supervisor running" "running" s.Ctl.bs_state;
  Alcotest.(check int) "no restarts" 0 s.Ctl.bs_restarts;
  Alcotest.(check int) "no detections" 0 s.Ctl.bs_detections;
  Alcotest.(check int) "no io errors" 0 s.Ctl.bs_io_errors;
  Alcotest.(check int) "nothing in flight after the probe" 0 s.Ctl.bs_inflight;
  Alcotest.(check int) "nothing retained after the probe" 0 s.Ctl.bs_retained;
  Alcotest.(check string) "device name" "nvme" s.Ctl.bs_name;
  Alcotest.(check bool) "capacity reported" true (s.Ctl.bs_capacity_sectors > 0);
  Alcotest.(check bool) "probe wrote" true (s.Ctl.bs_writes_ok > 0);
  Alcotest.(check bool) "probe read back" true (s.Ctl.bs_reads_ok > 0);
  Alcotest.(check bool) "fsync raised a flush barrier" true (s.Ctl.bs_flush_barriers >= 1);
  Alcotest.(check bool) "queue-pair summary present" true
    (String.length s.Ctl.bs_qp_summary > 0)

let suite = [ Alcotest.test_case "blk status snapshot is healthy" `Quick test_blk_status ]
