(** The Linux-driver-facing API ("kenv").

    Device drivers in [lib/drivers/] are written once against these
    records — registers via {!mmio}/{!pio}, DMA-capable memory via
    {!dma_region}, config space, IRQs, timers — exactly the surface a
    Linux PCI driver uses.  The {e same driver code} then runs in two
    environments, which is the paper's headline property:

    - {!Kenv_native} builds a [pcidev] with direct hardware access for a
      trusted in-kernel driver (the baseline in Figure 8);
    - {!Sud_uml} builds one whose every operation goes through SUD's safe
      PCI device files and uchan downcalls, for an untrusted user-space
      driver.

    All accessors charge CPU time to the calling context so the two
    environments are comparable in the benchmarks. *)

type mmio = {
  mmio_read : off:int -> size:int -> int;
  mmio_write : off:int -> size:int -> int -> unit;
}

type pio = {
  pio_read : off:int -> size:int -> int;
  pio_write : off:int -> size:int -> int -> unit;
}

type dma_region = {
  dma_addr : int;
      (** the bus address to program into the device (an IO virtual
          address under SUD, a physical address in-kernel) *)
  dma_size : int;
  dma_read : off:int -> len:int -> bytes;
  dma_write : off:int -> bytes -> unit;
}

(** 32/64-bit little-endian helpers over a [dma_region]. *)

val dma_get32 : dma_region -> off:int -> int
val dma_set32 : dma_region -> off:int -> int -> unit
val dma_get64 : dma_region -> off:int -> int64
val dma_set64 : dma_region -> off:int -> int64 -> unit

type pcidev = {
  pd_vendor : int;
  pd_device : int;
  pd_bdf : Bus.bdf;
  pd_cfg_read : off:int -> size:int -> int;
  pd_cfg_write : off:int -> size:int -> int -> (unit, string) result;
  pd_enable : unit -> (unit, string) result;
      (** pci_enable_device: memory/IO decoding + bus mastering *)
  pd_map_bar : int -> (mmio, string) result;
  pd_io_bar : int -> (pio, string) result;
  pd_alloc_dma : ?coherent:bool -> bytes:int -> unit -> (dma_region, string) result;
  pd_free_dma : dma_region -> unit;
  pd_request_irq : (unit -> unit) -> (unit, string) result;
      (** the [n = 1] instance of [pd_request_irqs]; kept for
          single-queue drivers *)
  pd_request_irqs : n:int -> (queue:int -> unit) -> (unit, string) result;
      (** Allocate [n] MSI-X vectors (one per queue) and install one
          handler over the block; the handler receives the queue index.
          Fails when the device's MSI-X table is too small or the
          environment can only deliver one vector. *)
  pd_free_irq : unit -> unit;
  pd_irq_ack : ?queue:int -> unit -> unit;
      (** Tell the environment interrupt processing finished on [queue]
          (default [0]; under SUD this unmasks that vector, in-kernel it
          is a no-op). *)
  pd_msix_vectors : unit -> int;
      (** How many distinct vectors this environment can deliver to the
          driver: the device's MSI-X table size, further clamped under
          SUD by the uchan queue count.  [1] when only MSI/INTx is
          available. *)
  pd_find_capability : int -> int option;
}

type env = {
  env_jiffies : unit -> int;        (** milliseconds since boot *)
  env_msleep : int -> unit;         (** sleep (fiber) for ms *)
  env_usleep : int -> unit;         (** sleep (fiber) for us — usleep_range *)
  env_udelay : int -> unit;         (** busy-wait: charges CPU for us *)
  env_may_sleep : unit -> bool;
      (** [in_atomic()] guard: false inside a native top half, always true
          for a SUD driver — its handlers run in process context, the
          paper's reason user-space drivers may block where in-kernel
          interrupt handlers cannot *)
  env_printk : string -> unit;
  env_spawn : name:string -> (unit -> unit) -> unit;
      (** a kernel-thread-like worker in the driver's context *)
  env_consume : int -> unit;        (** charge ns of driver CPU work *)
}

(** {1 Driver classes}

    Callback records are handed to the driver at probe time (they stand in
    for kernel functions like [netif_rx]); instance records are what probe
    returns (they stand in for the ops structs the driver registers). *)

type txbuf = {
  txb_addr : int;
      (** bus address of the frame payload: DMA drivers program this
          straight into a descriptor — no data copy in the driver *)
  txb_len : int;
  txb_token : int;
      (** opaque; hand back via [nc_tx_free] once the device is done *)
  txb_read : unit -> bytes;
      (** materialize the bytes — for programmed-IO drivers (ne2k) that
          must copy the frame into card memory themselves *)
}

type net_callbacks = {
  nc_rx : queue:int -> addr:int -> len:int -> unit;
      (** netif_rx: [addr] must lie inside one of the driver's DMA
          regions; the environment (proxy) validates and copies out.
          [queue] is the RX queue the frame arrived on — under SUD it
          selects the uchan ring the downcall rides.  Single-queue
          drivers pass [~queue:0]. *)
  nc_tx_free : queue:int -> token:int -> unit;
      (** the device finished transmitting this [txbuf] on [queue] *)
  nc_tx_done : queue:int -> unit;
      (** netif_wake_subqueue on [queue] *)
  nc_carrier : bool -> unit;        (** netif_carrier_on/off *)
}

type net_instance = {
  ni_mac : bytes;
  ni_tx_queues : int;
      (** TX/RX queue pairs this instance operates (>= 1); the
          environment sizes the netdev and uchan rings to match *)
  ni_open : unit -> (unit, string) result;
  ni_stop : unit -> unit;
  ni_xmit : queue:int -> txbuf -> [ `Ok | `Busy ];
      (** enqueue on TX [queue] *)
  ni_ioctl : cmd:int -> arg:int -> (int, string) result;
}

type net_driver = {
  nd_name : string;
  nd_ids : (int * int) list;
  nd_probe : env -> pcidev -> net_callbacks -> (net_instance, string) result;
}

type wifi_callbacks = {
  wc_net : net_callbacks;
  wc_scan_done : int list -> unit;  (** visible BSSIDs *)
  wc_bss_changed : int -> unit;     (** now associated with this BSSID *)
}

type wifi_instance = {
  wi_net : net_instance;
  wi_scan : unit -> (unit, string) result;
  wi_associate : bssid:int -> (unit, string) result;
  wi_bitrates : unit -> int list;
  wi_set_rate : int -> (unit, string) result;
}

type wifi_driver = {
  wd_name : string;
  wd_ids : (int * int) list;
  wd_probe : env -> pcidev -> wifi_callbacks -> (wifi_instance, string) result;
}

type audio_callbacks = { ac_period_elapsed : unit -> unit }

type audio_instance = {
  au_start : unit -> (unit, string) result;
  au_stop : unit -> unit;
  au_write : bytes -> int;          (** enqueue PCM; returns bytes accepted *)
  au_set_volume : int -> (unit, string) result;
  au_get_volume : unit -> (int, string) result;
}

type audio_driver = {
  ad_name : string;
  ad_ids : (int * int) list;
  ad_probe : env -> pcidev -> audio_callbacks -> (audio_instance, string) result;
}

type block_instance = {
  bl_capacity : unit -> int;        (** in 512-byte blocks *)
  bl_read : lba:int -> count:int -> (bytes, string) result;
  bl_write : lba:int -> bytes -> (unit, string) result;
}

(** {2 sud-blk: asynchronous multiqueue block drivers}

    Unlike the synchronous [block_instance] surface USB mass storage
    uses, an NVMe-style driver owns hardware queue pairs and completes
    requests out of band.  Requests are identified by the {e idempotency
    tag} the block proxy assigns — monotonically increasing per device
    and preserved across driver restarts, so a replayed request carries
    the same identity and cannot double-apply. *)

type blk_callbacks = {
  bc_complete : queue:int -> tag:int -> status:int -> unit;
      (** completion for a previously accepted submission; [status] 0 =
          success *)
}

type blkdev_instance = {
  bi_capacity : int;                (** in 512-byte sectors *)
  bi_queues : int;                  (** hardware queue pairs set up *)
  bi_submit :
    queue:int -> tag:int -> op:int -> lba:int -> count:int -> addr:int ->
    [ `Ok | `Busy ];
      (** queue one request; [op] is a [Proxy_proto.blk_op_*] value
          (writes may carry the [blk_op_fua] flag bit), [addr] the
          shared-buffer bus address (unused for flushes).  [`Busy] =
          submission queue full, resubmit after a completion. *)
}

type blk_driver = {
  bd_name : string;
  bd_ids : (int * int) list;
  bd_probe : env -> pcidev -> blk_callbacks -> (blkdev_instance, string) result;
}

type input_callbacks = { ic_key : int -> unit }

type usb_dev_handle = {
  ud_address : int;
  ud_class : int;                   (** 0x03 HID, 0x08 mass storage *)
  ud_control : setup:bytes -> dir_in:bool -> len:int -> (bytes, string) result;
  ud_bulk_out : ep:int -> bytes -> (unit, string) result;
  ud_bulk_in : ep:int -> len:int -> (bytes, string) result;
  ud_interrupt_in : ep:int -> len:int -> (bytes option, string) result;
}

type usb_host_instance = {
  uh_enumerate : unit -> (usb_dev_handle list, string) result;
      (** reset ports, assign addresses, read device descriptors *)
}

type usb_host_driver = {
  ud_name : string;
  ud_ids : (int * int) list;
  ud_probe : env -> pcidev -> (usb_host_instance, string) result;
}

val charge : Cpu.t -> label:string -> int -> unit
(** Charge CPU: blocking [consume] when called from a fiber, non-blocking
    [account] from event context (interrupt handlers). *)
