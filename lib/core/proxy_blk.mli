(** The kernel block proxy (sud-blk): {!Blkdev} requests become
    [up_blk_submit] upcalls; [down_blk_complete] downcalls become
    {!Blkdev.complete} calls.

    {b Crash consistency.}  Every request carries a monotonically
    increasing idempotency tag that survives driver generations in the
    {!persist} record, along with the in-flight table and the
    unflushed-retention list (completed writes not yet proven durable
    by a Flush completion).  After a supervised restart, {!resume}
    replays both sets in tag order and owes a trailing barrier;
    {!Blkdev.complete} fires upstream completions at most once, so
    replay is idempotent: {e no acknowledged write is ever lost, and no
    unacknowledged write becomes visible without being acknowledged}.

    Retention drops follow the {e flush-covering rule}: a Flush
    completion [F] drops a retained write [W] iff [W] completed before
    [F] was submitted {e and} no in-flight request has a tag older than
    [F] — the second clause defends against forged completion ids,
    whose true victim stays in flight with an older tag and escalates
    by timeout. *)

type t

(** Driver-generation-independent state: tags, in-flight table,
    unflushed retention, the surviving {!Blkdev.t}.  Create one per
    device and pass it to every generation via [?adopt]. *)
type persist

val persist_create : unit -> persist
val persist_blkdev : persist -> Blkdev.t option
val persist_inflight : persist -> int
val persist_retained : persist -> int

val create :
  Kernel.t ->
  chan:Uchan.t ->
  grant:Safe_pci.grant ->
  pool:Bufpool.t ->
  name:string ->
  ?request_timeout_ns:int ->
  ?parked:bool ->
  ?adopt:persist ->
  unit ->
  t
(** [request_timeout_ns] (default 10 ms) bounds how long a submitted
    request may stay uncompleted before {!hung} reports it — the
    escalation path for dropped/corrupted completions and dropped
    flushes.

    With [~parked:true] (warm standby) the proxy may share the live
    generation's [?adopt] persist record but treats it as read-only:
    registration is recorded (geometry + ready broadcast) without
    touching persist, blkdev or issuer; completions are counted as
    forged; quiesce does not detach; {!resume} refuses to serve until
    {!adopt} swaps the proxy in. *)

val irq_sink : t -> queue:int -> unit
(** Forward a device interrupt to the driver on the matching ring. *)

val wait_ready : t -> timeout_ns:int -> Blkdev.t option
(** Block until the driver registers its block device (or time out). *)

val wait_registered : t -> timeout_ns:int -> bool
(** Like {!wait_ready} but keyed on the registration downcall alone, so
    it is also satisfied by a {e parked} registration (which leaves the
    blkdev with the live generation) — the warm-standby readiness
    probe. *)

type Proxy_class.state += Blk_state of persist
(** The blk class's handoff payload: the generation-independent persist
    record (tags, in-flight table, retention, surviving blkdev). *)

val handoff : t -> Proxy_class.state
(** Snapshot the persist record ({!Blk_state}).  Idempotent. *)

val adopt : t -> Proxy_class.state -> unit
(** Install a handoff payload.  On a parked proxy this adopts the
    persist record (applying the recorded geometry to the surviving
    blkdev) and unparks it so {!resume} may replay and reattach.  On a
    live proxy it is a no-op. *)

val blkdev : t -> Blkdev.t option
val persist : t -> persist
val capacity : t -> int
val inflight : t -> int
val retained : t -> int

val inflight_flush : t -> bool
(** A flush barrier is currently in flight — the window the soak
    harness crashes into for its crash-mid-barrier fault class. *)

val inflight_summary : t -> string
(** One line per in-flight request (oldest first) plus the send-queue
    state — [sudctl blk status] and harness diagnostics. *)

val hung : t -> bool
val quiesce : t -> unit
(** Detach the block device (staging absorbs new requests) and admit no
    further submissions from this generation.  Idempotent. *)

val resume : t -> unit
(** Replay retention + in-flight in tag order on this generation's
    channel, owe a trailing barrier, and reattach the device. *)

val unregister : t -> unit

val instance : t -> Proxy_class.instance
(** This proxy as a member of the unified device-class API
    (class name ["blk"]). *)
