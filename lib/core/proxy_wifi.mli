(** The wireless proxy driver (600 lines in Figure 5).

    Extends the Ethernet proxy with 802.11 management and the paper's
    §3.1.1 mirrored-shared-state technique: the supported bitrate set is
    mirrored into the kernel when the driver registers, so the kernel's
    non-preemptable wireless paths can query it {e without an upcall};
    enabling a rate from such a context queues an {e asynchronous} upcall
    instead of blocking. *)

type t

val create :
  Kernel.t ->
  chan:Uchan.t ->
  grant:Safe_pci.grant ->
  pool:Bufpool.t ->
  name:string ->
  ?defensive_copy:bool ->
  unit ->
  t

val net : t -> Proxy_net.t
val irq_sink : t -> queue:int -> unit
val netdev : t -> Netdev.t option
val wait_ready : t -> timeout_ns:int -> Netdev.t option

val scan : t -> (int list, string) result
(** Trigger a scan and wait (with timeout) for the firmware's
    completion event; returns visible BSSIDs. *)

val associate : t -> bssid:int -> (unit, string) result
(** Synchronous (interruptible) upcall; completion is reflected in the
    mirrored state. *)

val bitrates : t -> int list
(** Mirrored — safe to call from atomic context, no upcall. *)

val set_rate : t -> int -> unit
(** Asynchronous upcall — also safe from atomic context. *)

val current_bss : t -> int option
(** Mirrored; updated by the driver's bss_changed downcalls. *)

val instance : t -> Proxy_class.instance
(** This proxy behind the class-independent supervision surface. *)
