(** Per-driver resource ledger.

    Bounds what the kernel holds {e on a driver's behalf} — device
    grants, live DMA mappings and the IO-page-table pages backing them,
    uchan ring memory — plus a per-queue token bucket on notifications
    and IRQ kicks.  One quota is created per supervised driver and
    survives restarts with the generation.

    Exhaustion produces backpressure (a bounded wait for capacity, then
    a counted denial) instead of kernel allocation.  Driver-side
    notification kicks are never suppressed — a dry bucket counts an
    overflow the supervisor escalates; kernel-side IRQ forwarding is
    genuinely dropped when dry (the masked vector's pending bit latches
    and the ack-time replay keeps the device live).

    Metrics live under subsystem ["quota"], labelled
    [("driver", name)]: counters [denied], [notify_overflow],
    [irq_kicks_dropped]; gauges [dma_bytes], [uchan_bytes]. *)

type limits = {
  max_grants : int;          (** concurrently open device grants *)
  max_dma_bytes : int;       (** live DMA-mapped bytes *)
  max_iopt_pages : int;      (** IO-page-table pages backing the mappings *)
  max_uchan_bytes : int;     (** uchan ring slot memory *)
  notify_burst : int;        (** token bucket depth, per queue *)
  notify_rate : int;         (** bucket refill, tokens per second *)
}

val unlimited : limits
(** No limit anywhere; token buckets never run dry. *)

val default_limits : limits
(** Generous but finite: invisible to honest drivers, binding long
    before a malicious one hurts the kernel. *)

type t

val create : Engine.t -> ?limits:limits -> name:string -> unit -> t
(** [limits] defaults to {!default_limits}. *)

val name : t -> string
val limits : t -> limits

(** {1 Ledger charges}

    Each charge waits a bounded time for capacity (a dying generation
    may be mid-release), then fails with a counted denial.  Releases
    never fail and clamp at zero. *)

val charge_grant : t -> (unit, string) result
val release_grant : t -> unit

val charge_dma : t -> bytes:int -> pages:int -> (unit, string) result
(** Charges [bytes] of DMA-mapped memory plus the IO-page-table pages
    implied by mapping [pages] 4K pages ({!iopt_pages_for}). *)

val release_dma : t -> bytes:int -> pages:int -> unit

val charge_uchan : t -> bytes:int -> (unit, string) result
val release_uchan : t -> bytes:int -> unit

val iopt_pages_for : pages:int -> int
(** Leaf PTE pages (512 entries each) plus one interior page. *)

val ring_bytes : slots:int -> queues:int -> int
(** Uchan ring footprint: [queues] ring pairs of [slots] slots. *)

val negotiate_queues : t -> slots:int -> queues:int -> int
(** Clamp a requested queue count so its ring footprint fits the
    remaining uchan budget (never below 1); the caller charges the
    clamped footprint.  Quota negotiation at [Driver_host.start]. *)

(** {1 Notification / IRQ-kick token bucket (per queue)} *)

val note_notify : t -> queue:int -> unit
(** Driver-side kick observer: takes a token, counts an overflow when
    the bucket is dry.  Never suppresses the kick. *)

val take_irq_token : t -> queue:int -> bool
(** Kernel-side IRQ forwarding: [false] means the bucket is dry and the
    kick must be dropped (counted in [irq_kicks_dropped]). *)

(** {1 Introspection} *)

val grants : t -> int
val dma_bytes : t -> int
val iopt_pages : t -> int
val uchan_bytes : t -> int
val denials : t -> int
val notify_overflows : t -> int
val irq_kicks_dropped : t -> int
