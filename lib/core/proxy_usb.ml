let block_size = 512

type t = {
  k : Kernel.t;
  chan : Uchan.t;
  pool : Bufpool.t;
  name : string;
  mutable cap : int option;
  mutable quiescing : bool;
  blk_wait : Sync.Waitq.t;
  mutable key_handler : (int -> unit) option;
  mutable keys : int;
}

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let create k ~chan ~grant ~pool ~name () =
  let t =
    { k;
      chan;
      pool;
      name;
      cap = None;
      quiescing = false;
      blk_wait = Sync.Waitq.create ();
      key_handler = None;
      keys = 0 }
  in
  Uchan.set_downcall_handler chan (fun ~queue:_ m ->
      let kind = m.Msg.kind in
      if kind = Proxy_proto.down_blk_register then begin
        t.cap <- Some (Msg.arg m 0);
        ignore (Sync.Waitq.broadcast t.blk_wait : int);
        Some (Msg.make ~kind ~args:[ 0 ] ())
      end
      else if kind = Proxy_proto.down_input_key then begin
        t.keys <- t.keys + 1;
        (match t.key_handler with Some h -> h (Msg.arg m 0) | None -> ());
        None
      end
      else if kind = Proxy_proto.down_irq_ack then begin
        Safe_pci.irq_ack ~queue:(Msg.arg m 0) grant;
        None
      end
      else if kind = Proxy_proto.down_tx_free then begin
        Bufpool.free t.pool (Msg.arg m 0);
        None
      end
      else if kind = Proxy_proto.down_printk then begin
        klogf t Klog.Info "%s: %s" t.name (Bytes.to_string m.Msg.payload);
        None
      end
      else begin
        klogf t Klog.Warn "sud-usb(%s): unexpected downcall %d" t.name kind;
        None
      end);
  t

let wait_block t ~timeout_ns =
  let deadline = Engine.now t.k.Kernel.eng + timeout_ns in
  let rec loop () =
    match t.cap with
    | Some c -> Some c
    | None ->
      let left = deadline - Engine.now t.k.Kernel.eng in
      if left <= 0 then None
      else
        (match Sync.Waitq.wait_timeout t.k.Kernel.eng t.blk_wait left with
         | Fiber.Interrupted -> None
         | Fiber.Normal | Fiber.Timeout -> loop ())
  in
  loop ()

let capacity t = t.cap

(* Block data moves through shared buffers, at most one pool buffer per
   request; larger requests are split. *)
let max_blocks_per_req t = Bufpool.buf_size t.pool / block_size

let read_chunk t ~lba ~count =
  if t.quiescing then Error "driver quiesced"
  else
  match Bufpool.alloc t.pool with
  | None -> Error "no shared buffers"
  | Some buf ->
    let finish r =
      Bufpool.free t.pool buf.Bufpool.id;
      r
    in
    (match
       Uchan.transfer t.chan ~from:`Kernel Uchan.Sync
         (Msg.make ~kind:Proxy_proto.up_blk_read ~args:[ lba; count; buf.Bufpool.id ] ())
     with
     | Error Uchan.Hung -> finish (Error "driver hung")
     | Error Uchan.Interrupted -> finish (Error "interrupted")
     | Error Uchan.Closed -> finish (Error "driver is gone")
     | Ok r when Msg.arg r 0 <> 0 -> finish (Error (Bytes.to_string r.Msg.payload))
     | Ok _ ->
       (* Defensive copy out of the shared buffer. *)
       finish (Ok (Bufpool.read t.pool buf ~off:0 ~len:(count * block_size))))

let read_blocks t ~lba ~count =
  if count <= 0 then Error "count must be positive"
  else begin
    let chunk = max_blocks_per_req t in
    let rec go lba count acc =
      if count = 0 then Ok (Bytes.concat Bytes.empty (List.rev acc))
      else begin
        let n = min count chunk in
        match read_chunk t ~lba ~count:n with
        | Error e -> Error e
        | Ok b -> go (lba + n) (count - n) (b :: acc)
      end
    in
    go lba count []
  end

let write_chunk t ~lba data =
  if t.quiescing then Error "driver quiesced"
  else
  let count = Bytes.length data / block_size in
  match Bufpool.alloc t.pool with
  | None -> Error "no shared buffers"
  | Some buf ->
    Bufpool.write t.pool buf ~off:0 data;
    let finish r =
      Bufpool.free t.pool buf.Bufpool.id;
      r
    in
    (match
       Uchan.transfer t.chan ~from:`Kernel Uchan.Sync
         (Msg.make ~kind:Proxy_proto.up_blk_write ~args:[ lba; count; buf.Bufpool.id ] ())
     with
     | Error Uchan.Hung -> finish (Error "driver hung")
     | Error Uchan.Interrupted -> finish (Error "interrupted")
     | Error Uchan.Closed -> finish (Error "driver is gone")
     | Ok r when Msg.arg r 0 <> 0 -> finish (Error (Bytes.to_string r.Msg.payload))
     | Ok _ -> finish (Ok ()))

let write_blocks t ~lba data =
  if Bytes.length data = 0 || Bytes.length data mod block_size <> 0 then
    Error "write must be whole blocks"
  else begin
    let chunk = max_blocks_per_req t * block_size in
    let rec go lba off =
      if off >= Bytes.length data then Ok ()
      else begin
        let n = min chunk (Bytes.length data - off) in
        match write_chunk t ~lba (Bytes.sub data off n) with
        | Error e -> Error e
        | Ok () -> go (lba + (n / block_size)) (off + n)
      end
    in
    go lba 0
  end

let set_key_handler t h = t.key_handler <- Some h
let keys_received t = t.keys

(* Handoff carries the mirrored device attributes (storage capacity,
   key count), so adoption restores them without trusting the fresh
   driver to re-report honestly. *)
type Proxy_class.state += Usb_state of { cap : int option; keys : int }

let handoff t = Usb_state { cap = t.cap; keys = t.keys }

let adopt t st =
  match st with
  | Usb_state { cap; keys } ->
    t.cap <- cap;
    t.keys <- keys
  | _ -> ()

let instance t =
  Proxy_class.Instance
    ( (module struct
        type nonrec t = t

        let class_name = "usb"
        let chan t = t.chan
        let hung _ = false
        let quiesce t = t.quiescing <- true
        let resume t = t.quiescing <- false
        let degrade t = t.cap <- None
        let revive _ = ()   (* the register downcall restores the capacity *)
        let handoff = handoff
        let adopt = adopt
      end),
      t )
