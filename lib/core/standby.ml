(* Warm-standby slot manager: keeps one pre-forked generation parked and
   healthy so the supervisor can swap instead of cold-start.  Generic in
   the generation type — the supervisor instantiates it with
   Driver_host.warm — so the policy lives here (tag discipline, poison
   probing, rebuild-on-failure) and the mechanism lives with the owner.

   Tag discipline: every warm generation is built for exactly one live
   generation (the uchan epoch the next swap will expect).  A slot whose
   tag no longer matches the live generation is stale — its channel
   would stamp the wrong epoch — and is discarded, never swapped in.
   Likewise a parked generation that dies or violates conformance while
   waiting ([probe] returns a reason) is poisoned: discarded, counted,
   and rebuilt from scratch. *)

type status = Idle | Warming | Ready | Disabled

let status_name = function
  | Idle -> "idle"
  | Warming -> "warming"
  | Ready -> "ready"
  | Disabled -> "disabled"

type 'g t = {
  k : Kernel.t;
  name : string;
  warm : tag:int -> ('g, string) result;
  probe : 'g -> string option;          (* Some reason = poisoned *)
  discard : 'g -> unit;
  retry_ns : int;
  mutable slot : (int * 'g) option;     (* tag, parked generation *)
  mutable warming : bool;
  mutable enabled : bool;
  mutable want_tag : int;
  mutable warmed : int;
  mutable poisoned : int;
  mutable on_ready : unit -> unit;
}

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let create k ~name ~warm ~probe ~discard ?(retry_ns = 1_000_000) () =
  { k;
    name;
    warm;
    probe;
    discard;
    retry_ns;
    slot = None;
    warming = false;
    enabled = true;
    want_tag = -1;
    warmed = 0;
    poisoned = 0;
    on_ready = (fun () -> ()) }

let set_on_ready t f = t.on_ready <- f

let status t =
  if not t.enabled then Disabled
  else
    match t.slot with
    | Some _ -> Ready
    | None -> if t.warming then Warming else Idle

let stats t = (t.warmed, t.poisoned)

let drop_slot t =
  match t.slot with
  | Some (_, g) ->
    t.slot <- None;
    t.discard g
  | None -> ()

(* The warming fiber: build one generation for [tag], retrying a few
   times (driver init can transiently fail), and park it — unless the
   world moved on (tag changed, manager disabled) while we built. *)
let rec spawn_warmer t ~tag =
  t.warming <- true;
  ignore
    (Process.spawn_fiber (Process.kernel_process t.k.Kernel.procs)
       ~name:("standby:" ^ t.name)
       (fun () ->
          let rec attempt n =
            if (not t.enabled) || t.want_tag <> tag then ()
            else
              match t.warm ~tag with
              | Ok g ->
                if t.enabled && t.want_tag = tag && t.slot = None then begin
                  t.slot <- Some (tag, g);
                  t.warmed <- t.warmed + 1;
                  klogf t Klog.Info "sud: standby(%s): generation warm (tag %d)" t.name tag;
                  t.on_ready ()
                end
                else t.discard g
              | Error e ->
                if n < 3 then begin
                  ignore (Fiber.sleep t.k.Kernel.eng t.retry_ns : Fiber.wake);
                  attempt (n + 1)
                end
                else
                  klogf t Klog.Warn "sud: standby(%s): could not warm a generation: %s"
                    t.name e
          in
          attempt 0;
          t.warming <- false;
          (* The live generation may have moved on while we warmed;
             converge instead of leaving a stale slot behind. *)
          if t.enabled && t.want_tag <> tag then ensure t ~tag:t.want_tag)
     : Fiber.t)

and ensure t ~tag =
  if t.enabled then begin
    t.want_tag <- tag;
    (match t.slot with
     | Some (g_tag, _) when g_tag <> tag ->
       klogf t Klog.Info "sud: standby(%s): discarding stale standby (tag %d, want %d)"
         t.name g_tag tag;
       drop_slot t
     | Some (_, g) ->
       (match t.probe g with
        | None -> ()
        | Some why ->
          t.poisoned <- t.poisoned + 1;
          klogf t Klog.Warn
            "sud: standby(%s): parked standby poisoned (%s); discarding and rebuilding"
            t.name why;
          drop_slot t)
     | None -> ());
    if t.slot = None && not t.warming then spawn_warmer t ~tag
  end

let take t ~tag =
  match t.slot with
  | Some (g_tag, g) when t.enabled && g_tag = tag ->
    (* One last poison check at the swap instant: a standby that died
       while parked must never be installed. *)
    (match t.probe g with
     | None ->
       t.slot <- None;
       Some g
     | Some why ->
       t.poisoned <- t.poisoned + 1;
       klogf t Klog.Warn "sud: standby(%s): standby poisoned at swap (%s); cold path" t.name
         why;
       drop_slot t;
       None)
  | Some _ | None -> None

let peek t =
  match t.slot with
  | Some (_, g) -> Some g
  | None -> None

let disable t =
  t.enabled <- false;
  drop_slot t
