type t = {
  k : Kernel.t;
  chan : Uchan.t;
  grant : Safe_pci.grant;
  pool : Bufpool.t;
  name : string;
  defensive_copy : bool;
  adopt : Netdev.t option;       (* surviving netdev from a prior driver generation *)
  mutable dev : Netdev.t option;
  (* Warm-standby parking: a parked proxy lets its driver initialize and
     register, but records the registration instead of touching the
     netstack — the kernel-facing netdev stays with the live generation
     until the supervisor swaps this proxy in via [adopt]. *)
  mutable parked : bool;
  mutable pending_attach : (bytes * int) option;   (* mac, tx_queues *)
  ready : Sync.Waitq.t;
  mutable is_hung : bool;
  (* Lifecycle gate: between quiesce and resume the proxy admits no new
     upcalls, so nothing enters the channel of a generation about to be
     killed.  Transmits bounce as Xmit_busy and land in the supervisor's
     backlog for replay. *)
  mutable quiescing : bool;
  rx_bad : Sud_obs.Metrics.counter;
  rx_csum_bad : Sud_obs.Metrics.counter;
  (* Defensive-copy buffer recycling: freed buffers keyed by size, so a
     steady-state RX flood allocates nothing per frame.  The skb hands
     its buffer back through [Skbuff.recycle] once the stack is done. *)
  rx_bufs : (int, int * bytes list) Hashtbl.t;
  pool_hits : Sud_obs.Metrics.counter;
  pool_fresh : Sud_obs.Metrics.counter;
  (* IRQ-coalescing observability: frames delivered on each ring since
     that queue's last irq-ack downcall.  Each ack observes the count
     into the poll-batch histogram. *)
  frames_since_ack : int array;
  frames_per_poll : Sud_obs.Metrics.histogram;
  budget_exhausted : Sud_obs.Metrics.counter array;
}

(* One NAPI budget round on the driver side (e1000's [napi_budget]); a
   poll that drained at least this many frames before acking had to run
   extra budget rounds, which is the "stayed in polling mode" signal. *)
let napi_budget_hint = 64

let rx_pool_cap = 64            (* retained free buffers per size class *)

let pool_get t len =
  match Hashtbl.find_opt t.rx_bufs len with
  | Some (n, b :: rest) ->
    Hashtbl.replace t.rx_bufs len (n - 1, rest);
    Sud_obs.Metrics.incr t.pool_hits;
    b
  | Some (_, []) | None ->
    Sud_obs.Metrics.incr t.pool_fresh;
    Bytes.create len

let pool_put t b =
  let len = Bytes.length b in
  match Hashtbl.find_opt t.rx_bufs len with
  | Some (n, _) when n >= rx_pool_cap -> ()
  | Some (n, l) -> Hashtbl.replace t.rx_bufs len (n + 1, b :: l)
  | None -> Hashtbl.replace t.rx_bufs len (1, [ b ])

let model t = Cpu.cost_model t.k.Kernel.cpu

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let mark_hung t why =
  if not t.is_hung then begin
    t.is_hung <- true;
    if Sud_obs.Trace.on () then
      ignore
        (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.recall "uchan.rpc.last") ~cat:"proxy"
           ~name:"hung" ~attrs:[ "driver", t.name; "why", why ] ());
    klogf t Klog.Warn "sud-net(%s): driver appears hung (%s); kill and restart it" t.name why
  end

(* Clamp a device queue onto a ring/TX queue the channel and netdev
   actually have; a malicious driver naming a wild queue lands on 0. *)
let uq t q = if q >= 0 && q < Uchan.num_queues t.chan then q else 0

let dq t q =
  match t.dev with
  | Some dev when q >= 0 && q < Netdev.tx_queues dev -> q
  | _ -> 0

(* ---- netdev ops: kernel callbacks -> upcalls ---- *)

let do_open t () =
  match Uchan.transfer t.chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:Proxy_proto.up_net_open ()) with
  | Ok r when Msg.arg r 0 = 0 -> Ok ()
  | Ok r -> Error (Bytes.to_string r.Msg.payload)
  | Error Uchan.Hung ->
    mark_hung t "open upcall timed out";
    Error "driver hung"
  | Error Uchan.Interrupted -> Error "interrupted"
  | Error Uchan.Closed -> Error "driver is gone"

let do_stop t () =
  match Uchan.transfer t.chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:Proxy_proto.up_net_stop ()) with
  | Ok _ -> ()
  | Error Uchan.Hung -> mark_hung t "stop upcall timed out"
  | Error (Uchan.Interrupted | Uchan.Closed) -> ()

let do_ioctl t ~cmd ~arg =
  if t.quiescing then Error "driver quiesced"
  else
  match
    Uchan.transfer t.chan ~from:`Kernel Uchan.Sync
      (Msg.make ~kind:Proxy_proto.up_net_ioctl ~args:[ cmd; arg ] ())
  with
  | Ok r when Msg.arg r 0 = 0 -> Ok (Msg.arg r 1)
  | Ok r -> Error (Bytes.to_string r.Msg.payload)
  | Error Uchan.Hung ->
    mark_hung t "ioctl upcall timed out";
    Error "driver hung"
  | Error Uchan.Interrupted -> Error "interrupted"
  | Error Uchan.Closed -> Error "driver is gone"

let do_xmit t ~queue skb =
  if t.quiescing then Netdev.Xmit_busy
  else
  match Bufpool.alloc t.pool with
  | None -> Netdev.Xmit_busy       (* all shared buffers in flight *)
  | Some buf ->
    let len = Skbuff.length skb in
    if len > buf.Bufpool.size then begin
      Bufpool.free t.pool buf.Bufpool.id;
      Netdev.Xmit_busy
    end
    else begin
      (* The single data copy on the TX path: skb -> shared buffer.  The
         driver and the device then use the same bytes in place.  The
         upcall rides the ring matching the TX queue, so queue q's
         traffic wakes only the driver's queue-q service fiber. *)
      Driver_api.charge t.k.Kernel.cpu ~label:"kernel:sud"
        (Cost_model.copy_cost (model t) ~bytes:len);
      Bufpool.write t.pool buf ~off:0 skb.Skbuff.data;
      match
        Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Kernel Uchan.Async
          (Msg.make ~kind:Proxy_proto.up_net_xmit ~args:[ buf.Bufpool.id; len ] ())
      with
      | Ok () -> Netdev.Xmit_ok
      | Error Uchan.Hung ->
        Bufpool.free t.pool buf.Bufpool.id;
        mark_hung t "transmit queue stalled";
        Netdev.Xmit_busy
      | Error (Uchan.Interrupted | Uchan.Closed) ->
        Bufpool.free t.pool buf.Bufpool.id;
        Netdev.Xmit_busy
    end

(* ---- downcall servicing ---- *)

let handle_rx t ~queue m =
  let iova = Msg.arg m 0 and len = Msg.arg m 1 in
  match t.dev with
  | None -> ()
  | Some dev ->
    if len <= 0 || len > 9018 then begin
      Sud_obs.Metrics.incr t.rx_bad;
      klogf t Klog.Warn "sud-net(%s): netif_rx with bogus length %d" t.name len
    end
    else begin
      let buf = pool_get t len in
      match Safe_pci.read_driver_mem_into t.grant ~iova ~len ~dst:buf ~dst_off:0 with
      | Error e ->
        pool_put t buf;
        Sud_obs.Metrics.incr t.rx_bad;
        klogf t Klog.Warn "sud-net(%s): netif_rx rejected: %s" t.name e
      | Ok () ->
        (* The fused defensive-copy + checksum pass (§3.1.2): one sweep
           copies driver memory into the private (pooled) buffer and
           folds the transport checksum over the copy, so it costs
           max(copy, checksum) + epsilon instead of two full passes, and
           the verdict is immune to the driver rewriting its buffer. *)
        Driver_api.charge t.k.Kernel.cpu ~label:"kernel:sud"
          (Cost_model.fused_copy_checksum_cost (model t) ~bytes:len);
        if not (Netstack.frame_checksum_ok buf) then begin
          Sud_obs.Metrics.incr t.rx_csum_bad;
          pool_put t buf;
          klogf t Klog.Warn "sud-net(%s): bad checksum from driver, dropping frame" t.name
        end
        else begin
          t.frames_since_ack.(uq t queue) <- t.frames_since_ack.(uq t queue) + 1;
          let skb = Skbuff.of_bytes buf in
          skb.Skbuff.csum_verified <- true;
          (* Even if [refresh] below swaps the delivered bytes, the pooled
             buffer itself comes home when the stack is done with the skb. *)
          skb.Skbuff.recycle <- Some (fun () -> pool_put t buf);
          if not t.defensive_copy then begin
            (* Vulnerable configuration: the stack re-reads driver memory at
               delivery time. *)
            skb.Skbuff.shared_with_driver <- true;
            skb.Skbuff.refresh <-
              Some
                (fun () ->
                   match Safe_pci.read_driver_mem t.grant ~iova ~len with
                   | Ok fresh -> fresh
                   | Error _ -> skb.Skbuff.data)
          end;
          Netdev.netif_rx dev skb
        end
    end

let make_ops t =
  { Netdev.ndo_open = (fun () -> do_open t ());
    ndo_stop = (fun () -> do_stop t ());
    ndo_start_xmit = (fun ~queue skb -> do_xmit t ~queue skb);
    ndo_do_ioctl = (fun ~cmd ~arg -> do_ioctl t ~cmd ~arg) }

let handle_register t m =
  if Bytes.length m.Msg.payload = 6 && t.parked && t.pending_attach = None then begin
    (* Parked (warm-standby) registration: accept the driver's identity
       so it can finish initializing, but leave the netstack alone — the
       live generation still owns the netdev.  [adopt] applies this. *)
    t.pending_attach <- Some (Bytes.copy m.Msg.payload, max 1 (Msg.arg m 0));
    ignore (Sync.Waitq.broadcast t.ready : int);
    Some (Msg.make ~kind:Proxy_proto.down_net_register ~args:[ 0 ] ())
  end
  else if Bytes.length m.Msg.payload = 6 && not t.parked && t.dev = None then begin
    if Sud_obs.Trace.on () then
      ignore
        (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"proxy" ~name:"register"
           ~attrs:[ "driver", t.name ] ());
    let mac = Bytes.copy m.Msg.payload in
    (* The register downcall carries the driver's queue count; the netdev
       gets that many TX queues, clamped by the rings the channel has. *)
    let tx_queues = min (max 1 (Msg.arg m 0)) (Uchan.num_queues t.chan) in
    let ops = make_ops t in
    let dev =
      match t.adopt with
      | Some dev ->
        (* Supervised restart: the netdev survived the previous driver's
           death; the fresh generation takes it over in place instead of
           registering a new one. *)
        Netdev.set_mac dev mac;
        Netdev.set_ops dev ops;
        if Netstack.find_netdev t.k.Kernel.net (Netdev.name dev) = None then
          Netstack.register_netdev t.k.Kernel.net dev;
        dev
      | None ->
        let dev = Netdev.create ~name:t.name ~mac ~ops ~tx_queues () in
        Netstack.register_netdev t.k.Kernel.net dev;
        dev
    in
    t.dev <- Some dev;
    ignore (Sync.Waitq.broadcast t.ready : int);
    Some (Msg.make ~kind:Proxy_proto.down_net_register ~args:[ 0 ] ())
  end
  else Some (Msg.make ~kind:Proxy_proto.down_net_register ~args:[ 1 ] ())

let handle_downcall t ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.down_net_register then handle_register t m
  else if kind = Proxy_proto.down_netif_rx then begin
    handle_rx t ~queue m;
    None
  end
  else if kind = Proxy_proto.down_tx_free then begin
    Bufpool.free t.pool (Msg.arg m 0);
    (match t.dev with
     | Some dev when Netdev.subqueue_stopped dev ~queue:(dq t queue) ->
       Netdev.netif_wake_subqueue dev ~queue:(dq t queue)
     | Some _ | None -> ());
    None
  end
  else if kind = Proxy_proto.down_tx_done then begin
    (match t.dev with
     | Some dev -> Netdev.netif_wake_subqueue dev ~queue:(dq t queue)
     | None -> ());
    None
  end
  else if kind = Proxy_proto.down_carrier then begin
    (match t.dev with
     | Some dev -> if Msg.arg m 0 <> 0 then Netdev.netif_carrier_on dev else Netdev.netif_carrier_off dev
     | None -> ());
    None
  end
  else if kind = Proxy_proto.down_irq_ack then begin
    (* arg 0 names the device queue whose vector to unmask; older
       single-queue drivers send no args, and Msg.arg defaults to 0. *)
    let q = uq t (Msg.arg m 0) in
    let n = t.frames_since_ack.(q) in
    if n > 0 then begin
      (* How many frames one interrupt covered — the NAPI coalescing
         factor.  Zero-frame acks (TX-only polls, the runtime's redundant
         post-handler ack) would only dilute the histogram. *)
      t.frames_since_ack.(q) <- 0;
      Sud_obs.Metrics.observe t.frames_per_poll n;
      if n >= napi_budget_hint then Sud_obs.Metrics.incr t.budget_exhausted.(q)
    end;
    Safe_pci.irq_ack ~queue:(Msg.arg m 0) t.grant;
    None
  end
  else if kind = Proxy_proto.down_printk then begin
    klogf t Klog.Info "%s: %s" t.name (Bytes.to_string m.Msg.payload);
    None
  end
  else begin
    (* Unknown downcalls from an untrusted driver are logged, not trusted. *)
    klogf t Klog.Warn "sud-net(%s): unexpected downcall %d" t.name kind;
    None
  end

let create k ~chan ~grant ~pool ~name ?(defensive_copy = true) ?(parked = false) ?adopt () =
  let nq = Uchan.num_queues chan in
  let t =
    { k;
      chan;
      grant;
      pool;
      name;
      defensive_copy;
      adopt;
      dev = None;
      parked;
      pending_attach = None;
      ready = Sync.Waitq.create ();
      is_hung = false;
      quiescing = false;
      rx_bad =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"rx_validation_failures" ();
      rx_csum_bad =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"rx_checksum_failures" ();
      rx_bufs = Hashtbl.create 8;
      pool_hits =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"rx_pool_hits" ();
      pool_fresh =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"rx_pool_fresh" ();
      frames_since_ack = Array.make nq 0;
      frames_per_poll =
        Sud_obs.Metrics.histogram ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"frames_per_poll" ();
      budget_exhausted =
        Array.init nq (fun q ->
            Sud_obs.Metrics.counter
              ~labels:[ "driver", name; "queue", string_of_int q ]
              ~subsystem:"proxy" ~name:"napi_budget_exhausted" ()) }
  in
  Uchan.set_downcall_handler chan (fun ~queue m -> handle_downcall t ~queue m);
  t

let irq_sink t ~queue =
  if
    not
      (Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Kernel Uchan.Nonblock
         (Msg.make ~kind:Proxy_proto.up_interrupt ~args:[ queue ] ()))
  then
    (* Ring saturated with unserviced interrupts: the masking machinery in
       Safe_pci is already throttling; nothing more to do here. *)
    ()

let netdev t = t.dev

let wait_ready t ~timeout_ns =
  let deadline = Engine.now t.k.Kernel.eng + timeout_ns in
  let rec loop () =
    match t.dev with
    | Some dev -> Some dev
    | None ->
      let left = deadline - Engine.now t.k.Kernel.eng in
      if left <= 0 then None
      else
        match Sync.Waitq.wait_timeout t.k.Kernel.eng t.ready left with
        | Fiber.Interrupted -> None
        | Fiber.Normal | Fiber.Timeout -> loop ()
  in
  loop ()

let wait_registered t ~timeout_ns =
  let deadline = Engine.now t.k.Kernel.eng + timeout_ns in
  let registered () = t.dev <> None || t.pending_attach <> None in
  let rec loop () =
    if registered () then true
    else
      let left = deadline - Engine.now t.k.Kernel.eng in
      if left <= 0 then false
      else
        match Sync.Waitq.wait_timeout t.k.Kernel.eng t.ready left with
        | Fiber.Interrupted -> false
        | Fiber.Normal | Fiber.Timeout -> loop ()
  in
  loop ()

let hung t = t.is_hung

let quiesce t = t.quiescing <- true

(* A parked proxy must be adopted before it serves: unparking through
   resume alone would attach a standby the supervisor never swapped in. *)
let resume t = if not t.parked then t.quiescing <- false

let unregister t =
  match t.dev with
  | Some dev ->
    Netstack.unregister_netdev t.k.Kernel.net dev;
    t.dev <- None
  | None -> ()

(* ---- handoff / adopt: the generation-swap contract ---- *)

type Proxy_class.state += Net_state of { dev : Netdev.t option; up : bool }

let handoff t =
  Net_state
    { dev = t.dev;
      up = (match t.dev with Some d -> Netdev.is_up d | None -> false) }

let adopt t st =
  match st with
  | Net_state { dev; up = _ } ->
    if t.parked then begin
      (match t.pending_attach with
       | Some (mac, _txq) ->
         (* The surviving netdev keeps its identity (name, queue count,
            backlog); the standby's recorded registration supplies the
            fresh generation's MAC and ops. *)
         let target = match dev with Some _ as d -> d | None -> t.adopt in
         (match target with
          | Some d ->
            Netdev.set_mac d mac;
            Netdev.set_ops d (make_ops t);
            if Netstack.find_netdev t.k.Kernel.net (Netdev.name d) = None then
              Netstack.register_netdev t.k.Kernel.net d;
            t.dev <- Some d;
            ignore (Sync.Waitq.broadcast t.ready : int)
          | None ->
            klogf t Klog.Warn
              "sud-net(%s): adopt with no surviving netdev; awaiting fresh register" t.name)
       | None -> ());
      t.parked <- false;
      t.pending_attach <- None
    end
  | _ -> ()

let rx_validation_failures t = Sud_obs.Metrics.get t.rx_bad
let rx_checksum_failures t = Sud_obs.Metrics.get t.rx_csum_bad
let rx_pool_counters t = (Sud_obs.Metrics.get t.pool_hits, Sud_obs.Metrics.get t.pool_fresh)
let frames_per_poll t = t.frames_per_poll

let instance t =
  Proxy_class.Instance
    ( (module struct
        type nonrec t = t

        let class_name = "net"
        let chan t = t.chan
        let hung = hung
        let quiesce = quiesce
        let resume = resume
        let degrade = unregister

        (* Reattachment happens through the fresh driver's register
           downcall (possibly adopting the surviving netdev). *)
        let revive _ = ()
        let handoff = handoff
        let adopt = adopt
      end),
      t )
