(** USB host proxy.

    The paper's Figure 5 lists the USB host proxy at {e zero} additional
    lines: the whole USB stack (host controller driver, enumeration,
    class drivers) lives inside the driver process, and only the class
    results surface to the kernel — a block device (usb-storage, the
    §4 "we are working on a block device proxy" extension) and input
    events (usb-hid). *)

type t

val create :
  Kernel.t ->
  chan:Uchan.t ->
  grant:Safe_pci.grant ->
  pool:Bufpool.t ->
  name:string ->
  unit ->
  t

val wait_block : t -> timeout_ns:int -> int option
(** Wait for a storage device to register; returns its capacity in
    512-byte blocks. *)

val capacity : t -> int option

val read_blocks : t -> lba:int -> count:int -> (bytes, string) result
(** Synchronous upcall; data crosses in shared buffers, validated and
    copied out by the proxy. *)

val write_blocks : t -> lba:int -> bytes -> (unit, string) result

val set_key_handler : t -> (int -> unit) -> unit
(** Input events from a USB keyboard behind the same host controller. *)

val keys_received : t -> int

val instance : t -> Proxy_class.instance
(** This proxy behind the class-independent supervision surface. *)
