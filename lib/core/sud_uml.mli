(** SUD-UML: the user-space kernel-environment library (paper §3.3;
    5,000 lines in Figure 5).

    Runs inside the untrusted driver process.  It gives an unmodified
    driver the kernel API it expects ({!Driver_api.env} and
    {!Driver_api.pcidev}), implemented over SUD's safe device files
    (config access, MMIO/IO mappings, DMA regions, MSI) and the uchan
    (upcall dispatch, batched downcalls).

    Upcall dispatch follows the paper's §4.2 optimization: callbacks that
    may not block (packet transmit, interrupt) run inline in the idle
    loop; potentially-blocking callbacks (open, stop, ioctl) are handed
    to a pool of worker fibers. *)

type t

val create :
  Kernel.t ->
  proc:Process.t ->
  grant:Safe_pci.grant ->
  chan:Uchan.t ->
  pool:Bufpool.t ->
  t

val env : t -> Driver_api.env
val pcidev : t -> Driver_api.pcidev

val serve_net : t -> Driver_api.net_driver -> unit
(** Probe the driver and run the upcall dispatch loop until the channel
    closes or the process dies.  Call from the driver process's main
    fiber. *)

val serve_wifi : t -> Driver_api.wifi_driver -> unit
(** Like {!serve_net}, plus the 802.11 management upcalls; mirrors the
    supported-rate set to the kernel at registration. *)

val serve_audio : t -> Driver_api.audio_driver -> unit

val serve_blk : t -> Driver_api.blk_driver -> unit
(** Probe an asynchronous (NVMe-style) block driver, register the device
    ([down_blkdev_register] carries capacity and queue count) and serve
    the submission upcalls.  Submissions the hardware queue refuses park
    in a per-ring FIFO retried on every completion, so ordering is
    preserved end to end. *)

val serve_usb :
  t ->
  bind_storage:(Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result) ->
  bind_keyboard:
    (Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit) ->
  Driver_api.usb_host_driver ->
  unit
(** Probe the host controller, enumerate its bus, bind class drivers
    (mass storage -> block proxy; HID keyboard -> input downcalls) and
    serve block/input upcalls.  The binders come from the driver library
    (usb-storage / usb-hid class drivers). *)

val upcalls_handled : t -> int
val worker_dispatches : t -> int
(** Upcalls that were routed to a worker fiber because they may block. *)
