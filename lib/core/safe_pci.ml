type dma_alloc = {
  da_iova : int;
  da_phys : int;
  da_pages : int;
}

type reg_dev = {
  rd_bdf : Bus.bdf;
  mutable rd_owner : int;        (* uid allowed to open; 0 = root only *)
  mutable rd_grant : grant option;
}

(* One entry per granted interrupt vector; index = queue.  Mask,
   ack-pending and storm state are all per vector, so a storm on one RX
   queue quarantines that vector without silencing its siblings. *)
and vec_state = {
  vs_queue : int;
  vs_vector : int;
  mutable vs_masked : bool;
  mutable vs_awaiting_ack : bool;
  mutable vs_storms : int;
  mutable vs_quarantined : bool;
  vs_delivered : Sud_obs.Metrics.counter;   (* per-queue IRQ upcalls forwarded *)
}

and grant = {
  g : t;
  g_bdf : Bus.bdf;
  g_proc : Process.t;
  g_dev : Device.t;
  g_domain : Iommu.domain;
  mutable g_alive : bool;
  mutable g_next_iova : int;
  mutable g_allocs : dma_alloc list;
  mutable g_io_grants : (int * int) list;   (* (base, len) in the IOPB *)
  g_iopb : Ioport.Iopb.t;
  mutable g_vecs : vec_state array;         (* empty until setup_irqs *)
  mutable g_msix : bool;                    (* vectors ride MSI-X, not legacy MSI *)
  mutable g_sink : (queue:int -> unit) option;
  mutable g_amd_msi_mapped : bool;
  g_quota : Quota.t option;      (* per-driver ledger; charged for this
                                    grant, its DMA mappings and IRQ-kick
                                    tokens when present *)
}

and t = {
  k : Kernel.t;
  devices : (Bus.bdf, reg_dev) Hashtbl.t;
  mutable n_masks : int;
  mutable n_ir : int;
  mutable n_livelock : int;
  mutable n_cfg_denied : int;
  mutable n_fwd : int;
}

(* Figure 9's IO virtual addresses start here. *)
let iova_base = 0x42430000

let init k =
  { k; devices = Hashtbl.create 8; n_masks = 0; n_ir = 0; n_livelock = 0; n_cfg_denied = 0; n_fwd = 0 }

let register_device t bdf =
  if not (Hashtbl.mem t.devices bdf) then
    Hashtbl.add t.devices bdf { rd_bdf = bdf; rd_owner = 0; rd_grant = None }

let set_owner t bdf ~uid =
  match Hashtbl.find_opt t.devices bdf with
  | Some rd -> rd.rd_owner <- uid
  | None -> invalid_arg "Safe_pci.set_owner: device not registered"

let device_files t bdf =
  if Hashtbl.mem t.devices bdf then begin
    let base = Printf.sprintf "/sys/devices/pci0000:00/0000:%s/sud" (Bus.string_of_bdf bdf) in
    [ base ^ "/ctl"; base ^ "/mmio"; base ^ "/dma_coherent"; base ^ "/dma_caching" ]
  end
  else []

let model t = Cpu.cost_model t.k.Kernel.cpu

let proc_label g = "proc:" ^ Process.name g.g_proc

let charge g ns = Driver_api.charge g.g.k.Kernel.cpu ~label:(proc_label g) ns

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

(* ---- grant lifecycle ---- *)

let release grant =
  if grant.g_alive then begin
    grant.g_alive <- false;
    let t = grant.g in
    (* Quiesce the device before revoking its mappings. *)
    Pci_topology.cfg_write t.k.Kernel.topo grant.g_bdf ~off:Pci_cfg.command ~size:2 0;
    (Device.ops grant.g_dev).Device.reset ();
    if Array.length grant.g_vecs > 0 then begin
      Irq.free_irqs t.k.Kernel.irq
        ~vectors:(Array.map (fun vs -> vs.vs_vector) grant.g_vecs);
      grant.g_vecs <- [||]
    end;
    List.iter
      (fun da ->
         Iommu.unmap t.k.Kernel.iommu grant.g_domain ~iova:da.da_iova
           ~len:(da.da_pages * Bus.page_size);
         Phys_mem.free_pages t.k.Kernel.mem ~addr:da.da_phys ~pages:da.da_pages;
         match grant.g_quota with
         | Some q ->
           Quota.release_dma q ~bytes:(da.da_pages * Bus.page_size) ~pages:da.da_pages
         | None -> ())
      grant.g_allocs;
    grant.g_allocs <- [];
    (match grant.g_quota with Some q -> Quota.release_grant q | None -> ());
    List.iter
      (fun (base, len) -> Ioport.Iopb.revoke grant.g_iopb ~base ~len)
      grant.g_io_grants;
    grant.g_io_grants <- [];
    Iommu.detach t.k.Kernel.iommu ~source:grant.g_bdf;
    (match Hashtbl.find_opt t.devices grant.g_bdf with
     | Some rd -> rd.rd_grant <- None
     | None -> ());
    klogf t Klog.Info "sud: released device %s (driver %s)"
      (Bus.string_of_bdf grant.g_bdf) (Process.name grant.g_proc)
  end

let open_device t ?quota bdf ~proc =
  match Hashtbl.find_opt t.devices bdf with
  | None -> Error "device not registered with SUD"
  | Some rd ->
    if rd.rd_owner <> Process.uid proc && Process.uid proc <> 0 then
      Error "permission denied"
    else if rd.rd_grant <> None then Error "device busy (already opened)"
    else begin
      match Pci_topology.find_device t.k.Kernel.topo bdf with
      | None -> Error "no such PCI device"
      | Some dev ->
        match (match quota with None -> Ok () | Some q -> Quota.charge_grant q) with
        | Error e -> Error e
        | Ok () ->
        (* Start from a clean device: reset, decoding off, INTx disabled
           (SUD never allows legacy interrupts, §3.2.2). *)
        (Device.ops dev).Device.reset ();
        Pci_topology.cfg_write t.k.Kernel.topo bdf ~off:Pci_cfg.command ~size:2
          Pci_cfg.cmd_intx_disable;
        let domain = Iommu.attach t.k.Kernel.iommu ~source:bdf in
        let grant =
          { g = t;
            g_bdf = bdf;
            g_proc = proc;
            g_dev = dev;
            g_domain = domain;
            g_alive = true;
            g_next_iova = iova_base;
            g_allocs = [];
            g_io_grants = [];
            g_iopb = Ioport.Iopb.none ();
            g_vecs = [||];
            g_msix = false;
            g_sink = None;
            g_amd_msi_mapped = false;
            g_quota = quota }
        in
        rd.rd_grant <- Some grant;
        Process.on_exit proc (fun () -> release grant);
        (* On AMD IOMMUs the MSI window needs an explicit mapping for the
           device to interrupt at all; SUD installs it and can remove it
           to silence a rogue device. *)
        (match Iommu.mode t.k.Kernel.iommu with
         | Iommu.Amd_vi ->
           Iommu.map t.k.Kernel.iommu domain ~iova:Bus.msi_window_base
             ~phys:Bus.msi_window_base
             ~len:(Bus.msi_window_limit - Bus.msi_window_base) ~writable:true;
           grant.g_amd_msi_mapped <- true
         | Iommu.Intel_vtd _ -> ());
        klogf t Klog.Info "sud: %s opened %s" (Process.name proc) (Bus.string_of_bdf bdf);
        Ok grant
    end

let grant_bdf g = g.g_bdf
let grant_alive g = g.g_alive
let grant_quota g = g.g_quota
let grant_num_vectors g = Array.length g.g_vecs

let vec_of g queue =
  if queue < 0 || queue >= Array.length g.g_vecs then
    invalid_arg (Printf.sprintf "Safe_pci: grant has no vector for queue %d" queue);
  g.g_vecs.(queue)

let grant_storms g = Array.fold_left (fun acc vs -> acc + vs.vs_storms) 0 g.g_vecs

let grant_irqs_delivered g =
  Array.fold_left (fun acc vs -> acc + Sud_obs.Metrics.get vs.vs_delivered) 0 g.g_vecs
let grant_vector_storms g ~queue = (vec_of g queue).vs_storms
let vector_masked g ~queue = (vec_of g queue).vs_masked
let vector_quarantined g ~queue = (vec_of g queue).vs_quarantined

(* Function-level reset of a registered device that no driver currently
   owns — the supervisor's recovery step between killing one driver
   generation and starting the next.  Device model [reset] stands in for
   real PCIe FLR (see DESIGN.md); decoding stays off and INTx disabled
   until the next open. *)
let reset_device t bdf =
  match Hashtbl.find_opt t.devices bdf with
  | None -> Error "device not registered with SUD"
  | Some rd ->
    (match rd.rd_grant with
     | Some _ -> Error "device busy (grant outstanding)"
     | None ->
       (match Pci_topology.find_device t.k.Kernel.topo bdf with
        | None -> Error "no such PCI device"
        | Some dev ->
          (Device.ops dev).Device.reset ();
          Pci_topology.cfg_write t.k.Kernel.topo bdf ~off:Pci_cfg.command ~size:2
            Pci_cfg.cmd_intx_disable;
          klogf t Klog.Info "sud: function-level reset of %s" (Bus.string_of_bdf bdf);
          Ok ()))

let check_alive g = if not g.g_alive then failwith "Safe_pci: grant revoked"

(* ---- config space filtering ---- *)

let cfg_read g ~off ~size =
  check_alive g;
  charge g (model g.g).Cost_model.syscall_ns;
  Pci_topology.cfg_read g.g.k.Kernel.topo g.g_bdf ~off ~size

let command_allowed_bits =
  Pci_cfg.cmd_io_enable lor Pci_cfg.cmd_mem_enable lor Pci_cfg.cmd_bus_master

let deny g what =
  g.g.n_cfg_denied <- g.g.n_cfg_denied + 1;
  klogf g.g Klog.Warn "sud: %s: denied config write to %s by %s"
    (Bus.string_of_bdf g.g_bdf) what (Process.name g.g_proc);
  Error ("config write denied: " ^ what)

let cfg_write g ~off ~size v =
  check_alive g;
  charge g (model g.g).Cost_model.syscall_ns;
  let topo = g.g.k.Kernel.topo in
  let in_range base len = off >= base && off + size <= base + len in
  if in_range Pci_cfg.command 2 then begin
    (* Only decoding-enable and bus-master bits may change; INTx stays
       disabled no matter what the driver writes. *)
    if size = 2 && off = Pci_cfg.command then begin
      let filtered = v land command_allowed_bits lor Pci_cfg.cmd_intx_disable in
      Pci_topology.cfg_write topo g.g_bdf ~off ~size filtered;
      Ok ()
    end
    else deny g "partial command register"
  end
  else if in_range Pci_cfg.cache_line 1 || in_range Pci_cfg.latency_timer 1 then begin
    Pci_topology.cfg_write topo g.g_bdf ~off ~size v;
    Ok ()
  end
  else if in_range Pci_cfg.bar0 24 then deny g "BAR"
  else begin
    (* MSI/MSI-X capabilities and everything else are kernel-owned. *)
    match Pci_cfg.find_capability (Device.cfg g.g_dev) Pci_cfg.msi_cap_id with
    | Some cap when in_range cap 16 -> deny g "MSI capability"
    | Some _ | None ->
      (match Pci_cfg.find_capability (Device.cfg g.g_dev) Pci_cfg.msix_cap_id with
       | Some cap when in_range cap 4 -> deny g "MSI-X capability"
       | Some _ | None -> deny g (Printf.sprintf "offset 0x%x" off))
  end

let enable_device g =
  check_alive g;
  let cur = Pci_topology.cfg_read g.g.k.Kernel.topo g.g_bdf ~off:Pci_cfg.command ~size:2 in
  cfg_write g ~off:Pci_cfg.command ~size:2 (cur lor command_allowed_bits)

let find_capability g id =
  check_alive g;
  Pci_cfg.find_capability (Device.cfg g.g_dev) id

let msix_vectors g =
  check_alive g;
  match Pci_cfg.find_capability (Device.cfg g.g_dev) Pci_cfg.msix_cap_id with
  | None -> 1
  | Some _ -> max 1 (Pci_cfg.msix_table_size (Device.cfg g.g_dev))

(* ---- MMIO / IO ports ---- *)

let map_mmio g ~bar =
  check_alive g;
  match Pci_topology.bar_region g.g.k.Kernel.topo g.g_bdf ~bar with
  | None -> Error (Printf.sprintf "BAR %d is not a memory BAR" bar)
  | Some (base, size) ->
    if not (Bus.is_page_aligned base && Bus.is_page_aligned size) then
      Error "MMIO region is not page-aligned; refusing to map"
    else begin
      let topo = g.g.k.Kernel.topo in
      let m = model g.g in
      let read ~off ~size:sz =
        check_alive g;
        if off < 0 || off + sz > size then invalid_arg "mmio read out of range";
        charge g m.Cost_model.mmio_access_ns;
        Pci_topology.mmio_read topo ~addr:(base + off) ~size:sz
      in
      let write ~off ~size:sz v =
        check_alive g;
        if off < 0 || off + sz > size then invalid_arg "mmio write out of range";
        charge g m.Cost_model.mmio_access_ns;
        Pci_topology.mmio_write topo ~addr:(base + off) ~size:sz v
      in
      Ok { Driver_api.mmio_read = read; mmio_write = write }
    end

let claim_io g ~bar =
  check_alive g;
  match Pci_topology.io_region g.g.k.Kernel.topo g.g_bdf ~bar with
  | None -> Error (Printf.sprintf "BAR %d is not an IO BAR" bar)
  | Some (base, len) ->
    Ioport.Iopb.grant g.g_iopb ~base ~len;
    g.g_io_grants <- (base, len) :: g.g_io_grants;
    let m = model g.g in
    let ports = g.g.k.Kernel.ioports in
    let read ~off ~size =
      check_alive g;
      charge g m.Cost_model.pio_access_ns;
      Ioport.read ports ~iopb:g.g_iopb ~port:(base + off) ~size
    in
    let write ~off ~size v =
      check_alive g;
      charge g m.Cost_model.pio_access_ns;
      Ioport.write ports ~iopb:g.g_iopb ~port:(base + off) ~size v
    in
    Ok { Driver_api.pio_read = read; pio_write = write }

(* ---- DMA regions ---- *)

let alloc_dma g ?(coherent = true) ~bytes () =
  check_alive g;
  ignore coherent;
  if bytes <= 0 then Error "alloc_dma: empty region"
  else begin
    let pages = (bytes + Bus.page_mask) / Bus.page_size in
    match Process.charge_memory g.g_proc ~bytes:(pages * Bus.page_size) with
    | exception Process.Rlimit_exceeded m -> Error m
    | () ->
      match
        (match g.g_quota with
         | None -> Ok ()
         | Some q -> Quota.charge_dma q ~bytes:(pages * Bus.page_size) ~pages)
      with
      | Error e ->
        (* Ledger full: undo the rlimit charge and deny the mapping —
           backpressure, not kernel allocation. *)
        Process.uncharge_memory g.g_proc ~bytes:(pages * Bus.page_size);
        Error e
      | Ok () ->
      let phys = Phys_mem.alloc_pages g.g.k.Kernel.mem ~pages in
      let iova = g.g_next_iova in
      g.g_next_iova <- iova + (pages * Bus.page_size);
      let m = model g.g in
      charge g (pages * m.Cost_model.dma_map_ns);
      Iommu.map g.g.k.Kernel.iommu g.g_domain ~iova ~phys ~len:(pages * Bus.page_size)
        ~writable:true;
      g.g_allocs <- { da_iova = iova; da_phys = phys; da_pages = pages } :: g.g_allocs;
      let mem = g.g.k.Kernel.mem in
      let read ~off ~len =
        if off < 0 || len < 0 || off + len > pages * Bus.page_size then
          invalid_arg "dma_read out of range";
        Phys_mem.read mem ~addr:(phys + off) ~len
      in
      let write ~off data =
        if off < 0 || off + Bytes.length data > pages * Bus.page_size then
          invalid_arg "dma_write out of range";
        Phys_mem.write mem ~addr:(phys + off) data
      in
      Ok
        { Driver_api.dma_addr = iova;
          dma_size = pages * Bus.page_size;
          dma_read = read;
          dma_write = write }
  end

let free_dma g region =
  if g.g_alive then begin
    match List.find_opt (fun da -> da.da_iova = region.Driver_api.dma_addr) g.g_allocs with
    | None -> ()
    | Some da ->
      g.g_allocs <- List.filter (fun x -> x != da) g.g_allocs;
      Iommu.unmap g.g.k.Kernel.iommu g.g_domain ~iova:da.da_iova
        ~len:(da.da_pages * Bus.page_size);
      Phys_mem.free_pages g.g.k.Kernel.mem ~addr:da.da_phys ~pages:da.da_pages;
      Process.uncharge_memory g.g_proc ~bytes:(da.da_pages * Bus.page_size);
      (match g.g_quota with
       | Some q ->
         Quota.release_dma q ~bytes:(da.da_pages * Bus.page_size) ~pages:da.da_pages
       | None -> ())
  end

let lookup_iova g ~iova ~len =
  if len < 0 then None
  else
    List.find_map
      (fun da ->
         let size = da.da_pages * Bus.page_size in
         if iova >= da.da_iova && iova + len <= da.da_iova + size then
           Some (da.da_phys + (iova - da.da_iova))
         else None)
      g.g_allocs

let read_driver_mem g ~iova ~len =
  check_alive g;
  match lookup_iova g ~iova ~len with
  | Some phys -> Ok (Phys_mem.read g.g.k.Kernel.mem ~addr:phys ~len)
  | None -> Error (Printf.sprintf "address 0x%x+%d outside driver's DMA regions" iova len)

(* Allocation-free variant for the fast RX path: the proxy recycles its
   defensive-copy destination buffers, so the bytes land in a pooled
   buffer instead of a fresh one per frame. *)
let read_driver_mem_into g ~iova ~len ~dst ~dst_off =
  check_alive g;
  if len < 0 || dst_off < 0 || dst_off + len > Bytes.length dst then
    Error "read_driver_mem_into: destination out of range"
  else
    match lookup_iova g ~iova ~len with
    | Some phys ->
      Phys_mem.blit_out g.g.k.Kernel.mem ~addr:phys ~dst ~dst_off ~len;
      Ok ()
    | None -> Error (Printf.sprintf "address 0x%x+%d outside driver's DMA regions" iova len)

let write_driver_mem g ~iova data =
  check_alive g;
  match lookup_iova g ~iova ~len:(Bytes.length data) with
  | Some phys ->
    Phys_mem.write g.g.k.Kernel.mem ~addr:phys data;
    Ok ()
  | None -> Error (Printf.sprintf "address 0x%x outside driver's DMA regions" iova)

(* ---- interrupts ---- *)

(* Masking is per vector: legacy MSI has exactly one (the capability's
   mask bit); MSI-X masks one table entry, leaving sibling queues hot. *)
let set_vector_mask g vs masked =
  Cpu.account g.g.k.Kernel.cpu ~label:"kernel:sud" (model g.g).Cost_model.msi_mask_ns;
  if g.g_msix then Pci_cfg.msix_set_mask (Device.cfg g.g_dev) ~vector:vs.vs_queue masked
  else Pci_cfg.msi_set_mask (Device.cfg g.g_dev) masked

let mask_vector g ~queue =
  let vs = vec_of g queue in
  if not vs.vs_masked then begin
    vs.vs_masked <- true;
    g.g.n_masks <- g.g.n_masks + 1;
    set_vector_mask g vs true
  end

let unmask_vector g ~queue =
  let vs = vec_of g queue in
  if vs.vs_quarantined then ()     (* a quarantined vector stays silenced *)
  else if vs.vs_masked then begin
    vs.vs_masked <- false;
    set_vector_mask g vs false
  end

(* An interrupt that arrives while the vector is masked means something is
   writing the MSI window by raw DMA.  Escalate per available hardware
   (paper §3.2.2 / §5.2).  With MSI-X the blast radius is one vector: the
   kernel-side mask (modelling a masked IRTE) quarantines that queue and
   its siblings keep delivering; legacy MSI has no per-vector remap
   granularity, so escalation silences the whole source. *)
let escalate g vs =
  let t = g.g in
  vs.vs_storms <- vs.vs_storms + 1;
  let iommu = t.k.Kernel.iommu in
  if g.g_msix && Array.length g.g_vecs > 1 then begin
    if not vs.vs_quarantined then begin
      vs.vs_quarantined <- true;
      vs.vs_masked <- true;
      t.n_ir <- t.n_ir + 1;
      Cpu.account t.k.Kernel.cpu ~label:"kernel:sud" (model t).Cost_model.irte_update_ns;
      Irq.mask t.k.Kernel.irq ~vector:vs.vs_vector;
      Pci_cfg.msix_set_mask (Device.cfg g.g_dev) ~vector:vs.vs_queue true;
      klogf t Klog.Warn "sud: %s: interrupt storm on queue %d, vector quarantined (siblings live)"
        (Bus.string_of_bdf g.g_bdf) vs.vs_queue
    end
  end
  else if Iommu.ir_available iommu then begin
    t.n_ir <- t.n_ir + 1;
    Cpu.account t.k.Kernel.cpu ~label:"kernel:sud" (model t).Cost_model.irte_update_ns;
    Iommu.ir_block_source iommu ~source:g.g_bdf;
    klogf t Klog.Warn "sud: %s: interrupt storm, disabled via interrupt remapping"
      (Bus.string_of_bdf g.g_bdf)
  end
  else
    match Iommu.mode iommu with
    | Iommu.Amd_vi ->
      if g.g_amd_msi_mapped then begin
        t.n_ir <- t.n_ir + 1;
        Iommu.unmap iommu g.g_domain ~iova:Bus.msi_window_base
          ~len:(Bus.msi_window_limit - Bus.msi_window_base);
        g.g_amd_msi_mapped <- false;
        klogf t Klog.Warn "sud: %s: interrupt storm, unmapped MSI window (AMD)"
          (Bus.string_of_bdf g.g_bdf)
      end
    | Iommu.Intel_vtd _ ->
      t.n_livelock <- t.n_livelock + 1;
      klogf t Klog.Warn
        "sud: %s: interrupt storm and no interrupt remapping: system is vulnerable to livelock"
        (Bus.string_of_bdf g.g_bdf)

let handle_irq g ~queue ~source =
  ignore source;
  if g.g_alive && queue < Array.length g.g_vecs then begin
    let vs = g.g_vecs.(queue) in
    if vs.vs_masked then
      (* The device itself cannot deliver through a masked vector
         (MSI-X latches the PBA bit, legacy MSI is suppressed at the
         capability) — an interrupt arriving here while masked means
         something is writing the MSI window by raw DMA.  Escalate. *)
      escalate g vs
    else begin
      let t = g.g in
      (* NAPI-style coalescing: mask the vector for the duration of the
         driver's poll.  Device-side raises in the window latch in the
         MSI-X pending-bit array at zero CPU cost and are replayed by
         [irq_ack], so under load one upcall covers a whole batch of
         frames while an idle link still gets an immediate upcall. *)
      mask_vector g ~queue;
      vs.vs_awaiting_ack <- true;
      (match g.g_sink with
       | Some sink ->
         (* Rate limiting at the forwarding boundary: a dry per-queue
            token bucket absorbs an interrupt flood here — the vector is
            already masked and the pending bit latches, so [irq_ack]'s
            replay keeps a legitimate device live while a screaming one
            stops costing upcalls.  The drop is counted on the ledger. *)
         let permitted =
           match g.g_quota with
           | Some q -> Quota.take_irq_token q ~queue
           | None -> true
         in
         if permitted then begin
           t.n_fwd <- t.n_fwd + 1;
           Sud_obs.Metrics.incr vs.vs_delivered;
           Cpu.account t.k.Kernel.cpu ~label:"kernel:sud" (model t).Cost_model.irq_upcall_ns;
           sink ~queue
         end
       | None -> ())
    end
  end

let setup_irqs g ~n ~sink =
  check_alive g;
  let t = g.g in
  let cfg = Device.cfg g.g_dev in
  if Array.length g.g_vecs > 0 then Error "irq already set up"
  else if n < 1 then Error "setup_irqs: need at least one vector"
  else if n > 1 && Pci_cfg.find_capability cfg Pci_cfg.msix_cap_id = None then
    Error "device has no MSI-X capability; only one vector available"
  else if n > 1 && n > Pci_cfg.msix_table_size cfg then
    Error (Printf.sprintf "device MSI-X table has %d entries, %d requested"
             (Pci_cfg.msix_table_size cfg) n)
  else begin
    let use_msix = n > 1 && Pci_cfg.find_capability cfg Pci_cfg.msix_cap_id <> None in
    let vectors = Irq.alloc_vectors t.k.Kernel.irq ~n in
    match
      Irq.request_irqs t.k.Kernel.irq ~vectors
        ~name:(Printf.sprintf "sud-%s" (Bus.string_of_bdf g.g_bdf))
        (fun ~queue ~source -> handle_irq g ~queue ~source)
    with
    | Error e -> Error e
    | Ok () ->
      g.g_vecs <-
        Array.mapi
          (fun queue vs_vector ->
             { vs_queue = queue; vs_vector; vs_masked = false; vs_awaiting_ack = false;
               vs_storms = 0; vs_quarantined = false;
               vs_delivered =
                 Sud_obs.Metrics.counter
                   ~labels:
                     [ "dev", Bus.string_of_bdf g.g_bdf; "queue", string_of_int queue ]
                   ~subsystem:"safe_pci" ~name:"irqs_delivered" () })
          vectors;
      g.g_msix <- use_msix;
      g.g_sink <- Some sink;
      (* The kernel (not the driver) programs MSI/MSI-X address and data,
         and tells the remapper which (source, vector) pairs are legal. *)
      if use_msix then begin
        Array.iteri
          (fun queue vector ->
             Pci_cfg.msix_configure cfg ~vector:queue ~address:Bus.msi_window_base
               ~data:vector)
          vectors;
        Pci_cfg.msix_set_enabled cfg true
      end
      else
        begin
          Pci_cfg.msi_configure cfg ~address:Bus.msi_window_base ~data:vectors.(0);
          (* The mask register survives function-level reset; a previous
             generation dying mid-poll leaves its NAPI mask set, which
             would silently swallow this generation's interrupts (legacy
             MSI has no pending latch).  Start from a known-unmasked
             state, as msi_capability_init does. *)
          Pci_cfg.msi_set_mask cfg false
        end;
      if Iommu.ir_available t.k.Kernel.iommu then
        Array.iter
          (fun vector -> Iommu.ir_allow t.k.Kernel.iommu ~source:g.g_bdf ~vector)
          vectors;
      (* Spread queue-service load: queue i's handler runs on core i mod N. *)
      Array.iter
        (fun vector ->
           Irq.set_affinity t.k.Kernel.irq ~vector
             ~cpu:(Irq.default_affinity t.k.Kernel.irq vector))
        vectors;
      Ok ()
  end

let teardown_irqs g =
  if Array.length g.g_vecs > 0 then begin
    Irq.free_irqs g.g.k.Kernel.irq ~vectors:(Array.map (fun vs -> vs.vs_vector) g.g_vecs);
    g.g_vecs <- [||];
    g.g_sink <- None
  end

let irq_ack ?(queue = 0) g =
  if g.g_alive && queue < Array.length g.g_vecs then begin
    let vs = vec_of g queue in
    vs.vs_awaiting_ack <- false;
    (* Interrupts the device raised during the poll window latched in
       the MSI-X pending-bit array; unmasking clears that bit with no
       re-delivery, so read it first and replay after the unmask.  A
       quarantined vector stays silent.  Legacy MSI has no pending
       latch — the driver's post-ack re-poll covers that edge. *)
    let replay =
      g.g_msix && vs.vs_masked && not vs.vs_quarantined
      && Pci_cfg.msix_pending (Device.cfg g.g_dev) ~vector:queue
    in
    unmask_vector g ~queue;
    if replay then
      ignore (Device.raise_msix g.g_dev ~vector:queue : (unit, Bus.fault) result)
  end

(* ---- deprecated scalar shims (the single-vector instances) ---- *)

let setup_irq g ~sink = setup_irqs g ~n:1 ~sink:(fun ~queue:_ -> sink ())
let teardown_irq g = teardown_irqs g
let mask_msi g = mask_vector g ~queue:0
let unmask_msi g = unmask_vector g ~queue:0

(* ---- observability ---- *)

let iommu_mappings g = Iommu.mappings g.g_domain

let dma_allocations g =
  List.rev_map (fun da -> (da.da_iova, da.da_pages * Bus.page_size)) g.g_allocs

let msi_masks t = t.n_masks
let ir_escalations t = t.n_ir
let livelock_warnings t = t.n_livelock
let cfg_denials t = t.n_cfg_denied
let interrupts_forwarded t = t.n_fwd
