(** RPC opcodes shared by the proxy drivers and SUD-UML — the concrete
    instance of the paper's Figure 7 upcall/downcall table.

    Upcalls are kernel→driver; downcalls are driver→kernel.  "sync"
    operations block for a reply and are interruptible; everything else
    is asynchronous and batched. *)

(* ---- upcalls ---- *)

let up_net_open = 1          (* sync *)
let up_net_stop = 2          (* sync *)
let up_net_xmit = 3          (* async; args [buf_id; len] *)
let up_net_ioctl = 4         (* sync; args [cmd; arg] *)
let up_interrupt = 5         (* async *)
let up_ping = 6              (* sync; supervisor heartbeat, empty reply *)

let up_wifi_scan = 16        (* sync (trigger; completion is an event) *)
let up_wifi_assoc = 17       (* sync; args [bssid] *)
let up_wifi_set_rate = 18    (* async — queued from non-preemptable context *)
let up_wifi_get_rates = 19   (* sync *)

let up_audio_start = 32      (* sync *)
let up_audio_stop = 33       (* sync *)
let up_audio_write = 34      (* async; args [buf_id; len] *)
let up_audio_set_vol = 35    (* async; args [vol] *)
let up_audio_get_vol = 36    (* sync *)

let up_blk_read = 48         (* sync; args [lba; count; buf_id] *)
let up_blk_write = 49        (* sync; args [lba; count; buf_id] *)
let up_blk_capacity = 50     (* sync *)

(* The sud-blk asynchronous submission path (NVMe-style queue pairs).
   [tag] is the proxy's idempotency tag — monotonically increasing per
   device, the identity a request keeps across driver restarts so
   replay can re-issue it without double-applying.  The buffer id is
   encoded +1 so 0 means "no shared buffer" (flush). *)
let up_blk_submit = 52       (* async; args [tag; op; lba; count; buf_id+1] *)

(* blk ops carried in up_blk_submit's [op] argument. *)
let blk_op_read = 0
let blk_op_write = 1
let blk_op_flush = 2
let blk_op_fua = 4           (* flag bit OR'd onto a write *)

(* ---- downcalls ---- *)

let down_net_register = 100  (* sync; payload = MAC *)
let down_netif_rx = 101      (* async; args [iova; len] *)
let down_tx_free = 102       (* async; args [buf_id] *)
let down_tx_done = 103       (* async *)
let down_carrier = 104       (* async; args [0|1] *)
let down_irq_ack = 105       (* async *)

let down_wifi_scan_done = 110   (* async; payload = bssid list (u16s) *)
let down_wifi_bss_changed = 111 (* async; args [bssid] *)
let down_audio_period = 112     (* async *)
let down_blk_register = 113     (* sync; args [capacity] *)
let down_input_key = 114        (* async; args [keycode] *)
let down_wifi_rates = 115       (* async; payload = supported rates, one u16 each *)
let down_audio_register = 116   (* sync *)
let down_blkdev_register = 117  (* sync; args [capacity; nr_queues] — sud-blk *)
let down_blk_complete = 118     (* async (Batched); args [tag; status] *)
let down_printk = 120           (* async; payload = message *)

(* Kind vocabulary for the uchan conformance DFA, covering the
   driver->kernel (downcall) direction the kernel adjudicates.  The
   registration syncs gate the data plane; notification-ish downcalls a
   driver legitimately sends while still probing (printk, carrier, irq
   acks, wifi rate tables) are Control — serve_wifi, for one, ships its
   rate table before the registration handshake.  Anything outside the
   vocabulary is out of protocol. *)
let classify_downcall = function
  | 100 | 113 | 116 | 117 -> Conformance.Register
  | 101 | 102 | 103 | 118 -> Conformance.Data
  | 104 | 105 | 110 | 111 | 112 | 114 | 115 | 120 -> Conformance.Control
  | _ -> Conformance.Unknown

let conformance_profile =
  { Conformance.p_name = "proxy"; p_classify = classify_downcall }

let name_of = function
  | 1 -> "net_open" | 2 -> "net_stop" | 3 -> "net_xmit" | 4 -> "net_ioctl"
  | 5 -> "interrupt" | 6 -> "ping"
  | 16 -> "wifi_scan" | 17 -> "wifi_assoc" | 18 -> "wifi_set_rate" | 19 -> "wifi_get_rates"
  | 32 -> "audio_start" | 33 -> "audio_stop" | 34 -> "audio_write"
  | 35 -> "audio_set_vol" | 36 -> "audio_get_vol"
  | 48 -> "blk_read" | 49 -> "blk_write" | 50 -> "blk_capacity"
  | 52 -> "blk_submit"
  | 100 -> "net_register" | 101 -> "netif_rx" | 102 -> "tx_free" | 103 -> "tx_done"
  | 104 -> "carrier" | 105 -> "irq_ack"
  | 110 -> "wifi_scan_done" | 111 -> "wifi_bss_changed" | 112 -> "audio_period"
  | 113 -> "blk_register" | 114 -> "input_key" | 115 -> "wifi_rates"
  | 116 -> "audio_register" | 117 -> "blkdev_register" | 118 -> "blk_complete"
  | 120 -> "printk"
  | n -> Printf.sprintf "op%d" n

(** Figure 7's sample table: (name, direction, description). *)
let figure7_sample =
  [ ("ioctl", "upcall", "Request that the driver perform a device-specific ioctl.");
    ("interrupt", "upcall", "Invoke the SUD-UML driver interrupt handler.");
    ("net_open", "upcall", "Prepare a network device for operation.");
    ("bss_change", "upcall", "Notify an 802.11 device that the BSS has changed.");
    ("interrupt_ack", "downcall", "Request that SUD unmask the device interrupt line.");
    ("request_region", "downcall", "Add IO-space ports to the driver's IO permission bitmask.");
    ("netif_rx", "downcall", "Submit a received packet to the kernel's network stack.");
    ("pci_find_capability", "downcall", "Checks if device supports a particular capability.") ]
