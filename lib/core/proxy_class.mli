(** The shared proxy-class interface.

    Every class proxy — Ethernet, wireless, audio, USB host, block —
    presents the same small supervision surface: its uchan, a hung
    flag, and a lifecycle the supervisor drives through recovery:

    {v
      running --quiesce--> quiesced --(kill/restart)--> resume --> running
         |                                                  |
         +----------------degrade (terminal)----------------+
    v}

    [quiesce] stops the proxy admitting new work while preserving
    everything in flight (the block proxy retains unacknowledged
    requests for replay; the net proxy parks transmits in the backlog).
    [resume] re-admits work against the restarted driver and replays
    whatever quiesce retained.  [degrade]/[revive] remain the terminal
    detach/re-attach pair used for quarantine, where no new generation
    is coming.  [handoff]/[adopt] carry the class's kernel-facing state
    (surviving netdev, blk persist record, mirrored device attributes)
    from a dying generation's proxy to its successor — the contract both
    warm-standby swap and shadow recovery ride.  The supervisor and
    driver host program against {!instance} instead of pattern-matching
    on proxy kinds, so adding a device class never touches the recovery
    machinery. *)

type state = ..
(** A class-opaque handoff payload.  Each proxy module extends this with
    its own constructor ([Proxy_net.Net_state], [Proxy_blk.Blk_state],
    ...), so the supervisor can hold and thread one without knowing the
    class. *)

type state += No_state
(** For classes with no kernel-side state worth carrying. *)

module type S = sig
  type t

  val class_name : string
  val chan : t -> Uchan.t

  val hung : t -> bool
  (** The proxy observed the driver failing to service upcalls. *)

  val quiesce : t -> unit
  (** Stop admitting new work and retain in-flight work for replay —
      called before the supervisor kills a faulty generation.  Must be
      idempotent and must not block. *)

  val resume : t -> unit
  (** Re-admit work after a successful restart and replay whatever
      {!quiesce} retained against the new generation.  Idempotent. *)

  val degrade : t -> unit
  (** Terminal detach from the kernel subsystem (e.g. the net proxy
      unregisters its netdev) — used for quarantine, when no further
      generation will be started. *)

  val revive : t -> unit
  (** Undo {!degrade}.  Classes whose registration downcall re-attaches
      on its own leave this a no-op. *)

  val handoff : t -> state
  (** Snapshot the kernel-facing state this proxy guards (taken from the
      dying generation after {!quiesce}, before the kill).  Must be
      idempotent — taking it twice yields equivalent payloads — and must
      not block. *)

  val adopt : t -> state -> unit
  (** Install a {!handoff} payload into this (new-generation) proxy.  A
      proxy created parked does not serve its datapath until it adopts;
      adopting a payload of the wrong class is a no-op. *)
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance
(** A proxy packed with its class module — one capability the supervisor
    can hold for any device class. *)

val class_name : instance -> string
val chan : instance -> Uchan.t
val hung : instance -> bool
val quiesce : instance -> unit
val resume : instance -> unit
val degrade : instance -> unit
val revive : instance -> unit
val handoff : instance -> state
val adopt : instance -> state -> unit

val heartbeat : instance -> (unit, string) result
(** Synchronous [up_ping] over the proxy's channel, bounded by the
    channel's hang timeout.  Answered inline by the driver's queue-0
    service loop, so success proves the control path is alive — the
    class-independent health probe. *)
