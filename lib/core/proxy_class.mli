(** The shared proxy-class interface.

    Every class proxy — Ethernet, wireless, audio, USB host, block —
    presents the same small supervision surface: its uchan, a hung
    flag, and a lifecycle the supervisor drives through recovery:

    {v
      running --quiesce--> quiesced --(kill/restart)--> resume --> running
         |                                                  |
         +----------------degrade (terminal)----------------+
    v}

    [quiesce] stops the proxy admitting new work while preserving
    everything in flight (the block proxy retains unacknowledged
    requests for replay; the net proxy parks transmits in the backlog).
    [resume] re-admits work against the restarted driver and replays
    whatever quiesce retained.  [degrade]/[revive] remain the terminal
    detach/re-attach pair used for quarantine, where no new generation
    is coming.  The supervisor and driver host program against
    {!instance} instead of pattern-matching on proxy kinds, so adding a
    device class never touches the recovery machinery. *)

module type S = sig
  type t

  val class_name : string
  val chan : t -> Uchan.t

  val hung : t -> bool
  (** The proxy observed the driver failing to service upcalls. *)

  val quiesce : t -> unit
  (** Stop admitting new work and retain in-flight work for replay —
      called before the supervisor kills a faulty generation.  Must be
      idempotent and must not block. *)

  val resume : t -> unit
  (** Re-admit work after a successful restart and replay whatever
      {!quiesce} retained against the new generation.  Idempotent. *)

  val degrade : t -> unit
  (** Terminal detach from the kernel subsystem (e.g. the net proxy
      unregisters its netdev) — used for quarantine, when no further
      generation will be started. *)

  val revive : t -> unit
  (** Undo {!degrade}.  Classes whose registration downcall re-attaches
      on its own leave this a no-op. *)
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance
(** A proxy packed with its class module — one capability the supervisor
    can hold for any device class. *)

val class_name : instance -> string
val chan : instance -> Uchan.t
val hung : instance -> bool
val quiesce : instance -> unit
val resume : instance -> unit
val degrade : instance -> unit
val revive : instance -> unit

val heartbeat : instance -> (unit, string) result
(** Synchronous [up_ping] over the proxy's channel, bounded by the
    channel's hang timeout.  Answered inline by the driver's queue-0
    service loop, so success proves the control path is alive — the
    class-independent health probe. *)
