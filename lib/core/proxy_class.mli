(** The shared proxy-class interface.

    Every class proxy — Ethernet, wireless, audio, USB host — presents
    the same small supervision surface: its uchan, a hung flag, and
    degrade/revive hooks for driver death and recovery.  The supervisor
    and driver host program against {!instance} instead of
    pattern-matching on proxy kinds, so adding a device class never
    touches the recovery machinery. *)

module type S = sig
  type t

  val class_name : string
  val chan : t -> Uchan.t

  val hung : t -> bool
  (** The proxy observed the driver failing to service upcalls. *)

  val degrade : t -> unit
  (** Detach from the kernel subsystem on driver death (e.g. the net
      proxy unregisters its netdev) — the subsystem-specific part of
      containment. *)

  val revive : t -> unit
  (** Undo {!degrade} after a successful restart.  Classes whose
      registration downcall re-attaches on its own leave this a no-op. *)
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance
(** A proxy packed with its class module — one capability the supervisor
    can hold for any device class. *)

val class_name : instance -> string
val chan : instance -> Uchan.t
val hung : instance -> bool
val degrade : instance -> unit
val revive : instance -> unit

val heartbeat : instance -> (unit, string) result
(** Synchronous [up_ping] over the proxy's channel, bounded by the
    channel's hang timeout.  Answered inline by the driver's queue-0
    service loop, so success proves the control path is alive — the
    class-independent health probe. *)
