(* Class-specific handoff payloads are injected by each proxy module as
   extension constructors, so this module stays independent of the
   concrete proxies while the supervisor can still thread their state
   through a swap without pattern-matching on classes. *)
type state = ..
type state += No_state

module type S = sig
  type t

  val class_name : string
  val chan : t -> Uchan.t
  val hung : t -> bool
  val quiesce : t -> unit
  val resume : t -> unit
  val degrade : t -> unit
  val revive : t -> unit
  val handoff : t -> state
  val adopt : t -> state -> unit
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let class_name (Instance ((module P), _)) = P.class_name
let chan (Instance ((module P), x)) = P.chan x
let hung (Instance ((module P), x)) = P.hung x
let quiesce (Instance ((module P), x)) = P.quiesce x
let resume (Instance ((module P), x)) = P.resume x
let degrade (Instance ((module P), x)) = P.degrade x
let revive (Instance ((module P), x)) = P.revive x
let handoff (Instance ((module P), x)) = P.handoff x
let adopt (Instance ((module P), x)) st = P.adopt x st

(* The shared heartbeat: every SUD driver's queue-0 service loop answers
   [up_ping] inline (any reply — even an error reply from a class that
   does not know the opcode — proves the loop is alive), so one
   implementation serves every proxy class. *)
let heartbeat inst =
  match
    Uchan.transfer (chan inst) ~from:`Kernel Uchan.Sync
      (Msg.make ~kind:Proxy_proto.up_ping ())
  with
  | Ok _ -> Ok ()
  | Error Uchan.Hung -> Error "heartbeat missed"
  | Error Uchan.Closed -> Error "uchan closed"
  | Error Uchan.Interrupted -> Ok ()   (* non-fatal signal; not the driver's fault *)
