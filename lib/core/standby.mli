(** Warm-standby slot manager.

    Keeps at most one pre-forked generation parked and healthy so its
    owner (the supervisor) can swap it in on a lethal fault or a live
    upgrade instead of paying a cold start.  Generic in the generation
    type ['g]: the supervisor instantiates it with {!Driver_host.warm}.

    Every warm generation is built for exactly one [tag] (the uchan
    epoch the next swap will expect).  A slot whose tag no longer
    matches is stale and discarded — never swapped in.  A parked
    generation that [probe] reports unhealthy is poisoned: discarded,
    counted, and rebuilt from scratch. *)

type status = Idle | Warming | Ready | Disabled

val status_name : status -> string

type 'g t

val create :
  Kernel.t ->
  name:string ->
  warm:(tag:int -> ('g, string) result) ->
  probe:('g -> string option) ->
  discard:('g -> unit) ->
  ?retry_ns:int ->
  unit ->
  'g t
(** [warm ~tag] builds one parked generation for live-generation [tag];
    it runs on a dedicated fiber and may block.  [probe g] returns
    [Some reason] if the parked generation is no longer fit to swap in
    (process died, protocol violation while parked).  [discard g] tears
    a generation down.  [retry_ns] is the pause between warm attempts
    when [warm] fails transiently (default 1 ms, up to 3 retries). *)

val set_on_ready : 'g t -> (unit -> unit) -> unit
(** Hook invoked (on the warming fiber) each time a generation is
    parked Ready. *)

val ensure : 'g t -> tag:int -> unit
(** Converge toward one Ready generation for [tag]: drop a stale or
    poisoned slot, and kick off a warming fiber if the slot is empty.
    Idempotent; cheap when already Ready for [tag]. *)

val take : 'g t -> tag:int -> 'g option
(** Claim the parked generation for [tag], if Ready and still healthy.
    Runs a final poison probe: a standby that died while parked is
    discarded (counted) and [None] is returned — callers fall back to
    the cold path.  [None] also when disabled, empty, or tag-stale. *)

val peek : 'g t -> 'g option
(** The parked generation without claiming it (fault injection kills its
    process through this to poison the standby). *)

val disable : 'g t -> unit
(** Permanently stop warming and discard any parked generation (driver
    quarantined or supervisor stopped). *)

val status : 'g t -> status
val stats : 'g t -> int * int
(** [(warmed, poisoned)] counters. *)
