type t = {
  k : Kernel.t;
  chan : Uchan.t;
  pnet : Proxy_net.t;
  (* Mirrored shared state (paper §3.1.1/§3.3): owned by the kernel copy,
     written by driver downcalls, read locally without upcalls. *)
  mutable rates : int list;
  mutable bss : int option;
  mutable scan_results : int list option;
  scan_wait : Sync.Waitq.t;
}

let decode_u16s payload =
  let n = Bytes.length payload / 2 in
  List.init n (fun i -> Bytes.get_uint16_le payload (2 * i))

let handle_downcall t ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.down_wifi_rates then begin
    t.rates <- decode_u16s m.Msg.payload;
    None
  end
  else if kind = Proxy_proto.down_wifi_scan_done then begin
    t.scan_results <- Some (decode_u16s m.Msg.payload);
    ignore (Sync.Waitq.broadcast t.scan_wait : int);
    None
  end
  else if kind = Proxy_proto.down_wifi_bss_changed then begin
    t.bss <- Some (Msg.arg m 0);
    None
  end
  else Proxy_net.handle_downcall t.pnet ~queue m

let create k ~chan ~grant ~pool ~name ?defensive_copy () =
  let pnet = Proxy_net.create k ~chan ~grant ~pool ~name ?defensive_copy () in
  let t =
    { k; chan; pnet; rates = []; bss = None; scan_results = None; scan_wait = Sync.Waitq.create () }
  in
  (* Replace the net handler with the chained wireless one. *)
  Uchan.set_downcall_handler chan (fun ~queue m -> handle_downcall t ~queue m);
  t

let net t = t.pnet
let irq_sink t = Proxy_net.irq_sink t.pnet
let netdev t = Proxy_net.netdev t.pnet
let wait_ready t ~timeout_ns = Proxy_net.wait_ready t.pnet ~timeout_ns

let scan t =
  t.scan_results <- None;
  match Uchan.transfer t.chan ~from:`Kernel Uchan.Sync (Msg.make ~kind:Proxy_proto.up_wifi_scan ()) with
  | Error Uchan.Hung -> Error "driver hung"
  | Error Uchan.Interrupted -> Error "interrupted"
  | Error Uchan.Closed -> Error "driver is gone"
  | Ok r when Msg.arg r 0 <> 0 -> Error (Bytes.to_string r.Msg.payload)
  | Ok _ ->
    (* The firmware scans asynchronously; wait for the completion event. *)
    let deadline = Engine.now t.k.Kernel.eng + 50_000_000 in
    let rec await () =
      match t.scan_results with
      | Some bssids -> Ok bssids
      | None ->
        let left = deadline - Engine.now t.k.Kernel.eng in
        if left <= 0 then Error "scan timed out"
        else
          (match Sync.Waitq.wait_timeout t.k.Kernel.eng t.scan_wait left with
           | Fiber.Interrupted -> Error "interrupted"
           | Fiber.Normal | Fiber.Timeout -> await ())
    in
    await ()

let associate t ~bssid =
  match
    Uchan.transfer t.chan ~from:`Kernel Uchan.Sync
      (Msg.make ~kind:Proxy_proto.up_wifi_assoc ~args:[ bssid ] ())
  with
  | Error Uchan.Hung -> Error "driver hung"
  | Error Uchan.Interrupted -> Error "interrupted"
  | Error Uchan.Closed -> Error "driver is gone"
  | Ok r when Msg.arg r 0 <> 0 -> Error (Bytes.to_string r.Msg.payload)
  | Ok _ -> Ok ()

let bitrates t = t.rates

let set_rate t idx =
  (* Queued asynchronously: callable while non-preemptable (§3.1.1). *)
  ignore
    (Uchan.transfer t.chan ~from:`Kernel Uchan.Nonblock
       (Msg.make ~kind:Proxy_proto.up_wifi_set_rate ~args:[ idx ] ())
     : bool)

let current_bss t = t.bss

(* Handoff carries the embedded net state plus the mirrored wireless
   attributes, so a swapped-in generation starts from the kernel's copy
   instead of re-learning rates/BSS from the (untrusted) driver. *)
type Proxy_class.state +=
    Wifi_state of { net : Proxy_class.state; rates : int list; bss : int option }

let handoff t =
  Wifi_state { net = Proxy_net.handoff t.pnet; rates = t.rates; bss = t.bss }

let adopt t st =
  match st with
  | Wifi_state { net; rates; bss } ->
    Proxy_net.adopt t.pnet net;
    t.rates <- rates;
    t.bss <- bss
  | _ -> ()

let instance t =
  Proxy_class.Instance
    ( (module struct
        type nonrec t = t

        let class_name = "wifi"
        let chan t = t.chan
        let hung t = Proxy_net.hung t.pnet
        let quiesce t = Proxy_net.quiesce t.pnet
        let resume t = Proxy_net.resume t.pnet
        let degrade t = Proxy_net.unregister t.pnet
        let revive _ = ()
        let handoff = handoff
        let adopt = adopt
      end),
      t )
