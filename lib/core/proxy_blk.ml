(* The kernel block proxy (sud-blk): Blkdev requests -> up_blk_submit
   upcalls, down_blk_complete downcalls -> Blkdev completions.

   Crash consistency is the point of this module.  Every request carries
   a monotonically increasing idempotency tag that survives driver
   generations in the [persist] record, together with:

   - the in-flight table (submitted, not yet completed), and
   - the unflushed-retention list: completed writes whose durability has
     not yet been proven by a Flush completion.  Their data lives in the
     kernel-private request record, never only in driver memory.

   On recovery the fresh generation replays, in tag order, everything
   retained plus everything still in flight, then issues a trailing
   barrier.  [Blkdev.complete] fires each upstream completion at most
   once, so a replayed request that was already acknowledged cannot
   double-complete — replay is idempotent end to end, which is exactly
   the invariant the soak harness checks: no acknowledged write is ever
   lost, and no unacknowledged write becomes visible without being
   acknowledged.

   Retention is dropped only under the flush-covering rule: a Flush
   completion F drops a retained write W iff W completed before F was
   submitted AND no in-flight request has a tag older than F.  The
   second clause defends against forged completions — the device
   processes each queue FIFO, so a corrupted completion id can only
   falsely acknowledge a request *newer* than the true victim; the
   victim stays in flight with an older tag and blocks the drop until
   its timeout triggers recovery and replay. *)

type breq = {
  br_tag : int;
  br_op : int;                       (* wire op, FUA bit included *)
  br_lba : int;
  br_count : int;
  br_req : Blkdev.request option;    (* None: proxy-internal barrier *)
  mutable br_buf : int;              (* pool buffer id this generation; -1 = none *)
  mutable br_sent : bool;            (* on the wire this generation *)
  mutable br_submit_ns : int;
  mutable br_serial : int;           (* completion-order stamp; -1 = in flight *)
  mutable br_cover : int;            (* flushes: completion serial at submit *)
}

(* Driver-generation-independent state, adopted by each restart. *)
type persist = {
  mutable p_next_tag : int;
  p_inflight : (int, breq) Hashtbl.t;
  mutable p_unflushed : breq list;   (* newest first *)
  mutable p_serial : int;
  mutable p_blkdev : Blkdev.t option;
  mutable p_replay_flush : bool;     (* trailing barrier owed after replay *)
}

let persist_create () =
  { p_next_tag = 0;
    p_inflight = Hashtbl.create 64;
    p_unflushed = [];
    p_serial = 0;
    p_blkdev = None;
    p_replay_flush = false }

let persist_blkdev p = p.p_blkdev
let persist_inflight p = Hashtbl.length p.p_inflight
let persist_retained p = List.length p.p_unflushed

type t = {
  k : Kernel.t;
  chan : Uchan.t;
  grant : Safe_pci.grant;
  pool : Bufpool.t;
  name : string;
  (* Mutable so a warm standby can adopt the surviving persist record at
     swap time; everywhere else it is fixed at creation. *)
  mutable p : persist;
  request_timeout_ns : int;
  ready : Sync.Waitq.t;
  mutable nqueues : int;             (* device queues; 0 until registered *)
  mutable capacity : int;
  mutable is_hung : bool;
  mutable quiescing : bool;
  (* Warm-standby parking: a parked proxy may share the live generation's
     persist record (so readiness probes and the eventual adoption see
     it) but must treat it as read-only — registration is recorded, not
     applied; completions are forged by definition (nothing was ever
     submitted on this channel); quiesce must not detach the live
     blkdev; and the live generation's in-flight ages are not this
     proxy's hang signal. *)
  mutable parked : bool;
  (* Submissions on the wire this generation (sent, not yet completed).
     A flush is held until this drains to zero: rings are per-LBA, so a
     flush racing an in-flight write on another ring could be processed
     first and certify nothing.  Blkdev's own barrier guarantees this in
     normal operation; replay bypasses Blkdev and needs it here. *)
  mutable on_wire : int;
  (* Send-retry FIFO: submissions the channel or pool refused.  Strictly
     ordered — nothing overtakes a parked request — and per generation:
     membership in [p_inflight] is the replay source of truth. *)
  pending : breq Queue.t;
  m_submits : Sud_obs.Metrics.counter;
  m_replays : Sud_obs.Metrics.counter;
  m_stale : Sud_obs.Metrics.counter;
  m_covered_drops : Sud_obs.Metrics.counter;
  m_cover_blocked : Sud_obs.Metrics.counter;
}

let model t = Cpu.cost_model t.k.Kernel.cpu

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let mark_hung t why =
  if not t.is_hung then begin
    t.is_hung <- true;
    klogf t Klog.Warn "sud-blk(%s): driver appears hung (%s)" t.name why
  end

let base_op op = op land lnot Proxy_proto.blk_op_fua

let wire_op (rq : Blkdev.request) =
  match rq.Blkdev.rq_op with
  | Blkdev.Read -> Proxy_proto.blk_op_read
  | Blkdev.Write ->
    Proxy_proto.blk_op_write
    lor (if rq.Blkdev.rq_fua then Proxy_proto.blk_op_fua else 0)
  | Blkdev.Flush -> Proxy_proto.blk_op_flush

let is_write br = base_op br.br_op = Proxy_proto.blk_op_write
let is_flush br = base_op br.br_op = Proxy_proto.blk_op_flush

(* Queue affinity: all requests touching an LBA ride the ring picked by
   its page, preserving per-page order end to end; barriers ride ring 0. *)
let queue_of t br =
  if is_flush br then 0
  else (br.br_lba / Blkdev.page_sectors) mod Uchan.num_queues t.chan

(* Push one submission at the driver.  The caller owns ordering, except
   the flush barrier: [`Barrier] parks a flush until the wire drains. *)
let send_submit t br =
  if is_flush br && t.on_wire > 0 then `Barrier
  else
  let buf1 =
    if is_flush br then Some 0
    else
      match Bufpool.alloc t.pool with
      | None -> None
      | Some buf ->
        if br.br_count * Blkdev.sector_size > buf.Bufpool.size then begin
          Bufpool.free t.pool buf.Bufpool.id;
          klogf t Klog.Warn "sud-blk(%s): request of %d sectors exceeds pool buffers"
            t.name br.br_count;
          None
        end
        else begin
          (if is_write br then
             match br.br_req with
             | Some rq ->
               (* The single data copy on the write path: kernel-private
                  request bytes -> shared buffer.  The retained copy in
                  [rq_data] is what replay re-sends after a crash. *)
               Driver_api.charge t.k.Kernel.cpu ~label:"kernel:sud"
                 (Cost_model.copy_cost (model t) ~bytes:(Bytes.length rq.Blkdev.rq_data));
               Bufpool.write t.pool buf ~off:0 rq.Blkdev.rq_data
             | None -> ());
          br.br_buf <- buf.Bufpool.id;
          Some (buf.Bufpool.id + 1)
        end
  in
  match buf1 with
  | None -> `No_buf
  | Some buf1 ->
    br.br_submit_ns <- Engine.now t.k.Kernel.eng;
    (match
       Uchan.transfer t.chan ~queue:(queue_of t br) ~from:`Kernel Uchan.Async
         (Msg.make ~kind:Proxy_proto.up_blk_submit
            ~args:[ br.br_tag; br.br_op; br.br_lba; br.br_count; buf1 ] ())
     with
     | Ok () ->
       t.on_wire <- t.on_wire + 1;
       br.br_sent <- true;
       Sud_obs.Metrics.incr t.m_submits;
       `Ok
     | Error Uchan.Hung ->
       if br.br_buf >= 0 then begin
         Bufpool.free t.pool br.br_buf;
         br.br_buf <- -1
       end;
       mark_hung t "submission ring stalled";
       `Err
     | Error (Uchan.Interrupted | Uchan.Closed) ->
       if br.br_buf >= 0 then begin
         Bufpool.free t.pool br.br_buf;
         br.br_buf <- -1
       end;
       `Err)

let drain_pending t =
  let rec go () =
    match Queue.peek_opt t.pending with
    | None -> ()
    | Some br ->
      (match send_submit t br with
       | `Ok ->
         ignore (Queue.pop t.pending : breq);
         go ()
       | `No_buf | `Err | `Barrier -> ())
  in
  go ()

(* Submit, or park behind anything already parked: ordering first. *)
let enqueue_or_send t br =
  if not (Queue.is_empty t.pending) then Queue.add br t.pending
  else
    match send_submit t br with
    | `Ok -> ()
    | `No_buf | `Err | `Barrier -> Queue.add br t.pending

let fresh_tag t =
  let tag = t.p.p_next_tag in
  t.p.p_next_tag <- tag + 1;
  tag

(* The issuer installed via Blkdev.attach. *)
let issue t (rq : Blkdev.request) =
  let op = wire_op rq in
  let br =
    { br_tag = fresh_tag t;
      br_op = op;
      br_lba = rq.Blkdev.rq_lba;
      br_count = rq.Blkdev.rq_count;
      br_req = Some rq;
      br_buf = -1;
      br_sent = false;
      br_submit_ns = Engine.now t.k.Kernel.eng;
      br_serial = -1;
      br_cover = (if base_op op = Proxy_proto.blk_op_flush then t.p.p_serial else 0) }
  in
  Hashtbl.replace t.p.p_inflight br.br_tag br;
  enqueue_or_send t br

(* Trailing barrier after a replay: issued only once every replayed (and
   subsequent) request has drained, so it covers the whole replay set. *)
let maybe_replay_flush t =
  if
    t.p.p_replay_flush && not t.quiescing
    && Hashtbl.length t.p.p_inflight = 0
    && Queue.is_empty t.pending
  then begin
    t.p.p_replay_flush <- false;
    let br =
      { br_tag = fresh_tag t;
        br_op = Proxy_proto.blk_op_flush;
        br_lba = 0;
        br_count = 0;
        br_req = None;
        br_buf = -1;
        br_sent = false;
        br_submit_ns = Engine.now t.k.Kernel.eng;
        br_serial = -1;
        br_cover = t.p.p_serial }
    in
    Hashtbl.replace t.p.p_inflight br.br_tag br;
    enqueue_or_send t br
  end

let oldest_inflight_tag t =
  Hashtbl.fold (fun tag _ acc -> min tag acc) t.p.p_inflight max_int

let handle_complete t m =
  if t.parked then
    (* A parked standby never submitted anything: any completion it
       sends can only be forged (possibly naming a live generation's
       tag through the shared persist record). *)
    Sud_obs.Metrics.incr t.m_stale
  else
  let tag = Msg.arg m 0 and status = Msg.arg m 1 in
  match Hashtbl.find_opt t.p.p_inflight tag with
  | None ->
    (* Unknown or already-completed tag: a stale or forged completion.
       Nothing to acknowledge; count it and move on. *)
    Sud_obs.Metrics.incr t.m_stale
  | Some br when not br.br_sent ->
    (* In flight but never sent this generation (parked, or awaiting
       replay): the driver cannot legitimately know this tag — forged. *)
    Sud_obs.Metrics.incr t.m_stale
  | Some br ->
    Hashtbl.remove t.p.p_inflight tag;
    t.on_wire <- t.on_wire - 1;
    t.p.p_serial <- t.p.p_serial + 1;
    br.br_serial <- t.p.p_serial;
    (* Defensive copy on the read path: shared buffer -> kernel-private
       request bytes, before the buffer goes back to the pool.  The
       driver cannot rewrite data the cache already accepted. *)
    (if base_op br.br_op = Proxy_proto.blk_op_read && status = 0 && br.br_buf >= 0 then
       match Bufpool.get t.pool br.br_buf, br.br_req with
       | Some buf, Some rq ->
         let len = min (br.br_count * Blkdev.sector_size) (Bytes.length rq.Blkdev.rq_data) in
         Driver_api.charge t.k.Kernel.cpu ~label:"kernel:sud"
           (Cost_model.copy_cost (model t) ~bytes:len);
         let data = Bufpool.read t.pool buf ~off:0 ~len in
         Bytes.blit data 0 rq.Blkdev.rq_data 0 len
       | _ -> ());
    if br.br_buf >= 0 then begin
      Bufpool.free t.pool br.br_buf;
      br.br_buf <- -1
    end;
    (* Retain completed non-FUA writes until a flush proves them durable. *)
    if is_write br && br.br_op land Proxy_proto.blk_op_fua = 0 && status = 0 then
      t.p.p_unflushed <- br :: t.p.p_unflushed;
    (* Flush covering. *)
    (if is_flush br && status = 0 then
       if oldest_inflight_tag t > br.br_tag then begin
         let keep, drop =
           List.partition (fun w -> w.br_serial > br.br_cover) t.p.p_unflushed
         in
         t.p.p_unflushed <- keep;
         Sud_obs.Metrics.add t.m_covered_drops (List.length drop)
       end
       else
         (* An older request is still in flight: this flush completion
            cannot be trusted to cover anything (forged-completion
            defense) — keep the retention. *)
         Sud_obs.Metrics.incr t.m_cover_blocked);
    (match br.br_req with
     | Some rq -> Blkdev.complete rq ~status
     | None -> ());
    drain_pending t;
    maybe_replay_flush t

let attach_issuer t bd = Blkdev.attach bd (fun rq -> issue t rq)

let handle_register t m =
  if t.nqueues > 0 then Some (Msg.make ~kind:Proxy_proto.down_blkdev_register ~args:[ 1 ] ())
  else if t.parked then begin
    (* Parked (warm-standby) registration: record the driver's geometry
       and report ready, leaving persist record, blkdev and issuer with
       the live generation until [adopt] swaps this proxy in. *)
    t.capacity <- Msg.arg m 0;
    t.nqueues <- max 1 (Msg.arg m 1);
    ignore (Sync.Waitq.broadcast t.ready : int);
    Some (Msg.make ~kind:Proxy_proto.down_blkdev_register ~args:[ 0 ] ())
  end
  else begin
    let capacity = Msg.arg m 0 and nq = max 1 (Msg.arg m 1) in
    if Sud_obs.Trace.on () then
      ignore
        (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"proxy" ~name:"register"
           ~attrs:[ "driver", t.name; "class", "blk" ] ());
    t.capacity <- capacity;
    t.nqueues <- nq;
    let bd =
      match t.p.p_blkdev with
      | Some bd ->
        (* Supervised restart: the blkdev (cache, staging queue, waiting
           readers) survived the previous generation's death. *)
        Blkdev.set_capacity bd capacity;
        bd
      | None ->
        let bd = Blkdev.create ~eng:t.k.Kernel.eng ~name:t.name ~capacity () in
        t.p.p_blkdev <- Some bd;
        bd
    in
    if Blkdev.find t.k.Kernel.blk t.name = None then Blkdev.register t.k.Kernel.blk bd;
    (* A clean generation attaches straight away.  A generation with
       surviving state must not: staged requests would overtake the
       replay, so the supervisor's [resume] call replays first. *)
    if
      Hashtbl.length t.p.p_inflight = 0 && t.p.p_unflushed = []
      && not t.p.p_replay_flush && not t.quiescing
    then attach_issuer t bd;
    ignore (Sync.Waitq.broadcast t.ready : int);
    Some (Msg.make ~kind:Proxy_proto.down_blkdev_register ~args:[ 0 ] ())
  end

let handle_downcall t ~queue:_ m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.down_blk_complete then begin
    handle_complete t m;
    None
  end
  else if kind = Proxy_proto.down_blkdev_register then handle_register t m
  else if kind = Proxy_proto.down_irq_ack then begin
    Safe_pci.irq_ack ~queue:(Msg.arg m 0) t.grant;
    None
  end
  else if kind = Proxy_proto.down_printk then begin
    klogf t Klog.Info "%s: %s" t.name (Bytes.to_string m.Msg.payload);
    None
  end
  else begin
    klogf t Klog.Warn "sud-blk(%s): unexpected downcall %d" t.name kind;
    None
  end

let create k ~chan ~grant ~pool ~name ?(request_timeout_ns = 10_000_000) ?(parked = false) ?adopt () =
  let p = match adopt with Some p -> p | None -> persist_create () in
  let t =
    { k;
      chan;
      grant;
      pool;
      name;
      p;
      request_timeout_ns;
      ready = Sync.Waitq.create ();
      nqueues = 0;
      capacity = 0;
      is_hung = false;
      quiescing = false;
      parked;
      on_wire = 0;
      pending = Queue.create ();
      m_submits =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"blk_submits" ();
      m_replays =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"blk_replays" ();
      m_stale =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"blk_stale_completions" ();
      m_covered_drops =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"blk_covered_drops" ();
      m_cover_blocked =
        Sud_obs.Metrics.counter ~labels:[ "driver", name ] ~subsystem:"proxy"
          ~name:"blk_cover_blocked" () }
  in
  Uchan.set_downcall_handler chan (fun ~queue m -> handle_downcall t ~queue m);
  t

let irq_sink t ~queue =
  let nq = Uchan.num_queues t.chan in
  let q = if queue >= 0 && queue < nq then queue else 0 in
  ignore
    (Uchan.transfer t.chan ~queue:q ~from:`Kernel Uchan.Nonblock
       (Msg.make ~kind:Proxy_proto.up_interrupt ~args:[ queue ] ())
     : bool)

let blkdev t = t.p.p_blkdev
let persist t = t.p
let capacity t = t.capacity
let inflight t = Hashtbl.length t.p.p_inflight
let retained t = List.length t.p.p_unflushed

let inflight_flush t =
  Hashtbl.fold (fun _ br acc -> acc || is_flush br) t.p.p_inflight false

(* One line per in-flight request, oldest first — sudctl blk status and
   harness diagnostics. *)
let inflight_summary t =
  let now = Engine.now t.k.Kernel.eng in
  let rows = Hashtbl.fold (fun _ br acc -> br :: acc) t.p.p_inflight [] in
  let rows = List.sort (fun a b -> compare a.br_tag b.br_tag) rows in
  String.concat "\n"
    (List.map
       (fun br ->
          Printf.sprintf "tag %d op %d lba %d count %d sent %b buf %d age %d us"
            br.br_tag br.br_op br.br_lba br.br_count br.br_sent br.br_buf
            ((now - br.br_submit_ns) / 1_000))
       rows)
  ^ Printf.sprintf "\npending %d on_wire %d quiescing %b is_hung %b"
      (Queue.length t.pending) t.on_wire t.quiescing t.is_hung

let wait_ready t ~timeout_ns =
  let deadline = Engine.now t.k.Kernel.eng + timeout_ns in
  let rec loop () =
    if t.nqueues > 0 then t.p.p_blkdev
    else
      let left = deadline - Engine.now t.k.Kernel.eng in
      if left <= 0 then None
      else
        match Sync.Waitq.wait_timeout t.k.Kernel.eng t.ready left with
        | Fiber.Interrupted -> None
        | Fiber.Normal | Fiber.Timeout -> loop ()
  in
  loop ()

let wait_registered t ~timeout_ns =
  let deadline = Engine.now t.k.Kernel.eng + timeout_ns in
  let rec loop () =
    if t.nqueues > 0 then true
    else
      let left = deadline - Engine.now t.k.Kernel.eng in
      if left <= 0 then false
      else
        match Sync.Waitq.wait_timeout t.k.Kernel.eng t.ready left with
        | Fiber.Interrupted -> false
        | Fiber.Normal | Fiber.Timeout -> loop ()
  in
  loop ()

(* Hung when the sync path said so, or when the oldest in-flight request
   outlived the request timeout — the escalation path for dropped and
   corrupted completions and for dropped flushes, none of which produce
   any other signal.  A parked standby shares the live generation's
   persist record, whose in-flight ages say nothing about this proxy. *)
let hung t =
  t.is_hung
  || (not t.quiescing) && (not t.parked)
     &&
     let now = Engine.now t.k.Kernel.eng in
     Hashtbl.fold
       (fun _ br acc -> acc || now - br.br_submit_ns > t.request_timeout_ns)
       t.p.p_inflight false

let quiesce t =
  t.quiescing <- true;
  (* A parked standby dying (or being discarded) must not detach the
     blkdev the live generation is serving through the shared persist. *)
  if not t.parked then
    match t.p.p_blkdev with
    | Some bd -> if Blkdev.attached bd then Blkdev.detach bd
    | None -> ()

(* Called on the NEW generation after a supervised restart: replay the
   retention and the in-flight set in tag order on the fresh channel,
   owe a trailing barrier, then reattach the device so staged requests
   follow the replay. *)
let resume t =
  if t.parked then ()   (* must be adopted before it may serve *)
  else begin
  t.quiescing <- false;
  match t.p.p_blkdev with
  | None -> ()
  | Some bd ->
    let retained = t.p.p_unflushed in
    t.p.p_unflushed <- [];
    List.iter (fun br -> Hashtbl.replace t.p.p_inflight br.br_tag br) retained;
    let all = Hashtbl.fold (fun _ br acc -> br :: acc) t.p.p_inflight [] in
    let all = List.sort (fun a b -> compare a.br_tag b.br_tag) all in
    List.iter
      (fun br ->
         br.br_buf <- -1;          (* the old generation's pool is gone *)
         br.br_sent <- false;      (* and its wire died with it *)
         br.br_serial <- -1;
         Sud_obs.Metrics.incr t.m_replays;
         enqueue_or_send t br)
      all;
    if List.exists is_write all then t.p.p_replay_flush <- true;
    if all <> [] then
      klogf t Klog.Info "sud-blk(%s): replayed %d request%s after restart" t.name
        (List.length all)
        (if List.length all = 1 then "" else "s");
    attach_issuer t bd;
    maybe_replay_flush t
  end

let unregister t =
  quiesce t;
  t.quiescing <- false

(* ---- handoff / adopt: the generation-swap contract ---- *)

type Proxy_class.state += Blk_state of persist

let handoff t = Blk_state t.p

let adopt t st =
  match st with
  | Blk_state p ->
    if t.parked then begin
      t.p <- p;
      (match p.p_blkdev with
       | Some bd ->
         (* The standby's recorded registration supplies the fresh
            generation's geometry; the surviving blkdev (cache, staging
            queue, waiting readers) keeps its identity. *)
         if t.capacity > 0 then Blkdev.set_capacity bd t.capacity;
         if Blkdev.find t.k.Kernel.blk t.name = None then Blkdev.register t.k.Kernel.blk bd
       | None -> ());
      t.parked <- false
    end
  | _ -> ()

let instance t =
  Proxy_class.Instance
    ( (module struct
        type nonrec t = t

        let class_name = "blk"
        let chan t = t.chan
        let hung = hung
        let quiesce = quiesce
        let resume = resume
        let degrade = unregister

        (* Reattachment happens through resume after the fresh driver's
           register downcall. *)
        let revive _ = ()
        let handoff = handoff
        let adopt = adopt
      end),
      t )
