type t = {
  k : Kernel.t;
  chan : Uchan.t;
  pool : Bufpool.t;
  name : string;
  mutable ready : bool;
  mutable quiescing : bool;
  ready_wait : Sync.Waitq.t;
  mutable periods : int;
  period_wait : Sync.Waitq.t;
}

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let handle_downcall t m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.down_audio_register then begin
    t.ready <- true;
    ignore (Sync.Waitq.broadcast t.ready_wait : int);
    Some (Msg.make ~kind ~args:[ 0 ] ())
  end
  else if kind = Proxy_proto.down_audio_period then begin
    t.periods <- t.periods + 1;
    ignore (Sync.Waitq.broadcast t.period_wait : int);
    None
  end
  else if kind = Proxy_proto.down_tx_free then begin
    Bufpool.free t.pool (Msg.arg m 0);
    None
  end
  else if kind = Proxy_proto.down_irq_ack then None   (* handled by grant in host *)
  else if kind = Proxy_proto.down_printk then begin
    klogf t Klog.Info "%s: %s" t.name (Bytes.to_string m.Msg.payload);
    None
  end
  else begin
    klogf t Klog.Warn "sud-audio(%s): unexpected downcall %d" t.name kind;
    None
  end

let create k ~chan ~grant ~pool ~name () =
  let t =
    { k;
      chan;
      pool;
      name;
      ready = false;
      quiescing = false;
      ready_wait = Sync.Waitq.create ();
      periods = 0;
      period_wait = Sync.Waitq.create () }
  in
  Uchan.set_downcall_handler chan (fun ~queue:_ m ->
      if m.Msg.kind = Proxy_proto.down_irq_ack then begin
        Safe_pci.irq_ack ~queue:(Msg.arg m 0) grant;
        None
      end
      else handle_downcall t m);
  t

let wait_cond k waitq ~timeout_ns cond =
  let deadline = Engine.now k.Kernel.eng + timeout_ns in
  let rec loop () =
    if cond () then true
    else begin
      let left = deadline - Engine.now k.Kernel.eng in
      if left <= 0 then false
      else
        match Sync.Waitq.wait_timeout k.Kernel.eng waitq left with
        | Fiber.Interrupted -> false
        | Fiber.Normal | Fiber.Timeout -> loop ()
    end
  in
  loop ()

let wait_ready t ~timeout_ns = wait_cond t.k t.ready_wait ~timeout_ns (fun () -> t.ready)

let sync_call t kind args =
  if t.quiescing then Error "driver quiesced"
  else
  match Uchan.transfer t.chan ~from:`Kernel Uchan.Sync (Msg.make ~kind ~args ()) with
  | Error Uchan.Hung -> Error "driver hung"
  | Error Uchan.Interrupted -> Error "interrupted"
  | Error Uchan.Closed -> Error "driver is gone"
  | Ok r when Msg.arg r 0 <> 0 -> Error (Bytes.to_string r.Msg.payload)
  | Ok r -> Ok r

let start t = Result.map (fun _ -> ()) (sync_call t Proxy_proto.up_audio_start [])
let stop t = Result.map (fun _ -> ()) (sync_call t Proxy_proto.up_audio_stop [])

let write t pcm =
  if t.quiescing then 0
  else
  match Bufpool.alloc t.pool with
  | None -> 0
  | Some buf ->
    let n = min (Bytes.length pcm) buf.Bufpool.size in
    Bufpool.write t.pool buf ~off:0 (Bytes.sub pcm 0 n);
    (match
       Uchan.transfer t.chan ~from:`Kernel Uchan.Async
         (Msg.make ~kind:Proxy_proto.up_audio_write ~args:[ buf.Bufpool.id; n ] ())
     with
     | Ok () -> n
     | Error _ ->
       Bufpool.free t.pool buf.Bufpool.id;
       0)

let set_volume t v = Result.map (fun _ -> ()) (sync_call t Proxy_proto.up_audio_set_vol [ v ])

let get_volume t =
  Result.map (fun r -> Msg.arg r 1) (sync_call t Proxy_proto.up_audio_get_vol [])

let periods_elapsed t = t.periods

let wait_period t ~timeout_ns =
  let before = t.periods in
  wait_cond t.k t.period_wait ~timeout_ns (fun () -> t.periods > before)

(* Handoff carries the mirrored playback position, so an adopted
   generation continues the period count instead of restarting at 0. *)
type Proxy_class.state += Audio_state of { periods : int }

let handoff t = Audio_state { periods = t.periods }

let adopt t st =
  match st with Audio_state { periods } -> t.periods <- periods | _ -> ()

let instance t =
  Proxy_class.Instance
    ( (module struct
        type nonrec t = t

        let class_name = "audio"
        let chan t = t.chan
        let hung _ = false
        let quiesce t = t.quiescing <- true
        let resume t = t.quiescing <- false
        let degrade t = t.ready <- false
        let revive _ = ()   (* the register downcall flips [ready] back *)
        let handoff = handoff
        let adopt = adopt
      end),
      t )
