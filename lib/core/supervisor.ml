(* Kernel-side driver supervisor: closes the paper's detect -> contain ->
   recover loop automatically instead of leaving kill/restart to the
   administrator (§4.1, §5.2).  One supervisor per supervised device; a
   kernel watchdog fiber polls the misbehavior signals and a heartbeat,
   and on detection quiesces the proxy, kills the driver, resets the
   device and restarts the driver with exponential backoff under a
   restart budget.  Crash-looping past the budget quarantines the
   device.

   The supervisor is class-independent: detection and the kill/reset/
   restart machinery run through the unified proxy lifecycle
   ({!Proxy_class}: hung / heartbeat / quiesce / resume), with only the
   containment of each class's kernel-facing object (netdev backlog,
   blkdev staging) specialized per target. *)

type policy = {
  tick_ns : int;
  heartbeat : bool;
  hang_timeout_ns : int;
  backoff_initial_ns : int;
  backoff_max_ns : int;
  max_restarts : int;
  restart_window_ns : int;
  backlog_limit : int;
  flood_threshold : int;
  quota_limits : Quota.limits;
  overflow_threshold : int;
}

let default_policy =
  { tick_ns = 5_000_000;
    heartbeat = true;
    hang_timeout_ns = 20_000_000;
    backoff_initial_ns = 2_000_000;
    backoff_max_ns = 200_000_000;
    max_restarts = 5;
    restart_window_ns = 2_000_000_000;
    backlog_limit = 256;
    flood_threshold = 512;
    quota_limits = Quota.default_limits;
    overflow_threshold = 512 }

type state = Running | Recovering | Quarantined | Stopped

type event =
  | Fault_detected of string
  | Driver_killed
  | Driver_restarted of { restarts : int; outage_ns : int }
  | Driver_quarantined of string

type stats = {
  st_state : state;
  st_restarts : int;
  st_detections : int;
  st_last_reason : string option;
  st_last_detect_latency_ns : int;
  st_last_recovery_ns : int;
}

(* The class-independent view of one driver generation. *)
type gen = {
  g_proc : Process.t;
  g_chan : Uchan.t;
  g_grant : Safe_pci.grant;
  g_class : Proxy_class.instance;
  g_net : Driver_host.started option;
  g_blk : Driver_host.started_blk option;
}

let gen_of_net s =
  { g_proc = Driver_host.proc s;
    g_chan = Driver_host.chan s;
    g_grant = Driver_host.grant s;
    g_class = Driver_host.class_of s;
    g_net = Some s;
    g_blk = None }

let gen_of_blk s =
  { g_proc = Driver_host.blk_proc s;
    g_chan = Driver_host.blk_chan s;
    g_grant = Driver_host.blk_grant s;
    g_class = Driver_host.blk_class s;
    g_net = None;
    g_blk = Some s }

(* What the supervisor restarts, and the class-specific containment
   state that survives generations. *)
type target =
  | Tgt_net of {
      netdev : Netdev.t;
      defensive : bool;
      factory : attempt:int -> Driver_api.net_driver;
    }
  | Tgt_blk of {
      persist : Proxy_blk.persist;
      factory : attempt:int -> Driver_api.blk_driver;
    }

type t = {
  k : Kernel.t;
  sp : Safe_pci.t;
  bdf : Bus.bdf;
  name : string;
  uid : int;
  policy : policy;
  target : target;
  kickq : Sync.Waitq.t;
  mutable state : state;
  mutable cur : gen option;
  mutable listeners : (event -> unit) list;
  mutable restarts : int;
  mutable detections : int;
  mutable last_reason : string option;
  mutable last_detect_latency : int;
  mutable last_recovery : int;
  mutable restart_times : int list;     (* attempt timestamps, newest first *)
  mutable last_ok : int;                (* last instant every check passed *)
  mutable gen : int;                    (* driver generation; guards exit hooks *)
  mutable was_up : bool;
  (* per-generation signal baselines *)
  mutable base_malformed : int;
  mutable base_storms : int;
  mutable base_faults : int;
  mutable last_dropped : int;
  mutable base_proto : int;
  mutable last_overflow : int;
  quota : Quota.t;
  sm : metrics;
}
and metrics = {
  sm_detections : Sud_obs.Metrics.counter;
  sm_restarts : Sud_obs.Metrics.counter;
  sm_quarantines : Sud_obs.Metrics.counter;
  sm_detect_ns : Sud_obs.Metrics.histogram;   (* fault -> detection latency *)
  sm_outage_ns : Sud_obs.Metrics.histogram;   (* detection -> restarted *)
}

let now t = Engine.now t.k.Kernel.eng

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let emit t ev = List.iter (fun f -> f ev) (List.rev t.listeners)

let on_event t f = t.listeners <- f :: t.listeners

let set_sysfs_state t v =
  match Sysfs.find_bdf t.k.Kernel.sysfs t.bdf with
  | Some e -> Sysfs.set_attr e "sud_state" v
  | None -> ()

(* IOMMU faults attributed to this device since boot. *)
let count_faults t =
  List.fold_left
    (fun acc f ->
       match f with
       | Bus.Iommu_fault { source; _ } when source = t.bdf -> acc + 1
       | _ -> acc)
    0
    (Iommu.faults t.k.Kernel.iommu)

(* Adopt a fresh driver generation: record it, rebase the signal
   baselines, and arm a death-kick so the watchdog reacts to process
   exit immediately rather than on the next tick. *)
let install t g =
  t.cur <- Some g;
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let um = Uchan.metrics g.g_chan in
  t.base_malformed <- Sud_obs.Metrics.get um.Uchan.um_malformed;
  t.last_dropped <- Sud_obs.Metrics.get um.Uchan.um_dropped;
  t.base_storms <- Safe_pci.grant_storms g.g_grant;
  t.base_faults <- count_faults t;
  (* The channel is recreated each generation, so its conformance counts
     restart from zero; the quota (and its overflow counter) survives. *)
  t.base_proto <- Uchan.proto_violations g.g_chan;
  t.last_overflow <- Quota.notify_overflows t.quota;
  Process.on_exit g.g_proc (fun () ->
      if t.gen = gen && t.state = Running then
        ignore (Sync.Waitq.signal t.kickq : bool))

(* One pass over every misbehavior signal; [None] means healthy.
   Entirely class-independent: every probe goes through the generation
   view or the proxy-class instance. *)
let health_check t =
  match t.cur with
  | None -> Some "no driver process"
  | Some g ->
    let um = Uchan.metrics g.g_chan in
    if not (Process.is_alive g.g_proc) then Some "driver process died"
    else if Uchan.is_closed g.g_chan then Some "uchan closed"
    else if count_faults t > t.base_faults then Some "DMA violation (IOMMU fault)"
    else if Safe_pci.grant_storms g.g_grant > t.base_storms then
      Some "interrupt storm escalation"
    else if Sud_obs.Metrics.get um.Uchan.um_malformed > t.base_malformed then
      Some "malformed uchan message"
    else if Uchan.proto_violations g.g_chan > t.base_proto then
      Some "uchan protocol violation"
    else if Sud_obs.Metrics.get um.Uchan.um_dropped - t.last_dropped >= t.policy.flood_threshold
    then Some "uchan ring flood"
    else if Quota.notify_overflows t.quota - t.last_overflow >= t.policy.overflow_threshold
    then Some "notification flood (quota overflow)"
    else if Proxy_class.hung g.g_class then Some "upcall hung"
    else begin
      t.last_dropped <- Sud_obs.Metrics.get um.Uchan.um_dropped;
      t.last_overflow <- Quota.notify_overflows t.quota;
      if not t.policy.heartbeat then None
      else
        (* The ping is answered inline by the driver's queue-0 service
           loop, bounded by the channel's hang timeout — the heartbeat
           deadline.  Class-independent: one probe for every proxy. *)
        match Proxy_class.heartbeat g.g_class with
        | Ok () -> None
        | Error why -> Some why
    end

(* During recovery the netdev degrades instead of vanishing: frames land
   in the bounded per-queue backlog and replay once the fresh driver
   registers. *)
let backlog_ops t netdev =
  { Netdev.ndo_open = (fun () -> Ok ());
    ndo_stop = (fun () -> ());
    ndo_start_xmit =
      (fun ~queue skb -> Netdev.backlog_push netdev ~queue ~limit:t.policy.backlog_limit skb);
    ndo_do_ioctl = (fun ~cmd:_ ~arg:_ -> Error "device recovering") }

(* Replay queue by queue, each in FIFO order.  dev_xmit re-selects the
   queue with the same RSS hash that parked the frame, so a flow's
   packets replay onto their original queue in their original order. *)
let replay_backlog t netdev =
  let n = ref 0 in
  for q = 0 to Netdev.tx_queues netdev - 1 do
    let rec go () =
      match Netdev.backlog_pop netdev ~queue:q with
      | None -> ()
      | Some skb ->
        ignore (Netstack.dev_xmit t.k.Kernel.net netdev skb : [ `Sent | `Dropped ]);
        incr n;
        go ()
    in
    go ()
  done;
  !n

let unregister_netdev t netdev =
  match Netstack.find_netdev t.k.Kernel.net (Netdev.name netdev) with
  | Some d when d == netdev -> Netstack.unregister_netdev t.k.Kernel.net netdev
  | Some _ | None -> ()

let quarantine t reason =
  t.state <- Quarantined;
  Sud_obs.Metrics.incr t.sm.sm_quarantines;
  (match t.target with
   | Tgt_net { netdev; _ } ->
     let dropped = Netdev.backlog_flush_drop netdev in
     Netdev.netif_carrier_off netdev;
     Netdev.set_up netdev false;
     unregister_netdev t netdev;
     klogf t Klog.Err
       "sud: supervisor(%s): quarantined after %d restarts (%s); netdev removed, %d backlogged frames dropped"
       t.name t.restarts reason dropped
   | Tgt_blk { persist; _ } ->
     (* The blkdev stays registered (readable state for the operator) but
        detached for good; retention is never dropped, so nothing
        acknowledged is lost — it is just no longer served. *)
     let parked =
       match Proxy_blk.persist_blkdev persist with
       | Some bd ->
         if Blkdev.attached bd then Blkdev.detach bd;
         Blkdev.staged_requests bd
       | None -> 0
     in
     klogf t Klog.Err
       "sud: supervisor(%s): quarantined after %d restarts (%s); blkdev detached, %d requests parked, %d writes retained"
       t.name t.restarts reason parked
       (Proxy_blk.persist_retained persist));
  set_sysfs_state t "quarantined";
  emit t (Driver_quarantined reason)

let start_generation t =
  let attempt = t.restarts + 1 in
  (* The quota survives the restart (a crash-looper cannot launder its
     footprint by dying); the epoch tracks the generation, so the new
     channel rejects frames replayed from the dead one. *)
  match t.target with
  | Tgt_net { netdev; defensive; factory } ->
    (match
       Driver_host.start_net t.k t.sp ~uid:t.uid ~defensive_copy:defensive ~name:t.name
         ~bdf:t.bdf ~hang_timeout_ns:t.policy.hang_timeout_ns ~adopt_netdev:netdev
         ~unregister_on_exit:false ~quota:t.quota ~epoch:(t.gen land Msg.max_epoch)
         (factory ~attempt)
     with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_net s))
  | Tgt_blk { persist; factory } ->
    (match
       Driver_host.start_blk t.k t.sp ~uid:t.uid ~name:t.name ~bdf:t.bdf
         ~hang_timeout_ns:t.policy.hang_timeout_ns ~adopt:persist ~quota:t.quota
         ~epoch:(t.gen land Msg.max_epoch) (factory ~attempt)
     with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_blk s))

let recover t reason =
  let detect_t = now t in
  t.detections <- t.detections + 1;
  Sud_obs.Metrics.incr t.sm.sm_detections;
  t.last_reason <- Some reason;
  t.last_detect_latency <- detect_t - t.last_ok;
  Sud_obs.Metrics.observe t.sm.sm_detect_ns t.last_detect_latency;
  (* The detect span closes the causal loop: a DMA-violation detection is
     parented to the IOMMU fault span that triggered it (which in turn
     parents to the uchan RPC), so the JSONL trace reads
     rpc -> fault -> detect -> kill -> restart. *)
  let sp_detect =
    if Sud_obs.Trace.on () then begin
      let parent =
        if String.length reason >= 3 && String.sub reason 0 3 = "DMA" then
          Sud_obs.Trace.recall (Printf.sprintf "iommu.fault.last:%d" t.bdf)
        else 0
      in
      Sud_obs.Trace.emit ~parent ~cat:"sup" ~name:"detect"
        ~attrs:[ "driver", t.name; "reason", reason ] ()
    end
    else 0
  in
  klogf t Klog.Warn "sud: supervisor(%s): detected fault (%s); recovering" t.name reason;
  emit t (Fault_detected reason);
  t.state <- Recovering;
  set_sysfs_state t "recovering";
  (* Contain: quiesce the proxy (stop feeding the doomed generation),
     degrade the class's kernel-facing object, kill the driver, reset
     the device. *)
  (match t.target with
   | Tgt_net { netdev; _ } ->
     t.was_up <- Netdev.is_up netdev;
     Netdev.netif_carrier_off netdev;
     Netdev.set_ops netdev (backlog_ops t netdev);
     (* Senders parked on any stopped queue must fall through to the backlog. *)
     Netdev.netif_tx_wake_all_queues netdev
   | Tgt_blk _ ->
     (* Quiesce below detaches the blkdev; requests park in its staging
        queue and are dispatched after the replay, in order. *)
     ());
  (match t.cur with
   | Some g ->
     Proxy_class.quiesce g.g_class;
     Process.kill g.g_proc;            (* grant revoked via exit hooks *)
     t.cur <- None
   | None -> ());
  (match Safe_pci.reset_device t.sp t.bdf with
   | Ok () -> ()
   | Error e -> klogf t Klog.Warn "sud: supervisor(%s): reset failed: %s" t.name e);
  let sp_kill =
    if sp_detect <> 0 then
      Sud_obs.Trace.emit ~parent:sp_detect ~cat:"sup" ~name:"kill"
        ~attrs:[ "driver", t.name ] ()
    else 0
  in
  emit t Driver_killed;
  (* Recover: restart with exponential backoff under the restart budget. *)
  let rec attempt_start backoff_exp =
    let n = now t in
    let window_start = n - t.policy.restart_window_ns in
    t.restart_times <- List.filter (fun ts -> ts >= window_start) t.restart_times;
    if List.length t.restart_times >= t.policy.max_restarts then begin
      if sp_kill <> 0 then
        ignore
          (Sud_obs.Trace.emit ~parent:sp_kill ~cat:"sup" ~name:"quarantine"
             ~attrs:[ "driver", t.name ] ());
      quarantine t (Printf.sprintf "restart budget exhausted (%d in window); last fault: %s"
                      (List.length t.restart_times) reason)
    end
    else begin
      t.restart_times <- n :: t.restart_times;
      let delay =
        min (t.policy.backoff_initial_ns * (1 lsl min backoff_exp 16)) t.policy.backoff_max_ns
      in
      ignore (Fiber.sleep t.k.Kernel.eng delay : Fiber.wake);
      match start_generation t with
      | Error e ->
        klogf t Klog.Warn "sud: supervisor(%s): restart attempt failed: %s" t.name e;
        attempt_start (backoff_exp + 1)
      | Ok g ->
        install t g;
        t.restarts <- t.restarts + 1;
        Sud_obs.Metrics.incr t.sm.sm_restarts;
        (* Resume through the unified lifecycle: for blk this replays the
           retention + in-flight sets and reattaches the blkdev; for net
           it re-opens the admission gate (the netdev-level reopen and
           backlog replay follow). *)
        Proxy_class.resume g.g_class;
        let replayed =
          match t.target with
          | Tgt_net { netdev; _ } ->
            (if t.was_up then
               match Netstack.ifconfig_up t.k.Kernel.net netdev with
               | Ok () -> ()
               | Error e ->
                 klogf t Klog.Warn "sud: supervisor(%s): reopen failed: %s" t.name e);
            replay_backlog t netdev
          | Tgt_blk { persist; _ } -> Proxy_blk.persist_inflight persist
        in
        t.state <- Running;
        set_sysfs_state t "running";
        let outage = now t - detect_t in
        t.last_recovery <- outage;
        Sud_obs.Metrics.observe t.sm.sm_outage_ns outage;
        if sp_kill <> 0 then
          ignore
            (Sud_obs.Trace.emit ~parent:sp_kill ~dur_ns:outage ~cat:"sup" ~name:"restart"
               ~attrs:[ "driver", t.name; "gen", string_of_int t.restarts ] ());
        t.last_ok <- now t;
        klogf t Klog.Info
          "sud: supervisor(%s): driver restarted (gen %d) after %d us outage, %d %s replayed"
          t.name t.restarts (outage / 1_000) replayed
          (match t.target with Tgt_net _ -> "frames" | Tgt_blk _ -> "requests");
        emit t (Driver_restarted { restarts = t.restarts; outage_ns = outage })
    end
  in
  attempt_start 0

let rec watchdog t () =
  match t.state with
  | Quarantined | Stopped -> ()
  | Running | Recovering ->
    ignore (Sync.Waitq.wait_timeout t.k.Kernel.eng t.kickq t.policy.tick_ns : Fiber.wake);
    (match t.state with
     | Running ->
       (match health_check t with
        | None -> t.last_ok <- now t
        | Some reason -> recover t reason)
     | Recovering | Quarantined | Stopped -> ());
    watchdog t ()

let make t0_target k sp ~policy ~uid ~name ~bdf ~quota g =
  let t =
    { k;
      sp;
      bdf;
      name;
      uid;
      policy;
      target = t0_target;
      kickq = Sync.Waitq.create ();
      state = Running;
      cur = None;
      listeners = [];
      restarts = 0;
      detections = 0;
      last_reason = None;
      last_detect_latency = 0;
      last_recovery = 0;
      restart_times = [];
      last_ok = Engine.now k.Kernel.eng;
      gen = 0;
      was_up = false;
      base_malformed = 0;
      base_storms = 0;
      base_faults = 0;
      last_dropped = 0;
      base_proto = 0;
      last_overflow = 0;
      quota;
      sm =
        (let labels = [ "driver", name ] in
         let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"supervisor" ~name:n () in
         let h n = Sud_obs.Metrics.histogram ~labels ~subsystem:"supervisor" ~name:n () in
         { sm_detections = c "detections";
           sm_restarts = c "restarts";
           sm_quarantines = c "quarantines";
           sm_detect_ns = h "detect_latency_ns";
           sm_outage_ns = h "outage_ns" }) }
  in
  install t g;
  set_sysfs_state t "running";
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs)
       ~name:("supervisor:" ^ name) (watchdog t)
     : Fiber.t);
  t

let start k sp ?(policy = default_policy) ?(uid = 1000) ?(defensive_copy = true) ?name
    ~bdf factory =
  let drv = factory ~attempt:0 in
  let name = Option.value ~default:drv.Driver_api.nd_name name in
  let quota = Quota.create k.Kernel.eng ~limits:policy.quota_limits ~name () in
  match
    Driver_host.start_net k sp ~uid ~defensive_copy ~name ~bdf
      ~hang_timeout_ns:policy.hang_timeout_ns ~unregister_on_exit:false ~quota ~epoch:0
      drv
  with
  | Error e -> Error e
  | Ok s ->
    let target =
      Tgt_net { netdev = Driver_host.netdev s; defensive = defensive_copy; factory }
    in
    Ok (make target k sp ~policy ~uid ~name ~bdf ~quota (gen_of_net s))

let start_blk k sp ?(policy = default_policy) ?(uid = 1000) ?name ~bdf factory =
  let drv = factory ~attempt:0 in
  let name = Option.value ~default:drv.Driver_api.bd_name name in
  let quota = Quota.create k.Kernel.eng ~limits:policy.quota_limits ~name () in
  let persist = Proxy_blk.persist_create () in
  match
    Driver_host.start_blk k sp ~uid ~name ~bdf ~hang_timeout_ns:policy.hang_timeout_ns
      ~adopt:persist ~quota ~epoch:0 drv
  with
  | Error e -> Error e
  | Ok s ->
    let target = Tgt_blk { persist; factory } in
    Ok (make target k sp ~policy ~uid ~name ~bdf ~quota (gen_of_blk s))

let stop t =
  match t.state with
  | Stopped | Quarantined -> ()
  | Running | Recovering ->
    t.state <- Stopped;
    (match t.cur with
     | Some g ->
       (* Quiesce-then-kill: an administrative stop goes through the same
          lifecycle edge as a recovery, so in-flight state is retained
          (blk) or backlogged (net) rather than torn mid-request. *)
       Proxy_class.quiesce g.g_class;
       Process.kill g.g_proc;
       t.cur <- None
     | None -> ());
    (match t.target with
     | Tgt_net { netdev; _ } -> unregister_netdev t netdev
     | Tgt_blk _ -> ());
    set_sysfs_state t "stopped";
    ignore (Sync.Waitq.signal t.kickq : bool)

let state t = t.state

let netdev t =
  match t.target with
  | Tgt_net { netdev; _ } -> netdev
  | Tgt_blk _ -> invalid_arg "Supervisor.netdev: blk device"

let blkdev t =
  match t.target with
  | Tgt_blk { persist; _ } -> Proxy_blk.persist_blkdev persist
  | Tgt_net _ -> None

let bdf t = t.bdf
let name t = t.name
let current t = Option.bind t.cur (fun g -> g.g_net)
let current_blk t = Option.bind t.cur (fun g -> g.g_blk)
let proc t = Option.map (fun g -> g.g_proc) t.cur
let chan t = Option.map (fun g -> g.g_chan) t.cur
let grant t = Option.map (fun g -> g.g_grant) t.cur
let class_of t = Option.map (fun g -> g.g_class) t.cur
let quota t = t.quota

let metrics t = t.sm

let stats t =
  { st_state = t.state;
    st_restarts = t.restarts;
    st_detections = t.detections;
    st_last_reason = t.last_reason;
    st_last_detect_latency_ns = t.last_detect_latency;
    st_last_recovery_ns = t.last_recovery }
