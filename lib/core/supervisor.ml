(* Kernel-side driver supervisor: closes the paper's detect -> contain ->
   recover loop automatically instead of leaving kill/restart to the
   administrator (§4.1, §5.2).  One supervisor per supervised device; a
   kernel watchdog fiber polls the misbehavior signals and a heartbeat,
   and on detection quiesces the proxy, kills the driver, resets the
   device and restarts the driver with exponential backoff under a
   restart budget.  Crash-looping past the budget quarantines the
   device.

   The supervisor is class-independent: detection and the kill/reset/
   restart machinery run through the unified proxy lifecycle
   ({!Proxy_class}: hung / heartbeat / quiesce / resume), with only the
   containment of each class's kernel-facing object (netdev backlog,
   blkdev staging) specialized per target. *)

type policy = {
  tick_ns : int;
  heartbeat : bool;
  hang_timeout_ns : int;
  backoff_initial_ns : int;
  backoff_max_ns : int;
  max_restarts : int;
  restart_window_ns : int;
  backlog_limit : int;
  flood_threshold : int;
  quota_limits : Quota.limits;
  overflow_threshold : int;
  standby : bool;
}

let default_policy =
  { tick_ns = 5_000_000;
    heartbeat = true;
    hang_timeout_ns = 20_000_000;
    backoff_initial_ns = 2_000_000;
    backoff_max_ns = 200_000_000;
    max_restarts = 5;
    restart_window_ns = 2_000_000_000;
    backlog_limit = 256;
    flood_threshold = 512;
    quota_limits = Quota.default_limits;
    overflow_threshold = 512;
    standby = true }

type state = Running | Recovering | Quarantined | Stopped

type event =
  | Fault_detected of string
  | Driver_killed
  | Driver_restarted of { restarts : int; outage_ns : int }
  | Driver_quarantined of string

type stats = {
  st_state : state;
  st_restarts : int;
  st_detections : int;
  st_last_reason : string option;
  st_last_detect_latency_ns : int;
  st_last_recovery_ns : int;
  st_warm_swaps : int;
  st_upgrades : int;
}

(* The class-independent view of one driver generation. *)
type gen = {
  g_proc : Process.t;
  g_chan : Uchan.t;
  g_grant : Safe_pci.grant;
  g_class : Proxy_class.instance;
  g_net : Driver_host.started option;
  g_blk : Driver_host.started_blk option;
}

let gen_of_net s =
  { g_proc = Driver_host.proc s;
    g_chan = Driver_host.chan s;
    g_grant = Driver_host.grant s;
    g_class = Driver_host.class_of s;
    g_net = Some s;
    g_blk = None }

let gen_of_blk s =
  { g_proc = Driver_host.blk_proc s;
    g_chan = Driver_host.blk_chan s;
    g_grant = Driver_host.blk_grant s;
    g_class = Driver_host.blk_class s;
    g_net = None;
    g_blk = Some s }

(* What the supervisor restarts, and the class-specific containment
   state that survives generations. *)
type target =
  | Tgt_net of {
      netdev : Netdev.t;
      defensive : bool;
      factory : attempt:int -> Driver_api.net_driver;
    }
  | Tgt_blk of {
      persist : Proxy_blk.persist;
      factory : attempt:int -> Driver_api.blk_driver;
    }

type t = {
  k : Kernel.t;
  sp : Safe_pci.t;
  bdf : Bus.bdf;
  name : string;
  uid : int;
  policy : policy;
  target : target;
  kickq : Sync.Waitq.t;
  mutable state : state;
  mutable cur : gen option;
  mutable listeners : (event -> unit) list;
  mutable restarts : int;
  mutable detections : int;
  mutable last_reason : string option;
  mutable last_detect_latency : int;
  mutable last_recovery : int;
  mutable restart_times : int list;     (* attempt timestamps, newest first *)
  mutable last_ok : int;                (* last instant every check passed *)
  mutable gen : int;                    (* driver generation; guards exit hooks *)
  mutable was_up : bool;
  (* per-generation signal baselines *)
  mutable base_malformed : int;
  mutable base_storms : int;
  mutable base_faults : int;
  mutable last_dropped : int;
  mutable base_proto : int;
  mutable last_overflow : int;
  quota : Quota.t;
  (* Warm-standby generation: pre-forked and parked so a lethal fault
     swaps instead of cold-starting.  None when policy.standby is off. *)
  mutable sb : Driver_host.warm Standby.t option;
  mutable warm_swaps : int;
  mutable upgrades : int;
  sm : metrics;
}
and metrics = {
  sm_detections : Sud_obs.Metrics.counter;
  sm_restarts : Sud_obs.Metrics.counter;
  sm_quarantines : Sud_obs.Metrics.counter;
  sm_detect_ns : Sud_obs.Metrics.histogram;   (* fault -> detection latency *)
  sm_outage_ns : Sud_obs.Metrics.histogram;   (* detection -> restarted *)
}

let now t = Engine.now t.k.Kernel.eng

let klogf t lvl fmt = Klog.printk t.k.Kernel.klog lvl fmt

let emit t ev = List.iter (fun f -> f ev) (List.rev t.listeners)

let on_event t f = t.listeners <- f :: t.listeners

let set_sysfs_state t v =
  match Sysfs.find_bdf t.k.Kernel.sysfs t.bdf with
  | Some e -> Sysfs.set_attr e "sud_state" v
  | None -> ()

(* IOMMU faults attributed to this device since boot. *)
let count_faults t =
  List.fold_left
    (fun acc f ->
       match f with
       | Bus.Iommu_fault { source; _ } when source = t.bdf -> acc + 1
       | _ -> acc)
    0
    (Iommu.faults t.k.Kernel.iommu)

(* Adopt a fresh driver generation: record it, rebase the signal
   baselines, and arm a death-kick so the watchdog reacts to process
   exit immediately rather than on the next tick. *)
let install t g =
  t.cur <- Some g;
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let um = Uchan.metrics g.g_chan in
  t.base_malformed <- Sud_obs.Metrics.get um.Uchan.um_malformed;
  t.last_dropped <- Sud_obs.Metrics.get um.Uchan.um_dropped;
  t.base_storms <- Safe_pci.grant_storms g.g_grant;
  t.base_faults <- count_faults t;
  (* The channel is recreated each generation, so its conformance counts
     restart from zero; the quota (and its overflow counter) survives. *)
  t.base_proto <- Uchan.proto_violations g.g_chan;
  t.last_overflow <- Quota.notify_overflows t.quota;
  Process.on_exit g.g_proc (fun () ->
      if t.gen = gen && t.state = Running then
        ignore (Sync.Waitq.signal t.kickq : bool))

(* One pass over every misbehavior signal; [None] means healthy.
   Entirely class-independent: every probe goes through the generation
   view or the proxy-class instance. *)
let health_check t =
  match t.cur with
  | None -> Some "no driver process"
  | Some g ->
    let um = Uchan.metrics g.g_chan in
    if not (Process.is_alive g.g_proc) then Some "driver process died"
    else if Uchan.is_closed g.g_chan then Some "uchan closed"
    else if count_faults t > t.base_faults then Some "DMA violation (IOMMU fault)"
    else if Safe_pci.grant_storms g.g_grant > t.base_storms then
      Some "interrupt storm escalation"
    else if Sud_obs.Metrics.get um.Uchan.um_malformed > t.base_malformed then
      Some "malformed uchan message"
    else if Uchan.proto_violations g.g_chan > t.base_proto then
      Some "uchan protocol violation"
    else if Sud_obs.Metrics.get um.Uchan.um_dropped - t.last_dropped >= t.policy.flood_threshold
    then Some "uchan ring flood"
    else if Quota.notify_overflows t.quota - t.last_overflow >= t.policy.overflow_threshold
    then Some "notification flood (quota overflow)"
    else if Proxy_class.hung g.g_class then Some "upcall hung"
    else begin
      t.last_dropped <- Sud_obs.Metrics.get um.Uchan.um_dropped;
      t.last_overflow <- Quota.notify_overflows t.quota;
      if not t.policy.heartbeat then None
      else
        (* The ping is answered inline by the driver's queue-0 service
           loop, bounded by the channel's hang timeout — the heartbeat
           deadline.  Class-independent: one probe for every proxy. *)
        match Proxy_class.heartbeat g.g_class with
        | Ok () -> None
        | Error why -> Some why
    end

(* During recovery the netdev degrades instead of vanishing: frames land
   in the bounded per-queue backlog and replay once the fresh driver
   registers. *)
let backlog_ops t netdev =
  { Netdev.ndo_open = (fun () -> Ok ());
    ndo_stop = (fun () -> ());
    ndo_start_xmit =
      (fun ~queue skb -> Netdev.backlog_push netdev ~queue ~limit:t.policy.backlog_limit skb);
    ndo_do_ioctl = (fun ~cmd:_ ~arg:_ -> Error "device recovering") }

(* Replay queue by queue, each in FIFO order.  dev_xmit re-selects the
   queue with the same RSS hash that parked the frame, so a flow's
   packets replay onto their original queue in their original order. *)
let replay_backlog t netdev =
  let n = ref 0 in
  for q = 0 to Netdev.tx_queues netdev - 1 do
    let rec go () =
      match Netdev.backlog_pop netdev ~queue:q with
      | None -> ()
      | Some skb ->
        ignore (Netstack.dev_xmit t.k.Kernel.net netdev skb : [ `Sent | `Dropped ]);
        incr n;
        go ()
    in
    go ()
  done;
  !n

let unregister_netdev t netdev =
  match Netstack.find_netdev t.k.Kernel.net (Netdev.name netdev) with
  | Some d when d == netdev -> Netstack.unregister_netdev t.k.Kernel.net netdev
  | Some _ | None -> ()

let quarantine t reason =
  t.state <- Quarantined;
  Sud_obs.Metrics.incr t.sm.sm_quarantines;
  (* No further generations will run; tear down the parked one too. *)
  (match t.sb with Some sb -> Standby.disable sb | None -> ());
  (match t.target with
   | Tgt_net { netdev; _ } ->
     let dropped = Netdev.backlog_flush_drop netdev in
     Netdev.netif_carrier_off netdev;
     Netdev.set_up netdev false;
     unregister_netdev t netdev;
     klogf t Klog.Err
       "sud: supervisor(%s): quarantined after %d restarts (%s); netdev removed, %d backlogged frames dropped"
       t.name t.restarts reason dropped
   | Tgt_blk { persist; _ } ->
     (* The blkdev stays registered (readable state for the operator) but
        detached for good; retention is never dropped, so nothing
        acknowledged is lost — it is just no longer served. *)
     let parked =
       match Proxy_blk.persist_blkdev persist with
       | Some bd ->
         if Blkdev.attached bd then Blkdev.detach bd;
         Blkdev.staged_requests bd
       | None -> 0
     in
     klogf t Klog.Err
       "sud: supervisor(%s): quarantined after %d restarts (%s); blkdev detached, %d requests parked, %d writes retained"
       t.name t.restarts reason parked
       (Proxy_blk.persist_retained persist));
  set_sysfs_state t "quarantined";
  emit t (Driver_quarantined reason)

let start_generation t =
  let attempt = t.restarts + 1 in
  (* The quota survives the restart (a crash-looper cannot launder its
     footprint by dying); the epoch tracks the generation, so the new
     channel rejects frames replayed from the dead one. *)
  match t.target with
  | Tgt_net { netdev; defensive; factory } ->
    (match
       Driver_host.launch t.k t.sp ~uid:t.uid ~name:t.name ~bdf:t.bdf
         ~hang_timeout_ns:t.policy.hang_timeout_ns ~quota:t.quota
         ~epoch:(t.gen land Msg.max_epoch)
         (Driver_host.net ~defensive_copy:defensive ~adopt_netdev:netdev
            ~unregister_on_exit:false ())
         (factory ~attempt)
     with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_net s))
  | Tgt_blk { persist; factory } ->
    (match
       Driver_host.launch t.k t.sp ~uid:t.uid ~name:t.name ~bdf:t.bdf
         ~hang_timeout_ns:t.policy.hang_timeout_ns ~quota:t.quota
         ~epoch:(t.gen land Msg.max_epoch)
         (Driver_host.blk ~adopt:persist ())
         (factory ~attempt)
     with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_blk s))

(* --- Warm-standby machinery -------------------------------------------- *)

(* The class-agnostic snapshot of the live generation's kernel-facing
   state, captured before the kill so the successor can adopt it.  When
   the generation is already gone (process reaped before we got here)
   the persistent target objects are the fallback truth. *)
let capture_handoff t =
  match t.cur with
  | Some g -> Proxy_class.handoff g.g_class
  | None ->
    (match t.target with
     | Tgt_net { netdev; _ } -> Proxy_net.Net_state { dev = Some netdev; up = t.was_up }
     | Tgt_blk { persist; _ } -> Proxy_blk.Blk_state persist)

(* Activate a parked generation against the persistent target: open the
   grant (free once the dead generation is reaped), run driver init on
   the freshly reset device, and wait for its register.  The returned
   generation is still parked — the caller adopts the handoff state into
   it before resuming. *)
let activate_warm t w ~attempt =
  match t.target with
  | Tgt_net { netdev; defensive; factory } ->
    (match
       Driver_host.activate_net w ~defensive_copy:defensive ~unregister_on_exit:false
         ~adopt:netdev (factory ~attempt)
     with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_net s))
  | Tgt_blk { persist; factory } ->
    (match Driver_host.activate_blk w ~adopt:persist (factory ~attempt) with
     | Error e -> Error e
     | Ok s -> Ok (gen_of_blk s))

(* Claim the parked standby (if warm for this generation) and activate
   it.  Any failure — no standby, poisoned at the swap instant, driver
   init rejected on the reset device — falls back to the cold path. *)
let take_warm t ~attempt =
  match t.sb with
  | None -> None
  | Some sb ->
    (match Standby.take sb ~tag:t.gen with
     | None -> None
     | Some w ->
       (match activate_warm t w ~attempt with
        | Ok g -> Some g
        | Error e ->
          klogf t Klog.Warn
            "sud: supervisor(%s): warm activation failed (%s); falling back to cold restart"
            t.name e;
          None))

(* Install a fresh generation and restore the datapath: adopt the
   captured handoff state (a cold generation adopts too — its parked
   flag is already clear, so this is a no-op for it), resume through the
   unified lifecycle, reopen/replay the class's kernel-facing object,
   and start warming the next standby.  Returns the replayed count. *)
let swap_in t g ~handoff_state =
  install t g;
  Proxy_class.adopt g.g_class handoff_state;
  Proxy_class.resume g.g_class;
  let replayed =
    match t.target with
    | Tgt_net { netdev; _ } ->
      (if t.was_up then
         match Netstack.ifconfig_up t.k.Kernel.net netdev with
         | Ok () -> ()
         | Error e -> klogf t Klog.Warn "sud: supervisor(%s): reopen failed: %s" t.name e);
      replay_backlog t netdev
    | Tgt_blk { persist; _ } -> Proxy_blk.persist_inflight persist
  in
  t.state <- Running;
  set_sysfs_state t "running";
  (match t.sb with Some sb -> Standby.ensure sb ~tag:t.gen | None -> ());
  replayed

let recover t reason =
  let detect_t = now t in
  t.detections <- t.detections + 1;
  Sud_obs.Metrics.incr t.sm.sm_detections;
  t.last_reason <- Some reason;
  t.last_detect_latency <- detect_t - t.last_ok;
  Sud_obs.Metrics.observe t.sm.sm_detect_ns t.last_detect_latency;
  (* The detect span closes the causal loop: a DMA-violation detection is
     parented to the IOMMU fault span that triggered it (which in turn
     parents to the uchan RPC), so the JSONL trace reads
     rpc -> fault -> detect -> kill -> restart. *)
  let sp_detect =
    if Sud_obs.Trace.on () then begin
      let parent =
        if String.length reason >= 3 && String.sub reason 0 3 = "DMA" then
          Sud_obs.Trace.recall (Printf.sprintf "iommu.fault.last:%d" t.bdf)
        else 0
      in
      Sud_obs.Trace.emit ~parent ~cat:"sup" ~name:"detect"
        ~attrs:[ "driver", t.name; "reason", reason ] ()
    end
    else 0
  in
  klogf t Klog.Warn "sud: supervisor(%s): detected fault (%s); recovering" t.name reason;
  emit t (Fault_detected reason);
  t.state <- Recovering;
  set_sysfs_state t "recovering";
  (* Contain: quiesce the proxy (stop feeding the doomed generation),
     degrade the class's kernel-facing object, kill the driver, reset
     the device. *)
  (match t.target with
   | Tgt_net { netdev; _ } ->
     t.was_up <- Netdev.is_up netdev;
     Netdev.netif_carrier_off netdev;
     Netdev.set_ops netdev (backlog_ops t netdev);
     (* Senders parked on any stopped queue must fall through to the backlog. *)
     Netdev.netif_tx_wake_all_queues netdev
   | Tgt_blk _ ->
     (* Quiesce below detaches the blkdev; requests park in its staging
        queue and are dispatched after the replay, in order. *)
     ());
  (* Snapshot the class state while the dying generation's proxy is still
     around: the successor (warm or cold) adopts it after activation. *)
  let handoff_state = capture_handoff t in
  (match t.cur with
   | Some g ->
     Proxy_class.quiesce g.g_class;
     Process.kill g.g_proc;            (* grant revoked via exit hooks *)
     t.cur <- None
   | None -> ());
  (match Safe_pci.reset_device t.sp t.bdf with
   | Ok () -> ()
   | Error e -> klogf t Klog.Warn "sud: supervisor(%s): reset failed: %s" t.name e);
  let sp_kill =
    if sp_detect <> 0 then
      Sud_obs.Trace.emit ~parent:sp_detect ~cat:"sup" ~name:"kill"
        ~attrs:[ "driver", t.name ] ()
    else 0
  in
  emit t Driver_killed;
  (* Shared bring-up tail for both the warm swap and the cold restart. *)
  let finish g ~warm =
    t.restarts <- t.restarts + 1;
    Sud_obs.Metrics.incr t.sm.sm_restarts;
    if warm then t.warm_swaps <- t.warm_swaps + 1;
    let replayed = swap_in t g ~handoff_state in
    let outage = now t - detect_t in
    t.last_recovery <- outage;
    Sud_obs.Metrics.observe t.sm.sm_outage_ns outage;
    if sp_kill <> 0 then
      ignore
        (Sud_obs.Trace.emit ~parent:sp_kill ~dur_ns:outage ~cat:"sup"
           ~name:(if warm then "swap" else "restart")
           ~attrs:[ "driver", t.name; "gen", string_of_int t.restarts ] ());
    t.last_ok <- now t;
    klogf t Klog.Info
      "sud: supervisor(%s): driver %s (gen %d) after %d us outage, %d %s replayed"
      t.name
      (if warm then "swapped to warm standby" else "restarted")
      t.restarts (outage / 1_000) replayed
      (match t.target with Tgt_net _ -> "frames" | Tgt_blk _ -> "requests");
    emit t (Driver_restarted { restarts = t.restarts; outage_ns = outage })
  in
  let budget_left () =
    let window_start = now t - t.policy.restart_window_ns in
    t.restart_times <- List.filter (fun ts -> ts >= window_start) t.restart_times;
    List.length t.restart_times < t.policy.max_restarts
  in
  (* Warm path: swap the parked standby in with no backoff and no spawn.
     The restart budget still applies — a crash-looper must not launder
     its restarts through the standby. *)
  let warmed =
    budget_left ()
    &&
    match take_warm t ~attempt:(t.restarts + 1) with
    | Some g ->
      t.restart_times <- now t :: t.restart_times;
      finish g ~warm:true;
      true
    | None -> false
  in
  if not warmed then begin
    (* Cold path: restart with exponential backoff under the budget. *)
    let rec attempt_start backoff_exp =
      if not (budget_left ()) then begin
        if sp_kill <> 0 then
          ignore
            (Sud_obs.Trace.emit ~parent:sp_kill ~cat:"sup" ~name:"quarantine"
               ~attrs:[ "driver", t.name ] ());
        quarantine t
          (Printf.sprintf "restart budget exhausted (%d in window); last fault: %s"
             (List.length t.restart_times) reason)
      end
      else begin
        t.restart_times <- now t :: t.restart_times;
        let delay =
          min (t.policy.backoff_initial_ns * (1 lsl min backoff_exp 16))
            t.policy.backoff_max_ns
        in
        ignore (Fiber.sleep t.k.Kernel.eng delay : Fiber.wake);
        match start_generation t with
        | Error e ->
          klogf t Klog.Warn "sud: supervisor(%s): restart attempt failed: %s" t.name e;
          attempt_start (backoff_exp + 1)
        | Ok g -> finish g ~warm:false
      end
    in
    attempt_start 0
  end

let rec watchdog t () =
  match t.state with
  | Quarantined | Stopped -> ()
  | Running | Recovering ->
    ignore (Sync.Waitq.wait_timeout t.k.Kernel.eng t.kickq t.policy.tick_ns : Fiber.wake);
    (match t.state with
     | Running ->
       (match health_check t with
        | None ->
          t.last_ok <- now t;
          (* Converge the standby each healthy tick: a stale or poisoned
             parked generation is discarded and a fresh one warmed. *)
          (match t.sb with Some sb -> Standby.ensure sb ~tag:t.gen | None -> ())
        | Some reason -> recover t reason)
     | Recovering | Quarantined | Stopped -> ());
    watchdog t ()

(* --- Live upgrade / forced failover ------------------------------------ *)

(* Wait (bounded) for a warm standby to be parked Ready for the current
   generation.  Returns false on timeout or when warming is disabled. *)
let wait_standby_ready t ~timeout_ns =
  match t.sb with
  | None -> false
  | Some sb ->
    Standby.ensure sb ~tag:t.gen;
    let deadline = now t + timeout_ns in
    let rec poll () =
      match Standby.status sb with
      | Standby.Ready -> true
      | Standby.Disabled -> false
      | Standby.Idle | Standby.Warming ->
        if now t >= deadline then false
        else begin
          ignore (Fiber.sleep t.k.Kernel.eng 1_000_000 : Fiber.wake);
          poll ()
        end
    in
    poll ()

(* Live upgrade: quiesce the running generation, drain its in-flight
   work to a barrier, hand the class state to the warm standby and
   resume — the planned twin of the fault path, sharing swap_in.  Not a
   detection: no fault counters move and no restart budget is consumed.
   If the primary dies mid-drain (double failover) the swap proceeds —
   the undrained in-flight set replays through resume, same as a crash.
   A standby lost at the swap instant (poisoned) is never installed;
   the upgrade falls back to a cold start of the new generation. *)
let upgrade t =
  match t.state with
  | Quarantined -> Error "driver is quarantined"
  | Stopped -> Error "supervisor is stopped"
  | Recovering -> Error "driver is recovering"
  | Running ->
    if t.sb = None then Error "warm standby disabled by policy"
    else if not (wait_standby_ready t ~timeout_ns:1_000_000_000) then
      Error "no warm standby became ready"
    else begin
      let t0 = now t in
      t.state <- Recovering;
      set_sysfs_state t "upgrading";
      klogf t Klog.Info "sud: supervisor(%s): live upgrade: draining generation %d" t.name
        t.restarts;
      (* Contain exactly like a recovery: stop feeding the old
         generation, degrade the kernel-facing object. *)
      (match t.target with
       | Tgt_net { netdev; _ } ->
         t.was_up <- Netdev.is_up netdev;
         Netdev.netif_carrier_off netdev;
         Netdev.set_ops netdev (backlog_ops t netdev);
         Netdev.netif_tx_wake_all_queues netdev
       | Tgt_blk _ -> ());
      (match t.cur with
       | Some g -> Proxy_class.quiesce g.g_class
       | None -> ());
      (* Drain in-flight block requests to a barrier so the handoff is
         clean; escape if the primary dies under us or the drain stalls
         (whatever remains replays in tag order on resume). *)
      (match t.target with
       | Tgt_blk { persist; _ } ->
         let deadline = now t + 200_000_000 in
         let rec drain () =
           if Proxy_blk.persist_inflight persist > 0 && now t < deadline then
             match t.cur with
             | Some g when Process.is_alive g.g_proc ->
               ignore (Fiber.sleep t.k.Kernel.eng 200_000 : Fiber.wake);
               drain ()
             | Some _ | None ->
               klogf t Klog.Warn
                 "sud: supervisor(%s): primary died during upgrade drain; double failover"
                 t.name
         in
         drain ()
       | Tgt_net _ -> ());
      let handoff_state = capture_handoff t in
      (match t.cur with
       | Some g ->
         Process.kill g.g_proc;
         t.cur <- None
       | None -> ());
      (match Safe_pci.reset_device t.sp t.bdf with
       | Ok () -> ()
       | Error e -> klogf t Klog.Warn "sud: supervisor(%s): reset failed: %s" t.name e);
      let attempt = t.restarts + t.upgrades + 1 in
      let installed =
        match take_warm t ~attempt with
        | Some g ->
          ignore (swap_in t g ~handoff_state : int);
          true
        | None ->
          (* Standby evaporated between the readiness check and the swap
             (e.g. poisoned while draining): cold-start the new
             generation rather than leaving the device dead. *)
          (match start_generation t with
           | Ok g ->
             ignore (swap_in t g ~handoff_state : int);
             true
           | Error e ->
             klogf t Klog.Err "sud: supervisor(%s): upgrade failed cold too: %s" t.name e;
             false)
      in
      if installed then begin
        t.upgrades <- t.upgrades + 1;
        t.last_ok <- now t;
        klogf t Klog.Info "sud: supervisor(%s): live upgrade complete (gen %d, %d upgrades)"
          t.name t.restarts t.upgrades;
        emit t (Driver_restarted { restarts = t.restarts; outage_ns = now t - t0 });
        Ok ()
      end
      else begin
        quarantine t "upgrade failed: no standby and cold start failed";
        Error "upgrade failed: no generation could be started"
      end
    end

(* Operator-forced failover: exercise the exact fault path (detection,
   kill, FLR, warm swap) on demand — the fire drill for the standby. *)
let failover t =
  match t.state with
  | Quarantined -> Error "driver is quarantined"
  | Stopped -> Error "supervisor is stopped"
  | Recovering -> Error "driver is recovering"
  | Running ->
    recover t "administrative failover";
    (match t.state with
     | Running -> Ok ()
     | Quarantined -> Error "failover exhausted the restart budget; quarantined"
     | Recovering | Stopped -> Error "failover did not restore the driver")

let make t0_target k sp ~policy ~uid ~name ~bdf ~quota g =
  let t =
    { k;
      sp;
      bdf;
      name;
      uid;
      policy;
      target = t0_target;
      kickq = Sync.Waitq.create ();
      state = Running;
      cur = None;
      listeners = [];
      restarts = 0;
      detections = 0;
      last_reason = None;
      last_detect_latency = 0;
      last_recovery = 0;
      restart_times = [];
      last_ok = Engine.now k.Kernel.eng;
      gen = 0;
      was_up = false;
      base_malformed = 0;
      base_storms = 0;
      base_faults = 0;
      last_dropped = 0;
      base_proto = 0;
      last_overflow = 0;
      quota;
      sb = None;
      warm_swaps = 0;
      upgrades = 0;
      sm =
        (let labels = [ "driver", name ] in
         let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"supervisor" ~name:n () in
         let h n = Sud_obs.Metrics.histogram ~labels ~subsystem:"supervisor" ~name:n () in
         { sm_detections = c "detections";
           sm_restarts = c "restarts";
           sm_quarantines = c "quarantines";
           sm_detect_ns = h "detect_latency_ns";
           sm_outage_ns = h "outage_ns" }) }
  in
  if policy.standby then begin
    (* The standby generation: process forked, rings allocated and
       charged to the same quota ledger, parked before attach.  The
       grant/DMA pool/driver init are deferred to activation — the
       device has one grant and a reset-on-open, so the parked twin
       must not touch it while the primary owns it. *)
    let warm ~tag =
      (* Mirror the live generation's ring geometry: the swapped-in
         driver must see the same queue count (and thus the same MSI-X
         vector layout) the datapath negotiated. *)
      let queues =
        match t.cur with
        | Some { g_net = Some s; _ } -> Driver_host.queues s
        | Some { g_blk = Some s; _ } -> Driver_host.blk_queues s
        | Some { g_net = None; g_blk = None; _ } | None -> 1
      in
      Driver_host.prefork t.k t.sp ~uid:t.uid ~name:t.name ~bdf:t.bdf
        ~hang_timeout_ns:t.policy.hang_timeout_ns ~queues ~quota:t.quota
        ~epoch:(tag land Msg.max_epoch) ()
    in
    let probe w =
      let proc = Driver_host.warm_proc w in
      let chan = Driver_host.warm_chan w in
      if not (Process.is_alive proc) then Some "standby process died"
      else if Uchan.is_closed chan then Some "standby uchan closed"
      else if Uchan.proto_violations chan > 0 then Some "standby protocol violation"
      else if
        Sud_obs.Metrics.get (Uchan.metrics chan).Uchan.um_malformed > 0
      then Some "standby sent malformed message"
      else None
    in
    let sb = Standby.create k ~name ~warm ~probe ~discard:Driver_host.discard_warm () in
    Standby.set_on_ready sb (fun () ->
        if t.state = Running then set_sysfs_state t "standby_ready");
    t.sb <- Some sb
  end;
  install t g;
  set_sysfs_state t "running";
  (match t.sb with Some sb -> Standby.ensure sb ~tag:t.gen | None -> ());
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs)
       ~name:("supervisor:" ^ name) (watchdog t)
     : Fiber.t);
  t

let start k sp ?(policy = default_policy) ?(uid = 1000) ?(defensive_copy = true) ?name
    ~bdf factory =
  let drv = factory ~attempt:0 in
  let name = Option.value ~default:drv.Driver_api.nd_name name in
  let quota = Quota.create k.Kernel.eng ~limits:policy.quota_limits ~name () in
  match
    Driver_host.launch k sp ~uid ~name ~bdf ~hang_timeout_ns:policy.hang_timeout_ns
      ~quota ~epoch:0
      (Driver_host.net ~defensive_copy ~unregister_on_exit:false ())
      drv
  with
  | Error e -> Error e
  | Ok s ->
    let target =
      Tgt_net { netdev = Driver_host.netdev s; defensive = defensive_copy; factory }
    in
    Ok (make target k sp ~policy ~uid ~name ~bdf ~quota (gen_of_net s))

let start_blk k sp ?(policy = default_policy) ?(uid = 1000) ?name ~bdf factory =
  let drv = factory ~attempt:0 in
  let name = Option.value ~default:drv.Driver_api.bd_name name in
  let quota = Quota.create k.Kernel.eng ~limits:policy.quota_limits ~name () in
  let persist = Proxy_blk.persist_create () in
  match
    Driver_host.launch k sp ~uid ~name ~bdf ~hang_timeout_ns:policy.hang_timeout_ns
      ~quota ~epoch:0
      (Driver_host.blk ~adopt:persist ())
      drv
  with
  | Error e -> Error e
  | Ok s ->
    let target = Tgt_blk { persist; factory } in
    Ok (make target k sp ~policy ~uid ~name ~bdf ~quota (gen_of_blk s))

let stop t =
  match t.state with
  | Stopped | Quarantined -> ()
  | Running | Recovering ->
    t.state <- Stopped;
    (match t.sb with Some sb -> Standby.disable sb | None -> ());
    (match t.cur with
     | Some g ->
       (* Quiesce-then-kill: an administrative stop goes through the same
          lifecycle edge as a recovery, so in-flight state is retained
          (blk) or backlogged (net) rather than torn mid-request. *)
       Proxy_class.quiesce g.g_class;
       Process.kill g.g_proc;
       t.cur <- None
     | None -> ());
    (match t.target with
     | Tgt_net { netdev; _ } -> unregister_netdev t netdev
     | Tgt_blk _ -> ());
    set_sysfs_state t "stopped";
    ignore (Sync.Waitq.signal t.kickq : bool)

let state t = t.state

let netdev t =
  match t.target with
  | Tgt_net { netdev; _ } -> netdev
  | Tgt_blk _ -> invalid_arg "Supervisor.netdev: blk device"

let blkdev t =
  match t.target with
  | Tgt_blk { persist; _ } -> Proxy_blk.persist_blkdev persist
  | Tgt_net _ -> None

let bdf t = t.bdf
let name t = t.name
let current t = Option.bind t.cur (fun g -> g.g_net)
let current_blk t = Option.bind t.cur (fun g -> g.g_blk)
let proc t = Option.map (fun g -> g.g_proc) t.cur
let chan t = Option.map (fun g -> g.g_chan) t.cur
let grant t = Option.map (fun g -> g.g_grant) t.cur
let class_of t = Option.map (fun g -> g.g_class) t.cur
let quota t = t.quota

let standby_status t =
  match t.sb with
  | Some sb -> Standby.status sb
  | None -> Standby.Disabled

let standby_stats t =
  match t.sb with
  | Some sb -> Standby.stats sb
  | None -> (0, 0)

let standby_proc t = Option.map Driver_host.warm_proc (Option.bind t.sb Standby.peek)
let warm_swaps t = t.warm_swaps
let upgrades t = t.upgrades

let metrics t = t.sm

let stats t =
  { st_state = t.state;
    st_restarts = t.restarts;
    st_detections = t.detections;
    st_last_reason = t.last_reason;
    st_last_detect_latency_ns = t.last_detect_latency;
    st_last_recovery_ns = t.last_recovery;
    st_warm_swaps = t.warm_swaps;
    st_upgrades = t.upgrades }
