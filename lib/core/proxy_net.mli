(** The Ethernet proxy driver (paper §3.1; 300 lines in Figure 5).

    Registers a [Netdev.t] with the kernel on behalf of a user-space
    driver and translates between the two worlds:

    - kernel callbacks become upcalls — packet transmission is an
      asynchronous upcall carrying a shared-buffer id (zero further
      copies), ioctls are synchronous {e interruptible} upcalls;
    - driver downcalls ([netif_rx], carrier changes, tx-completion,
      interrupt acks) are serviced from the uchan worker;
    - mirrored shared state (MAC address, carrier) is kept in the
      kernel-side [Netdev.t] and updated by downcalls;
    - received packets are pulled out of driver memory with a {e defensive
      copy fused with checksum verification} (§3.1.2), so a driver
      mutating the buffer afterwards attacks only its own copy.  Passing
      [~defensive_copy:false] reproduces the TOCTOU-vulnerable
      configuration for the security evaluation. *)

type t

val create :
  Kernel.t ->
  chan:Uchan.t ->
  grant:Safe_pci.grant ->
  pool:Bufpool.t ->
  name:string ->
  ?defensive_copy:bool ->
  ?parked:bool ->
  ?adopt:Netdev.t ->
  unit ->
  t
(** Installs the downcall handler on [chan].  The netdev appears once the
    driver performs its [down_net_register] downcall.  With [adopt], the
    proxy does not create a fresh netdev at registration: it takes over
    the given one — swapping in its own ops and MAC, re-registering it
    with the stack only if it is absent — so a supervised device keeps
    one netdev identity across driver restarts.

    With [~parked:true] (warm standby) the registration downcall is
    {e recorded} instead of applied: the driver initializes and reports
    ready, but the netstack is untouched and the proxy serves no
    datapath until {!adopt} swaps it in. *)

val irq_sink : t -> queue:int -> unit
(** Pass to {!Safe_pci.setup_irqs}: forwards queue [queue]'s interrupt
    as an [up_interrupt] upcall on the matching uchan ring
    (non-blocking, interrupt-context safe), so one queue's interrupt
    wakes only that queue's driver fiber. *)

val netdev : t -> Netdev.t option

val wait_ready : t -> timeout_ns:int -> Netdev.t option
(** Block (fiber) until the driver has registered, or time out. *)

val wait_registered : t -> timeout_ns:int -> bool
(** Like {!wait_ready} but also satisfied by a {e parked} registration
    (one recorded but not yet applied) — the warm-standby readiness
    probe. *)

type Proxy_class.state += Net_state of { dev : Netdev.t option; up : bool }
(** The net class's handoff payload: the surviving kernel netdev (if
    any) and its admin-up state at handoff time. *)

val handoff : t -> Proxy_class.state
(** Snapshot the kernel-facing state ({!Net_state}).  Idempotent. *)

val adopt : t -> Proxy_class.state -> unit
(** Install a handoff payload.  On a parked proxy this applies the
    recorded registration to the surviving netdev (MAC and ops swap in;
    identity, queues and backlog stay) and unparks the datapath.  On a
    live proxy it is a no-op — registration already attached. *)

val hung : t -> bool
(** The proxy observed the driver failing to service upcalls. *)

val quiesce : t -> unit
(** Stop admitting new upcalls: transmits bounce as [Xmit_busy] (the
    supervisor's backlog catches them), ioctls fail fast.  Called
    before a faulty generation is killed. *)

val resume : t -> unit
(** Re-open the intake gate after a successful restart. *)

val unregister : t -> unit
(** Remove the netdev from the stack (driver death/restart). *)

val rx_validation_failures : t -> int
(** netif_rx downcalls whose address failed validation. *)

val rx_checksum_failures : t -> int
(** Frames the fused defensive-copy+checksum pass rejected (bad
    transport checksum in the private copy) — dropped at the proxy,
    never delivered to the stack. *)

val rx_pool_counters : t -> int * int
(** (hits, fresh): defensive-copy buffers served from the recycle pool
    vs freshly allocated.  Under steady load hits dominate. *)

val frames_per_poll : t -> Sud_obs.Metrics.histogram
(** Log2 histogram of frames delivered per interrupt-ack on any queue —
    the NAPI coalescing factor (1 = no coalescing; higher buckets mean
    one upcall covered a batch of frames). *)

val instance : t -> Proxy_class.instance
(** This proxy behind the class-independent supervision surface. *)

val handle_downcall : t -> queue:int -> Msg.t -> Msg.t option
(** The downcall dispatcher ([queue] is the ring the message arrived
    on), exposed so class proxies that extend Ethernet (the wireless
    proxy) can chain to it for the common opcodes. *)
