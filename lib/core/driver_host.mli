(** Driver lifecycle management (paper §4.1): start an untrusted driver
    process for a device, kill it like any other process, restart it.

    {!launch} performs the whole §4.1 sequence for any device class:
    find the matching PCI device in sysfs, chown its sud files to the
    driver's UID, spawn the driver process, open the device, set up the
    shared buffer pool and uchan, start the kernel-side proxy and the
    SUD-UML dispatch loop, and wait for the driver to register with its
    class subsystem.  The class-specific [start_*] spellings survive as
    deprecated aliases for external trees.

    Must be called from a fiber. *)

type started

val start_net :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?defensive_copy:bool ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  ?hang_timeout_ns:int ->
  ?queues:int ->
  ?adopt_netdev:Netdev.t ->
  ?unregister_on_exit:bool ->
  ?quota:Quota.t ->
  ?epoch:int ->
  Driver_api.net_driver ->
  (started, string) result
  [@@deprecated "use Driver_host.launch with Driver_host.net"]
(** Defaults: [uid] 1000, defensive copy on, [name] the driver's name,
    device found by the driver's ID table.  [hang_timeout_ns] tunes the
    uchan's sync-upcall deadline.  [queues] is the number of uchan ring
    pairs (default: the device's MSI-X table size, capped at
    {!Uchan.max_queues}) — the datapath width the driver sees through
    [pd_msix_vectors].  The supervisor passes [adopt_netdev] (reuse a
    surviving netdev instead of registering a new one) and
    [unregister_on_exit:false] (it owns the netdev's lifecycle; process
    death must not tear the interface down).

    With [quota], the driver's whole footprint is charged to the ledger:
    the device grant and its DMA mappings (via {!Safe_pci.open_device}),
    the uchan ring memory (the queue count is first {e negotiated} down
    until the footprint fits the remaining budget), and every
    driver-side notification kick draws a token
    ({!Quota.note_notify}).  [epoch] (default 0) is the uchan generation
    stamp: the channel stamps it into every outgoing header and its
    conformance validator rejects ingress frames carrying any other —
    {!restart} starts the replacement at [epoch + 1], so frames replayed
    from a dead generation adjudicate as stale. *)

val proc : started -> Process.t
val netdev : started -> Netdev.t
val grant : started -> Safe_pci.grant
val chan : started -> Uchan.t
val proxy : started -> Proxy_net.t

val class_of : started -> Proxy_class.instance
(** The proxy behind the class-independent supervision surface — what
    the supervisor holds instead of a [Proxy_net.t]. *)

val uml : started -> Sud_uml.t
val bdf : started -> Bus.bdf

val queues : started -> int
(** Ring pairs on this driver's uchan. *)

val quota : started -> Quota.t option
val epoch : started -> int
(** The uchan generation stamp this instance marshals into (and demands
    of) every message header. *)

val kill : started -> unit
(** kill -9: the process dies, the grant is revoked, the uchan closes,
    the netdev disappears. *)

val restart :
  Kernel.t -> Safe_pci.t -> started -> Driver_api.net_driver -> (started, string) result
(** Kill (if still alive) and start a fresh driver process for the same
    device — the paper's crash-recovery story. *)

val set_memory_limit : started -> bytes:int -> unit
(** setrlimit on the driver process. *)

(** {1 Other device classes} *)

type started_wifi

val start_wifi :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  Driver_api.wifi_driver ->
  (started_wifi, string) result
  [@@deprecated "use Driver_host.launch with Driver_host.wifi"]

val wifi_proxy : started_wifi -> Proxy_wifi.t
val wifi_netdev : started_wifi -> Netdev.t
val wifi_proc : started_wifi -> Process.t
val kill_wifi : started_wifi -> unit

type started_audio

val start_audio :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  Driver_api.audio_driver ->
  (started_audio, string) result
  [@@deprecated "use Driver_host.launch with Driver_host.audio"]

val audio_proxy : started_audio -> Proxy_audio.t
val audio_proc : started_audio -> Process.t
val kill_audio : started_audio -> unit

type started_usb

val start_usb :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  bind_storage:(Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result) ->
  bind_keyboard:
    (Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit) ->
  Driver_api.usb_host_driver ->
  (started_usb, string) result
  [@@deprecated "use Driver_host.launch with Driver_host.usb"]
(** The USB host proxy: block and input surfaces appear as the driver
    process enumerates its bus; use {!Proxy_usb.wait_block}. *)

val usb_proxy : started_usb -> Proxy_usb.t
val usb_proc : started_usb -> Process.t
val kill_usb : started_usb -> unit

(** {1 sud-blk: asynchronous multiqueue block}

    [start_blk] mirrors [start_net]'s full sequence — sysfs match,
    chown, spawn, grant, shared pool (sized for fully merged 64-sector
    requests), quota-negotiated uchan rings — and waits for the driver
    to register its block device.  The supervisor passes [adopt] (the
    {!Proxy_blk.persist} record carrying tags, in-flight table and
    unflushed retention across generations) so recovery can replay. *)

type started_blk

val start_blk :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  ?hang_timeout_ns:int ->
  ?request_timeout_ns:int ->
  ?queues:int ->
  ?adopt:Proxy_blk.persist ->
  ?quota:Quota.t ->
  ?epoch:int ->
  Driver_api.blk_driver ->
  (started_blk, string) result
  [@@deprecated "use Driver_host.launch with Driver_host.blk"]

val blk_proc : started_blk -> Process.t
val blk_chan : started_blk -> Uchan.t
val blk_grant : started_blk -> Safe_pci.grant
val blk_proxy : started_blk -> Proxy_blk.t
val blk_class : started_blk -> Proxy_class.instance
val blk_uml : started_blk -> Sud_uml.t
val blk_bdf : started_blk -> Bus.bdf
val blk_blkdev : started_blk -> Blkdev.t
val blk_queues : started_blk -> int
val blk_quota : started_blk -> Quota.t option
val blk_epoch : started_blk -> int
val kill_blk : started_blk -> unit

(** {1 The class-indexed lifecycle API}

    One entry point over every device class.  The GADT index carries
    both the driver type a class consumes and the handle it produces,
    so [launch k sp (net ()) e1000] and [launch k sp (blk ()) nvme]
    type-check against the right driver and yield the right handle —
    net/blk/usb/wifi/audio share one spelling and one option surface. *)

type (_, _) cls =
  | Net : {
      defensive_copy : bool;
      adopt_netdev : Netdev.t option;
      unregister_on_exit : bool option;
    }
      -> (Driver_api.net_driver, started) cls
  | Blk : {
      adopt : Proxy_blk.persist option;
      request_timeout_ns : int option;
    }
      -> (Driver_api.blk_driver, started_blk) cls
  | Wifi : (Driver_api.wifi_driver, started_wifi) cls
  | Audio : (Driver_api.audio_driver, started_audio) cls
  | Usb : {
      bind_storage : Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result;
      bind_keyboard :
        Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit;
    }
      -> (Driver_api.usb_host_driver, started_usb) cls

val net :
  ?defensive_copy:bool ->
  ?adopt_netdev:Netdev.t ->
  ?unregister_on_exit:bool ->
  unit ->
  (Driver_api.net_driver, started) cls
(** Class witness for Ethernet; options mirror the old [start_net]. *)

val blk :
  ?adopt:Proxy_blk.persist ->
  ?request_timeout_ns:int ->
  unit ->
  (Driver_api.blk_driver, started_blk) cls

val wifi : (Driver_api.wifi_driver, started_wifi) cls
val audio : (Driver_api.audio_driver, started_audio) cls

val usb :
  bind_storage:(Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result) ->
  bind_keyboard:
    (Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit) ->
  (Driver_api.usb_host_driver, started_usb) cls

val launch :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?name:string ->
  ?bdf:Bus.bdf ->
  ?hang_timeout_ns:int ->
  ?queues:int ->
  ?quota:Quota.t ->
  ?epoch:int ->
  ('d, 'r) cls ->
  'd ->
  ('r, string) result
(** Start an untrusted driver of any class.  The shared options mean
    the same thing for every class ([queues]/[quota]/[epoch] are
    accepted — and meaningful — only for the quota-negotiated net and
    blk datapaths; the lighter classes ignore them). *)

(** {1 Warm-standby generations}

    A [warm] generation is pre-forked and parked before attach: the
    process is spawned and its epoch-stamped uchan rings are allocated
    and charged to the same per-driver {!Quota.t} ledger as the live
    generation.  The device grant is exclusive per BDF {e and opening
    it resets the device}, so everything device-facing — grant, DMA
    pool, proxy, driver init — waits for [activate_*], which the
    supervisor calls at swap time: the dead generation's kill has
    released the grant and the FLR has left the device in exactly the
    quiesced state a fresh driver expects to initialize against. *)

type warm

val prefork :
  Kernel.t ->
  Safe_pci.t ->
  ?uid:int ->
  ?hang_timeout_ns:int ->
  ?queues:int ->
  ?quota:Quota.t ->
  ?epoch:int ->
  name:string ->
  bdf:Bus.bdf ->
  unit ->
  (warm, string) result
(** Spawn and park a standby generation.  [queues] (default 1) should
    be the live generation's negotiated width — without a grant the
    standby cannot size itself from the MSI-X table. *)

val warm_proc : warm -> Process.t
val warm_chan : warm -> Uchan.t
val warm_epoch : warm -> int
val warm_queues : warm -> int

val discard_warm : warm -> unit
(** Kill the parked process; its exit hooks release the ring charge. *)

val activate_net :
  warm ->
  ?defensive_copy:bool ->
  ?unregister_on_exit:bool ->
  adopt:Netdev.t ->
  Driver_api.net_driver ->
  (started, string) result
(** Finish a parked generation against the freshly reset device: open
    the grant, build the DMA pool, create the proxy {e parked} (the
    driver's registration is recorded, not applied), serve the driver,
    and wait for it to register.  On success the caller swaps the proxy
    in with {!Proxy_class.adopt} and replays via [resume]; on error the
    standby process has been killed (its grant released), so a cold
    start can follow.  [unregister_on_exit] defaults to [false]: a
    standby exists only under a supervisor, which owns the netdev. *)

val activate_blk :
  warm ->
  ?request_timeout_ns:int ->
  adopt:Proxy_blk.persist ->
  Driver_api.blk_driver ->
  (started_blk, string) result
(** Blk counterpart of {!activate_net}: the parked proxy shares (but
    does not touch) the surviving persist record until adopted. *)
