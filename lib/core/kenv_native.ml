let env (k : Kernel.t) ~label =
  let cpu = k.Kernel.cpu in
  let kernel = Process.kernel_process k.Kernel.procs in
  { Driver_api.env_jiffies = (fun () -> Engine.now k.Kernel.eng / 1_000_000);
    env_msleep =
      (fun ms -> ignore (Fiber.sleep k.Kernel.eng (ms * 1_000_000) : Fiber.wake));
    env_usleep = (fun us -> ignore (Fiber.sleep k.Kernel.eng (us * 1_000) : Fiber.wake));
    env_may_sleep = (fun () -> not (Preempt.in_atomic k.Kernel.preempt));
    env_udelay = (fun us -> Driver_api.charge cpu ~label (us * 1_000));
    env_printk = (fun s -> Klog.printk k.Kernel.klog Klog.Info "%s: %s" label s);
    env_spawn =
      (fun ~name fn -> ignore (Process.spawn_fiber kernel ~name fn : Fiber.t));
    env_consume = (fun ns -> Driver_api.charge cpu ~label ns) }

let pcidev (k : Kernel.t) bdf ~label =
  match Pci_topology.find_device k.Kernel.topo bdf with
  | None -> Error "no such PCI device"
  | Some dev ->
    let topo = k.Kernel.topo in
    let cpu = k.Kernel.cpu in
    let m = Cpu.cost_model cpu in
    let charge ns = Driver_api.charge cpu ~label ns in
    let cfg = Device.cfg dev in
    let vectors = ref None in
    let cfg_read ~off ~size =
      charge m.Cost_model.pio_access_ns;
      Pci_topology.cfg_read topo bdf ~off ~size
    in
    let cfg_write ~off ~size v =
      charge m.Cost_model.pio_access_ns;
      Pci_topology.cfg_write topo bdf ~off ~size v;
      Ok ()
    in
    let enable () =
      let cur = Pci_topology.cfg_read topo bdf ~off:Pci_cfg.command ~size:2 in
      Pci_topology.cfg_write topo bdf ~off:Pci_cfg.command ~size:2
        (cur lor Pci_cfg.cmd_io_enable lor Pci_cfg.cmd_mem_enable lor Pci_cfg.cmd_bus_master
         lor Pci_cfg.cmd_intx_disable);
      Ok ()
    in
    let map_bar bar =
      match Pci_topology.bar_region topo bdf ~bar with
      | None -> Error (Printf.sprintf "BAR %d is not a memory BAR" bar)
      | Some (base, size) ->
        Ok
          { Driver_api.mmio_read =
              (fun ~off ~size:sz ->
                 if off < 0 || off + sz > size then invalid_arg "mmio read out of range";
                 charge m.Cost_model.mmio_access_ns;
                 Pci_topology.mmio_read topo ~addr:(base + off) ~size:sz);
            mmio_write =
              (fun ~off ~size:sz v ->
                 if off < 0 || off + sz > size then invalid_arg "mmio write out of range";
                 charge m.Cost_model.mmio_access_ns;
                 Pci_topology.mmio_write topo ~addr:(base + off) ~size:sz v) }
    in
    let kernel_iopb = Ioport.Iopb.all () in
    let io_bar bar =
      match Pci_topology.io_region topo bdf ~bar with
      | None -> Error (Printf.sprintf "BAR %d is not an IO BAR" bar)
      | Some (base, _len) ->
        Ok
          { Driver_api.pio_read =
              (fun ~off ~size ->
                 charge m.Cost_model.pio_access_ns;
                 Ioport.read k.Kernel.ioports ~iopb:kernel_iopb ~port:(base + off) ~size);
            pio_write =
              (fun ~off ~size v ->
                 charge m.Cost_model.pio_access_ns;
                 Ioport.write k.Kernel.ioports ~iopb:kernel_iopb ~port:(base + off) ~size v) }
    in
    let alloc_dma ?coherent:_ ~bytes () =
      if bytes <= 0 then Error "alloc_dma: empty region"
      else begin
        let pages = (bytes + Bus.page_mask) / Bus.page_size in
        let phys = Phys_mem.alloc_pages k.Kernel.mem ~pages in
        let size = pages * Bus.page_size in
        Ok
          { Driver_api.dma_addr = phys;   (* trusted drivers use physical addresses *)
            dma_size = size;
            dma_read =
              (fun ~off ~len ->
                 if off < 0 || len < 0 || off + len > size then
                   invalid_arg "dma_read out of range";
                 Phys_mem.read k.Kernel.mem ~addr:(phys + off) ~len);
            dma_write =
              (fun ~off data ->
                 if off < 0 || off + Bytes.length data > size then
                   invalid_arg "dma_write out of range";
                 Phys_mem.write k.Kernel.mem ~addr:(phys + off) data) }
      end
    in
    let free_dma (r : Driver_api.dma_region) =
      Phys_mem.free_pages k.Kernel.mem ~addr:r.Driver_api.dma_addr
        ~pages:(r.Driver_api.dma_size / Bus.page_size)
    in
    let msix_vectors () =
      match Pci_cfg.find_capability cfg Pci_cfg.msix_cap_id with
      | None -> 1
      | Some _ -> max 1 (Pci_cfg.msix_table_size cfg)
    in
    let request_irqs ~n handler =
      match !vectors with
      | Some _ -> Error "irq already requested"
      | None ->
        if n < 1 then Error "request_irqs: need at least one vector"
        else if n > 1 && msix_vectors () < n then
          Error
            (Printf.sprintf "request_irqs: device exposes %d MSI-X vectors, %d requested"
               (msix_vectors ()) n)
        else begin
          let vs = Irq.alloc_vectors k.Kernel.irq ~n in
          match
            Irq.request_irqs k.Kernel.irq ~vectors:vs ~name:label
              (fun ~queue ~source:_ -> handler ~queue)
          with
          | Error e -> Error e
          | Ok () ->
            vectors := Some vs;
            if n > 1 then begin
              Array.iteri
                (fun qi v ->
                   Pci_cfg.msix_configure cfg ~vector:qi ~address:Bus.msi_window_base ~data:v;
                   Pci_cfg.msix_set_mask cfg ~vector:qi false)
                vs;
              Pci_cfg.msix_set_enabled cfg true
            end
            else Pci_cfg.msi_configure cfg ~address:Bus.msi_window_base ~data:vs.(0);
            if Iommu.ir_available k.Kernel.iommu then
              Array.iter (fun v -> Iommu.ir_allow k.Kernel.iommu ~source:bdf ~vector:v) vs;
            Ok ()
        end
    in
    let request_irq handler = request_irqs ~n:1 (fun ~queue:_ -> handler ()) in
    let free_irq () =
      match !vectors with
      | Some vs ->
        Irq.free_irqs k.Kernel.irq ~vectors:vs;
        vectors := None
      | None -> ()
    in
    Ok
      { Driver_api.pd_vendor = Pci_cfg.read cfg ~off:Pci_cfg.vendor_id ~size:2;
        pd_device = Pci_cfg.read cfg ~off:Pci_cfg.device_id ~size:2;
        pd_bdf = bdf;
        pd_cfg_read = cfg_read;
        pd_cfg_write = cfg_write;
        pd_enable = enable;
        pd_map_bar = map_bar;
        pd_io_bar = io_bar;
        pd_alloc_dma = alloc_dma;
        pd_free_dma = free_dma;
        pd_request_irq = request_irq;
        pd_request_irqs = request_irqs;
        pd_free_irq = free_irq;
        pd_irq_ack = (fun ?queue:_ () -> ());
        pd_msix_vectors = msix_vectors;
        pd_find_capability = (fun id -> Pci_cfg.find_capability cfg id) }
