type started = {
  s_k : Kernel.t;
  s_sp : Safe_pci.t;
  s_bdf : Bus.bdf;
  s_uid : int;
  s_name : string;
  s_defensive : bool;
  s_proc : Process.t;
  s_chan : Uchan.t;
  s_grant : Safe_pci.grant;
  s_proxy : Proxy_net.t;
  s_class : Proxy_class.instance;
  s_uml : Sud_uml.t;
  s_netdev : Netdev.t;
  s_queues : int;
  s_quota : Quota.t option;
  s_epoch : int;
}

let pool_bufs = 128
let pool_buf_size = 2048

let find_device k (drv : Driver_api.net_driver) =
  match Sysfs.match_ids k.Kernel.sysfs ~ids:drv.Driver_api.nd_ids with
  | [] -> Error "no matching PCI device in sysfs"
  | e :: _ -> Ok e.Sysfs.bdf

let start_net_at k sp ?hang_timeout_ns ?queues ?adopt_netdev ?(unregister_on_exit = true)
    ?quota ?(epoch = 0) ~uid ~defensive_copy ~name ~bdf (drv : Driver_api.net_driver) =
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver" ~name:"start"
         ~attrs:[ "driver", name; "bdf", Bus.string_of_bdf bdf ] ());
  Safe_pci.register_device sp bdf;
  Safe_pci.set_owner sp bdf ~uid;
  let proc = Process.spawn k.Kernel.procs ~name ~uid in
  match Safe_pci.open_device sp ?quota bdf ~proc with
  | Error e ->
    Process.kill proc;
    Error ("open device: " ^ e)
  | Ok grant ->
    (match
       Safe_pci.alloc_dma grant
         ~bytes:(Bufpool.region_size ~count:pool_bufs ~buf_size:pool_buf_size)
         ()
     with
     | Error e ->
       Process.kill proc;
       Error ("shared pool: " ^ e)
     | Ok region ->
       let pool =
         Bufpool.create
           ~read:(fun ~off ~len -> region.Driver_api.dma_read ~off ~len)
           ~write:(fun ~off ~data -> region.Driver_api.dma_write ~off data)
           ~base_addr:region.Driver_api.dma_addr ~count:pool_bufs ~buf_size:pool_buf_size
       in
       (* One uchan ring pair per deliverable vector: the device's MSI-X
          table sizes the datapath unless the caller narrows it. *)
       let queues =
         match queues with
         | Some q -> max 1 (min q Uchan.max_queues)
         | None -> max 1 (min (Safe_pci.msix_vectors grant) Uchan.max_queues)
       in
       (* Quota negotiation: clamp the queue count until the ring
          footprint fits the driver's uchan budget, then charge exactly
          the negotiated footprint (released again on driver exit, so a
          restart generation re-charges from a clean ledger). *)
       let slots = 256 in
       let queues, ring_charge =
         match quota with
         | None -> queues, 0
         | Some q ->
           let queues = Quota.negotiate_queues q ~slots ~queues in
           queues, Quota.ring_bytes ~slots ~queues
       in
       (match
          match quota with
          | Some q -> Quota.charge_uchan q ~bytes:ring_charge
          | None -> Ok ()
        with
        | Error e ->
          Process.kill proc;
          Error ("uchan rings: " ^ e)
        | Ok () ->
       let chan =
         Uchan.create k ?hang_timeout_ns ~slots ~queues ~epoch
           ~profile:Proxy_proto.conformance_profile ~driver_label:name ()
       in
       (match quota with
        | None -> ()
        | Some q ->
          Uchan.set_notify_hook chan (Some (fun ~queue -> Quota.note_notify q ~queue));
          Process.on_exit proc (fun () -> Quota.release_uchan q ~bytes:ring_charge));
       let proxy =
         Proxy_net.create k ~chan ~grant ~pool ~name ~defensive_copy ?adopt:adopt_netdev ()
       in
       let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
       Process.on_exit proc (fun () ->
           if Sud_obs.Trace.on () then
             ignore
               (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver"
                  ~name:"exit" ~attrs:[ "driver", name ] ());
           Uchan.close chan;
           (* A supervised device keeps its netdev across driver deaths;
              the supervisor owns (un)registration in that case. *)
           if unregister_on_exit then Proxy_net.unregister proxy);
       ignore
         (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () ->
              Sud_uml.serve_net uml drv)
          : Fiber.t);
       (match Proxy_net.wait_ready proxy ~timeout_ns:100_000_000 with
        | None ->
          Process.kill proc;
          Error "driver did not register a network device"
        | Some dev ->
          Ok
            { s_k = k;
              s_sp = sp;
              s_bdf = bdf;
              s_uid = uid;
              s_name = name;
              s_defensive = defensive_copy;
              s_proc = proc;
              s_chan = chan;
              s_grant = grant;
              s_proxy = proxy;
              s_class = Proxy_net.instance proxy;
              s_uml = uml;
              s_netdev = dev;
              s_queues = queues;
              s_quota = quota;
              s_epoch = epoch })))

let start_net k sp ?(uid = 1000) ?(defensive_copy = true) ?name ?bdf ?hang_timeout_ns
    ?queues ?adopt_netdev ?unregister_on_exit ?quota ?epoch drv =
  let name = Option.value ~default:drv.Driver_api.nd_name name in
  let go bdf =
    start_net_at k sp ?hang_timeout_ns ?queues ?adopt_netdev ?unregister_on_exit ?quota
      ?epoch ~uid ~defensive_copy ~name ~bdf drv
  in
  match bdf with
  | Some bdf -> go bdf
  | None -> (match find_device k drv with Error e -> Error e | Ok bdf -> go bdf)

let proc s = s.s_proc
let netdev s = s.s_netdev
let grant s = s.s_grant
let chan s = s.s_chan
let proxy s = s.s_proxy
let class_of s = s.s_class
let uml s = s.s_uml
let bdf s = s.s_bdf
let queues s = s.s_queues
let quota s = s.s_quota
let epoch s = s.s_epoch

let kill s = Process.kill s.s_proc

let restart k sp s drv =
  kill s;
  (* Let teardown events (fiber kills, device reset) settle at the current
     instant before re-opening the device. *)
  ignore (Fiber.sleep k.Kernel.eng 1_000 : Fiber.wake);
  (* The quota survives the restart; the epoch does not — the new
     generation's channel stamps (and accepts only) epoch+1, so frames
     replayed from the dead generation adjudicate as [Bad_epoch]. *)
  start_net_at k sp ~queues:s.s_queues ?quota:s.s_quota
    ~epoch:((s.s_epoch + 1) land Msg.max_epoch) ~uid:s.s_uid
    ~defensive_copy:s.s_defensive ~name:s.s_name ~bdf:s.s_bdf drv

let set_memory_limit s ~bytes = Process.setrlimit_memory s.s_proc ~bytes:(Some bytes)

(* ---- generic prelude shared by the class starters ---- *)

let open_with_pool k sp ~uid ~name ~bdf =
  Safe_pci.register_device sp bdf;
  Safe_pci.set_owner sp bdf ~uid;
  let proc = Process.spawn k.Kernel.procs ~name ~uid in
  match Safe_pci.open_device sp bdf ~proc with
  | Error e ->
    Process.kill proc;
    Error ("open device: " ^ e)
  | Ok grant ->
    (match
       Safe_pci.alloc_dma grant
         ~bytes:(Bufpool.region_size ~count:pool_bufs ~buf_size:pool_buf_size)
         ()
     with
     | Error e ->
       Process.kill proc;
       Error ("shared pool: " ^ e)
     | Ok region ->
       let pool =
         Bufpool.create
           ~read:(fun ~off ~len -> region.Driver_api.dma_read ~off ~len)
           ~write:(fun ~off ~data -> region.Driver_api.dma_write ~off data)
           ~base_addr:region.Driver_api.dma_addr ~count:pool_bufs ~buf_size:pool_buf_size
       in
       let queues = max 1 (min (Safe_pci.msix_vectors grant) Uchan.max_queues) in
       let chan =
         Uchan.create k ~queues ~profile:Proxy_proto.conformance_profile
           ~driver_label:name ()
       in
       Ok (proc, grant, pool, chan))

let find_by_ids k ids what =
  match Sysfs.match_ids k.Kernel.sysfs ~ids with
  | [] -> Error ("no matching PCI device in sysfs for " ^ what)
  | e :: _ -> Ok e.Sysfs.bdf

type started_wifi = {
  w_proc : Process.t;
  w_proxy : Proxy_wifi.t;
  w_netdev : Netdev.t;
}

let start_wifi k sp ?(uid = 1000) ?name ?bdf (drv : Driver_api.wifi_driver) =
  let name = Option.value ~default:drv.Driver_api.wd_name name in
  let bdf_r =
    match bdf with Some b -> Ok b | None -> find_by_ids k drv.Driver_api.wd_ids name
  in
  match bdf_r with
  | Error e -> Error e
  | Ok bdf ->
    (match open_with_pool k sp ~uid ~name ~bdf with
     | Error e -> Error e
     | Ok (proc, grant, pool, chan) ->
       let proxy = Proxy_wifi.create k ~chan ~grant ~pool ~name () in
       let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
       Process.on_exit proc (fun () ->
           Uchan.close chan;
           Proxy_net.unregister (Proxy_wifi.net proxy));
       ignore
         (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () -> Sud_uml.serve_wifi uml drv)
          : Fiber.t);
       (match Proxy_wifi.wait_ready proxy ~timeout_ns:100_000_000 with
        | None ->
          Process.kill proc;
          Error "wifi driver did not register"
        | Some dev -> Ok { w_proc = proc; w_proxy = proxy; w_netdev = dev }))

let wifi_proxy s = s.w_proxy
let wifi_netdev s = s.w_netdev
let wifi_proc s = s.w_proc
let kill_wifi s = Process.kill s.w_proc

type started_audio = {
  a_proc : Process.t;
  a_proxy : Proxy_audio.t;
}

let start_audio k sp ?(uid = 1000) ?name ?bdf (drv : Driver_api.audio_driver) =
  let name = Option.value ~default:drv.Driver_api.ad_name name in
  let bdf_r =
    match bdf with Some b -> Ok b | None -> find_by_ids k drv.Driver_api.ad_ids name
  in
  match bdf_r with
  | Error e -> Error e
  | Ok bdf ->
    (match open_with_pool k sp ~uid ~name ~bdf with
     | Error e -> Error e
     | Ok (proc, grant, pool, chan) ->
       let proxy = Proxy_audio.create k ~chan ~grant ~pool ~name () in
       let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
       Process.on_exit proc (fun () -> Uchan.close chan);
       ignore
         (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () -> Sud_uml.serve_audio uml drv)
          : Fiber.t);
       if Proxy_audio.wait_ready proxy ~timeout_ns:100_000_000 then
         Ok { a_proc = proc; a_proxy = proxy }
       else begin
         Process.kill proc;
         Error "audio driver did not register"
       end)

let audio_proxy s = s.a_proxy
let audio_proc s = s.a_proc
let kill_audio s = Process.kill s.a_proc

type started_usb = {
  u_proc : Process.t;
  u_proxy : Proxy_usb.t;
}

let start_usb k sp ?(uid = 1000) ?name ?bdf ~bind_storage ~bind_keyboard
    (drv : Driver_api.usb_host_driver) =
  let name = Option.value ~default:drv.Driver_api.ud_name name in
  let bdf_r =
    match bdf with Some b -> Ok b | None -> find_by_ids k drv.Driver_api.ud_ids name
  in
  match bdf_r with
  | Error e -> Error e
  | Ok bdf ->
    (match open_with_pool k sp ~uid ~name ~bdf with
     | Error e -> Error e
     | Ok (proc, grant, pool, chan) ->
       let proxy = Proxy_usb.create k ~chan ~grant ~pool ~name () in
       let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
       Process.on_exit proc (fun () -> Uchan.close chan);
       ignore
         (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () ->
              Sud_uml.serve_usb uml ~bind_storage ~bind_keyboard drv)
          : Fiber.t);
       Ok { u_proc = proc; u_proxy = proxy })

let usb_proxy s = s.u_proxy
let usb_proc s = s.u_proc
let kill_usb s = Process.kill s.u_proc

(* ---- sud-blk: asynchronous multiqueue block ---- *)

type started_blk = {
  b_k : Kernel.t;
  b_sp : Safe_pci.t;
  b_bdf : Bus.bdf;
  b_uid : int;
  b_name : string;
  b_proc : Process.t;
  b_chan : Uchan.t;
  b_grant : Safe_pci.grant;
  b_proxy : Proxy_blk.t;
  b_class : Proxy_class.instance;
  b_uml : Sud_uml.t;
  b_blkdev : Blkdev.t;
  b_queues : int;
  b_quota : Quota.t option;
  b_epoch : int;
}

(* Block buffers must hold a fully merged request (64 sectors); fewer,
   bigger buffers than the net pool. *)
let blk_pool_bufs = 64
let blk_pool_buf_size = 32768

let start_blk_at k sp ?hang_timeout_ns ?request_timeout_ns ?queues ?adopt ?quota
    ?(epoch = 0) ~uid ~name ~bdf (drv : Driver_api.blk_driver) =
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver" ~name:"start"
         ~attrs:[ "driver", name; "bdf", Bus.string_of_bdf bdf; "class", "blk" ] ());
  Safe_pci.register_device sp bdf;
  Safe_pci.set_owner sp bdf ~uid;
  let proc = Process.spawn k.Kernel.procs ~name ~uid in
  match Safe_pci.open_device sp ?quota bdf ~proc with
  | Error e ->
    Process.kill proc;
    Error ("open device: " ^ e)
  | Ok grant ->
    (match
       Safe_pci.alloc_dma grant
         ~bytes:(Bufpool.region_size ~count:blk_pool_bufs ~buf_size:blk_pool_buf_size)
         ()
     with
     | Error e ->
       Process.kill proc;
       Error ("shared pool: " ^ e)
     | Ok region ->
       let pool =
         Bufpool.create
           ~read:(fun ~off ~len -> region.Driver_api.dma_read ~off ~len)
           ~write:(fun ~off ~data -> region.Driver_api.dma_write ~off data)
           ~base_addr:region.Driver_api.dma_addr ~count:blk_pool_bufs
           ~buf_size:blk_pool_buf_size
       in
       let queues =
         match queues with
         | Some q -> max 1 (min q Uchan.max_queues)
         | None -> max 1 (min (Safe_pci.msix_vectors grant) Uchan.max_queues)
       in
       let slots = 256 in
       let queues, ring_charge =
         match quota with
         | None -> queues, 0
         | Some q ->
           let queues = Quota.negotiate_queues q ~slots ~queues in
           queues, Quota.ring_bytes ~slots ~queues
       in
       (match
          match quota with
          | Some q -> Quota.charge_uchan q ~bytes:ring_charge
          | None -> Ok ()
        with
        | Error e ->
          Process.kill proc;
          Error ("uchan rings: " ^ e)
        | Ok () ->
          let chan =
            Uchan.create k ?hang_timeout_ns ~slots ~queues ~epoch
              ~profile:Proxy_proto.conformance_profile ~driver_label:name ()
          in
          (match quota with
           | None -> ()
           | Some q ->
             Uchan.set_notify_hook chan (Some (fun ~queue -> Quota.note_notify q ~queue));
             Process.on_exit proc (fun () -> Quota.release_uchan q ~bytes:ring_charge));
          let proxy =
            Proxy_blk.create k ~chan ~grant ~pool ~name ?request_timeout_ns ?adopt ()
          in
          let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
          Process.on_exit proc (fun () ->
              if Sud_obs.Trace.on () then
                ignore
                  (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver"
                     ~name:"exit" ~attrs:[ "driver", name ] ());
              Uchan.close chan;
              (* The blkdev (cache, staging, retention in the persist
                 record) survives the driver's death; new requests park
                 in staging until a fresh generation resumes. *)
              Proxy_blk.quiesce proxy);
          ignore
            (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () ->
                 Sud_uml.serve_blk uml drv)
             : Fiber.t);
          (match Proxy_blk.wait_ready proxy ~timeout_ns:100_000_000 with
           | None ->
             Process.kill proc;
             Error "driver did not register a block device"
           | Some bd ->
             Ok
               { b_k = k;
                 b_sp = sp;
                 b_bdf = bdf;
                 b_uid = uid;
                 b_name = name;
                 b_proc = proc;
                 b_chan = chan;
                 b_grant = grant;
                 b_proxy = proxy;
                 b_class = Proxy_blk.instance proxy;
                 b_uml = uml;
                 b_blkdev = bd;
                 b_queues = queues;
                 b_quota = quota;
                 b_epoch = epoch })))

let start_blk k sp ?(uid = 1000) ?name ?bdf ?hang_timeout_ns ?request_timeout_ns ?queues
    ?adopt ?quota ?epoch drv =
  let name = Option.value ~default:drv.Driver_api.bd_name name in
  let go bdf =
    start_blk_at k sp ?hang_timeout_ns ?request_timeout_ns ?queues ?adopt ?quota ?epoch
      ~uid ~name ~bdf drv
  in
  match bdf with
  | Some bdf -> go bdf
  | None ->
    (match find_by_ids k drv.Driver_api.bd_ids name with Error e -> Error e | Ok bdf -> go bdf)

let blk_proc s = s.b_proc
let blk_chan s = s.b_chan
let blk_grant s = s.b_grant
let blk_proxy s = s.b_proxy
let blk_class s = s.b_class
let blk_uml s = s.b_uml
let blk_bdf s = s.b_bdf
let blk_blkdev s = s.b_blkdev
let blk_queues s = s.b_queues
let blk_quota s = s.b_quota
let blk_epoch s = s.b_epoch
let kill_blk s = Process.kill s.b_proc

(* ---- the class-indexed lifecycle API ---- *)

(* One entry point for every device class.  The GADT carries both the
   driver type the class consumes and the handle it produces, so
   [launch] is the only spelling callers need; the per-class [start_*]
   functions above survive as deprecated aliases for external trees. *)
type (_, _) cls =
  | Net : {
      defensive_copy : bool;
      adopt_netdev : Netdev.t option;
      unregister_on_exit : bool option;
    }
      -> (Driver_api.net_driver, started) cls
  | Blk : {
      adopt : Proxy_blk.persist option;
      request_timeout_ns : int option;
    }
      -> (Driver_api.blk_driver, started_blk) cls
  | Wifi : (Driver_api.wifi_driver, started_wifi) cls
  | Audio : (Driver_api.audio_driver, started_audio) cls
  | Usb : {
      bind_storage : Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result;
      bind_keyboard :
        Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit;
    }
      -> (Driver_api.usb_host_driver, started_usb) cls

let net ?(defensive_copy = true) ?adopt_netdev ?unregister_on_exit () =
  Net { defensive_copy; adopt_netdev; unregister_on_exit }

let blk ?adopt ?request_timeout_ns () = Blk { adopt; request_timeout_ns }
let wifi = Wifi
let audio = Audio
let usb ~bind_storage ~bind_keyboard = Usb { bind_storage; bind_keyboard }

let launch : type d r.
  Kernel.t -> Safe_pci.t -> ?uid:int -> ?name:string -> ?bdf:Bus.bdf ->
  ?hang_timeout_ns:int -> ?queues:int -> ?quota:Quota.t -> ?epoch:int ->
  (d, r) cls -> d -> (r, string) result =
  fun k sp ?uid ?name ?bdf ?hang_timeout_ns ?queues ?quota ?epoch cls drv ->
  match cls with
  | Net { defensive_copy; adopt_netdev; unregister_on_exit } ->
    start_net k sp ?uid ~defensive_copy ?name ?bdf ?hang_timeout_ns ?queues
      ?adopt_netdev ?unregister_on_exit ?quota ?epoch drv
  | Blk { adopt; request_timeout_ns } ->
    start_blk k sp ?uid ?name ?bdf ?hang_timeout_ns ?request_timeout_ns ?queues ?adopt
      ?quota ?epoch drv
  | Wifi -> start_wifi k sp ?uid ?name ?bdf drv
  | Audio -> start_audio k sp ?uid ?name ?bdf drv
  | Usb { bind_storage; bind_keyboard } ->
    start_usb k sp ?uid ?name ?bdf ~bind_storage ~bind_keyboard drv

(* ---- warm-standby generations ---- *)

(* A pre-forked generation, parked before attach.  Only what does not
   need the device is set up here: the process, the epoch-stamped uchan
   rings, and their quota charge.  The device grant is exclusive per
   BDF and opening it resets the device, so grant + DMA pool + proxy +
   driver init are deferred to [activate_*] — which runs after the
   dying generation's kill released its grant and the FLR left the
   device in exactly the quiesced state a fresh driver expects. *)
type warm = {
  wm_k : Kernel.t;
  wm_sp : Safe_pci.t;
  wm_bdf : Bus.bdf;
  wm_uid : int;
  wm_name : string;
  wm_proc : Process.t;
  wm_chan : Uchan.t;
  wm_queues : int;
  wm_quota : Quota.t option;
  wm_epoch : int;
}

let prefork k sp ?(uid = 1000) ?hang_timeout_ns ?(queues = 1) ?quota ?(epoch = 0) ~name
    ~bdf () =
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver" ~name:"prefork"
         ~attrs:[ "driver", name; "bdf", Bus.string_of_bdf bdf ] ());
  Safe_pci.register_device sp bdf;
  Safe_pci.set_owner sp bdf ~uid;
  let proc = Process.spawn k.Kernel.procs ~name ~uid in
  let slots = 256 in
  let queues = max 1 (min queues Uchan.max_queues) in
  let queues, ring_charge =
    match quota with
    | None -> queues, 0
    | Some q ->
      let queues = Quota.negotiate_queues q ~slots ~queues in
      queues, Quota.ring_bytes ~slots ~queues
  in
  match
    match quota with Some q -> Quota.charge_uchan q ~bytes:ring_charge | None -> Ok ()
  with
  | Error e ->
    Process.kill proc;
    Error ("uchan rings: " ^ e)
  | Ok () ->
    let chan =
      Uchan.create k ?hang_timeout_ns ~slots ~queues ~epoch
        ~profile:Proxy_proto.conformance_profile ~driver_label:name ()
    in
    (match quota with
     | None -> ()
     | Some q ->
       Uchan.set_notify_hook chan (Some (fun ~queue -> Quota.note_notify q ~queue));
       Process.on_exit proc (fun () -> Quota.release_uchan q ~bytes:ring_charge));
    Process.on_exit proc (fun () -> Uchan.close chan);
    Ok
      { wm_k = k;
        wm_sp = sp;
        wm_bdf = bdf;
        wm_uid = uid;
        wm_name = name;
        wm_proc = proc;
        wm_chan = chan;
        wm_queues = queues;
        wm_quota = quota;
        wm_epoch = epoch }

let warm_proc w = w.wm_proc
let warm_chan w = w.wm_chan
let warm_epoch w = w.wm_epoch
let warm_queues w = w.wm_queues
let discard_warm w = Process.kill w.wm_proc

let activate_trace w =
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"driver" ~name:"activate"
         ~attrs:[ "driver", w.wm_name; "bdf", Bus.string_of_bdf w.wm_bdf ] ())

let activate_net w ?(defensive_copy = true) ?(unregister_on_exit = false) ~adopt
    (drv : Driver_api.net_driver) =
  let k = w.wm_k and name = w.wm_name and proc = w.wm_proc and chan = w.wm_chan in
  activate_trace w;
  match Safe_pci.open_device w.wm_sp ?quota:w.wm_quota w.wm_bdf ~proc with
  | Error e ->
    Process.kill proc;
    Error ("open device: " ^ e)
  | Ok grant ->
    (match
       Safe_pci.alloc_dma grant
         ~bytes:(Bufpool.region_size ~count:pool_bufs ~buf_size:pool_buf_size)
         ()
     with
     | Error e ->
       Process.kill proc;
       Error ("shared pool: " ^ e)
     | Ok region ->
       let pool =
         Bufpool.create
           ~read:(fun ~off ~len -> region.Driver_api.dma_read ~off ~len)
           ~write:(fun ~off ~data -> region.Driver_api.dma_write ~off data)
           ~base_addr:region.Driver_api.dma_addr ~count:pool_bufs ~buf_size:pool_buf_size
       in
       let proxy =
         Proxy_net.create k ~chan ~grant ~pool ~name ~defensive_copy ~parked:true ~adopt ()
       in
       let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
       Process.on_exit proc (fun () ->
           if unregister_on_exit then Proxy_net.unregister proxy);
       ignore
         (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () ->
              Sud_uml.serve_net uml drv)
          : Fiber.t);
       if Proxy_net.wait_registered proxy ~timeout_ns:100_000_000 then
         Ok
           { s_k = k;
             s_sp = w.wm_sp;
             s_bdf = w.wm_bdf;
             s_uid = w.wm_uid;
             s_name = name;
             s_defensive = defensive_copy;
             s_proc = proc;
             s_chan = chan;
             s_grant = grant;
             s_proxy = proxy;
             s_class = Proxy_net.instance proxy;
             s_uml = uml;
             s_netdev = adopt;
             s_queues = w.wm_queues;
             s_quota = w.wm_quota;
             s_epoch = w.wm_epoch }
       else begin
         Process.kill proc;
         Error "driver did not register a network device"
       end)

let activate_blk w ?request_timeout_ns ~adopt (drv : Driver_api.blk_driver) =
  let k = w.wm_k and name = w.wm_name and proc = w.wm_proc and chan = w.wm_chan in
  activate_trace w;
  match Proxy_blk.persist_blkdev adopt with
  | None ->
    Process.kill proc;
    Error "no surviving block device to adopt"
  | Some bd ->
    (match Safe_pci.open_device w.wm_sp ?quota:w.wm_quota w.wm_bdf ~proc with
     | Error e ->
       Process.kill proc;
       Error ("open device: " ^ e)
     | Ok grant ->
       (match
          Safe_pci.alloc_dma grant
            ~bytes:(Bufpool.region_size ~count:blk_pool_bufs ~buf_size:blk_pool_buf_size)
            ()
        with
        | Error e ->
          Process.kill proc;
          Error ("shared pool: " ^ e)
        | Ok region ->
          let pool =
            Bufpool.create
              ~read:(fun ~off ~len -> region.Driver_api.dma_read ~off ~len)
              ~write:(fun ~off ~data -> region.Driver_api.dma_write ~off data)
              ~base_addr:region.Driver_api.dma_addr ~count:blk_pool_bufs
              ~buf_size:blk_pool_buf_size
          in
          let proxy =
            Proxy_blk.create k ~chan ~grant ~pool ~name ?request_timeout_ns ~parked:true
              ~adopt ()
          in
          let uml = Sud_uml.create k ~proc ~grant ~chan ~pool in
          Process.on_exit proc (fun () -> Proxy_blk.quiesce proxy);
          ignore
            (Process.spawn_fiber proc ~name:(name ^ "-main") (fun () ->
                 Sud_uml.serve_blk uml drv)
             : Fiber.t);
          if Proxy_blk.wait_registered proxy ~timeout_ns:100_000_000 then
            Ok
              { b_k = k;
                b_sp = w.wm_sp;
                b_bdf = w.wm_bdf;
                b_uid = w.wm_uid;
                b_name = name;
                b_proc = proc;
                b_chan = chan;
                b_grant = grant;
                b_proxy = proxy;
                b_class = Proxy_blk.instance proxy;
                b_uml = uml;
                b_blkdev = bd;
                b_queues = w.wm_queues;
                b_quota = w.wm_quota;
                b_epoch = w.wm_epoch }
          else begin
            Process.kill proc;
            Error "driver did not register a block device"
          end))
