(** SUD's safe PCI device access module (paper §3.2, §4.1; the 2,800-line
    kernel module of Figure 5).

    For every registered PCI device it exports four device files (ctl,
    mmio, dma_coherent, dma_caching — Figure 6), lets the administrator
    chown them to an untrusted UID, and gives the opening driver process
    a {e grant}: a capability through which every hardware access is
    mediated:

    - {b MMIO}: page-aligned BAR windows only, never shared with another
      device;
    - {b IO ports}: added to the process's IO-permission bitmap;
    - {b Config space}: reads pass, writes are filtered — command-register
      bits and cache-line/latency only; BAR rewrites, MSI registers and
      INTx enabling are rejected;
    - {b DMA}: coherent/caching regions carved from physical memory and
      mapped into the device's IOMMU domain at driver-visible IO virtual
      addresses (allocated upward from 0x42430000, as in Figure 9);
    - {b Interrupts}: the kernel owns the MSI capability.  Interrupts are
      forwarded to a sink (the proxy's upcall path) and the vector is
      masked for the duration of the driver's poll, NAPI-style: device
      raises in the window latch in the MSI-X pending-bit array and are
      replayed when the driver acks, so under load one upcall covers a
      batch of frames.  Interrupts arriving {e while masked} cannot come
      from the device (it latches instead) — they are DMA writes to the
      MSI window, and escalate to interrupt remapping (Intel) or
      unmapping the MSI window (AMD) — or are logged as a livelock
      vulnerability on the paper's testbed configuration. *)

type t
type grant

val init : Kernel.t -> t

val register_device : t -> Bus.bdf -> unit
(** Export sud device files for this device (initially owned by root). *)

val set_owner : t -> Bus.bdf -> uid:int -> unit
val device_files : t -> Bus.bdf -> string list
(** Paths as in Figure 6; empty if unregistered. *)

val open_device : t -> ?quota:Quota.t -> Bus.bdf -> proc:Process.t -> (grant, string) result
(** Checks UID ownership, resets the device, disables legacy INTx,
    creates a fresh IOMMU domain, and registers cleanup with the process
    so death revokes everything.  With [quota], the grant is charged to
    the driver's ledger (and can be denied); its DMA mappings charge
    bytes + IO-page-table pages, and IRQ forwarding draws per-queue
    kick tokens (a dry bucket drops the upcall — the masked vector's
    pending bit latches and the ack-time replay keeps the device
    live). *)

val grant_quota : grant -> Quota.t option

val release : grant -> unit
(** Revoke the grant: unmap DMA, revoke IO ports, mask MSI, free the
    vector, detach the IOMMU domain.  Runs automatically when the owning
    process dies. *)

val grant_bdf : grant -> Bus.bdf
val grant_alive : grant -> bool

val grant_storms : grant -> int
(** Interrupt-storm escalations attributed to this grant (interrupts
    that kept arriving while a vector was masked), summed over all
    vectors.  The supervisor polls this: growth means the device is
    being driven maliciously. *)

val grant_num_vectors : grant -> int

val grant_irqs_delivered : grant -> int
(** Interrupt upcalls actually forwarded to the driver across this
    grant's vectors (masked-window arrivals latch instead).  Divided by
    frames received it gives the NAPI coalescing ratio the batch bench
    gates on. *)

val grant_vector_storms : grant -> queue:int -> int
val vector_masked : grant -> queue:int -> bool

val vector_quarantined : grant -> queue:int -> bool
(** True once a storm on this vector escalated: the vector stays masked
    (kernel-side and in the device's MSI-X table) until the grant is
    torn down; sibling queues keep delivering. *)

val reset_device : t -> Bus.bdf -> (unit, string) result
(** Function-level reset of a registered device with {e no} outstanding
    grant — the recovery step between driver generations.  Stands in for
    PCIe FLR: device model reset, decoding off, INTx disabled.  Fails if
    a live grant still owns the device. *)

(** {1 Mediated access (the driver side of the device files)} *)

val cfg_read : grant -> off:int -> size:int -> int
val cfg_write : grant -> off:int -> size:int -> int -> (unit, string) result
val enable_device : grant -> (unit, string) result
val map_mmio : grant -> bar:int -> (Driver_api.mmio, string) result
val claim_io : grant -> bar:int -> (Driver_api.pio, string) result
val alloc_dma : grant -> ?coherent:bool -> bytes:int -> unit -> (Driver_api.dma_region, string) result
val free_dma : grant -> Driver_api.dma_region -> unit
val find_capability : grant -> int -> int option

val msix_vectors : grant -> int
(** Size of the device's MSI-X table ([1] when the device only has
    MSI/INTx) — the ceiling {!setup_irqs} enforces on [n]. *)

val read_driver_mem : grant -> iova:int -> len:int -> (bytes, string) result
(** Read driver-owned DMA memory by the driver's own (IO virtual)
    address, validating that the whole range lies inside the grant's
    mappings — how the proxy pulls packet data out of shared memory
    without trusting the address the driver sent. *)

val read_driver_mem_into :
  grant -> iova:int -> len:int -> dst:bytes -> dst_off:int -> (unit, string) result
(** Like {!read_driver_mem} but copying into a caller-supplied (pooled)
    buffer, so the per-frame defensive copy allocates nothing. *)

val write_driver_mem : grant -> iova:int -> bytes -> (unit, string) result

val setup_irqs : grant -> n:int -> sink:(queue:int -> unit) -> (unit, string) result
(** Allocate [n] vectors (queue [i] rides vector [i]), program the
    device's interrupt capability — legacy MSI when [n = 1], MSI-X
    otherwise (fails if the device lacks the capability or its table is
    too small) — whitelist each (source, vector) pair with the interrupt
    remapper, spread vector affinity across cores, and forward queue
    [q]'s interrupts as [sink ~queue:q]. *)

val teardown_irqs : grant -> unit

val irq_ack : ?queue:int -> grant -> unit
(** The driver finished its poll of queue [queue] (default 0): unmask
    the vector and replay any interrupt that latched in the MSI-X
    pending-bit array during the poll window (unmasking clears the PBA
    bit with no re-delivery, so the replay is explicit).  Quarantined
    vectors stay silenced. *)

val mask_vector : grant -> queue:int -> unit
val unmask_vector : grant -> queue:int -> unit

val setup_irq : grant -> sink:(unit -> unit) -> (unit, string) result
  [@@deprecated "use Safe_pci.setup_irqs ~n:1"]

val teardown_irq : grant -> unit
  [@@deprecated "use Safe_pci.teardown_irqs"]

val mask_msi : grant -> unit
  [@@deprecated "use Safe_pci.mask_vector ~queue:0"]

val unmask_msi : grant -> unit
  [@@deprecated "use Safe_pci.unmask_vector ~queue:0"]

(** {1 Observability} *)

val iommu_mappings : grant -> (int * int * int * bool) list
(** Figure 9: the device's IO page table as (iova, phys, len, writable)
    runs. *)

val dma_allocations : grant -> (int * int) list
(** The grant's live DMA regions as (iova, len), in allocation order —
    used to label Figure 9's rows. *)

val msi_masks : t -> int
val ir_escalations : t -> int
val livelock_warnings : t -> int
val cfg_denials : t -> int
val interrupts_forwarded : t -> int
