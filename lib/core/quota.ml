(* Per-driver resource ledger.

   RLIMIT_AS bounds how much the driver process can map, but nothing
   bounded what a driver could make the *kernel* hold on its behalf:
   device grants, live DMA mappings and the IO-page-table pages backing
   them, uchan ring memory, and the rate at which it may ring the
   kernel's doorbell.  This module is that missing ledger.  One quota is
   created per supervised driver (at [Supervisor.start]) and survives
   restarts with the generation — a crash-looping driver cannot launder
   its footprint by dying.

   Design rules, per the paper's "never allocate on behalf of the
   driver" discipline:

   - Exhaustion produces {e backpressure}, never kernel allocation: a
     charge over limit waits a bounded time for capacity (the resource
     may be mid-release by a dying sibling generation), then fails with
     an [Error] the caller maps to a denied syscall, and is counted.
   - Notification/IRQ-kick buckets are per queue.  Driver-side kicks are
     never suppressed (starving the trusted worker would wedge the
     ring): a dry bucket counts an overflow, and sustained overflow is a
     supervisor kill signal.  Kernel-side IRQ forwarding *is* dropped
     when the bucket is dry — the vector is masked and the pending bit
     latches, so the ack-time replay keeps the device live while the
     flood is absorbed at zero upcall cost. *)

type limits = {
  max_grants : int;          (* concurrently open device grants *)
  max_dma_bytes : int;       (* live DMA-mapped bytes *)
  max_iopt_pages : int;      (* IO-page-table pages backing the mappings *)
  max_uchan_bytes : int;     (* uchan ring slot memory *)
  notify_burst : int;        (* token bucket depth, per queue *)
  notify_rate : int;         (* bucket refill, tokens per second *)
}

let unlimited =
  { max_grants = max_int;
    max_dma_bytes = max_int;
    max_iopt_pages = max_int;
    max_uchan_bytes = max_int;
    notify_burst = max_int;
    notify_rate = max_int }

(* Generous but finite: what the supervisor hands a driver nobody
   configured.  A real e1000 generation uses 1 grant, ~256 KB of DMA,
   a handful of IOPT pages and <1 MB of rings, so honest drivers never
   notice these; a malicious one hits them long before the kernel
   hurts. *)
let default_limits =
  { max_grants = 4;
    max_dma_bytes = 64 * 1024 * 1024;
    max_iopt_pages = 16 * 1024;
    max_uchan_bytes = 16 * 1024 * 1024;
    notify_burst = 4096;
    notify_rate = 1_000_000 }

type bucket = {
  mutable bk_tokens : int;
  mutable bk_last_ns : int;
}

type t = {
  eng : Engine.t;
  q_name : string;
  lim : limits;
  mutable grants : int;
  mutable dma_bytes : int;
  mutable iopt_pages : int;
  mutable uchan_bytes : int;
  buckets : (int, bucket) Hashtbl.t;      (* queue -> bucket *)
  qm_denied : Sud_obs.Metrics.counter;
  qm_notify_overflow : Sud_obs.Metrics.counter;
  qm_irq_dropped : Sud_obs.Metrics.counter;
}

let create eng ?(limits = default_limits) ~name () =
  let labels = [ ("driver", name) ] in
  let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"quota" ~name:n () in
  let t =
    { eng;
      q_name = name;
      lim = limits;
      grants = 0;
      dma_bytes = 0;
      iopt_pages = 0;
      uchan_bytes = 0;
      buckets = Hashtbl.create 4;
      qm_denied = c "denied";
      qm_notify_overflow = c "notify_overflow";
      qm_irq_dropped = c "irq_kicks_dropped" }
  in
  ignore
    (Sud_obs.Metrics.gauge ~labels ~subsystem:"quota" ~name:"dma_bytes"
       (fun () -> t.dma_bytes)
     : Sud_obs.Metrics.gauge);
  ignore
    (Sud_obs.Metrics.gauge ~labels ~subsystem:"quota" ~name:"uchan_bytes"
       (fun () -> t.uchan_bytes)
     : Sud_obs.Metrics.gauge);
  t

let name t = t.q_name
let limits t = t.lim

let grants t = t.grants
let dma_bytes t = t.dma_bytes
let iopt_pages t = t.iopt_pages
let uchan_bytes t = t.uchan_bytes
let denials t = Sud_obs.Metrics.get t.qm_denied
let notify_overflows t = Sud_obs.Metrics.get t.qm_notify_overflow
let irq_kicks_dropped t = Sud_obs.Metrics.get t.qm_irq_dropped

(* IO-page-table cost of mapping [pages] 4K pages: the leaf PTE pages
   (512 entries each) plus one interior page per mapping — the kernel
   memory the IOMMU walk tables consume on the driver's behalf. *)
let iopt_pages_for ~pages = 1 + ((pages + 511) / 512)

let deny t what =
  Sud_obs.Metrics.incr t.qm_denied;
  Error (Printf.sprintf "quota(%s): %s exhausted" t.q_name what)

(* Bounded backpressure: capacity may be seconds-old garbage a dying
   generation is mid-way through releasing, so give the release a few
   chances before failing the charge.  Only meaningful from fiber
   context; bare callers (tests poking the ledger directly) fail
   immediately. *)
let wait_budget_ns = 100_000
let wait_step_ns = 20_000

let with_backpressure t try_charge what =
  let rec go waited =
    match try_charge () with
    | true -> Ok ()
    | false ->
      if waited >= wait_budget_ns then deny t what
      else begin
        match Fiber.self () with
        | exception Failure _ -> deny t what
        | _ ->
          ignore (Fiber.sleep t.eng wait_step_ns : Fiber.wake);
          go (waited + wait_step_ns)
      end
  in
  go 0

let charge_grant t =
  with_backpressure t
    (fun () ->
       if t.grants < t.lim.max_grants then begin
         t.grants <- t.grants + 1;
         true
       end
       else false)
    "device grants"

let release_grant t = t.grants <- max 0 (t.grants - 1)

let charge_dma t ~bytes ~pages =
  let iopt = iopt_pages_for ~pages in
  with_backpressure t
    (fun () ->
       if
         t.dma_bytes + bytes <= t.lim.max_dma_bytes
         && t.iopt_pages + iopt <= t.lim.max_iopt_pages
       then begin
         t.dma_bytes <- t.dma_bytes + bytes;
         t.iopt_pages <- t.iopt_pages + iopt;
         true
       end
       else false)
    "DMA mappings"

let release_dma t ~bytes ~pages =
  t.dma_bytes <- max 0 (t.dma_bytes - bytes);
  t.iopt_pages <- max 0 (t.iopt_pages - iopt_pages_for ~pages)

let charge_uchan t ~bytes =
  with_backpressure t
    (fun () ->
       if t.uchan_bytes + bytes <= t.lim.max_uchan_bytes then begin
         t.uchan_bytes <- t.uchan_bytes + bytes;
         true
       end
       else false)
    "uchan slot memory"

let release_uchan t ~bytes = t.uchan_bytes <- max 0 (t.uchan_bytes - bytes)

(* Quota negotiation at Driver_host.start: rather than failing a start
   whose ring footprint exceeds the budget, clamp the queue count until
   it fits (queue 0 always survives — a channel must exist).  Returns
   the negotiated count; the caller then charges exactly that. *)
let ring_bytes ~slots ~queues = queues * 2 * slots * Msg.slot_size

let negotiate_queues t ~slots ~queues =
  let budget = t.lim.max_uchan_bytes - t.uchan_bytes in
  let rec fit q =
    if q <= 1 then 1
    else if ring_bytes ~slots ~queues:q <= budget then q
    else fit (q - 1)
  in
  fit queues

(* ---- per-queue notification / IRQ-kick token bucket ---- *)

let bucket t queue =
  match Hashtbl.find_opt t.buckets queue with
  | Some b -> b
  | None ->
    let b = { bk_tokens = t.lim.notify_burst; bk_last_ns = Engine.now t.eng } in
    Hashtbl.add t.buckets queue b;
    b

let take_token t queue =
  let lim = t.lim in
  if lim.notify_burst = max_int then true
  else begin
    let b = bucket t queue in
    let now = Engine.now t.eng in
    let dt = now - b.bk_last_ns in
    if dt > 0 then begin
      (* Refill at notify_rate tokens/s, saturating at the burst depth. *)
      let refill =
        if lim.notify_rate >= 1_000_000_000 then max_int
        else dt / (1_000_000_000 / max 1 lim.notify_rate)
      in
      if refill > 0 then begin
        b.bk_tokens <- min lim.notify_burst (b.bk_tokens + refill);
        b.bk_last_ns <- now
      end
    end;
    if b.bk_tokens > 0 then begin
      b.bk_tokens <- b.bk_tokens - 1;
      true
    end
    else false
  end

let note_notify t ~queue =
  if not (take_token t queue) then Sud_obs.Metrics.incr t.qm_notify_overflow

let take_irq_token t ~queue =
  if take_token t queue then true
  else begin
    Sud_obs.Metrics.incr t.qm_irq_dropped;
    false
  end
