(** The audio card proxy driver (550 lines in Figure 5).

    PCM data flows kernel→driver through shared buffers, one asynchronous
    upcall per chunk; period-elapsed events come back as downcalls so an
    application fiber can pace itself against the (simulated) DAC.  Mixer
    operations are synchronous interruptible upcalls. *)

type t

val create :
  Kernel.t ->
  chan:Uchan.t ->
  grant:Safe_pci.grant ->
  pool:Bufpool.t ->
  name:string ->
  unit ->
  t

val wait_ready : t -> timeout_ns:int -> bool
(** The driver probed its codec and registered. *)

val start : t -> (unit, string) result
val stop : t -> (unit, string) result

val write : t -> bytes -> int
(** Queue PCM towards the device; returns bytes accepted (0 when all
    shared buffers are in flight — wait for a period and retry). *)

val set_volume : t -> int -> (unit, string) result
val get_volume : t -> (int, string) result

val periods_elapsed : t -> int
val wait_period : t -> timeout_ns:int -> bool
(** Block until the next period-elapsed event (false on timeout). *)

val instance : t -> Proxy_class.instance
(** This proxy behind the class-independent supervision surface. *)
