(* TX frames handed to the driver must live in DMA-able memory; a small
   arena of fixed slots stands in for dma_map_single on the skb. *)
let arena_slots = 256
let arena_slot_size = 2048

type arena = {
  base : int;
  free : int Queue.t;
}

let make_arena mem =
  let pages = arena_slots * arena_slot_size / Bus.page_size in
  let base = Phys_mem.alloc_pages mem ~pages in
  let free = Queue.create () in
  for i = 0 to arena_slots - 1 do Queue.push i free done;
  { base; free }

let attach ?name (k : Kernel.t) (drv : Driver_api.net_driver) bdf =
  let devname = Option.value ~default:drv.Driver_api.nd_name name in
  let label = "kernel:" ^ drv.Driver_api.nd_name in
  let m = Cpu.cost_model k.Kernel.cpu in
  match Kenv_native.pcidev k bdf ~label with
  | Error e -> Error e
  | Ok pdev ->
    if not (List.mem (pdev.Driver_api.pd_vendor, pdev.Driver_api.pd_device) drv.Driver_api.nd_ids)
    then Error "device does not match driver ID table"
    else begin
      let env = Kenv_native.env k ~label in
      let arena = make_arena k.Kernel.mem in
      let dev_ref : Netdev.t option ref = ref None in
      let callbacks =
        { Driver_api.nc_rx =
            (fun ~queue:_ ~addr ~len ->
               (* Trusted driver: addr is a physical address of its RX
                  buffer; the skb wraps that data with no extra copy.
                  RX queue fan-out happens in the stack's RPS, so the
                  queue index needs no plumbing here. *)
               Driver_api.charge k.Kernel.cpu ~label m.Cost_model.skb_alloc_ns;
               match !dev_ref with
               | None -> ()
               | Some dev ->
                 let data = Phys_mem.read k.Kernel.mem ~addr ~len in
                 Netdev.netif_rx dev (Skbuff.of_bytes data));
          nc_tx_free =
            (fun ~queue:_ ~token ->
               if token >= 0 && token < arena_slots then Queue.push token arena.free);
          nc_tx_done =
            (fun ~queue ->
               match !dev_ref with
               | Some dev when queue >= 0 && queue < Netdev.tx_queues dev ->
                 Netdev.netif_wake_subqueue dev ~queue
               | Some dev -> Netdev.netif_tx_wake_all_queues dev
               | None -> ());
          nc_carrier =
            (fun up ->
               match !dev_ref with
               | Some dev -> if up then Netdev.netif_carrier_on dev else Netdev.netif_carrier_off dev
               | None -> ()) }
      in
      match drv.Driver_api.nd_probe env pdev callbacks with
      | Error e -> Error e
      | Ok inst ->
        let ops =
          { Netdev.ndo_open = (fun () -> inst.Driver_api.ni_open ());
            ndo_stop = (fun () -> inst.Driver_api.ni_stop ());
            ndo_start_xmit =
              (fun ~queue skb ->
                 let len = Skbuff.length skb in
                 if len > arena_slot_size then Netdev.Xmit_busy
                 else begin
                   match Queue.take_opt arena.free with
                   | None -> Netdev.Xmit_busy
                   | Some slot ->
                     let addr = arena.base + (slot * arena_slot_size) in
                     Driver_api.charge k.Kernel.cpu ~label
                       (Cost_model.copy_cost m ~bytes:len);
                     Phys_mem.write k.Kernel.mem ~addr skb.Skbuff.data;
                     (match
                        inst.Driver_api.ni_xmit ~queue
                          { Driver_api.txb_addr = addr;
                            txb_len = len;
                            txb_token = slot;
                            txb_read =
                              (fun () -> Phys_mem.read k.Kernel.mem ~addr ~len) }
                      with
                      | `Ok -> Netdev.Xmit_ok
                      | `Busy ->
                        Queue.push slot arena.free;
                        Netdev.Xmit_busy)
                 end);
            ndo_do_ioctl = (fun ~cmd ~arg -> inst.Driver_api.ni_ioctl ~cmd ~arg) }
        in
        let dev =
          Netdev.create ~name:devname ~mac:inst.Driver_api.ni_mac ~ops
            ~tx_queues:(max 1 inst.Driver_api.ni_tx_queues) ()
        in
        dev_ref := Some dev;
        Netstack.register_netdev k.Kernel.net dev;
        Ok dev
    end
