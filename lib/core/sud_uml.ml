type t = {
  k : Kernel.t;
  proc : Process.t;
  grant : Safe_pci.grant;
  chan : Uchan.t;
  pool : Bufpool.t;
  label : string;
  mutable irq_handler : (unit -> unit) option;
  work : (unit -> unit) Sync.Mailbox.t;
  mutable n_upcalls : int;
  mutable n_worker : int;
}

let worker_count = 4

let create k ~proc ~grant ~chan ~pool =
  let t =
    { k;
      proc;
      grant;
      chan;
      pool;
      label = "proc:" ^ Process.name proc;
      irq_handler = None;
      work = Sync.Mailbox.create ~capacity:64;
      n_upcalls = 0;
      n_worker = 0 }
  in
  (* Worker fiber pool for callbacks that are allowed to block (§4.2). *)
  for i = 1 to worker_count do
    ignore
      (Process.spawn_fiber proc ~name:(Printf.sprintf "uml-worker-%d" i) (fun () ->
           let rec loop () =
             match Sync.Mailbox.recv t.work with
             | `Interrupted -> loop ()
             | `Ok job ->
               job ();
               loop ()
           in
           loop ())
       : Fiber.t)
  done;
  t

let env t =
  { Driver_api.env_jiffies = (fun () -> Engine.now t.k.Kernel.eng / 1_000_000);
    env_msleep = (fun ms -> ignore (Fiber.sleep t.k.Kernel.eng (ms * 1_000_000) : Fiber.wake));
    env_udelay = (fun us -> Driver_api.charge t.k.Kernel.cpu ~label:t.label (us * 1_000));
    env_printk =
      (fun s ->
         Uchan.uasend t.chan
           (Msg.make ~kind:Proxy_proto.down_printk ~payload:(Bytes.of_string s) ()));
    env_spawn = (fun ~name fn -> ignore (Process.spawn_fiber t.proc ~name fn : Fiber.t));
    env_consume = (fun ns -> Driver_api.charge t.k.Kernel.cpu ~label:t.label ns) }

let pcidev t =
  let g = t.grant in
  let bdf = Safe_pci.grant_bdf g in
  { Driver_api.pd_vendor = Safe_pci.cfg_read g ~off:Pci_cfg.vendor_id ~size:2;
    pd_device = Safe_pci.cfg_read g ~off:Pci_cfg.device_id ~size:2;
    pd_bdf = bdf;
    pd_cfg_read = (fun ~off ~size -> Safe_pci.cfg_read g ~off ~size);
    pd_cfg_write = (fun ~off ~size v -> Safe_pci.cfg_write g ~off ~size v);
    pd_enable = (fun () -> Safe_pci.enable_device g);
    pd_map_bar = (fun bar -> Safe_pci.map_mmio g ~bar);
    pd_io_bar = (fun bar -> Safe_pci.claim_io g ~bar);
    pd_alloc_dma = (fun ?coherent ~bytes () -> Safe_pci.alloc_dma g ?coherent ~bytes ());
    pd_free_dma = (fun r -> Safe_pci.free_dma g r);
    pd_request_irq =
      (fun handler ->
         t.irq_handler <- Some handler;
         (* The kernel owns MSI programming; interrupts come back to this
            process as up_interrupt messages on our own channel. *)
         let chan = t.chan in
         Safe_pci.setup_irq g ~sink:(fun () ->
             ignore (Uchan.try_asend chan (Msg.make ~kind:Proxy_proto.up_interrupt ()) : bool)));
    pd_free_irq =
      (fun () ->
         t.irq_handler <- None;
         Safe_pci.teardown_irq g);
    pd_irq_ack =
      (fun () -> Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_irq_ack ()));
    pd_find_capability = (fun id -> Safe_pci.find_capability g id) }

(* ---- the net-driver glue: upcall dispatch + downcall callbacks ---- *)

(* Per-packet SUD-UML bookkeeping (socket-buffer construction, address
   arithmetic, batching).  Large packets amortize the fixed costs over
   batched deliveries (paper 5.1: TCP_STREAM batches "many large packets
   to the kernel in one downcall"), so they charge less per packet. *)
let uml_packet_cost len = if len >= 256 then 500 else 1_400

type net_state = {
  inst : Driver_api.net_instance;
  mutable tx_backlog : Driver_api.txbuf list;   (* frames the ring refused, oldest last *)
}

let net_callbacks t st_ref =
  { Driver_api.nc_rx =
      (fun ~addr ~len ->
         (* skb wrapping + netif_rx downcall bookkeeping in SUD-UML *)
         Driver_api.charge t.k.Kernel.cpu ~label:t.label (uml_packet_cost len);
         Uchan.uasend t.chan
           (Msg.make ~kind:Proxy_proto.down_netif_rx ~args:[ addr; len ] ()));
    nc_tx_free =
      (fun ~token ->
         Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_tx_free ~args:[ token ] ()));
    nc_tx_done =
      (fun () ->
         (* Retry frames the ring previously refused before telling the
            kernel there is room again. *)
         (match !st_ref with
          | Some st ->
            let rec drain () =
              match st.tx_backlog with
              | [] -> ()
              | txb :: rest ->
                (match st.inst.Driver_api.ni_xmit txb with
                 | `Ok ->
                   st.tx_backlog <- rest;
                   drain ()
                 | `Busy -> ())
            in
            drain ()
          | None -> ());
         Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_tx_done ()));
    nc_carrier =
      (fun up ->
         Uchan.uasend t.chan
           (Msg.make ~kind:Proxy_proto.down_carrier ~args:[ (if up then 1 else 0) ] ())) }

let reply_ok t m ?(args = [ 0 ]) ?payload () =
  Uchan.reply t.chan (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args ?payload ())

let reply_err t m e =
  Uchan.reply t.chan
    (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args:[ 1 ] ~payload:(Bytes.of_string e) ())

let to_worker t job =
  t.n_worker <- t.n_worker + 1;
  match Sync.Mailbox.send t.work job with
  | `Ok -> ()
  | `Interrupted -> ()

let dispatch_net t st m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_net_xmit then begin
    (* Must-not-block path: runs inline in the idle loop.  SUD-UML
       constructs a socket buffer for every packet the kernel transmits
       (paper 6, "Optimized drivers") -- that work is charged here. *)
    let id = Msg.arg m 0 and len = Msg.arg m 1 in
    Driver_api.charge t.k.Kernel.cpu ~label:t.label (uml_packet_cost len);
    match Bufpool.get t.pool id with
    | None -> ()      (* kernel is trusted; only possible after close *)
    | Some buf ->
      let txb =
        { Driver_api.txb_addr = buf.Bufpool.addr;
          txb_len = len;
          txb_token = buf.Bufpool.id;
          txb_read = (fun () -> Bufpool.read t.pool buf ~off:0 ~len) }
      in
      (match st.inst.Driver_api.ni_xmit txb with
       | `Ok -> ()
       | `Busy -> st.tx_backlog <- st.tx_backlog @ [ txb ])
  end
  else if kind = Proxy_proto.up_interrupt then begin
    (match t.irq_handler with Some h -> h () | None -> ());
    (* "The driver indicates that it has finished processing" — ack so the
       kernel unmasks the vector. *)
    Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_irq_ack ())
  end
  else if kind = Proxy_proto.up_ping then
    (* Supervisor heartbeat: answered inline, so a reply proves the main
       upcall loop is alive, not merely a worker fiber. *)
    reply_ok t m ()
  else if kind = Proxy_proto.up_net_open then
    to_worker t (fun () ->
        match st.inst.Driver_api.ni_open () with
        | Ok () -> reply_ok t m ()
        | Error e -> reply_err t m e)
  else if kind = Proxy_proto.up_net_stop then
    to_worker t (fun () ->
        st.inst.Driver_api.ni_stop ();
        reply_ok t m ())
  else if kind = Proxy_proto.up_net_ioctl then
    to_worker t (fun () ->
        match st.inst.Driver_api.ni_ioctl ~cmd:(Msg.arg m 0) ~arg:(Msg.arg m 1) with
        | Ok v -> reply_ok t m ~args:[ 0; v ] ()
        | Error e -> reply_err t m e)
  else
    (* Unknown upcall: reply with an error if a reply is expected, so the
       kernel never blocks on us. *)
    if m.Msg.seq <> 0 then reply_err t m "unsupported upcall"

let serve_net t (drv : Driver_api.net_driver) =
  let st_ref = ref None in
  let callbacks = net_callbacks t st_ref in
  match drv.Driver_api.nd_probe (env t) (pcidev t) callbacks with
  | Error e ->
    (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok inst ->
    let st = { inst; tx_backlog = [] } in
    st_ref := Some st;
    (match
       Uchan.usend t.chan
         (Msg.make ~kind:Proxy_proto.down_net_register ~payload:inst.Driver_api.ni_mac ())
     with
     | Ok _ ->
       let rec loop () =
         match Uchan.wait t.chan with
         | Ok m ->
           t.n_upcalls <- t.n_upcalls + 1;
           dispatch_net t st m;
           loop ()
         | Error Uchan.Interrupted -> loop ()   (* non-fatal signal *)
         | Error (Uchan.Closed | Uchan.Hung) -> ()
       in
       loop ()
     | Error _ -> ())

let upcalls_handled t = t.n_upcalls
let worker_dispatches t = t.n_worker

(* ---- wireless ---- *)

let dispatch_wifi t (wi : Driver_api.wifi_instance) st m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_wifi_scan then
    to_worker t (fun () ->
        match wi.Driver_api.wi_scan () with
        | Ok () -> reply_ok t m ()
        | Error e -> reply_err t m e)
  else if kind = Proxy_proto.up_wifi_assoc then
    to_worker t (fun () ->
        match wi.Driver_api.wi_associate ~bssid:(Msg.arg m 0) with
        | Ok () -> reply_ok t m ()
        | Error e -> reply_err t m e)
  else if kind = Proxy_proto.up_wifi_set_rate then
    (* Asynchronous by design: queued from non-preemptable kernel context. *)
    ignore (wi.Driver_api.wi_set_rate (Msg.arg m 0) : (unit, string) result)
  else if kind = Proxy_proto.up_wifi_get_rates then
    to_worker t (fun () ->
        let rates = wi.Driver_api.wi_bitrates () in
        let payload = Bytes.create (2 * List.length rates) in
        List.iteri (fun i r -> Bytes.set_uint16_le payload (2 * i) r) rates;
        reply_ok t m ~payload ())
  else dispatch_net t st m

let serve_wifi t (drv : Driver_api.wifi_driver) =
  let st_ref = ref None in
  let ncb = net_callbacks t st_ref in
  let callbacks =
    { Driver_api.wc_net = ncb;
      wc_scan_done =
        (fun bssids ->
           let payload = Bytes.create (2 * List.length bssids) in
           List.iteri (fun i b -> Bytes.set_uint16_le payload (2 * i) b) bssids;
           Uchan.uasend t.chan
             (Msg.make ~kind:Proxy_proto.down_wifi_scan_done ~payload ()));
      wc_bss_changed =
        (fun bssid ->
           Uchan.uasend t.chan
             (Msg.make ~kind:Proxy_proto.down_wifi_bss_changed ~args:[ bssid ] ())) }
  in
  match drv.Driver_api.wd_probe (env t) (pcidev t) callbacks with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok wi ->
    let st = { inst = wi.Driver_api.wi_net; tx_backlog = [] } in
    st_ref := Some st;
    (* Mirror the static supported-rate set into the kernel (§3.1.1). *)
    let rates = wi.Driver_api.wi_bitrates () in
    let rates_payload = Bytes.create (2 * List.length rates) in
    List.iteri (fun i r -> Bytes.set_uint16_le rates_payload (2 * i) r) rates;
    Uchan.uasend t.chan
      (Msg.make ~kind:Proxy_proto.down_wifi_rates ~payload:rates_payload ());
    (match
       Uchan.usend t.chan
         (Msg.make ~kind:Proxy_proto.down_net_register
            ~payload:wi.Driver_api.wi_net.Driver_api.ni_mac ())
     with
     | Ok _ ->
       let rec loop () =
         match Uchan.wait t.chan with
         | Ok m ->
           t.n_upcalls <- t.n_upcalls + 1;
           dispatch_wifi t wi st m;
           loop ()
         | Error Uchan.Interrupted -> loop ()
         | Error (Uchan.Closed | Uchan.Hung) -> ()
       in
       loop ()
     | Error _ -> ())

(* ---- audio ---- *)

let dispatch_audio t (au : Driver_api.audio_instance) m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_audio_write then begin
    (* Inline, must not block: pull PCM out of the shared buffer. *)
    let id = Msg.arg m 0 and len = Msg.arg m 1 in
    match Bufpool.get t.pool id with
    | None -> ()
    | Some buf ->
      let pcm = Bufpool.read t.pool buf ~off:0 ~len in
      Driver_api.charge t.k.Kernel.cpu ~label:t.label 800;
      ignore (au.Driver_api.au_write pcm : int);
      Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_tx_free ~args:[ id ] ())
  end
  else if kind = Proxy_proto.up_interrupt then begin
    (match t.irq_handler with Some h -> h () | None -> ());
    Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_irq_ack ())
  end
  else if kind = Proxy_proto.up_audio_start then
    to_worker t (fun () ->
        match au.Driver_api.au_start () with
        | Ok () -> reply_ok t m ()
        | Error e -> reply_err t m e)
  else if kind = Proxy_proto.up_audio_stop then
    to_worker t (fun () ->
        au.Driver_api.au_stop ();
        reply_ok t m ())
  else if kind = Proxy_proto.up_audio_set_vol then
    to_worker t (fun () ->
        match au.Driver_api.au_set_volume (Msg.arg m 0) with
        | Ok () -> reply_ok t m ()
        | Error e -> reply_err t m e)
  else if kind = Proxy_proto.up_audio_get_vol then
    to_worker t (fun () ->
        match au.Driver_api.au_get_volume () with
        | Ok v -> reply_ok t m ~args:[ 0; v ] ()
        | Error e -> reply_err t m e)
  else if m.Msg.seq <> 0 then reply_err t m "unsupported upcall"

let serve_audio t (drv : Driver_api.audio_driver) =
  let callbacks =
    { Driver_api.ac_period_elapsed =
        (fun () -> Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_audio_period ())) }
  in
  match drv.Driver_api.ad_probe (env t) (pcidev t) callbacks with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok au ->
    (match Uchan.usend t.chan (Msg.make ~kind:Proxy_proto.down_audio_register ()) with
     | Ok _ ->
       let rec loop () =
         match Uchan.wait t.chan with
         | Ok m ->
           t.n_upcalls <- t.n_upcalls + 1;
           dispatch_audio t au m;
           loop ()
         | Error Uchan.Interrupted -> loop ()
         | Error (Uchan.Closed | Uchan.Hung) -> ()
       in
       loop ()
     | Error _ -> ())

(* ---- USB host: block + input ---- *)

let blk_block_size = 512

let dispatch_usb t (blk : Driver_api.block_instance option) m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_blk_read then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t m "no storage device"
        | Some b ->
          let lba = Msg.arg m 0 and count = Msg.arg m 1 and id = Msg.arg m 2 in
          (match Bufpool.get t.pool id with
           | None -> reply_err t m "bad buffer"
           | Some buf when count * blk_block_size > buf.Bufpool.size ->
             reply_err t m "request too large"
           | Some buf ->
             (match b.Driver_api.bl_read ~lba ~count with
              | Error e -> reply_err t m e
              | Ok data ->
                Bufpool.write t.pool buf ~off:0 data;
                reply_ok t m ())))
  else if kind = Proxy_proto.up_blk_write then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t m "no storage device"
        | Some b ->
          let lba = Msg.arg m 0 and count = Msg.arg m 1 and id = Msg.arg m 2 in
          (match Bufpool.get t.pool id with
           | None -> reply_err t m "bad buffer"
           | Some buf when count * blk_block_size > buf.Bufpool.size ->
             reply_err t m "request too large"
           | Some buf ->
             let data = Bufpool.read t.pool buf ~off:0 ~len:(count * blk_block_size) in
             (match b.Driver_api.bl_write ~lba data with
              | Error e -> reply_err t m e
              | Ok () -> reply_ok t m ())))
  else if kind = Proxy_proto.up_blk_capacity then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t m "no storage device"
        | Some b -> reply_ok t m ~args:[ 0; b.Driver_api.bl_capacity () ] ())
  else if kind = Proxy_proto.up_interrupt then begin
    (match t.irq_handler with Some h -> h () | None -> ());
    Uchan.uasend t.chan (Msg.make ~kind:Proxy_proto.down_irq_ack ())
  end
  else if m.Msg.seq <> 0 then reply_err t m "unsupported upcall"

let serve_usb t ~bind_storage ~bind_keyboard (drv : Driver_api.usb_host_driver) =
  match drv.Driver_api.ud_probe (env t) (pcidev t) with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok host ->
    let blk = ref None in
    (match host.Driver_api.uh_enumerate () with
     | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "enumerate failed: %s" e)
     | Ok handles ->
       List.iter
         (fun ud ->
            if ud.Driver_api.ud_class = 0x08 && !blk = None then begin
              match bind_storage ud with
              | Ok b ->
                blk := Some b;
                ignore
                  (Uchan.usend t.chan
                     (Msg.make ~kind:Proxy_proto.down_blk_register
                        ~args:[ b.Driver_api.bl_capacity () ] ())
                   : (Msg.t, Uchan.error) result)
              | Error e ->
                (env t).Driver_api.env_printk (Printf.sprintf "usb-storage: %s" e)
            end
            else if ud.Driver_api.ud_class = 0x03 then
              bind_keyboard (env t) ud
                { Driver_api.ic_key =
                    (fun key ->
                       Uchan.uasend t.chan
                         (Msg.make ~kind:Proxy_proto.down_input_key ~args:[ key ] ())) })
         handles);
    let rec loop () =
      match Uchan.wait t.chan with
      | Ok m ->
        t.n_upcalls <- t.n_upcalls + 1;
        dispatch_usb t !blk m;
        loop ()
      | Error Uchan.Interrupted -> loop ()
      | Error (Uchan.Closed | Uchan.Hung) -> ()
    in
    loop ()
