type t = {
  k : Kernel.t;
  proc : Process.t;
  grant : Safe_pci.grant;
  chan : Uchan.t;
  pool : Bufpool.t;
  label : string;
  mutable irq_handler : (queue:int -> unit) option;
  work : (unit -> unit) Sync.Mailbox.t;
  mutable n_upcalls : int;
  mutable n_worker : int;
}

let worker_count = 4

let create k ~proc ~grant ~chan ~pool =
  let t =
    { k;
      proc;
      grant;
      chan;
      pool;
      label = "proc:" ^ Process.name proc;
      irq_handler = None;
      work = Sync.Mailbox.create ~capacity:64;
      n_upcalls = 0;
      n_worker = 0 }
  in
  (* Worker fiber pool for callbacks that are allowed to block (§4.2). *)
  for i = 1 to worker_count do
    ignore
      (Process.spawn_fiber proc ~name:(Printf.sprintf "uml-worker-%d" i) (fun () ->
           let rec loop () =
             match Sync.Mailbox.recv t.work with
             | `Interrupted -> loop ()
             | `Ok job ->
               job ();
               loop ()
           in
           loop ())
       : Fiber.t)
  done;
  t

(* Clamp a device queue index onto a uchan ring the channel actually has:
   a single-ring channel carries every queue's traffic on ring 0. *)
let uq t q = if q >= 0 && q < Uchan.num_queues t.chan then q else 0

let env t =
  { Driver_api.env_jiffies = (fun () -> Engine.now t.k.Kernel.eng / 1_000_000);
    env_msleep = (fun ms -> ignore (Fiber.sleep t.k.Kernel.eng (ms * 1_000_000) : Fiber.wake));
    env_usleep = (fun us -> ignore (Fiber.sleep t.k.Kernel.eng (us * 1_000) : Fiber.wake));
    (* Everything in a SUD driver — interrupt upcalls included — runs in
       the driver process's schedulable context (paper §3.2). *)
    env_may_sleep = (fun () -> true);
    env_printk =
      (fun s ->
         Uchan.transfer t.chan ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_printk ~payload:(Bytes.of_string s) ()));
    env_udelay = (fun us -> Driver_api.charge t.k.Kernel.cpu ~label:t.label (us * 1_000));
    env_spawn = (fun ~name fn -> ignore (Process.spawn_fiber t.proc ~name fn : Fiber.t));
    env_consume = (fun ns -> Driver_api.charge t.k.Kernel.cpu ~label:t.label ns) }

let pcidev t =
  let g = t.grant in
  let bdf = Safe_pci.grant_bdf g in
  let request_irqs ~n handler =
    t.irq_handler <- Some handler;
    (* The kernel owns MSI-X programming; each vector comes back to this
       process as an up_interrupt on the matching uchan ring, so queue
       q's interrupt wakes only queue q's service fiber. *)
    let chan = t.chan in
    Safe_pci.setup_irqs g ~n ~sink:(fun ~queue ->
        ignore
          (Uchan.transfer chan ~queue:(uq t queue) ~from:`Kernel Uchan.Nonblock
             (Msg.make ~kind:Proxy_proto.up_interrupt ~args:[ queue ] ())
           : bool))
  in
  { Driver_api.pd_vendor = Safe_pci.cfg_read g ~off:Pci_cfg.vendor_id ~size:2;
    pd_device = Safe_pci.cfg_read g ~off:Pci_cfg.device_id ~size:2;
    pd_bdf = bdf;
    pd_cfg_read = (fun ~off ~size -> Safe_pci.cfg_read g ~off ~size);
    pd_cfg_write = (fun ~off ~size v -> Safe_pci.cfg_write g ~off ~size v);
    pd_enable = (fun () -> Safe_pci.enable_device g);
    pd_map_bar = (fun bar -> Safe_pci.map_mmio g ~bar);
    pd_io_bar = (fun bar -> Safe_pci.claim_io g ~bar);
    pd_alloc_dma = (fun ?coherent ~bytes () -> Safe_pci.alloc_dma g ?coherent ~bytes ());
    pd_free_dma = (fun r -> Safe_pci.free_dma g r);
    pd_request_irq = (fun handler -> request_irqs ~n:1 (fun ~queue:_ -> handler ()));
    pd_request_irqs = request_irqs;
    pd_free_irq =
      (fun () ->
         t.irq_handler <- None;
         Safe_pci.teardown_irqs g);
    pd_irq_ack =
      (fun ?(queue = 0) () ->
         Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_irq_ack ~args:[ queue ] ()));
    pd_msix_vectors =
      (fun () -> min (Safe_pci.msix_vectors g) (Uchan.num_queues t.chan));
    pd_find_capability = (fun id -> Safe_pci.find_capability g id) }

(* ---- the net-driver glue: upcall dispatch + downcall callbacks ---- *)

(* Per-packet SUD-UML bookkeeping.  The RX fast path hands the proxy an
   (address, length) pair — descriptor decode and address arithmetic,
   a few hundred ns — and small packets pay a premium for the per-packet
   fraction of ring housekeeping that large packets amortize (paper 5.1:
   TCP_STREAM batches "many large packets to the kernel in one
   downcall").  The rest of the old per-packet figure was message
   construction and notification for the boundary crossing, and that no
   longer belongs here: the uchan charges marshalling and doorbell per
   *batch slot*, so frame aggregation amortizes it across the frames
   sharing a slot instead of paying it once per packet. *)
let uml_packet_cost len = if len >= 256 then 250 else 450

type net_state = {
  inst : Driver_api.net_instance;
  tx_backlog : Driver_api.txbuf list array;
      (* per TX queue: frames the ring refused, oldest last *)
}

let net_callbacks t st_ref =
  { Driver_api.nc_rx =
      (fun ~queue ~addr ~len ->
         (* skb wrapping + netif_rx downcall bookkeeping in SUD-UML.
            Each RX queue batches onto its own ring: per-queue flush
            buffers, never cross-queue contention. *)
         Driver_api.charge t.k.Kernel.cpu ~label:t.label (uml_packet_cost len);
         Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_netif_rx ~args:[ addr; len ] ()));
    nc_tx_free =
      (fun ~queue ~token ->
         Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_tx_free ~args:[ token ] ()));
    nc_tx_done =
      (fun ~queue ->
         (* Retry frames this queue's ring previously refused before
            telling the kernel there is room again. *)
         (match !st_ref with
          | Some st when queue >= 0 && queue < Array.length st.tx_backlog ->
            let rec drain () =
              match st.tx_backlog.(queue) with
              | [] -> ()
              | txb :: rest ->
                (match st.inst.Driver_api.ni_xmit ~queue txb with
                 | `Ok ->
                   st.tx_backlog.(queue) <- rest;
                   drain ()
                 | `Busy -> ())
            in
            drain ()
          | Some _ | None -> ());
         Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_tx_done ()));
    nc_carrier =
      (fun up ->
         Uchan.transfer t.chan ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_carrier ~args:[ (if up then 1 else 0) ] ())) }

let reply_ok t ?(queue = 0) m ?(args = [ 0 ]) ?payload () =
  Uchan.reply ~queue t.chan (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args ?payload ())

let reply_err t ?(queue = 0) m e =
  Uchan.reply ~queue t.chan
    (Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ~args:[ 1 ] ~payload:(Bytes.of_string e) ())

let to_worker t job =
  t.n_worker <- t.n_worker + 1;
  match Sync.Mailbox.send t.work job with
  | `Ok -> ()
  | `Interrupted -> ()

let handle_interrupt t ~queue =
  (match t.irq_handler with Some h -> h ~queue | None -> ());
  (* "The driver indicates that it has finished processing" — ack so the
     kernel unmasks that vector (its siblings were never masked). *)
  Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
    (Msg.make ~kind:Proxy_proto.down_irq_ack ~args:[ queue ] ())

let dispatch_net t st ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_net_xmit then begin
    (* Must-not-block path: runs inline in the queue's service loop.
       SUD-UML constructs a socket buffer for every packet the kernel
       transmits (paper 6, "Optimized drivers") -- charged here. *)
    let id = Msg.arg m 0 and len = Msg.arg m 1 in
    let txq = if queue < Array.length st.tx_backlog then queue else 0 in
    Driver_api.charge t.k.Kernel.cpu ~label:t.label (uml_packet_cost len);
    match Bufpool.get t.pool id with
    | None -> ()      (* kernel is trusted; only possible after close *)
    | Some buf ->
      let txb =
        { Driver_api.txb_addr = buf.Bufpool.addr;
          txb_len = len;
          txb_token = buf.Bufpool.id;
          txb_read = (fun () -> Bufpool.read t.pool buf ~off:0 ~len) }
      in
      (match st.inst.Driver_api.ni_xmit ~queue:txq txb with
       | `Ok -> ()
       | `Busy -> st.tx_backlog.(txq) <- st.tx_backlog.(txq) @ [ txb ])
  end
  else if kind = Proxy_proto.up_interrupt then
    handle_interrupt t ~queue:(Msg.arg m 0)
  else if kind = Proxy_proto.up_ping then
    (* Supervisor heartbeat: answered inline, so a reply proves the main
       upcall loop is alive, not merely a worker fiber. *)
    reply_ok t ~queue m ()
  else if kind = Proxy_proto.up_net_open then
    to_worker t (fun () ->
        match st.inst.Driver_api.ni_open () with
        | Ok () -> reply_ok t ~queue m ()
        | Error e -> reply_err t ~queue m e)
  else if kind = Proxy_proto.up_net_stop then
    to_worker t (fun () ->
        st.inst.Driver_api.ni_stop ();
        reply_ok t ~queue m ())
  else if kind = Proxy_proto.up_net_ioctl then
    to_worker t (fun () ->
        match st.inst.Driver_api.ni_ioctl ~cmd:(Msg.arg m 0) ~arg:(Msg.arg m 1) with
        | Ok v -> reply_ok t ~queue m ~args:[ 0; v ] ()
        | Error e -> reply_err t ~queue m e)
  else
    (* Unknown upcall: reply with an error if a reply is expected, so the
       kernel never blocks on us. *)
    if m.Msg.seq <> 0 then reply_err t ~queue m "unsupported upcall"

(* One service loop per uchan ring.  Queue 0 runs in the caller's fiber
   (it doubles as the control path); data queues get their own fibers,
   so a busy ring never delays its siblings' interrupts or heartbeats. *)
let serve_queues t dispatch =
  let n = Uchan.num_queues t.chan in
  let loop_on queue () =
    let rec loop () =
      match Uchan.wait ~queue t.chan with
      | Ok m ->
        t.n_upcalls <- t.n_upcalls + 1;
        dispatch ~queue m;
        loop ()
      | Error Uchan.Interrupted -> loop ()   (* non-fatal signal *)
      | Error (Uchan.Closed | Uchan.Hung) -> ()
    in
    loop ()
  in
  for q = 1 to n - 1 do
    ignore
      (Process.spawn_fiber t.proc ~name:(Printf.sprintf "uml-queue-%d" q) (loop_on q)
       : Fiber.t)
  done;
  loop_on 0 ()

let serve_net t (drv : Driver_api.net_driver) =
  let st_ref = ref None in
  let callbacks = net_callbacks t st_ref in
  match drv.Driver_api.nd_probe (env t) (pcidev t) callbacks with
  | Error e ->
    (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok inst ->
    let nq = max 1 inst.Driver_api.ni_tx_queues in
    let st = { inst; tx_backlog = Array.make nq [] } in
    st_ref := Some st;
    (match
       Uchan.transfer t.chan ~from:`Driver Uchan.Sync
         (Msg.make ~kind:Proxy_proto.down_net_register ~args:[ nq ]
            ~payload:inst.Driver_api.ni_mac ())
     with
     | Ok _ -> serve_queues t (dispatch_net t st)
     | Error _ -> ())

let upcalls_handled t = t.n_upcalls
let worker_dispatches t = t.n_worker

(* ---- wireless ---- *)

let dispatch_wifi t (wi : Driver_api.wifi_instance) st ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_wifi_scan then
    to_worker t (fun () ->
        match wi.Driver_api.wi_scan () with
        | Ok () -> reply_ok t ~queue m ()
        | Error e -> reply_err t ~queue m e)
  else if kind = Proxy_proto.up_wifi_assoc then
    to_worker t (fun () ->
        match wi.Driver_api.wi_associate ~bssid:(Msg.arg m 0) with
        | Ok () -> reply_ok t ~queue m ()
        | Error e -> reply_err t ~queue m e)
  else if kind = Proxy_proto.up_wifi_set_rate then
    (* Asynchronous by design: queued from non-preemptable kernel context. *)
    ignore (wi.Driver_api.wi_set_rate (Msg.arg m 0) : (unit, string) result)
  else if kind = Proxy_proto.up_wifi_get_rates then
    to_worker t (fun () ->
        let rates = wi.Driver_api.wi_bitrates () in
        let payload = Bytes.create (2 * List.length rates) in
        List.iteri (fun i r -> Bytes.set_uint16_le payload (2 * i) r) rates;
        reply_ok t ~queue m ~payload ())
  else dispatch_net t st ~queue m

let serve_wifi t (drv : Driver_api.wifi_driver) =
  let st_ref = ref None in
  let ncb = net_callbacks t st_ref in
  let callbacks =
    { Driver_api.wc_net = ncb;
      wc_scan_done =
        (fun bssids ->
           let payload = Bytes.create (2 * List.length bssids) in
           List.iteri (fun i b -> Bytes.set_uint16_le payload (2 * i) b) bssids;
           Uchan.transfer t.chan ~from:`Driver Uchan.Batched
             (Msg.make ~kind:Proxy_proto.down_wifi_scan_done ~payload ()));
      wc_bss_changed =
        (fun bssid ->
           Uchan.transfer t.chan ~from:`Driver Uchan.Batched
             (Msg.make ~kind:Proxy_proto.down_wifi_bss_changed ~args:[ bssid ] ())) }
  in
  match drv.Driver_api.wd_probe (env t) (pcidev t) callbacks with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok wi ->
    let inst = wi.Driver_api.wi_net in
    let nq = max 1 inst.Driver_api.ni_tx_queues in
    let st = { inst; tx_backlog = Array.make nq [] } in
    st_ref := Some st;
    (* Mirror the static supported-rate set into the kernel (§3.1.1). *)
    let rates = wi.Driver_api.wi_bitrates () in
    let rates_payload = Bytes.create (2 * List.length rates) in
    List.iteri (fun i r -> Bytes.set_uint16_le rates_payload (2 * i) r) rates;
    Uchan.transfer t.chan ~from:`Driver Uchan.Batched
      (Msg.make ~kind:Proxy_proto.down_wifi_rates ~payload:rates_payload ());
    (match
       Uchan.transfer t.chan ~from:`Driver Uchan.Sync
         (Msg.make ~kind:Proxy_proto.down_net_register ~args:[ nq ]
            ~payload:inst.Driver_api.ni_mac ())
     with
     | Ok _ -> serve_queues t (dispatch_wifi t wi st)
     | Error _ -> ())

(* ---- audio ---- *)

let dispatch_audio t (au : Driver_api.audio_instance) ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_audio_write then begin
    (* Inline, must not block: pull PCM out of the shared buffer. *)
    let id = Msg.arg m 0 and len = Msg.arg m 1 in
    match Bufpool.get t.pool id with
    | None -> ()
    | Some buf ->
      let pcm = Bufpool.read t.pool buf ~off:0 ~len in
      Driver_api.charge t.k.Kernel.cpu ~label:t.label 800;
      ignore (au.Driver_api.au_write pcm : int);
      Uchan.transfer t.chan ~from:`Driver Uchan.Batched
        (Msg.make ~kind:Proxy_proto.down_tx_free ~args:[ id ] ())
  end
  else if kind = Proxy_proto.up_interrupt then
    handle_interrupt t ~queue:(Msg.arg m 0)
  else if kind = Proxy_proto.up_ping then reply_ok t ~queue m ()
  else if kind = Proxy_proto.up_audio_start then
    to_worker t (fun () ->
        match au.Driver_api.au_start () with
        | Ok () -> reply_ok t ~queue m ()
        | Error e -> reply_err t ~queue m e)
  else if kind = Proxy_proto.up_audio_stop then
    to_worker t (fun () ->
        au.Driver_api.au_stop ();
        reply_ok t ~queue m ())
  else if kind = Proxy_proto.up_audio_set_vol then
    to_worker t (fun () ->
        match au.Driver_api.au_set_volume (Msg.arg m 0) with
        | Ok () -> reply_ok t ~queue m ()
        | Error e -> reply_err t ~queue m e)
  else if kind = Proxy_proto.up_audio_get_vol then
    to_worker t (fun () ->
        match au.Driver_api.au_get_volume () with
        | Ok v -> reply_ok t ~queue m ~args:[ 0; v ] ()
        | Error e -> reply_err t ~queue m e)
  else if m.Msg.seq <> 0 then reply_err t ~queue m "unsupported upcall"

let serve_audio t (drv : Driver_api.audio_driver) =
  let callbacks =
    { Driver_api.ac_period_elapsed =
        (fun () ->
           Uchan.transfer t.chan ~from:`Driver Uchan.Batched
             (Msg.make ~kind:Proxy_proto.down_audio_period ())) }
  in
  match drv.Driver_api.ad_probe (env t) (pcidev t) callbacks with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok au ->
    (match
       Uchan.transfer t.chan ~from:`Driver Uchan.Sync
         (Msg.make ~kind:Proxy_proto.down_audio_register ())
     with
     | Ok _ -> serve_queues t (dispatch_audio t au)
     | Error _ -> ())

(* ---- sud-blk: asynchronous NVMe-style block ---- *)

type blk_state = {
  binst : Driver_api.blkdev_instance;
  (* Per uchan ring: submissions the hardware queue refused, oldest
     first — retried in order when a completion frees a slot, so the
     per-queue FIFO the recovery invariant leans on is preserved. *)
  blk_pending : (int * int * int * int * int) Queue.t array;
}

let blk_try_submit st ~queue ~tag ~op ~lba ~count ~addr =
  let q = if queue >= 0 && queue < Array.length st.blk_pending then queue else 0 in
  if not (Queue.is_empty st.blk_pending.(q)) then
    (* Order matters: nothing overtakes a parked submission. *)
    Queue.add (tag, op, lba, count, addr) st.blk_pending.(q)
  else
    match st.binst.Driver_api.bi_submit ~queue:q ~tag ~op ~lba ~count ~addr with
    | `Ok -> ()
    | `Busy -> Queue.add (tag, op, lba, count, addr) st.blk_pending.(q)

let blk_drain_pending st queue =
  let q = if queue >= 0 && queue < Array.length st.blk_pending then queue else 0 in
  let rec go () =
    match Queue.peek_opt st.blk_pending.(q) with
    | None -> ()
    | Some (tag, op, lba, count, addr) ->
      (match st.binst.Driver_api.bi_submit ~queue:q ~tag ~op ~lba ~count ~addr with
       | `Ok ->
         ignore (Queue.pop st.blk_pending.(q) : int * int * int * int * int);
         go ()
       | `Busy -> ())
  in
  go ()

let blk_callbacks t st_ref =
  { Driver_api.bc_complete =
      (fun ~queue ~tag ~status ->
         (* A completion frees a submission-queue slot: retry parked
            requests before reporting, so replays drain promptly. *)
         (match !st_ref with
          | Some st -> blk_drain_pending st queue
          | None -> ());
         Uchan.transfer t.chan ~queue:(uq t queue) ~from:`Driver Uchan.Batched
           (Msg.make ~kind:Proxy_proto.down_blk_complete ~args:[ tag; status ] ())) }

let dispatch_blk t st ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_blk_submit then begin
    (* Must-not-block path, inline in the ring's service fiber.  The
       buffer id is encoded +1 on the wire (0 = no buffer — flush). *)
    let tag = Msg.arg m 0 and op = Msg.arg m 1 and lba = Msg.arg m 2 in
    let count = Msg.arg m 3 and buf1 = Msg.arg m 4 in
    Driver_api.charge t.k.Kernel.cpu ~label:t.label 300;
    let addr =
      if buf1 = 0 then Some 0
      else
        match Bufpool.get t.pool (buf1 - 1) with
        | Some buf -> Some buf.Bufpool.addr
        | None -> None    (* kernel is trusted; only possible after close *)
    in
    match addr with
    | None -> ()
    | Some addr -> blk_try_submit st ~queue ~tag ~op ~lba ~count ~addr
  end
  else if kind = Proxy_proto.up_interrupt then
    handle_interrupt t ~queue:(Msg.arg m 0)
  else if kind = Proxy_proto.up_ping then reply_ok t ~queue m ()
  else if m.Msg.seq <> 0 then reply_err t ~queue m "unsupported upcall"

let serve_blk t (drv : Driver_api.blk_driver) =
  let st_ref = ref None in
  let callbacks = blk_callbacks t st_ref in
  match drv.Driver_api.bd_probe (env t) (pcidev t) callbacks with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok binst ->
    let nq = Uchan.num_queues t.chan in
    let st = { binst; blk_pending = Array.init nq (fun _ -> Queue.create ()) } in
    st_ref := Some st;
    (match
       Uchan.transfer t.chan ~from:`Driver Uchan.Sync
         (Msg.make ~kind:Proxy_proto.down_blkdev_register
            ~args:[ binst.Driver_api.bi_capacity; binst.Driver_api.bi_queues ] ())
     with
     | Ok _ -> serve_queues t (dispatch_blk t st)
     | Error _ -> ())

(* ---- USB host: block + input ---- *)

let blk_block_size = 512

let dispatch_usb t (blk : Driver_api.block_instance option) ~queue m =
  let kind = m.Msg.kind in
  if kind = Proxy_proto.up_blk_read then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t ~queue m "no storage device"
        | Some b ->
          let lba = Msg.arg m 0 and count = Msg.arg m 1 and id = Msg.arg m 2 in
          (match Bufpool.get t.pool id with
           | None -> reply_err t ~queue m "bad buffer"
           | Some buf when count * blk_block_size > buf.Bufpool.size ->
             reply_err t ~queue m "request too large"
           | Some buf ->
             (match b.Driver_api.bl_read ~lba ~count with
              | Error e -> reply_err t ~queue m e
              | Ok data ->
                Bufpool.write t.pool buf ~off:0 data;
                reply_ok t ~queue m ())))
  else if kind = Proxy_proto.up_blk_write then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t ~queue m "no storage device"
        | Some b ->
          let lba = Msg.arg m 0 and count = Msg.arg m 1 and id = Msg.arg m 2 in
          (match Bufpool.get t.pool id with
           | None -> reply_err t ~queue m "bad buffer"
           | Some buf when count * blk_block_size > buf.Bufpool.size ->
             reply_err t ~queue m "request too large"
           | Some buf ->
             let data = Bufpool.read t.pool buf ~off:0 ~len:(count * blk_block_size) in
             (match b.Driver_api.bl_write ~lba data with
              | Error e -> reply_err t ~queue m e
              | Ok () -> reply_ok t ~queue m ())))
  else if kind = Proxy_proto.up_blk_capacity then
    to_worker t (fun () ->
        match blk with
        | None -> reply_err t ~queue m "no storage device"
        | Some b -> reply_ok t ~queue m ~args:[ 0; b.Driver_api.bl_capacity () ] ())
  else if kind = Proxy_proto.up_interrupt then
    handle_interrupt t ~queue:(Msg.arg m 0)
  else if kind = Proxy_proto.up_ping then reply_ok t ~queue m ()
  else if m.Msg.seq <> 0 then reply_err t ~queue m "unsupported upcall"

let serve_usb t ~bind_storage ~bind_keyboard (drv : Driver_api.usb_host_driver) =
  match drv.Driver_api.ud_probe (env t) (pcidev t) with
  | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "probe failed: %s" e)
  | Ok host ->
    let blk = ref None in
    (match host.Driver_api.uh_enumerate () with
     | Error e -> (env t).Driver_api.env_printk (Printf.sprintf "enumerate failed: %s" e)
     | Ok handles ->
       List.iter
         (fun ud ->
            if ud.Driver_api.ud_class = 0x08 && !blk = None then begin
              match bind_storage ud with
              | Ok b ->
                blk := Some b;
                ignore
                  (Uchan.transfer t.chan ~from:`Driver Uchan.Sync
                     (Msg.make ~kind:Proxy_proto.down_blk_register
                        ~args:[ b.Driver_api.bl_capacity () ] ())
                   : (Msg.t, Uchan.error) result)
              | Error e ->
                (env t).Driver_api.env_printk (Printf.sprintf "usb-storage: %s" e)
            end
            else if ud.Driver_api.ud_class = 0x03 then
              bind_keyboard (env t) ud
                { Driver_api.ic_key =
                    (fun key ->
                       Uchan.transfer t.chan ~from:`Driver Uchan.Batched
                         (Msg.make ~kind:Proxy_proto.down_input_key ~args:[ key ] ())) })
         handles);
    serve_queues t (fun ~queue m ->
        dispatch_usb t !blk ~queue m)
