type mmio = {
  mmio_read : off:int -> size:int -> int;
  mmio_write : off:int -> size:int -> int -> unit;
}

type pio = {
  pio_read : off:int -> size:int -> int;
  pio_write : off:int -> size:int -> int -> unit;
}

type dma_region = {
  dma_addr : int;
  dma_size : int;
  dma_read : off:int -> len:int -> bytes;
  dma_write : off:int -> bytes -> unit;
}

let dma_get32 r ~off =
  let b = r.dma_read ~off ~len:4 in
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let dma_set32 r ~off v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  r.dma_write ~off b

let dma_get64 r ~off =
  let b = r.dma_read ~off ~len:8 in
  Bytes.get_int64_le b 0

let dma_set64 r ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  r.dma_write ~off b

type pcidev = {
  pd_vendor : int;
  pd_device : int;
  pd_bdf : Bus.bdf;
  pd_cfg_read : off:int -> size:int -> int;
  pd_cfg_write : off:int -> size:int -> int -> (unit, string) result;
  pd_enable : unit -> (unit, string) result;
  pd_map_bar : int -> (mmio, string) result;
  pd_io_bar : int -> (pio, string) result;
  pd_alloc_dma : ?coherent:bool -> bytes:int -> unit -> (dma_region, string) result;
  pd_free_dma : dma_region -> unit;
  pd_request_irq : (unit -> unit) -> (unit, string) result;
  pd_request_irqs : n:int -> (queue:int -> unit) -> (unit, string) result;
  pd_free_irq : unit -> unit;
  pd_irq_ack : ?queue:int -> unit -> unit;
  pd_msix_vectors : unit -> int;
  pd_find_capability : int -> int option;
}

type env = {
  env_jiffies : unit -> int;
  env_msleep : int -> unit;
  env_usleep : int -> unit;
  env_udelay : int -> unit;
  env_may_sleep : unit -> bool;
  env_printk : string -> unit;
  env_spawn : name:string -> (unit -> unit) -> unit;
  env_consume : int -> unit;
}

type txbuf = {
  txb_addr : int;
  txb_len : int;
  txb_token : int;
  txb_read : unit -> bytes;
}

type net_callbacks = {
  nc_rx : queue:int -> addr:int -> len:int -> unit;
  nc_tx_free : queue:int -> token:int -> unit;
  nc_tx_done : queue:int -> unit;
  nc_carrier : bool -> unit;
}

type net_instance = {
  ni_mac : bytes;
  ni_tx_queues : int;
  ni_open : unit -> (unit, string) result;
  ni_stop : unit -> unit;
  ni_xmit : queue:int -> txbuf -> [ `Ok | `Busy ];
  ni_ioctl : cmd:int -> arg:int -> (int, string) result;
}

type net_driver = {
  nd_name : string;
  nd_ids : (int * int) list;
  nd_probe : env -> pcidev -> net_callbacks -> (net_instance, string) result;
}

type wifi_callbacks = {
  wc_net : net_callbacks;
  wc_scan_done : int list -> unit;
  wc_bss_changed : int -> unit;
}

type wifi_instance = {
  wi_net : net_instance;
  wi_scan : unit -> (unit, string) result;
  wi_associate : bssid:int -> (unit, string) result;
  wi_bitrates : unit -> int list;
  wi_set_rate : int -> (unit, string) result;
}

type wifi_driver = {
  wd_name : string;
  wd_ids : (int * int) list;
  wd_probe : env -> pcidev -> wifi_callbacks -> (wifi_instance, string) result;
}

type audio_callbacks = { ac_period_elapsed : unit -> unit }

type audio_instance = {
  au_start : unit -> (unit, string) result;
  au_stop : unit -> unit;
  au_write : bytes -> int;
  au_set_volume : int -> (unit, string) result;
  au_get_volume : unit -> (int, string) result;
}

type audio_driver = {
  ad_name : string;
  ad_ids : (int * int) list;
  ad_probe : env -> pcidev -> audio_callbacks -> (audio_instance, string) result;
}

type block_instance = {
  bl_capacity : unit -> int;
  bl_read : lba:int -> count:int -> (bytes, string) result;
  bl_write : lba:int -> bytes -> (unit, string) result;
}

(* ---- sud-blk: asynchronous multiqueue block drivers (NVMe-style) ---- *)

type blk_callbacks = {
  bc_complete : queue:int -> tag:int -> status:int -> unit;
      (** Completion for a previously accepted submission.  [tag] echoes
          the submit's idempotency tag; [status] 0 = success. *)
}

type blkdev_instance = {
  bi_capacity : int;             (* 512-byte sectors *)
  bi_queues : int;               (* hardware queue pairs the driver set up *)
  bi_submit :
    queue:int -> tag:int -> op:int -> lba:int -> count:int -> addr:int ->
    [ `Ok | `Busy ];
      (** Queue one request.  [op] is a [Proxy_proto.blk_op_*] value
          (possibly OR'd with [blk_op_fua]); [addr] is the shared-buffer
          DMA address, meaningless for flushes.  [`Busy] means the
          submission queue is full — resubmit after a completion. *)
}

type blk_driver = {
  bd_name : string;
  bd_ids : (int * int) list;
  bd_probe : env -> pcidev -> blk_callbacks -> (blkdev_instance, string) result;
}

type input_callbacks = { ic_key : int -> unit }

type usb_dev_handle = {
  ud_address : int;
  ud_class : int;
  ud_control : setup:bytes -> dir_in:bool -> len:int -> (bytes, string) result;
  ud_bulk_out : ep:int -> bytes -> (unit, string) result;
  ud_bulk_in : ep:int -> len:int -> (bytes, string) result;
  ud_interrupt_in : ep:int -> len:int -> (bytes option, string) result;
}

type usb_host_instance = {
  uh_enumerate : unit -> (usb_dev_handle list, string) result;
}

type usb_host_driver = {
  ud_name : string;
  ud_ids : (int * int) list;
  ud_probe : env -> pcidev -> (usb_host_instance, string) result;
}

let charge cpu ~label ns =
  match Fiber.self () with
  | _ -> Cpu.consume cpu ~label ns
  | exception Failure _ -> Cpu.account cpu ~label ns
