type t = {
  k : Kernel.t;
  sp : Safe_pci.t;
  drv : Driver_api.net_driver;
  mutable cur : Driver_host.started;
  mutable want_up : bool;
  mutable n_restarts : int;
  mutable running : bool;
}

let current t = t.cur
let netdev t = Driver_host.netdev t.cur
let restarts t = t.n_restarts
let stop t = t.running <- false

let unhealthy t =
  (not (Process.is_alive (Driver_host.proc t.cur)))
  || Proxy_net.hung (Driver_host.proxy t.cur)

let recover t =
  t.n_restarts <- t.n_restarts + 1;
  Klog.printk t.k.Kernel.klog Klog.Warn "shadow: restarting driver for %s (restart #%d)"
    (Bus.string_of_bdf (Driver_host.bdf t.cur))
    t.n_restarts;
  (* Snapshot the dying generation's class state while its proxy is
     still reachable; the fresh generation adopts it (a no-op for a
     non-parked proxy today, but it keeps the shadow on the same
     handoff/adopt edge the supervisor uses). *)
  let handoff = Proxy_class.handoff (Driver_host.class_of t.cur) in
  match Driver_host.restart t.k t.sp t.cur t.drv with
  | Error e ->
    Klog.printk t.k.Kernel.klog Klog.Err "shadow: restart failed: %s" e
  | Ok fresh ->
    t.cur <- fresh;
    Proxy_class.adopt (Driver_host.class_of fresh) handoff;
    (* Replay captured interface state. *)
    if t.want_up then
      match Netstack.ifconfig_up t.k.Kernel.net (Driver_host.netdev fresh) with
      | Ok () ->
        Klog.printk t.k.Kernel.klog Klog.Info "shadow: %s recovered and back up"
          (Netdev.name (Driver_host.netdev fresh))
      | Error e ->
        Klog.printk t.k.Kernel.klog Klog.Err "shadow: recovered driver failed to open: %s" e

let watch k sp ?(poll_ms = 10) started drv =
  let t =
    { k; sp; drv; cur = started; want_up = false; n_restarts = 0; running = true }
  in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"shadow-driver"
       (fun () ->
          let rec loop () =
            if t.running then begin
              (* Remember the administrator's intent while healthy. *)
              if Process.is_alive (Driver_host.proc t.cur) then
                t.want_up <- t.want_up || Netdev.is_up (Driver_host.netdev t.cur);
              if unhealthy t then recover t;
              ignore (Fiber.sleep k.Kernel.eng (poll_ms * 1_000_000) : Fiber.wake);
              loop ()
            end
          in
          loop ())
     : Fiber.t);
  t
