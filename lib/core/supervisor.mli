(** Kernel-side driver supervisor: automatic detect → contain → recover.

    The paper (§4.1, §5.2) shows a SUD driver being killed with [kill -9]
    and restarted by the administrator with no kernel damage.  The
    supervisor closes that loop autonomously.  A kernel watchdog fiber
    (one per supervised device) polls every misbehavior signal the kernel
    already collects —

    - driver process death (also kicked immediately via an exit hook),
    - uchan closed, malformed user→kernel slots, downcall-ring floods,
    - uchan protocol violations adjudicated by {!Conformance} (wrong
      epoch, forged completions, out-of-order sequences, kinds illegal
      in the DFA state),
    - sustained notification-kick overflow on the driver's {!Quota}
      token bucket,
    - upcalls timing out ([Proxy_net.hung], heartbeat below),
    - IOMMU faults attributed to the device's BDF,
    - interrupt-storm escalations counted by the grant —

    and each tick sends an [up_ping] heartbeat the driver's main upcall
    loop must answer inline within the channel's hang timeout, so a
    wedged main loop is caught even when no other traffic is flowing.

    On detection the supervisor kills the driver process (revoking the
    grant and detaching the IOMMU domain via the normal death path),
    function-level-resets the device ({!Safe_pci.reset_device}), and
    restarts the driver with exponential backoff.  While recovering, the
    netdev does not vanish: carrier goes off and transmits land in a
    bounded backlog that is replayed once the fresh driver registers and
    reopens.  A driver that crash-loops past [max_restarts] within
    [restart_window_ns] is quarantined: netdev unregistered, backlog
    dropped, sysfs [sud_state] set to ["quarantined"], no further
    restarts. *)

type policy = {
  tick_ns : int;  (** watchdog polling period *)
  heartbeat : bool;  (** send [up_ping] each healthy tick *)
  hang_timeout_ns : int;
      (** uchan sync-upcall deadline for this device — also the heartbeat
          deadline *)
  backoff_initial_ns : int;  (** delay before the first restart *)
  backoff_max_ns : int;  (** cap on the doubled backoff *)
  max_restarts : int;  (** restart budget within the window *)
  restart_window_ns : int;
  backlog_limit : int;  (** frames buffered while recovering *)
  flood_threshold : int;
      (** dropped async downcalls per tick treated as a ring flood *)
  quota_limits : Quota.limits;
      (** the resource ledger handed to every driver generation *)
  overflow_threshold : int;
      (** notification-kick token-bucket overflows per tick treated as a
          doorbell flood *)
  standby : bool;
      (** keep a warm standby generation parked (process forked, rings
          allocated and charged to the same quota ledger) so a lethal
          fault swaps instead of cold-starting, and {!upgrade} is
          possible *)
}

val default_policy : policy
(** 5 ms tick, heartbeat on, 20 ms hang timeout, 2 ms initial backoff
    capped at 200 ms, 5 restarts per 2 s window, 256-frame backlog,
    flood at 512 drops/tick, {!Quota.default_limits}, overflow at 512
    per tick, warm standby on. *)

type state = Running | Recovering | Quarantined | Stopped

type event =
  | Fault_detected of string  (** reason, at detection time *)
  | Driver_killed
      (** process dead, grant revoked, device reset — the instant
          containment invariants must hold *)
  | Driver_restarted of { restarts : int; outage_ns : int }
      (** fresh generation serving; [outage_ns] = detection → traffic
          restored *)
  | Driver_quarantined of string

type stats = {
  st_state : state;
  st_restarts : int;
  st_detections : int;
  st_last_reason : string option;
  st_last_detect_latency_ns : int;
      (** detection instant − last instant every check passed *)
  st_last_recovery_ns : int;  (** outage of the most recent recovery *)
  st_warm_swaps : int;  (** recoveries served by the warm standby *)
  st_upgrades : int;  (** completed live upgrades *)
}

type t

val start :
  Kernel.t ->
  Safe_pci.t ->
  ?policy:policy ->
  ?uid:int ->
  ?defensive_copy:bool ->
  ?name:string ->
  bdf:Bus.bdf ->
  (attempt:int -> Driver_api.net_driver) ->
  (t, string) result
(** Start the driver under supervision and spawn the watchdog.  The
    factory is called with [~attempt:0] for the initial start and
    [~attempt:n] (n ≥ 1) for the n-th restart, so tests can hand the
    supervisor a malicious driver first and an honest one after
    recovery.  Must be called from a fiber. *)

val start_blk :
  Kernel.t ->
  Safe_pci.t ->
  ?policy:policy ->
  ?uid:int ->
  ?name:string ->
  bdf:Bus.bdf ->
  (attempt:int -> Driver_api.blk_driver) ->
  (t, string) result
(** Supervise a sud-blk driver.  Detection is identical to the net case;
    containment detaches the blkdev (requests park in its staging
    queue), and recovery goes through {!Proxy_class.resume}, which
    replays the retained and in-flight requests in tag order before the
    staged ones — the crash-consistency story. *)

val stop : t -> unit
(** Administrative stop: quiesce then kill the current driver, discard
    the warm standby, unregister the netdev (net targets), end the
    watchdog.  No restart. *)

val upgrade : t -> (unit, string) result
(** Zero-loss live upgrade: wait (bounded) for a warm standby, quiesce
    the running generation, drain its in-flight work to a barrier, hand
    the class state (netdev identity / blk persist record) to the
    standby, and resume.  No acked write is lost and no frame is
    reordered within a flow across the swap.  Not a detection: fault
    counters and the restart budget are untouched; the sysfs [sud_state]
    reads ["upgrading"] for the duration.  If the primary dies mid-drain
    the swap proceeds (double failover) and the undrained in-flight set
    replays in tag order.  A standby found poisoned at the swap instant
    is discarded — never installed — and the upgrade falls back to a
    cold start of the new generation.  [Error] when not Running, when
    warming is disabled by policy, or when no standby becomes ready. *)

val failover : t -> (unit, string) result
(** Operator-forced failover: run the exact fault path — detection
    (reason ["administrative failover"]), kill, FLR, warm swap — on
    demand.  The fire drill for the standby machinery.  Counts as a
    detection and consumes restart budget, exactly like a real fault. *)

val state : t -> state
val netdev : t -> Netdev.t
(** The persistent netdev — same identity across driver generations.
    @raise Invalid_argument on a blk supervisor. *)

val blkdev : t -> Blkdev.t option
(** The persistent block device of a blk supervisor ([None] for net, or
    before the first registration). *)

val bdf : t -> Bus.bdf
val name : t -> string

val current : t -> Driver_host.started option
(** The live generation of a net supervisor ([None] while recovering or
    for blk targets). *)

val current_blk : t -> Driver_host.started_blk option
val proc : t -> Process.t option
val chan : t -> Uchan.t option
val grant : t -> Safe_pci.grant option
val class_of : t -> Proxy_class.instance option
(** The live generation's proxy behind the unified class API. *)

val quota : t -> Quota.t
(** The driver's resource ledger — one per supervised device, shared by
    every generation (restarting does not launder the footprint).  The
    warm standby's rings are charged here too, so primary + standby must
    fit the same limits. *)

val standby_status : t -> Standby.status
(** [Disabled] when the policy turned warming off (or after quarantine/
    stop); otherwise the parked generation's state. *)

val standby_stats : t -> int * int
(** [(warmed, poisoned)]: generations parked Ready, and generations
    discarded because they died or misbehaved while parked. *)

val standby_proc : t -> Process.t option
(** The parked standby's driver process, when Ready.  Fault injection
    kills it through this to poison the standby. *)

val warm_swaps : t -> int
(** Recoveries that swapped the warm standby in instead of cold-starting. *)

val upgrades : t -> int
(** Completed live upgrades. *)

val on_event : t -> (event -> unit) -> unit
(** Subscribe to lifecycle events (delivered synchronously, in
    subscription order, from the watchdog fiber). *)

type metrics = {
  sm_detections : Sud_obs.Metrics.counter;
  sm_restarts : Sud_obs.Metrics.counter;
  sm_quarantines : Sud_obs.Metrics.counter;
  sm_detect_ns : Sud_obs.Metrics.histogram;
  sm_outage_ns : Sud_obs.Metrics.histogram;
}
(** Supervisor accounting lives in the {!Sud_obs.Metrics} registry under
    subsystem ["supervisor"], labelled [("driver", name)].  With tracing
    enabled, every recovery emits a ["sup"] detect → kill →
    restart/quarantine span chain; a DMA-violation detection parents to
    the IOMMU fault span that triggered it, closing the causal loop back
    to the offending uchan RPC. *)

val metrics : t -> metrics

val stats : t -> stats
