type registry_entry =
  | Net of Driver_api.net_driver
  | Wifi of Driver_api.wifi_driver
  | Audio of Driver_api.audio_driver

type started =
  | Started_net of Driver_host.started
  | Started_wifi of Driver_host.started_wifi
  | Started_audio of Driver_host.started_audio

let name_of_entry = function
  | Net d -> d.Driver_api.nd_name
  | Wifi d -> d.Driver_api.wd_name
  | Audio d -> d.Driver_api.ad_name

let ids_of_entry = function
  | Net d -> d.Driver_api.nd_ids
  | Wifi d -> d.Driver_api.wd_ids
  | Audio d -> d.Driver_api.ad_ids

let scan_and_start k sp ?(base_uid = 2000) ~registry () =
  let next_uid = ref base_uid in
  let seq = ref 0 in
  List.filter_map
    (fun dev ->
       match
         List.find_opt
           (fun entry -> List.mem (dev.Sysfs.vendor, dev.Sysfs.device) (ids_of_entry entry))
           registry
       with
       | None -> None
       | Some entry ->
         let uid = !next_uid in
         incr next_uid;
         incr seq;
         let name = Printf.sprintf "%s.%d" (name_of_entry entry) !seq in
         let result =
           match entry with
           | Net d ->
             Result.map
               (fun s -> Started_net s)
               (Driver_host.launch k sp ~uid ~name ~bdf:dev.Sysfs.bdf
                  (Driver_host.net ()) d)
           | Wifi d ->
             Result.map
               (fun s -> Started_wifi s)
               (Driver_host.launch k sp ~uid ~name ~bdf:dev.Sysfs.bdf Driver_host.wifi d)
           | Audio d ->
             Result.map
               (fun s -> Started_audio s)
               (Driver_host.launch k sp ~uid ~name ~bdf:dev.Sysfs.bdf Driver_host.audio d)
         in
         Some (dev.Sysfs.bdf, name, result))
    (Sysfs.entries k.Kernel.sysfs)
