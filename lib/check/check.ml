(* sud-check top level: tie scenarios, exploration, shrinking and the
   schedule-file format together for the CLI, the bench and the tests. *)

let scenarios = Scenario.all
let find_scenario = Scenario.find

let ensure_traces () =
  try if not (Sys.file_exists "traces") then Sys.mkdir "traces" 0o755
  with Sys_error _ -> ()

let file_of_outcome ~scenario ~seed ~spec (oc : Scenario.outcome) =
  let r =
    { Sched.rec_rev = List.rev oc.Scenario.oc_decisions;
      rec_points = oc.oc_points;
      rec_divergence = None }
  in
  Sched.file_of ~scenario ~seed ~spec ~trace_hash:oc.oc_trace_hash
    ~metrics_hash:oc.oc_metrics_hash ~steps:oc.oc_steps r

let record ?path (sc : Scenario.t) ~spec ~seed =
  let oc = sc.Scenario.sc_run ~sched:spec ~seed in
  let f = file_of_outcome ~scenario:sc.sc_name ~seed ~spec oc in
  Option.iter (fun p -> ensure_traces (); Sched.save ~path:p f) path;
  (oc, f)

(* ---- replay a schedule file ---- *)

type replay_report = {
  rp_scenario : string;
  rp_file : string;
  rp_times : int;
  rp_expected_hash : int64;
  rp_hashes : int64 list;
  rp_trace_ok : bool;  (* every rerun reproduced the recorded trace hash *)
  rp_metrics_equal : bool;  (* metrics snapshots agree across the reruns *)
  rp_ok : bool;
}

let replay_file ~file ~times =
  match Sched.load file with
  | Error e -> Error e
  | Ok f ->
    (match Scenario.find f.Sched.f_scenario with
     | None -> Error (Printf.sprintf "%s: unknown scenario %S" file f.Sched.f_scenario)
     | Some sc ->
       let outs =
         List.init (max 1 times) (fun _ ->
             sc.Scenario.sc_run ~sched:(Sched.Replay f.f_decisions) ~seed:f.f_seed)
       in
       let hashes = List.map (fun o -> o.Scenario.oc_trace_hash) outs in
       let trace_ok = List.for_all (fun h -> h = f.f_trace_hash) hashes in
       let metrics_equal =
         match List.map (fun o -> o.Scenario.oc_metrics_hash) outs with
         | [] -> true
         | m :: tl -> List.for_all (fun x -> x = m) tl
       in
       Ok
         { rp_scenario = f.f_scenario;
           rp_file = file;
           rp_times = max 1 times;
           rp_expected_hash = f.f_trace_hash;
           rp_hashes = hashes;
           rp_trace_ok = trace_ok;
           rp_metrics_equal = metrics_equal;
           rp_ok = trace_ok && metrics_equal })

(* ---- shrink a failing schedule ---- *)

type shrink_report = {
  sh_scenario : string;
  sh_orig_events : int;  (* decisions in the original counterexample *)
  sh_min_events : int;
  sh_ratio : float;  (* min / orig; gate is <= 0.25 for canaries *)
  sh_still_fails : bool;
  sh_tests : int;  (* scenario re-runs the shrinker spent *)
  sh_out : string option;
}

let shrink_counterexample ?save (sc : Scenario.t) ~seed decisions =
  let test ds =
    Scenario.failed (sc.Scenario.sc_run ~sched:(Sched.Replay ds) ~seed)
  in
  let min_ds, tests = Shrink.ddmin ~test decisions in
  let min_oc = sc.Scenario.sc_run ~sched:(Sched.Replay min_ds) ~seed in
  let still = Scenario.failed min_oc in
  let out =
    match save with
    | None -> None
    | Some path ->
      ensure_traces ();
      (* Save the forced deviations as the schedule, fingerprinted by
         the minimized run they reproduce. *)
      let r =
        { Sched.rec_rev = List.rev min_ds;
          rec_points = min_oc.Scenario.oc_points;
          rec_divergence = None }
      in
      Sched.save ~path
        (Sched.file_of ~scenario:sc.sc_name ~seed ~spec:(Sched.Replay min_ds)
           ~trace_hash:min_oc.oc_trace_hash ~metrics_hash:min_oc.oc_metrics_hash
           ~steps:min_oc.oc_steps r);
      Some path
  in
  let orig = List.length decisions in
  let mn = List.length min_ds in
  ( { sh_scenario = sc.sc_name;
      sh_orig_events = orig;
      sh_min_events = mn;
      sh_ratio = (if orig = 0 then 1.0 else float_of_int mn /. float_of_int orig);
      sh_still_fails = still;
      sh_tests = tests + 1;
      sh_out = out },
    min_ds )

(* ---- shrink a (schedule x fault-plan) pair: the net soak edition ---- *)

type pair_item = D of Sched.decision | P of Fault_inject.injection

type pair_report = {
  pr_orig_decisions : int;
  pr_orig_plan : int;
  pr_min_decisions : int;
  pr_min_plan : int;
  pr_still_fails : bool;
  pr_tests : int;
}

let shrink_soak_pair ~seed ?(duration_ms = 400) decisions plan =
  let run ds pl =
    let r =
      Fault_inject.soak ~sched:(Sched.Replay ds) ~seed ~duration_ms ~plan:pl ()
    in
    r.Fault_inject.sr_violations <> []
  in
  let test items =
    let ds = List.filter_map (function D d -> Some d | P _ -> None) items in
    let pl = List.filter_map (function P p -> Some p | D _ -> None) items in
    run ds pl
  in
  let items = List.map (fun d -> D d) decisions @ List.map (fun p -> P p) plan in
  let min_items, tests = Shrink.ddmin ~test items in
  let min_ds = List.filter_map (function D d -> Some d | P _ -> None) min_items in
  let min_pl = List.filter_map (function P p -> Some p | D _ -> None) min_items in
  ( { pr_orig_decisions = List.length decisions;
      pr_orig_plan = List.length plan;
      pr_min_decisions = List.length min_ds;
      pr_min_plan = List.length min_pl;
      pr_still_fails = (min_items <> [] || items = []) && test min_items;
      pr_tests = tests + 1 },
    min_ds,
    min_pl )

(* ---- explore + shrink in one motion ---- *)

type hunt_report = {
  hr_explore : Explore.report;
  hr_shrink : shrink_report option;
  hr_orig_file : string option;
  hr_min_file : string option;
}

let hunt ?(mode = `Random) ?(budget = 200) ?p_preempt ?max_preemptions
    (sc : Scenario.t) ~root_seed =
  let ex =
    match mode with
    | `Random -> Explore.random ?p_preempt sc ~root_seed ~budget
    | `Bounded -> Explore.bounded ?max_preemptions sc ~root_seed ~budget
  in
  match ex.Explore.ex_found with
  | None -> { hr_explore = ex; hr_shrink = None; hr_orig_file = None; hr_min_file = None }
  | Some fd ->
    ensure_traces ();
    let seed = ex.ex_scenario_seed in
    let orig_path = Printf.sprintf "traces/check_%s.sched.jsonl" sc.Scenario.sc_name in
    Sched.save ~path:orig_path
      (file_of_outcome ~scenario:sc.sc_name ~seed ~spec:fd.Explore.fd_spec
         fd.fd_outcome);
    let min_path = Printf.sprintf "traces/check_%s.min.sched.jsonl" sc.sc_name in
    let sh, _min_ds =
      shrink_counterexample ~save:min_path sc ~seed
        fd.fd_outcome.Scenario.oc_decisions
    in
    { hr_explore = ex;
      hr_shrink = Some sh;
      hr_orig_file = Some orig_path;
      hr_min_file = Some min_path }
