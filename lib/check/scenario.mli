(** Checkable scenarios: named, seeded runs fingerprinted for
    record/replay, spanning the canary suite (deliberately seeded
    ordering bugs) and mini editions of the adversarial soaks. *)

type outcome = {
  oc_failures : string list;  (** invariant violations; [] = clean run *)
  oc_trace_hash : int64;  (** {!Engine.trace_hash} at the end *)
  oc_metrics_hash : int64;  (** {!Sud_obs.Metrics.snapshot_hash} ditto *)
  oc_steps : int;  (** engine events fired *)
  oc_points : int;  (** same-instant choice points offered *)
  oc_decisions : Sched.decision list;  (** the schedule actually taken *)
}

type t = {
  sc_name : string;
  sc_descr : string;
  sc_canary : bool;  (** a deliberately seeded ordering bug *)
  sc_run : sched:Sched.spec -> seed:int64 -> outcome;
      (** Run fresh under [sched]; [seed] fixes all non-schedule
          randomness (fault plans, payloads), so exploration searches
          schedule space with everything else pinned. *)
}

val failed : outcome -> bool

val all : t list
(** Canaries: [doorbell_vs_publish] (depth 1), [quiesce_vs_handoff]
    (depth 2), [stale_wakeup] (fiber wake path).  Mini soaks:
    [mini-soak], [mini-blk-soak], [mini-fuzz]. *)

val canaries : t list
val find : string -> t option
