(* Delta debugging (Zeller's ddmin) over a failing configuration.  The
   oracle [test xs] re-runs the scenario on subset [xs] and answers
   "does it still fail?".  Permissive schedule replay makes every subset
   a well-defined run: dropped decisions just degrade to FIFO at their
   choice points. *)

type stats = { mutable sh_tests : int }

let split_chunks xs n =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let rec take k ys =
        if k = 0 then ([], ys)
        else
          match ys with
          | [] -> ([], [])
          | y :: tl ->
            let got, rest = take (k - 1) tl in
            (y :: got, rest)
      in
      let chunk, rest = take size xs in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 xs []

let complement_of chunks i =
  List.concat (List.filteri (fun j _ -> j <> i) chunks)

let rec ddmin_loop ~test ~stats xs n =
  let len = List.length xs in
  if len <= 1 || n > len then xs
  else begin
    let chunks = split_chunks xs n in
    let try_sets sets =
      List.find_opt (fun s -> stats.sh_tests <- stats.sh_tests + 1; test s) sets
    in
    match try_sets chunks with
    | Some chunk -> ddmin_loop ~test ~stats chunk 2  (* reduce to a failing chunk *)
    | None ->
      (match try_sets (List.mapi (fun i _ -> complement_of chunks i) chunks) with
       | Some comp -> ddmin_loop ~test ~stats comp (max 2 (n - 1))
       | None -> if n < len then ddmin_loop ~test ~stats xs (min len (2 * n)) else xs)
  end

(* Final polish: ddmin can terminate 1-minimal per chunk boundary but
   still carry a removable element; one singleton sweep is cheap. *)
let singleton_pass ~test ~stats xs =
  List.fold_left
    (fun kept x ->
       let without = List.filter (fun y -> y != x) kept in
       if List.length without < List.length kept then begin
         stats.sh_tests <- stats.sh_tests + 1;
         if test without then without else kept
       end
       else kept)
    xs xs

let ddmin ~test xs =
  let stats = { sh_tests = 0 } in
  let min1 =
    if xs = [] then []
    else begin
      stats.sh_tests <- stats.sh_tests + 1;
      if not (test xs) then xs  (* not reproducible: refuse to "shrink" *)
      else singleton_pass ~test ~stats (ddmin_loop ~test ~stats xs 2)
    end
  in
  (min1, stats.sh_tests)
