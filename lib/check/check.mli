(** sud-check: systematic schedule exploration, deterministic
    record/replay and counterexample shrinking for the driver fault
    domain.

    Layered on {!Engine}'s scheduler-policy hooks via {!Sched}: a
    scenario run under a recorded policy yields a decision list that
    replays bit-for-bit ({!Engine.trace_hash} equality), any failing
    schedule is dumped as a versioned JSONL file, and ddmin reduces it
    to a near-minimal repro. *)

val scenarios : Scenario.t list
val find_scenario : string -> Scenario.t option

val ensure_traces : unit -> unit
(** Create [traces/] if missing (best-effort). *)

val file_of_outcome :
  scenario:string -> seed:int64 -> spec:Sched.spec -> Scenario.outcome -> Sched.file

val record :
  ?path:string -> Scenario.t -> spec:Sched.spec -> seed:int64
  -> Scenario.outcome * Sched.file
(** Run once under [spec], optionally saving the schedule file. *)

(** {1 Replay} *)

type replay_report = {
  rp_scenario : string;
  rp_file : string;
  rp_times : int;
  rp_expected_hash : int64;  (** trace hash recorded in the file *)
  rp_hashes : int64 list;  (** trace hash of each rerun *)
  rp_trace_ok : bool;  (** every rerun matched the recorded hash *)
  rp_metrics_equal : bool;  (** metrics snapshots agree across reruns *)
  rp_ok : bool;
}

val replay_file : file:string -> times:int -> (replay_report, string) result
(** Load a schedule file and re-execute it [times] times; bit-for-bit
    replay means every rerun's trace hash equals the recorded one and
    the metrics snapshots agree across reruns.  (The file's metrics
    hash is process-relative and is not compared cross-process.) *)

(** {1 Shrinking} *)

type shrink_report = {
  sh_scenario : string;
  sh_orig_events : int;
  sh_min_events : int;
  sh_ratio : float;  (** min/orig; the canary gate is [<= 0.25] *)
  sh_still_fails : bool;  (** the minimized schedule still fails *)
  sh_tests : int;  (** scenario re-runs spent *)
  sh_out : string option;  (** minimized schedule file, if saved *)
}

val shrink_counterexample :
  ?save:string -> Scenario.t -> seed:int64 -> Sched.decision list
  -> shrink_report * Sched.decision list
(** ddmin over the failing decision list; permissive replay makes every
    subset well-defined (dropped decisions degrade to FIFO). *)

type pair_item = D of Sched.decision | P of Fault_inject.injection

type pair_report = {
  pr_orig_decisions : int;
  pr_orig_plan : int;
  pr_min_decisions : int;
  pr_min_plan : int;
  pr_still_fails : bool;
  pr_tests : int;
}

val shrink_soak_pair :
  seed:int64 -> ?duration_ms:int -> Sched.decision list -> Fault_inject.plan
  -> pair_report * Sched.decision list * Fault_inject.plan
(** Minimize a failing (schedule × fault-plan) pair of the net soak:
    one ddmin over the tagged union, so the oracle prunes schedule
    decisions and injections together. *)

(** {1 Hunt: explore, dump, shrink} *)

type hunt_report = {
  hr_explore : Explore.report;
  hr_shrink : shrink_report option;
  hr_orig_file : string option;  (** traces/check_<name>.sched.jsonl *)
  hr_min_file : string option;  (** traces/check_<name>.min.sched.jsonl *)
}

val hunt :
  ?mode:[ `Random | `Bounded ] ->
  ?budget:int ->
  ?p_preempt:int ->
  ?max_preemptions:int ->
  Scenario.t ->
  root_seed:int64 ->
  hunt_report
(** Explore (default random, budget 200); on the first failing schedule
    dump it under [traces/], ddmin it, and dump the minimized repro. *)
