(** Schedule-space search: seeded-random schedule fuzzing and bounded
    systematic exploration with a preemption budget. *)

type found = {
  fd_run : int;  (** schedule index that failed (0 = FIFO baseline) *)
  fd_spec : Sched.spec;  (** the policy that produced it *)
  fd_outcome : Scenario.outcome;
}

type report = {
  ex_scenario : string;
  ex_mode : string;  (** ["random"] or ["bounded"] *)
  ex_root_seed : int64;
  ex_scenario_seed : int64;  (** derived: fixes everything but the schedule *)
  ex_runs : int;  (** schedules executed, FIFO baseline included *)
  ex_points : int;  (** choice points offered, summed over all runs *)
  ex_fifo_clean : bool;  (** the FIFO baseline passed (canaries must) *)
  ex_found : found option;  (** first failing schedule, if any *)
  ex_elapsed_s : float;  (** CPU seconds; throughput = runs / elapsed *)
}

val scenario_seed : root:int64 -> Scenario.t -> int64
(** [Rng.derive ~root name] — the non-schedule seed every run shares. *)

val random : ?p_preempt:int -> Scenario.t -> root_seed:int64 -> budget:int -> report
(** FIFO baseline, then up to [budget] seeded-random schedules
    ([p_preempt]% chance per choice point of deviating, default 50),
    stopping at the first failure. *)

val bounded :
  ?max_preemptions:int ->
  ?branch_points:int ->
  Scenario.t ->
  root_seed:int64 ->
  budget:int ->
  report
(** Systematic BFS over forced-deviation prefixes in the CHESS/DPOR
    tradition: replay a prefix, run FIFO beyond it, branch on up to
    [branch_points] choice points exposed after the prefix, never
    forcing more than [max_preemptions] (default 2) deviations. *)
