(* Checkable scenarios: a named, seeded run of the system under a given
   scheduler policy, fingerprinted so record/replay equality is a single
   comparison.  Two families live here: the canary suite (small worlds
   with deliberately seeded ordering bugs the explorer must find) and
   mini editions of the real adversarial soaks. *)

type outcome = {
  oc_failures : string list;
  oc_trace_hash : int64;
  oc_metrics_hash : int64;
  oc_steps : int;
  oc_points : int;
  oc_decisions : Sched.decision list;
}

type t = {
  sc_name : string;
  sc_descr : string;
  sc_canary : bool;
  sc_run : sched:Sched.spec -> seed:int64 -> outcome;
}

let failed oc = oc.oc_failures <> []

(* ---- canary plumbing ---- *)

let canary_outcome eng (r : Sched.recorder) fails =
  { oc_failures = List.rev fails;
    oc_trace_hash = Engine.trace_hash eng;
    oc_metrics_hash = Sud_obs.Metrics.snapshot_hash ();
    oc_steps = Engine.steps eng;
    oc_points = r.Sched.rec_points;
    oc_decisions = Sched.decisions r }

let schedule_now eng fn = ignore (Engine.schedule_now eng fn : Engine.handle)
let schedule_after eng d fn = ignore (Engine.schedule_after eng d fn : Engine.handle)

(* Canary 1 — doorbell_vs_publish.  The "driver" publishes a slot and
   rings the doorbell as two same-instant events; the handler assumes
   delivery order and reads the slot unconditionally.  FIFO delivers
   publish-then-doorbell (program order); a single reordering makes the
   doorbell observe the stale slot.  Depth-1 bug: one deviation. *)
let run_doorbell_vs_publish ~sched ~seed:_ =
  let eng = Engine.create () in
  let r = Sched.install eng sched in
  let slot = ref 0 in
  let fails = ref [] in
  let rounds = 10 in
  for i = 1 to rounds do
    schedule_after eng (i * 1_000) (fun () ->
        schedule_now eng (fun () -> slot := i);
        schedule_now eng (fun () ->
            if !slot <> i then
              fails :=
                Printf.sprintf "round %d: doorbell delivered before slot %d was published"
                  i i
                :: !fails);
        (* unrelated same-instant chatter widens the ready set, so the
           explorer has real noise to shrink away *)
        schedule_now eng ignore)
  done;
  Engine.run eng;
  canary_outcome eng r !fails

(* Canary 2 — quiesce_vs_handoff.  Round [i] quiesces the old generation
   (two same-instant events: quiesce, then the handoff ack that assumes
   it) and later commits the new generation (commit, then a completion
   that assumes it).  The invariant only breaks when BOTH assumed orders
   are violated in the same round — a depth-2 bug that needs a
   preemption budget of 2 (or two lucky random picks). *)
let run_quiesce_vs_handoff ~sched ~seed:_ =
  let eng = Engine.create () in
  let r = Sched.install eng sched in
  let fails = ref [] in
  let rounds = 8 in
  for i = 1 to rounds do
    let quiesced = ref false in
    let acked_early = ref false in
    schedule_after eng (i * 2_000) (fun () ->
        schedule_now eng (fun () -> quiesced := true);
        schedule_now eng (fun () -> if not !quiesced then acked_early := true);
        schedule_now eng ignore);
    schedule_after eng ((i * 2_000) + 500) (fun () ->
        let committed = ref false in
        schedule_now eng (fun () -> committed := true);
        schedule_now eng (fun () ->
            if !acked_early && not !committed then
              fails :=
                Printf.sprintf
                  "round %d: handoff acked before quiesce and completion raced the commit"
                  i
                :: !fails))
  done;
  Engine.run eng;
  canary_outcome eng r !fails

(* Canary 3 — stale_wakeup.  A consumer fiber parks on a Waitq and, on
   wakeup, consumes without re-checking that the publish actually landed
   — trusting that publish precedes doorbell precedes its own resumption.
   The failing interleaving needs the doorbell hoisted over the publish
   AND the resumption hoisted over it too (the resumption is itself an
   engine event, so this exercises the Fiber/Sync wake path under
   reordering). *)
let run_stale_wakeup ~sched ~seed:_ =
  let eng = Engine.create () in
  let r = Sched.install eng sched in
  let fails = ref [] in
  let wq = Sync.Waitq.create () in
  let published = ref 0 in
  let consumed = ref 0 in
  let stop = ref false in
  let rounds = 10 in
  ignore
    (Fiber.spawn eng ~name:"consumer" (fun () ->
         while not !stop do
           match Sync.Waitq.wait wq with
           | Fiber.Normal ->
             if not !stop then
               if !published <= !consumed then
                 fails :=
                   Printf.sprintf "wakeup %d consumed a slot nobody had published yet"
                     (!consumed + 1)
                   :: !fails
               else incr consumed
           | Fiber.Interrupted | Fiber.Timeout -> ()
         done)
     : Fiber.t);
  for i = 1 to rounds do
    schedule_after eng (i * 1_000) (fun () ->
        schedule_now eng (fun () -> incr published);
        schedule_now eng (fun () -> ignore (Sync.Waitq.signal wq : bool)))
  done;
  schedule_after eng ((rounds + 1) * 1_000) (fun () ->
      stop := true;
      ignore (Sync.Waitq.broadcast wq : int));
  Engine.run eng;
  canary_outcome eng r !fails

(* ---- mini soaks: the real adversarial harnesses, small enough to be a
   schedule-exploration target ---- *)

let outcome_of_summary violations (ss : Fault_inject.sched_summary) =
  { oc_failures = violations;
    oc_trace_hash = ss.Fault_inject.ss_trace_hash;
    oc_metrics_hash = ss.ss_metrics_hash;
    oc_steps = ss.ss_steps;
    oc_points = ss.ss_points;
    oc_decisions = ss.ss_decisions }

let crashed e =
  { oc_failures = [ "exception: " ^ Printexc.to_string e ];
    oc_trace_hash = 0L;
    oc_metrics_hash = 0L;
    oc_steps = 0;
    oc_points = 0;
    oc_decisions = [] }

let run_mini_soak ~sched ~seed =
  try
    let r = Fault_inject.soak ~sched ~seed ~n_faults:12 ~duration_ms:400 () in
    outcome_of_summary r.Fault_inject.sr_violations r.sr_sched
  with e -> crashed e

let run_mini_blk_soak ~sched ~seed =
  try
    let r = Fault_inject.blk_soak ~sched ~seed ~n_faults:8 ~duration_ms:400 () in
    outcome_of_summary r.Fault_inject.bsr_violations r.bsr_sched
  with e -> crashed e

let run_mini_fuzz ~sched ~seed =
  try
    let r = Proto_fuzz.campaign ~sched ~seed ~n_mutations:36 () in
    outcome_of_summary r.Proto_fuzz.fz_violations r.fz_sched
  with e -> crashed e

let all =
  [ { sc_name = "doorbell_vs_publish";
      sc_descr = "notify handled before the slot publish it assumes (depth 1)";
      sc_canary = true;
      sc_run = run_doorbell_vs_publish };
    { sc_name = "quiesce_vs_handoff";
      sc_descr = "handoff ack and commit completion both hoisted (depth 2)";
      sc_canary = true;
      sc_run = run_quiesce_vs_handoff };
    { sc_name = "stale_wakeup";
      sc_descr = "Waitq wakeup trusts publish/doorbell order (fiber wake path)";
      sc_canary = true;
      sc_run = run_stale_wakeup };
    { sc_name = "mini-soak";
      sc_descr = "12-fault net supervision soak under explored schedules";
      sc_canary = false;
      sc_run = run_mini_soak };
    { sc_name = "mini-blk-soak";
      sc_descr = "8-fault storage soak with the crash-consistency oracle";
      sc_canary = false;
      sc_run = run_mini_blk_soak };
    { sc_name = "mini-fuzz";
      sc_descr = "36-mutation Byzantine protocol campaign";
      sc_canary = false;
      sc_run = run_mini_fuzz } ]

let canaries = List.filter (fun s -> s.sc_canary) all

let find name = List.find_opt (fun s -> s.sc_name = name) all
