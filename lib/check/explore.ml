(* Schedule-space search over a scenario.  Two modes:

   - random: N seeded-random schedules (preemption probability per
     choice point), the workhorse fuzzing mode;
   - bounded: systematic exploration with a preemption budget, in the
     CHESS/DPOR tradition — replay a prefix of forced deviations, run
     FIFO beyond it, and branch on the choice points the run exposes.

   Both keep the scenario seed fixed: everything but the schedule is
   pinned, so a hit is a pure interleaving counterexample. *)

type found = {
  fd_run : int;  (* schedule index that failed (0 = FIFO baseline) *)
  fd_spec : Sched.spec;
  fd_outcome : Scenario.outcome;
}

type report = {
  ex_scenario : string;
  ex_mode : string;
  ex_root_seed : int64;
  ex_scenario_seed : int64;
  ex_runs : int;
  ex_points : int;  (* choice points summed over all runs *)
  ex_fifo_clean : bool;
  ex_found : found option;
  ex_elapsed_s : float;
}

let scenario_seed ~root (sc : Scenario.t) = Rng.derive ~root sc.Scenario.sc_name

let base_report ~mode ~root_seed (sc : Scenario.t) =
  { ex_scenario = sc.Scenario.sc_name;
    ex_mode = mode;
    ex_root_seed = root_seed;
    ex_scenario_seed = scenario_seed ~root:root_seed sc;
    ex_runs = 0;
    ex_points = 0;
    ex_fifo_clean = false;
    ex_found = None;
    ex_elapsed_s = 0.0 }

let random ?(p_preempt = 50) (sc : Scenario.t) ~root_seed ~budget =
  let t0 = Sys.time () in
  let rep = ref (base_report ~mode:"random" ~root_seed sc) in
  let seed = !rep.ex_scenario_seed in
  let record spec i (oc : Scenario.outcome) =
    rep :=
      { !rep with
        ex_runs = !rep.ex_runs + 1;
        ex_points = !rep.ex_points + oc.Scenario.oc_points;
        ex_found =
          (match !rep.ex_found with
           | Some _ as f -> f
           | None ->
             if Scenario.failed oc then Some { fd_run = i; fd_spec = spec; fd_outcome = oc }
             else None) }
  in
  let fifo = sc.Scenario.sc_run ~sched:Sched.Fifo ~seed in
  record Sched.Fifo 0 fifo;
  rep := { !rep with ex_fifo_clean = not (Scenario.failed fifo) };
  (* A FIFO failure is not a schedule bug — stop and report it as run 0. *)
  if !rep.ex_fifo_clean then begin
    let i = ref 1 in
    while !i <= budget && !rep.ex_found = None do
      let spec =
        Sched.Random
          { seed = Rng.derive ~root:root_seed (Printf.sprintf "%s:run:%d" sc.sc_name !i);
            p_preempt }
      in
      record spec !i (sc.Scenario.sc_run ~sched:spec ~seed);
      incr i
    done
  end;
  { !rep with ex_elapsed_s = Sys.time () -. t0 }

(* Bounded systematic mode.  A frontier entry is a list of forced
   deviations (step, ready, pick>0); running it replays those picks and
   is FIFO everywhere else.  Children deviate at choice points the run
   exposed after the last forced step, up to the preemption budget. *)
let bounded ?(max_preemptions = 2) ?(branch_points = 12) (sc : Scenario.t) ~root_seed
    ~budget =
  let t0 = Sys.time () in
  let rep = ref (base_report ~mode:"bounded" ~root_seed sc) in
  let seed = !rep.ex_scenario_seed in
  let run prefix =
    let spec = Sched.Replay prefix in
    let oc = sc.Scenario.sc_run ~sched:spec ~seed in
    rep :=
      { !rep with
        ex_runs = !rep.ex_runs + 1;
        ex_points = !rep.ex_points + oc.Scenario.oc_points;
        ex_found =
          (match !rep.ex_found with
           | Some _ as f -> f
           | None ->
             if Scenario.failed oc then
               Some { fd_run = !rep.ex_runs; fd_spec = spec; fd_outcome = oc }
             else None) };
    oc
  in
  let children prefix (oc : Scenario.outcome) =
    if List.length prefix >= max_preemptions then []
    else begin
      let last_step =
        match List.rev prefix with [] -> -1 | d :: _ -> d.Sched.d_step
      in
      oc.Scenario.oc_decisions
      |> List.filter (fun d -> d.Sched.d_step > last_step)
      |> List.filteri (fun i _ -> i < branch_points)
      |> List.concat_map (fun d ->
             List.init (d.Sched.d_ready - 1) (fun j ->
                 prefix @ [ { d with Sched.d_pick = j + 1 } ]))
    end
  in
  let base = run [] in
  rep := { !rep with ex_fifo_clean = not (Scenario.failed base) };
  if !rep.ex_fifo_clean then begin
    let frontier = Queue.create () in
    List.iter (fun p -> Queue.add p frontier) (children [] base);
    while (not (Queue.is_empty frontier)) && !rep.ex_runs <= budget && !rep.ex_found = None
    do
      let prefix = Queue.pop frontier in
      let oc = run prefix in
      if !rep.ex_found = None then
        List.iter (fun p -> Queue.add p frontier) (children prefix oc)
    done
  end;
  { !rep with ex_elapsed_s = Sys.time () -. t0 }
