(** Delta-debugging minimization (Zeller's ddmin with a singleton
    sweep). *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list * int
(** [ddmin ~test xs] assumes [test xs = true] ("still fails") and
    returns a near-minimal failing subset plus the number of oracle
    invocations.  If [xs] does not reproduce under [test] it is
    returned unchanged — a shrinker must never replace a real repro
    with a non-failing one. *)
