module R = Wifi_dev.Regs

let tx_ring_size = 64
let rx_ring_size = 64
let rx_buf_size = 2048
let desc = R.desc_size

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.wifi_callbacks;
  mmio : Driver_api.mmio;
  tx_ring : Driver_api.dma_region;
  rx_ring : Driver_api.dma_region;
  rx_bufs : Driver_api.dma_region;
  cmd_block : Driver_api.dma_region;
  tokens : int array;
  mutable tx_tail : int;
  mutable tx_clean : int;
  mutable rx_next : int;
  mutable opened : bool;
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

let mac_of_bdf pdev =
  (* The simulated part has no EEPROM; derive a stable MAC from the BDF as
     real drivers derive it from OTP. *)
  let b = pdev.Driver_api.pd_bdf in
  Bytes.of_string
    (Printf.sprintf "\x02\x24\xd7%c%c%c" (Char.chr ((b lsr 8) land 0xff))
       (Char.chr ((b lsr 3) land 0x1f)) (Char.chr (b land 0xff)))

let command st ~op ~arg =
  Driver_api.dma_set32 st.cmd_block ~off:0 op;
  Driver_api.dma_set32 st.cmd_block ~off:4 arg;
  w32 st R.cmd_addr st.cmd_block.Driver_api.dma_addr;
  w32 st R.cmd 1

let setup_rx_desc st slot =
  let off = slot * desc in
  Driver_api.dma_set64 st.rx_ring ~off
    (Int64.of_int (st.rx_bufs.Driver_api.dma_addr + (slot * rx_buf_size)));
  Driver_api.dma_set32 st.rx_ring ~off:(off + 8) 0;
  Driver_api.dma_set32 st.rx_ring ~off:(off + 12) 0

let read_bss_table st =
  let n = r32 st R.bss_count in
  List.init n (fun i -> r32 st (R.bss_table + (8 * i)))

let drain_events st =
  let rec next () =
    let ev = r32 st R.evq in
    if ev = R.ev_none then ()
    else begin
      if ev = R.ev_scan_done then st.cb.Driver_api.wc_scan_done (read_bss_table st)
      else if ev = R.ev_assoc_done then begin
        st.cb.Driver_api.wc_net.Driver_api.nc_carrier true
      end
      else if ev = R.ev_disassoc then st.cb.Driver_api.wc_net.Driver_api.nc_carrier false
      else if ev = R.ev_bss_changed then begin
        (* Tell the kernel which BSS we are on now. *)
        st.cb.Driver_api.wc_bss_changed (r32 st R.rate);
        st.cb.Driver_api.wc_net.Driver_api.nc_carrier true
      end;
      next ()
    end
  in
  next ()

let clean_tx st =
  let cleaned = ref false in
  while
    st.tx_clean <> st.tx_tail
    && Driver_api.dma_get32 st.tx_ring ~off:((st.tx_clean * desc) + 12) = 1
  do
    st.cb.Driver_api.wc_net.Driver_api.nc_tx_free ~queue:0 ~token:st.tokens.(st.tx_clean);
    st.tx_clean <- (st.tx_clean + 1) mod tx_ring_size;
    cleaned := true
  done;
  if !cleaned then st.cb.Driver_api.wc_net.Driver_api.nc_tx_done ~queue:0

let rx_poll st =
  let continue_ = ref true in
  while !continue_ do
    let off = st.rx_next * desc in
    if Driver_api.dma_get32 st.rx_ring ~off:(off + 12) = 1 then begin
      let len = Driver_api.dma_get32 st.rx_ring ~off:(off + 8) in
      let addr = st.rx_bufs.Driver_api.dma_addr + (st.rx_next * rx_buf_size) in
      st.env.Driver_api.env_consume 400;
      st.cb.Driver_api.wc_net.Driver_api.nc_rx ~queue:0 ~addr ~len;
      setup_rx_desc st st.rx_next;
      w32 st R.rxt st.rx_next;
      st.rx_next <- (st.rx_next + 1) mod rx_ring_size
    end
    else continue_ := false
  done

let irq_handler st () =
  let ints = r32 st R.int_sts in
  if ints land R.int_tx <> 0 then clean_tx st;
  if ints land R.int_rx <> 0 then rx_poll st;
  if ints land R.int_event <> 0 then drain_events st;
  st.pdev.Driver_api.pd_irq_ack ()

let do_open st () =
  if st.opened then Ok ()
  else
    match st.pdev.Driver_api.pd_request_irqs ~n:1 (fun ~queue:_ -> irq_handler st ()) with
    | Error e -> Error e
    | Ok () ->
      (* Load firmware, then bring the MAC up. *)
      w32 st R.fw R.fw_magic;
      if r32 st R.fw land R.fw_ready = 0 then begin
        st.pdev.Driver_api.pd_free_irq ();
        Error "firmware did not come up"
      end
      else begin
        w32 st R.txb st.tx_ring.Driver_api.dma_addr;
        w32 st R.txlen (tx_ring_size * desc);
        w32 st R.txh 0;
        w32 st R.txt 0;
        st.tx_tail <- 0;
        st.tx_clean <- 0;
        for i = 0 to rx_ring_size - 1 do setup_rx_desc st i done;
        w32 st R.rxb st.rx_ring.Driver_api.dma_addr;
        w32 st R.rxlen (rx_ring_size * desc);
        w32 st R.rxh 0;
        w32 st R.rxt (rx_ring_size - 1);
        st.rx_next <- 0;
        w32 st R.int_mask (R.int_tx lor R.int_rx lor R.int_event);
        w32 st R.ctrl R.ctrl_enable;
        st.opened <- true;
        Ok ()
      end

let do_stop st () =
  if st.opened then begin
    command st ~op:R.op_disassoc ~arg:0;
    w32 st R.int_mask 0;
    w32 st R.ctrl 0;
    st.pdev.Driver_api.pd_free_irq ();
    st.opened <- false
  end

let do_xmit st (txb : Driver_api.txbuf) =
  let next = (st.tx_tail + 1) mod tx_ring_size in
  if next = st.tx_clean then `Busy
  else begin
    let off = st.tx_tail * desc in
    Driver_api.dma_set64 st.tx_ring ~off (Int64.of_int txb.Driver_api.txb_addr);
    Driver_api.dma_set32 st.tx_ring ~off:(off + 8) txb.Driver_api.txb_len;
    Driver_api.dma_set32 st.tx_ring ~off:(off + 12) 0;
    st.tokens.(st.tx_tail) <- txb.Driver_api.txb_token;
    st.tx_tail <- next;
    w32 st R.txt st.tx_tail;
    `Ok
  end

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       let alloc what bytes =
         match pdev.Driver_api.pd_alloc_dma ~bytes () with
         | Ok r -> r
         | Error e -> failwith (what ^ ": " ^ e)
       in
       (match
          let tx_ring = alloc "tx ring" (tx_ring_size * desc) in
          let rx_ring = alloc "rx ring" (rx_ring_size * desc) in
          let rx_bufs = alloc "rx bufs" (rx_ring_size * rx_buf_size) in
          let cmd_block = alloc "cmd block" Bus.page_size in
          (tx_ring, rx_ring, rx_bufs, cmd_block)
        with
        | exception Failure e -> Error e
        | tx_ring, rx_ring, rx_bufs, cmd_block ->
          let st =
            { env;
              pdev;
              cb;
              mmio;
              tx_ring;
              rx_ring;
              rx_bufs;
              cmd_block;
              tokens = Array.make tx_ring_size (-1);
              tx_tail = 0;
              tx_clean = 0;
              rx_next = 0;
              opened = false }
          in
          let net =
            { Driver_api.ni_mac = mac_of_bdf pdev;
              ni_tx_queues = 1;
              ni_open = (fun () -> do_open st ());
              ni_stop = (fun () -> do_stop st ());
              ni_xmit = (fun ~queue:_ txb -> do_xmit st txb);
              ni_ioctl = (fun ~cmd:_ ~arg:_ -> Error "unsupported ioctl") }
          in
          Ok
            { Driver_api.wi_net = net;
              wi_scan =
                (fun () ->
                   if st.opened then begin
                     command st ~op:R.op_scan ~arg:0;
                     Ok ()
                   end
                   else Error "interface is down");
              wi_associate =
                (fun ~bssid ->
                   if st.opened then begin
                     command st ~op:R.op_assoc ~arg:bssid;
                     Ok ()
                   end
                   else Error "interface is down");
              wi_bitrates = (fun () -> Array.to_list Wifi_dev.supported_rates);
              wi_set_rate =
                (fun idx ->
                   if idx < 0 || idx >= Array.length Wifi_dev.supported_rates then
                     Error "no such rate"
                   else begin
                     command st ~op:R.op_set_rate ~arg:idx;
                     Ok ()
                   end) }))

let driver =
  { Driver_api.wd_name = "iwlagn"; wd_ids = [ (0x8086, 0x4232) ]; wd_probe = probe }
