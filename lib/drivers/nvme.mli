(** The NVMe block driver (sud-blk).

    Written once against {!Driver_api} and hosted either natively or as
    an untrusted SUD process.  One submission/completion queue pair per
    deliverable MSI-X vector; the 16-bit wire cid is the SQ slot index,
    with the host's unbounded idempotency tag kept in a per-slot side
    table. *)

val sq_entries : int
(** Entries per submission queue; outstanding commands are bounded at
    [sq_entries - 1] so slots are never reused while in flight. *)

val driver : Driver_api.blk_driver
