module R = Hda_dev.Regs

let period_bytes = 4096
let periods = 4

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.audio_callbacks;
  mmio : Driver_api.mmio;
  bdl : Driver_api.dma_region;
  pcm : Driver_api.dma_region;      (* periods * period_bytes cyclic buffer *)
  pending : Buffer.t;               (* PCM queued by the app, waiting for a period *)
  mutable fill_next : int;          (* next period slot to refill *)
  mutable running : bool;
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

let fill_period st slot =
  let have = Buffer.length st.pending in
  let chunk = min have period_bytes in
  let data = Bytes.make period_bytes '\000' in
  if chunk > 0 then begin
    Bytes.blit_string (Buffer.sub st.pending 0 chunk) 0 data 0 chunk;
    let rest = Buffer.sub st.pending chunk (have - chunk) in
    Buffer.clear st.pending;
    Buffer.add_string st.pending rest
  end;
  st.pcm.Driver_api.dma_write ~off:(slot * period_bytes) data

let irq_handler st () =
  let sts = r32 st R.sd0_sts in
  if sts land R.sdsts_bcis <> 0 then begin
    w32 st R.sd0_sts R.sdsts_bcis;
    w32 st R.intsts R.intsts_sd0;
    (* Refill the period the engine just finished. *)
    fill_period st st.fill_next;
    st.fill_next <- (st.fill_next + 1) mod periods;
    st.env.Driver_api.env_consume 1_000;
    st.cb.Driver_api.ac_period_elapsed ()
  end;
  st.pdev.Driver_api.pd_irq_ack ()

let write_bdl st =
  for i = 0 to periods - 1 do
    let off = i * R.bdl_entry_size in
    Driver_api.dma_set64 st.bdl ~off
      (Int64.of_int (st.pcm.Driver_api.dma_addr + (i * period_bytes)));
    Driver_api.dma_set32 st.bdl ~off:(off + 8) period_bytes;
    Driver_api.dma_set32 st.bdl ~off:(off + 12) R.bdl_ioc
  done

let do_start st () =
  if st.running then Ok ()
  else
    match st.pdev.Driver_api.pd_request_irqs ~n:1 (fun ~queue:_ -> irq_handler st ()) with
    | Error e -> Error e
    | Ok () ->
      w32 st R.gctl R.gctl_crst;
      write_bdl st;
      for i = 0 to periods - 1 do fill_period st i done;
      st.fill_next <- 0;
      w32 st R.sd0_bdpl (st.bdl.Driver_api.dma_addr land 0xFFFFFFFF);
      w32 st R.sd0_bdpu (st.bdl.Driver_api.dma_addr lsr 32);
      w32 st R.sd0_cbl (periods * period_bytes);
      w32 st R.sd0_lvi (periods - 1);
      w32 st R.intctl R.intsts_sd0;
      w32 st R.sd0_ctl (R.sdctl_run lor R.sdctl_ioce);
      st.running <- true;
      Ok ()

let do_stop st () =
  if st.running then begin
    w32 st R.sd0_ctl 0;
    w32 st R.intctl 0;
    st.pdev.Driver_api.pd_free_irq ();
    st.running <- false
  end

let max_pending = 8 * period_bytes

let do_write st data =
  let room = max_pending - Buffer.length st.pending in
  let n = min room (Bytes.length data) in
  if n > 0 then Buffer.add_subbytes st.pending data 0 n;
  n

let codec_cmd st verb payload =
  w32 st R.icoi ((verb lsl 8) lor (payload land 0xff));
  let rec poll tries =
    if r32 st R.icii land 1 <> 0 then Ok (r32 st R.irii)
    else if tries = 0 then Error "codec timeout"
    else begin
      st.env.Driver_api.env_udelay 10;
      poll (tries - 1)
    end
  in
  poll 100

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       (match
          ( pdev.Driver_api.pd_alloc_dma ~bytes:Bus.page_size (),
            pdev.Driver_api.pd_alloc_dma ~bytes:(periods * period_bytes) () )
        with
        | Ok bdl, Ok pcm ->
          let st =
            { env;
              pdev;
              cb;
              mmio;
              bdl;
              pcm;
              pending = Buffer.create max_pending;
              fill_next = 0;
              running = false }
          in
          (* Sanity: the codec must answer with its vendor ID. *)
          (match codec_cmd st R.verb_get_param R.param_vendor_id with
           | Ok v when v <> 0 ->
             Ok
               { Driver_api.au_start = (fun () -> do_start st ());
                 au_stop = (fun () -> do_stop st ());
                 au_write = (fun data -> do_write st data);
                 au_set_volume =
                   (fun v ->
                      match codec_cmd st R.verb_set_volume v with
                      | Ok _ -> Ok ()
                      | Error e -> Error e);
                 au_get_volume = (fun () -> codec_cmd st R.verb_get_volume 0) }
           | Ok _ -> Error "codec returned a null vendor id"
           | Error e -> Error ("codec: " ^ e))
        | Error e, _ | _, Error e -> Error ("alloc: " ^ e)))

let driver =
  { Driver_api.ad_name = "snd-hda-intel"; ad_ids = [ (0x8086, 0x293E) ]; ad_probe = probe }
