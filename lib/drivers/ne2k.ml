module R = Ne2k_dev.Regs

(* Card memory layout (256-byte pages): PROM shadow in page 0, TX staging
   in pages 1..6, receive ring in 7..63. *)
let tx_page = 1
let rx_start = 7
let rx_stop = R.buffer_pages

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.net_callbacks;
  io : Driver_api.pio;
  bounce : Driver_api.dma_region;   (* staging area for frames handed to the stack *)
  mutable next_pkt : int;           (* next ring page to read (BNRY shadow + 1) *)
  mutable opened : bool;
  mutable tx_in_flight : bool;
}

let outb st off v = st.io.Driver_api.pio_write ~off ~size:1 v
let inb st off = st.io.Driver_api.pio_read ~off ~size:1

let remote_setup st ~addr ~count =
  outb st R.rsar0 (addr land 0xff);
  outb st R.rsar1 (addr lsr 8);
  outb st R.rbcr0 (count land 0xff);
  outb st R.rbcr1 (count lsr 8)

let remote_read st ~addr ~count =
  outb st R.cr (R.cr_sta lor R.cr_rd_read);
  remote_setup st ~addr ~count;
  Bytes.init count (fun _ -> Char.chr (inb st R.dataport land 0xff))

let remote_write st ~addr data =
  outb st R.cr (R.cr_sta lor R.cr_rd_write);
  remote_setup st ~addr ~count:(Bytes.length data);
  Bytes.iter (fun c -> outb st R.dataport (Char.code c)) data

let read_prom_mac st =
  let prom = remote_read st ~addr:0 ~count:12 in
  Bytes.init 6 (fun i -> Bytes.get prom (2 * i))

(* ---- receive: drain the BNRY..CURR ring ---- *)

let rec rx_drain st =
  outb st R.cr (R.cr_sta lor R.cr_page1);
  let curr = inb st R.curr in
  outb st R.cr R.cr_sta;
  if st.next_pkt <> curr then begin
    let hdr = remote_read st ~addr:(st.next_pkt * 256) ~count:4 in
    let next = Char.code (Bytes.get hdr 1) in
    let len = Bytes.get_uint16_le hdr 2 - 4 in
    if len > 0 && len <= 1514 && next >= rx_start && next < rx_stop then begin
      let frame = remote_read st ~addr:((st.next_pkt * 256) + 4) ~count:len in
      st.env.Driver_api.env_consume 300;
      (* Stage in the bounce region so the environment can take it by bus
         address, like any other driver. *)
      st.bounce.Driver_api.dma_write ~off:0 frame;
      st.cb.Driver_api.nc_rx ~queue:0 ~addr:st.bounce.Driver_api.dma_addr ~len;
      st.next_pkt <- next;
      outb st R.bnry (if next = rx_start then rx_stop - 1 else next - 1);
      rx_drain st
    end
    else begin
      (* Corrupt header: reset the ring rather than trust it. *)
      st.next_pkt <- rx_start;
      outb st R.bnry (rx_stop - 1)
    end
  end

let irq_handler st () =
  let isr = inb st R.isr in
  outb st R.isr isr;   (* write-1-to-clear *)
  if isr land R.isr_prx <> 0 then rx_drain st;
  if isr land R.isr_ptx <> 0 then begin
    st.tx_in_flight <- false;
    st.cb.Driver_api.nc_tx_done ~queue:0
  end;
  st.pdev.Driver_api.pd_irq_ack ()

let do_open st () =
  if st.opened then Ok ()
  else
    match st.pdev.Driver_api.pd_request_irqs ~n:1 (fun ~queue:_ -> irq_handler st ()) with
    | Error e -> Error e
    | Ok () ->
      outb st R.cr R.cr_stp;
      outb st R.dcr 0x49;
      outb st R.pstart rx_start;
      outb st R.pstop rx_stop;
      outb st R.bnry (rx_stop - 1);
      outb st R.cr (R.cr_stp lor R.cr_page1);
      outb st R.curr rx_start;
      outb st R.cr R.cr_sta;
      st.next_pkt <- rx_start;
      outb st R.imr (R.isr_prx lor R.isr_ptx);
      outb st R.rcr 0x04;
      outb st R.tcr 0x00;
      st.opened <- true;
      st.cb.Driver_api.nc_carrier true;
      Ok ()

let do_stop st () =
  if st.opened then begin
    outb st R.imr 0;
    outb st R.cr R.cr_stp;
    st.pdev.Driver_api.pd_free_irq ();
    st.opened <- false
  end

let do_xmit st (txb : Driver_api.txbuf) =
  if st.tx_in_flight then `Busy
  else begin
    let frame = txb.Driver_api.txb_read () in
    (* The PIO copy into card memory is the whole point of this driver:
       every byte crosses an IO port. *)
    remote_write st ~addr:(tx_page * 256) frame;
    outb st R.tpsr tx_page;
    outb st R.tbcr0 (Bytes.length frame land 0xff);
    outb st R.tbcr1 (Bytes.length frame lsr 8);
    outb st R.cr (R.cr_sta lor R.cr_txp);
    st.tx_in_flight <- true;
    st.cb.Driver_api.nc_tx_free ~queue:0 ~token:txb.Driver_api.txb_token;
    `Ok
  end

let do_ioctl st ~cmd ~arg =
  ignore arg;
  if cmd = Netdev.ioctl_mii_status then Ok (if st.opened then 1 else 0)
  else if cmd = Netdev.ioctl_link_speed then Ok 10
  else Error "unsupported ioctl"

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_io_bar 0 with
     | Error e -> Error ("io bar: " ^ e)
     | Ok io ->
       (match pdev.Driver_api.pd_alloc_dma ~bytes:Bus.page_size () with
        | Error e -> Error ("bounce buffer: " ^ e)
        | Ok bounce ->
          let st =
            { env;
              pdev;
              cb;
              io;
              bounce;
              next_pkt = rx_start;
              opened = false;
              tx_in_flight = false }
          in
          let mac = read_prom_mac st in
          Ok
            { Driver_api.ni_mac = mac;
              ni_tx_queues = 1;
              ni_open = (fun () -> do_open st ());
              ni_stop = (fun () -> do_stop st ());
              ni_xmit = (fun ~queue:_ txb -> do_xmit st txb);
              ni_ioctl = (fun ~cmd ~arg -> do_ioctl st ~cmd ~arg) }))

let driver =
  { Driver_api.nd_name = "ne2k-pci"; nd_ids = [ (0x10EC, 0x8029) ]; nd_probe = probe }
