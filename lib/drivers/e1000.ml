module R = E1000_dev.Regs

let tx_ring_size = 256          (* 256 * 16B = one page of descriptors *)
let rx_ring_size = 512          (* two pages, as in Figure 9 *)
let rx_buf_size = 2048

(* One TX/RX ring pair.  Queue [qi]'s registers live at the queue-0
   offset plus [qi * R.queue_stride]. *)
type queue = {
  qi : int;
  tx_ring : Driver_api.dma_region;
  rx_ring : Driver_api.dma_region;
  rx_bufs : Driver_api.dma_region;
  tokens : int array;                  (* txb tokens by TX slot *)
  mutable tx_tail : int;
  mutable tx_clean : int;
  mutable rx_next : int;
}

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.net_callbacks;
  mmio : Driver_api.mmio;
  qs : queue array;
  msix : bool;                         (* per-queue vectors; legacy ICR unused *)
  mutable opened : bool;
  mutable irq_seen : bool;             (* for the open-time interrupt self test *)
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

(* Ring register of queue [q]. *)
let qr q base = base + (q.qi * R.queue_stride)

let read_eeprom st addr =
  w32 st R.eerd ((addr lsl 8) lor R.eerd_start);
  let rec poll tries =
    let v = r32 st R.eerd in
    if v land R.eerd_done <> 0 then (v lsr 16) land 0xFFFF
    else if tries = 0 then 0
    else begin
      st.env.Driver_api.env_udelay 1;
      poll (tries - 1)
    end
  in
  poll 100

let read_mac st =
  let mac = Bytes.create 6 in
  for i = 0 to 2 do
    let w = read_eeprom st i in
    Bytes.set mac (2 * i) (Char.chr (w land 0xff));
    Bytes.set mac ((2 * i) + 1) (Char.chr ((w lsr 8) land 0xff))
  done;
  mac

(* Legacy descriptor accessors *)
let write_tx_desc q slot ~addr ~len ~cmd =
  let off = slot * R.desc_size in
  Driver_api.dma_set64 q.tx_ring ~off (Int64.of_int addr);
  let meta = Bytes.make 8 '\000' in
  Bytes.set_uint16_le meta 0 len;
  Bytes.set meta 3 (Char.chr cmd);
  Bytes.set meta 4 '\000';              (* status *)
  q.tx_ring.Driver_api.dma_write ~off:(off + 8) meta

let tx_desc_done q slot =
  let off = (slot * R.desc_size) + 12 in
  let b = q.tx_ring.Driver_api.dma_read ~off ~len:1 in
  Char.code (Bytes.get b 0) land R.txd_sta_dd <> 0

let setup_rx_desc q slot =
  let off = slot * R.desc_size in
  let buf_addr = q.rx_bufs.Driver_api.dma_addr + (slot * rx_buf_size) in
  Driver_api.dma_set64 q.rx_ring ~off (Int64.of_int buf_addr);
  q.rx_ring.Driver_api.dma_write ~off:(off + 8) (Bytes.make 8 '\000')

let rx_desc_status q slot =
  let off = (slot * R.desc_size) + 12 in
  Char.code (Bytes.get (q.rx_ring.Driver_api.dma_read ~off ~len:1) 0)

let rx_desc_len q slot =
  let off = (slot * R.desc_size) + 8 in
  Bytes.get_uint16_le (q.rx_ring.Driver_api.dma_read ~off ~len:2) 0

(* ---- interrupt handler (the driver's top half) ---- *)

let clean_tx st q =
  let cleaned = ref false in
  while q.tx_clean <> q.tx_tail && tx_desc_done q q.tx_clean do
    st.cb.Driver_api.nc_tx_free ~queue:q.qi ~token:q.tokens.(q.tx_clean);
    q.tokens.(q.tx_clean) <- -1;
    q.tx_clean <- (q.tx_clean + 1) mod tx_ring_size;
    cleaned := true
  done;
  if !cleaned then st.cb.Driver_api.nc_tx_done ~queue:q.qi

let napi_budget = 64

let rx_poll st q =
  let budget = ref napi_budget in
  let progress = ref true in
  let last = ref (-1) in
  while !progress && !budget > 0 do
    let status = rx_desc_status q q.rx_next in
    if status land R.rxd_sta_dd <> 0 then begin
      let len = rx_desc_len q q.rx_next in
      let addr = q.rx_bufs.Driver_api.dma_addr + (q.rx_next * rx_buf_size) in
      st.env.Driver_api.env_consume 300;
      st.cb.Driver_api.nc_rx ~queue:q.qi ~addr ~len;
      setup_rx_desc q q.rx_next;
      last := q.rx_next;
      q.rx_next <- (q.rx_next + 1) mod rx_ring_size;
      decr budget
    end
    else progress := false
  done;
  (* Hand the recycled descriptors back in one tail write per batch. *)
  if !last >= 0 then w32 st (qr q R.rdt) !last;
  napi_budget - !budget

let rx_work_pending q = rx_desc_status q q.rx_next land R.rxd_sta_dd <> 0
let tx_work_pending q = q.tx_clean <> q.tx_tail && tx_desc_done q q.tx_clean

(* Interrupt moderation: a round that drains a real burst yet comes up
   short of budget means frames arrive slower than we can poll.  Real
   e1000 hardware rate-limits interrupt delivery with the ITR register;
   the NAPI-mode equivalent is to stay in poll mode (vector still
   masked) and sleep briefly before draining again — the RX ring
   absorbs the hold-off.  This also lets uchan frame aggregation fill
   toward its batch limit instead of flushing a few frames per ack.
   Rounds below [itr_burst_frames] look like request/response traffic,
   where the hold-off would be pure added latency, so we ack at once.
   Only a schedulable poll context may hold off: a SUD driver always is
   (its upcalls run in process context), a native top half never. *)
let itr_holdoff_us = 64
let itr_burst_frames = 4

(* The NAPI bottom half: the vector is masked for the whole poll (the
   kernel masked it before forwarding), so we drain in budget-sized
   rounds and only ack — unmasking the vector — once a round comes up
   short.  Events arriving mid-poll raise no interrupt: MSI-X latches
   them in the pending-bit array and the ack replays them, but legacy
   MSI has no latch, so after acking we re-check the rings ourselves
   and go around again if anything slipped into the window. *)
let napi_poll st q =
  let rec rounds () =
    clean_tx st q;
    let n = rx_poll st q in
    if n >= napi_budget then rounds ()
    else if n >= itr_burst_frames && st.env.Driver_api.env_may_sleep () then begin
      st.env.Driver_api.env_usleep itr_holdoff_us;
      rounds ()
    end
    else begin
      st.pdev.Driver_api.pd_irq_ack ~queue:q.qi ();
      if rx_work_pending q || tx_work_pending q then rounds ()
    end
  in
  rounds ()

(* In MSI-X mode each queue signals its own vector, so vector [q] means
   "queue [q] has work" — no ICR demux, exactly the igb/e1000e MSI-X
   top half.  In legacy MSI mode the single vector demuxes via ICR. *)
let irq_handler st ~queue =
  st.irq_seen <- true;
  if st.msix then
    napi_poll st st.qs.(if queue >= 0 && queue < Array.length st.qs then queue else 0)
  else begin
    let icr = r32 st R.icr in
    if icr land R.int_lsc <> 0 then
      st.cb.Driver_api.nc_carrier (r32 st R.status land R.status_lu <> 0);
    ignore (icr : int);
    napi_poll st st.qs.(0)
  end

(* ---- net_instance callbacks ---- *)

let program_queue st q =
  w32 st (qr q R.tdbal) (q.tx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
  w32 st (qr q R.tdbah) (q.tx_ring.Driver_api.dma_addr lsr 32);
  w32 st (qr q R.tdlen) (tx_ring_size * R.desc_size);
  w32 st (qr q R.tdh) 0;
  w32 st (qr q R.tdt) 0;
  q.tx_tail <- 0;
  q.tx_clean <- 0;
  for i = 0 to rx_ring_size - 1 do setup_rx_desc q i done;
  w32 st (qr q R.rdbal) (q.rx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
  w32 st (qr q R.rdbah) (q.rx_ring.Driver_api.dma_addr lsr 32);
  w32 st (qr q R.rdlen) (rx_ring_size * R.desc_size);
  w32 st (qr q R.rdh) 0;
  w32 st (qr q R.rdt) (rx_ring_size - 1);
  q.rx_next <- 0

let do_open st () =
  if st.opened then Ok ()
  else begin
    let nq = Array.length st.qs in
    match st.pdev.Driver_api.pd_request_irqs ~n:nq (fun ~queue -> irq_handler st ~queue) with
    | Error e -> Error ("request_irqs: " ^ e)
    | Ok () ->
      Array.iter (program_queue st) st.qs;
      (* Spread incoming flows over all RX rings. *)
      if nq > 1 then w32 st R.mrqc nq;
      (* Interrupt moderation, as the real driver's default ITR: ~50 us
         between interrupts (196 * 256 ns). *)
      w32 st R.itr 196;
      w32 st R.ims (R.int_txdw lor R.int_rxt0 lor R.int_lsc);
      let self_test () =
        if st.msix then Ok ()
        (* ICS raises a legacy-MSI interrupt; with MSI-X enabled the
           device never signals that path, so the test only applies to
           single-vector mode — as in e1000e, whose test_msi falls away
           once MSI-X vectors are up. *)
        else begin
          (* Like the real e1000e (paper §4.2): verify the interrupt path
             by raising one and sleeping — which only works if something
             keeps dispatching interrupts while we block. *)
          st.irq_seen <- false;
          w32 st R.ics R.int_txdw;
          let rec wait_irq tries =
            if st.irq_seen then Ok ()
            else if tries = 0 then Error "interrupt self-test failed"
            else begin
              st.env.Driver_api.env_msleep 1;
              wait_irq (tries - 1)
            end
          in
          wait_irq 10
        end
      in
      (match self_test () with
       | Error e ->
         st.pdev.Driver_api.pd_free_irq ();
         Error e
       | Ok () ->
         w32 st R.rctl R.rctl_en;
         w32 st R.tctl R.tctl_en;
         st.opened <- true;
         st.cb.Driver_api.nc_carrier (r32 st R.status land R.status_lu <> 0);
         Ok ())
  end

let do_stop st () =
  if st.opened then begin
    w32 st R.rctl 0;
    w32 st R.tctl 0;
    w32 st R.imc 0xFFFFFFFF;
    st.pdev.Driver_api.pd_free_irq ();
    st.opened <- false
  end

let do_xmit st ~queue (txb : Driver_api.txbuf) =
  let q = st.qs.(if queue >= 0 && queue < Array.length st.qs then queue else 0) in
  let next = (q.tx_tail + 1) mod tx_ring_size in
  if next = q.tx_clean then `Busy     (* ring full *)
  else begin
    st.env.Driver_api.env_consume 350;
    write_tx_desc q q.tx_tail ~addr:txb.Driver_api.txb_addr ~len:txb.Driver_api.txb_len
      ~cmd:(R.txd_cmd_eop lor R.txd_cmd_rs);
    q.tokens.(q.tx_tail) <- txb.Driver_api.txb_token;
    q.tx_tail <- next;
    w32 st (qr q R.tdt) q.tx_tail;
    `Ok
  end

let do_ioctl st ~cmd ~arg =
  ignore arg;
  if cmd = Netdev.ioctl_mii_status then
    Ok (if r32 st R.status land R.status_lu <> 0 then 1 else 0)
  else if cmd = Netdev.ioctl_link_speed then Ok 1000
  else Error "unsupported ioctl"

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       let alloc what bytes =
         match pdev.Driver_api.pd_alloc_dma ~bytes () with
         | Ok r -> r
         | Error e -> failwith (what ^ ": " ^ e)
       in
       (* One ring pair per deliverable MSI-X vector, capped by the
          hardware's queue register file. *)
       let nq = max 1 (min (pdev.Driver_api.pd_msix_vectors ()) R.max_queues) in
       (match
          Array.init nq (fun qi ->
              (* Allocation order matches Figure 9: TX ring, RX ring,
                 buffers — repeated per queue. *)
              let tx_ring = alloc "tx ring" (tx_ring_size * R.desc_size) in
              let rx_ring = alloc "rx ring" (rx_ring_size * R.desc_size) in
              let rx_bufs = alloc "rx buffers" (rx_ring_size * rx_buf_size) in
              { qi;
                tx_ring;
                rx_ring;
                rx_bufs;
                tokens = Array.make tx_ring_size (-1);
                tx_tail = 0;
                tx_clean = 0;
                rx_next = 0 })
        with
        | exception Failure e -> Error e
        | qs ->
          let st = { env; pdev; cb; mmio; qs; msix = nq > 1; opened = false; irq_seen = false } in
          let mac = read_mac st in
          env.Driver_api.env_printk
            (Printf.sprintf "e1000: MAC %02x:%02x:%02x:%02x:%02x:%02x, %d queue%s"
               (Char.code (Bytes.get mac 0)) (Char.code (Bytes.get mac 1))
               (Char.code (Bytes.get mac 2)) (Char.code (Bytes.get mac 3))
               (Char.code (Bytes.get mac 4)) (Char.code (Bytes.get mac 5))
               nq (if nq = 1 then "" else "s"));
          Ok
            { Driver_api.ni_mac = mac;
              ni_tx_queues = nq;
              ni_open = (fun () -> do_open st ());
              ni_stop = (fun () -> do_stop st ());
              ni_xmit = (fun ~queue txb -> do_xmit st ~queue txb);
              ni_ioctl = (fun ~cmd ~arg -> do_ioctl st ~cmd ~arg) }))

let driver =
  { Driver_api.nd_name = "e1000";
    nd_ids = [ (0x8086, 0x10D3) ];
    nd_probe = probe }
