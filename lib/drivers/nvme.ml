(* The NVMe block driver — written once against Driver_api and hosted
   either natively or as an untrusted SUD process, like every other
   driver in this directory.

   One submission/completion queue pair per deliverable MSI-X vector.
   The command id (cid) is the SQ slot index — 16 bits on the wire —
   and the driver keeps the proxy's unbounded idempotency tag in a
   per-slot side table, [tags.(q).(slot)].  Bounding outstanding
   commands at [sq entries - 1] guarantees a slot is never reused while
   its previous occupant is still in flight. *)

module R = Nvme_dev.Regs

let sq_entries = 32

type queue = {
  qi : int;
  sq : Driver_api.dma_region;
  cq : Driver_api.dma_region;
  tags : int array;                  (* slot -> proxy tag, -1 = free *)
  mutable sq_tail : int;
  mutable cq_head : int;
  mutable phase : int;               (* phase value we expect next *)
  mutable outstanding : int;
}

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.blk_callbacks;
  mmio : Driver_api.mmio;
  qs : queue array;
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

let qcfg q reg = R.qcfg_base + (q * R.qcfg_stride) + reg
let sq_doorbell q = R.db_base + (q * 8)
let cq_doorbell q = R.db_base + (q * 8) + 4

(* Drain queue [q]'s completion ring: consume entries whose phase tag
   matches, map cid -> slot -> proxy tag, hand each to the host. *)
let poll_cq st q =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let off = q.cq_head * R.cqe_size in
    let sp = Driver_api.dma_get32 q.cq ~off:(off + 12) in
    let status_phase = (sp lsr 16) land 0xFFFF in
    if status_phase land 1 = q.phase then begin
      let cid = sp land 0xFFFF in
      let status = status_phase lsr 1 in
      st.env.Driver_api.env_consume 200;
      q.cq_head <- q.cq_head + 1;
      if q.cq_head >= sq_entries then begin
        q.cq_head <- 0;
        q.phase <- 1 - q.phase
      end;
      w32 st (cq_doorbell q.qi) q.cq_head;
      (* A cid outside the slot table, or naming a free slot, is a device
         (or firmware-fault-injection) lie; there is no request to
         complete, so all we can do is drop it — the genuinely
         outstanding victim escalates by timeout. *)
      if cid < sq_entries && q.tags.(cid) >= 0 then begin
        let tag = q.tags.(cid) in
        q.tags.(cid) <- -1;
        q.outstanding <- q.outstanding - 1;
        st.cb.Driver_api.bc_complete ~queue:q.qi ~tag ~status
      end;
      progressed := true
    end
  done

let irq_handler st ~queue =
  let q = st.qs.(if queue >= 0 && queue < Array.length st.qs then queue else 0) in
  poll_cq st q;
  st.pdev.Driver_api.pd_irq_ack ~queue:q.qi ()

let submit st ~queue ~tag ~op ~lba ~count ~addr =
  let q = st.qs.(if queue >= 0 && queue < Array.length st.qs then queue else 0) in
  if q.outstanding >= sq_entries - 1 then `Busy
  else begin
    let base_op = op land lnot Proxy_proto.blk_op_fua in
    let opcode, flags =
      if base_op = Proxy_proto.blk_op_flush then (R.op_flush, 0)
      else if base_op = Proxy_proto.blk_op_write then
        (R.op_write, if op land Proxy_proto.blk_op_fua <> 0 then R.flags_fua else 0)
      else (R.op_read, 0)
    in
    let slot = q.sq_tail in
    let off = slot * R.sqe_size in
    st.env.Driver_api.env_consume 350;
    let sqe = Bytes.make R.sqe_size '\000' in
    Bytes.set sqe 0 (Char.chr opcode);
    Bytes.set sqe 1 (Char.chr flags);
    Bytes.set_uint16_le sqe 2 slot;
    Bytes.set_int64_le sqe 8 (Int64.of_int addr);
    Bytes.set_int64_le sqe 16 (Int64.of_int lba);
    Bytes.set_int32_le sqe 24 (Int32.of_int count);
    q.sq.Driver_api.dma_write ~off sqe;
    q.tags.(slot) <- tag;
    q.outstanding <- q.outstanding + 1;
    q.sq_tail <- (slot + 1) mod sq_entries;
    w32 st (sq_doorbell q.qi) q.sq_tail;
    `Ok
  end

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       let alloc what bytes =
         match pdev.Driver_api.pd_alloc_dma ~bytes () with
         | Ok r -> r
         | Error e -> failwith (what ^ ": " ^ e)
       in
       let st0 = { env; pdev; cb; mmio; qs = [||] } in
       let cap_nqs = r32 st0 R.cap_nqs in
       let capacity = r32 st0 R.cap_lo lor (r32 st0 R.cap_hi lsl 32) in
       let nq = max 1 (min (pdev.Driver_api.pd_msix_vectors ()) cap_nqs) in
       (match
          Array.init nq (fun qi ->
              let sq = alloc "sq" (sq_entries * R.sqe_size) in
              let cq = alloc "cq" (sq_entries * R.cqe_size) in
              (* The completion ring must start phase-0 so the first pass
                 of device writes (phase 1) is distinguishable. *)
              cq.Driver_api.dma_write ~off:0
                (Bytes.make (sq_entries * R.cqe_size) '\000');
              { qi; sq; cq; tags = Array.make sq_entries (-1); sq_tail = 0;
                cq_head = 0; phase = 1; outstanding = 0 })
        with
        | exception Failure e -> Error e
        | qs ->
          let st = { st0 with qs } in
          Array.iter
            (fun q ->
               w32 st (qcfg q.qi R.sq_base_lo) (q.sq.Driver_api.dma_addr land 0xFFFFFFFF);
               w32 st (qcfg q.qi R.sq_base_hi) (q.sq.Driver_api.dma_addr lsr 32);
               w32 st (qcfg q.qi R.sq_size) sq_entries;
               w32 st (qcfg q.qi R.cq_base_lo) (q.cq.Driver_api.dma_addr land 0xFFFFFFFF);
               w32 st (qcfg q.qi R.cq_base_hi) (q.cq.Driver_api.dma_addr lsr 32);
               w32 st (qcfg q.qi R.cq_size) sq_entries)
            qs;
          (match pdev.Driver_api.pd_request_irqs ~n:nq (fun ~queue -> irq_handler st ~queue) with
           | Error e -> Error ("request_irqs: " ^ e)
           | Ok () ->
             w32 st R.cc R.cc_en;
             let rec wait_ready tries =
               if r32 st R.csts land R.csts_rdy <> 0 then Ok ()
               else if tries = 0 then Error "controller never became ready"
               else begin
                 env.Driver_api.env_msleep 1;
                 wait_ready (tries - 1)
               end
             in
             (match wait_ready 10 with
              | Error e ->
                pdev.Driver_api.pd_free_irq ();
                Error e
              | Ok () ->
                env.Driver_api.env_printk
                  (Printf.sprintf "nvme: %d sectors, %d queue pair%s, qd %d"
                     capacity nq (if nq = 1 then "" else "s") sq_entries);
                Ok
                  { Driver_api.bi_capacity = capacity;
                    bi_queues = nq;
                    bi_submit =
                      (fun ~queue ~tag ~op ~lba ~count ~addr ->
                         submit st ~queue ~tag ~op ~lba ~count ~addr) }))))

let driver =
  { Driver_api.bd_name = "nvme";
    bd_ids = [ (0x8086, 0x0953) ];
    bd_probe = probe }
