(** The e1000 Gigabit Ethernet driver, written once against
    {!Driver_api} and runnable unmodified either in-kernel
    ({!Native_net.attach}) or as an untrusted SUD process
    ({!Driver_host.launch} with the net class) — the paper's e1000e.

    Faithful to the real driver where it matters to SUD:
    - descriptor rings and packet buffers allocated from DMA-capable
      memory (Figure 9's regions);
    - the MAC address read from the EEPROM through EERD;
    - interrupt handling driven by ICR with TX-completion cleanup;
    - the §4.2 blocking-probe quirk: [ni_open] self-tests the interrupt
      path by raising an interrupt and sleeping, so it {e must} run in a
      context where interrupts keep being dispatched (SUD-UML's worker
      threads). *)

val driver : Driver_api.net_driver

val tx_ring_size : int
val rx_ring_size : int
