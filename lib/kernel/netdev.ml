type xmit_result = Xmit_ok | Xmit_busy

type ops = {
  ndo_open : unit -> (unit, string) result;
  ndo_stop : unit -> unit;
  ndo_start_xmit : queue:int -> Skbuff.t -> xmit_result;
  ndo_do_ioctl : cmd:int -> arg:int -> (int, string) result;
}

let ioctl_mii_status = 0x8948
let ioctl_link_speed = 0x8949

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_dropped : int;
  mutable rx_dropped : int;
}

type backlog_stats = {
  bl_offered : int;
  bl_queued : int;
  bl_dropped : int;
  bl_replayed : int;
}

(* Per-TX-queue state: flow control, the HARD_TX_LOCK, and the recovery
   backlog are all per queue, so queues never serialize on each other. *)
type txq = {
  tq_waitq : Sync.Waitq.t;
  tq_lock : Sync.Mutex.t;
  mutable tq_stopped : bool;
  tq_backlog : Skbuff.t Queue.t;
  tqm_offered : Sud_obs.Metrics.counter;
  tqm_dropped : Sud_obs.Metrics.counter;
  tqm_replayed : Sud_obs.Metrics.counter;
}

type t = {
  dname : string;
  mutable dmac : bytes;
  mutable dops : ops;
  dstats : stats;
  mutable up : bool;
  mutable carrier_on : bool;
  txqs : txq array;
  mutable stack_rx : (Skbuff.t -> unit) option;
  mutable backlog_limit : int;
  nm : metrics;
}
and metrics = {
  nm_bl_offered : Sud_obs.Metrics.counter;
  nm_bl_dropped : Sud_obs.Metrics.counter;
  nm_bl_replayed : Sud_obs.Metrics.counter;
  nm_bl_queued : Sud_obs.Metrics.gauge;
}

let create ~name ~mac ~ops ?(tx_queues = 1) () =
  if Bytes.length mac <> 6 then invalid_arg "Netdev.create: MAC must be 6 bytes";
  if tx_queues < 1 then invalid_arg "Netdev.create: need at least one TX queue";
  let txqs =
    Array.init tx_queues (fun qi ->
        let labels = [ "dev", name; "queue", string_of_int qi ] in
        let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"netdev" ~name:n () in
        { tq_waitq = Sync.Waitq.create ();
          tq_lock = Sync.Mutex.create ();
          tq_stopped = false;
          tq_backlog = Queue.create ();
          tqm_offered = c "queue_backlog_offered";
          tqm_dropped = c "queue_backlog_dropped";
          tqm_replayed = c "queue_backlog_replayed" })
  in
  { dname = name;
    dmac = Bytes.copy mac;
    dops = ops;
    dstats = { tx_packets = 0; tx_bytes = 0; rx_packets = 0; rx_bytes = 0; tx_dropped = 0; rx_dropped = 0 };
    up = false;
    carrier_on = false;
    txqs;
    stack_rx = None;
    backlog_limit = 0;
    nm =
      (let labels = [ "dev", name ] in
       let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"netdev" ~name:n () in
       { nm_bl_offered = c "backlog_offered";
         nm_bl_dropped = c "backlog_dropped";
         nm_bl_replayed = c "backlog_replayed";
         nm_bl_queued =
           Sud_obs.Metrics.gauge ~labels ~subsystem:"netdev" ~name:"backlog_queued"
             (fun () ->
                Array.fold_left (fun acc q -> acc + Queue.length q.tq_backlog) 0 txqs) }) }

let name t = t.dname
let mac t = t.dmac
let set_mac t m = t.dmac <- Bytes.copy m
let ops t = t.dops
let set_ops t ops = t.dops <- ops
let stats t = t.dstats

let is_up t = t.up
let set_up t v = t.up <- v

let carrier t = t.carrier_on
let netif_carrier_on t = t.carrier_on <- true
let netif_carrier_off t = t.carrier_on <- false

let tx_queues t = Array.length t.txqs

let txq_of t queue =
  if queue < 0 || queue >= Array.length t.txqs then
    invalid_arg
      (Printf.sprintf "Netdev(%s): no TX queue %d (device has %d)" t.dname queue
         (Array.length t.txqs));
  t.txqs.(queue)

(* RSS on the egress side: the same flow hash the device uses for RX, so
   one flow stays on one queue end to end and keeps its packet order. *)
let select_queue t skb =
  Rss.queue_for ~queues:(Array.length t.txqs) skb.Skbuff.data

let subqueue_stopped t ~queue = (txq_of t queue).tq_stopped
let netif_stop_subqueue t ~queue = (txq_of t queue).tq_stopped <- true

let netif_wake_subqueue t ~queue =
  let q = txq_of t queue in
  q.tq_stopped <- false;
  ignore (Sync.Waitq.broadcast q.tq_waitq : int)

let netif_tx_stop_all_queues t =
  Array.iter (fun q -> q.tq_stopped <- true) t.txqs

let netif_tx_wake_all_queues t =
  Array.iter
    (fun q ->
       q.tq_stopped <- false;
       ignore (Sync.Waitq.broadcast q.tq_waitq : int))
    t.txqs

let tx_subqueue_waitq t ~queue = (txq_of t queue).tq_waitq
let tx_subqueue_lock t ~queue = (txq_of t queue).tq_lock

(* ---- recovery backlog (per queue) ---- *)

let backlog_push t ~queue ~limit skb =
  let q = txq_of t queue in
  t.backlog_limit <- limit;
  Sud_obs.Metrics.incr t.nm.nm_bl_offered;
  Sud_obs.Metrics.incr q.tqm_offered;
  if Queue.length q.tq_backlog < limit then Queue.push skb q.tq_backlog
  else begin
    Sud_obs.Metrics.incr t.nm.nm_bl_dropped;
    Sud_obs.Metrics.incr q.tqm_dropped;
    t.dstats.tx_dropped <- t.dstats.tx_dropped + 1
  end;
  (* Always [Xmit_ok]: the frame was accepted (or accounted as dropped);
     returning busy would just park senders on a queue nobody will wake
     until the fresh driver arrives. *)
  Xmit_ok

let backlog_pop t ~queue =
  let q = txq_of t queue in
  match Queue.take_opt q.tq_backlog with
  | None -> None
  | Some skb ->
    Sud_obs.Metrics.incr t.nm.nm_bl_replayed;
    Sud_obs.Metrics.incr q.tqm_replayed;
    Some skb

let backlog_flush_drop t =
  let n =
    Array.fold_left
      (fun acc q ->
         let n = Queue.length q.tq_backlog in
         Queue.clear q.tq_backlog;
         Sud_obs.Metrics.add q.tqm_dropped n;
         acc + n)
      0 t.txqs
  in
  Sud_obs.Metrics.add t.nm.nm_bl_dropped n;
  t.dstats.tx_dropped <- t.dstats.tx_dropped + n;
  n

let metrics t = t.nm

let backlog_stats t =
  { bl_offered = Sud_obs.Metrics.get t.nm.nm_bl_offered;
    bl_queued = Array.fold_left (fun acc q -> acc + Queue.length q.tq_backlog) 0 t.txqs;
    bl_dropped = Sud_obs.Metrics.get t.nm.nm_bl_dropped;
    bl_replayed = Sud_obs.Metrics.get t.nm.nm_bl_replayed }

let netif_rx t skb =
  match t.stack_rx with
  | Some rx -> rx skb
  | None -> t.dstats.rx_dropped <- t.dstats.rx_dropped + 1

let set_stack_rx t rx = t.stack_rx <- Some rx

(* ---- deprecated scalar shims (the queue-0 instances) ---- *)

let queue_stopped t = subqueue_stopped t ~queue:0
let netif_stop_queue t = netif_stop_subqueue t ~queue:0
let netif_wake_queue t = netif_wake_subqueue t ~queue:0
let tx_waitq t = tx_subqueue_waitq t ~queue:0
let tx_lock t = tx_subqueue_lock t ~queue:0
let backlog_xmit t ~limit skb = backlog_push t ~queue:0 ~limit skb
let backlog_take t = backlog_pop t ~queue:0
