type xmit_result = Xmit_ok | Xmit_busy

type ops = {
  ndo_open : unit -> (unit, string) result;
  ndo_stop : unit -> unit;
  ndo_start_xmit : Skbuff.t -> xmit_result;
  ndo_do_ioctl : cmd:int -> arg:int -> (int, string) result;
}

let ioctl_mii_status = 0x8948
let ioctl_link_speed = 0x8949

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_dropped : int;
  mutable rx_dropped : int;
}

type backlog_stats = {
  bl_offered : int;
  bl_queued : int;
  bl_dropped : int;
  bl_replayed : int;
}

type t = {
  dname : string;
  mutable dmac : bytes;
  mutable dops : ops;
  dstats : stats;
  mutable up : bool;
  mutable carrier_on : bool;
  mutable stopped : bool;
  txq : Sync.Waitq.t;
  tx_lock : Sync.Mutex.t;
  mutable stack_rx : (Skbuff.t -> unit) option;
  (* Recovery backlog: while the owning driver is being restarted the
     supervisor parks outbound frames here instead of letting the netdev
     vanish; bounded, with a drop counter once full. *)
  backlog : Skbuff.t Queue.t;
  mutable backlog_limit : int;
  nm : metrics;
}
and metrics = {
  nm_bl_offered : Sud_obs.Metrics.counter;
  nm_bl_dropped : Sud_obs.Metrics.counter;
  nm_bl_replayed : Sud_obs.Metrics.counter;
  nm_bl_queued : Sud_obs.Metrics.gauge;
}

let create ~name ~mac ~ops =
  if Bytes.length mac <> 6 then invalid_arg "Netdev.create: MAC must be 6 bytes";
  let backlog = Queue.create () in
  { dname = name;
    dmac = Bytes.copy mac;
    dops = ops;
    dstats = { tx_packets = 0; tx_bytes = 0; rx_packets = 0; rx_bytes = 0; tx_dropped = 0; rx_dropped = 0 };
    up = false;
    carrier_on = false;
    stopped = false;
    txq = Sync.Waitq.create ();
    tx_lock = Sync.Mutex.create ();
    stack_rx = None;
    backlog;
    backlog_limit = 0;
    nm =
      (let labels = [ "dev", name ] in
       let c n = Sud_obs.Metrics.counter ~labels ~subsystem:"netdev" ~name:n () in
       { nm_bl_offered = c "backlog_offered";
         nm_bl_dropped = c "backlog_dropped";
         nm_bl_replayed = c "backlog_replayed";
         nm_bl_queued =
           Sud_obs.Metrics.gauge ~labels ~subsystem:"netdev" ~name:"backlog_queued"
             (fun () -> Queue.length backlog) }) }

let name t = t.dname
let mac t = t.dmac
let set_mac t m = t.dmac <- Bytes.copy m
let ops t = t.dops
let set_ops t ops = t.dops <- ops
let stats t = t.dstats

let is_up t = t.up
let set_up t v = t.up <- v

let carrier t = t.carrier_on
let netif_carrier_on t = t.carrier_on <- true
let netif_carrier_off t = t.carrier_on <- false

let queue_stopped t = t.stopped
let netif_stop_queue t = t.stopped <- true

let netif_wake_queue t =
  t.stopped <- false;
  ignore (Sync.Waitq.broadcast t.txq : int)

let tx_waitq t = t.txq
let tx_lock t = t.tx_lock

(* ---- recovery backlog ---- *)

let backlog_xmit t ~limit skb =
  t.backlog_limit <- limit;
  Sud_obs.Metrics.incr t.nm.nm_bl_offered;
  if Queue.length t.backlog < limit then Queue.push skb t.backlog
  else begin
    Sud_obs.Metrics.incr t.nm.nm_bl_dropped;
    t.dstats.tx_dropped <- t.dstats.tx_dropped + 1
  end;
  (* Always [Xmit_ok]: the frame was accepted (or accounted as dropped);
     returning busy would just park senders on a queue nobody will wake
     until the fresh driver arrives. *)
  Xmit_ok

let backlog_take t =
  match Queue.take_opt t.backlog with
  | None -> None
  | Some skb ->
    Sud_obs.Metrics.incr t.nm.nm_bl_replayed;
    Some skb

let backlog_flush_drop t =
  let n = Queue.length t.backlog in
  Queue.clear t.backlog;
  Sud_obs.Metrics.add t.nm.nm_bl_dropped n;
  t.dstats.tx_dropped <- t.dstats.tx_dropped + n;
  n

let metrics t = t.nm

let backlog_stats t =
  { bl_offered = Sud_obs.Metrics.get t.nm.nm_bl_offered;
    bl_queued = Queue.length t.backlog;
    bl_dropped = Sud_obs.Metrics.get t.nm.nm_bl_dropped;
    bl_replayed = Sud_obs.Metrics.get t.nm.nm_bl_replayed }

let netif_rx t skb =
  match t.stack_rx with
  | Some rx -> rx skb
  | None -> t.dstats.rx_dropped <- t.dstats.rx_dropped + 1

let set_stack_rx t rx = t.stack_rx <- Some rx
