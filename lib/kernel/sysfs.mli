(** A minimal sysfs: the device registry SUD-UML scans to find a PCI
    device matching a driver's ID table (paper §4.1), plus string
    attributes for tooling. *)

type t

type entry = {
  path : string;                       (** "/sys/devices/pci0000:00/..." *)
  bdf : Bus.bdf;
  vendor : int;
  device : int;
  class_code : int;
  mutable attrs : (string * string) list;
}

val create : unit -> t

val add_pci_device : t -> bdf:Bus.bdf -> vendor:int -> device:int -> class_code:int -> entry
val remove : t -> bdf:Bus.bdf -> unit

val entries : t -> entry list
val find_bdf : t -> Bus.bdf -> entry option

val match_ids : t -> ids:(int * int) list -> entry list
(** Devices whose (vendor, device) appears in a driver's ID table. *)

val set_attr : entry -> string -> string -> unit
val attr : entry -> string -> string option

(** {1 Virtual files}

    Read-only nodes whose contents are computed on every read — the shape
    of /sys/kernel/* introspection files.  [Kernel.boot] registers
    [/sys/kernel/sud_metrics] (human table) and
    [/sys/kernel/sud_metrics.json] here. *)

val register_file : t -> path:string -> read:(unit -> string) -> unit
(** Re-registering a path replaces its reader. *)

val read_file : t -> path:string -> string option
val files : t -> string list
