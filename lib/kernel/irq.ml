type handler = source:Bus.bdf -> unit

type entry = {
  hname : string;
  fn : handler;
  mutable hits : int;
  mutable masked : bool;
  mutable affinity : int;          (* sim CPU this vector is steered to *)
}

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  preempt : Preempt.t;
  klog : Klog.t;
  handlers : (int, entry) Hashtbl.t;
  freed : (int, unit) Hashtbl.t;   (* vectors that were live once and then freed *)
  spurious_bdf : (Bus.bdf, Sud_obs.Metrics.counter) Hashtbl.t;
  mutable next_vector : int;
  mutable free_pool : int list;    (* freed vectors awaiting reuse, ascending *)
  qm : metrics;
}
and metrics = {
  qm_delivered : Sud_obs.Metrics.counter;
  qm_spurious : Sud_obs.Metrics.counter;
  qm_masked_dropped : Sud_obs.Metrics.counter;
}

let create eng cpu preempt klog =
  let c name = Sud_obs.Metrics.counter ~subsystem:"irq" ~name () in
  { eng;
    cpu;
    preempt;
    klog;
    handlers = Hashtbl.create 16;
    freed = Hashtbl.create 16;
    spurious_bdf = Hashtbl.create 4;
    next_vector = 32;
    free_pool = [];
    qm =
      { qm_delivered = c "delivered";
        qm_spurious = c "spurious";
        qm_masked_dropped = c "masked_dropped" } }

(* The deliverable vector space is the MSI message's data[7:0] — 256
   vectors, the first 32 reserved, exactly x86's budget.  Numbers past
   255 would be truncated by the bus at delivery time and alias whatever
   old vector shares the low byte, so freed vectors MUST be recycled
   (lowest-first, like the x86 vector matrix allocator) rather than the
   space grown without bound. *)
let max_vector = 256

let alloc_vectors t ~n =
  if n <= 0 then invalid_arg "Irq.alloc_vectors: n must be positive";
  Array.init n (fun _ ->
      match t.free_pool with
      | v :: rest ->
        t.free_pool <- rest;
        v
      | [] ->
        if t.next_vector >= max_vector then
          failwith "Irq.alloc_vectors: vector space exhausted"
        else begin
          let v = t.next_vector in
          t.next_vector <- v + 1;
          v
        end)

let alloc_vector t = (alloc_vectors t ~n:1).(0)

(* Default affinity spreads vectors round-robin over the sim CPUs, like
   the usual MSI-X ± irqbalance steady state. *)
let default_affinity t vector = vector mod Cpu.cores t.cpu

let request_irqs t ~vectors ~name fn =
  match Array.to_list vectors |> List.find_opt (Hashtbl.mem t.handlers) with
  | Some v -> Error (Printf.sprintf "vector %d already requested" v)
  | None ->
    Array.iteri
      (fun queue v ->
         Hashtbl.add t.handlers v
           { hname = name;
             fn = (fun ~source -> fn ~queue ~source);
             hits = 0;
             masked = false;
             affinity = default_affinity t v };
         Hashtbl.remove t.freed v)
      vectors;
    Ok ()

let request_irq t ~vector ~name fn =
  request_irqs t ~vectors:[| vector |] ~name (fun ~queue:_ ~source -> fn ~source)

let free_irqs t ~vectors =
  Array.iter
    (fun v ->
       if Hashtbl.mem t.handlers v then begin
         Hashtbl.remove t.handlers v;
         Hashtbl.replace t.freed v ();
         t.free_pool <- List.merge compare [ v ] t.free_pool
       end)
    vectors

let free_irq t ~vector = free_irqs t ~vectors:[| vector |]

let with_entry t ~vector what f =
  match Hashtbl.find_opt t.handlers vector with
  | Some e -> f e
  | None -> invalid_arg (Printf.sprintf "Irq.%s: vector %d not requested" what vector)

let set_affinity t ~vector ~cpu =
  if cpu < 0 || cpu >= Cpu.cores t.cpu then
    invalid_arg (Printf.sprintf "Irq.set_affinity: no such cpu %d" cpu);
  with_entry t ~vector "set_affinity" (fun e -> e.affinity <- cpu)

let affinity t ~vector =
  match Hashtbl.find_opt t.handlers vector with
  | Some e -> Some e.affinity
  | None -> None

let mask t ~vector = with_entry t ~vector "mask" (fun e -> e.masked <- true)
let unmask t ~vector = with_entry t ~vector "unmask" (fun e -> e.masked <- false)

let masked t ~vector =
  match Hashtbl.find_opt t.handlers vector with Some e -> e.masked | None -> false

let spurious_after_free_counter t source =
  match Hashtbl.find_opt t.spurious_bdf source with
  | Some c -> c
  | None ->
    let c =
      Sud_obs.Metrics.counter
        ~labels:[ "bdf", Bus.string_of_bdf source ]
        ~subsystem:"irq" ~name:"spurious_after_free" ()
    in
    Hashtbl.replace t.spurious_bdf source c;
    c

let spurious_after_free t ~source =
  Sud_obs.Metrics.get (spurious_after_free_counter t source)

let deliver t ~source ~vector =
  Sud_obs.Metrics.incr t.qm.qm_delivered;
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"irq" ~name:"deliver"
         ~attrs:[ "bdf", Bus.string_of_bdf source; "vector", string_of_int vector ]
         ());
  let model = Cpu.cost_model t.cpu in
  match Hashtbl.find_opt t.handlers vector with
  | None ->
    Sud_obs.Metrics.incr t.qm.qm_spurious;
    (* A flood on a vector that was freed is the signature of a device
       still raising interrupts after release — make it visible to the
       storm detector per offending device, not just in the log. *)
    if Hashtbl.mem t.freed vector then
      Sud_obs.Metrics.incr (spurious_after_free_counter t source);
    Klog.printk t.klog Klog.Warn "irq: spurious vector %d from %s" vector
      (Bus.string_of_bdf source)
  | Some entry when entry.masked ->
    (* Masked at the interrupt controller: the message dies here without
       touching the handler or its siblings. *)
    Sud_obs.Metrics.incr t.qm.qm_masked_dropped
  | Some entry ->
    (* Delivery cost lands on the vector's affine CPU's ledger. *)
    Cpu.account t.cpu
      ~label:(Printf.sprintf "kernel:irq:cpu%d" entry.affinity)
      model.Cost_model.irq_deliver_ns;
    entry.hits <- entry.hits + 1;
    (* Top halves run atomically: blocking inside one is a bug the
       preemption tracker will catch. *)
    Preempt.disable t.preempt;
    Fun.protect ~finally:(fun () -> Preempt.enable t.preempt) (fun () -> entry.fn ~source)

let count t ~vector =
  match Hashtbl.find_opt t.handlers vector with Some e -> e.hits | None -> 0

let metrics t = t.qm
let spurious t = Sud_obs.Metrics.get t.qm.qm_spurious
let total_delivered t = Sud_obs.Metrics.get t.qm.qm_delivered
