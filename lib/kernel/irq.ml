type handler = source:Bus.bdf -> unit

type entry = { hname : string; fn : handler; mutable hits : int }

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  preempt : Preempt.t;
  klog : Klog.t;
  handlers : (int, entry) Hashtbl.t;
  mutable next_vector : int;
  qm : metrics;
}
and metrics = {
  qm_delivered : Sud_obs.Metrics.counter;
  qm_spurious : Sud_obs.Metrics.counter;
}

let create eng cpu preempt klog =
  let c name = Sud_obs.Metrics.counter ~subsystem:"irq" ~name () in
  { eng;
    cpu;
    preempt;
    klog;
    handlers = Hashtbl.create 16;
    next_vector = 32;
    qm = { qm_delivered = c "delivered"; qm_spurious = c "spurious" } }

let alloc_vector t =
  let v = t.next_vector in
  t.next_vector <- t.next_vector + 1;
  v

let request_irq t ~vector ~name fn =
  if Hashtbl.mem t.handlers vector then
    Error (Printf.sprintf "vector %d already requested" vector)
  else begin
    Hashtbl.add t.handlers vector { hname = name; fn; hits = 0 };
    Ok ()
  end

let free_irq t ~vector = Hashtbl.remove t.handlers vector

let deliver t ~source ~vector =
  Sud_obs.Metrics.incr t.qm.qm_delivered;
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"irq" ~name:"deliver"
         ~attrs:[ "bdf", Bus.string_of_bdf source; "vector", string_of_int vector ]
         ());
  let model = Cpu.cost_model t.cpu in
  Cpu.account t.cpu ~label:"kernel:irq" model.Cost_model.irq_deliver_ns;
  match Hashtbl.find_opt t.handlers vector with
  | None ->
    Sud_obs.Metrics.incr t.qm.qm_spurious;
    Klog.printk t.klog Klog.Warn "irq: spurious vector %d from %s" vector
      (Bus.string_of_bdf source)
  | Some entry ->
    entry.hits <- entry.hits + 1;
    (* Top halves run atomically: blocking inside one is a bug the
       preemption tracker will catch. *)
    Preempt.disable t.preempt;
    Fun.protect ~finally:(fun () -> Preempt.enable t.preempt) (fun () -> entry.fn ~source)

let count t ~vector =
  match Hashtbl.find_opt t.handlers vector with Some e -> e.hits | None -> 0

let metrics t = t.qm
let spurious t = Sud_obs.Metrics.get t.qm.qm_spurious
let total_delivered t = Sud_obs.Metrics.get t.qm.qm_delivered
