(** The network stack: device registration, softirq receive processing,
    a firewall hook, UDP datagrams and a stream (TCP-lite) protocol.

    Receive path: drivers call [Netdev.netif_rx] from any context; frames
    land in a backlog and a softirq fiber does the real work — checksum
    verification (skipped when the SUD proxy already verified during its
    defensive copy), the firewall verdict, and socket delivery.  The
    stack is deliberately robust to driver misbehaviour: malformed
    frames, bad checksums and unexpected results are logged and dropped,
    never trusted (paper §3.1.1).

    The stream protocol is a simplified in-order TCP: MSS-sized segments,
    a fixed flow-control window with cumulative ACKs, SYN/FIN handshakes,
    no retransmission (the simulated medium does not lose frames).  It
    exists to drive the Figure 8 TCP_STREAM benchmark with realistic
    self-clocking against the driver's ring and the 1 Gb/s line rate. *)

type t

type verdict = Accept | Drop

val create :
  Engine.t -> Cpu.t -> Preempt.t -> Klog.t -> Process.table -> t

val register_netdev : t -> Netdev.t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val unregister_netdev : t -> Netdev.t -> unit
val find_netdev : t -> string -> Netdev.t option
val netdevs : t -> Netdev.t list

val ifconfig_up : t -> Netdev.t -> (unit, string) result
(** Bring the interface up ([ndo_open]).  Must run in a fiber; with a SUD
    proxy underneath this is an interruptible synchronous upcall, so a
    hung driver leaves it abortable with Ctrl-C rather than wedged. *)

val ifconfig_down : t -> Netdev.t -> unit

val dev_xmit : t -> Netdev.t -> Skbuff.t -> [ `Sent | `Dropped ]
(** Queue one fully-formed frame on a device, with Linux-style TX flow
    control.  Blocks (bounded) while the queue is stopped; after
    {!tx_retry_limit} fruitless rounds the frame is dropped and counted
    in {!tx_drops} — a dead driver no longer parks senders forever.  The
    supervisor uses this directly to replay its recovery backlog. *)

val tx_retry_limit : int

val tx_drops : t -> int
(** Frames dropped by {!dev_xmit} because the TX queue stayed stopped
    through the retry budget (or the wait was interrupted). *)

val dev_ioctl : t -> Netdev.t -> cmd:int -> arg:int -> (int, string) result

val set_firewall : t -> (Skbuff.t -> verdict) option -> unit
val firewall_drops : t -> int

val backlog_drops : t -> int
val csum_drops : t -> int

val frame_checksum_ok : bytes -> bool
(** Transport checksum verification as a pure function over frame bytes.
    The SUD proxy runs this over its private defensive copy (the fused
    copy+checksum pass, paper §3.1.2) and sets [csum_verified], so the
    verdict is TOCTOU-safe and the stack does not checksum twice.  Frames
    too short for a checksummed transport header pass here — the
    per-protocol length checks at delivery reject them. *)

(** {1 UDP} *)

type udp_socket

val udp_bind : t -> Netdev.t -> port:int -> udp_socket
(** Raises [Invalid_argument] if the port is taken on that device. *)

val udp_close : t -> udp_socket -> unit

val udp_sendto :
  t -> udp_socket -> dst:bytes -> dst_port:int -> bytes -> [ `Sent | `Dropped ]
(** Blocking (fiber) send; [`Dropped] when the device queue stayed full. *)

val udp_recv : t -> udp_socket -> (bytes * (bytes * int)) option
(** Blocks until a datagram arrives; [Some (payload, (src_mac, src_port))],
    or [None] if interrupted. *)

val udp_pending : udp_socket -> int

(** {1 Streams} *)

type stream

val stream_listen : t -> Netdev.t -> port:int -> stream
(** Passive open; blocks until a peer connects. *)

val stream_connect :
  t -> Netdev.t -> dst:bytes -> dst_port:int -> src_port:int -> (stream, string) result
(** Active open; blocks for the handshake (5 ms timeout). *)

val stream_send : t -> stream -> bytes -> (unit, string) result
(** Blocks while the flow-control window is full. *)

val stream_recv : t -> stream -> bytes option
(** In-order data; [None] once the peer has closed and the buffer is
    drained. *)

val stream_close : t -> stream -> unit
val stream_bytes_received : stream -> int

val mss : int
