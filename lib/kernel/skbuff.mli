(** Socket buffers and the internet checksum.

    An [Skbuff.t] carries frame bytes plus receive-path metadata.  The
    [csum_verified] flag mirrors Linux's CHECKSUM_UNNECESSARY: SUD's
    Ethernet proxy sets it after its fused defensive-copy-plus-checksum
    pass so the stack does not checksum twice (paper §3.1.2). *)

type t = {
  mutable data : bytes;
  mutable csum_verified : bool;
  mutable shared_with_driver : bool;
      (** true when [data] reflects memory a (possibly malicious) driver
          can still write — the TOCTOU hazard the defensive copy removes *)
  mutable refresh : (unit -> bytes) option;
      (** models data living in driver-shared memory: the stack re-reads
          through this at delivery time, after the firewall verdict.  A
          proxy doing the defensive copy leaves it [None]. *)
  mutable recycle : (unit -> unit) option;
      (** owner's end-of-life hook: the stack calls {!recycle} once the
          skb is fully processed (delivered or dropped), letting a proxy
          return the pooled defensive-copy buffer to its free list. *)
}

val of_bytes : bytes -> t
(** Fresh skb owning a private copy of nothing — wraps [data] directly. *)

val copy : t -> t
(** Deep copy; clears [shared_with_driver]. *)

val length : t -> int

val recycle : t -> unit
(** Run and clear the [recycle] hook (at most once; no-op when unset).
    Called by the stack when the skb's bytes are dead: after
    [process_frame] returns, or when the frame is dropped before
    reaching it. *)

val checksum : bytes -> int
(** 16-bit internet checksum over the whole buffer. *)

val checksum_sub : bytes -> off:int -> len:int -> int
(** Byte-pair reference implementation — the oracle the property tests
    compare the fast paths against. *)

val checksum_sub_words : bytes -> off:int -> len:int -> int
(** Word-at-a-time fold, bit-identical to {!checksum_sub} (RFC 1071
    §2(B): the ones'-complement sum is byte-order independent, so it
    accumulates little-endian 16-bit loads and swaps once at the end). *)

val copy_and_checksum : src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> int
(** Fused defensive-copy + checksum (paper §3.1.2): blit [len] bytes of
    the untrusted [src] into the private [dst], then fold the internet
    checksum over the {e copy} and return it.  The verdict is computed
    on the copied bytes, so a driver mutating [src] afterwards (TOCTOU)
    can change neither the delivered bytes nor the verdict. *)

module Mac : sig
  val broadcast : bytes
  val equal : bytes -> bytes -> bool
  val pp : Format.formatter -> bytes -> unit
  val of_string : string -> bytes
  (** Parse "aa:bb:cc:dd:ee:ff". *)
end
