(** The kernel block layer for sud-blk devices.

    A write-back page cache (4 KiB pages) over a plugged request queue
    with C-LOOK sorting, contiguous-write merging and a bounded
    dispatch window, feeding an attachable {e issuer} (the block proxy,
    or a native driver).

    Durability contract:
    - {!write} dirties cache pages and is {e not} durable;
    - {!fsync} returning [Ok] means every page dirtied before the call
      is on media (writeback, drain, then a Flush barrier);
    - {!write_fua} is write-through — durable when it returns.

    While no issuer is attached (driver restarting) requests park in
    the staging queue; {!attach} resumes dispatch, so callers above the
    cache never observe the recovery window. *)

val sector_size : int
val page_sectors : int
val page_size : int

type op = Read | Write | Flush

type request = {
  rq_op : op;
  rq_fua : bool;
  rq_lba : int;                      (** first sector *)
  rq_count : int;                    (** sectors *)
  rq_data : bytes;                   (** [count*512]; filled by the issuer on Read *)
  mutable rq_done : (status:int -> unit) option;
}

val complete : request -> status:int -> unit
(** Fire the completion exactly once ([status] 0 = success); later calls
    are ignored — a replayed request that was already acknowledged must
    not double-fire. *)

type t

val create :
  eng:Engine.t -> name:string -> ?queue_depth:int -> ?capacity:int -> unit -> t

val name : t -> string
val capacity : t -> int
(** In 512-byte sectors; 0 until a driver registers. *)

val set_capacity : t -> int -> unit

val attach : t -> (request -> unit) -> unit
(** Install the issuer and drain anything staged while detached. *)

val detach : t -> unit
val attached : t -> bool

val submit_bio : t -> request -> unit
(** Stage a raw request ("plugged"); {!unplug} sorts, merges and
    dispatches.  Most callers want the cache operations below. *)

val unplug : t -> unit

(** {2 Cache operations} — fiber-blocking, with an IO timeout. *)

val read :
  t -> ?timeout_ns:int -> lba:int -> sectors:int -> unit -> (bytes, string) result

val write : t -> ?timeout_ns:int -> lba:int -> bytes -> unit -> (unit, string) result

val fsync : t -> ?timeout_ns:int -> unit -> (unit, string) result
(** Write back the dirty set, wait, then a Flush barrier, wait. *)

val write_fua : t -> ?timeout_ns:int -> lba:int -> bytes -> unit -> (unit, string) result

(** {2 Introspection} *)

val dirty_pages : t -> int
val staged_requests : t -> int
val outstanding_requests : t -> int

val metrics : t -> int * int * int * int
(** (cache_hits, cache_misses, merges, flush_barriers). *)

(** {2 Registry} — the kernel's table of block devices. *)

type registry

val registry_create : unit -> registry
val register : registry -> t -> unit
val unregister : registry -> t -> unit
val find : registry -> string -> t option
val devices : registry -> t list
