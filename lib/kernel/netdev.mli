(** Network device objects — the kernel side of the paper's Figure 2 API.

    A driver (in-kernel or a SUD proxy standing in for a user-space one)
    registers a [Netdev.t] carrying its callbacks; the stack calls
    [ndo_start_xmit] to send and the driver calls {!netif_rx} to deliver.
    TX flow control mirrors Linux: the driver stops a queue when its
    ring is full and wakes it from the TX-completion interrupt.

    {b Multiqueue}: a device carries [tx_queues] independent TX queues
    (flow control, HARD_TX_LOCK and recovery backlog are all per queue);
    {!select_queue} applies the same {!Rss} flow hash the device model
    uses on RX, so a flow stays on one queue end to end and keeps its
    packet order. *)

type xmit_result = Xmit_ok | Xmit_busy

type ops = {
  ndo_open : unit -> (unit, string) result;
  ndo_stop : unit -> unit;
  ndo_start_xmit : queue:int -> Skbuff.t -> xmit_result;
  ndo_do_ioctl : cmd:int -> arg:int -> (int, string) result;
}

(** ioctl commands, SIOCGMIIREG-style *)

val ioctl_mii_status : int
val ioctl_link_speed : int

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_dropped : int;
  mutable rx_dropped : int;
}

type t

val create : name:string -> mac:bytes -> ops:ops -> ?tx_queues:int -> unit -> t
(** [tx_queues] defaults to 1. *)

val name : t -> string
val mac : t -> bytes
val set_mac : t -> bytes -> unit
val ops : t -> ops

val set_ops : t -> ops -> unit
(** Swap the driver callbacks.  Used by the supervisor to keep one netdev
    alive across driver generations: during recovery the ops point at the
    backlog, then at the fresh proxy once it registers. *)

val stats : t -> stats

val is_up : t -> bool
val set_up : t -> bool -> unit

val carrier : t -> bool
val netif_carrier_on : t -> unit
val netif_carrier_off : t -> unit

(** {1 Per-queue TX flow control} *)

val tx_queues : t -> int

val select_queue : t -> Skbuff.t -> int
(** The egress RSS hash: stable per flow, [0] on single-queue devices. *)

val subqueue_stopped : t -> queue:int -> bool
val netif_stop_subqueue : t -> queue:int -> unit
val netif_wake_subqueue : t -> queue:int -> unit
val netif_tx_stop_all_queues : t -> unit
val netif_tx_wake_all_queues : t -> unit

val tx_subqueue_waitq : t -> queue:int -> Sync.Waitq.t
(** Fibers blocked on that stopped queue; woken by
    {!netif_wake_subqueue}. *)

val tx_subqueue_lock : t -> queue:int -> Sync.Mutex.t
(** The per-queue HARD_TX_LOCK: serializes [ndo_start_xmit] on one queue
    — driver transmit paths are not reentrant per queue, but distinct
    queues run concurrently. *)

(** {1 Recovery backlog}

    While a supervised driver is down, its netdev degrades instead of
    vanishing: outbound frames are parked in a bounded per-queue FIFO
    and replayed to the fresh driver in per-queue order — combined with
    RSS queue selection that preserves per-flow packet order.
    Invariant: [offered = queued + dropped + replayed] at all times,
    both per queue and summed. *)

type backlog_stats = {
  bl_offered : int;   (** frames handed to the backlog since creation *)
  bl_queued : int;    (** currently parked *)
  bl_dropped : int;   (** rejected because the FIFO was full (or flushed) *)
  bl_replayed : int;  (** handed back for retransmission after recovery *)
}

val backlog_push : t -> queue:int -> limit:int -> Skbuff.t -> xmit_result
(** Park one frame on [queue]'s backlog (dropping and counting it if
    [limit] frames are already queued there).  Always returns
    [Xmit_ok]. *)

val backlog_pop : t -> queue:int -> Skbuff.t option
(** Pop [queue]'s oldest parked frame for replay, counting it as
    replayed. *)

val backlog_flush_drop : t -> int
(** Drop everything still parked on every queue (quarantine path);
    returns the count. *)

type metrics = {
  nm_bl_offered : Sud_obs.Metrics.counter;
  nm_bl_dropped : Sud_obs.Metrics.counter;
  nm_bl_replayed : Sud_obs.Metrics.counter;
  nm_bl_queued : Sud_obs.Metrics.gauge;   (** reads live queue lengths *)
}
(** Backlog accounting lives in the {!Sud_obs.Metrics} registry under
    subsystem ["netdev"]: device-level counters labelled [("dev", name)]
    (this record), plus per-queue [queue_backlog_*] counters additionally
    labelled [("queue", i)]. *)

val metrics : t -> metrics

val backlog_stats : t -> backlog_stats
  [@@deprecated "read the Sud_obs registry handles via Netdev.metrics instead"]

val netif_rx : t -> Skbuff.t -> unit
(** Hand a received frame to the stack (non-blocking; callable from atomic
    context).  Frames arriving before the device is registered are
    dropped. *)

val set_stack_rx : t -> (Skbuff.t -> unit) -> unit
(** Installed by the net stack at registration. *)

(** {1 Deprecated scalar shims (the queue-0 instances)} *)

val queue_stopped : t -> bool
  [@@deprecated "use Netdev.subqueue_stopped ~queue:0"]

val netif_stop_queue : t -> unit
  [@@deprecated "use Netdev.netif_stop_subqueue ~queue:0"]

val netif_wake_queue : t -> unit
  [@@deprecated "use Netdev.netif_wake_subqueue ~queue:0 (or netif_tx_wake_all_queues)"]

val tx_waitq : t -> Sync.Waitq.t
  [@@deprecated "use Netdev.tx_subqueue_waitq ~queue:0"]

val tx_lock : t -> Sync.Mutex.t
  [@@deprecated "use Netdev.tx_subqueue_lock ~queue:0"]

val backlog_xmit : t -> limit:int -> Skbuff.t -> xmit_result
  [@@deprecated "use Netdev.backlog_push ~queue:0"]

val backlog_take : t -> Skbuff.t option
  [@@deprecated "use Netdev.backlog_pop ~queue:0"]
