(** Network device objects — the kernel side of the paper's Figure 2 API.

    A driver (in-kernel or a SUD proxy standing in for a user-space one)
    registers a [Netdev.t] carrying its callbacks; the stack calls
    [ndo_start_xmit] to send and the driver calls {!netif_rx} to deliver.
    TX flow control mirrors Linux: the driver stops the queue when its
    ring is full and wakes it from the TX-completion interrupt. *)

type xmit_result = Xmit_ok | Xmit_busy

type ops = {
  ndo_open : unit -> (unit, string) result;
  ndo_stop : unit -> unit;
  ndo_start_xmit : Skbuff.t -> xmit_result;
  ndo_do_ioctl : cmd:int -> arg:int -> (int, string) result;
}

(** ioctl commands, SIOCGMIIREG-style *)

val ioctl_mii_status : int
val ioctl_link_speed : int

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_dropped : int;
  mutable rx_dropped : int;
}

type t

val create : name:string -> mac:bytes -> ops:ops -> t

val name : t -> string
val mac : t -> bytes
val set_mac : t -> bytes -> unit
val ops : t -> ops

val set_ops : t -> ops -> unit
(** Swap the driver callbacks.  Used by the supervisor to keep one netdev
    alive across driver generations: during recovery the ops point at the
    backlog, then at the fresh proxy once it registers. *)

val stats : t -> stats

val is_up : t -> bool
val set_up : t -> bool -> unit

val carrier : t -> bool
val netif_carrier_on : t -> unit
val netif_carrier_off : t -> unit

val queue_stopped : t -> bool
val netif_stop_queue : t -> unit
val netif_wake_queue : t -> unit
val tx_waitq : t -> Sync.Waitq.t
(** Fibers blocked on a stopped queue; woken by {!netif_wake_queue}. *)

val tx_lock : t -> Sync.Mutex.t
(** The HARD_TX_LOCK: serializes [ndo_start_xmit] — driver transmit paths
    are not reentrant. *)

(** {1 Recovery backlog}

    While a supervised driver is down, its netdev degrades instead of
    vanishing: outbound frames are parked in a bounded FIFO and replayed
    to the fresh driver.  Invariant: [offered = queued + dropped +
    replayed] at all times. *)

type backlog_stats = {
  bl_offered : int;   (** frames handed to the backlog since creation *)
  bl_queued : int;    (** currently parked *)
  bl_dropped : int;   (** rejected because the FIFO was full (or flushed) *)
  bl_replayed : int;  (** handed back for retransmission after recovery *)
}

val backlog_xmit : t -> limit:int -> Skbuff.t -> xmit_result
(** Park one frame (dropping and counting it if [limit] frames are
    already queued).  Always returns [Xmit_ok]. *)

val backlog_take : t -> Skbuff.t option
(** Pop the oldest parked frame for replay, counting it as replayed. *)

val backlog_flush_drop : t -> int
(** Drop everything still parked (quarantine path); returns the count. *)

type metrics = {
  nm_bl_offered : Sud_obs.Metrics.counter;
  nm_bl_dropped : Sud_obs.Metrics.counter;
  nm_bl_replayed : Sud_obs.Metrics.counter;
  nm_bl_queued : Sud_obs.Metrics.gauge;   (** reads [Queue.length] live *)
}
(** Backlog accounting lives in the {!Sud_obs.Metrics} registry under
    subsystem ["netdev"], labelled [("dev", name)]. *)

val metrics : t -> metrics

val backlog_stats : t -> backlog_stats
  [@@deprecated "read the Sud_obs registry handles via Netdev.metrics instead"]

val netif_rx : t -> Skbuff.t -> unit
(** Hand a received frame to the stack (non-blocking; callable from atomic
    context).  Frames arriving before the device is registered are
    dropped. *)

val set_stack_rx : t -> (Skbuff.t -> unit) -> unit
(** Installed by the net stack at registration. *)
