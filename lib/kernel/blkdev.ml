(* The kernel block layer for sud-blk devices: a write-back page cache
   with flush/FUA barriers on top of a plugged request queue that
   C-LOOK-sorts and merges contiguous writes before handing them to the
   attached issuer (the block proxy, or a native driver).

   Durability contract (what the soak oracle holds us to):
   - a plain [write] dirties cache pages and is {e not} durable;
   - [fsync] returning [Ok] means every page dirtied before the call is
     on media — it writes the dirty set back, waits, then sends a Flush
     barrier and waits for that too;
   - [write_fua] is a write-through: durable when it returns.

   The issuer is attachable/detachable at runtime: while detached
   (driver being restarted) requests park in the staging queue and
   dispatch resumes on re-attach, so the cache never observes the
   recovery window. *)

let sector_size = 512
let page_sectors = 8
let page_size = sector_size * page_sectors

let merge_cap = 64                   (* max sectors in one merged request *)
let default_queue_depth = 32

type op = Read | Write | Flush

type request = {
  rq_op : op;
  rq_fua : bool;
  rq_lba : int;                      (* first sector *)
  rq_count : int;                    (* sectors *)
  rq_data : bytes;                   (* count*512; filled by the issuer on Read *)
  mutable rq_done : (status:int -> unit) option;
}

(* First completion wins: a replayed request that was already acknowledged
   (e.g. its completion raced the crash) must not double-fire. *)
let complete r ~status =
  match r.rq_done with
  | Some f ->
    r.rq_done <- None;
    f ~status
  | None -> ()

type page = {
  pg_data : bytes;                   (* page_size *)
  mutable pg_dirty : bool;
  mutable pg_ver : int;              (* bumped per write; guards writeback races *)
}

type t = {
  eng : Engine.t;
  name : string;
  mutable capacity : int;            (* sectors; set when a driver registers *)
  queue_depth : int;
  cache : (int, page) Hashtbl.t;     (* page index -> page *)
  mutable issue : (request -> unit) option;
  mutable staging : request list;    (* reverse submission order *)
  mutable outstanding : int;
  mutable flush_pending : bool;      (* a Flush is dispatched: barrier *)
  mutable head_pos : int;            (* C-LOOK elevator position *)
  done_wait : Sync.Waitq.t;
  m_cache_hits : Sud_obs.Metrics.counter;
  m_cache_misses : Sud_obs.Metrics.counter;
  m_merges : Sud_obs.Metrics.counter;
  m_flushes : Sud_obs.Metrics.counter;
  m_fua : Sud_obs.Metrics.counter;
  m_reads : Sud_obs.Metrics.counter;
  m_writes : Sud_obs.Metrics.counter;
}

let create ~eng ~name ?(queue_depth = default_queue_depth) ?(capacity = 0) () =
  let t =
    { eng;
      name;
      capacity;
      queue_depth;
      cache = Hashtbl.create 256;
      issue = None;
      staging = [];
      outstanding = 0;
      flush_pending = false;
      head_pos = 0;
      done_wait = Sync.Waitq.create ();
      m_cache_hits =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"cache_hits" ();
      m_cache_misses =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"cache_misses" ();
      m_merges =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"request_merges" ();
      m_flushes =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"flush_barriers" ();
      m_fua =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"fua_writes" ();
      m_reads =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"reads_issued" ();
      m_writes =
        Sud_obs.Metrics.counter ~labels:[ "dev", name ] ~subsystem:"blk"
          ~name:"writes_issued" () }
  in
  ignore
    (Sud_obs.Metrics.gauge ~labels:[ "dev", name ] ~subsystem:"blk" ~name:"dirty_pages"
       (fun () ->
          Hashtbl.fold (fun _ pg n -> if pg.pg_dirty then n + 1 else n) t.cache 0)
     : Sud_obs.Metrics.gauge);
  t

let name t = t.name
let capacity t = t.capacity
let set_capacity t c = t.capacity <- c
let attached t = t.issue <> None

(* ---- request queue: plug, C-LOOK sort, merge, bounded dispatch ---- *)

(* C-LOOK: ascending from the elevator's position, then wrap to the
   lowest waiting sector.  Only reorders reads/writes; Flush barriers
   are never staged (fsync drains before sending one). *)
let clook_sort t reqs =
  let above, below = List.partition (fun r -> r.rq_lba >= t.head_pos) reqs in
  let cmp a b = compare a.rq_lba b.rq_lba in
  List.sort cmp above @ List.sort cmp below

(* Fuse physically contiguous same-direction neighbours into one request
   whose completion fans back out to the constituents. *)
let merge_pair t a b =
  Sud_obs.Metrics.incr t.m_merges;
  let data = Bytes.create ((a.rq_count + b.rq_count) * sector_size) in
  Bytes.blit a.rq_data 0 data 0 (Bytes.length a.rq_data);
  Bytes.blit b.rq_data 0 data (Bytes.length a.rq_data) (Bytes.length b.rq_data);
  let merged =
    { rq_op = a.rq_op;
      rq_fua = a.rq_fua;
      rq_lba = a.rq_lba;
      rq_count = a.rq_count + b.rq_count;
      rq_data = data;
      rq_done = None }
  in
  merged.rq_done <-
    Some
      (fun ~status ->
         if a.rq_op = Read && status = 0 then begin
           Bytes.blit merged.rq_data 0 a.rq_data 0 (Bytes.length a.rq_data);
           Bytes.blit merged.rq_data (Bytes.length a.rq_data) b.rq_data 0
             (Bytes.length b.rq_data)
         end;
         complete a ~status;
         complete b ~status);
  merged

let rec merge_run t = function
  | a :: b :: rest
    when a.rq_op = b.rq_op && a.rq_op <> Flush && a.rq_fua = b.rq_fua
         && a.rq_lba + a.rq_count = b.rq_lba
         && a.rq_count + b.rq_count <= merge_cap ->
    merge_run t (merge_pair t a b :: rest)
  | a :: rest -> a :: merge_run t rest
  | [] -> []

let rec dispatch t =
  match t.issue with
  | None -> ()
  | Some issue ->
    if (not t.flush_pending) && t.outstanding < t.queue_depth then begin
      match t.staging with
      | [] -> ()
      | r :: rest ->
        (* A Flush is a full barrier: it waits for the queue to drain and
           nothing dispatches past it until it completes. *)
        if r.rq_op = Flush && t.outstanding > 0 then ()
        else begin
          t.staging <- rest;
          t.outstanding <- t.outstanding + 1;
          if r.rq_op = Flush then t.flush_pending <- true
          else t.head_pos <- r.rq_lba + r.rq_count;
          (match r.rq_op with
           | Read -> Sud_obs.Metrics.incr t.m_reads
           | Write ->
             Sud_obs.Metrics.incr t.m_writes;
             if r.rq_fua then Sud_obs.Metrics.incr t.m_fua
           | Flush -> Sud_obs.Metrics.incr t.m_flushes);
          let inner = r.rq_done in
          r.rq_done <-
            Some
              (fun ~status ->
                 t.outstanding <- t.outstanding - 1;
                 if r.rq_op = Flush then t.flush_pending <- false;
                 (match inner with Some f -> f ~status | None -> ());
                 ignore (Sync.Waitq.broadcast t.done_wait : int);
                 dispatch t);
          issue r;
          dispatch t
        end
    end

let unplug t =
  let plugged = List.rev t.staging in
  let sortable = List.for_all (fun r -> r.rq_op <> Flush) plugged in
  t.staging <- (if sortable then merge_run t (clook_sort t plugged) else plugged);
  dispatch t

let submit_bio t r =
  t.staging <- r :: t.staging

let attach t issue =
  t.issue <- Some issue;
  unplug t

let detach t = t.issue <- None

(* ---- fiber-blocking waits ---- *)

let wait_until t ~timeout_ns cond =
  let deadline = Engine.now t.eng + timeout_ns in
  let rec loop () =
    if cond () then true
    else begin
      let left = deadline - Engine.now t.eng in
      if left <= 0 then false
      else
        match Sync.Waitq.wait_timeout t.eng t.done_wait left with
        | Fiber.Interrupted -> false
        | Fiber.Normal | Fiber.Timeout -> loop ()
    end
  in
  loop ()

let default_timeout_ns = 5_000_000_000

(* Submit a batch, unplug, wait for all to land. *)
let run_bios t ~timeout_ns reqs =
  let left = ref (List.length reqs) and failed = ref None in
  List.iter
    (fun r ->
       let inner = r.rq_done in
       r.rq_done <-
         Some
           (fun ~status ->
              decr left;
              if status <> 0 && !failed = None then failed := Some status;
              match inner with Some f -> f ~status | None -> ());
       submit_bio t r)
    reqs;
  unplug t;
  if not (wait_until t ~timeout_ns (fun () -> !left = 0)) then Error "block io timed out"
  else match !failed with
    | Some st -> Error (Printf.sprintf "block io failed (status %d)" st)
    | None -> Ok ()

(* ---- the write-back page cache ---- *)

let page_of t idx =
  match Hashtbl.find_opt t.cache idx with
  | Some pg ->
    Sud_obs.Metrics.incr t.m_cache_hits;
    Some pg
  | None ->
    Sud_obs.Metrics.incr t.m_cache_misses;
    None

let insert_page t idx data =
  let pg = { pg_data = data; pg_dirty = false; pg_ver = 0 } in
  Hashtbl.replace t.cache idx pg;
  pg

(* Pull a page from the device into the cache (read-modify-write miss). *)
let fill_page t ~timeout_ns idx =
  let data = Bytes.create page_size in
  let r =
    { rq_op = Read; rq_fua = false; rq_lba = idx * page_sectors;
      rq_count = page_sectors; rq_data = data; rq_done = None }
  in
  match run_bios t ~timeout_ns [ r ] with
  | Error e -> Error e
  | Ok () -> Ok (insert_page t idx data)

let check_range t ~lba ~sectors =
  if sectors <= 0 then Error "sector count must be positive"
  else if lba < 0 || (t.capacity > 0 && lba + sectors > t.capacity) then
    Error "out of range"
  else Ok ()

let read t ?(timeout_ns = default_timeout_ns) ~lba ~sectors () =
  match check_range t ~lba ~sectors with
  | Error e -> Error e
  | Ok () ->
    let out = Bytes.create (sectors * sector_size) in
    let rec go s =
      if s >= sectors then Ok out
      else begin
        let abs = lba + s in
        let idx = abs / page_sectors and off = abs mod page_sectors in
        let n = min (sectors - s) (page_sectors - off) in
        let copy pg =
          Bytes.blit pg.pg_data (off * sector_size) out (s * sector_size)
            (n * sector_size)
        in
        match page_of t idx with
        | Some pg ->
          copy pg;
          go (s + n)
        | None ->
          (match fill_page t ~timeout_ns idx with
           | Error e -> Error e
           | Ok pg ->
             copy pg;
             go (s + n))
      end
    in
    go 0

let write t ?(timeout_ns = default_timeout_ns) ~lba data () =
  let len = Bytes.length data in
  if len = 0 || len mod sector_size <> 0 then Error "write must be whole sectors"
  else begin
    let sectors = len / sector_size in
    match check_range t ~lba ~sectors with
    | Error e -> Error e
    | Ok () ->
      let rec go s =
        if s >= sectors then Ok ()
        else begin
          let abs = lba + s in
          let idx = abs / page_sectors and off = abs mod page_sectors in
          let n = min (sectors - s) (page_sectors - off) in
          let store pg =
            Bytes.blit data (s * sector_size) pg.pg_data (off * sector_size)
              (n * sector_size);
            pg.pg_dirty <- true;
            pg.pg_ver <- pg.pg_ver + 1;
            go (s + n)
          in
          if n = page_sectors then
            (* Full-page overwrite: no read-modify-write needed. *)
            store
              (match Hashtbl.find_opt t.cache idx with
               | Some pg -> pg
               | None -> insert_page t idx (Bytes.create page_size))
          else
            match page_of t idx with
            | Some pg -> store pg
            | None ->
              (match fill_page t ~timeout_ns idx with
               | Error e -> Error e
               | Ok pg -> store pg)
        end
      in
      go 0
  end

let write_bio_of_page idx pg =
  { rq_op = Write; rq_fua = false; rq_lba = idx * page_sectors;
    rq_count = page_sectors; rq_data = Bytes.copy pg.pg_data; rq_done = None }

let fsync t ?(timeout_ns = default_timeout_ns) () =
  let dirty =
    Hashtbl.fold (fun idx pg acc -> if pg.pg_dirty then (idx, pg, pg.pg_ver) :: acc else acc)
      t.cache []
    (* Writeback in page order, not hash order: bio submission order is
       visible to the device (and to schedule replay hashes). *)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let bios = List.map (fun (idx, pg, _) -> write_bio_of_page idx pg) dirty in
  match run_bios t ~timeout_ns bios with
  | Error e -> Error e
  | Ok () ->
    (* Clean only the pages nobody re-dirtied while writeback ran. *)
    List.iter
      (fun (_, pg, ver) -> if pg.pg_ver = ver then pg.pg_dirty <- false)
      dirty;
    let barrier =
      { rq_op = Flush; rq_fua = false; rq_lba = 0; rq_count = 0;
        rq_data = Bytes.empty; rq_done = None }
    in
    run_bios t ~timeout_ns [ barrier ]

(* Write-through: durable when it returns, no flush needed.  The cache is
   updated too so subsequent reads hit. *)
let write_fua t ?(timeout_ns = default_timeout_ns) ~lba data () =
  match write t ~timeout_ns ~lba data () with
  | Error e -> Error e
  | Ok () ->
    let sectors = Bytes.length data / sector_size in
    let r =
      { rq_op = Write; rq_fua = true; rq_lba = lba; rq_count = sectors;
        rq_data = Bytes.copy data; rq_done = None }
    in
    (match run_bios t ~timeout_ns [ r ] with
     | Error e -> Error e
     | Ok () ->
       (* Those sectors are durable; clean their pages if fully covered
          and unchanged since (conservative: only full-page spans). *)
       Ok ())

let dirty_pages t =
  Hashtbl.fold (fun _ pg n -> if pg.pg_dirty then n + 1 else n) t.cache 0

let staged_requests t = List.length t.staging
let outstanding_requests t = t.outstanding

let metrics t =
  ( Sud_obs.Metrics.get t.m_cache_hits,
    Sud_obs.Metrics.get t.m_cache_misses,
    Sud_obs.Metrics.get t.m_merges,
    Sud_obs.Metrics.get t.m_flushes )

(* ---- the kernel's block-device registry ---- *)

type registry = { mutable devs : (string * t) list }

let registry_create () = { devs = [] }

let register reg dev =
  reg.devs <- (name dev, dev) :: List.remove_assoc (name dev) reg.devs

let unregister reg dev = reg.devs <- List.remove_assoc (name dev) reg.devs
let find reg n = List.assoc_opt n reg.devs
let devices reg = List.map snd reg.devs
