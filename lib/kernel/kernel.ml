type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  mem : Phys_mem.t;
  iommu : Iommu.t;
  ioports : Ioport.t;
  topo : Pci_topology.t;
  irq : Irq.t;
  preempt : Preempt.t;
  net : Netstack.t;
  blk : Blkdev.registry;
  sysfs : Sysfs.t;
  klog : Klog.t;
  procs : Process.table;
}

let boot ?(cores = 2) ?(mem_size = 256 * 1024 * 1024)
    ?(iommu_mode = Iommu.Intel_vtd { interrupt_remapping = false })
    ?(cost_model = Cost_model.default) ?(enable_acs = true) eng =
  let cpu = Cpu.create eng ~cores cost_model in
  let mem = Phys_mem.create ~size:mem_size in
  let iommu = Iommu.create ~mode:iommu_mode () in
  let ioports = Ioport.create () in
  let topo = Pci_topology.create ~mem ~iommu ~ioports () in
  let klog = Klog.create eng in
  let preempt = Preempt.create () in
  let irq = Irq.create eng cpu preempt klog in
  let procs = Process.create_table eng in
  let net = Netstack.create eng cpu preempt klog procs in
  let blk = Blkdev.registry_create () in
  let sysfs = Sysfs.create () in
  Pci_topology.set_msi_sink topo (fun ~source ~vector -> Irq.deliver irq ~source ~vector);
  (* DMA translation is device-side work: account it against utilization
     without blocking any fiber (devices run in pure event callbacks). *)
  Pci_topology.set_dma_charge topo (fun how ->
      let ns =
        match how with
        | `Hit -> cost_model.Cost_model.iotlb_hit_ns
        | `Walk -> cost_model.Cost_model.iommu_walk_ns
        | `Bypass -> 0
      in
      if ns > 0 then Cpu.account cpu ~label:"hw:iommu" ns);
  if enable_acs then Pci_topology.enable_acs_everywhere topo;
  (* Observability: spans are stamped with simulated time, and the
     registry is browsable through sysfs like /sys/kernel/* files. *)
  Sud_obs.Trace.set_clock (fun () -> Engine.now eng);
  Sysfs.register_file sysfs ~path:"/sys/kernel/sud_metrics" ~read:(fun () ->
      Sud_obs.Metrics.render_table (Sud_obs.Metrics.snapshot ()));
  Sysfs.register_file sysfs ~path:"/sys/kernel/sud_metrics.json" ~read:(fun () ->
      Sud_obs.Metrics.to_json (Sud_obs.Metrics.snapshot ()));
  Klog.printk klog Klog.Info "kernel: booted with %d cores, %d MiB RAM" cores
    (mem_size / 1024 / 1024);
  { eng; cpu; mem; iommu; ioports; topo; irq; preempt; net; blk; sysfs; klog; procs }

let attach_pci t ?switch dev =
  let sw = match switch with Some s -> s | None -> Pci_topology.root_switch t.topo in
  (* A newly created switch post-boot must still honour the ACS policy. *)
  let bdf = Pci_topology.attach t.topo ~switch:sw dev in
  let cfg = Device.cfg dev in
  let vendor = Pci_cfg.read cfg ~off:Pci_cfg.vendor_id ~size:2 in
  let device = Pci_cfg.read cfg ~off:Pci_cfg.device_id ~size:2 in
  let class_code = Pci_cfg.read cfg ~off:Pci_cfg.class_code ~size:1 lsl 16 in
  ignore (Sysfs.add_pci_device t.sysfs ~bdf ~vendor ~device ~class_code : Sysfs.entry);
  Klog.printk t.klog Klog.Info "pci: %s %04x:%04x at %s" (Device.name dev) vendor device
    (Bus.string_of_bdf bdf);
  bdf

let run ?ms t =
  match ms with
  | None -> Engine.run t.eng
  | Some ms -> Engine.run ~max_time:(Engine.now t.eng + (ms * 1_000_000)) t.eng

let uptime_ns t = Engine.now t.eng
