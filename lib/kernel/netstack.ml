type verdict = Accept | Drop

let mss = 1448
let stream_window = 131072
let backlog_capacity = 1024
let socket_buffer = 512

(* Wire format, after the 14-byte Ethernet header (ethertype 0x0800):
   UDP   : [1][sport:2][dport:2][len:2][csum:2][payload]
   stream: [2][sport:2][dport:2][seq:4][ack:4][flags:1][len:2][csum:2][payload] *)
let proto_udp = 1
let proto_stream = 2
let eth_hdr = 14
let udp_hdr = 9
let stream_hdr = 18

let flag_syn = 1
let flag_ack = 2
let flag_fin = 4
let flag_data = 8

type udp_socket = {
  udev : Netdev.t;
  uport : int;
  urx : (bytes * (bytes * int)) Queue.t;
  uwait : Sync.Waitq.t;
  mutable uclosed : bool;
}

type stream_state = Listen | Syn_sent | Established | Closed

type stream = {
  sdev : Netdev.t;
  lport : int;
  mutable rmac : bytes;
  mutable rport : int;
  mutable state : stream_state;
  mutable snd_next : int;
  mutable snd_una : int;
  mutable rcv_next : int;
  rx_data : bytes Queue.t;
  rx_wait : Sync.Waitq.t;
  snd_wait : Sync.Waitq.t;
  conn_wait : Sync.Waitq.t;
  mutable segs_unacked : int;
  mutable fin_received : bool;
  mutable bytes_rcvd : int;
}

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  preempt : Preempt.t;
  klog : Klog.t;
  procs : Process.table;
  mutable devs : Netdev.t list;
  (* One softirq backlog + service fiber per sim CPU (RPS): frames are
     steered by the RSS flow hash, so one flow's frames stay in order on
     one backlog while distinct flows spread over the cores. *)
  backlogs : (Netdev.t * Skbuff.t) Sync.Mailbox.t array;
  udp_socks : (string * int, udp_socket) Hashtbl.t;
  streams : (string * int, stream) Hashtbl.t;
  mutable firewall : (Skbuff.t -> verdict) option;
  mutable fw_drops : int;
  mutable bl_drops : int;
  mutable cs_drops : int;
  mutable tx_drops : int;
}

let model t = Cpu.cost_model t.cpu

let label t =
  "proc:" ^ Process.name (Process.current t.procs)

let consume t ns = Cpu.consume t.cpu ~label:(label t) ns

(* Charge the cost of having been woken from sleep — the ~4us the paper
   blames for UDP_RR's 2x CPU overhead shows up through here.  Waking a
   task that only just blocked (same scheduling instant) is a cheap
   runqueue operation, so short "sleeps" are free. *)
let wakeup_epsilon_ns = 2_000

let charge_wakeup_since t ~since =
  if Engine.now t.eng - since > wakeup_epsilon_ns then
    consume t (model t).Cost_model.wakeup_ns

(* ---- transmit ---- *)

let build_frame ~dst ~src ~payload =
  let b = Bytes.create (eth_hdr + Bytes.length payload) in
  Bytes.blit dst 0 b 0 6;
  Bytes.blit src 0 b 6 6;
  Bytes.set_uint16_be b 12 0x0800;
  Bytes.blit payload 0 b eth_hdr (Bytes.length payload);
  b

(* Blocking xmit with Linux-style queue flow control.  Retries are
   bounded: a queue that stays stopped — a dead or wedged driver never
   waking it — used to park the sender in a silent infinite retry loop.
   Now the packet is dropped and counted after [tx_retry_limit] rounds.
   The drop path deliberately charges no wakeup: a sender whose packet
   went nowhere is not billed the scheduling latency of a delivery. *)
let tx_retry_limit = 64

let dev_xmit t dev skb =
  let drop () =
    t.tx_drops <- t.tx_drops + 1;
    let stats = Netdev.stats dev in
    stats.Netdev.tx_dropped <- stats.Netdev.tx_dropped + 1;
    `Dropped
  in
  (* RSS on egress: the flow hash picks the queue, so one flow's frames
     stay ordered on one queue while flows spread over the queues. *)
  let queue = Netdev.select_queue dev skb in
  let rec go ~retries ~slept =
    if Netdev.subqueue_stopped dev ~queue then begin
      Preempt.assert_may_sleep t.preempt "dev_xmit";
      if retries >= tx_retry_limit then drop ()
      else begin
        let since = Engine.now t.eng in
        match
          Sync.Waitq.wait_timeout t.eng (Netdev.tx_subqueue_waitq dev ~queue) 10_000_000
        with
        | Fiber.Interrupted -> drop ()
        | Fiber.Normal ->
          go ~retries:(retries + 1)
            ~slept:(match slept with None -> Some since | s -> s)
        | Fiber.Timeout -> go ~retries:(retries + 1) ~slept
      end
    end
    else begin
      let stats = Netdev.stats dev in
      (* HARD_TX_LOCK, per queue: one queue's transmit path is not
         reentrant, but sibling queues transmit concurrently. *)
      let r =
        Sync.Mutex.with_lock (Netdev.tx_subqueue_lock dev ~queue) (fun () ->
            (Netdev.ops dev).Netdev.ndo_start_xmit ~queue skb)
      in
      match r with
      | Netdev.Xmit_ok ->
        (match slept with Some since -> charge_wakeup_since t ~since | None -> ());
        stats.Netdev.tx_packets <- stats.Netdev.tx_packets + 1;
        stats.Netdev.tx_bytes <- stats.Netdev.tx_bytes + Skbuff.length skb;
        `Sent
      | Netdev.Xmit_busy ->
        if retries >= tx_retry_limit then drop ()
        else begin
          Netdev.netif_stop_subqueue dev ~queue;
          go ~retries:(retries + 1) ~slept
        end
    end
  in
  go ~retries:0 ~slept:None

(* ---- receive processing (softirq) ---- *)

let udp_deliver t dev ~src_mac payload =
  if Bytes.length payload >= udp_hdr then begin
    let sport = Bytes.get_uint16_be payload 1 in
    let dport = Bytes.get_uint16_be payload 3 in
    let len = Bytes.get_uint16_be payload 5 in
    if udp_hdr + len <= Bytes.length payload then begin
      match Hashtbl.find_opt t.udp_socks (Netdev.name dev, dport) with
      | Some sock when not sock.uclosed ->
        if Queue.length sock.urx < socket_buffer then begin
          (* Copy out of the skb at delivery time: this read is the second
             access a TOCTOU-mutating driver hopes to poison. *)
          let data = Bytes.sub payload udp_hdr len in
          Queue.push (data, (src_mac, sport)) sock.urx;
          ignore (Sync.Waitq.signal sock.uwait : bool)
        end
        else begin
          let stats = Netdev.stats dev in
          stats.Netdev.rx_dropped <- stats.Netdev.rx_dropped + 1
        end
      | Some _ | None ->
        let stats = Netdev.stats dev in
        stats.Netdev.rx_dropped <- stats.Netdev.rx_dropped + 1
    end
  end

let stream_send_segment t st ~flags ~payload =
  let p = Bytes.create (stream_hdr + Bytes.length payload) in
  Bytes.set p 0 (Char.chr proto_stream);
  Bytes.set_uint16_be p 1 st.lport;
  Bytes.set_uint16_be p 3 st.rport;
  Bytes.set_int32_be p 5 (Int32.of_int st.snd_next);
  Bytes.set_int32_be p 9 (Int32.of_int st.rcv_next);
  Bytes.set p 13 (Char.chr flags);
  Bytes.set_uint16_be p 14 (Bytes.length payload);
  Bytes.set_uint16_be p 16 (Skbuff.checksum payload);
  Bytes.blit payload 0 p stream_hdr (Bytes.length payload);
  let frame = build_frame ~dst:st.rmac ~src:(Netdev.mac st.sdev) ~payload:p in
  consume t (model t).Cost_model.netstack_tx_ns;
  ignore (dev_xmit t st.sdev (Skbuff.of_bytes frame) : [ `Sent | `Dropped ])

let stream_deliver t dev ~src_mac payload =
  if Bytes.length payload >= stream_hdr then begin
    let sport = Bytes.get_uint16_be payload 1 in
    let dport = Bytes.get_uint16_be payload 3 in
    let seq = Int32.to_int (Bytes.get_int32_be payload 5) in
    let ack = Int32.to_int (Bytes.get_int32_be payload 9) in
    let flags = Char.code (Bytes.get payload 13) in
    let len = Bytes.get_uint16_be payload 14 in
    match Hashtbl.find_opt t.streams (Netdev.name dev, dport) with
    | None -> ()
    | Some st ->
      if flags land flag_syn <> 0 && flags land flag_ack = 0 && st.state = Listen then begin
        (* passive open *)
        st.rmac <- Bytes.copy src_mac;
        st.rport <- sport;
        st.rcv_next <- seq + 1;
        st.state <- Established;
        stream_send_segment t st ~flags:(flag_syn lor flag_ack) ~payload:Bytes.empty;
        ignore (Sync.Waitq.broadcast st.conn_wait : int)
      end
      else if flags land flag_syn <> 0 && flags land flag_ack <> 0 && st.state = Syn_sent then begin
        st.rcv_next <- seq + 1;
        st.snd_una <- max st.snd_una ack;
        st.state <- Established;
        stream_send_segment t st ~flags:flag_ack ~payload:Bytes.empty;
        ignore (Sync.Waitq.broadcast st.conn_wait : int)
      end
      else begin
        if flags land flag_ack <> 0 && ack > st.snd_una then begin
          st.snd_una <- ack;
          ignore (Sync.Waitq.broadcast st.snd_wait : int)
        end;
        if flags land flag_data <> 0 && len > 0 && stream_hdr + len <= Bytes.length payload then begin
          if seq = st.rcv_next then begin
            let data = Bytes.sub payload stream_hdr len in
            st.rcv_next <- st.rcv_next + len;
            st.bytes_rcvd <- st.bytes_rcvd + len;
            Queue.push data st.rx_data;
            ignore (Sync.Waitq.signal st.rx_wait : bool);
            st.segs_unacked <- st.segs_unacked + 1;
            if st.segs_unacked >= 2 then begin
              st.segs_unacked <- 0;
              stream_send_segment t st ~flags:flag_ack ~payload:Bytes.empty
            end
          end
          (* out-of-order: the simulated medium is FIFO, so this only
             happens with a misbehaving driver — drop, do not trust. *)
        end;
        if flags land flag_fin <> 0 then begin
          st.fin_received <- true;
          st.segs_unacked <- 0;
          st.rcv_next <- st.rcv_next + 1;
          stream_send_segment t st ~flags:flag_ack ~payload:Bytes.empty;
          ignore (Sync.Waitq.broadcast st.rx_wait : int)
        end
      end
  end

(* Transport checksum verification as a pure function over frame bytes,
   shared between the stack's own verify pass below and the SUD proxy's
   fused defensive-copy+checksum pass (which runs it on the private copy
   and sets [csum_verified] so the stack doesn't pay twice).  Frames too
   short to carry a checksummed transport header are "ok" here — the
   per-protocol length checks at delivery reject them. *)
let frame_checksum_ok frame =
  let n = Bytes.length frame in
  if n < eth_hdr + 1 then true
  else begin
    let payload_len = n - eth_hdr in
    let proto = Char.code (Bytes.get frame eth_hdr) in
    if proto = proto_udp && payload_len >= udp_hdr then begin
      let len = Bytes.get_uint16_be frame (eth_hdr + 5) in
      let stored = Bytes.get_uint16_be frame (eth_hdr + 7) in
      udp_hdr + len > payload_len
      || stored = Skbuff.checksum_sub_words frame ~off:(eth_hdr + udp_hdr) ~len
    end
    else if proto = proto_stream && payload_len >= stream_hdr then begin
      let len = Bytes.get_uint16_be frame (eth_hdr + 14) in
      let stored = Bytes.get_uint16_be frame (eth_hdr + 16) in
      stream_hdr + len > payload_len
      || stored = Skbuff.checksum_sub_words frame ~off:(eth_hdr + stream_hdr) ~len
    end
    else true
  end

let process_frame t dev skb =
  let m = model t in
  consume t m.Cost_model.netstack_rx_ns;
  let frame = skb.Skbuff.data in
  if Bytes.length frame >= eth_hdr + 1 then begin
    let dst = Bytes.sub frame 0 6 in
    if Skbuff.Mac.equal dst (Netdev.mac dev) || Skbuff.Mac.equal dst Skbuff.Mac.broadcast then begin
      let payload_len = Bytes.length frame - eth_hdr in
      let proto = Char.code (Bytes.get frame eth_hdr) in
      (* Checksum verification, unless the SUD proxy already verified the
         frame during its fused defensive-copy+checksum pass. *)
      let csum_ok =
        if skb.Skbuff.csum_verified then true
        else begin
          consume t (Cost_model.checksum_cost m ~bytes:payload_len);
          frame_checksum_ok frame
        end
      in
      if not csum_ok then begin
        t.cs_drops <- t.cs_drops + 1;
        Klog.printk t.klog Klog.Warn "net: %s: bad checksum, dropping frame" (Netdev.name dev)
      end
      else begin
        let fw_verdict = match t.firewall with None -> Accept | Some fw -> fw skb in
        match fw_verdict with
        | Drop ->
          t.fw_drops <- t.fw_drops + 1
        | Accept ->
          (* Protocol processing cost after the verdict; a driver that can
             still write this skb's buffer gets its TOCTOU window here. *)
          consume t (Cost_model.copy_cost m ~bytes:payload_len);
          (* Data living in driver-shared memory is re-read here, after the
             firewall verdict — the second access a TOCTOU attack poisons.
             A proxy doing the defensive copy leaves [refresh] unset. *)
          (match skb.Skbuff.refresh with
           | Some fetch ->
             let fresh = fetch () in
             if Bytes.length fresh = Bytes.length skb.Skbuff.data then
               skb.Skbuff.data <- fresh
           | None -> ());
          let frame = skb.Skbuff.data in
          let stats = Netdev.stats dev in
          stats.Netdev.rx_packets <- stats.Netdev.rx_packets + 1;
          stats.Netdev.rx_bytes <- stats.Netdev.rx_bytes + Bytes.length frame;
          let payload = Bytes.sub frame eth_hdr payload_len in
          let src_mac = Bytes.sub frame 6 6 in
          if proto = proto_udp then udp_deliver t dev ~src_mac payload
          else if proto = proto_stream then stream_deliver t dev ~src_mac payload
          else
            Klog.printk t.klog Klog.Info "net: %s: unknown protocol %d" (Netdev.name dev) proto
      end
    end
  end
  else Klog.printk t.klog Klog.Warn "net: %s: runt frame from driver" (Netdev.name dev)

let create eng cpu preempt klog procs =
  let t =
    { eng;
      cpu;
      preempt;
      klog;
      procs;
      devs = [];
      backlogs =
        Array.init (Cpu.cores cpu) (fun _ ->
            Sync.Mailbox.create ~capacity:backlog_capacity);
      udp_socks = Hashtbl.create 16;
      streams = Hashtbl.create 16;
      firewall = None;
      fw_drops = 0;
      bl_drops = 0;
      cs_drops = 0;
      tx_drops = 0 }
  in
  let kernel = Process.kernel_process procs in
  Array.iteri
    (fun i backlog ->
       ignore
         (Process.spawn_fiber kernel ~name:(Printf.sprintf "net-softirq:%d" i) (fun () ->
              let handle (dev, skb) =
                process_frame t dev skb;
                (* Delivery copied what it needed; the (possibly pooled)
                   defensive-copy buffer goes back to its owner. *)
                Skbuff.recycle skb
              in
              (* Drain the backlog without sleeping between frames: a burst
                 pays softirq entry once, then only per-frame costs. *)
              let rec drain () =
                match Sync.Mailbox.try_recv backlog with
                | None -> ()
                | Some item -> handle item; drain ()
              in
              let rec loop () =
                match Sync.Mailbox.recv backlog with
                | `Interrupted -> loop ()
                | `Ok item ->
                  (* Waking into softirq context has a fixed cost (scheduling
                     the ksoftirqd-style service, cold caches, local_bh
                     bookkeeping).  Frames that arrive while the burst is
                     still draining share it — this is the stack-side saving
                     that NAPI-style interrupt coalescing exists to buy. *)
                  consume t (model t).Cost_model.softirq_entry_ns;
                  handle item;
                  drain ();
                  loop ()
              in
              loop ())
          : Fiber.t))
    t.backlogs;
  t

let register_netdev t dev =
  if List.exists (fun d -> Netdev.name d = Netdev.name dev) t.devs then
    invalid_arg ("Netstack.register_netdev: duplicate " ^ Netdev.name dev);
  t.devs <- dev :: t.devs;
  Netdev.set_stack_rx dev (fun skb ->
      let cpu = Rss.queue_for ~queues:(Array.length t.backlogs) skb.Skbuff.data in
      if not (Sync.Mailbox.try_send t.backlogs.(cpu) (dev, skb)) then begin
        t.bl_drops <- t.bl_drops + 1;
        let stats = Netdev.stats dev in
        stats.Netdev.rx_dropped <- stats.Netdev.rx_dropped + 1;
        Skbuff.recycle skb
      end);
  Klog.printk t.klog Klog.Info "net: registered %s" (Netdev.name dev)

let unregister_netdev t dev =
  t.devs <- List.filter (fun d -> d != dev) t.devs;
  Netdev.set_stack_rx dev (fun _ -> ());
  Klog.printk t.klog Klog.Info "net: unregistered %s" (Netdev.name dev)

let find_netdev t name = List.find_opt (fun d -> Netdev.name d = name) t.devs
let netdevs t = List.rev t.devs

let ifconfig_up t dev =
  Preempt.assert_may_sleep t.preempt "ifconfig_up";
  match (Netdev.ops dev).Netdev.ndo_open () with
  | Ok () ->
    Netdev.set_up dev true;
    Klog.printk t.klog Klog.Info "net: %s up" (Netdev.name dev);
    Ok ()
  | Error e ->
    Klog.printk t.klog Klog.Warn "net: %s failed to open: %s" (Netdev.name dev) e;
    Error e

let ifconfig_down t dev =
  (Netdev.ops dev).Netdev.ndo_stop ();
  Netdev.set_up dev false;
  Klog.printk t.klog Klog.Info "net: %s down" (Netdev.name dev)

let dev_ioctl t dev ~cmd ~arg =
  Preempt.assert_may_sleep t.preempt "dev_ioctl";
  (Netdev.ops dev).Netdev.ndo_do_ioctl ~cmd ~arg

let set_firewall t fw = t.firewall <- fw
let firewall_drops t = t.fw_drops
let backlog_drops t = t.bl_drops
let csum_drops t = t.cs_drops
let tx_drops t = t.tx_drops

(* ---- UDP API ---- *)

let udp_bind t dev ~port =
  let key = (Netdev.name dev, port) in
  if Hashtbl.mem t.udp_socks key then invalid_arg "udp_bind: port in use";
  let sock = { udev = dev; uport = port; urx = Queue.create (); uwait = Sync.Waitq.create (); uclosed = false } in
  Hashtbl.add t.udp_socks key sock;
  sock

let udp_close t sock =
  sock.uclosed <- true;
  Hashtbl.remove t.udp_socks (Netdev.name sock.udev, sock.uport)

let udp_sendto t sock ~dst ~dst_port data =
  let m = model t in
  consume t m.Cost_model.syscall_ns;
  consume t m.Cost_model.netstack_tx_ns;
  consume t (Cost_model.checksum_cost m ~bytes:(Bytes.length data));
  let p = Bytes.create (udp_hdr + Bytes.length data) in
  Bytes.set p 0 (Char.chr proto_udp);
  Bytes.set_uint16_be p 1 sock.uport;
  Bytes.set_uint16_be p 3 dst_port;
  Bytes.set_uint16_be p 5 (Bytes.length data);
  Bytes.set_uint16_be p 7 (Skbuff.checksum data);
  Bytes.blit data 0 p udp_hdr (Bytes.length data);
  let frame = build_frame ~dst ~src:(Netdev.mac sock.udev) ~payload:p in
  dev_xmit t sock.udev (Skbuff.of_bytes frame)

let rec udp_recv_inner t sock =
  match Queue.take_opt sock.urx with
  | Some x -> Some x
  | None ->
    let since = Engine.now t.eng in
    (match Sync.Waitq.wait sock.uwait with
     | Fiber.Interrupted -> None
     | Fiber.Normal | Fiber.Timeout ->
       charge_wakeup_since t ~since;
       udp_recv_inner t sock)

let udp_recv t sock =
  consume t (model t).Cost_model.syscall_ns;
  udp_recv_inner t sock

let udp_pending sock = Queue.length sock.urx

(* ---- stream API ---- *)

let fresh_stream dev ~port =
  { sdev = dev;
    lport = port;
    rmac = Bytes.make 6 '\000';
    rport = 0;
    state = Listen;
    snd_next = 0;
    snd_una = 0;
    rcv_next = 0;
    rx_data = Queue.create ();
    rx_wait = Sync.Waitq.create ();
    snd_wait = Sync.Waitq.create ();
    conn_wait = Sync.Waitq.create ();
    segs_unacked = 0;
    fin_received = false;
    bytes_rcvd = 0 }

let stream_listen t dev ~port =
  let key = (Netdev.name dev, port) in
  if Hashtbl.mem t.streams key then invalid_arg "stream_listen: port in use";
  let st = fresh_stream dev ~port in
  Hashtbl.add t.streams key st;
  while st.state <> Established do
    ignore (Sync.Waitq.wait st.conn_wait : Fiber.wake)
  done;
  st

let stream_connect t dev ~dst ~dst_port ~src_port =
  let key = (Netdev.name dev, src_port) in
  if Hashtbl.mem t.streams key then invalid_arg "stream_connect: port in use";
  let st = fresh_stream dev ~port:src_port in
  st.rmac <- Bytes.copy dst;
  st.rport <- dst_port;
  st.state <- Syn_sent;
  Hashtbl.add t.streams key st;
  stream_send_segment t st ~flags:flag_syn ~payload:Bytes.empty;
  st.snd_next <- st.snd_next + 1;
  let deadline = Engine.now t.eng + 5_000_000 in
  let rec wait () =
    if st.state = Established then Ok st
    else if Engine.now t.eng >= deadline then Error "connect: timed out"
    else
      match Sync.Waitq.wait_timeout t.eng st.conn_wait (deadline - Engine.now t.eng) with
      | Fiber.Interrupted -> Error "connect: interrupted"
      | Fiber.Normal | Fiber.Timeout -> wait ()
  in
  let r = wait () in
  (match r with Error _ -> Hashtbl.remove t.streams key | Ok _ -> ());
  r

let stream_send t st data =
  if st.state <> Established then Error "stream_send: not connected"
  else begin
    let n = Bytes.length data in
    let off = ref 0 in
    let err = ref None in
    while !off < n && !err = None do
      let chunk = min mss (n - !off) in
      (* Flow control: block while a full window is in flight. *)
      while st.snd_next - st.snd_una + chunk > stream_window && st.state = Established do
        Preempt.assert_may_sleep t.preempt "stream_send";
        let since = Engine.now t.eng in
        (match Sync.Waitq.wait st.snd_wait with
         | Fiber.Interrupted -> err := Some "interrupted"
         | Fiber.Normal | Fiber.Timeout -> charge_wakeup_since t ~since)
      done;
      if !err = None then begin
        stream_send_segment t st ~flags:(flag_data lor flag_ack)
          ~payload:(Bytes.sub data !off chunk);
        st.snd_next <- st.snd_next + chunk;
        off := !off + chunk
      end
    done;
    match !err with None -> Ok () | Some e -> Error e
  end

let rec stream_recv t st =
  match Queue.take_opt st.rx_data with
  | Some x -> Some x
  | None ->
    if st.fin_received || st.state = Closed then None
    else begin
      let since = Engine.now t.eng in
      match Sync.Waitq.wait st.rx_wait with
      | Fiber.Interrupted -> None
      | Fiber.Normal | Fiber.Timeout ->
        charge_wakeup_since t ~since;
        stream_recv t st
    end

let stream_close t st =
  if st.state = Established then begin
    stream_send_segment t st ~flags:(flag_fin lor flag_ack) ~payload:Bytes.empty;
    st.snd_next <- st.snd_next + 1
  end;
  st.state <- Closed;
  Hashtbl.remove t.streams (Netdev.name st.sdev, st.lport);
  ignore (Sync.Waitq.broadcast st.rx_wait : int)

let stream_bytes_received st = st.bytes_rcvd
