type entry = {
  path : string;
  bdf : Bus.bdf;
  vendor : int;
  device : int;
  class_code : int;
  mutable attrs : (string * string) list;
}

type t = {
  mutable items : entry list;
  mutable files : (string * (unit -> string)) list;  (* virtual read-only nodes *)
}

let create () = { items = []; files = [] }

let register_file t ~path ~read =
  t.files <- (path, read) :: List.remove_assoc path t.files

let read_file t ~path = Option.map (fun read -> read ()) (List.assoc_opt path t.files)

let files t = List.rev_map fst t.files

let add_pci_device t ~bdf ~vendor ~device ~class_code =
  let path = Printf.sprintf "/sys/devices/pci0000:00/0000:%s" (Bus.string_of_bdf bdf) in
  let e = { path; bdf; vendor; device; class_code; attrs = [] } in
  t.items <- e :: t.items;
  e

let remove t ~bdf = t.items <- List.filter (fun e -> e.bdf <> bdf) t.items

let entries t = List.rev t.items
let find_bdf t bdf = List.find_opt (fun e -> e.bdf = bdf) t.items

let match_ids t ~ids =
  List.filter (fun e -> List.mem (e.vendor, e.device) ids) (entries t)

let set_attr e k v = e.attrs <- (k, v) :: List.remove_assoc k e.attrs
let attr e k = List.assoc_opt k e.attrs
