(** The composed machine + kernel: one value holding the simulation
    engine, CPU pool, physical memory, PCIe fabric, IOMMU, interrupt
    layer, network stack, process table, sysfs and the kernel log.

    [boot] wires everything the way SUD expects: the topology's MSI sink
    feeds the IRQ layer, and ACS is enabled on every switch. *)

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  mem : Phys_mem.t;
  iommu : Iommu.t;
  ioports : Ioport.t;
  topo : Pci_topology.t;
  irq : Irq.t;
  preempt : Preempt.t;
  net : Netstack.t;
  blk : Blkdev.registry;
  sysfs : Sysfs.t;
  klog : Klog.t;
  procs : Process.table;
}

val boot :
  ?cores:int ->
  ?mem_size:int ->
  ?iommu_mode:Iommu.mode ->
  ?cost_model:Cost_model.t ->
  ?enable_acs:bool ->
  Engine.t ->
  t
(** Defaults: 2 cores (the paper's testbed), 256 MiB RAM, VT-d {e without}
    interrupt remapping (again the paper's testbed), ACS on. *)

val attach_pci : t -> ?switch:Pci_topology.switch -> Device.t -> Bus.bdf
(** Attach a device to the fabric (root ports when [switch] is omitted)
    and publish it in sysfs. *)

val run : ?ms:int -> t -> unit
(** Convenience: run the engine for the given simulated milliseconds
    (default: until idle). *)

val uptime_ns : t -> int
