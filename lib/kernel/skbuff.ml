type t = {
  mutable data : bytes;
  mutable csum_verified : bool;
  mutable shared_with_driver : bool;
  mutable refresh : (unit -> bytes) option;
  mutable recycle : (unit -> unit) option;
}

let of_bytes data =
  { data; csum_verified = false; shared_with_driver = false; refresh = None; recycle = None }

let copy t =
  { data = Bytes.copy t.data;
    csum_verified = t.csum_verified;
    shared_with_driver = false;
    refresh = None;
    recycle = None }

let recycle t =
  match t.recycle with
  | None -> ()
  | Some f ->
    (* Clear before calling: the hook must fire at most once even if the
       stack reaches end-of-life through two paths (delivery + drop). *)
    t.recycle <- None;
    f ()

let length t = Bytes.length t.data

let checksum_sub b ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let checksum b = checksum_sub b ~off:0 ~len:(Bytes.length b)

(* Word-at-a-time internet checksum.  RFC 1071 §2(B): the ones'-
   complement sum is byte-order independent, so we accumulate unaligned
   little-endian 16-bit loads (four per iteration) and byte-swap the
   folded sum once at the end — same result as the byte-pair reference
   loop above at a fraction of the per-byte work. *)
let checksum_sub_words b ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    sum :=
      !sum
      + Bytes.get_uint16_le b !i
      + Bytes.get_uint16_le b (!i + 2)
      + Bytes.get_uint16_le b (!i + 4)
      + Bytes.get_uint16_le b (!i + 6);
    i := !i + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + Bytes.get_uint16_le b !i;
    i := !i + 2
  done;
  (* A trailing odd byte is the high byte of a zero-padded big-endian
     word, which in the little-endian accumulator is the low byte. *)
  if !i < stop then sum := !sum + Char.code (Bytes.get b !i);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  let swapped = ((!sum land 0xFF) lsl 8) lor (!sum lsr 8) in
  lnot swapped land 0xFFFF

(* The fused defensive-copy + checksum pass (paper §3.1.2): one memcpy
   of the untrusted source into a private destination, then the verdict
   folded over the *copy*.  Computing on the copy is what makes the
   result TOCTOU-safe — a driver mutating the source afterwards can no
   longer change either the delivered bytes or the verdict. *)
let copy_and_checksum ~src ~src_off ~dst ~dst_off ~len =
  Bytes.blit src src_off dst dst_off len;
  checksum_sub_words dst ~off:dst_off ~len

module Mac = struct
  let broadcast = Bytes.make 6 '\xff'

  let equal = Bytes.equal

  let pp fmt m =
    for i = 0 to 5 do
      if i > 0 then Format.pp_print_char fmt ':';
      Format.fprintf fmt "%02x" (Char.code (Bytes.get m i))
    done

  let of_string s =
    let parts = String.split_on_char ':' s in
    if List.length parts <> 6 then invalid_arg "Mac.of_string";
    let b = Bytes.create 6 in
    List.iteri (fun i p -> Bytes.set b i (Char.chr (int_of_string ("0x" ^ p)))) parts;
    b
end
