(** Kernel interrupt layer.

    MSI messages that survive the fabric and interrupt-remapping checks
    land in {!deliver} (installed as the topology's MSI sink).  Handlers
    run in event context with the preemption context marked atomic, like
    real top halves.  Per-vector counters feed the storm detector in SUD's
    safe-PCI module. *)

type t

val create :
  Engine.t -> Cpu.t -> Preempt.t -> Klog.t -> t

val alloc_vector : t -> int
(** Allocate an unused vector (>= 32, x86 style). *)

type handler = source:Bus.bdf -> unit

val request_irq : t -> vector:int -> name:string -> handler -> (unit, string) result
val free_irq : t -> vector:int -> unit

val deliver : t -> source:Bus.bdf -> vector:int -> unit
(** Charge interrupt-delivery CPU cost and invoke the handler.  Unhandled
    vectors are counted and logged as spurious. *)

val count : t -> vector:int -> int

type metrics = {
  qm_delivered : Sud_obs.Metrics.counter;
  qm_spurious : Sud_obs.Metrics.counter;
}
(** Delivery counters live in the {!Sud_obs.Metrics} registry under
    subsystem ["irq"]; {!deliver} also emits an ["irq"/"deliver"] trace
    span when tracing is enabled. *)

val metrics : t -> metrics

val spurious : t -> int
  [@@deprecated "read Metrics.get (Irq.metrics t).qm_spurious instead"]

val total_delivered : t -> int
  [@@deprecated "read Metrics.get (Irq.metrics t).qm_delivered instead"]
