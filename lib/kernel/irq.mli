(** Kernel interrupt layer.

    MSI/MSI-X messages that survive the fabric and interrupt-remapping
    checks land in {!deliver} (installed as the topology's MSI sink).
    Handlers run in event context with the preemption context marked
    atomic, like real top halves.

    The native shape of the API is the multi-vector one: a device class
    allocates a contiguous block with {!alloc_vectors} and installs one
    handler over the block with {!request_irqs}, receiving the queue
    index alongside the requester BDF.  Each vector carries its own
    CPU affinity (delivery cost is booked to that CPU's ledger) and its
    own mask bit, so quarantining a storming vector never silences its
    siblings.  The old scalar calls survive as deprecated [n = 1]
    shims. *)

type t

val create :
  Engine.t -> Cpu.t -> Preempt.t -> Klog.t -> t

type handler = source:Bus.bdf -> unit

val alloc_vectors : t -> n:int -> int array
(** Allocate [n] unused vectors from the bounded x86-style space
    (32..255 — the MSI message carries the vector in data[7:0], so
    larger numbers would alias at delivery).  Vectors released by
    {!free_irqs} are recycled lowest-first.  Raises [Invalid_argument]
    when [n <= 0] and [Failure] if the space is exhausted. *)

val alloc_vector : t -> int
  [@@deprecated "use alloc_vectors ~n:1 — the scalar call is the one-queue instance"]

val request_irqs :
  t -> vectors:int array -> name:string ->
  (queue:int -> source:Bus.bdf -> unit) -> (unit, string) result
(** Install one handler across a vector block; the handler receives the
    index of the vector within [vectors] as [queue].  All-or-nothing:
    fails without side effects if any vector is already requested.
    Each vector starts unmasked with round-robin default affinity
    ([vector mod cores]). *)

val request_irq : t -> vector:int -> name:string -> handler -> (unit, string) result
  [@@deprecated "use request_irqs ~vectors:[|v|] — the scalar call is the one-queue instance"]

val free_irqs : t -> vectors:int array -> unit
(** Remove handlers; the vectors are remembered as freed so late
    deliveries count as post-free spurious per offending BDF. *)

val free_irq : t -> vector:int -> unit
  [@@deprecated "use free_irqs ~vectors:[|v|]"]

(** {1 Per-vector steering} *)

val set_affinity : t -> vector:int -> cpu:int -> unit
(** Pin a vector's delivery accounting to a sim CPU.  Raises
    [Invalid_argument] on an unrequested vector or out-of-range cpu. *)

val default_affinity : t -> int -> int
(** [vector mod cores]: the round-robin spread [request_irqs] starts
    from before any explicit {!set_affinity}. *)

val affinity : t -> vector:int -> int option

val mask : t -> vector:int -> unit
(** Drop deliveries on this vector (counted in [qm_masked_dropped])
    until {!unmask} — the kernel-side quarantine of a storming queue.
    Sibling vectors are unaffected. *)

val unmask : t -> vector:int -> unit
val masked : t -> vector:int -> bool

val deliver : t -> source:Bus.bdf -> vector:int -> unit
(** Charge interrupt-delivery CPU cost to the vector's affine CPU and
    invoke the handler.  Unhandled vectors are counted and logged as
    spurious; spurious deliveries on a {e freed} vector additionally
    bump a per-BDF ["irq"/"spurious_after_free"] counter so the storm
    detector sees post-free floods.  Masked vectors drop silently. *)

val count : t -> vector:int -> int

val spurious_after_free : t -> source:Bus.bdf -> int
(** Current value of the per-BDF post-free spurious counter. *)

type metrics = {
  qm_delivered : Sud_obs.Metrics.counter;
  qm_spurious : Sud_obs.Metrics.counter;
  qm_masked_dropped : Sud_obs.Metrics.counter;
}
(** Delivery counters live in the {!Sud_obs.Metrics} registry under
    subsystem ["irq"]; {!deliver} also emits an ["irq"/"deliver"] trace
    span when tracing is enabled. *)

val metrics : t -> metrics

val spurious : t -> int
  [@@deprecated "read Metrics.get (Irq.metrics t).qm_spurious instead"]

val total_delivered : t -> int
  [@@deprecated "read Metrics.get (Irq.metrics t).qm_delivered instead"]
