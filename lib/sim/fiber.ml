exception Killed

type wake = Normal | Interrupted | Timeout

type state =
  | Ready                     (* spawned or resumed, start/continue queued *)
  | Running
  | Suspended of susp
  | Dead

and susp = {
  mutable fired : bool;
  resume : wake -> unit;
  discontinue_killed : unit -> unit;
}

and t = {
  fid : int;
  fname : string;
  mutable state : state;
  mutable pending_kill : bool;
  mutable exits : (unit -> unit) list;
  (* Bumped at every suspension.  A timer armed for one suspension must not
     wake a later one: wakers capture the epoch and compare before waking. *)
  mutable epoch : int;
}

type _ Effect.t += Suspend : (t -> unit) -> wake Effect.t

let next_id = ref 0

(* The engine is single-threaded: exactly one fiber executes at a time, so a
   single mutable cell suffices to track it. *)
let current : t option ref = ref None

let self () =
  match !current with
  | Some f -> f
  | None -> failwith "Fiber.self: not in fiber context"

let name t = t.fname
let id t = t.fid
let is_alive t = t.state <> Dead

let on_exit t fn = t.exits <- fn :: t.exits

let finish t =
  t.state <- Dead;
  let fns = t.exits in
  t.exits <- [];
  List.iter (fun fn -> fn ()) fns

(* Run [step] as fiber [t]'s execution: set the current-fiber cell around it
   and translate a Killed unwind into a normal death. *)
let enter t step =
  let saved = !current in
  current := Some t;
  t.state <- Running;
  Fun.protect ~finally:(fun () -> current := saved) step

let handler engine t =
  let open Effect.Deep in
  { retc = (fun () -> finish t);
    exnc =
      (fun e ->
         finish t;
         match e with Killed -> () | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
         match eff with
         | Suspend register ->
           Some
             (fun (k : (a, unit) continuation) ->
                let susp =
                  { fired = false;
                    resume =
                      (fun w ->
                         ignore
                           (Engine.schedule_now engine (fun () ->
                                if t.pending_kill then
                                  enter t (fun () -> discontinue k Killed)
                                else enter t (fun () -> continue k w))
                            : Engine.handle));
                    discontinue_killed =
                      (fun () ->
                         ignore
                           (Engine.schedule_now engine (fun () ->
                                enter t (fun () -> discontinue k Killed))
                            : Engine.handle)) }
                in
                t.epoch <- t.epoch + 1;
                t.state <- Suspended susp;
                register t)
         | _ -> None) }

let spawn engine ?name:(fname = "fiber") main =
  incr next_id;
  let t =
    { fid = !next_id; fname; state = Ready; pending_kill = false; exits = []; epoch = 0 }
  in
  ignore
    (Engine.schedule_now engine (fun () ->
         if t.pending_kill then finish t
         else
           enter t (fun () -> Effect.Deep.match_with main () (handler engine t)))
     : Engine.handle);
  t

let suspend register = Effect.perform (Suspend register)

let wake t w =
  match t.state with
  | Suspended s when not s.fired ->
    s.fired <- true;
    t.state <- Ready;
    s.resume w;
    true
  | Ready | Running | Dead | Suspended _ -> false

let kill t =
  match t.state with
  | Dead -> ()
  | Suspended s when not s.fired ->
    s.fired <- true;
    t.state <- Ready;
    t.pending_kill <- true;
    s.discontinue_killed ()
  | Suspended _ | Ready -> t.pending_kill <- true
  | Running ->
    (* Only the fiber itself can observe state Running. *)
    raise Killed

let interrupt t =
  match t.state with
  | Suspended s when not s.fired ->
    s.fired <- true;
    t.state <- Ready;
    s.resume Interrupted;
    true
  | Ready | Running | Dead | Suspended _ -> false

let yield engine =
  let w =
    suspend (fun fiber ->
        ignore (Engine.schedule_now engine (fun () -> ignore (wake fiber Normal)) : Engine.handle))
  in
  ignore (w : wake)

let epoch t = t.epoch

let wake_epoch t ~epoch w = if t.epoch = epoch then wake t w else false

let sleep engine ns =
  suspend (fun fiber ->
      let epoch = fiber.epoch in
      ignore
        (Engine.schedule_after engine ns (fun () ->
             ignore (wake_epoch fiber ~epoch Normal : bool))
         : Engine.handle))
