(** Deterministic discrete-event engine.

    All simulated activity — fibers, hardware, timers — is driven from a
    single ordered event queue.  Time is in nanoseconds of simulated time.
    Events scheduled for the same instant fire in scheduling order, which
    makes every run reproducible. *)

type t

type handle
(** A scheduled event, cancellable until it fires. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0.  [seed] initializes the engine's root RNG
    (default 1). *)

val now : t -> int
(** Current simulated time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root random stream; split it for independent components. *)

val schedule_after : t -> int -> (unit -> unit) -> handle
(** [schedule_after t delay fn] runs [fn] at [now t + delay].
    Raises [Invalid_argument] on a negative delay. *)

val schedule_now : t -> (unit -> unit) -> handle
(** Run at the current instant, after already-queued events for this
    instant. *)

val cancel : handle -> unit
(** Cancelling an already-fired event is a no-op. *)

val run : ?max_time:int -> ?max_events:int -> t -> unit
(** Process events until the queue is empty or a limit is hit.  [max_time]
    stops the clock from advancing past the given instant (events at later
    times remain queued). *)

val pending : t -> int
(** Number of queued (uncancelled or cancelled-but-unreaped) events. *)

(** {1 Scheduler policy hooks}

    Events scheduled for the same instant form a {e ready set}; which of
    them fires next is the only scheduling freedom the simulator has, and
    every fiber preemption point (Sync/Waitq wakeups, uchan notify
    delivery, timer expiry) is mediated by exactly such a choice.  By
    default the engine picks the lowest sequence number — the historical
    FIFO order.  A picker installed with {!set_picker} chooses instead;
    {!Sched} wraps this into record/replay-able policies. *)

val set_picker : t -> (step:int -> ready:int -> int) option -> unit
(** [set_picker t (Some f)] routes every same-instant choice through
    [f ~step ~ready], which must return an index in [\[0, ready)] into the
    seq-ordered ready set (out-of-range picks clamp to 0 = FIFO).  [f] is
    only consulted when [ready > 1].  [None] restores the FIFO fast
    path. *)

val set_observer :
  t -> (step:int -> time:int -> ready:int -> pick:int -> unit) option -> unit
(** Decision tap: called at every choice point ([ready > 1]) with the
    engine step, simulated time, ready-set size and the picked index.
    Only consulted when a picker is installed. *)

val steps : t -> int
(** Events fired so far (cancelled events are reaped, not counted). *)

val trace_hash : t -> int64
(** Streaming fingerprint of the fired [(time, seq)] event stream.  Two
    runs have equal hashes iff they executed the same schedule; replay
    asserts bit-for-bit re-execution by comparing this. *)
