(** Calibrated CPU cost parameters (nanoseconds of CPU time).

    The paper's testbed is a 1.4 GHz dual-core Thinkpad X301; the defaults
    below are calibrated so the Figure 8 benchmarks reproduce the paper's
    *shape*: identical throughput on streaming workloads, 8–30% CPU
    overhead for the untrusted driver, roughly 2x CPU on UDP_RR driven by
    the ~4 us process wakeup latency the authors call out. *)

type t = {
  syscall_ns : int;           (** user/kernel crossing *)
  context_switch_ns : int;    (** address-space switch *)
  wakeup_ns : int;            (** waking a sleeping process (paper: ~4 us) *)
  uchan_msg_ns : int;         (** marshal + ring slot handling, per message *)
  uchan_validate_ns : int;    (** protocol-conformance adjudication per u2k slot
                                  (epoch + seq + reply matching + kind DFA) *)
  uchan_notify_ns : int;      (** kicking the uchan file descriptor *)
  copy_ns_per_kb : int;       (** memcpy *)
  checksum_ns_per_kb : int;   (** internet checksum (and the fused copy+csum) *)
  irq_deliver_ns : int;       (** APIC delivery + in-kernel dispatch *)
  irq_upcall_ns : int;        (** extra cost to forward an IRQ as an upcall *)
  mmio_access_ns : int;       (** one uncached MMIO register read/write *)
  pio_access_ns : int;        (** one legacy IO-port access *)
  dma_map_ns : int;           (** inserting one IOMMU mapping *)
  iotlb_hit_ns : int;         (** DMA translation served from the IOTLB *)
  iommu_walk_ns : int;        (** DMA translation paying the two-level walk *)
  iotlb_flush_ns : int;       (** IOTLB invalidation (paper: prohibitive) *)
  msi_mask_ns : int;          (** toggling the MSI mask bit via PCI config *)
  irte_update_ns : int;       (** rewriting an interrupt-remapping entry *)
  skb_alloc_ns : int;         (** allocating an sk_buff *)
  softirq_entry_ns : int;     (** entering softirq context, paid once per burst *)
  netstack_rx_ns : int;       (** per-packet protocol receive processing *)
  netstack_tx_ns : int;       (** per-packet protocol transmit processing *)
  driver_work_ns : int;       (** per-packet device-driver bookkeeping *)
  fused_epsilon_ns : int;     (** fixed overhead of the fused copy+checksum sweep *)
}

val default : t

val copy_cost : t -> bytes:int -> int
(** CPU cost of copying [bytes]; at least 1 ns for a non-empty copy. *)

val checksum_cost : t -> bytes:int -> int

val fused_copy_checksum_cost : t -> bytes:int -> int
(** CPU cost of the single-pass defensive-copy + checksum sweep:
    [max (copy, checksum) + fused_epsilon_ns].  The two passes touch the
    same bytes, so fusing them costs the slower pass plus a fixed
    epsilon rather than their sum. *)
