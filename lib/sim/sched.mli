(** Scheduler policies, the deterministic schedule recorder/replayer, and
    the versioned schedule-file format.

    The engine's only nondeterminism is which same-instant event fires
    next ({!Engine.set_picker}); a schedule is therefore fully described
    by the sequence of picks taken at choice points.  [Sched] installs a
    policy, records every pick, and can replay a recorded decision list
    bit-for-bit — verified via {!Engine.trace_hash} equality. *)

type decision = {
  d_step : int;  (** engine step (events fired) at the choice point *)
  d_ready : int;  (** ready-set size offered *)
  d_pick : int;  (** index picked, 0 = FIFO order *)
}

type spec =
  | Fifo  (** historical order: lowest seq first — always pick 0 *)
  | Random of { seed : int64; p_preempt : int }
      (** schedule fuzzing: with probability [p_preempt]% pick uniformly
          among the ready set, else FIFO.  Deterministic per seed. *)
  | Replay of decision list
      (** re-execute recorded picks; see {!install}'s [strict] flag *)

type recorder = {
  mutable rec_rev : decision list;  (** recorded picks, newest first *)
  mutable rec_points : int;  (** choice points encountered *)
  mutable rec_divergence : string option;  (** first strict-replay mismatch *)
}

val install : ?strict:bool -> Engine.t -> spec -> recorder
(** Install [spec] as the engine's scheduler and start recording.  With
    [strict] (Replay only), every decision must match its recorded
    (step, ready) exactly or [rec_divergence] is set; without it, replay
    is permissive — decisions are keyed by step and anything missing
    degrades to FIFO, which is what makes shrinking well-defined on
    arbitrary subsets of a schedule. *)

val decisions : recorder -> decision list
(** Recorded picks in execution order. *)

val spec_label : spec -> string

(** {1 Schedule files} *)

val version : string
(** Format tag written in the header line; currently ["sud-sched/1"]. *)

type file = {
  f_scenario : string;
  f_seed : int64;
  f_policy : string;
  f_policy_seed : int64;
  f_p_preempt : int;
  f_decisions : decision list;
  f_points : int;
  f_steps : int;
  f_trace_hash : int64;
  f_metrics_hash : int64;
}

val file_of :
  scenario:string ->
  seed:int64 ->
  spec:spec ->
  trace_hash:int64 ->
  metrics_hash:int64 ->
  steps:int ->
  recorder ->
  file

val save : path:string -> file -> unit
(** Write as JSONL: a version header, one line per decision, a footer
    carrying the expected trace/metrics hashes. *)

val load : string -> (file, string) result
