type t = { mutable state : int64 }

let create ~seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to a non-negative native int: Int64.to_int truncates to 63 bits,
     so a raw shift can still come out negative. *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. v /. 9007199254740992.0

let bool t = Int64.logand (int64 t) 1L = 1L

let derive ~root tag =
  (* Fold the tag into the splitmix64 stream: every harness sub-seed is a
     pure function of (root seed, tag string), so one printed root seed
     reproduces the whole tree of derived streams. *)
  let h = ref (mix (Int64.add root golden)) in
  String.iter
    (fun c -> h := mix (Int64.add (Int64.mul !h 0x100000001B3L) (Int64.of_int (Char.code c))))
    tag;
  !h

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
