(* Scheduler policies over Engine's same-instant choice points, plus the
   recorder/replayer and the versioned schedule-file format.  Everything
   here is stdlib-only so any layer (attacks soaks included) can dump a
   replayable schedule on failure. *)

type decision = { d_step : int; d_ready : int; d_pick : int }

type spec =
  | Fifo
  | Random of { seed : int64; p_preempt : int }
  | Replay of decision list

type recorder = {
  mutable rec_rev : decision list;
  mutable rec_points : int;
  mutable rec_divergence : string option;
}

let spec_label = function
  | Fifo -> "fifo"
  | Random _ -> "random"
  | Replay _ -> "replay"

let decisions r = List.rev r.rec_rev

let install ?(strict = false) eng spec =
  let r = { rec_rev = []; rec_points = 0; rec_divergence = None } in
  let picker =
    match spec with
    | Fifo -> fun ~step:_ ~ready:_ -> 0
    | Random { seed; p_preempt } ->
      let rng = Rng.create ~seed in
      fun ~step:_ ~ready ->
        if Rng.int rng 100 < p_preempt then Rng.int rng ready else 0
    | Replay ds when strict ->
      (* Verification replay: every decision must line up exactly with the
         choice point it was recorded at; the first mismatch is reported
         and the rest of the run falls back to FIFO. *)
      let rest = ref ds in
      fun ~step ~ready ->
        (match !rest with
         | [] -> 0
         | d :: tl ->
           if d.d_step = step && d.d_ready = ready && d.d_pick < ready then begin
             rest := tl;
             d.d_pick
           end else begin
             if r.rec_divergence = None then
               r.rec_divergence <-
                 Some
                   (Printf.sprintf
                      "divergence at step %d (ready %d): recorded (step %d, ready %d, pick %d)"
                      step ready d.d_step d.d_ready d.d_pick);
             rest := tl;
             0
           end)
    | Replay ds ->
      (* Permissive replay, used by the shrinker: decisions are keyed by
         engine step; anything missing or out of range degrades to FIFO so
         every edited subset of a schedule is still a well-defined run. *)
      let tbl = Hashtbl.create (List.length ds * 2 + 1) in
      List.iter (fun d -> Hashtbl.replace tbl d.d_step d) ds;
      fun ~step ~ready ->
        (match Hashtbl.find_opt tbl step with
         | None -> 0
         | Some d -> if d.d_pick < ready then d.d_pick else d.d_pick mod ready)
  in
  Engine.set_picker eng (Some picker);
  Engine.set_observer eng
    (Some
       (fun ~step ~time:_ ~ready ~pick ->
          r.rec_points <- r.rec_points + 1;
          r.rec_rev <- { d_step = step; d_ready = ready; d_pick = pick } :: r.rec_rev));
  r

(* ---- schedule files: versioned JSONL, one decision per line ---- *)

let version = "sud-sched/1"

type file = {
  f_scenario : string;
  f_seed : int64;  (* scenario seed (root of the run's derived streams) *)
  f_policy : string;
  f_policy_seed : int64;
  f_p_preempt : int;
  f_decisions : decision list;
  f_points : int;
  f_steps : int;
  f_trace_hash : int64;
  f_metrics_hash : int64;
}

let file_of ~scenario ~seed ~spec ~trace_hash ~metrics_hash ~steps r =
  let policy_seed, p_preempt =
    match spec with Random { seed; p_preempt } -> (seed, p_preempt) | _ -> (0L, 0)
  in
  { f_scenario = scenario;
    f_seed = seed;
    f_policy = spec_label spec;
    f_policy_seed = policy_seed;
    f_p_preempt = p_preempt;
    f_decisions = decisions r;
    f_points = r.rec_points;
    f_steps = steps;
    f_trace_hash = trace_hash;
    f_metrics_hash = metrics_hash }

let save ~path f =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schedule\":\"%s\",\"scenario\":\"%s\",\"seed\":\"0x%Lx\",\"policy\":\"%s\",\"policy_seed\":\"0x%Lx\",\"p_preempt\":%d}\n"
    version f.f_scenario f.f_seed f.f_policy f.f_policy_seed f.f_p_preempt;
  List.iter
    (fun d ->
       Printf.fprintf oc "{\"step\":%d,\"ready\":%d,\"pick\":%d}\n" d.d_step d.d_ready
         d.d_pick)
    f.f_decisions;
  Printf.fprintf oc
    "{\"end\":true,\"points\":%d,\"steps\":%d,\"trace_hash\":\"0x%Lx\",\"metrics_hash\":\"0x%Lx\"}\n"
    f.f_points f.f_steps f.f_trace_hash f.f_metrics_hash;
  close_out oc

(* Minimal field scanners for our own emissions above — not a general JSON
   parser (Bench_schema lives higher in the stack and is not reachable
   from here without a cycle). *)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let str_field line key =
  match find_sub line (Printf.sprintf "\"%s\":\"" key) with
  | None -> None
  | Some i ->
    (match String.index_from_opt line i '"' with
     | None -> None
     | Some j -> Some (String.sub line i (j - i)))

let int_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let j = ref i in
    let n = String.length line in
    while !j < n && (match line.[!j] with '0' .. '9' | '-' -> true | _ -> false) do
      incr j
    done;
    if !j = i then None else int_of_string_opt (String.sub line i (!j - i))

let hex_field line key =
  match str_field line key with None -> None | Some s -> Int64.of_string_opt s

let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such schedule" path)
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    match List.rev !lines with
    | [] -> Error (Printf.sprintf "%s: empty schedule file" path)
    | header :: rest ->
      (match str_field header "schedule" with
       | Some v when v = version ->
         let scenario = Option.value ~default:"?" (str_field header "scenario") in
         let seed = Option.value ~default:0L (hex_field header "seed") in
         let policy = Option.value ~default:"fifo" (str_field header "policy") in
         let policy_seed = Option.value ~default:0L (hex_field header "policy_seed") in
         let p_preempt = Option.value ~default:0 (int_field header "p_preempt") in
         let ds = ref [] in
         let footer = ref None in
         List.iter
           (fun line ->
              if int_field line "end" <> None || find_sub line "\"end\":true" <> None
              then footer := Some line
              else
                match
                  (int_field line "step", int_field line "ready", int_field line "pick")
                with
                | Some s, Some r, Some p ->
                  ds := { d_step = s; d_ready = r; d_pick = p } :: !ds
                | _ -> ())
           rest;
         let foot = Option.value ~default:"" !footer in
         Ok
           { f_scenario = scenario;
             f_seed = seed;
             f_policy = policy;
             f_policy_seed = policy_seed;
             f_p_preempt = p_preempt;
             f_decisions = List.rev !ds;
             f_points = Option.value ~default:0 (int_field foot "points");
             f_steps = Option.value ~default:0 (int_field foot "steps");
             f_trace_hash = Option.value ~default:0L (hex_field foot "trace_hash");
             f_metrics_hash = Option.value ~default:0L (hex_field foot "metrics_hash") }
       | Some v -> Error (Printf.sprintf "%s: schedule version %s (want %s)" path v version)
       | None -> Error (Printf.sprintf "%s: not a sud-sched file" path))
  end
