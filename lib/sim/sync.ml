module Waitq = struct
  type t = { q : Fiber.t Queue.t }

  let create () = { q = Queue.create () }

  let wait t = Fiber.suspend (fun fiber -> Queue.push fiber t.q)

  let wait_timeout engine t ns =
    Fiber.suspend (fun fiber ->
        Queue.push fiber t.q;
        (* Capture the suspension epoch: if the fiber is signalled (or
           interrupted) before the deadline, this timer must die with the
           wait instead of waking the fiber's next suspension. *)
        let epoch = Fiber.epoch fiber in
        ignore
          (Engine.schedule_after engine ns (fun () ->
               ignore (Fiber.wake_epoch fiber ~epoch Fiber.Timeout : bool))
           : Engine.handle))

  (* Entries whose fiber was already woken elsewhere (kill, timeout) are
     stale; [signal] skips them so a signal is never lost to a dead waiter. *)
  let rec signal t =
    match Queue.take_opt t.q with
    | None -> false
    | Some fiber -> if Fiber.wake fiber Fiber.Normal then true else signal t

  let broadcast t =
    let n = ref 0 in
    while signal t do incr n done;
    !n

  let waiters t = Queue.length t.q
end

module Mutex = struct
  type t = { mutable owner : Fiber.t option; waiters : Waitq.t }

  let create () = { owner = None; waiters = Waitq.create () }

  let locked t = t.owner <> None

  let rec lock t =
    match t.owner with
    | None -> t.owner <- Some (Fiber.self ())
    | Some _ ->
      (* Interrupts do not abort lock acquisition; retry until owned. *)
      ignore (Waitq.wait t.waiters : Fiber.wake);
      lock t

  let unlock t =
    match t.owner with
    | None -> invalid_arg "Sync.Mutex.unlock: not locked"
    | Some _ ->
      t.owner <- None;
      ignore (Waitq.signal t.waiters : bool)

  let with_lock t fn =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) fn
end

module Condvar = struct
  type t = { waiters : Waitq.t }

  let create () = { waiters = Waitq.create () }

  let wait t mu =
    Mutex.unlock mu;
    let w = Waitq.wait t.waiters in
    Mutex.lock mu;
    w

  let signal t = ignore (Waitq.signal t.waiters : bool)
  let broadcast t = ignore (Waitq.broadcast t.waiters : int)
end

module Mailbox = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    readers : Waitq.t;
    writers : Waitq.t;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
    { items = Queue.create (); capacity; readers = Waitq.create (); writers = Waitq.create () }

  let length t = Queue.length t.items

  let try_send t x =
    if Queue.length t.items >= t.capacity then false
    else begin
      Queue.push x t.items;
      ignore (Waitq.signal t.readers : bool);
      true
    end

  let rec send t x =
    if try_send t x then `Ok
    else
      match Waitq.wait t.writers with
      | Fiber.Interrupted -> `Interrupted
      | Fiber.Normal | Fiber.Timeout -> send t x

  let try_recv t =
    match Queue.take_opt t.items with
    | None -> None
    | Some x ->
      ignore (Waitq.signal t.writers : bool);
      Some x

  let rec recv t =
    match try_recv t with
    | Some x -> `Ok x
    | None ->
      (match Waitq.wait t.readers with
       | Fiber.Interrupted -> `Interrupted
       | Fiber.Normal | Fiber.Timeout -> recv t)

  let rec recv_timeout engine t ns =
    match try_recv t with
    | Some x -> `Ok x
    | None ->
      let deadline = Engine.now engine + ns in
      (match Waitq.wait_timeout engine t.readers ns with
       | Fiber.Interrupted -> `Interrupted
       | Fiber.Timeout -> (match try_recv t with Some x -> `Ok x | None -> `Timeout)
       | Fiber.Normal ->
         let remaining = deadline - Engine.now engine in
         if remaining <= 0 then
           match try_recv t with Some x -> `Ok x | None -> `Timeout
         else recv_timeout engine t remaining)
end
