type handle = { mutable cancelled : bool }

type event = { time : int; seq : int; h : handle; fn : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  heap : event Heap.t;
  root_rng : Rng.t;
  mutable steps : int;
  mutable thash : int64;
  mutable picker : (step:int -> ready:int -> int) option;
  mutable observer : (step:int -> time:int -> ready:int -> pick:int -> unit) option;
}

let dummy_event = { time = 0; seq = 0; h = { cancelled = true }; fn = ignore }

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create ?(seed = 1L) () =
  { now = 0;
    seq = 0;
    heap = Heap.create ~cmp:compare_event ~dummy:dummy_event;
    root_rng = Rng.create ~seed;
    steps = 0;
    thash = 0x5D0_C4ECL;
    picker = None;
    observer = None }

let now t = t.now
let rng t = t.root_rng
let steps t = t.steps
let trace_hash t = t.thash
let set_picker t p = t.picker <- p
let set_observer t o = t.observer <- o

let schedule_after t delay fn =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  let h = { cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.heap { time = t.now + delay; seq = t.seq; h; fn };
  h

let schedule_now t fn = schedule_after t 0 fn

let cancel h = h.cancelled <- true

let pending t = Heap.length t.heap

(* Fingerprint the fired (time, seq) stream.  Two runs that fire the same
   events in the same order — the definition of an identical schedule —
   produce the same hash; any reordering diverges at the first swap. *)
let note_fired t ev =
  t.steps <- t.steps + 1;
  t.thash <-
    Rng.mix
      (Int64.add
         (Int64.mul t.thash 0x100000001B3L)
         (Int64.of_int (ev.time lxor (ev.seq * 0x9E3779B9))))

let fire t ev =
  t.now <- max t.now ev.time;
  note_fired t ev;
  ev.fn ()

(* The ready set: every uncancelled event sharing the minimal queued time,
   in seq (arrival) order.  Cancelled events are reaped, not offered. *)
let gather_ready t =
  match Heap.pop t.heap with
  | None -> []
  | Some first ->
    let rec drop_cancelled ev =
      if ev.h.cancelled then
        match Heap.pop t.heap with None -> None | Some ev' -> drop_cancelled ev'
      else Some ev
    in
    (match drop_cancelled first with
     | None -> []
     | Some first ->
       let acc = ref [ first ] in
       let continue_ = ref true in
       while !continue_ do
         match Heap.peek t.heap with
         | Some ev when ev.time = first.time ->
           ignore (Heap.pop t.heap : event option);
           if not ev.h.cancelled then acc := ev :: !acc
         | _ -> continue_ := false
       done;
       List.sort compare_event !acc)

let run_policy pick ?(max_time = max_int) ?(max_events = max_int) t =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ && !fired < max_events do
    match gather_ready t with
    | [] -> continue_ := false
    | ready when (List.hd ready).time > max_time ->
      (* Past the horizon: put the instant back untouched. *)
      List.iter (fun ev -> Heap.push t.heap ev) ready;
      continue_ := false
    | ready ->
      let n = List.length ready in
      let idx =
        if n = 1 then 0
        else begin
          let i = pick ~step:t.steps ~ready:n in
          let i = if i < 0 || i >= n then 0 else i in
          (match t.observer with
           | Some obs -> obs ~step:t.steps ~time:(List.hd ready).time ~ready:n ~pick:i
           | None -> ());
          i
        end
      in
      let chosen = List.nth ready idx in
      List.iteri (fun j ev -> if j <> idx then Heap.push t.heap ev) ready;
      incr fired;
      fire t chosen
  done

let run ?(max_time = max_int) ?(max_events = max_int) t =
  match t.picker with
  | Some pick -> run_policy pick ~max_time ~max_events t
  | None ->
    (* FIFO fast path: identical to the historical engine loop — pop-min in
       (time, seq) order with no ready-set materialization. *)
    let fired = ref 0 in
    let continue_ = ref true in
    while !continue_ && !fired < max_events do
      match Heap.peek t.heap with
      | None -> continue_ := false
      | Some ev when ev.time > max_time -> continue_ := false
      | Some _ ->
        (match Heap.pop t.heap with
         | None -> continue_ := false
         | Some ev ->
           if not ev.h.cancelled then begin
             incr fired;
             fire t ev
           end else t.now <- max t.now ev.time)
    done
