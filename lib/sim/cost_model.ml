type t = {
  syscall_ns : int;
  context_switch_ns : int;
  wakeup_ns : int;
  uchan_msg_ns : int;
  uchan_validate_ns : int;
  uchan_notify_ns : int;
  copy_ns_per_kb : int;
  checksum_ns_per_kb : int;
  irq_deliver_ns : int;
  irq_upcall_ns : int;
  mmio_access_ns : int;
  pio_access_ns : int;
  dma_map_ns : int;
  iotlb_hit_ns : int;
  iommu_walk_ns : int;
  iotlb_flush_ns : int;
  msi_mask_ns : int;
  irte_update_ns : int;
  skb_alloc_ns : int;
  softirq_entry_ns : int;
  netstack_rx_ns : int;
  netstack_tx_ns : int;
  driver_work_ns : int;
  fused_epsilon_ns : int;
}

let default =
  { syscall_ns = 400;
    context_switch_ns = 900;
    wakeup_ns = 4_000;
    uchan_msg_ns = 120;
    uchan_validate_ns = 12;
    uchan_notify_ns = 350;
    copy_ns_per_kb = 240;
    checksum_ns_per_kb = 180;
    irq_deliver_ns = 700;
    irq_upcall_ns = 500;
    mmio_access_ns = 250;
    pio_access_ns = 400;
    dma_map_ns = 180;
    iotlb_hit_ns = 15;
    iommu_walk_ns = 150;
    iotlb_flush_ns = 2_500;
    msi_mask_ns = 600;
    irte_update_ns = 1_800;
    skb_alloc_ns = 300;
    softirq_entry_ns = 1_000;
    netstack_rx_ns = 800;
    netstack_tx_ns = 1_200;
    driver_work_ns = 350;
    fused_epsilon_ns = 40 }

let scaled per_kb bytes =
  if bytes <= 0 then 0 else max 1 ((bytes * per_kb) / 1024)

let copy_cost t ~bytes = scaled t.copy_ns_per_kb bytes
let checksum_cost t ~bytes = scaled t.checksum_ns_per_kb bytes

(* The fused defensive-copy + checksum pass touches the bytes once: the
   stores of the copy and the adds of the checksum overlap in the same
   sweep, so it costs the slower of the two passes plus a small fixed
   epsilon, not their sum. *)
let fused_copy_checksum_cost t ~bytes =
  max (copy_cost t ~bytes) (checksum_cost t ~bytes) + t.fused_epsilon_ns
