(** Cooperative fibers over the discrete-event engine.

    Fibers let simulated processes — kernel threads, driver processes,
    device firmware — be written in direct style: they block on waits,
    sleeps and CPU consumption, and the engine interleaves them
    deterministically.  Implemented with OCaml 5 effect handlers.

    Only one fiber runs at a time; resumptions always go through the engine
    queue, so there is no nesting and no data races. *)

exception Killed
(** Raised inside a fiber when it is killed, so [Fun.protect]-style cleanup
    runs.  Corresponds to delivering SIGKILL to a simulated process. *)

type t

type wake =
  | Normal       (** woken by the event it was waiting for *)
  | Interrupted  (** woken by a signal (e.g. user pressed Ctrl-C) *)
  | Timeout      (** woken by a timeout armed alongside the wait *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> t
(** Queue a new fiber; it starts at the current instant.  An uncaught
    exception other than {!Killed} escapes from [Engine.run]. *)

val self : unit -> t
(** The running fiber.  Raises [Failure] outside fiber context. *)

val name : t -> string
val id : t -> int
val is_alive : t -> bool

val suspend : (t -> unit) -> wake
(** [suspend register] parks the current fiber; [register] is called with
    the fiber so the caller can file it in a wait queue or timer.  Returns
    the reason it was woken. *)

val wake : t -> wake -> bool
(** Resume a suspended fiber (via the engine queue).  Returns false if the
    fiber was not suspended or was already woken — stale wakes are safe. *)

val epoch : t -> int
(** The fiber's suspension counter, bumped at every suspension.  A waker
    armed for one particular wait (e.g. a timeout timer) must capture the
    epoch at arm time and wake through {!wake_epoch}, otherwise a timer
    that lost its race wakes whatever the fiber is waiting on {e next}. *)

val wake_epoch : t -> epoch:int -> wake -> bool
(** {!wake}, but a no-op unless the fiber is still in the suspension the
    epoch was captured in. *)

val kill : t -> unit
(** Kill the fiber: if suspended, it is resumed with {!Killed}; if it has a
    wake already in flight, it dies at its next step.  Killing a dead fiber
    is a no-op. *)

val interrupt : t -> bool
(** Deliver an interrupt: a suspended fiber's wait returns {!Interrupted}.
    Models interruptible sleeps (Ctrl-C on a hung synchronous upcall). *)

val yield : Engine.t -> unit
(** Reschedule the current fiber behind already-queued events. *)

val sleep : Engine.t -> int -> wake
(** Sleep for the given number of nanoseconds; may return early with
    [Interrupted]. *)

val on_exit : t -> (unit -> unit) -> unit
(** Register a cleanup to run when the fiber finishes or is killed. *)
