(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t] so
    that simulation runs are reproducible given a seed. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val derive : root:int64 -> string -> int64
(** [derive ~root tag] deterministically maps one root seed and a textual
    tag (e.g. ["soak"], ["fuzz"], ["explore:3"]) to an independent
    sub-seed.  All soak/fuzz/bench entry points derive their seeds this
    way from a single printed root, so any failure line names everything
    needed to reproduce it. *)

val mix : int64 -> int64
(** The splitmix64 finalizer — a cheap 64-bit mixing function, exposed for
    building streaming fingerprints (e.g. {!Engine.trace_hash}). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)
