(** netperf-style benchmarks over the simulated gigabit link — the
    Figure 8 harness.

    The rig boots {e two} machines on one simulation engine: the device
    under test (2 cores, the paper's Thinkpad) and a peer (4 cores, the
    paper's Optiplex — deliberately overprovisioned so DUT-side costs are
    what limit throughput).  The DUT's e1000 runs either as a trusted
    in-kernel driver or as an untrusted SUD process; the peer always runs
    in-kernel.

    Sampling follows netperf's stopping rule: fixed intervals until the
    99% confidence half-width is within 5% of the mean. *)

type mode = Kernel_driver | Sud_driver

val mode_name : mode -> string

type result = {
  throughput : float;
  units : string;
  cpu_pct : float;       (** DUT CPU utilization over the measurement *)
  samples : int;
}

type rig = {
  eng : Engine.t;
  dut : Kernel.t;
  peer : Kernel.t;
  dev_dut : Netdev.t;
  dev_peer : Netdev.t;
  nic_dut : E1000_dev.t;
  started : Driver_host.started option;   (** present in SUD mode *)
}

val make_rig :
  ?cost_model:Cost_model.t ->
  ?defensive_copy:bool ->
  ?iommu_mode:Iommu.mode ->
  ?queues:int ->
  ?peer_queues:int ->
  ?dut_cores:int ->
  ?peer_cores:int ->
  ?rate_bps:int ->
  mode ->
  rig
(** Boots both machines, attaches NICs to a shared gigabit medium, brings
    both interfaces up.  Runs the engine internally until setup completes;
    call the benchmarks on the returned rig from outside any fiber.
    [queues] (default 1) sizes the DUT NIC's MSI-X table and hence the
    whole multiqueue datapath; [peer_queues] (default 1) likewise for the
    peer — raise it when the offered load must exceed what a single
    HARD_TX_LOCK'd transmit queue can push (~1.6 Mpps). *)

val tcp_stream : ?rig:rig -> mode -> result
(** Bulk stream from peer to DUT (receive throughput), Mbit/s. *)

val udp_stream_tx : ?rig:rig -> mode -> result
(** DUT floods 64-byte datagrams; Kpackets/s that reached the peer. *)

val udp_stream_rx : ?rig:rig -> mode -> result
(** Peer floods the DUT; Kpackets/s delivered to the DUT socket. *)

val udp_rr : ?rig:rig -> mode -> result
(** 64-byte ping-pong; transactions/s, client on the peer. *)

(** {1 Multiqueue sweep (netperf_mq)} *)

type mq_point = {
  mq_queues : int;
  mq_kpps : float;          (** aggregate Kpackets/s across all flows *)
  mq_cpu_pct : float;
  mq_samples : int;
  mq_rxq_frames : int list; (** device-side frames landed per RX queue *)
}

val mq_flows : int
(** Concurrent UDP flows offered during the sweep (8). *)

val udp_multi_rx : queues:int -> mq_point
(** Aggregate receive throughput with the SUD e1000 on [queues] MSI-X
    vectors / uchan ring pairs, 8 cores on the DUT. *)

val mq_sweep : ?queue_counts:int list -> unit -> mq_point list
(** [udp_multi_rx] at each queue count (default 1/2/4/8). *)

(** {1 Batch sweep (netperf_batch)} *)

type batch_point = {
  bp_queues : int;
  bp_batch : int;           (** uchan batch limit applied to the DUT *)
  bp_kpps : float;          (** aggregate Kpackets/s across all flows *)
  bp_cpu_pct : float;
  bp_samples : int;
  bp_frames : int;          (** datagrams delivered over the whole run *)
  bp_irqs : int;            (** interrupt upcalls forwarded over the run *)
  bp_cpu_ns_per_frame : float;
      (** DUT CPU busy-ns per delivered datagram over the whole run
          (boot and warmup included — noise at these frame counts).
          The per-frame-cost number the batched datapath exists to
          shrink. *)
}

val batch_rate_bps : int
(** Link speed of the batch sweep (10 Gb/s): at 1 Gb/s the 64-byte flood
    is line-rate-bound at ~1.126 Mpps — BENCH_4's 4q/8q plateau — so the
    per-frame CPU costs the batched datapath removes would be invisible. *)

val udp_batch_rx : queues:int -> batch:int -> batch_point
(** [udp_multi_rx] on a {!batch_rate_bps} medium with the DUT uchan's
    frame-aggregation threshold set to [batch] (1 reproduces the
    per-frame wire traffic), additionally counting IRQ upcalls so
    [bp_irqs / bp_frames] gives the NAPI coalescing ratio. *)

val batch_sweep : ?points:(int * int) list -> unit -> batch_point list
(** [udp_batch_rx] at each (queues, batch) point
    (default (1,1)/(1,32)/(8,1)/(8,32)). *)

type row = { test : string; driver : string; value : string; cpu : string }

val figure8 : unit -> row list
(** All eight rows of Figure 8 (4 tests x kernel/SUD). *)

val msg_size : int
(** Size of the UDP payloads (64 bytes, as in the paper). *)
