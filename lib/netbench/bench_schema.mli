(** The machine-readable bench baseline format ([BENCH_*.json]).

    Every harness that emits a baseline builds a {!t} and hands it to
    {!write}; every gate that reads an earlier baseline goes through
    {!of_file} + {!path} instead of substring-scanning the file.  The
    schema is versioned: document [N] carries ["schema": "sud-bench/N"]
    (see {!schema}), and the parser accepts every version ever checked
    in, so a new harness can always read the baselines of its
    predecessors.

    The printer is deterministic (two-space indent, short collections
    inlined) and the parser is total on its output: for every [v],
    [of_string (to_string v) = Ok v] once floats are built through
    {!fnum} (which rounds to a decimal budget, exactly what a baseline
    wants anyway — nobody gates on the 15th digit of a throughput
    sample). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val schema : int -> string * t
(** [schema n] is the leading [("schema", Str "sud-bench/n")] field. *)

val fnum : ?dp:int -> float -> t
(** A float field rounded to [dp] decimal places (default 3).  NaN and
    infinities become [Null], matching the old emitters' convention for
    "no estimate". *)

(** {1 Printing} *)

val to_string : t -> string
(** Render with a trailing newline, ready for the file. *)

val write : path:string -> t -> unit

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Full JSON parser (numbers, strings with escapes, nested
    collections).  Numbers without [.]/[e] that fit in [int] parse as
    {!Int}, everything else as {!Float}.  Errors carry the byte
    offset. *)

val of_file : string -> (t, string) result
(** [Error] on unreadable files as well as unparseable ones. *)

(** {1 Readers} *)

val member : t -> string -> t option
(** Field lookup on an {!Obj}; [None] on missing field or non-object. *)

val path : t -> string list -> t option
(** Chained {!member}: [path doc ["micro"; key; "ns_per_op"]]. *)

val as_float : t -> float option
(** {!Int} or {!Float} as a number; everything else [None]. *)

val as_int : t -> int option
val as_str : t -> string option
val as_bool : t -> bool option
val as_list : t -> t list option

val find_point : t list -> (string * t) list -> t option
(** [find_point points keys] is the first {!Obj} in [points] whose
    fields match every [(name, value)] in [keys] — the "row of the
    sweep table" lookup every gate needs, e.g.
    [find_point pts ["queues", Int 4]]. *)
