type mode = Kernel_driver | Sud_driver

let mode_name = function Kernel_driver -> "Kernel driver" | Sud_driver -> "Untrusted driver"

type result = {
  throughput : float;
  units : string;
  cpu_pct : float;
  samples : int;
}

type rig = {
  eng : Engine.t;
  dut : Kernel.t;
  peer : Kernel.t;
  dev_dut : Netdev.t;
  dev_peer : Netdev.t;
  nic_dut : E1000_dev.t;
  started : Driver_host.started option;
}

let msg_size = 64
let warmup_ns = 20_000_000
let interval_ns = 50_000_000
let max_samples = 40

let mac_dut = Bytes.of_string "\x52\x54\x00\x00\x00\x01"
let mac_peer = Bytes.of_string "\x52\x54\x00\x00\x00\x02"

let fail_on_error what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

let make_rig ?cost_model ?(defensive_copy = true) ?iommu_mode ?(queues = 1) ?(dut_cores = 2)
    ?(peer_cores = 4) mode =
  let eng = Engine.create () in
  let dut = Kernel.boot ?cost_model ?iommu_mode ~cores:dut_cores eng in
  let peer = Kernel.boot ?cost_model ~cores:peer_cores eng in
  let medium = Net_medium.create eng () in
  let nic_dut = E1000_dev.create eng ~mac:mac_dut ~medium ~queues () in
  let nic_peer = E1000_dev.create eng ~mac:mac_peer ~medium () in
  let bdf_dut = Kernel.attach_pci dut (E1000_dev.device nic_dut) in
  let bdf_peer = Kernel.attach_pci peer (E1000_dev.device nic_peer) in
  let rig = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process dut.Kernel.procs) ~name:"rig-setup" (fun () ->
         let dev_peer =
           fail_on_error "peer attach" (Native_net.attach ~name:"peer0" peer E1000.driver bdf_peer)
         in
         fail_on_error "peer up" (Netstack.ifconfig_up peer.Kernel.net dev_peer);
         let dev_dut, started =
           match mode with
           | Kernel_driver ->
             let dev =
               fail_on_error "dut attach"
                 (Native_net.attach ~name:"eth0" dut E1000.driver bdf_dut)
             in
             (dev, None)
           | Sud_driver ->
             let sp = Safe_pci.init dut in
             let s =
               fail_on_error "dut sud start"
                 (Driver_host.start_net dut sp ~bdf:bdf_dut ~name:"eth0" ~defensive_copy
                    E1000.driver)
             in
             (Driver_host.netdev s, Some s)
         in
         fail_on_error "dut up" (Netstack.ifconfig_up dut.Kernel.net dev_dut);
         rig := Some { eng; dut; peer; dev_dut; dev_peer; nic_dut; started })
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng;
  match !rig with
  | Some r -> r
  | None -> failwith "netperf rig setup did not complete"

(* Sample [rate_of] (a monotone counter) every interval until the CI
   converges; returns (rate_per_sec, cpu_fraction, samples). *)
let measure rig ~counter =
  let eng = rig.eng in
  let cpu = rig.dut.Kernel.cpu in
  let rates = Stats.Moments.create () in
  let cpus = Stats.Moments.create () in
  let samples = ref 0 in
  let finished = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"netperf-measure"
       (fun () ->
          ignore (Fiber.sleep eng warmup_ns : Fiber.wake);
          let continue_ = ref true in
          while !continue_ do
            let c0 = counter () in
            let b0 = Cpu.busy_ns cpu in
            let t0 = Engine.now eng in
            ignore (Fiber.sleep eng interval_ns : Fiber.wake);
            let dt = Engine.now eng - t0 in
            let rate = float_of_int (counter () - c0) *. 1e9 /. float_of_int dt in
            Stats.Moments.add rates rate;
            Stats.Moments.add cpus (Cpu.utilization cpu ~since_busy:b0 ~since_time:t0);
            incr samples;
            if
              !samples >= max_samples
              || (!samples >= 5
                  && Stats.Moments.converged rates ~confidence:0.99 ~accuracy:0.05)
            then continue_ := false
          done;
          finished := true)
     : Fiber.t);
  (* Run until the measurement fiber finishes (traffic fibers keep going). *)
  let guard = ref 0 in
  while (not !finished) && !guard < 10_000 do
    incr guard;
    Engine.run ~max_events:2_000_000
      ~max_time:(Engine.now eng + (5 * interval_ns))
      eng
  done;
  if not !finished then failwith "netperf measurement did not converge or deadlocked";
  (Stats.Moments.mean rates, Stats.Moments.mean cpus, !samples)

let get_rig ?rig mode = match rig with Some r -> r | None -> make_rig mode

(* ---- TCP_STREAM: peer streams to DUT; DUT receive throughput ---- *)

let tcp_stream ?rig mode =
  let rig = get_rig ?rig mode in
  let bytes_received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"tcp-server"
       (fun () ->
          let st = Netstack.stream_listen rig.dut.Kernel.net rig.dev_dut ~port:5001 in
          let rec drain () =
            match Netstack.stream_recv rig.dut.Kernel.net st with
            | Some b ->
              bytes_received := !bytes_received + Bytes.length b;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"tcp-client"
       (fun () ->
          ignore (Fiber.sleep rig.eng 1_000_000 : Fiber.wake);
          match
            Netstack.stream_connect rig.peer.Kernel.net rig.dev_peer ~dst:mac_dut
              ~dst_port:5001 ~src_port:45000
          with
          | Error _ -> ()
          | Ok st ->
            (* 16384-byte sends into an 87380-ish window, as netperf does. *)
            let chunk = Bytes.make 16384 's' in
            let rec pump () =
              match Netstack.stream_send rig.peer.Kernel.net st chunk with
              | Ok () -> pump ()
              | Error _ -> ()
            in
            pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !bytes_received) in
  { throughput = rate *. 8.0 /. 1e6; units = "Mbits/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_STREAM TX: DUT floods the peer with 64-byte datagrams ---- *)

let udp_stream_tx ?rig mode =
  let rig = get_rig ?rig mode in
  let received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"udp-sink"
       (fun () ->
          let sock = Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:7 in
          let rec drain () =
            match Netstack.udp_recv rig.peer.Kernel.net sock with
            | Some _ ->
              incr received;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"udp-source"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:9000 in
          let payload = Bytes.make msg_size 'u' in
          let rec pump () =
            ignore
              (Netstack.udp_sendto rig.dut.Kernel.net sock ~dst:mac_peer ~dst_port:7 payload
               : [ `Sent | `Dropped ]);
            pump ()
          in
          pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  { throughput = rate /. 1e3; units = "Kpackets/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_STREAM RX: peer floods the DUT ---- *)

let udp_stream_rx ?rig mode =
  let rig = get_rig ?rig mode in
  let received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"udp-sink"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:7 in
          let rec drain () =
            match Netstack.udp_recv rig.dut.Kernel.net sock with
            | Some _ ->
              incr received;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  (* Two sender fibers on the 4-core peer so the DUT is the bottleneck. *)
  for i = 1 to 2 do
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs)
         ~name:(Printf.sprintf "udp-source-%d" i) (fun () ->
             let sock =
               Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:(9000 + i)
             in
             let payload = Bytes.make msg_size 'u' in
             let rec pump () =
               ignore
                 (Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:7 payload
                  : [ `Sent | `Dropped ]);
               pump ()
             in
             pump ())
       : Fiber.t)
  done;
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  { throughput = rate /. 1e3; units = "Kpackets/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_RR: request/response ping-pong, client on the peer ---- *)

let udp_rr ?rig mode =
  let rig = get_rig ?rig mode in
  let transactions = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"rr-server"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:7 in
          let rec serve () =
            match Netstack.udp_recv rig.dut.Kernel.net sock with
            | Some (data, (src, sport)) ->
              ignore
                (Netstack.udp_sendto rig.dut.Kernel.net sock ~dst:src ~dst_port:sport data
                 : [ `Sent | `Dropped ]);
              serve ()
            | None -> ()
          in
          serve ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"rr-client"
       (fun () ->
          let sock = Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:9000 in
          let payload = Bytes.make msg_size 'r' in
          let rec pump () =
            match
              Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:7 payload
            with
            | `Dropped -> pump ()
            | `Sent ->
              (match Netstack.udp_recv rig.peer.Kernel.net sock with
               | Some _ ->
                 incr transactions;
                 pump ()
               | None -> ())
          in
          pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !transactions) in
  { throughput = rate; units = "Tx/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- netperf_mq: the multiqueue sweep ---- *)

(* Aggregate UDP receive across [mq_flows] concurrent flows (distinct port
   pairs, so RSS spreads them), with the DUT's e1000 brought up SUD-style
   on 1..8 MSI-X vectors.  The DUT gets 8 cores so the core count never
   caps the sweep: what scales is the number of parallel channels through
   the driver process — per-vector interrupts, per-queue uchan rings,
   per-queue service fibers. *)

type mq_point = {
  mq_queues : int;
  mq_kpps : float;
  mq_cpu_pct : float;
  mq_samples : int;
  mq_rxq_frames : int list;   (* device-side frames landed per RX queue *)
}

let mq_flows = 8

(* Destination ports chosen so the 8 flows shard perfectly under
   [Rss.queue_for]: one flow per queue at 8 queues, two per queue at 4,
   four per queue at 2.  Naive consecutive ports leave queues idle and
   understate the multiqueue win. *)
let mq_dports = [| 7; 9; 10; 11; 13; 14; 23; 33 |]

let udp_multi_rx ~queues =
  let rig = make_rig ~queues ~dut_cores:8 ~peer_cores:16 Sud_driver in
  let received = ref 0 in
  for i = 0 to mq_flows - 1 do
    let port = mq_dports.(i) in
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs)
         ~name:(Printf.sprintf "mq-sink-%d" i) (fun () ->
             let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port in
             let rec drain () =
               match Netstack.udp_recv rig.dut.Kernel.net sock with
               | Some _ ->
                 incr received;
                 drain ()
               | None -> ()
             in
             drain ())
       : Fiber.t);
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs)
         ~name:(Printf.sprintf "mq-source-%d" i) (fun () ->
             let sock =
               Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:(9093 + port)
             in
             let payload = Bytes.make msg_size 'm' in
             let rec pump () =
               ignore
                 (Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:port
                    payload
                  : [ `Sent | `Dropped ]);
               pump ()
             in
             pump ())
       : Fiber.t)
  done;
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  { mq_queues = queues;
    mq_kpps = rate /. 1e3;
    mq_cpu_pct = cpu *. 100.0;
    mq_samples = samples;
    mq_rxq_frames =
      List.init queues (fun q -> E1000_dev.rx_queue_frames rig.nic_dut ~queue:q) }

let mq_sweep ?(queue_counts = [ 1; 2; 4; 8 ]) () =
  List.map (fun queues -> udp_multi_rx ~queues) queue_counts

type row = { test : string; driver : string; value : string; cpu : string }

let row_of test mode (r : result) =
  { test;
    driver = mode_name mode;
    value = Printf.sprintf "%.0f %s" r.throughput r.units;
    cpu = Printf.sprintf "%.0f%%" (r.cpu_pct +. 0.5) }

let figure8 () =
  List.concat_map
    (fun (test, bench) ->
       List.map
         (fun mode -> row_of test mode (bench mode))
         [ Kernel_driver; Sud_driver ])
    [ ("TCP_STREAM", fun m -> tcp_stream m);
      ("UDP_STREAM TX", fun m -> udp_stream_tx m);
      ("UDP_STREAM RX", fun m -> udp_stream_rx m);
      ("UDP_RR", fun m -> udp_rr m) ]
