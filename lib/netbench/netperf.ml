type mode = Kernel_driver | Sud_driver

let mode_name = function Kernel_driver -> "Kernel driver" | Sud_driver -> "Untrusted driver"

type result = {
  throughput : float;
  units : string;
  cpu_pct : float;
  samples : int;
}

type rig = {
  eng : Engine.t;
  dut : Kernel.t;
  peer : Kernel.t;
  dev_dut : Netdev.t;
  dev_peer : Netdev.t;
  nic_dut : E1000_dev.t;
  started : Driver_host.started option;
}

let msg_size = 64
let warmup_ns = 20_000_000
let interval_ns = 50_000_000
let max_samples = 40

let mac_dut = Bytes.of_string "\x52\x54\x00\x00\x00\x01"
let mac_peer = Bytes.of_string "\x52\x54\x00\x00\x00\x02"

let fail_on_error what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

let make_rig ?cost_model ?(defensive_copy = true) ?iommu_mode ?(queues = 1) ?(peer_queues = 1)
    ?(dut_cores = 2) ?(peer_cores = 4) ?rate_bps mode =
  let eng = Engine.create () in
  let dut = Kernel.boot ?cost_model ?iommu_mode ~cores:dut_cores eng in
  let peer = Kernel.boot ?cost_model ~cores:peer_cores eng in
  let medium = Net_medium.create eng ?rate_bps () in
  let nic_dut = E1000_dev.create eng ~mac:mac_dut ~medium ~queues () in
  let nic_peer = E1000_dev.create eng ~mac:mac_peer ~medium ~queues:peer_queues () in
  let bdf_dut = Kernel.attach_pci dut (E1000_dev.device nic_dut) in
  let bdf_peer = Kernel.attach_pci peer (E1000_dev.device nic_peer) in
  let rig = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process dut.Kernel.procs) ~name:"rig-setup" (fun () ->
         let dev_peer =
           fail_on_error "peer attach" (Native_net.attach ~name:"peer0" peer E1000.driver bdf_peer)
         in
         fail_on_error "peer up" (Netstack.ifconfig_up peer.Kernel.net dev_peer);
         let dev_dut, started =
           match mode with
           | Kernel_driver ->
             let dev =
               fail_on_error "dut attach"
                 (Native_net.attach ~name:"eth0" dut E1000.driver bdf_dut)
             in
             (dev, None)
           | Sud_driver ->
             let sp = Safe_pci.init dut in
             let s =
               fail_on_error "dut sud start"
                 (Driver_host.launch dut sp ~bdf:bdf_dut ~name:"eth0"
                    (Driver_host.net ~defensive_copy ()) E1000.driver)
             in
             (Driver_host.netdev s, Some s)
         in
         fail_on_error "dut up" (Netstack.ifconfig_up dut.Kernel.net dev_dut);
         rig := Some { eng; dut; peer; dev_dut; dev_peer; nic_dut; started })
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng;
  match !rig with
  | Some r -> r
  | None -> failwith "netperf rig setup did not complete"

(* Sample [rate_of] (a monotone counter) every interval until the CI
   converges; returns (rate_per_sec, cpu_fraction, samples). *)
let measure rig ~counter =
  let eng = rig.eng in
  let cpu = rig.dut.Kernel.cpu in
  let rates = Stats.Moments.create () in
  let cpus = Stats.Moments.create () in
  let samples = ref 0 in
  let finished = ref false in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"netperf-measure"
       (fun () ->
          ignore (Fiber.sleep eng warmup_ns : Fiber.wake);
          let continue_ = ref true in
          while !continue_ do
            let c0 = counter () in
            let b0 = Cpu.busy_ns cpu in
            let t0 = Engine.now eng in
            ignore (Fiber.sleep eng interval_ns : Fiber.wake);
            let dt = Engine.now eng - t0 in
            let rate = float_of_int (counter () - c0) *. 1e9 /. float_of_int dt in
            Stats.Moments.add rates rate;
            Stats.Moments.add cpus (Cpu.utilization cpu ~since_busy:b0 ~since_time:t0);
            incr samples;
            if
              !samples >= max_samples
              || (!samples >= 5
                  && Stats.Moments.converged rates ~confidence:0.99 ~accuracy:0.05)
            then continue_ := false
          done;
          finished := true)
     : Fiber.t);
  (* Run until the measurement fiber finishes (traffic fibers keep going). *)
  let guard = ref 0 in
  while (not !finished) && !guard < 10_000 do
    incr guard;
    Engine.run ~max_events:2_000_000
      ~max_time:(Engine.now eng + (5 * interval_ns))
      eng
  done;
  if not !finished then failwith "netperf measurement did not converge or deadlocked";
  (Stats.Moments.mean rates, Stats.Moments.mean cpus, !samples)

let get_rig ?rig mode = match rig with Some r -> r | None -> make_rig mode

(* ---- TCP_STREAM: peer streams to DUT; DUT receive throughput ---- *)

let tcp_stream ?rig mode =
  let rig = get_rig ?rig mode in
  let bytes_received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"tcp-server"
       (fun () ->
          let st = Netstack.stream_listen rig.dut.Kernel.net rig.dev_dut ~port:5001 in
          let rec drain () =
            match Netstack.stream_recv rig.dut.Kernel.net st with
            | Some b ->
              bytes_received := !bytes_received + Bytes.length b;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"tcp-client"
       (fun () ->
          ignore (Fiber.sleep rig.eng 1_000_000 : Fiber.wake);
          match
            Netstack.stream_connect rig.peer.Kernel.net rig.dev_peer ~dst:mac_dut
              ~dst_port:5001 ~src_port:45000
          with
          | Error _ -> ()
          | Ok st ->
            (* 16384-byte sends into an 87380-ish window, as netperf does. *)
            let chunk = Bytes.make 16384 's' in
            let rec pump () =
              match Netstack.stream_send rig.peer.Kernel.net st chunk with
              | Ok () -> pump ()
              | Error _ -> ()
            in
            pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !bytes_received) in
  { throughput = rate *. 8.0 /. 1e6; units = "Mbits/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_STREAM TX: DUT floods the peer with 64-byte datagrams ---- *)

let udp_stream_tx ?rig mode =
  let rig = get_rig ?rig mode in
  let received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"udp-sink"
       (fun () ->
          let sock = Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:7 in
          let rec drain () =
            match Netstack.udp_recv rig.peer.Kernel.net sock with
            | Some _ ->
              incr received;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"udp-source"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:9000 in
          let payload = Bytes.make msg_size 'u' in
          let rec pump () =
            ignore
              (Netstack.udp_sendto rig.dut.Kernel.net sock ~dst:mac_peer ~dst_port:7 payload
               : [ `Sent | `Dropped ]);
            pump ()
          in
          pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  { throughput = rate /. 1e3; units = "Kpackets/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_STREAM RX: peer floods the DUT ---- *)

let udp_stream_rx ?rig mode =
  let rig = get_rig ?rig mode in
  let received = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"udp-sink"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:7 in
          let rec drain () =
            match Netstack.udp_recv rig.dut.Kernel.net sock with
            | Some _ ->
              incr received;
              drain ()
            | None -> ()
          in
          drain ())
     : Fiber.t);
  (* Two sender fibers on the 4-core peer so the DUT is the bottleneck. *)
  for i = 1 to 2 do
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs)
         ~name:(Printf.sprintf "udp-source-%d" i) (fun () ->
             let sock =
               Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:(9000 + i)
             in
             let payload = Bytes.make msg_size 'u' in
             let rec pump () =
               ignore
                 (Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:7 payload
                  : [ `Sent | `Dropped ]);
               pump ()
             in
             pump ())
       : Fiber.t)
  done;
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  { throughput = rate /. 1e3; units = "Kpackets/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- UDP_RR: request/response ping-pong, client on the peer ---- *)

let udp_rr ?rig mode =
  let rig = get_rig ?rig mode in
  let transactions = ref 0 in
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs) ~name:"rr-server"
       (fun () ->
          let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port:7 in
          let rec serve () =
            match Netstack.udp_recv rig.dut.Kernel.net sock with
            | Some (data, (src, sport)) ->
              ignore
                (Netstack.udp_sendto rig.dut.Kernel.net sock ~dst:src ~dst_port:sport data
                 : [ `Sent | `Dropped ]);
              serve ()
            | None -> ()
          in
          serve ())
     : Fiber.t);
  ignore
    (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs) ~name:"rr-client"
       (fun () ->
          let sock = Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:9000 in
          let payload = Bytes.make msg_size 'r' in
          let rec pump () =
            match
              Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:7 payload
            with
            | `Dropped -> pump ()
            | `Sent ->
              (match Netstack.udp_recv rig.peer.Kernel.net sock with
               | Some _ ->
                 incr transactions;
                 pump ()
               | None -> ())
          in
          pump ())
     : Fiber.t);
  let rate, cpu, samples = measure rig ~counter:(fun () -> !transactions) in
  { throughput = rate; units = "Tx/sec"; cpu_pct = cpu *. 100.0; samples }

(* ---- netperf_mq: the multiqueue sweep ---- *)

(* Aggregate UDP receive across [mq_flows] concurrent flows (distinct port
   pairs, so RSS spreads them), with the DUT's e1000 brought up SUD-style
   on 1..8 MSI-X vectors.  The DUT gets 8 cores so the core count never
   caps the sweep: what scales is the number of parallel channels through
   the driver process — per-vector interrupts, per-queue uchan rings,
   per-queue service fibers. *)

type mq_point = {
  mq_queues : int;
  mq_kpps : float;
  mq_cpu_pct : float;
  mq_samples : int;
  mq_rxq_frames : int list;   (* device-side frames landed per RX queue *)
}

let mq_flows = 8

(* Destination ports chosen so the 8 flows shard perfectly under
   [Rss.queue_for]: one flow per queue at 8 queues, two per queue at 4,
   four per queue at 2.  Naive consecutive ports leave queues idle and
   understate the multiqueue win. *)
let mq_dports = [| 7; 9; 10; 11; 13; 14; 23; 33 |]

(* Common body of the multiqueue and batch benches: [mq_flows] concurrent
   UDP flows into the SUD DUT; returns the rate plus absolute frame and
   IRQ-upcall counts so callers can derive the coalescing ratio.  [batch]
   overrides the uchan accumulation threshold (1 = ship every frame in
   its own slot, reproducing the pre-batching wire traffic). *)
let udp_multi_rx_gen ?batch ?rate_bps ?peer_queues ~queues () =
  let rig = make_rig ~queues ?peer_queues ~dut_cores:8 ~peer_cores:16 ?rate_bps Sud_driver in
  (match batch, rig.started with
   | Some b, Some s -> Uchan.set_batch_limit (Driver_host.chan s) b
   | _ -> ());
  let irqs () =
    match rig.started with
    | Some s -> Safe_pci.grant_irqs_delivered (Driver_host.grant s)
    | None -> 0
  in
  let irqs0 = irqs () in
  let received = ref 0 in
  for i = 0 to mq_flows - 1 do
    let port = mq_dports.(i) in
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.dut.Kernel.procs)
         ~name:(Printf.sprintf "mq-sink-%d" i) (fun () ->
             let sock = Netstack.udp_bind rig.dut.Kernel.net rig.dev_dut ~port in
             let rec drain () =
               match Netstack.udp_recv rig.dut.Kernel.net sock with
               | Some _ ->
                 incr received;
                 drain ()
               | None -> ()
             in
             drain ())
       : Fiber.t);
    ignore
      (Process.spawn_fiber (Process.kernel_process rig.peer.Kernel.procs)
         ~name:(Printf.sprintf "mq-source-%d" i) (fun () ->
             let sock =
               Netstack.udp_bind rig.peer.Kernel.net rig.dev_peer ~port:(9093 + port)
             in
             let payload = Bytes.make msg_size 'm' in
             let rec pump () =
               ignore
                 (Netstack.udp_sendto rig.peer.Kernel.net sock ~dst:mac_dut ~dst_port:port
                    payload
                  : [ `Sent | `Dropped ]);
               pump ()
             in
             pump ())
       : Fiber.t)
  done;
  let rate, cpu, samples = measure rig ~counter:(fun () -> !received) in
  (rig, rate, cpu, samples, !received, irqs () - irqs0)

let udp_multi_rx ~queues =
  let rig, rate, cpu, samples, _frames, _irqs = udp_multi_rx_gen ~queues () in
  { mq_queues = queues;
    mq_kpps = rate /. 1e3;
    mq_cpu_pct = cpu *. 100.0;
    mq_samples = samples;
    mq_rxq_frames =
      List.init queues (fun q -> E1000_dev.rx_queue_frames rig.nic_dut ~queue:q) }

let mq_sweep ?(queue_counts = [ 1; 2; 4; 8 ]) () =
  List.map (fun queues -> udp_multi_rx ~queues) queue_counts

(* ---- netperf_batch: frame aggregation sweep (make bench-batch) ---- *)

type batch_point = {
  bp_queues : int;
  bp_batch : int;               (* uchan batch limit applied to the DUT *)
  bp_kpps : float;
  bp_cpu_pct : float;
  bp_samples : int;
  bp_frames : int;              (* datagrams delivered over the whole run *)
  bp_irqs : int;                (* interrupt upcalls forwarded over the run *)
  bp_cpu_ns_per_frame : float;  (* DUT CPU busy-ns per delivered datagram *)
}

(* The batch sweep runs on a 10 GbE medium: at 1 Gb/s the 64-byte-payload
   flood saturates the wire itself at ~1.126 Mpps (111 bytes on the wire
   per frame), which is exactly where BENCH_4's 4- and 8-queue points sit
   — no datapath change can move a line-rate-bound number.  Ten gigabit
   puts the bottleneck back on per-frame CPU cost, which is what frame
   aggregation and the fused copy+checksum attack. *)
let batch_rate_bps = 10_000_000_000

(* The peer drives the flood through an 8-queue NIC of its own: with one
   TX queue, HARD_TX_LOCK serializes every flow through one ~620ns xmit
   critical section — a 1.61Mpps sender-side ceiling that would masquerade
   as the DUT plateau.  The peer exists to be overprovisioned. *)
let peer_tx_queues = 8

let udp_batch_rx ~queues ~batch =
  let rig, rate, cpu, samples, frames, irqs =
    udp_multi_rx_gen ~batch ~rate_bps:batch_rate_bps ~peer_queues:peer_tx_queues ~queues ()
  in
  { bp_queues = queues;
    bp_batch = batch;
    bp_kpps = rate /. 1e3;
    bp_cpu_pct = cpu *. 100.0;
    bp_samples = samples;
    bp_frames = frames;
    bp_irqs = irqs;
    bp_cpu_ns_per_frame =
      float_of_int (Cpu.busy_ns rig.dut.Kernel.cpu) /. float_of_int (max 1 frames) }

let batch_sweep ?(points = [ (1, 1); (1, 32); (8, 1); (8, 32) ]) () =
  List.map (fun (queues, batch) -> udp_batch_rx ~queues ~batch) points

type row = { test : string; driver : string; value : string; cpu : string }

let row_of test mode (r : result) =
  { test;
    driver = mode_name mode;
    value = Printf.sprintf "%.0f %s" r.throughput r.units;
    cpu = Printf.sprintf "%.0f%%" (r.cpu_pct +. 0.5) }

let figure8 () =
  List.concat_map
    (fun (test, bench) ->
       List.map
         (fun mode -> row_of test mode (bench mode))
         [ Kernel_driver; Sud_driver ])
    [ ("TCP_STREAM", fun m -> tcp_stream m);
      ("UDP_STREAM TX", fun m -> udp_stream_tx m);
      ("UDP_STREAM RX", fun m -> udp_stream_rx m);
      ("UDP_RR", fun m -> udp_rr m) ]
