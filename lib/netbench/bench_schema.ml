type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let schema n = ("schema", Str (Printf.sprintf "sud-bench/%d" n))

let fnum ?(dp = 3) v =
  if not (Float.is_finite v) then Null
  else begin
    let scale = Float.pow 10. (float_of_int dp) in
    Float (Float.round (v *. scale) /. scale)
  end

(* ---- printing ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A float always renders with a decimal point (or exponent) so it
   parses back as a Float, not an Int: 100. -> "100.0". *)
let float_str v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.12g" v in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s else s ^ ".0"

let rec compact = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_str f
  | Str s -> "\"" ^ escape s ^ "\""
  | List vs -> "[" ^ String.concat ", " (List.map compact vs) ^ "]"
  | Obj fs ->
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ compact v) fs)
    ^ " }"

(* Sweep-point rows and short arrays stay on one line (the diffable
   table style of the checked-in baselines); anything wider breaks. *)
let inline_budget = 120

let rec render b indent v =
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ -> Buffer.add_string b (compact v)
  | List [] -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | (List _ | Obj _) when String.length (compact v) + indent <= inline_budget ->
    Buffer.add_string b (compact v)
  | List vs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_string b ",\n";
         Buffer.add_string b pad;
         render b (indent + 2) v)
      vs;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b ']'
  | Obj fs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string b ",\n";
         Buffer.add_string b pad;
         Buffer.add_string b ("\"" ^ escape k ^ "\": ");
         render b (indent + 2) v)
      fs;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 2048 in
  render b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let write ~path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* ---- parsing ---- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else begin
             (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* UTF-8 encode the code point (escaped control bytes
                   and the BMP are all the baselines ever carry). *)
                if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
             advance ()
           end);
          loop ()
        | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt lit with
         | Some f -> Float f
         | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
    else Ok v
  with Parse (at, msg) -> Error (Printf.sprintf "parse error at byte %d: %s" at msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (match of_string s with Ok v -> Ok v | Error e -> Error (path ^ ": " ^ e))

(* ---- readers ---- *)

let member v k =
  match v with Obj fs -> List.assoc_opt k fs | _ -> None

let path v keys = List.fold_left (fun acc k -> Option.bind acc (fun v -> member v k)) (Some v) keys

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let as_int = function Int i -> Some i | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List vs -> Some vs | _ -> None

let find_point points keys =
  List.find_opt
    (fun p -> List.for_all (fun (k, v) -> member p k = Some v) keys)
    points
