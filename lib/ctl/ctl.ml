(* Administrative operations behind sudctl.  See ctl.mli. *)

let ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

let state_name = function
  | Supervisor.Running -> "running"
  | Supervisor.Recovering -> "recovering"
  | Supervisor.Quarantined -> "quarantined"
  | Supervisor.Stopped -> "stopped"

(* sudctl blk status *)

type blk_status = {
  bs_name : string;
  bs_capacity_sectors : int;
  bs_state : string;
  bs_restarts : int;
  bs_detections : int;
  bs_inflight : int;
  bs_retained : int;
  bs_cache_hits : int;
  bs_cache_misses : int;
  bs_merges : int;
  bs_flush_barriers : int;
  bs_qp_summary : string;
  bs_inflight_summary : string;
  bs_writes_ok : int;
  bs_reads_ok : int;
  bs_io_errors : int;
}

let probe_pages = 32

let blk_status () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:2_000 w (fun () ->
      let sv =
        ok "supervise nvme"
          (Supervisor.start_blk w.Fault_inject.bw_k w.Fault_inject.bw_sp
             ~policy:(Fault_inject.soak_policy ~max_restarts:10)
             ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory)
      in
      let eng = w.Fault_inject.bw_eng in
      let deadline = Engine.now eng + 1_000_000_000 in
      let rec blkdev () =
        match Supervisor.blkdev sv with
        | Some bd when Blkdev.capacity bd > 0 -> bd
        | _ ->
          if Engine.now eng > deadline then failwith "blk status: no block device registered";
          ignore (Fiber.sleep eng 100_000 : Fiber.wake);
          blkdev ()
      in
      let bd = blkdev () in
      (* A short synchronous probe so every layer has something to
         count: dirty a few pages, fsync them out, read them back, and
         finish with one write-through. *)
      let writes = ref 0 and reads = ref 0 and errors = ref 0 in
      let page i = Bytes.make Blkdev.page_size (Char.chr (0x40 + (i land 0x1f))) in
      for i = 0 to probe_pages - 1 do
        match Blkdev.write bd ~lba:(i * Blkdev.page_sectors) (page i) () with
        | Ok () -> incr writes
        | Error _ -> incr errors
      done;
      (match Blkdev.fsync bd () with Ok () -> () | Error _ -> incr errors);
      for i = 0 to probe_pages - 1 do
        match Blkdev.read bd ~lba:(i * Blkdev.page_sectors) ~sectors:Blkdev.page_sectors () with
        | Ok data when data = page i -> incr reads
        | Ok _ | Error _ -> incr errors
      done;
      (match Blkdev.write_fua bd ~lba:0 (page 0) () with
       | Ok () -> incr writes
       | Error _ -> incr errors);
      let st = Supervisor.stats sv in
      let inflight, retained, inflight_summary =
        match Supervisor.current_blk sv with
        | Some s ->
          let p = Driver_host.blk_proxy s in
          (Proxy_blk.inflight p, Proxy_blk.retained p, Proxy_blk.inflight_summary p)
        | None -> (0, 0, "(no live driver generation)")
      in
      let hits, misses, merges, barriers = Blkdev.metrics bd in
      let r =
        { bs_name = Blkdev.name bd;
          bs_capacity_sectors = Blkdev.capacity bd;
          bs_state = state_name st.Supervisor.st_state;
          bs_restarts = st.Supervisor.st_restarts;
          bs_detections = st.Supervisor.st_detections;
          bs_inflight = inflight;
          bs_retained = retained;
          bs_cache_hits = hits;
          bs_cache_misses = misses;
          bs_merges = merges;
          bs_flush_barriers = barriers;
          bs_qp_summary = Nvme_dev.debug_qp_summary w.Fault_inject.bw_nvme;
          bs_inflight_summary = inflight_summary;
          bs_writes_ok = !writes;
          bs_reads_ok = !reads;
          bs_io_errors = !errors }
      in
      Supervisor.stop sv;
      r)

(* sudctl trace smoke *)

type trace_report = {
  ts_fault : string;
  ts_detect_us : int;
  ts_outage_us : int;
  ts_exported : int;
  ts_parsed : int;
  ts_chain : (string * string) list;
  ts_chain_found : bool;
  ts_out : string;
}

let trace_chain =
  [ ("uchan", "rpc"); ("iommu", "fault"); ("sup", "detect"); ("sup", "kill");
    ("sup", "restart") ]

let trace_smoke ~out =
  (* Size the ring for the whole run: the interesting spans happen in the
     first couple of simulated milliseconds and must survive the seconds
     of post-recovery traffic that follow. *)
  Sud_obs.Trace.set_capacity (1 lsl 19);
  Sud_obs.Trace.set_enabled true;
  let r = Fault_inject.(measure_recovery Dma_violation) in
  Sud_obs.Trace.set_enabled false;
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let n = Sud_obs.Trace.write_jsonl ~path:out in
  let spans =
    let ic = open_in out in
    let acc = ref [] in
    (try
       while true do
         match Sud_obs.Trace.span_of_line (input_line ic) with
         | Some sp -> acc := sp :: !acc
         | None -> failwith "trace smoke: unparseable JSONL line"
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  in
  { ts_fault = r.Fault_inject.rs_fault;
    ts_detect_us = r.Fault_inject.rs_detect_ns / 1000;
    ts_outage_us = r.Fault_inject.rs_outage_ns / 1000;
    ts_exported = n;
    ts_parsed = List.length spans;
    ts_chain = trace_chain;
    ts_chain_found = List.length spans = n && Sud_obs.Trace.chain_exists spans trace_chain;
    ts_out = out }

(* sudctl driver {list,status,upgrade,failover} *)

let standby_name st = Standby.status_name st

type driver_row = {
  dv_name : string;
  dv_class : string;
  dv_state : string;
  dv_standby : string;
  dv_restarts : int;
  dv_upgrades : int;
}

let warm = Fault_inject.warm_policy ~max_restarts:10

let row ~cls sv =
  { dv_name = Supervisor.name sv;
    dv_class = cls;
    dv_state = state_name (Supervisor.state sv);
    dv_standby = standby_name (Supervisor.standby_status sv);
    dv_restarts = (Supervisor.stats sv).Supervisor.st_restarts;
    dv_upgrades = Supervisor.upgrades sv }

let driver_list () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:5_000 w (fun () ->
      let k = w.Fault_inject.bw_k in
      let eng = w.Fault_inject.bw_eng in
      (* One device of each class behind the same class-indexed launch
         path: the listing is the API's sales pitch. *)
      let medium = Net_medium.create eng () in
      let nic =
        E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:01") ~medium ()
      in
      let nbdf = Kernel.attach_pci k (E1000_dev.device nic) in
      let sv_net =
        ok "supervise e1000"
          (Supervisor.start k w.Fault_inject.bw_sp ~policy:warm ~bdf:nbdf
             (fun ~attempt:_ -> E1000.driver))
      in
      let sv_blk =
        ok "supervise nvme"
          (Supervisor.start_blk k w.Fault_inject.bw_sp ~policy:warm
             ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory)
      in
      (* Give both watchdogs a tick so the standbys park. *)
      ignore (Fault_inject.wait_standby_ready ~eng sv_net ~budget_ms:2_000 : bool);
      ignore (Fault_inject.wait_standby_ready ~eng sv_blk ~budget_ms:2_000 : bool);
      let rows = [ row ~cls:"net" sv_net; row ~cls:"blk" sv_blk ] in
      Supervisor.stop sv_net;
      Supervisor.stop sv_blk;
      rows)

type driver_status = {
  ds_name : string;
  ds_class : string;
  ds_state : string;
  ds_sysfs_state : string;
  ds_standby : string;
  ds_warmed : int;  (** standby generations parked Ready so far *)
  ds_poisoned : int;  (** standbys discarded as poisoned *)
  ds_restarts : int;
  ds_warm_swaps : int;
  ds_upgrades : int;
  ds_detections : int;
}

let sysfs_state k bdf =
  match Sysfs.find_bdf k.Kernel.sysfs bdf with
  | Some e -> Option.value ~default:"" (Sysfs.attr e "sud_state")
  | None -> ""

let driver_status () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:5_000 w (fun () ->
      let k = w.Fault_inject.bw_k in
      let sv =
        ok "supervise nvme"
          (Supervisor.start_blk k w.Fault_inject.bw_sp ~policy:warm
             ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory)
      in
      ignore
        (Fault_inject.wait_standby_ready ~eng:w.Fault_inject.bw_eng sv ~budget_ms:2_000
         : bool);
      let st = Supervisor.stats sv in
      let warmed, poisoned = Supervisor.standby_stats sv in
      let r =
        { ds_name = Supervisor.name sv;
          ds_class = "blk";
          ds_state = state_name st.Supervisor.st_state;
          ds_sysfs_state = sysfs_state k w.Fault_inject.bw_bdf;
          ds_standby = standby_name (Supervisor.standby_status sv);
          ds_warmed = warmed;
          ds_poisoned = poisoned;
          ds_restarts = st.Supervisor.st_restarts;
          ds_warm_swaps = st.Supervisor.st_warm_swaps;
          ds_upgrades = st.Supervisor.st_upgrades;
          ds_detections = st.Supervisor.st_detections }
      in
      Supervisor.stop sv;
      r)

type swap_report = {
  sw_op : string;  (** ["upgrade"] or ["failover"] *)
  sw_ok : bool;
  sw_error : string option;
  sw_outage_us : int;  (** from the op's [Driver_restarted] event *)
  sw_warm_swaps : int;
  sw_upgrades : int;
  sw_pages_intact : int;  (** pre-swap fsynced pages that read back intact *)
  sw_io_errors : int;
  sw_state : string;
  sw_sysfs_state : string;
}

(* Shared shape of `driver upgrade` and `driver failover`: dirty and
   fsync a working set, swap generations, and prove the acked data and
   the datapath both survived. *)
let swap_probe ~op doit =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:10_000 w (fun () ->
      let k = w.Fault_inject.bw_k in
      let eng = w.Fault_inject.bw_eng in
      let sv =
        ok "supervise nvme"
          (Supervisor.start_blk k w.Fault_inject.bw_sp ~policy:warm
             ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory)
      in
      let bd =
        match Supervisor.blkdev sv with
        | Some bd -> bd
        | None -> failwith (op ^ ": no block device registered")
      in
      let errors = ref 0 in
      let page i = Bytes.make Blkdev.page_size (Char.chr (0x40 + (i land 0x1f))) in
      for i = 0 to probe_pages - 1 do
        match Blkdev.write bd ~lba:(i * Blkdev.page_sectors) (page i) () with
        | Ok () -> ()
        | Error _ -> incr errors
      done;
      (match Blkdev.fsync bd () with Ok () -> () | Error _ -> incr errors);
      ignore (Fault_inject.wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
      let outage = ref 0 in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } when !outage = 0 ->
            outage := outage_ns
          | _ -> ());
      let result = doit sv in
      ignore (Fault_inject.wait_running ~eng sv ~budget_ms:5_000 : bool);
      let intact = ref 0 in
      for i = 0 to probe_pages - 1 do
        match Blkdev.read bd ~lba:(i * Blkdev.page_sectors) ~sectors:Blkdev.page_sectors () with
        | Ok data when data = page i -> incr intact
        | Ok _ | Error _ -> incr errors
      done;
      (match Blkdev.write_fua bd ~lba:0 (page 0) () with
       | Ok () -> ()
       | Error _ -> incr errors);
      let st = Supervisor.stats sv in
      let r =
        { sw_op = op;
          sw_ok = (match result with Ok () -> true | Error _ -> false);
          sw_error = (match result with Ok () -> None | Error e -> Some e);
          sw_outage_us = !outage / 1_000;
          sw_warm_swaps = st.Supervisor.st_warm_swaps;
          sw_upgrades = st.Supervisor.st_upgrades;
          sw_pages_intact = !intact;
          sw_io_errors = !errors;
          sw_state = state_name st.Supervisor.st_state;
          sw_sysfs_state = sysfs_state k w.Fault_inject.bw_bdf }
      in
      Supervisor.stop sv;
      r)

let driver_upgrade () = swap_probe ~op:"upgrade" Supervisor.upgrade
let driver_failover () = swap_probe ~op:"failover" Supervisor.failover

(* sudctl check {explore,replay,shrink} *)

let parse_mode = function
  | "random" -> Ok `Random
  | "bounded" -> Ok `Bounded
  | m -> Error (Printf.sprintf "unknown mode %S (expected random or bounded)" m)

let check_scenarios () =
  List.map
    (fun (sc : Scenario.t) -> (sc.Scenario.sc_name, sc.sc_descr, sc.sc_canary))
    Check.scenarios

let check_explore ~scenario ~mode ~budget ~root_seed () =
  match parse_mode mode with
  | Error e -> Error e
  | Ok mode ->
    (match Check.find_scenario scenario with
     | None -> Error (Printf.sprintf "unknown scenario %S (try `sudctl check list`)" scenario)
     | Some sc -> Ok (Check.hunt ~mode ~budget sc ~root_seed))

let check_replay ~file ~times () = Check.replay_file ~file ~times

let check_shrink ~file () =
  match Sched.load file with
  | Error e -> Error e
  | Ok f ->
    (match Check.find_scenario f.Sched.f_scenario with
     | None -> Error (Printf.sprintf "%s: unknown scenario %S" file f.Sched.f_scenario)
     | Some sc ->
       let out = Filename.remove_extension (Filename.remove_extension file) ^ ".min.sched.jsonl" in
       let sh, _ =
         Check.shrink_counterexample ~save:out sc ~seed:f.f_seed f.f_decisions
       in
       Ok sh)
