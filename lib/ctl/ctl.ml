(* Administrative operations behind sudctl.  See ctl.mli. *)

let ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

let state_name = function
  | Supervisor.Running -> "running"
  | Supervisor.Recovering -> "recovering"
  | Supervisor.Quarantined -> "quarantined"
  | Supervisor.Stopped -> "stopped"

(* sudctl blk status *)

type blk_status = {
  bs_name : string;
  bs_capacity_sectors : int;
  bs_state : string;
  bs_restarts : int;
  bs_detections : int;
  bs_inflight : int;
  bs_retained : int;
  bs_cache_hits : int;
  bs_cache_misses : int;
  bs_merges : int;
  bs_flush_barriers : int;
  bs_qp_summary : string;
  bs_inflight_summary : string;
  bs_writes_ok : int;
  bs_reads_ok : int;
  bs_io_errors : int;
}

let probe_pages = 32

let blk_status () =
  let w = Fault_inject.make_blk_world () in
  Fault_inject.in_blk_world ~max_ms:2_000 w (fun () ->
      let sv =
        ok "supervise nvme"
          (Supervisor.start_blk w.Fault_inject.bw_k w.Fault_inject.bw_sp
             ~policy:(Fault_inject.soak_policy ~max_restarts:10)
             ~bdf:w.Fault_inject.bw_bdf Fault_inject.honest_blk_factory)
      in
      let eng = w.Fault_inject.bw_eng in
      let deadline = Engine.now eng + 1_000_000_000 in
      let rec blkdev () =
        match Supervisor.blkdev sv with
        | Some bd when Blkdev.capacity bd > 0 -> bd
        | _ ->
          if Engine.now eng > deadline then failwith "blk status: no block device registered";
          ignore (Fiber.sleep eng 100_000 : Fiber.wake);
          blkdev ()
      in
      let bd = blkdev () in
      (* A short synchronous probe so every layer has something to
         count: dirty a few pages, fsync them out, read them back, and
         finish with one write-through. *)
      let writes = ref 0 and reads = ref 0 and errors = ref 0 in
      let page i = Bytes.make Blkdev.page_size (Char.chr (0x40 + (i land 0x1f))) in
      for i = 0 to probe_pages - 1 do
        match Blkdev.write bd ~lba:(i * Blkdev.page_sectors) (page i) () with
        | Ok () -> incr writes
        | Error _ -> incr errors
      done;
      (match Blkdev.fsync bd () with Ok () -> () | Error _ -> incr errors);
      for i = 0 to probe_pages - 1 do
        match Blkdev.read bd ~lba:(i * Blkdev.page_sectors) ~sectors:Blkdev.page_sectors () with
        | Ok data when data = page i -> incr reads
        | Ok _ | Error _ -> incr errors
      done;
      (match Blkdev.write_fua bd ~lba:0 (page 0) () with
       | Ok () -> incr writes
       | Error _ -> incr errors);
      let st = Supervisor.stats sv in
      let inflight, retained, inflight_summary =
        match Supervisor.current_blk sv with
        | Some s ->
          let p = Driver_host.blk_proxy s in
          (Proxy_blk.inflight p, Proxy_blk.retained p, Proxy_blk.inflight_summary p)
        | None -> (0, 0, "(no live driver generation)")
      in
      let hits, misses, merges, barriers = Blkdev.metrics bd in
      let r =
        { bs_name = Blkdev.name bd;
          bs_capacity_sectors = Blkdev.capacity bd;
          bs_state = state_name st.Supervisor.st_state;
          bs_restarts = st.Supervisor.st_restarts;
          bs_detections = st.Supervisor.st_detections;
          bs_inflight = inflight;
          bs_retained = retained;
          bs_cache_hits = hits;
          bs_cache_misses = misses;
          bs_merges = merges;
          bs_flush_barriers = barriers;
          bs_qp_summary = Nvme_dev.debug_qp_summary w.Fault_inject.bw_nvme;
          bs_inflight_summary = inflight_summary;
          bs_writes_ok = !writes;
          bs_reads_ok = !reads;
          bs_io_errors = !errors }
      in
      Supervisor.stop sv;
      r)

(* sudctl trace smoke *)

type trace_report = {
  ts_fault : string;
  ts_detect_us : int;
  ts_outage_us : int;
  ts_exported : int;
  ts_parsed : int;
  ts_chain : (string * string) list;
  ts_chain_found : bool;
  ts_out : string;
}

let trace_chain =
  [ ("uchan", "rpc"); ("iommu", "fault"); ("sup", "detect"); ("sup", "kill");
    ("sup", "restart") ]

let trace_smoke ~out =
  (* Size the ring for the whole run: the interesting spans happen in the
     first couple of simulated milliseconds and must survive the seconds
     of post-recovery traffic that follow. *)
  Sud_obs.Trace.set_capacity (1 lsl 19);
  Sud_obs.Trace.set_enabled true;
  let r = Fault_inject.(measure_recovery Dma_violation) in
  Sud_obs.Trace.set_enabled false;
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let n = Sud_obs.Trace.write_jsonl ~path:out in
  let spans =
    let ic = open_in out in
    let acc = ref [] in
    (try
       while true do
         match Sud_obs.Trace.span_of_line (input_line ic) with
         | Some sp -> acc := sp :: !acc
         | None -> failwith "trace smoke: unparseable JSONL line"
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  in
  { ts_fault = r.Fault_inject.rs_fault;
    ts_detect_us = r.Fault_inject.rs_detect_ns / 1000;
    ts_outage_us = r.Fault_inject.rs_outage_ns / 1000;
    ts_exported = n;
    ts_parsed = List.length spans;
    ts_chain = trace_chain;
    ts_chain_found = List.length spans = n && Sud_obs.Trace.chain_exists spans trace_chain;
    ts_out = out }
