(** The administrative operations behind [sudctl], as a library.

    [bin/sudctl.ml] is a thin Cmdliner shim over these so the tier-1
    suite can drive the exact code paths an administrator does —
    formatting stays in the binary, everything that can fail lives
    here. *)

(** {1 sudctl blk status} *)

type blk_status = {
  bs_name : string;  (** block device name *)
  bs_capacity_sectors : int;
  bs_state : string;  (** supervisor state: running/recovering/... *)
  bs_restarts : int;
  bs_detections : int;
  bs_inflight : int;  (** proxy requests awaiting completion *)
  bs_retained : int;  (** unflushed writes retained for replay *)
  bs_cache_hits : int;
  bs_cache_misses : int;
  bs_merges : int;
  bs_flush_barriers : int;
  bs_qp_summary : string;  (** NVMe admin/IO queue-pair summary *)
  bs_inflight_summary : string;  (** {!Proxy_blk.inflight_summary} *)
  bs_writes_ok : int;  (** probe workload: acknowledged page writes *)
  bs_reads_ok : int;
  bs_io_errors : int;
}

val blk_status : unit -> blk_status
(** Boot a kernel with one emulated NVMe, start the honest sud-blk
    driver under supervision, push a short synchronous write/read/fsync
    probe through the cache, and snapshot the whole stack — supervisor,
    proxy, block layer, device — the way [sudctl blk status] reports
    it.  Everything runs inside one simulated world; the probe must
    complete with zero I/O errors for the snapshot to show a healthy
    datapath. *)

(** {1 sudctl trace smoke} *)

type trace_report = {
  ts_fault : string;
  ts_detect_us : int;  (** last-healthy instant → detection *)
  ts_outage_us : int;  (** detection → traffic restored *)
  ts_exported : int;  (** spans written to the JSONL file *)
  ts_parsed : int;  (** spans read back from it *)
  ts_chain : (string * string) list;  (** (subsystem, name) causal chain *)
  ts_chain_found : bool;
  ts_out : string;  (** where the JSONL landed *)
}

val trace_smoke : out:string -> trace_report
(** The observability end-to-end check: trace one injected DMA
    violation through detection and recovery, export the span ring to
    [out] as JSONL, parse it back, and verify the
    uchan rpc → iommu fault → supervisor detect → kill → restart causal
    chain survives the round-trip.  [ts_chain_found] is the gate. *)

(** {1 sudctl driver} *)

type driver_row = {
  dv_name : string;
  dv_class : string;  (** ["net"] or ["blk"] *)
  dv_state : string;
  dv_standby : string;  (** {!Standby.status_name} of the parked slot *)
  dv_restarts : int;
  dv_upgrades : int;
}

val driver_list : unit -> driver_row list
(** Boot one world with a supervised e1000 and a supervised NVMe —
    both behind the class-indexed {!Driver_host.launch} path, both with
    a warm standby — wait for the standbys to park, and list them the
    way [sudctl driver list] prints it. *)

type driver_status = {
  ds_name : string;
  ds_class : string;
  ds_state : string;
  ds_sysfs_state : string;  (** the device's [sud_state] attribute *)
  ds_standby : string;
  ds_warmed : int;  (** standby generations parked Ready so far *)
  ds_poisoned : int;  (** standbys discarded as poisoned *)
  ds_restarts : int;
  ds_warm_swaps : int;
  ds_upgrades : int;
  ds_detections : int;
}

val driver_status : unit -> driver_status
(** Supervise an NVMe with the warm policy, wait for the standby to
    park, and snapshot the generation machinery — including the sysfs
    [sud_state], which must read ["standby_ready"] on a healthy idle
    driver. *)

type swap_report = {
  sw_op : string;  (** ["upgrade"] or ["failover"] *)
  sw_ok : bool;
  sw_error : string option;
  sw_outage_us : int;  (** from the op's [Driver_restarted] event *)
  sw_warm_swaps : int;
  sw_upgrades : int;
  sw_pages_intact : int;  (** pre-swap fsynced pages that read back intact *)
  sw_io_errors : int;
  sw_state : string;
  sw_sysfs_state : string;
}

val driver_upgrade : unit -> swap_report
(** [sudctl driver upgrade]: dirty and fsync a working set, run
    {!Supervisor.upgrade}, and prove zero loss — every pre-swap page
    reads back intact and the datapath still serves writes. *)

val driver_failover : unit -> swap_report
(** [sudctl driver failover]: same probe around
    {!Supervisor.failover} — the operator fire drill through the real
    fault path; the swap must be served by the warm standby. *)

(** {1 sudctl check — schedule exploration, replay, shrinking} *)

val check_scenarios : unit -> (string * string * bool) list
(** [(name, description, is_canary)] for every registered scenario. *)

val check_explore :
  scenario:string -> mode:string -> budget:int -> root_seed:int64 -> unit
  -> (Check.hunt_report, string) result
(** [sudctl check explore]: run {!Check.hunt} on a named scenario —
    explore ([mode] is ["random"] or ["bounded"]), dump the first
    failing schedule under [traces/] and ddmin it. *)

val check_replay :
  file:string -> times:int -> unit -> (Check.replay_report, string) result
(** [sudctl check replay]: re-execute a recorded schedule file and
    assert bit-for-bit reproduction (trace-hash equality). *)

val check_shrink : file:string -> unit -> (Check.shrink_report, string) result
(** [sudctl check shrink]: ddmin the decision list of a saved failing
    schedule; the minimized repro lands next to it as
    [<base>.min.sched.jsonl]. *)
