(** The administrative operations behind [sudctl], as a library.

    [bin/sudctl.ml] is a thin Cmdliner shim over these so the tier-1
    suite can drive the exact code paths an administrator does —
    formatting stays in the binary, everything that can fail lives
    here. *)

(** {1 sudctl blk status} *)

type blk_status = {
  bs_name : string;  (** block device name *)
  bs_capacity_sectors : int;
  bs_state : string;  (** supervisor state: running/recovering/... *)
  bs_restarts : int;
  bs_detections : int;
  bs_inflight : int;  (** proxy requests awaiting completion *)
  bs_retained : int;  (** unflushed writes retained for replay *)
  bs_cache_hits : int;
  bs_cache_misses : int;
  bs_merges : int;
  bs_flush_barriers : int;
  bs_qp_summary : string;  (** NVMe admin/IO queue-pair summary *)
  bs_inflight_summary : string;  (** {!Proxy_blk.inflight_summary} *)
  bs_writes_ok : int;  (** probe workload: acknowledged page writes *)
  bs_reads_ok : int;
  bs_io_errors : int;
}

val blk_status : unit -> blk_status
(** Boot a kernel with one emulated NVMe, start the honest sud-blk
    driver under supervision, push a short synchronous write/read/fsync
    probe through the cache, and snapshot the whole stack — supervisor,
    proxy, block layer, device — the way [sudctl blk status] reports
    it.  Everything runs inside one simulated world; the probe must
    complete with zero I/O errors for the snapshot to show a healthy
    datapath. *)

(** {1 sudctl trace smoke} *)

type trace_report = {
  ts_fault : string;
  ts_detect_us : int;  (** last-healthy instant → detection *)
  ts_outage_us : int;  (** detection → traffic restored *)
  ts_exported : int;  (** spans written to the JSONL file *)
  ts_parsed : int;  (** spans read back from it *)
  ts_chain : (string * string) list;  (** (subsystem, name) causal chain *)
  ts_chain_found : bool;
  ts_out : string;  (** where the JSONL landed *)
}

val trace_smoke : out:string -> trace_report
(** The observability end-to-end check: trace one injected DMA
    violation through detection and recovery, export the span ring to
    [out] as JSONL, parse it back, and verify the
    uchan rpc → iommu fault → supervisor detect → kill → restart causal
    chain survives the round-trip.  [ts_chain_found] is the gate. *)
