type error = Hung | Interrupted | Closed

let hang_timeout_ns = 50_000_000      (* 50 ms before a sync upcall is declared hung *)
let full_grace_ns = 2_000_000         (* grace period on a full async ring *)
let default_batch_limit = 64
let max_queues = 16

(* Replies travel on the same rings as requests, distinguished by a high
   bit in the marshalled kind. *)
let reply_flag = 0x8000

type waiter = { cell : (Msg.t, error) result option ref; wq : Sync.Waitq.t }

type metrics = {
  um_up : Sud_obs.Metrics.counter;
  um_down : Sud_obs.Metrics.counter;
  um_notify : Sud_obs.Metrics.counter;
  um_dropped : Sud_obs.Metrics.counter;
  um_malformed : Sud_obs.Metrics.counter;
  um_malformed_frames : Sud_obs.Metrics.counter;
  um_rpc_ns : Sud_obs.Metrics.histogram;   (* sync RPC round-trip, ns *)
}

(* Per-queue slice of the channel: one ring pair, its waitqs, and the
   driver-side async batch.  Each queue is serviced by its own kernel
   worker fiber and (for data queues) its own driver fiber, so batches
   are effectively per-CPU — two queues never contend on a ring. *)
type qstate = {
  qi : int;
  k2u : Ring.t;
  u2k : Ring.t;
  u_waitq : Sync.Waitq.t;                (* driver sleeping in [wait] on this queue *)
  worker_waitq : Sync.Waitq.t;           (* kernel downcall worker sleeping *)
  k_space : Sync.Waitq.t;                (* kernel waiting for k2u space *)
  mutable batch : Msg.t list;            (* user-side async downcalls, newest first *)
  mutable batch_len : int;               (* |batch|, so batched sends stay O(1) *)
  q_up : Sud_obs.Metrics.counter;        (* per-queue labelled counters *)
  q_down : Sud_obs.Metrics.counter;
  q_dropped : Sud_obs.Metrics.counter;
}

type t = {
  k : Kernel.t;
  label : string;
  qs : qstate array;
  hang_timeout_ns : int;                 (* per-channel sync-upcall deadline *)
  mutable closed : bool;
  mutable next_seq : int;
  k_pending : (int, waiter) Hashtbl.t;   (* kernel sync upcalls awaiting replies *)
  u_pending : (int, waiter) Hashtbl.t;   (* user sync downcalls awaiting replies *)
  mutable handler : (queue:int -> Msg.t -> Msg.t option) option;
  um : metrics;
  (* Protocol conformance: every driver->kernel slot is stamped with the
     channel's generation epoch on marshal and adjudicated at ingress by
     the kernel worker (see {!Conformance}). *)
  epoch : int;
  conf : Conformance.t;
  (* Fault injection (lib/attacks): a wedged channel parks the driver's
     main loop; corrupt/drop counters garble or swallow the next driver
     replies at the transport, before the kernel worker sees them.  The
     mutator and raw injector are the live-fuzzer hooks: the former
     scribbles on each marshalled u2k slot while it is still borrowed
     (a driver corrupting traffic in flight), the latter forges whole
     slots the driver never sent. *)
  mutable wedged : bool;
  mutable corrupt_next : int;
  mutable drop_next : int;
  mutable corrupt_batch_next : int;
  mutable u2k_mutator : (queue:int -> bytes -> unit) option;
  (* Observer called before each driver-side worker kick — the quota
     layer hangs its notification token bucket here. *)
  mutable notify_hook : (queue:int -> unit) option;
  (* Driver-side batch accumulation threshold: how many async downcalls
     pile up on a queue before the batch ships without waiting for the
     driver's next kernel entry.  1 disables aggregation (every send
     flushes immediately — the pre-batching behaviour). *)
  mutable batch_limit : int;
}

let model t = Cpu.cost_model t.k.Kernel.cpu

let consume_cur t ns =
  let label = "proc:" ^ Process.name (Process.current t.k.Kernel.procs) in
  match Fiber.self () with
  | _ -> Cpu.consume t.k.Kernel.cpu ~label ns
  | exception Failure _ -> Cpu.account t.k.Kernel.cpu ~label ns

let msg_cost t = consume_cur t (model t).Cost_model.uchan_msg_ns
let validate_cost t = consume_cur t (model t).Cost_model.uchan_validate_ns
let notify_cost t = consume_cur t (model t).Cost_model.uchan_notify_ns
let syscall_cost t = consume_cur t (model t).Cost_model.syscall_ns

(* Waking a task that only just blocked is a cheap runqueue operation;
   only genuine sleeps pay the full wakeup latency. *)
let wakeup_cost_since t ~since =
  if Engine.now t.k.Kernel.eng - since > 2_000 then
    consume_cur t (model t).Cost_model.wakeup_ns

let kick t wq =
  if Sync.Waitq.waiters wq > 0 then begin
    Sud_obs.Metrics.incr t.um.um_notify;
    notify_cost t;
    ignore (Sync.Waitq.signal wq : bool)
  end

let fresh_seq t =
  t.next_seq <- t.next_seq + 1;
  t.next_seq

let num_queues t = Array.length t.qs

let qstate_of t queue =
  if queue < 0 || queue >= Array.length t.qs then
    invalid_arg
      (Printf.sprintf "Uchan(%s): no queue %d (channel has %d)" t.label queue
         (Array.length t.qs));
  t.qs.(queue)

(* Marshal straight into the ring slot — no per-message 128-byte buffer.
   [mutate] (fuzzer hook) runs on the marshalled bytes while the slot is
   still borrowed, exactly as a malicious driver racing the ring would. *)
let push_flagged ?mutate ring m ~is_reply =
  let m = if is_reply then { m with Msg.kind = m.Msg.kind lor reply_flag } else m in
  Ring.push_inplace ring (fun slot ->
      Msg.marshal_into m slot;
      match mutate with Some f -> f slot | None -> ())

let complete_waiter tbl seq result =
  match Hashtbl.find_opt tbl seq with
  | None -> false
  | Some w ->
    Hashtbl.remove tbl seq;
    w.cell := Some result;
    ignore (Sync.Waitq.signal w.wq : bool);
    true

let fail_all_waiters tbl err =
  (* Fail waiters in seq order: completion signals schedule wakeup events,
     so hash-order traversal here would leak Hashtbl layout into the
     engine's event order and destabilize schedule replay. *)
  let seqs = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) tbl []) in
  List.iter (fun s -> ignore (complete_waiter tbl s (Error err) : bool)) seqs

(* ---- kernel-side workers: drain u2k, dispatching replies and downcalls ---- *)

let dispatch_u2k t q decoded =
  match decoded with
  | Error e ->
    Sud_obs.Metrics.incr t.um.um_malformed;
    Klog.printk t.k.Kernel.klog Klog.Warn "uchan(%s): malformed message from driver: %s"
      t.label e
  | Ok m ->
    (* Protocol adjudication: a well-formed slot must also be in
       protocol — live epoch, monotone seq, completion matching, kind
       legal in the channel's DFA state.  Violations are counted per
       class and the message is dropped on the floor; the supervisor
       escalates from the counters. *)
    let is_reply = m.Msg.kind land reply_flag <> 0 in
    let verdict =
      Conformance.check_ingress t.conf ~epoch:m.Msg.epoch ~is_reply ~seq:m.Msg.seq
        ~kind:(m.Msg.kind land lnot reply_flag)
        ~pending:(fun s -> Hashtbl.mem t.k_pending s)
        ~issued_hi:t.next_seq
    in
    match verdict with
    | Conformance.Violation v ->
      Klog.printk t.k.Kernel.klog
        (if Conformance.escalates v then Klog.Warn else Klog.Debug)
        "uchan(%s): protocol violation (%s) kind %d seq %d epoch %d dropped" t.label
        (Conformance.class_name v)
        (m.Msg.kind land lnot reply_flag)
        m.Msg.seq m.Msg.epoch
    | Conformance.Pass ->
    if is_reply then begin
      let m = { m with Msg.kind = m.Msg.kind land lnot reply_flag } in
      if not (complete_waiter t.k_pending m.Msg.seq (Ok m)) then
        Klog.printk t.k.Kernel.klog Klog.Debug "uchan(%s): stale reply seq %d" t.label m.Msg.seq
    end
    else begin
      match t.handler with
      | None ->
        Klog.printk t.k.Kernel.klog Klog.Warn "uchan(%s): downcall %d with no handler"
          t.label m.Msg.kind
      | Some h ->
        (* Run the handler under the issuing RPC's span, so anything it
           touches (IOMMU maps, netdev work) is causally attributed. *)
        let parent =
          if Sud_obs.Trace.on () && m.Msg.seq <> 0 then
            Sud_obs.Trace.recall (Printf.sprintf "uchan.rpc.seq:%s:%d" t.label m.Msg.seq)
          else 0
        in
        let reply =
          if parent <> 0 then
            Sud_obs.Trace.with_current parent (fun () -> h ~queue:q.qi m)
          else h ~queue:q.qi m
        in
        if m.Msg.seq <> 0 then begin
          (* Downcall results return directly into the buffer the driver
             passed to sud_send (paper §3.1), not as a separate message. *)
          let r =
            match reply with
            | Some r -> { r with Msg.seq = m.Msg.seq }
            | None -> Msg.make ~seq:m.Msg.seq ~kind:m.Msg.kind ()
          in
          msg_cost t;
          if not (complete_waiter t.u_pending m.Msg.seq (Ok r)) then
            Klog.printk t.k.Kernel.klog Klog.Debug "uchan(%s): stale downcall reply seq %d"
              t.label m.Msg.seq
        end
    end

(* A u2k slot is either one scalar message or a scatter-gather batch of
   same-kind async downcalls (discriminated by a magic byte the scalar
   format can never produce).  Decoded inside [Ring.pop_inplace] while
   the slot is still borrowed. *)
type u2k_slot =
  | U2k_scalar of (Msg.t, string) result
  | U2k_batch of (int * int * (int * int, string) result list, string) result

let read_u2k_slot slot =
  if Msg.Batch.is_batch slot then U2k_batch (Msg.Batch.unmarshal_view slot)
  else U2k_scalar (Msg.unmarshal_view slot)

(* Unpack a batch slot and dispatch each surviving entry as if it had
   arrived as a scalar async downcall.  Entries whose per-entry checksum
   fails are exactly the frames a malicious driver garbled: they count
   as malformed and are dropped, their siblings still deliver. *)
let dispatch_u2k_batch t q decoded =
  match decoded with
  | Error e ->
    Sud_obs.Metrics.incr t.um.um_malformed;
    Klog.printk t.k.Kernel.klog Klog.Warn "uchan(%s): malformed batch from driver: %s"
      t.label e
  | Ok (kind, epoch, entries) ->
    List.iter
      (fun entry ->
         match entry with
         | Error e ->
           (* A single garbled entry is frame-level noise, not the
              slot-level protocol violation [um_malformed] records: it
              gets its own counter so supervision policy can kill on the
              former while merely counting the latter. *)
           Sud_obs.Metrics.incr t.um.um_malformed_frames;
           Klog.printk t.k.Kernel.klog Klog.Warn
             "uchan(%s): dropping corrupt frame in batch: %s" t.label e
         | Ok (a0, a1) ->
           dispatch_u2k t q (Ok (Msg.make ~kind ~epoch ~args:[ a0; a1 ] ())))
      entries

let worker_loop t q () =
  let rec loop () =
    if not t.closed then begin
      match Ring.pop_inplace q.u2k read_u2k_slot with
      | Some decoded ->
        msg_cost t;
        validate_cost t;
        if Sud_obs.Trace.on () then
          ignore
            (Sud_obs.Trace.emit ~cat:"uchan" ~name:"pop"
               ~attrs:[ "chan", t.label; "dir", "u2k"; "queue", string_of_int q.qi ] ());
        (match decoded with
         | U2k_scalar d -> dispatch_u2k t q d
         | U2k_batch d -> dispatch_u2k_batch t q d);
        loop ()
      | None ->
        let since = Engine.now t.k.Kernel.eng in
        (match Sync.Waitq.wait q.worker_waitq with
         | Fiber.Interrupted | Fiber.Normal | Fiber.Timeout ->
           if not t.closed then wakeup_cost_since t ~since;
           loop ())
    end
  in
  loop ()

let create k ?(slots = 256) ?hang_timeout_ns:(hto = hang_timeout_ns) ?(queues = 1)
    ?(epoch = 0) ?profile ~driver_label () =
  if queues < 1 || queues > max_queues then
    invalid_arg "Uchan.create: queues out of range";
  let epoch = epoch land Msg.max_epoch in
  let labels = [ "chan", driver_label ] in
  let qs =
    Array.init queues (fun qi ->
        let qlabels = labels @ [ "queue", string_of_int qi ] in
        let qc name = Sud_obs.Metrics.counter ~labels:qlabels ~subsystem:"uchan" ~name () in
        { qi;
          k2u = Ring.create ~slots;
          u2k = Ring.create ~slots;
          u_waitq = Sync.Waitq.create ();
          worker_waitq = Sync.Waitq.create ();
          k_space = Sync.Waitq.create ();
          batch = [];
          batch_len = 0;
          q_up = qc "queue_upcalls";
          q_down = qc "queue_downcalls";
          q_dropped = qc "queue_dropped" })
  in
  let t =
    { k;
      label = driver_label;
      qs;
      hang_timeout_ns = hto;
      closed = false;
      next_seq = 0;
      k_pending = Hashtbl.create 16;
      u_pending = Hashtbl.create 16;
      handler = None;
      um =
        (let c name = Sud_obs.Metrics.counter ~labels ~subsystem:"uchan" ~name () in
         { um_up = c "upcalls";
           um_down = c "downcalls";
           um_notify = c "notifications";
           um_dropped = c "dropped";
           um_malformed = c "malformed";
           um_malformed_frames = c "malformed_frames";
           um_rpc_ns = Sud_obs.Metrics.histogram ~labels ~subsystem:"uchan" ~name:"rpc_ns" () });
      epoch;
      conf = Conformance.create ?profile ~label:driver_label ~epoch ();
      wedged = false;
      corrupt_next = 0;
      drop_next = 0;
      corrupt_batch_next = 0;
      u2k_mutator = None;
      notify_hook = None;
      batch_limit = default_batch_limit }
  in
  Array.iter
    (fun q ->
       ignore
         (Process.spawn_fiber (Process.kernel_process k.Kernel.procs)
            ~name:(Printf.sprintf "uchan-worker:%s:q%d" driver_label q.qi)
            (worker_loop t q)
          : Fiber.t))
    t.qs;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    fail_all_waiters t.k_pending Closed;
    fail_all_waiters t.u_pending Closed;
    Array.iter
      (fun q ->
         ignore (Sync.Waitq.broadcast q.u_waitq : int);
         ignore (Sync.Waitq.broadcast q.worker_waitq : int);
         ignore (Sync.Waitq.broadcast q.k_space : int))
      t.qs
  end

let is_closed t = t.closed

let set_downcall_handler t h = t.handler <- Some h

(* ---- kernel side ---- *)

let push_k2u t q m =
  msg_cost t;
  let m = { m with Msg.epoch = t.epoch } in
  if push_flagged q.k2u m ~is_reply:false then begin
    Sud_obs.Metrics.incr t.um.um_up;
    Sud_obs.Metrics.incr q.q_up;
    if Sud_obs.Trace.on () then
      ignore
        (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"uchan" ~name:"push"
           ~attrs:[ "chan", t.label; "dir", "k2u"; "queue", string_of_int q.qi ] ());
    kick t q.u_waitq;
    true
  end
  else false

let rpc_issue t ~queue ~dir ~seq ~kind =
  if Sud_obs.Trace.on () then begin
    let id =
      Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"uchan" ~name:"rpc"
        ~attrs:
          [ "chan", t.label; "dir", dir; "kind", string_of_int kind;
            "seq", string_of_int seq; "queue", string_of_int queue ]
        ()
    in
    (* Correlation keys: the per-seq key lets the kernel worker run the
       downcall handler under this span; the "last" key is the fallback
       parent for faults raised from engine callbacks (device DMA). *)
    Sud_obs.Trace.remember (Printf.sprintf "uchan.rpc.seq:%s:%d" t.label seq) id;
    Sud_obs.Trace.remember "uchan.rpc.last" id;
    id
  end
  else 0

let rpc_finish t ~span ~t0 r =
  let dur = Engine.now t.k.Kernel.eng - t0 in
  Sud_obs.Metrics.observe t.um.um_rpc_ns dur;
  if span <> 0 then
    ignore
      (Sud_obs.Trace.emit ~parent:span ~dur_ns:dur ~cat:"uchan" ~name:"rpc.complete"
         ~attrs:
           [ "chan", t.label;
             "status",
             (match r with
              | Ok _ -> "ok"
              | Error Hung -> "hung"
              | Error Interrupted -> "interrupted"
              | Error Closed -> "closed") ]
         ());
  r

let ksend_sync t q m =
  if t.closed then Error Closed
  else begin
    let seq = fresh_seq t in
    let m = { m with Msg.seq } in
    let t0 = Engine.now t.k.Kernel.eng in
    let span = rpc_issue t ~queue:q.qi ~dir:"k2u" ~seq ~kind:m.Msg.kind in
    if not (push_k2u t q m) then rpc_finish t ~span ~t0 (Error Hung)
    else begin
      let w = { cell = ref None; wq = Sync.Waitq.create () } in
      Hashtbl.replace t.k_pending seq w;
      let deadline = Engine.now t.k.Kernel.eng + t.hang_timeout_ns in
      let rec await () =
        let slept_at = Engine.now t.k.Kernel.eng in
        match !(w.cell) with
        | Some r -> r
        | None ->
          if t.closed then Error Closed
          else begin
            let left = deadline - Engine.now t.k.Kernel.eng in
            if left <= 0 then begin
              Hashtbl.remove t.k_pending seq;
              Error Hung
            end
            else
              match Sync.Waitq.wait_timeout t.k.Kernel.eng w.wq left with
              | Fiber.Interrupted ->
                (match !(w.cell) with
                 | Some r -> r
                 | None ->
                   Hashtbl.remove t.k_pending seq;
                   Error Interrupted)
              | Fiber.Normal ->
                wakeup_cost_since t ~since:slept_at;
                await ()
              | Fiber.Timeout -> await ()
          end
      in
      rpc_finish t ~span ~t0 (await ())
    end
  end

let ksend_async t q m =
  if t.closed then Error Closed
  else begin
    let m = { m with Msg.seq = 0 } in
    let deadline = Engine.now t.k.Kernel.eng + full_grace_ns in
    let rec attempt () =
      if push_k2u t q m then Ok ()
      else if t.closed then Error Closed
      else if Engine.now t.k.Kernel.eng >= deadline then Error Hung
      else
        match
          Sync.Waitq.wait_timeout t.k.Kernel.eng q.k_space
            (deadline - Engine.now t.k.Kernel.eng)
        with
        | Fiber.Interrupted -> Error Interrupted
        | Fiber.Normal | Fiber.Timeout -> attempt ()
    in
    attempt ()
  end

(* Non-blocking async upcall for interrupt context: a full ring just
   drops the kick (the interrupt is edge-triggered and SUD masks until
   the driver acks anyway). *)
let ksend_nonblock t q m =
  if t.closed then false
  else push_k2u t q { m with Msg.seq = 0 }

(* ---- user (driver) side ---- *)

(* Driver-side worker kick, with the quota layer's notification token
   bucket observing every kick (sustained floods are counted there and
   escalated by the supervisor; the kick itself always lands — starving
   the trusted worker would just wedge the ring). *)
let kick_worker t q =
  (match t.notify_hook with Some f -> f ~queue:q.qi | None -> ());
  kick t q.worker_waitq

let u2k_mutate t q =
  match t.u2k_mutator with
  | None -> None
  | Some f -> Some (fun slot -> f ~queue:q.qi slot)

let push_u2k_raw t q m ~is_reply =
  msg_cost t;
  (* Stamp the live generation epoch into every marshalled header: the
     kernel-side adjudicator rejects anything else. *)
  let m = { m with Msg.epoch = t.epoch } in
  if is_reply && t.drop_next > 0 then begin
    (* Injected fault: the reply evaporates in transit.  The driver
       believes it answered; the kernel's sync send times out Hung. *)
    t.drop_next <- t.drop_next - 1;
    true
  end
  else if is_reply && t.corrupt_next > 0 then begin
    (* Injected fault: garble the slot.  0xFF everywhere guarantees the
       kernel worker's unmarshal rejects it (arg count out of range). *)
    t.corrupt_next <- t.corrupt_next - 1;
    ignore
      (Ring.push_inplace q.u2k (fun slot -> Bytes.fill slot 0 (Bytes.length slot) '\xff')
       : bool);
    true
  end
  else if push_flagged ?mutate:(u2k_mutate t q) q.u2k m ~is_reply then begin
    if not is_reply then begin
      Sud_obs.Metrics.incr t.um.um_down;
      Sud_obs.Metrics.incr q.q_down;
      if Sud_obs.Trace.on () then
        ignore
          (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"uchan" ~name:"push"
             ~attrs:[ "chan", t.label; "dir", "u2k"; "queue", string_of_int q.qi ] ())
    end;
    true
  end
  else false

(* Push one marshalled batch slot carrying [ms] (send order, all the
   same kind, each satisfying [Msg.Batch.fits]).  One message charge
   covers the whole slot — this is where batching amortizes the
   per-frame boundary cost. *)
let push_u2k_batch t q ~kind ms =
  msg_cost t;
  let entries = Array.of_list (List.map (fun m -> (Msg.arg m 0, Msg.arg m 1)) ms) in
  let n = Array.length entries in
  let corrupt =
    if t.corrupt_batch_next > 0 then begin
      t.corrupt_batch_next <- t.corrupt_batch_next - 1;
      true
    end
    else false
  in
  if
    Ring.push_inplace q.u2k (fun slot ->
        Msg.Batch.marshal_into ~epoch:t.epoch ~kind entries slot;
        (* Injected fault: garble the last frame of the batch after
           marshalling, as a driver scribbling on the shared ring would. *)
        if corrupt then Msg.Batch.corrupt_entry slot (n - 1);
        match u2k_mutate t q with Some f -> f slot | None -> ())
  then begin
    Sud_obs.Metrics.add t.um.um_down n;
    Sud_obs.Metrics.add q.q_down n;
    if Sud_obs.Trace.on () then
      ignore
        (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"uchan"
           ~name:"push.batch"
           ~attrs:
             [ "chan", t.label; "dir", "u2k"; "queue", string_of_int q.qi;
               "frames", string_of_int n ] ());
    true
  end
  else false

let flush_queue t q =
  match q.batch with
  | [] -> ()
  | batch ->
    q.batch <- [];
    q.batch_len <- 0;
    let drop n =
      (* The kernel worker is live (it is trusted); a full u2k ring
         just means we outran it — drop oldest-first like a NIC, but
         count the loss so it shows up next to the send counters. *)
      Sud_obs.Metrics.add t.um.um_dropped n;
      Sud_obs.Metrics.add q.q_dropped n
    in
    let send_scalar m =
      if not (push_u2k_raw t q m ~is_reply:false) then drop 1
    in
    (* Ship an accumulated run.  Singletons go out as scalar slots (no
       batch framing overhead, and batch_limit = 1 exactly reproduces
       the pre-batching wire traffic). *)
    let ship_run run_rev nrun =
      match run_rev with
      | [] -> ()
      | [ m ] -> send_scalar m
      | _ ->
        let run = List.rev run_rev in
        let kind = (List.hd run).Msg.kind in
        if not (push_u2k_batch t q ~kind run) then drop nrun
    in
    (* Coalesce consecutive same-kind batchable messages into batch
       slots (one marshal + one message charge per slot); anything else
       goes out as a scalar slot.  Send order is preserved throughout. *)
    let rec go run_rev nrun ms =
      match ms with
      | [] -> ship_run run_rev nrun
      | m :: rest when Msg.Batch.fits m ->
        (match run_rev with
         | p :: _ when p.Msg.kind = m.Msg.kind && nrun < Msg.Batch.max_frames ->
           go (m :: run_rev) (nrun + 1) rest
         | [] -> go [ m ] 1 rest
         | _ ->
           ship_run run_rev nrun;
           go [ m ] 1 rest)
      | m :: rest ->
        ship_run run_rev nrun;
        send_scalar m;
        go [] 0 rest
    in
    go [] 0 (List.rev batch);
    kick_worker t q

let flush ?queue t =
  match queue with
  | Some qi -> flush_queue t (qstate_of t qi)
  | None -> Array.iter (fun q -> flush_queue t q) t.qs

let dsend_batched t q m =
  if not t.closed then begin
    q.batch <- { m with Msg.seq = 0 } :: q.batch;
    q.batch_len <- q.batch_len + 1;
    (* Batching waits for the driver's next entry into the kernel — but a
       main loop already parked inside sud_wait counts as being there, so
       ship the batch now rather than stranding it. *)
    if q.batch_len >= t.batch_limit || Sync.Waitq.waiters q.u_waitq > 0 then flush_queue t q
  end

let reply ?(queue = 0) t m =
  let q = qstate_of t queue in
  if not t.closed then begin
    flush_queue t q;   (* preserve ordering of async downcalls vs. this reply *)
    if push_u2k_raw t q m ~is_reply:true then kick_worker t q
  end

let dsend_sync t q m =
  if t.closed then Error Closed
  else begin
    flush_queue t q;
    let seq = fresh_seq t in
    let m = { m with Msg.seq } in
    let t0 = Engine.now t.k.Kernel.eng in
    let span = rpc_issue t ~queue:q.qi ~dir:"u2k" ~seq ~kind:m.Msg.kind in
    if not (push_u2k_raw t q m ~is_reply:false) then rpc_finish t ~span ~t0 (Error Hung)
    else begin
      kick_worker t q;
      let w = { cell = ref None; wq = Sync.Waitq.create () } in
      Hashtbl.replace t.u_pending seq w;
      let rec await () =
        match !(w.cell) with
        | Some r -> r
        | None ->
          if t.closed then Error Closed
          else begin
            let since = Engine.now t.k.Kernel.eng in
            match Sync.Waitq.wait w.wq with
            | Fiber.Interrupted ->
              Hashtbl.remove t.u_pending seq;
              Error Interrupted
            | Fiber.Normal | Fiber.Timeout ->
              wakeup_cost_since t ~since;
              await ()
          end
      in
      rpc_finish t ~span ~t0 (await ())
    end
  end

let dsend_async t q m =
  if t.closed then Error Closed
  else begin
    flush_queue t q;
    let m = { m with Msg.seq = 0 } in
    let deadline = Engine.now t.k.Kernel.eng + full_grace_ns in
    let rec attempt () =
      if push_u2k_raw t q m ~is_reply:false then begin
        kick_worker t q;
        Ok ()
      end
      else if t.closed then Error Closed
      else if Engine.now t.k.Kernel.eng >= deadline then Error Hung
      else begin
        (* No space waitq on this side: the trusted kernel worker drains
           continuously, so a short device-style backoff suffices. *)
        ignore (Fiber.sleep t.k.Kernel.eng 10_000 : Fiber.wake);
        attempt ()
      end
    in
    attempt ()
  end

let dsend_nonblock t q m =
  if t.closed then false
  else if push_u2k_raw t q { m with Msg.seq = 0 } ~is_reply:false then begin
    kick_worker t q;
    true
  end
  else false

(* ---- the unified send interface ----

   One entry point for the eight (side × mode) combinations the old API
   spelled as send/asend/try_asend/usend/uasend.  The mode GADT makes
   the return type follow the mode, so callers keep precise results
   without five near-identical functions. *)

type _ mode =
  | Sync : (Msg.t, error) result mode
  | Async : (unit, error) result mode
  | Batched : unit mode
  | Nonblock : bool mode

let transfer : type r. t -> ?queue:int -> from:[ `Kernel | `Driver ] -> r mode -> Msg.t -> r =
 fun t ?(queue = 0) ~from mode m ->
  let q = qstate_of t queue in
  match from, mode with
  | `Kernel, Sync -> ksend_sync t q m
  | `Kernel, Async -> ksend_async t q m
  | `Kernel, Batched ->
    (* The kernel side has no batching (it is not the side that pays a
       syscall per kick): fire best-effort and account the loss. *)
    if not (ksend_nonblock t q m) && not t.closed then begin
      Sud_obs.Metrics.incr t.um.um_dropped;
      Sud_obs.Metrics.incr q.q_dropped
    end
  | `Kernel, Nonblock -> ksend_nonblock t q m
  | `Driver, Sync -> dsend_sync t q m
  | `Driver, Async -> dsend_async t q m
  | `Driver, Batched -> dsend_batched t q m
  | `Driver, Nonblock -> dsend_nonblock t q m

let wait ?(queue = 0) t =
  let q = qstate_of t queue in
  let rec loop ~slept =
    if t.closed then Error Closed
    else if t.wedged then begin
      (* Injected fault: the driver main loop is wedged — it neither
         services the ring nor flushes batches until the wedge lifts or
         the process is killed out from under it. *)
      ignore (Sync.Waitq.wait_timeout t.k.Kernel.eng q.u_waitq 1_000_000 : Fiber.wake);
      loop ~slept
    end
    else begin
      flush_queue t q;
      match Ring.pop_inplace q.k2u Msg.unmarshal_view with
      | Some decoded ->
        (match slept with Some since -> wakeup_cost_since t ~since | None -> ());
        msg_cost t;
        if Sud_obs.Trace.on () then
          ignore
            (Sud_obs.Trace.emit ~cat:"uchan" ~name:"pop"
               ~attrs:[ "chan", t.label; "dir", "k2u"; "queue", string_of_int q.qi ] ());
        ignore (Sync.Waitq.signal q.k_space : bool);
        (match decoded with
         | Error _ ->
           (* Only the trusted kernel writes k2u; treat corruption as fatal. *)
           Error Closed
         | Ok m ->
           if m.Msg.kind land reply_flag <> 0 then begin
             let m = { m with Msg.kind = m.Msg.kind land lnot reply_flag } in
             ignore (complete_waiter t.u_pending m.Msg.seq (Ok m) : bool);
             loop ~slept:None
           end
           else Ok m)
      | None ->
        syscall_cost t;
        (* The cost charge suspends the fiber; a message may have arrived in
           the meantime and its kick found nobody waiting — re-check before
           parking, or the wakeup is lost. *)
        if not (Ring.is_empty q.k2u) then loop ~slept:None
        else begin
          let since = Engine.now t.k.Kernel.eng in
          match Sync.Waitq.wait q.u_waitq with
          | Fiber.Interrupted -> Error Interrupted
          | Fiber.Normal | Fiber.Timeout -> loop ~slept:(Some since)
        end
    end
  in
  loop ~slept:None

(* ---- deprecated scalar shims (the ~queue:0 instances) ---- *)

let send t m = transfer t ~from:`Kernel Sync m
let asend t m = transfer t ~from:`Kernel Async m
let try_asend t m = transfer t ~from:`Kernel Nonblock m
let usend t m = transfer t ~from:`Driver Sync m
let uasend t m = transfer t ~from:`Driver Batched m

(* ---- queue handles ---- *)

module Queue = struct
  type chan = t
  type t = { q_chan : chan; q_index : int }

  let get chan index =
    ignore (qstate_of chan index : qstate);
    { q_chan = chan; q_index = index }

  let all chan = Array.to_list (Array.init (num_queues chan) (get chan))
  let index q = q.q_index
  let chan q = q.q_chan

  let transfer : type r. t -> from:[ `Kernel | `Driver ] -> r mode -> Msg.t -> r =
   fun q ~from mode m -> transfer q.q_chan ~queue:q.q_index ~from mode m

  let wait q = wait ~queue:q.q_index q.q_chan
  let reply q m = reply ~queue:q.q_index q.q_chan m
  let flush q = flush ~queue:q.q_index q.q_chan
end

let metrics t = t.um
let hang_timeout t = t.hang_timeout_ns
let epoch t = t.epoch
let conformance t = t.conf
let proto_violations t = Conformance.violations t.conf

let queue_upcalls t ~queue = Sud_obs.Metrics.get (qstate_of t queue).q_up
let queue_downcalls t ~queue = Sud_obs.Metrics.get (qstate_of t queue).q_down
let queue_dropped t ~queue = Sud_obs.Metrics.get (qstate_of t queue).q_dropped

(* ---- fault injection (lib/attacks) ---- *)

let wedge t =
  t.wedged <- true

let unwedge t =
  if t.wedged then begin
    t.wedged <- false;
    Array.iter (fun q -> ignore (Sync.Waitq.broadcast q.u_waitq : int)) t.qs
  end

let is_wedged t = t.wedged
let inject_corrupt_replies t n = t.corrupt_next <- t.corrupt_next + n
let inject_drop_replies t n = t.drop_next <- t.drop_next + n
let inject_corrupt_batch_frames t n = t.corrupt_batch_next <- t.corrupt_batch_next + n

(* Live-fuzzer hooks (lib/attacks/proto_fuzz): mutate marshalled u2k
   slots in flight, or forge whole slots the driver never sent. *)
let set_u2k_mutator t f = t.u2k_mutator <- f

let inject_raw ?(queue = 0) t writer =
  let q = qstate_of t queue in
  if t.closed then false
  else begin
    let pushed = Ring.push_inplace q.u2k writer in
    if pushed then kick_worker t q;
    pushed
  end

(* A doorbell flood: ring the worker's notification [n] times with no
   slots behind the kicks.  Each kick passes through the notify hook, so
   the quota layer's token bucket sees (and counts) the storm; the
   worker just finds the ring empty and goes back to sleep. *)
let notify_storm ?(queue = 0) t n =
  let q = qstate_of t queue in
  if not t.closed then
    for _ = 1 to n do
      kick_worker t q
    done

(* Quota layer: observe driver-side worker kicks (notification bucket). *)
let set_notify_hook t f = t.notify_hook <- f

(* ---- batch tuning ---- *)

let set_batch_limit t n = t.batch_limit <- max 1 n
let batch_limit t = t.batch_limit
