(** User channels: the kernel↔driver RPC transport (paper §3.1, Figure 3).

    Two shared-memory rings (kernel→user, user→kernel) carry marshalled
    {!Msg.t}s.  Synchronous sends are correlated by sequence number and
    are {e interruptible} on the kernel side, so a hung driver leaves an
    abortable wait, never a wedged kernel thread.  Asynchronous user-side
    sends are batched: they sit in a local pending list until the driver
    next enters the kernel ([wait]/[send]), so a burst of downcalls costs
    one notification — the optimization that lets TCP_STREAM match
    in-kernel throughput.

    CPU costs (marshalling per message, notification per kick, wakeup
    after sleeping) are charged to the calling fiber through the kernel's
    CPU pool. *)

type t

type error = Hung | Interrupted | Closed

val create :
  Kernel.t -> ?slots:int -> ?hang_timeout_ns:int -> driver_label:string -> unit -> t
(** [slots] per ring (default 256, power of two).  [hang_timeout_ns]
    bounds every synchronous upcall on this channel (default
    {!hang_timeout_ns}); the supervisor shrinks it to tighten hang
    detection latency. *)

val close : t -> unit
(** Tear the channel down (driver death): all blocked senders and waiters
    return [Error Closed]. *)

val is_closed : t -> bool

(** {1 Kernel side} *)

val send : t -> Msg.t -> (Msg.t, error) result
(** Synchronous upcall: blocks until the driver replies.  Interruptible
    (Ctrl-C ⇒ [Error Interrupted]); gives up after the channel's hang
    timeout without a reply ([Error Hung]). *)

val asend : t -> Msg.t -> (unit, error) result
(** Asynchronous upcall.  If the ring stays full past a short grace
    period the driver is presumed hung. *)

val try_asend : t -> Msg.t -> bool
(** Non-blocking asynchronous upcall, safe from interrupt context; false
    when the ring is full or the channel closed. *)

val set_downcall_handler : t -> (Msg.t -> Msg.t option) -> unit
(** Kernel-side service for driver downcalls; return [Some reply] for
    synchronous downcalls.  Runs in a dedicated kernel fiber. *)

(** {1 User (driver) side} *)

val wait : t -> (Msg.t, error) result
(** [sud_wait]: deliver the next kernel→user message; flushes batched
    asynchronous downcalls before sleeping. *)

val reply : t -> Msg.t -> unit
(** Reply to a synchronous upcall ([Msg.seq] must echo the request). *)

val usend : t -> Msg.t -> (Msg.t, error) result
(** Synchronous downcall (flushes the async batch first to preserve
    ordering). *)

val uasend : t -> Msg.t -> unit
(** Batched asynchronous downcall. *)

val flush : t -> unit
(** Force the async batch out (normally implicit in [wait]/[usend]). *)

(** {1 Introspection} *)

val hang_timeout_ns : int
(** Default sync-upcall deadline (50 ms), used when [create] is not given
    one. *)

val hang_timeout : t -> int
(** This channel's effective sync-upcall deadline. *)

(** {1 Observability}

    Per-channel counters and the sync-RPC latency histogram live in the
    {!Sud_obs.Metrics} registry under subsystem ["uchan"], labelled
    [("chan", driver_label)].  With tracing enabled, every sync RPC
    emits an ["uchan"/"rpc"] span at issue (remembered under
    ["uchan.rpc.last"] and a per-seq key) and an ["rpc.complete"] span
    with the round-trip duration; ring pushes/pops emit
    ["push"]/["pop"] spans; the kernel worker runs downcall handlers
    under the issuing RPC's span so downstream work (IOMMU maps,
    faults) is causally attributed. *)

type metrics = {
  um_up : Sud_obs.Metrics.counter;
  um_down : Sud_obs.Metrics.counter;
  um_notify : Sud_obs.Metrics.counter;
  um_dropped : Sud_obs.Metrics.counter;
  um_malformed : Sud_obs.Metrics.counter;
  um_rpc_ns : Sud_obs.Metrics.histogram;
}

val metrics : t -> metrics

val upcalls_sent : t -> int
  [@@deprecated "read Metrics.get (Uchan.metrics t).um_up instead"]

val downcalls_sent : t -> int
  [@@deprecated "read Metrics.get (Uchan.metrics t).um_down instead"]

val notifications : t -> int
  [@@deprecated "read Metrics.get (Uchan.metrics t).um_notify instead"]
(** Number of cross-address-space kicks — the measure of how well
    batching is working. *)

val dropped : t -> int
  [@@deprecated "read Metrics.get (Uchan.metrics t).um_dropped instead"]
(** Batched asynchronous downcalls lost because the u2k ring was full at
    {!flush} time.  Nonzero means the driver outran the kernel worker;
    silent before, now visible next to the send counters. *)

val malformed : t -> int
  [@@deprecated "read Metrics.get (Uchan.metrics t).um_malformed instead"]
(** Undecodable user→kernel slots discarded by the kernel worker.  The
    supervisor reads this: a growing count means the driver is writing
    garbage into its ring. *)

(** {1 Fault injection}

    Hooks for [lib/attacks]: they act on the {e driver} side of the
    transport, modelling a driver that has gone wrong, and never touch
    kernel-side state. *)

val wedge : t -> unit
(** Park the driver main loop: [wait] stops servicing the ring (and stops
    flushing batches) until {!unwedge} or process death.  Sync upcalls
    from the kernel subsequently time out [Hung]. *)

val unwedge : t -> unit
val is_wedged : t -> bool

val inject_corrupt_replies : t -> int -> unit
(** Garble the next [n] driver replies: the slot is filled with 0xFF so
    the kernel worker counts it in {!malformed} and the waiting sender
    times out. *)

val inject_drop_replies : t -> int -> unit
(** Swallow the next [n] driver replies in transit; the waiting sender
    times out [Hung]. *)
