(** User channels: the kernel↔driver RPC transport (paper §3.1, Figure 3).

    A channel carries [queues] independent ring pairs (kernel→user,
    user→kernel) of marshalled {!Msg.t}s — queue 0 is the control path
    every channel has; data queues 1..n-1 give a multiqueue device one
    lock-free lane per hardware queue.  Each queue has its own kernel
    worker fiber and its own driver-side async batch, so two queues
    never contend: batches are effectively per-CPU flush buffers.

    Synchronous sends are correlated by sequence number and are
    {e interruptible} on the kernel side, so a hung driver leaves an
    abortable wait, never a wedged kernel thread.  Asynchronous
    driver-side sends are batched: they sit in the queue's pending list
    until the driver next enters the kernel ([wait]/sync send on that
    queue), so a burst of downcalls costs one notification — the
    optimization that lets TCP_STREAM match in-kernel throughput.

    CPU costs (marshalling per message, notification per kick, wakeup
    after sleeping) are charged to the calling fiber through the kernel's
    CPU pool. *)

type t

type error = Hung | Interrupted | Closed

val create :
  Kernel.t ->
  ?slots:int ->
  ?hang_timeout_ns:int ->
  ?queues:int ->
  ?epoch:int ->
  ?profile:Conformance.profile ->
  driver_label:string ->
  unit ->
  t
(** [slots] per ring (default 256, power of two).  [hang_timeout_ns]
    bounds every synchronous upcall on this channel (default
    {!hang_timeout_ns}); the supervisor shrinks it to tighten hang
    detection latency.  [queues] (default 1, max {!max_queues}) is the
    number of ring pairs.  [epoch] (default 0, masked to
    {!Msg.max_epoch}) is the generation stamp marshalled into every
    header — the supervisor passes its generation number, so frames
    replayed from a dead generation fail conformance.  [profile] is the
    proxy-class kind vocabulary for the conformance DFA (default
    {!Conformance.permissive}). *)

val close : t -> unit
(** Tear the channel down (driver death): all blocked senders and waiters
    on every queue return [Error Closed]. *)

val is_closed : t -> bool

val num_queues : t -> int

val max_queues : int

(** {1 The unified send interface}

    One entry point for every way a message crosses the channel.  The
    mode GADT ties the return type to the delivery discipline:

    - [Sync]: block until the peer replies; [Error Hung] after the
      channel's hang timeout (kernel side) and interruptible on both
      sides.
    - [Async]: enqueue without waiting for a reply; if the ring stays
      full past a short grace period the peer is presumed hung.
    - [Batched]: driver side, sit in the queue's local batch until the
      driver next enters the kernel on that queue (or {!batch_limit}
      messages pile up), so a burst costs one notification.  At flush,
      consecutive same-kind batchable messages ({!Msg.Batch.fits}) are
      coalesced into scatter-gather batch slots — one marshal and one
      per-message charge per slot of up to {!Msg.Batch.max_frames}
      frames, not per frame.  On the kernel side (which pays no syscall
      per kick) this degrades to fire-and-forget that counts drops.
    - [Nonblock]: never block, safe from interrupt context; [false]
      when the ring is full or the channel closed. *)

type _ mode =
  | Sync : (Msg.t, error) result mode
  | Async : (unit, error) result mode
  | Batched : unit mode
  | Nonblock : bool mode

val transfer : t -> ?queue:int -> from:[ `Kernel | `Driver ] -> 'r mode -> Msg.t -> 'r
(** [transfer t ~queue ~from mode m] sends [m] on ring pair [queue]
    (default 0) in the direction implied by [from], with [mode]'s
    blocking discipline.  Raises [Invalid_argument] on a bad queue
    index. *)

val set_downcall_handler : t -> (queue:int -> Msg.t -> Msg.t option) -> unit
(** Kernel-side service for driver downcalls; return [Some reply] for
    synchronous downcalls.  Runs in the receiving queue's dedicated
    kernel worker fiber, with [~queue] naming that queue. *)

(** {1 User (driver) side} *)

val wait : ?queue:int -> t -> (Msg.t, error) result
(** [sud_wait]: deliver the next kernel→user message on [queue] (default
    0); flushes that queue's batched asynchronous downcalls before
    sleeping.  A multiqueue driver runs one fiber per queue, each parked
    here on its own queue. *)

val reply : ?queue:int -> t -> Msg.t -> unit
(** Reply to a synchronous upcall ([Msg.seq] must echo the request), on
    the queue it arrived on. *)

val flush : ?queue:int -> t -> unit
(** Force the async batch out (normally implicit in [wait]/sync sends).
    Without [?queue], flushes every queue's batch. *)

(** {1 Batch tuning} *)

val set_batch_limit : t -> int -> unit
(** Set the per-queue accumulation threshold for [Batched] driver sends
    (clamped to at least 1; default {!default_batch_limit}).  1 flushes
    on every send — the pre-batching wire behaviour — while larger
    values let bursts coalesce into scatter-gather slots.  Flushing
    stays load-adaptive: a driver entering the kernel (or one already
    parked in [wait]) ships whatever has accumulated immediately, so a
    lone frame at idle never waits for the batch to fill. *)

val batch_limit : t -> int
(** This channel's effective [Batched] accumulation threshold. *)

val default_batch_limit : int
(** Default accumulation threshold (64), used when {!set_batch_limit}
    was never called. *)

(** {1 Queue handles}

    A first-class handle on one (channel, queue) pair, so per-queue
    fibers and per-queue supervision state can be passed one capability
    instead of a channel plus a loose index. *)

module Queue : sig
  type chan = t
  type t

  val get : chan -> int -> t
  (** Raises [Invalid_argument] if the index is out of range. *)

  val all : chan -> t list
  val index : t -> int
  val chan : t -> chan
  val transfer : t -> from:[ `Kernel | `Driver ] -> 'r mode -> Msg.t -> 'r
  val wait : t -> (Msg.t, error) result
  val reply : t -> Msg.t -> unit
  val flush : t -> unit
end

(** {1 Deprecated scalar shims}

    The pre-multiqueue names, re-expressed as the [~queue:0] instance of
    {!transfer}.  In-repo callers must use {!transfer} (the build lints
    for these). *)

val send : t -> Msg.t -> (Msg.t, error) result
  [@@deprecated "use Uchan.transfer ~from:`Kernel Sync"]

val asend : t -> Msg.t -> (unit, error) result
  [@@deprecated "use Uchan.transfer ~from:`Kernel Async"]

val try_asend : t -> Msg.t -> bool
  [@@deprecated "use Uchan.transfer ~from:`Kernel Nonblock"]

val usend : t -> Msg.t -> (Msg.t, error) result
  [@@deprecated "use Uchan.transfer ~from:`Driver Sync"]

val uasend : t -> Msg.t -> unit
  [@@deprecated "use Uchan.transfer ~from:`Driver Batched"]

(** {1 Introspection} *)

val hang_timeout_ns : int
(** Default sync-upcall deadline (50 ms), used when [create] is not given
    one. *)

val hang_timeout : t -> int
(** This channel's effective sync-upcall deadline. *)

(** {1 Observability}

    Per-channel counters and the sync-RPC latency histogram live in the
    {!Sud_obs.Metrics} registry under subsystem ["uchan"], labelled
    [("chan", driver_label)]; per-queue traffic counters
    ([queue_upcalls]/[queue_downcalls]/[queue_dropped]) additionally
    carry [("queue", i)].  With tracing enabled, every sync RPC emits an
    ["uchan"/"rpc"] span at issue (remembered under ["uchan.rpc.last"]
    and a per-seq key) and an ["rpc.complete"] span with the round-trip
    duration; ring pushes/pops emit ["push"]/["pop"] spans carrying the
    queue index; the kernel worker runs downcall handlers under the
    issuing RPC's span so downstream work (IOMMU maps, faults) is
    causally attributed. *)

type metrics = {
  um_up : Sud_obs.Metrics.counter;
  um_down : Sud_obs.Metrics.counter;
  um_notify : Sud_obs.Metrics.counter;
  um_dropped : Sud_obs.Metrics.counter;
  um_malformed : Sud_obs.Metrics.counter;
      (** undecodable u2k slots — scalar messages and whole batch slots.
          A slot-level protocol violation: the supervisor kills on it. *)
  um_malformed_frames : Sud_obs.Metrics.counter;
      (** single entries inside an otherwise-valid batch slot whose
          per-entry checksum failed: exactly that frame is dropped, its
          siblings deliver, and supervision only counts it — frame-level
          noise, not a protocol violation *)
  um_rpc_ns : Sud_obs.Metrics.histogram;
}

val metrics : t -> metrics

val queue_upcalls : t -> queue:int -> int
val queue_downcalls : t -> queue:int -> int

val queue_dropped : t -> queue:int -> int
(** Per-queue share of {!metrics}'s [um_dropped]. *)

(** {1 Protocol conformance}

    Every driver→kernel slot is adjudicated by a per-channel
    {!Conformance} validator before the kernel worker acts on it:
    generation epoch, sequence monotonicity, completion matching, and a
    DFA over message kinds.  Violating messages are dropped and counted
    (metrics under [uchan/proto_violation{chan,class}]); the supervisor
    escalates new violations like grant storms. *)

val epoch : t -> int
(** The generation stamp marshalled into this channel's headers. *)

val conformance : t -> Conformance.t
(** The channel's validator (per-class counts, DFA state). *)

val proto_violations : t -> int
(** Escalation-eligible violation total — what the supervisor baselines
    per generation ({!Conformance.violations} of {!conformance}). *)

val set_notify_hook : t -> (queue:int -> unit) option -> unit
(** Observer called on every driver-side worker kick, before the
    notification lands — the quota layer's per-queue token bucket.  The
    kick itself is never suppressed (starving the trusted worker would
    wedge the ring); sustained floods are counted by the hook's owner
    and escalated by the supervisor. *)

(** {1 Fault injection}

    Hooks for [lib/attacks]: they act on the {e driver} side of the
    transport, modelling a driver that has gone wrong, and never touch
    kernel-side state. *)

val wedge : t -> unit
(** Park the driver main loop: [wait] stops servicing the ring (and stops
    flushing batches) until {!unwedge} or process death.  Sync upcalls
    from the kernel subsequently time out [Hung]. *)

val unwedge : t -> unit
val is_wedged : t -> bool

val inject_corrupt_replies : t -> int -> unit
(** Garble the next [n] driver replies: the slot is filled with 0xFF so
    the kernel worker counts it in {!malformed} and the waiting sender
    times out. *)

val inject_drop_replies : t -> int -> unit
(** Swallow the next [n] driver replies in transit; the waiting sender
    times out [Hung]. *)

val inject_corrupt_batch_frames : t -> int -> unit
(** Garble one frame inside each of the next [n] scatter-gather batch
    slots the driver flushes: that frame's per-entry checksum fails, the
    kernel worker counts it in [um_malformed_frames] and drops it, and
    the sibling frames in the batch still deliver. *)

val set_u2k_mutator : t -> (queue:int -> bytes -> unit) option -> unit
(** Live-fuzzer hook: run on every marshalled driver→kernel slot while
    it is still borrowed from the ring, exactly as a malicious driver
    racing the shared memory would.  The mutator sees scalar and batch
    slots alike (discriminate with {!Msg.Batch.is_batch}). *)

val inject_raw : ?queue:int -> t -> (bytes -> unit) -> bool
(** Live-fuzzer hook: forge one raw u2k slot the driver never sent —
    [writer] fills the borrowed {!Msg.slot_size}-byte slot — then kick
    the kernel worker.  [false] if the ring was full or the channel
    closed. *)

val notify_storm : ?queue:int -> t -> int -> unit
(** Live-fuzzer hook: ring the kernel worker's doorbell [n] times with
    no slots behind the kicks — a malicious driver hammering the notify
    syscall.  Every kick passes through the {!set_notify_hook} observer,
    so the quota token bucket counts the storm; the worker itself just
    finds an empty ring. *)
