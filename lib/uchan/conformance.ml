(* Kernel-side uchan protocol adjudicator.

   Defensive unmarshalling (length fields, batch checksums) only proves a
   slot is *well-formed*; a malicious driver can still speak perfectly
   well-formed nonsense — replay frames from a generation the supervisor
   already killed, forge completions for RPCs the kernel never issued,
   reuse old sequence numbers, or fire data downcalls before the
   registration handshake.  This module is the protocol layer of the
   defence: a per-channel validator the kernel worker consults on every
   driver-to-kernel slot, combining

   - a generation {b epoch} stamped into every marshalled header (the
     supervisor bumps it on restart, so stale-generation replay is a
     one-comparison detect);
   - {b monotone sequence numbers}: both directions draw correlation ids
     from one per-channel counter, so any non-reply seq must climb and
     can never exceed the issue high-water mark;
   - {b reply matching}: a completion must answer a seq the kernel
     actually issued; one above the high-water mark is forged out of
     thin air (a late reply to a timed-out RPC is counted separately —
     it is an anomaly, not an attack, and must not restart drivers);
   - a small {b DFA over message kinds}: channels begin in [Start] and
     enter [Ready] on the proxy-class registration downcall; data-plane
     kinds before registration are out of protocol.  Kind semantics live
     above this library (Proxy_proto is in sud_core), so the DFA is
     parameterised by an injectable {!profile}; raw channels get the
     {!permissive} profile and only the epoch/seq/reply checks.

   Violations are counted per class ([um_proto_violation{class=...}])
   and summed into an escalation total the supervisor baselines per
   generation — one new violation is a kill-and-restart signal,
   quarantine-eligible like grant storms. *)

(* What a kind is allowed to do, per the channel's proxy class. *)
type kind_class =
  | Register    (* handshake: moves the channel Start -> Ready *)
  | Data        (* data plane: only legal once Ready *)
  | Control     (* legal in any state (printk, carrier, irq acks, ...) *)
  | Unknown     (* not part of the proxy class's vocabulary *)

type profile = {
  p_name : string;
  p_classify : int -> kind_class;
}

(* Raw channels (tests, microbenches) have no kind vocabulary: everything
   is Control, so only epoch/seq/reply conformance applies. *)
let permissive = { p_name = "permissive"; p_classify = (fun _ -> Control) }

type violation =
  | Bad_epoch             (* slot stamped with a dead generation's epoch *)
  | Nonmonotone_seq       (* non-reply seq at or below one already seen *)
  | Seq_from_future       (* non-reply seq above the issue high-water mark *)
  | Forged_completion     (* reply to a seq the kernel never issued *)
  | Stale_completion      (* reply to an issued seq no longer pending: a
                             late answer to a timed-out RPC.  Counted,
                             never escalated. *)
  | Early_data            (* data kind before the registration handshake *)
  | Unknown_kind          (* kind outside the proxy class's vocabulary *)

let class_name = function
  | Bad_epoch -> "bad_epoch"
  | Nonmonotone_seq -> "nonmonotone_seq"
  | Seq_from_future -> "seq_from_future"
  | Forged_completion -> "forged_completion"
  | Stale_completion -> "stale_completion"
  | Early_data -> "early_data"
  | Unknown_kind -> "unknown_kind"

let all_classes =
  [ Bad_epoch; Nonmonotone_seq; Seq_from_future; Forged_completion;
    Stale_completion; Early_data; Unknown_kind ]

let n_classes = List.length all_classes

let class_index = function
  | Bad_epoch -> 0
  | Nonmonotone_seq -> 1
  | Seq_from_future -> 2
  | Forged_completion -> 3
  | Stale_completion -> 4
  | Early_data -> 5
  | Unknown_kind -> 6

(* Stale completions are a benign race (kernel timed out, driver answered
   late) that legitimately happens under injected hangs; everything else
   is out-of-protocol and restart-worthy. *)
let escalates = function Stale_completion -> false | _ -> true

type verdict = Pass | Violation of violation

type t = {
  c_label : string;
  c_profile : profile;
  mutable c_epoch : int;
  mutable c_ready : bool;           (* DFA: Start(false) -> Ready(true) *)
  mutable c_seq_hi : int;           (* highest non-reply seq accepted *)
  counts : int array;               (* per violation class *)
  mutable c_total : int;            (* escalation-eligible violations *)
  vc : Sud_obs.Metrics.counter array;
}

let create ?(profile = permissive) ~label ~epoch () =
  { c_label = label;
    c_profile = profile;
    c_epoch = epoch land Msg.max_epoch;
    c_ready = false;
    c_seq_hi = 0;
    counts = Array.make n_classes 0;
    c_total = 0;
    vc =
      Array.of_list
        (List.map
           (fun cl ->
              Sud_obs.Metrics.counter
                ~labels:[ ("chan", label); ("class", class_name cl) ]
                ~subsystem:"uchan" ~name:"proto_violation" ())
           all_classes) }

let epoch t = t.c_epoch
let label t = t.c_label

(* Supervisor restart: new generation, fresh handshake, but the seq
   counter is per-channel state the kernel owns, so it survives. *)
let new_generation t ~epoch =
  t.c_epoch <- epoch land Msg.max_epoch;
  t.c_ready <- false

let note t v =
  t.counts.(class_index v) <- t.counts.(class_index v) + 1;
  Sud_obs.Metrics.incr t.vc.(class_index v);
  if escalates v then t.c_total <- t.c_total + 1

let violations t = t.c_total
let class_count t v = t.counts.(class_index v)

let class_counts t =
  List.map (fun cl -> (class_name cl, t.counts.(class_index cl))) all_classes

(* Validate one driver->kernel message before the worker acts on it.

   [issued_hi] is the channel's fresh-seq high-water mark (the largest
   correlation id either side has been handed); [pending] tells whether a
   reply's seq still has a waiter.  Returns the first violation found —
   the caller drops the message (except stale completions, which were
   already no-ops). *)
let check_ingress t ~epoch ~is_reply ~seq ~kind ~pending ~issued_hi =
  if epoch <> t.c_epoch then begin
    let v = Bad_epoch in note t v; Violation v
  end
  else if is_reply then begin
    if seq <= 0 || seq > issued_hi then begin
      let v = Forged_completion in note t v; Violation v
    end
    else if not (pending seq) then begin
      let v = Stale_completion in note t v; Violation v
    end
    else Pass
  end
  else if seq <> 0 && seq > issued_hi then begin
    let v = Seq_from_future in note t v; Violation v
  end
  else if seq <> 0 && seq <= t.c_seq_hi then begin
    let v = Nonmonotone_seq in note t v; Violation v
  end
  else begin
    let verdict =
      match t.c_profile.p_classify kind with
      | Control -> Pass
      | Register -> t.c_ready <- true; Pass
      | Data when t.c_ready -> Pass
      | Data -> let v = Early_data in note t v; Violation v
      | Unknown -> let v = Unknown_kind in note t v; Violation v
    in
    (match verdict with
     | Pass -> if seq <> 0 then t.c_seq_hi <- seq
     | Violation _ -> ());
    verdict
  end
