(** Kernel-side uchan protocol adjudicator.

    Defensive unmarshalling proves a slot is {e well-formed}; this module
    checks it is {e in protocol}: stamped with the live generation epoch,
    sequence numbers monotone and below the issue high-water mark,
    completions matching RPCs the kernel actually issued, and message
    kinds legal in the channel's current DFA state (a registration
    handshake gates the data plane).  Violations are counted per class
    ([uchan/proto_violation{chan,class}]) and summed into an escalation
    total the supervisor treats as a kill signal — quarantine-eligible
    like grant storms.

    Kind semantics (which opcode registers, which is data) belong to the
    proxy classes living above this library, so the DFA is parameterised
    by an injectable {!profile}; channels without one get {!permissive}
    (epoch/seq/reply checks only). *)

type kind_class =
  | Register    (** handshake: moves the channel [Start] -> [Ready] *)
  | Data        (** data plane: only legal once [Ready] *)
  | Control     (** legal in any state (printk, carrier, irq acks, ...) *)
  | Unknown     (** not part of the proxy class's vocabulary *)

type profile = {
  p_name : string;
  p_classify : int -> kind_class;
}

val permissive : profile
(** Everything is [Control]: only epoch, sequence and reply-matching
    conformance applies.  The default for raw channels. *)

type violation =
  | Bad_epoch             (** slot stamped with a dead generation's epoch *)
  | Nonmonotone_seq       (** non-reply seq at or below one already seen *)
  | Seq_from_future       (** non-reply seq above the issue high-water mark *)
  | Forged_completion     (** reply to a seq the kernel never issued *)
  | Stale_completion      (** late reply to a timed-out RPC — counted,
                              never escalated *)
  | Early_data            (** data kind before the registration handshake *)
  | Unknown_kind          (** kind outside the proxy class's vocabulary *)

val class_name : violation -> string
val all_classes : violation list

val escalates : violation -> bool
(** Everything except {!Stale_completion}, which is a benign race. *)

type verdict = Pass | Violation of violation

type t

val create : ?profile:profile -> label:string -> epoch:int -> unit -> t

val epoch : t -> int
val label : t -> string

val new_generation : t -> epoch:int -> unit
(** Supervisor restart: adopt the new generation's epoch and drop back to
    the [Start] DFA state (a fresh driver must re-register).  Violation
    counts and the sequence high-water mark survive. *)

val check_ingress :
  t ->
  epoch:int -> is_reply:bool -> seq:int -> kind:int ->
  pending:(int -> bool) -> issued_hi:int ->
  verdict
(** Validate one driver->kernel message before the worker acts on it.
    [issued_hi] is the channel's fresh-seq high-water mark; [pending]
    says whether a reply's correlation id still has a waiter.  On
    [Violation] the caller must drop the message. *)

val violations : t -> int
(** Escalation-eligible total (excludes {!Stale_completion}). *)

val class_count : t -> violation -> int
val class_counts : t -> (string * int) list
